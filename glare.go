// Package glare is a Go implementation of GLARE — the Grid Activity
// Registration, Deployment and Provisioning framework of Siddiqui,
// Villazón, Hofer and Fahringer (SC 2005).
//
// GLARE separates what an application component does (its activity type)
// from where and how it is installed (its activity deployments). A Grid
// workflow is composed against activity types only; GLARE resolves them to
// concrete deployments across a Virtual Organization of Grid sites,
// installing software on demand when no deployment exists, and leasing
// deployments to schedulers that need exclusive or bounded-shared access.
//
// The package exposes two layers:
//
//   - Grid: a whole simulated Virtual Organization — N Grid sites on the
//     loopback interface, each running the full per-site GLARE stack
//     (registries, RDM frontend, super-peer overlay agent, index service)
//     over real HTTP or HTTPS.
//   - Client: a handle onto one site's local GLARE service, which is the
//     only thing a user ever talks to ("clients ... interact only with
//     their local sites").
//
// Quickstart:
//
//	g, _ := glare.NewGrid(glare.GridOptions{Sites: 3})
//	defer g.Close()
//	g.Elect()
//	provider := g.Client(0)
//	provider.RegisterTypes(glare.ImagingTypes()...)
//	scheduler := g.Client(1)
//	deps, _ := scheduler.Discover("ImageConversion") // deploys on demand
package glare

import (
	"fmt"
	"net/url"
	"time"

	"glare/internal/activity"
	"glare/internal/cas"
	"glare/internal/lease"
	"glare/internal/rdm"
	"glare/internal/rrd"
	"glare/internal/semantic"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/vo"
	"glare/internal/workload"
	"glare/internal/wsrf"
)

// Re-exported model types. The aliases make the full data model usable
// through the public package.
type (
	// Type is an activity type: the functional description of a component.
	Type = activity.Type
	// Deployment is an installed incarnation of a concrete activity type.
	Deployment = activity.Deployment
	// Installation describes how a type is installed on demand.
	Installation = activity.Installation
	// Constraints restrict the sites a type may be installed on.
	Constraints = activity.Constraints
	// Function describes one behaviour of a type.
	Function = activity.Function
	// Ticket authorizes use of a leased deployment.
	Ticket = lease.Ticket
	// Method selects the deployment mechanics (expect or CoG).
	Method = rdm.Method
	// DeployReport summarizes an on-demand deployment with per-phase
	// timings (the rows of the paper's Table 1).
	DeployReport = rdm.DeployReport
	// Notification is an event delivered to subscribed sinks.
	Notification = wsrf.Notification
	// SemanticQuery describes a wanted capability (function, ports,
	// domain) for type search.
	SemanticQuery = semantic.Query
	// SemanticMatch is one scored semantic search result.
	SemanticMatch = semantic.Match
	// Telemetry is a site's observability bundle: its metrics registry
	// and tracer, also served over HTTP at the site's /metrics, /healthz
	// and /tracez admin endpoints.
	Telemetry = telemetry.Telemetry
	// TraceSpan is one recorded span of a distributed trace.
	TraceSpan = telemetry.SpanRecord
	// FsyncPolicy selects when the durable registry store forces appended
	// records to stable storage (FsyncInterval, FsyncAlways, FsyncNever).
	FsyncPolicy = store.FsyncPolicy
	// StoreStatus summarizes one site's durable store (segments, live and
	// snapshot record counts, replay and truncation accounting).
	StoreStatus = store.Status
	// DeployStatus summarizes one site's deployment execution engine:
	// in-flight builds, queue pressure, quarantined types and interrupted
	// builds with journaled checkpoints awaiting resume.
	DeployStatus = rdm.DeployRunStatus
	// DeployLimits tunes a site's deployment execution engine (concurrent
	// builds, queue depth, transfer retry, quarantine policy).
	DeployLimits = rdm.DeployLimits
	// HistoryConfig tunes a site's round-robin telemetry history: base
	// step, retention ladder, alert rules and rollup set.
	HistoryConfig = rdm.HistoryConfig
	// HistoryStore is a site's round-robin time-series store; Fetch and
	// Xport read consolidated history out of it.
	HistoryStore = rrd.Store
	// Alert is one firing alert-rule instance.
	Alert = rrd.Alert
	// AdmissionConfig tunes a site's overload admission controller:
	// per-class concurrency limits, queue depths and the AIMD latency
	// target.
	AdmissionConfig = transport.AdmissionConfig
	// ClassLimits bounds one priority class (concurrency limit, AIMD
	// floor/ceiling, wait-queue depth).
	ClassLimits = transport.ClassLimits
	// ClassStatus is one priority class's live admission-controller state
	// (limit, inflight, queued, sheds, expired).
	ClassStatus = transport.ClassStatus
)

// Deployment method and mode constants.
const (
	MethodExpect = rdm.MethodExpect
	MethodCoG    = rdm.MethodCoG

	ModeOnDemand = activity.ModeOnDemand
	ModeManual   = activity.ModeManual

	KindExecutable = activity.KindExecutable
	KindService    = activity.KindService

	LeaseExclusive = lease.Exclusive
	LeaseShared    = lease.Shared

	FsyncInterval = store.FsyncInterval
	FsyncAlways   = store.FsyncAlways
	FsyncNever    = store.FsyncNever
)

// ImagingTypes returns the paper's Section-2 example hierarchy (Imaging →
// ImageConversion → POVray → JPOVray, plus the Java and Ant toolchain).
func ImagingTypes() []*Type { return workload.ImagingTypes() }

// EvaluationTypes returns the Table 1 applications (Wien2k, Invmod,
// Counter) as registrable activity types.
func EvaluationTypes() []*Type { return workload.EvaluationTypes() }

// GridOptions configures a simulated Virtual Organization.
type GridOptions struct {
	// Sites is the number of Grid sites (default 3).
	Sites int
	// Secure runs every container over HTTPS with a VO-internal CA.
	Secure bool
	// GroupSize is the super-peer group size (default 4).
	GroupSize int
	// DisableCache turns off the two-level resource cache.
	DisableCache bool
	// RealTime uses the wall clock instead of the default virtual clock
	// (deployment cost models then sleep for real).
	RealTime bool
	// CallTimeout overrides the per-request transport timeout (zero keeps
	// the transport default). Retries happen within each operation, so an
	// operation against an unresponsive site can take a few multiples of
	// this before it is classified unavailable.
	CallTimeout time.Duration
	// ChaosSeed, when nonzero, arms a deterministic fault injector on every
	// site's outbound client; the *Site fault methods (BlackHoleSite,
	// DropSite, DelaySite, RestoreSite) and the partition methods
	// (PartitionSites, HealPartition) then steer it. The seed makes any
	// probabilistic fault pattern reproducible run after run.
	ChaosSeed int64
	// BreakerCooldown overrides how long an open circuit breaker waits
	// before its half-open probe (zero keeps the transport default of 5s).
	// Partition tests shorten it so healed links are re-tried quickly.
	BreakerCooldown time.Duration
	// DataDir enables durable registry stores: every site journals its
	// registrations, deployment documents and leases under
	// DataDir/site-NN, and RestartSite replays the journal instead of
	// losing the site's state. Empty keeps sites memory-only.
	DataDir string
	// StoreFsync is the store's fsync policy (default FsyncInterval).
	StoreFsync FsyncPolicy
	// Deploy tunes every site's deployment execution engine — concurrent
	// build slots, queue depth, follower deadline, transfer retry and
	// quarantine policy. Zero values use the engine defaults.
	Deploy DeployLimits
	// History tunes every site's round-robin telemetry history: base step,
	// retention archives, alert rules and the super-peer rollup metric
	// set. The zero value enables the defaults; set History.Disabled to
	// turn the subsystem off.
	History HistoryConfig
	// Admission overrides every site's overload admission controller
	// (per-class concurrency limits, queue depths, AIMD target); nil uses
	// the transport defaults.
	Admission *AdmissionConfig
	// AdmissionOff disables admission control grid-wide — every request
	// executes immediately regardless of load. The baseline configuration
	// for overload experiments.
	AdmissionOff bool
	// ScanDelayPerEntry models remote registry processing time per scanned
	// entry, so overload experiments can give bulk scans a realistic cost.
	ScanDelayPerEntry time.Duration
	// Replicas is the total number of copies (owner included) every
	// registration, deployment document and lease mutation is kept at
	// inside the owning site's peer group. A registration is acknowledged
	// only after a write quorum of copies is durable, so up to Replicas-1
	// simultaneous permanent site losses cannot lose acknowledged writes.
	// Zero or one disables replication.
	Replicas int
	// CASBudget is each site's content-addressed artifact store byte
	// budget. Zero selects the default budget; negative disables the
	// artifact grid, so every transfer goes to origin.
	CASBudget int64
}

// Grid is a running Virtual Organization.
type Grid struct {
	vo *vo.VO
}

// NewGrid builds and starts a VO.
func NewGrid(opts GridOptions) (*Grid, error) {
	var clock simclock.Clock
	if opts.RealTime {
		clock = simclock.Real
	}
	var breaker *transport.BreakerConfig
	if opts.BreakerCooldown > 0 {
		bc := transport.DefaultBreakerConfig()
		bc.Cooldown = opts.BreakerCooldown
		breaker = &bc
	}
	v, err := vo.Build(vo.Options{
		Sites:             opts.Sites,
		Secure:            opts.Secure,
		GroupSize:         opts.GroupSize,
		CacheDisabled:     opts.DisableCache,
		Clock:             clock,
		CallTimeout:       opts.CallTimeout,
		ChaosSeed:         opts.ChaosSeed,
		Breaker:           breaker,
		DataDir:           opts.DataDir,
		StoreFsync:        opts.StoreFsync,
		Deploy:            opts.Deploy,
		History:           opts.History,
		Admission:         opts.Admission,
		AdmissionOff:      opts.AdmissionOff,
		ScanDelayPerEntry: opts.ScanDelayPerEntry,
		ReplicaK:          opts.Replicas,
		CASBudget:         opts.CASBudget,
	})
	if err != nil {
		return nil, err
	}
	return &Grid{vo: v}, nil
}

// Sites returns the number of Grid sites.
func (g *Grid) Sites() int { return len(g.vo.Nodes) }

// SiteName returns the i-th site's name.
func (g *Grid) SiteName(i int) string { return g.vo.Nodes[i].Info.Name }

// SiteURL returns the i-th site's container base URL.
func (g *Grid) SiteURL(i int) string { return g.vo.Nodes[i].Info.BaseURL }

// Elect runs the initial super-peer election from the community-index
// holder. Safe to call more than once.
func (g *Grid) Elect() error { return g.vo.ElectSuperPeers() }

// Now returns the grid clock's current instant (virtual by default), so
// callers can measure how much simulated time an operation consumed.
func (g *Grid) Now() time.Time { return g.vo.Clock.Now() }

// Client returns a handle on the i-th site's local GLARE service.
func (g *Grid) Client(i int) *Client {
	if i < 0 || i >= len(g.vo.Nodes) {
		return nil
	}
	return &Client{svc: g.vo.Nodes[i].RDM}
}

// Telemetry returns the i-th site's observability bundle — the metrics
// registry and tracer that back its /metrics, /healthz and /tracez admin
// endpoints (served under SiteURL(i)).
func (g *Grid) Telemetry(i int) *Telemetry {
	if i < 0 || i >= len(g.vo.Nodes) {
		return nil
	}
	return g.vo.Nodes[i].Tel
}

// ArtifactStats reports site i's content-addressed artifact store state:
// occupancy, hit/miss, peer vs origin fetch counts, verify failures.
func (g *Grid) ArtifactStats(i int) rdm.ArtifactStats {
	if i < 0 || i >= len(g.vo.Nodes) {
		return rdm.ArtifactStats{}
	}
	return g.vo.Nodes[i].RDM.ArtifactStats()
}

// CorruptArtifact flips the stored content sum of a blob held in site i's
// CAS — fault injection for the rotted-peer-copy path: the next reader
// verifies, rejects the copy, and falls back down the ladder.
func (g *Grid) CorruptArtifact(i int, algo, sum string) bool {
	if i < 0 || i >= len(g.vo.Nodes) {
		return false
	}
	return g.vo.Nodes[i].RDM.CorruptArtifact(cas.Key{Algo: algo, Sum: sum})
}

// OriginFetches reports, per source URL, how many origin transfers site
// i's direct GridFTP client has performed — the quantity the artifact
// grid bounds during a flash install.
func (g *Grid) OriginFetches(i int) map[string]int {
	if i < 0 || i >= len(g.vo.Nodes) {
		return nil
	}
	return g.vo.Nodes[i].RDM.FTP.OriginFetches()
}

// OverloadStatus reports site i's admission-controller state, one entry
// per priority class (control, interactive, bulk). Nil when admission is
// disabled (GridOptions.AdmissionOff).
func (g *Grid) OverloadStatus(i int) []ClassStatus {
	if i < 0 || i >= len(g.vo.Nodes) {
		return nil
	}
	adm := g.vo.Nodes[i].Server.Admission()
	if adm == nil {
		return nil
	}
	return adm.Status()
}

// StopSite simulates a site failure (its container stops answering).
// Super-peer failures trigger re-election among the survivors.
func (g *Grid) StopSite(i int) { g.vo.StopSite(i) }

// RestartSite brings a stopped site back on its original address — the
// crash-recovery path. With GridOptions.DataDir set, the restarted site
// replays its journal and comes back with the registrations, deployment
// documents and unexpired leases it crashed with; without DataDir it
// comes back empty. It refuses sites that were never stopped, sites that
// are already restarting, and sites removed with KillSite (use
// ReplaceSite). Site 0 (community-index holder) is not restartable.
func (g *Grid) RestartSite(i int) error { return g.vo.RestartSite(i) }

// KillSite simulates the permanent loss of site i: the container stops
// answering forever and, with GridOptions.DataDir set, its on-disk journal
// is destroyed — there is nothing to restart. With GridOptions.Replicas
// ≥ 2, the site's acknowledged registrations survive on its replica set
// and a super-peer promotes the most-caught-up replica to authoritative
// owner. Site 0 (community-index holder) cannot be killed.
func (g *Grid) KillSite(i int) error { return g.vo.KillSite(i) }

// ReplaceSite stands up a fresh, empty site on a killed site's name and
// address — the dead machine's replacement joining the VO. Replicated
// data adopted elsewhere is handed back on the next repair pass.
func (g *Grid) ReplaceSite(i int) error { return g.vo.ReplaceSite(i) }

// siteDest maps a site index to the host:port key the fault injector
// matches requests on.
func (g *Grid) siteDest(i int) (string, error) {
	if g.vo.Chaos == nil {
		return "", fmt.Errorf("glare: fault injection disarmed; set GridOptions.ChaosSeed")
	}
	if i < 0 || i >= len(g.vo.Nodes) {
		return "", fmt.Errorf("glare: no site %d", i)
	}
	u, err := url.Parse(g.vo.Nodes[i].Info.BaseURL)
	if err != nil {
		return "", err
	}
	return u.Host, nil
}

// BlackHoleSite makes every request to site i hang until the caller's
// timeout — the network-partition failure mode. The site itself keeps
// running; only traffic towards it is swallowed. Requires ChaosSeed.
func (g *Grid) BlackHoleSite(i int) error {
	dest, err := g.siteDest(i)
	if err != nil {
		return err
	}
	g.vo.Chaos.BlackHole(dest)
	return nil
}

// DropSite makes every request to site i fail immediately, like a
// refused connection. Requires ChaosSeed.
func (g *Grid) DropSite(i int) error {
	dest, err := g.siteDest(i)
	if err != nil {
		return err
	}
	g.vo.Chaos.Drop(dest)
	return nil
}

// DelaySite holds every request to site i for d before delivering it.
// Requires ChaosSeed.
func (g *Grid) DelaySite(i int, d time.Duration) error {
	dest, err := g.siteDest(i)
	if err != nil {
		return err
	}
	g.vo.Chaos.Delay(dest, d)
	return nil
}

// RestoreSite removes site i's fault rule; traffic flows normally again.
// Requires ChaosSeed.
func (g *Grid) RestoreSite(i int) error {
	dest, err := g.siteDest(i)
	if err != nil {
		return err
	}
	g.vo.Chaos.Restore(dest)
	return nil
}

// PartitionSites severs the network between two halves of the grid: every
// request from a site in a to a site in b (and vice versa) is dropped,
// while traffic within each half flows normally — the classic split-brain
// scenario. A site listed in neither half can talk to both. Requires
// ChaosSeed. Replaces any previous partition.
func (g *Grid) PartitionSites(a, b []int) error {
	hostsOf := func(idx []int) ([]string, error) {
		out := make([]string, 0, len(idx))
		for _, i := range idx {
			dest, err := g.siteDest(i)
			if err != nil {
				return nil, err
			}
			out = append(out, dest)
		}
		return out, nil
	}
	hostsA, err := hostsOf(a)
	if err != nil {
		return err
	}
	hostsB, err := hostsOf(b)
	if err != nil {
		return err
	}
	g.vo.Chaos.Partition(hostsA, hostsB)
	return nil
}

// HealPartition reconnects the halves split by PartitionSites. The overlay
// does not converge by itself at that instant: the super-peers' rival
// probes (CheckRivals, run by StartMonitors) detect the double reign and
// merge the views, and registry sync reconciles what diverged.
func (g *Grid) HealPartition() error {
	if g.vo.Chaos == nil {
		return fmt.Errorf("glare: fault injection disarmed; set GridOptions.ChaosSeed")
	}
	g.vo.Chaos.Heal()
	return nil
}

// FailBuildStep makes the named step of the type's build fail with a
// transient error on site i for the next n executions — the engine's
// per-step retry may absorb it; exhausted retries fail (and eventually
// quarantine) the type. Unlike the network fault methods, build-step
// injection is always armed.
func (g *Grid) FailBuildStep(i int, typeName, step string, n int) {
	g.vo.Nodes[i].Deploy.FailStep(typeName, step, n)
}

// CrashBuildStep arms a one-shot simulated daemon crash at the named step
// of the type's build on site i: the build aborts with its checkpoints
// intact, so after StopSite/RestartSite the deployment resumes at the
// first incomplete step.
func (g *Grid) CrashBuildStep(i int, typeName, step string) {
	g.vo.Nodes[i].Deploy.CrashStep(typeName, step)
}

// HangBuildStep makes the named step hang until the engine's watchdog
// kills it, for the next n executions on site i.
func (g *Grid) HangBuildStep(i int, typeName, step string, n int) {
	g.vo.Nodes[i].Deploy.HangStep(typeName, step, n)
}

// DelayBuildStep stalls the named step for d (real time) on every
// execution on site i until ClearBuildFaults — long enough to overlap
// concurrent duplicate requests in dedup tests.
func (g *Grid) DelayBuildStep(i int, typeName, step string, d time.Duration) {
	g.vo.Nodes[i].Deploy.DelayStep(typeName, step, d)
}

// ClearBuildFaults disarms every build-step fault on site i.
func (g *Grid) ClearBuildFaults(i int) {
	g.vo.Nodes[i].Deploy.Clear()
}

// SkewSite displaces site i's wall clock by offset (negative runs slow):
// every timestamp the site reads — registry LastUpdateTimes, lease grants,
// expiry sweeps — is shifted, while timers and sleeps still follow the
// shared grid clock. Clock skew is always armed (no ChaosSeed needed) and
// survives RestartSite/ReplaceSite.
func (g *Grid) SkewSite(i int, offset time.Duration) { g.vo.SkewSite(i, offset) }

// DriftSite makes site i's clock wander at rate seconds gained per second
// of grid time (negative falls behind), on top of any fixed skew.
func (g *Grid) DriftSite(i int, rate float64) { g.vo.DriftSite(i, rate) }

// ClockOffset reports site i's current total clock displacement (skew plus
// accrued drift) from the shared grid clock.
func (g *Grid) ClockOffset(i int) time.Duration { return g.vo.ClockOffset(i) }

// RestoreClock zeroes site i's skew and drift.
func (g *Grid) RestoreClock(i int) { g.vo.RestoreClock(i) }

// SkewGrid arms a deterministic seeded skew schedule across every site:
// offsets drawn uniformly from [-max, +max] plus a small drift in the same
// direction. Returns the offsets applied, keyed by site name.
func (g *Grid) SkewGrid(seed int64, max time.Duration) map[string]time.Duration {
	return g.vo.ScheduleSkew(seed, max)
}

// SuperPeerOf returns the current super-peer site name seen by site i.
func (g *Grid) SuperPeerOf(i int) string {
	return g.vo.Nodes[i].Agent.View().SuperPeer.Name
}

// EpochOf returns the view epoch site i currently holds — the overlay's
// fencing token, which every election, takeover or split-brain merge
// advances.
func (g *Grid) EpochOf(i int) uint64 {
	return g.vo.Nodes[i].Agent.View().Epoch
}

// IsSuperPeer reports whether site i currently acts as a super-peer.
func (g *Grid) IsSuperPeer(i int) bool {
	return g.vo.Nodes[i].Agent.Role().String() == "SuperPeer"
}

// StartMonitors launches every site's background monitors (cache
// refresher, index monitor, status monitor, peer liveness).
func (g *Grid) StartMonitors() {
	for i, n := range g.vo.Nodes {
		if !g.vo.Stopped(i) {
			n.RDM.StartMonitors(rdm.DefaultIntervals())
		}
	}
}

// Close stops the whole VO.
func (g *Grid) Close() { g.vo.Close() }

// Client is a handle on one site's local GLARE service — the only
// interface a scheduler, enactment engine, or activity provider uses.
type Client struct {
	svc *rdm.Service
}

// SiteName returns the name of the Grid site this client talks to.
func (c *Client) SiteName() string { return c.svc.Site().Attrs.Name }

// Telemetry returns the site's observability bundle (metrics + traces).
func (c *Client) Telemetry() *Telemetry { return c.svc.Telemetry() }

// RegisterType registers an activity type with the local GLARE service.
// Registration on a single site is enough: the distributed framework makes
// it discoverable VO-wide.
func (c *Client) RegisterType(t *Type) error {
	_, err := c.svc.RegisterType(t)
	return err
}

// RegisterTypes registers several types, stopping at the first error.
func (c *Client) RegisterTypes(types ...*Type) error {
	for _, t := range types {
		if err := c.RegisterType(t); err != nil {
			return fmt.Errorf("glare: registering %q: %w", t.Name, err)
		}
	}
	return nil
}

// RegisterDeployment exposes pre-installed software as a deployment.
func (c *Client) RegisterDeployment(d *Deployment) error {
	_, err := c.svc.RegisterDeployment(d)
	return err
}

// ProvisionExecutable materializes a pre-installed executable on the
// site's (simulated) filesystem, so deployments registered for software
// that was "already there" can actually be instantiated. On a real Grid
// site the file would simply exist.
func (c *Client) ProvisionExecutable(path string) {
	c.svc.Site().FS.Write(path, site.KindExecutable, 1<<20, "", "")
}

// Discover resolves an activity type (abstract or concrete) to its
// deployments across the VO, installing on demand when none exist.
func (c *Client) Discover(typeName string) ([]*Deployment, error) {
	return c.svc.GetDeployments(typeName, rdm.MethodExpect, true)
}

// DiscoverNoDeploy resolves deployments but never installs.
func (c *Client) DiscoverNoDeploy(typeName string) ([]*Deployment, error) {
	return c.svc.GetDeployments(typeName, rdm.MethodExpect, false)
}

// Deploy forces an on-demand deployment of a concrete type with the given
// method and returns the per-phase timing report.
func (c *Client) Deploy(typeName string, method Method) (*DeployReport, error) {
	return c.svc.DeployOnDemand(typeName, method)
}

// Undeploy removes a deployment from this site (registry entry, installed
// files, hosted service).
func (c *Client) Undeploy(deployment string) error { return c.svc.Undeploy(deployment) }

// Migrate moves a deployment from this site to another eligible one.
func (c *Client) Migrate(deployment string, method Method) (*DeployReport, error) {
	return c.svc.Migrate(deployment, method)
}

// Lease reserves a deployment for a client over the duration. Kind is
// LeaseExclusive or LeaseShared.
func (c *Client) Lease(deployment, client string, kind lease.Kind, d time.Duration) (Ticket, error) {
	return c.svc.Leases.Acquire(deployment, client, kind, d)
}

// SetSharedLimit bounds concurrent shared lessees of a deployment.
func (c *Client) SetSharedLimit(deployment string, max int) {
	c.svc.Leases.SetSharedLimit(deployment, max)
}

// Release ends a lease early.
func (c *Client) Release(ticketID uint64) error { return c.svc.Leases.Release(ticketID) }

// Instantiate runs a deployment (as a GRAM job for executables), enforcing
// leases; ticketID 0 means unleased use.
func (c *Client) Instantiate(deployment, client string, ticketID uint64, args string) error {
	return c.svc.Instantiate(deployment, client, ticketID, args)
}

// Subscribe registers a callback for local GLARE events on a topic
// (TopicDeployment, TopicResourceCreated, ...).
func (c *Client) Subscribe(topic string, fn func(Notification)) error {
	_, err := c.svc.Broker().Subscribe(topic, wsrf.SinkFunc(fn))
	return err
}

// Notification topics.
const (
	TopicDeployment        = wsrf.TopicDeployment
	TopicResourceCreated   = wsrf.TopicResourceCreated
	TopicResourceUpdated   = wsrf.TopicResourceUpdated
	TopicResourceDestroyed = wsrf.TopicResourceDestroyed
	TopicElection          = wsrf.TopicElection
)

// Search ranks the site's registered activity types against a semantic
// capability description (paper §6 future work: ontological type search).
func (c *Client) Search(q SemanticQuery) ([]SemanticMatch, error) {
	return c.svc.SearchTypes(q)
}

// WrapService generates and registers a web-service wrapper around an
// executable deployment (the paper's planned Otho-toolkit integration for
// legacy code).
func (c *Client) WrapService(executableDeployment string) (*Deployment, error) {
	return c.svc.WrapService(executableDeployment)
}

// ResolveTypes resolves an activity type name (abstract or concrete) to
// the concrete types known across the VO, without touching deployments.
// The replication invariant checker uses it to prove an acknowledged
// registration is still resolvable after its owning site died.
func (c *Client) ResolveTypes(typeName string) ([]*Type, error) {
	return c.svc.ResolveConcrete(typeName)
}

// CheckReplicas runs one replica failure-detection pass on this site:
// ping every peer-group member, raise suspicion on silence, and promote
// the most-caught-up replica of any member that stayed silent for the
// suspicion threshold. Only super-peers act; it returns the number of
// promotions triggered. Tests call it directly; StartMonitors paces it.
func (c *Client) CheckReplicas() int { return c.svc.CheckReplicas() }

// RepairReplicas runs one read-repair pass on this site: back-fill
// replica entries this site missed, and hand adopted data back to a
// replaced origin that answers again. It returns the number of entries
// repaired. Tests call it directly; StartMonitors paces it.
func (c *Client) RepairReplicas() int { return c.svc.RepairReplicas() }

// SyncRegistries runs one anti-entropy reconciliation pass from this site
// (normally paced by StartMonitors on super-peers): exchange registry
// digests with the overlay, pull entries that are missing or newer there
// into the two-level cache, and re-register local types with the index.
// It returns the number of entries pulled.
func (c *Client) SyncRegistries() int { return c.svc.SyncRegistries() }

// Types lists the activity types registered on this site.
func (c *Client) Types() []string { return c.svc.ATR.Names() }

// Deployments lists the deployments registered on this site.
func (c *Client) Deployments() []*Deployment { return c.svc.ADR.All() }

// StoreStatus reports the site's durable-store summary; ok is false on
// memory-only sites (no GridOptions.DataDir).
func (c *Client) StoreStatus() (StoreStatus, bool) {
	st := c.svc.Store()
	if st == nil {
		return StoreStatus{}, false
	}
	return st.Status(), true
}

// DeployEngineStatus reports the site's deployment execution engine state:
// in-flight builds, queue pressure, quarantined types and resumable
// checkpointed builds.
func (c *Client) DeployEngineStatus() DeployStatus {
	return c.svc.DeployRunStatus()
}

// SampleHistory takes one telemetry-history sample on this site: it walks
// the site's metric registry into the round-robin store and evaluates the
// alert rules. It returns the number of series sampled. Tests call it
// directly between virtual-clock advances; StartMonitors paces it in real
// time.
func (c *Client) SampleHistory() int { return c.svc.SampleTelemetry() }

// RollupHistory runs one super-peer rollup pass, consolidating the
// community members' archives into grid-wide "grid:<metric>" series. It
// returns the number of points folded; non-super-peers fold nothing.
func (c *Client) RollupHistory() int { return c.svc.RollupHistory() }

// History exposes this site's round-robin time-series store (nil when
// GridOptions.History.Disabled is set).
func (c *Client) History() *HistoryStore { return c.svc.History() }

// FiringAlerts lists the site's currently firing alert-rule instances.
func (c *Client) FiringAlerts() []Alert { return c.svc.FiringAlerts() }

// AdminNotices returns the site administrator's mailbox (manual-install
// requests, failure notifications).
func (c *Client) AdminNotices() []string {
	var out []string
	for _, n := range c.svc.Site().Notices() {
		out = append(out, n.Subject+": "+n.Body)
	}
	return out
}
