package glare

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"glare/internal/faultinject"
)

// skewSeed returns the seed for a test's skew schedule: GLARE_SKEW_SEED
// when set (CI sweeps several), otherwise def.
func skewSeed(t *testing.T, def int64) int64 {
	s := os.Getenv("GLARE_SKEW_SEED")
	if s == "" {
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad GLARE_SKEW_SEED %q: %v", s, err)
	}
	return n
}

// These are the clock-skew acceptance paths: the PR-8 registration crash
// storm and the PR-3 partition/heal convergence path re-run with every
// site's wall clock displaced by a seeded ±10-minute schedule (plus
// drift), and with an extra backward clock STEP injected mid-workload.
// The invariants must hold exactly as they do with true clocks: zero
// acknowledged-write loss, no resurrection of acknowledged deletes, and
// post-heal convergence to a single reign with both sides' registrations
// resolvable everywhere. See internal/replicate's skew regression tests
// for the demonstration that these invariants genuinely fail when the
// HLC stamp source is reverted to raw wall clocks.

// TestSkewedCrashStormZeroAckedWriteLoss: the replication crash storm
// under maximal clock disagreement. Two of a group's three replica
// holders die permanently mid-storm while their clocks disagree by up to
// 20 minutes — and one owner's clock is stepped 10 minutes BACKWARD
// between its registrations, so its later writes carry older wall times.
// Every registration a client was acked must still resolve after
// failover, and an acknowledged undeploy must stay deleted.
func TestSkewedCrashStormZeroAckedWriteLoss(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:           6,
		GroupSize:       3,
		Replicas:        3,
		DataDir:         t.TempDir(),
		DisableCache:    true,
		BreakerCooldown: 50 * time.Millisecond,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	// Seeded schedule: every site draws an offset from ±10 minutes plus a
	// proportional drift. Skew is injected AFTER election so the storm
	// runs entirely on disagreeing clocks.
	offsets := g.SkewGrid(skewSeed(t, 2006), 10*time.Minute)
	if len(offsets) != 6 {
		t.Fatalf("skew schedule covered %d sites, want 6", len(offsets))
	}
	spread := false
	for _, off := range offsets {
		if off > time.Minute || off < -time.Minute {
			spread = true
		}
	}
	if !spread {
		t.Fatalf("seeded schedule produced no meaningful skew: %v", offsets)
	}

	sp, owners := replicaGroup(t, g)
	killed := map[int]bool{}
	group := append([]int{sp}, owners...)
	drain := func() {
		for _, i := range group {
			if !killed[i] {
				g.Client(i).RepairReplicas()
			}
		}
	}

	// Tombstone-under-backward-step prologue: an owner registers a
	// deployment, its clock steps 10 minutes backward (so the delete will
	// carry an older WALL time than the put it follows), and the client
	// undeploys it — acked. After the owner's death and failover, the
	// deployment must stay deleted: a promoted replica resurrecting it
	// would be serving a write the client was told was gone.
	doomedOwner := owners[0]
	doomed := g.Client(doomedOwner)
	doomed.ProvisionExecutable("/opt/doomed/bin/doomed-dep")
	if err := doomed.RegisterDeployment(&Deployment{
		Name: "doomed-dep", Type: "DoomedApp", Kind: KindExecutable,
		Site: doomed.SiteName(), Path: "/opt/doomed/bin/doomed-dep",
	}); err != nil {
		t.Fatal(err)
	}
	drain()
	g.SkewSite(doomedOwner, g.ClockOffset(doomedOwner)-10*time.Minute)
	if err := doomed.Undeploy("doomed-dep"); err != nil {
		t.Fatal(err)
	}
	drain()

	storm := &faultinject.CrashStorm{
		Register: func(i int) (string, error) {
			if i == 8 {
				// Mid-storm NTP step: every still-alive owner's clock
				// jumps 10 minutes backward. Later registrations and
				// deletes on these sites carry older WALL times than
				// earlier ones; their HLC stamps must keep ordering
				// forward anyway.
				for _, o := range owners {
					if !killed[o] {
						g.SkewSite(o, g.ClockOffset(o)-10*time.Minute)
					}
				}
			}
			name := fmt.Sprintf("SkewStormType%02d", i)
			for try := 0; try < len(owners); try++ {
				o := owners[(i+try)%len(owners)]
				if killed[o] {
					continue
				}
				if err := g.Client(o).RegisterType(&Type{Name: name, Domain: "SkewStorm"}); err != nil {
					return "", err
				}
				return name, nil
			}
			return "", fmt.Errorf("all owners dead")
		},
		Kill: func(site int) error {
			drain()
			killed[site] = true
			return g.KillSite(site)
		},
		Victims:       owners,
		Registrations: 24,
		Seed:          2006,
	}
	if err := storm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(storm.Acked()) == 0 {
		t.Fatal("storm acknowledged no registrations; nothing to verify")
	}

	// Failover: two silent passes per dead site, then promotion.
	survivor := g.Client(sp)
	survivor.CheckReplicas()
	if n := survivor.CheckReplicas(); n == 0 {
		t.Fatal("second CheckReplicas pass promoted nothing")
	}

	// The invariant under skew: zero acknowledged-write loss.
	if lost := storm.Verify(func(name string) error {
		types, err := survivor.ResolveTypes(name)
		if err != nil {
			return err
		}
		if len(types) == 0 {
			return fmt.Errorf("no concrete types for %q", name)
		}
		return nil
	}); len(lost) != 0 {
		t.Fatalf("acknowledged registrations lost after failover under skew: %v", lost)
	}

	// No tombstone resurrection: the undeploy acked across the backward
	// clock step stays deleted after its owner's death and promotion.
	if deps, err := survivor.DiscoverNoDeploy("DoomedApp"); err == nil && depNames(deps)["doomed-dep"] {
		t.Fatal("acknowledged undeploy resurrected after failover under a backward clock step")
	}

	// The grid noticed the skew: sites exchanged stamps disagreeing far
	// beyond the alarm bound, so detections counted somewhere, and the
	// overlay's ViewStatus reports the worst observation per site.
	detections := uint64(0)
	for i := 0; i < g.Sites(); i++ {
		if killed[i] {
			continue
		}
		detections += g.Telemetry(i).Counter("glare_clock_skew_detected_total").Value()
	}
	if detections == 0 {
		t.Fatal("glare_clock_skew_detected_total = 0 grid-wide under a ±10-minute schedule")
	}
	status, err := g.vo.Client.Call(g.vo.Nodes[sp].Info.PeerURL(), "ViewStatus", nil)
	if err != nil {
		t.Fatal(err)
	}
	if status.AttrOr("skewMs", "") == "" {
		t.Fatal("ViewStatus carries no skewMs column")
	}
}

// TestSkewedPartitionHealSingleReign: the partition/heal acceptance path
// under the seeded skew schedule. The split halves elect rival reigns,
// register on both sides (on disagreeing clocks), and after the heal the
// grid must converge to one reign with both sides' registrations
// resolvable from every site — the same post-heal state a true-clock
// grid reaches.
func TestSkewedPartitionHealSingleReign(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:           6,
		GroupSize:       6,
		ChaosSeed:       43,
		CallTimeout:     300 * time.Millisecond,
		BreakerCooldown: 200 * time.Millisecond,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	g.SkewGrid(skewSeed(t, 2007), 10*time.Minute)

	sp := -1
	for i := 0; i < g.Sites(); i++ {
		if g.IsSuperPeer(i) {
			sp = i
		}
	}
	if sp < 0 {
		t.Fatal("no super-peer elected")
	}
	sideA, sideB := sidesOf(g, sp)
	winner, detector := sideB[0], sideB[2]

	if err := g.PartitionSites(sideA, sideB); err != nil {
		t.Fatal(err)
	}
	agent := g.vo.Nodes[detector].Agent
	agent.DetectAndRecover()
	if initiated, err := agent.DetectAndRecover(); err != nil || !initiated {
		t.Fatalf("recovery not initiated at suspicion threshold: %v %v", initiated, err)
	}
	waitUntil(t, 10*time.Second, func() bool {
		return g.IsSuperPeer(winner) && g.EpochOf(winner) == 2
	}, "side-B takeover under skew")

	// Both halves register on maximally disagreeing clocks; side A's
	// registrar additionally steps backward mid-partition, so its
	// registration carries an older wall time than work it causally
	// follows.
	g.SkewSite(sideA[1], g.ClockOffset(sideA[1])-10*time.Minute)
	registerDeployment(t, g, sideA[1], "skew-left-dep", "SkewLeftApp")
	registerDeployment(t, g, sideB[1], "skew-right-dep", "SkewRightApp")

	if err := g.HealPartition(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 15*time.Second, func() bool {
		for i := 0; i < g.Sites(); i++ {
			g.vo.Nodes[i].Agent.CheckRivals()
		}
		supers := 0
		for i := 0; i < g.Sites(); i++ {
			if g.IsSuperPeer(i) {
				supers++
			}
		}
		if supers != 1 {
			return false
		}
		want := g.SuperPeerOf(winner)
		for i := 0; i < g.Sites(); i++ {
			if g.SuperPeerOf(i) != want {
				return false
			}
		}
		return true
	}, "post-heal convergence to a single reign under skew")

	// Identical post-heal contents: both sides' registrations resolve
	// from every site, skew notwithstanding.
	for i := 0; i < g.Sites(); i++ {
		c := g.Client(i)
		for typeName, name := range map[string]string{
			"SkewLeftApp":  "skew-left-dep",
			"SkewRightApp": "skew-right-dep",
		} {
			typeName, name := typeName, name
			waitUntil(t, 10*time.Second, func() bool {
				deps, err := c.DiscoverNoDeploy(typeName)
				return err == nil && depNames(deps)[name]
			}, "resolving "+typeName+" from site "+g.SiteName(i))
		}
	}
	// Anti-entropy still pulls across the healed (and skewed) halves.
	if pulled := g.vo.Nodes[winner].RDM.SyncRegistries(); pulled == 0 {
		t.Fatal("registry sync pulled nothing after the heal under skew")
	}
}
