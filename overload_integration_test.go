package glare

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"glare/internal/rdm"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

// floodAdmission pins every class's limit (AIMD off) so the flood's
// capacity arithmetic is deterministic: interactive saturates at 4
// concurrent slots, bulk at 1 with almost no queue, control has ample
// headroom.
func floodAdmission() *AdmissionConfig {
	return &AdmissionConfig{
		Control:     ClassLimits{Limit: 8, MinLimit: 8, MaxLimit: 8, QueueDepth: 16},
		Interactive: ClassLimits{Limit: 4, MinLimit: 4, MaxLimit: 4, QueueDepth: 10},
		Bulk:        ClassLimits{Limit: 1, MinLimit: 1, MaxLimit: 1, QueueDepth: 2},
	}
}

// TestFloodBrownoutHoldsGoodput is the overload acceptance path (the
// paper's Fig. 10/11 shape, with the admission layer standing in for the
// index that used to collapse): a client horde at 20x the interactive
// capacity hammers one site while control probes and bulk scans run
// alongside. The site must brown out gracefully — bulk sheds, control
// and interactive hold — with total interactive goodput no worse than
// 80% of the pre-saturation plateau, and not a single request may begin
// executing after its propagated deadline expired.
func TestFloodBrownoutHoldsGoodput(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2, RealTime: true, Admission: floodAdmission()})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}

	// The interactive workload is a dedicated operation whose handler
	// checks the zero-post-deadline-execution property on entry: the
	// transport's gates must make the violation count impossible to move.
	target := g.vo.Nodes[0]
	var violations atomic.Int64
	target.Server.RegisterCtx("FloodSvc", "Work",
		func(ctx context.Context, _ *telemetry.Span, _ *xmlutil.Node) (*xmlutil.Node, error) {
			if dl, ok := ctx.Deadline(); ok && time.Now().After(dl) {
				violations.Add(1)
			}
			// Service time large enough to dominate per-request transport
			// and scheduling overhead (CI runners can be single-core), so
			// goodput is governed by the 4 admission slots.
			time.Sleep(80 * time.Millisecond)
			return xmlutil.NewNode("Done"), nil
		})
	workURL := target.Info.BaseURL + transport.ServicePrefix + "FloodSvc"
	peerURL := target.Info.PeerURL()
	rdmURL := target.Info.ServiceURL(rdm.ServiceName)

	// No retry policy: every shed, brownout and expiry surfaces to the
	// tally instead of being papered over.
	cli := transport.NewClient(nil)
	t.Cleanup(cli.CloseIdle)
	callOp := func(url, op string) func(ctx context.Context) error {
		return func(ctx context.Context) error {
			_, err := cli.CallCtx(ctx, nil, url, op, nil)
			if transport.IsOverloadReject(err) {
				// Jittered polite-client backoff keeps a shed fleet from
				// busy-spinning (and from melting the site with refusal
				// traffic) without synchronizing into retry bursts that
				// would leave the admission queue draining dry between them.
				time.Sleep(100*time.Millisecond + time.Duration(rand.Int63n(int64(150*time.Millisecond))))
			}
			return err
		}
	}
	interactive := func(clients int, ramp time.Duration) workload.FloodOp {
		return workload.FloodOp{
			Name: "work", Class: "interactive", Clients: clients, Ramp: ramp,
			Budget: 250 * time.Millisecond, Do: callOp(workURL, "Work"),
		}
	}

	// Pre-saturation plateau: a fleet exactly the size of the interactive
	// limit — slots full, queue empty, nothing shed.
	plateau := workload.RunFlood(context.Background(), workload.FloodConfig{
		Duration: 600 * time.Millisecond,
		Ops:      []workload.FloodOp{interactive(4, 0)},
	})
	base := plateau.Op("work")
	if base.OK == 0 || base.Shed != 0 {
		t.Fatalf("plateau not clean: %+v", base)
	}

	// Flood: 20x interactive capacity, with live control and bulk mixes.
	flood := workload.RunFlood(context.Background(), workload.FloodConfig{
		Duration: 1200 * time.Millisecond,
		Ops: []workload.FloodOp{
			// The horde arrives over 200ms, the way real client crowds do,
			// rather than as one phase-locked burst.
			interactive(80, 200*time.Millisecond),
			{Name: "probe", Class: "control", Clients: 4,
				Budget: 300 * time.Millisecond, Do: callOp(peerURL, "ViewStatus")},
			{Name: "scan", Class: "bulk", Clients: 8,
				Budget: 150 * time.Millisecond, Do: callOp(rdmURL, "RegistryDigest")},
		},
	})

	if n := violations.Load(); n != 0 {
		t.Errorf("%d request(s) began executing after their propagated deadline expired", n)
	}
	work := flood.Op("work")
	if work.Goodput < 0.8*base.Goodput {
		t.Errorf("interactive goodput %.0f/s under 20x flood, want >= 80%% of plateau %.0f/s",
			work.Goodput, base.Goodput)
	}
	probe := flood.Op("probe")
	if probe.OK == 0 {
		t.Error("control plane starved during flood")
	}
	if probe.Shed != 0 {
		t.Errorf("control plane shed %d request(s); the top class must never brown out", probe.Shed)
	}
	scan := flood.Op("scan")
	if scan.Shed == 0 {
		t.Errorf("bulk never shed under 20x flood: %+v", scan)
	}

	// The controller's own accounting agrees with the client-side tally.
	st := g.OverloadStatus(0)
	if len(st) != 3 {
		t.Fatalf("OverloadStatus = %+v, want 3 classes", st)
	}
	if st[2].Sheds == 0 {
		t.Errorf("admission controller recorded no bulk sheds: %+v", st[2])
	}
	if st[0].Sheds != 0 {
		t.Errorf("admission controller shed control requests: %+v", st[0])
	}
	t.Logf("plateau %.0f/s; flood: work %.0f/s (shed %d, expired %d, p99 %v), probe p99 %v, scan shed %d",
		base.Goodput, work.Goodput, work.Shed, work.Expired, work.P99, probe.P99, scan.Shed)
}

// TestFloodDisabledAdmissionStillMeasures sanity-checks the AdmissionOff
// baseline used by overload experiments: with the controller off, the
// same flood runs unprotected (no sheds, no LoadStatus) — the
// configuration the paper's collapsing index corresponds to.
func TestFloodDisabledAdmissionStillMeasures(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1, RealTime: true, AdmissionOff: true})
	if st := g.OverloadStatus(0); st != nil {
		t.Fatalf("OverloadStatus with AdmissionOff = %+v, want nil", st)
	}
	target := g.vo.Nodes[0]
	cli := transport.NewClient(nil)
	t.Cleanup(cli.CloseIdle)
	res := workload.RunFlood(context.Background(), workload.FloodConfig{
		Duration: 100 * time.Millisecond,
		Ops: []workload.FloodOp{{
			Name: "probe", Class: "control", Clients: 2,
			Budget: 200 * time.Millisecond,
			Do: func(ctx context.Context) error {
				_, err := cli.CallCtx(ctx, nil, target.Info.PeerURL(), "ViewStatus", nil)
				return err
			},
		}},
	})
	probe := res.Op("probe")
	if probe.OK == 0 || probe.Shed != 0 {
		t.Fatalf("unprotected flood stats = %+v, want successes and zero sheds", probe)
	}
}
