package glare_test

import (
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun executes every example main to completion; examples are
// living documentation and must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	examples := []string{
		"quickstart",
		"povray-workflow",
		"ondemand-deploy",
		"leasing",
		"workflow-enactment",
		"manual-vs-glare",
		"superpeer-failover",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+ex)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example failed: %v\n%s", err, out)
				}
			case <-time.After(120 * time.Second):
				if cmd.Process != nil {
					cmd.Process.Kill()
				}
				t.Fatal("example timed out")
			}
		})
	}
}
