// Clock-skew benchmarks: how long a partitioned-then-healed grid takes to
// converge back to full cross-site resolution, and how much anti-entropy
// work the heal costs, at increasing amounts of injected clock skew. CI
// publishes the numbers as BENCH_skew.json so a skew-sensitivity
// regression (convergence slowing down, or sync suddenly re-pulling
// entries it should recognise) shows up as a metric shift.
package glare_test

import (
	"fmt"
	"testing"
	"time"

	"glare"
)

// BenchmarkSkewConvergence splits a 4-site grid, registers on both sides,
// heals, and clocks the time until both registrations resolve from every
// site — with every site's clock displaced by a seeded schedule drawn
// from ±maxSkew. The relative encoding of deadlines and the HLC ordering
// stamps mean convergence time should be flat across the skew axis; the
// entries-pulled metric counts the anti-entropy transfer volume per heal.
func BenchmarkSkewConvergence(b *testing.B) {
	for _, bench := range []struct {
		name    string
		maxSkew time.Duration
	}{{"true-clocks", 0}, {"skew-1m", time.Minute}, {"skew-10m", 10 * time.Minute}} {
		b.Run(bench.name, func(b *testing.B) {
			var totalMS, totalPulled float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := glare.NewGrid(glare.GridOptions{
					Sites:           4,
					GroupSize:       4,
					ChaosSeed:       int64(100 + i),
					CallTimeout:     300 * time.Millisecond,
					BreakerCooldown: 100 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := g.Elect(); err != nil {
					b.Fatal(err)
				}
				if bench.maxSkew > 0 {
					g.SkewGrid(int64(2008+i), bench.maxSkew)
				}
				var sideA, sideB []int
				for j := 0; j < g.Sites(); j++ {
					if j%2 == 0 {
						sideA = append(sideA, j)
					} else {
						sideB = append(sideB, j)
					}
				}
				if err := g.PartitionSites(sideA, sideB); err != nil {
					b.Fatal(err)
				}
				left := fmt.Sprintf("SkewBenchLeft%06d", i)
				right := fmt.Sprintf("SkewBenchRight%06d", i)
				if err := g.Client(sideA[1]).RegisterType(&glare.Type{Name: left, Domain: "Bench"}); err != nil {
					b.Fatal(err)
				}
				if err := g.Client(sideB[1]).RegisterType(&glare.Type{Name: right, Domain: "Bench"}); err != nil {
					b.Fatal(err)
				}
				if err := g.HealPartition(); err != nil {
					b.Fatal(err)
				}
				pulledBefore := syncPulledTotal(g)
				b.StartTimer()
				start := time.Now()
				deadline := start.Add(20 * time.Second)
				for {
					for j := 0; j < g.Sites(); j++ {
						g.Client(j).SyncRegistries()
					}
					if resolvesEverywhere(g, left) && resolvesEverywhere(g, right) {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("heal did not converge within 20s at %s", bench.name)
					}
				}
				elapsed := time.Since(start)
				b.StopTimer()
				totalMS += float64(elapsed.Microseconds()) / 1e3
				totalPulled += float64(syncPulledTotal(g) - pulledBefore)
				g.Close()
			}
			b.ReportMetric(totalMS/float64(b.N), "converge-ms")
			b.ReportMetric(totalPulled/float64(b.N), "entries-pulled")
		})
	}
}

// resolvesEverywhere reports whether every site resolves typeName.
func resolvesEverywhere(g *glare.Grid, typeName string) bool {
	for j := 0; j < g.Sites(); j++ {
		types, err := g.Client(j).ResolveTypes(typeName)
		if err != nil || len(types) == 0 {
			return false
		}
	}
	return true
}

// syncPulledTotal sums the anti-entropy pull counter across the grid.
func syncPulledTotal(g *glare.Grid) uint64 {
	var n uint64
	for j := 0; j < g.Sites(); j++ {
		n += g.Telemetry(j).Counter("glare_sync_entries_pulled_total").Value()
	}
	return n
}
