// Super-peer failover: form a VO, kill the elected super-peer, and watch
// the surviving members verify the failure, agree by majority and promote
// the highest-ranked survivor (paper §3.3). Discovery keeps working
// throughout.
//
// Run with: go run ./examples/superpeer-failover
package main

import (
	"fmt"
	"log"
	"time"

	"glare"
)

func main() {
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 5, GroupSize: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Elect(); err != nil {
		log.Fatal(err)
	}

	spName := grid.SuperPeerOf(0)
	fmt.Printf("elected super-peer: %s\n", spName)
	for i := 0; i < grid.Sites(); i++ {
		role := "member"
		if grid.IsSuperPeer(i) {
			role = "SUPER-PEER"
		}
		fmt.Printf("  %-22s %s\n", grid.SiteName(i), role)
	}

	// Register the imaging stack on a member that will survive.
	spIdx, survivor := -1, -1
	for i := 0; i < grid.Sites(); i++ {
		if grid.SiteName(i) == spName {
			spIdx = i
		} else if survivor < 0 {
			survivor = i
		}
	}
	if err := grid.Client(survivor).RegisterTypes(glare.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nkilling super-peer %s ...\n", spName)
	grid.StopSite(spIdx)

	// Start the liveness monitors: a member detects the failure, notifies
	// the highest-ranked survivor, which verifies, collects majority
	// acknowledgements, and takes over.
	grid.StartMonitors()
	deadline := time.Now().Add(30 * time.Second)
	for {
		newSP := grid.SuperPeerOf(survivor)
		if newSP != spName && newSP != "" {
			fmt.Printf("re-election complete: new super-peer is %s\n", newSP)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("re-election did not complete")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The system keeps working: every survivor can still resolve types.
	for i := 0; i < grid.Sites(); i++ {
		if i == spIdx {
			continue
		}
		deps, err := grid.Client(i).Discover("POVray")
		if err != nil {
			log.Fatalf("%s cannot discover after failover: %v", grid.SiteName(i), err)
		}
		fmt.Printf("  %-22s still resolves POVray -> %d deployments\n",
			grid.SiteName(i), len(deps))
	}
	fmt.Println("the rest of the GLARE system continued working")
}
