// On-demand deployment with automatic dependency resolution: deploying
// JPOVray pulls in Java and Ant first (paper §2.2's walkthrough), and the
// per-phase timing report mirrors Table 1's rows. Both deployment methods
// are shown.
//
// Run with: go run ./examples/ondemand-deploy
package main

import (
	"fmt"
	"log"

	"glare"
)

func main() {
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Elect(); err != nil {
		log.Fatal(err)
	}
	provider := grid.Client(0)
	if err := provider.RegisterTypes(glare.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}
	if err := provider.RegisterTypes(glare.EvaluationTypes()...); err != nil {
		log.Fatal(err)
	}

	// Deploy JPOVray with the Expect-driven deployment handler: GLARE
	// discovers the Java and Ant dependencies are missing on the target
	// site, installs them first, then builds JPOVray with ant and
	// registers every produced deployment.
	site1 := grid.Client(1)
	rep, err := site1.Deploy("JPOVray", glare.MethodExpect)
	if err != nil {
		log.Fatal(err)
	}
	printReport("JPOVray via Expect (includes Java+Ant dependency installs)", rep)

	// The same application via the JavaCoG path on the other site: every
	// step is a GRAM job, transfers go through the CoG client, and the kit
	// pays its startup overhead — uniformly slower, as in Table 1.
	site0 := grid.Client(0)
	rep2, err := site0.Deploy("Wien2k", glare.MethodCoG)
	if err != nil {
		log.Fatal(err)
	}
	printReport("Wien2k via Java CoG", rep2)

	rep3, err := site0.Deploy("Invmod", glare.MethodExpect)
	if err != nil {
		log.Fatal(err)
	}
	printReport("Invmod via Expect", rep3)

	// The type registry now knows where everything is deployed.
	fmt.Println("\ndeployments on", site1.SiteName())
	for _, d := range site1.Deployments() {
		fmt.Printf("  %-12s type=%-8s kind=%s\n", d.Name, d.Type, d.Kind)
	}
}

func printReport(title string, rep *glare.DeployReport) {
	fmt.Printf("\n%s — deployed on %s\n", title, rep.Site)
	t := rep.Timings
	fmt.Printf("  activity type addition   %6d ms\n", t.TypeAddition.Milliseconds())
	fmt.Printf("  communication overhead   %6d ms\n", t.Communication.Milliseconds())
	fmt.Printf("  installation/deployment  %6d ms\n", t.Installation.Milliseconds())
	fmt.Printf("  deployment registration  %6d ms\n", t.Registration.Milliseconds())
	fmt.Printf("  notification             %6d ms\n", t.Notification.Milliseconds())
	fmt.Printf("  method overhead          %6d ms\n", t.MethodOverhead.Milliseconds())
	fmt.Printf("  TOTAL for meta-scheduler %6d ms (virtual time)\n", t.Total().Milliseconds())
	for _, d := range rep.Deployments {
		fmt.Printf("  -> %s (%s)\n", d.Name, d.Kind)
	}
}
