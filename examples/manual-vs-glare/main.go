// The paper's motivation (Section 2) side by side: deploying and running
// JPOVray with BASIC Grid services (Example 1 — the developer drives MDS,
// GridFTP and GRAM by hand, step by step) versus with GLARE (Example 3 —
// one request against the local service).
//
// Both paths run against the same simulated site substrate, so the manual
// path really performs every transfer, build and registry update the paper
// lists — and the step counts speak for themselves.
//
// Run with: go run ./examples/manual-vs-glare
package main

import (
	"fmt"
	"log"
	"time"

	"glare"
	"glare/internal/epr"
	"glare/internal/gram"
	"glare/internal/gridftp"
	"glare/internal/mds"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

func main() {
	manualSteps, manualTime := manualPath()
	glareSteps, glareTime := glarePath()

	fmt.Println("\n================== comparison ==================")
	fmt.Printf("basic Grid services (Example 1): %2d developer steps, %8v virtual\n",
		manualSteps, manualTime)
	fmt.Printf("GLARE              (Example 3): %2d developer steps, %8v virtual\n",
		glareSteps, glareTime)
	fmt.Println("GLARE spends slightly more machine time (type registration,")
	fmt.Println("deployment registration, notification — Table 1's meta-scheduler")
	fmt.Println("overhead) to reduce nineteen hand-written steps to two, and the")
	fmt.Println("workflow never mentions a path, host, or installer.")
}

// manualPath replays Example 1: the developer queries MDS, transfers
// installers with GridFTP, writes deployment scripts and submits them as
// GRAM jobs — for Java, Ant, and finally JPOVray.
func manualPath() (steps int, elapsed time.Duration) {
	clock := simclock.NewVirtual(time.Time{})
	repo := site.StandardUniverse()
	target := site.New(site.Attributes{
		Name: "manual.site", Platform: "Intel", OS: "Linux", Arch: "32bit",
		ProcessorMHz: 1500, MemoryMB: 2048, Processors: 4,
	}, clock, repo)
	ftp := gridftp.NewClient(clock, repo, gridftp.DefaultCost)
	jobs := gram.NewManager(target, clock)
	index := mds.New("mds", mds.DefaultIndex, clock)
	start := clock.Now()

	step := func(what string) {
		steps++
		fmt.Printf("  [manual %2d] %s\n", steps, what)
	}
	mustJob := func(cmd, dir string, env map[string]string) {
		if _, code, err := jobs.SubmitWait(cmd, dir, env); code != 0 {
			log.Fatalf("manual path: %s: %v", cmd, err)
		}
	}
	queryMDS := func(q string) bool {
		res, err := index.QueryString(q)
		if err != nil {
			log.Fatal(err)
		}
		return !res.Empty()
	}
	registerMDS := func(name, home string) {
		doc := xmlutil.NewNode("Deployment")
		doc.SetAttr("name", name)
		doc.Elem("Home", home)
		index.Register(epr.New("http://manual.site/wsrf/services/MDS", "Key", name), doc)
	}

	fmt.Println("deploying JPOVray with basic Grid services (Example 1):")
	for _, tool := range []struct{ name, archive, srcDir, install string }{
		{"Java", "jdk.tgz", "jdk-1.4.2", "sh /tmp/manual/jdk-1.4.2/install.sh /opt/manual/java"},
		{"Ant", "ant.tgz", "apache-ant-1.6.5", "make install"},
	} {
		step("query MDS for location of " + tool.name)
		if queryMDS(fmt.Sprintf(`//Deployment[@name='%s']`, tool.name)) {
			continue
		}
		a, _ := repo.ByName(tool.name)
		step("query MDS for the location of the " + tool.name + " installation file")
		step("transfer installation file to target site (GridFTP)")
		if err := ftp.Fetch(a.URL, target, "/tmp/manual/"+tool.archive); err != nil {
			log.Fatal(err)
		}
		step("create user-defined deployment script")
		step("submit installation script using GRAM")
		mustJob("tar xvfz /tmp/manual/"+tool.archive, "/tmp/manual", nil)
		if tool.name == "Ant" {
			mustJob(tool.install, "/tmp/manual/"+tool.srcDir,
				map[string]string{"DEPLOYMENT_DIR": "/opt/manual"})
		} else {
			mustJob(tool.install, "/tmp/manual", nil)
		}
		step("update MDS with the information about the deployed " + tool.name)
		registerMDS(tool.name, "/opt/manual/"+tool.name)
	}

	jp, _ := repo.ByName("JPOVray")
	step("query MDS for libraries")
	step("transfer JPOVray source code (GridFTP)")
	if err := ftp.Fetch(jp.URL, target, "/tmp/manual/jpovray.tgz"); err != nil {
		log.Fatal(err)
	}
	step("create script to remotely build and deploy JPOVray")
	step("submit deployment script through GRAM")
	mustJob("tar xvfz /tmp/manual/jpovray.tgz", "/tmp/manual", nil)
	mustJob("ant Deploy", "/tmp/manual/jpovray-1.0",
		map[string]string{"DEPLOYMENT_DIR": "/opt/manual"})
	step("update MDS with information about newly deployed JPOVray")
	registerMDS("jpovray", "/opt/manual/jpovray")
	step("query MDS to find JPOVray service location")
	if !queryMDS(`//Deployment[@name='jpovray']`) {
		log.Fatal("manual path: deployment lost")
	}
	step("create script to run jpovray; submit through GRAM")
	mustJob("jpovray scene.pov", "/opt/manual/jpovray", nil)
	return steps, clock.Now().Sub(start)
}

// glarePath replays Example 3: one local GLARE service call.
func glarePath() (steps int, elapsed time.Duration) {
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	c := grid.Client(0)
	if err := c.RegisterTypes(workload.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeploying JPOVray with GLARE (Example 3):")
	start := grid.Now()

	steps++
	fmt.Printf("  [glare %d] Result = Get ImageConversion deployments using local GLARE\n", steps)
	deps, err := c.Discover("ImageConversion")
	if err != nil {
		log.Fatal(err)
	}
	steps++
	fmt.Printf("  [glare %d] select a deployment and instantiate it\n", steps)
	if err := c.Instantiate(deps[0].Name, "user", 0, "scene.pov"); err != nil {
		log.Fatal(err)
	}
	return steps, grid.Now().Sub(start)
}
