// Deployment leasing (paper §3.2): a scheduler leases an activity
// deployment exclusively for a timeframe; only the ticket holder may
// instantiate it. Shared leases admit several clients up to a
// concurrency limit.
//
// Run with: go run ./examples/leasing
package main

import (
	"fmt"
	"log"
	"time"

	"glare"
)

func main() {
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	c := grid.Client(0)
	if err := c.RegisterTypes(glare.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Discover("JPOVray"); err != nil {
		log.Fatal(err)
	}

	// --- exclusive lease -------------------------------------------------
	ticket, err := c.Lease("jpovray", "scheduler-A", glare.LeaseExclusive, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler-A holds exclusive lease #%d on jpovray\n", ticket.ID)

	// No one else can lease or use it during the timeframe.
	if _, err := c.Lease("jpovray", "scheduler-B", glare.LeaseShared, time.Hour); err != nil {
		fmt.Println("scheduler-B lease refused: ", err)
	}
	if err := c.Instantiate("jpovray", "scheduler-B", 0, ""); err != nil {
		fmt.Println("scheduler-B unleased use refused:", err)
	}
	// The holder runs it with the ticket.
	if err := c.Instantiate("jpovray", "scheduler-A", ticket.ID, "scene.pov"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("scheduler-A instantiated the leased activity")
	if err := c.Release(ticket.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("lease released")

	// --- shared lease with a concurrency limit ---------------------------
	c.SetSharedLimit("jpovray", 2)
	t1, err := c.Lease("jpovray", "client-1", glare.LeaseShared, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := c.Lease("jpovray", "client-2", glare.LeaseShared, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared lessees: client-1 (#%d), client-2 (#%d)\n", t1.ID, t2.ID)
	_, err = c.Lease("jpovray", "client-3", glare.LeaseShared, time.Hour)
	if err == nil {
		log.Fatal("third shared lease should have been refused")
	}
	fmt.Println("client-3 refused: concurrent client limit (2) reached")
	for _, t := range []glare.Ticket{t1, t2} {
		if err := c.Instantiate("jpovray", t.Client, t.ID, ""); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("both shared lessees instantiated the activity — QoS held")
}
