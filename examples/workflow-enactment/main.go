// Full workflow enactment through GLARE: a four-activity diamond workflow
// composed purely against activity types is parsed from AGWL XML, every
// activity is resolved to a deployment (installing software on demand),
// data is staged between activities, and the look-ahead scheduler hides
// the deployment overhead of later stages behind the execution of earlier
// ones — the paper's proposed "intelligent look-ahead scheduling".
//
// Run with: go run ./examples/workflow-enactment
package main

import (
	"fmt"
	"log"

	"glare"
)

const workflowXML = `
<Workflow name="imaging-pipeline">
  <Activity name="render" type="ImageConversion">
    <Input name="scene" source="user:scene.pov"/>
    <Output name="raw"/>
    <Arg>quality=high</Arg>
  </Activity>
  <Activity name="filter-a" type="JPOVray">
    <Input name="in" source="render:raw"/>
    <Output name="out"/>
  </Activity>
  <Activity name="filter-b" type="JPOVray">
    <Input name="in" source="render:raw"/>
    <Output name="out"/>
  </Activity>
  <Activity name="analyze" type="Wien2k">
    <Input name="x" source="filter-a:out"/>
    <Input name="y" source="filter-b:out"/>
  </Activity>
</Workflow>`

func main() {
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Elect(); err != nil {
		log.Fatal(err)
	}
	provider := grid.Client(0)
	if err := provider.RegisterTypes(glare.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}
	if err := provider.RegisterTypes(glare.EvaluationTypes()...); err != nil {
		log.Fatal(err)
	}

	w, err := glare.ParseWorkflow(workflowXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %q: %d activities over types %v\n",
		w.Name, len(w.Activities), w.Types())

	rep, err := grid.Enact(w, glare.EnactOptions{
		Home:      1,
		LookAhead: true,
		Client:    "pipeline-user",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenactment complete (makespan %v virtual, %d inter-site data moves)\n",
		rep.Makespan, rep.DataMoves)
	for _, p := range rep.Placements {
		note := ""
		if p.Retried {
			note = " (after retry)"
		}
		fmt.Printf("  %-10s -> %-12s (%s) on %s%s\n",
			p.Activity, p.Deployment, p.Kind, p.Site, note)
	}
	fmt.Println("\nno executable, path, or site ever appeared in the workflow document")
}
