// The paper's Section-2 workflow: ImageConversion followed by
// Visualization (Fig. 1). The workflow is composed against ACTIVITY TYPES
// only — the developer never names an executable, a path, or a site. A
// tiny enactment loop resolves each activity through GLARE at run time.
//
// Run with: go run ./examples/povray-workflow
package main

import (
	"fmt"
	"log"

	"glare"
)

// step is one workflow activity: the abstract type it needs, and who runs
// it (grid-side or on the client's own station).
type step struct {
	Name     string
	TypeName string
	Local    bool // visualization runs on the user's station, not the Grid
}

func main() {
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Elect(); err != nil {
		log.Fatal(err)
	}
	provider := grid.Client(0)
	if err := provider.RegisterTypes(glare.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}
	// The visualization tool is pre-installed on the user's "local
	// station" (site 2 plays that role) and registered as a deployment of
	// a dynamically created type.
	station := grid.Client(2)
	station.ProvisionExecutable("/usr/local/bin/imageviewer")
	if err := station.RegisterDeployment(&glare.Deployment{
		Name: "imageviewer", Type: "Visualization", Kind: glare.KindExecutable,
		Path: "/usr/local/bin/imageviewer", Home: "/usr/local",
	}); err != nil {
		log.Fatal(err)
	}

	workflow := []step{
		{Name: "convert scene.pov to image", TypeName: "ImageConversion"},
		{Name: "visualize the image", TypeName: "Visualization", Local: true},
	}

	// Enactment: for each activity, ask the LOCAL GLARE service for
	// deployments of the required type and pick the first (a real
	// scheduler would rank them by the registered metrics).
	scheduler := grid.Client(1)
	for i, st := range workflow {
		client := scheduler
		if st.Local {
			client = station
		}
		deps, err := client.Discover(st.TypeName)
		if err != nil {
			log.Fatalf("step %d (%s): %v", i+1, st.Name, err)
		}
		chosen := deps[0]
		fmt.Printf("step %d: %-28s -> type %-15s -> deployment %s on %s\n",
			i+1, st.Name, st.TypeName, chosen.Name, chosen.Site)
		// Instantiation must go through the deployment's own site.
		owner := clientFor(grid, chosen.Site)
		if owner == nil {
			log.Fatalf("no client for site %s", chosen.Site)
		}
		if err := owner.Instantiate(chosen.Name, "workflow", 0, "input"); err != nil {
			log.Fatalf("step %d: instantiate: %v", i+1, err)
		}
	}
	fmt.Println("workflow completed: the developer only ever named activity types")
}

func clientFor(grid *glare.Grid, siteName string) *glare.Client {
	for i := 0; i < grid.Sites(); i++ {
		if grid.SiteName(i) == siteName {
			return grid.Client(i)
		}
	}
	return nil
}
