// Quickstart: bring up a small Virtual Organization, register the paper's
// imaging activity types on one site, and discover deployments from
// another — GLARE installs the software on demand and returns references.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"glare"
)

func main() {
	// Three Grid sites on loopback, full per-site GLARE stack each.
	grid, err := glare.NewGrid(glare.GridOptions{Sites: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	if err := grid.Elect(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VO up with %d sites; super-peer of site 0 is %s\n",
		grid.Sites(), grid.SuperPeerOf(0))

	// The activity provider registers the type hierarchy ON ONE SITE ONLY;
	// the distributed framework makes it discoverable everywhere.
	provider := grid.Client(0)
	if err := provider.RegisterTypes(glare.ImagingTypes()...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provider registered %d activity types on %s\n",
		len(glare.ImagingTypes()), provider.SiteName())

	// A scheduler on a different site asks for the ABSTRACT type
	// ImageConversion. GLARE resolves it to the concrete JPOVray, sees no
	// deployment anywhere in the VO, installs Java, Ant and JPOVray on a
	// suitable site, and returns the deployment references.
	scheduler := grid.Client(1)
	deps, err := scheduler.Discover("ImageConversion")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler on %s resolved ImageConversion to %d deployments:\n",
		scheduler.SiteName(), len(deps))
	for _, d := range deps {
		loc := d.Path
		if d.Kind == glare.KindService {
			loc = d.Address
		}
		fmt.Printf("  %-12s %-10s on %-22s %s\n", d.Name, d.Kind, d.Site, loc)
	}

	// The scheduler picks one and runs it.
	if err := scheduler.Instantiate("jpovray", "quickstart", 0, "scene.pov"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("instantiated jpovray as a GRAM job — done")
}
