package glare

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"glare/internal/faultinject"
)

// replicaGroup locates a peer group that does not contain site 0 (the
// community-index holder, which cannot be killed) and splits it into the
// super-peer's index and the other members.
func replicaGroup(t *testing.T, g *Grid) (sp int, members []int) {
	t.Helper()
	groups := map[string][]int{}
	for i := 0; i < g.Sites(); i++ {
		groups[g.SuperPeerOf(i)] = append(groups[g.SuperPeerOf(i)], i)
	}
	for _, idx := range groups {
		holder := false
		for _, i := range idx {
			if i == 0 {
				holder = true
			}
		}
		if holder {
			continue
		}
		sp = -1
		for _, i := range idx {
			if g.IsSuperPeer(i) {
				sp = i
			} else {
				members = append(members, i)
			}
		}
		if sp >= 0 && len(members) == 2 {
			return sp, members
		}
	}
	t.Fatalf("no killable group of 3 found; groups=%v", groups)
	return 0, nil
}

// TestReplicationSurvivesPermanentSiteLoss is the replication acceptance
// path: a 6-site grid (two groups of 3, replication factor 3) runs a
// registration crash storm that permanently kills 2 of one group's 3
// replica holders — including registration owners — mid-workload. The
// surviving super-peer detects the losses and promotes itself as the
// most-caught-up replica; afterwards every client-acknowledged
// registration must still resolve: the zero-acknowledged-write-loss
// invariant with K-1 simultaneous permanent deaths. A replacement site
// then joins under a dead site's name and receives its data back.
func TestReplicationSurvivesPermanentSiteLoss(t *testing.T) {
	dataDir := t.TempDir()
	g := newGrid(t, GridOptions{
		Sites:     6,
		GroupSize: 3,
		Replicas:  3,
		DataDir:   dataDir,
		// Caches off so post-failover resolution provably hits promoted
		// registry state, not a stale cache entry.
		DisableCache: true,
		// The survivor's breaker opens against the dead addresses during
		// failure detection; a short cooldown lets its half-open probe
		// rediscover the replacement site quickly.
		BreakerCooldown: 50 * time.Millisecond,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	sp, owners := replicaGroup(t, g)

	killed := map[int]bool{}
	group := append([]int{sp}, owners...)
	// drain lets asynchronous replica fan-out and read repair settle
	// before a kill: the documented guarantee is quorum at ack time plus
	// repair closing the remaining gap within the suspicion window.
	drain := func() {
		for _, i := range group {
			if !killed[i] {
				g.Client(i).RepairReplicas()
			}
		}
	}
	ownerOf := map[string]int{}
	storm := &faultinject.CrashStorm{
		Register: func(i int) (string, error) {
			name := fmt.Sprintf("StormType%02d", i)
			for try := 0; try < len(owners); try++ {
				o := owners[(i+try)%len(owners)]
				if killed[o] {
					continue
				}
				if err := g.Client(o).RegisterType(&Type{Name: name, Domain: "CrashStorm"}); err != nil {
					return "", err
				}
				ownerOf[name] = o
				return name, nil
			}
			return "", fmt.Errorf("all owners dead")
		},
		Kill: func(site int) error {
			drain()
			killed[site] = true
			return g.KillSite(site)
		},
		Victims:       owners,
		Registrations: 24,
		Seed:          2005,
	}
	if err := storm.Run(); err != nil {
		t.Fatal(err)
	}
	if got := storm.Killed(); len(got) != 2 {
		t.Fatalf("storm killed %v, want both owners %v", got, owners)
	}
	if len(storm.Acked()) == 0 {
		t.Fatal("storm acknowledged no registrations; nothing to verify")
	}

	// The dead sites' journals are gone — there is genuinely nothing to
	// restart, and RestartSite says so.
	for _, o := range owners {
		if _, err := os.Stat(filepath.Join(dataDir, fmt.Sprintf("site-%02d", o+1))); !os.IsNotExist(err) {
			t.Fatalf("killed site %d still has a data dir (err=%v)", o, err)
		}
		if err := g.RestartSite(o); err == nil || !strings.Contains(err.Error(), "ReplaceSite") {
			t.Fatalf("RestartSite(%d) after KillSite = %v, want ReplaceSite hint", o, err)
		}
	}

	// Failover: the surviving super-peer's failure detector needs two
	// silent passes per site (the suspicion threshold) before it promotes
	// the most-caught-up replica — itself, the only holder left.
	survivor := g.Client(sp)
	survivor.CheckReplicas()
	if n := survivor.CheckReplicas(); n == 0 {
		t.Fatal("second CheckReplicas pass promoted nothing")
	}
	if n := g.Telemetry(sp).Counter("glare_replica_promotions_total").Value(); n == 0 {
		t.Fatal("glare_replica_promotions_total = 0 after failover")
	}

	// The invariant: every registration a client was told succeeded is
	// still resolvable from the healed grid.
	if lost := storm.Verify(func(name string) error {
		types, err := survivor.ResolveTypes(name)
		if err != nil {
			return err
		}
		if len(types) == 0 {
			return fmt.Errorf("no concrete types for %q", name)
		}
		return nil
	}); len(lost) != 0 {
		t.Fatalf("acknowledged registrations lost after failover: %v", lost)
	}
	// Cross-group spot check: a site in the other group resolves an
	// affected type through the super-peer overlay.
	var other int
	for i := 1; i < g.Sites(); i++ {
		if i != sp && !killed[i] {
			other = i
			break
		}
	}
	probe := storm.Acked()[0]
	if types, err := g.Client(other).ResolveTypes(probe); err != nil || len(types) == 0 {
		t.Fatalf("cross-group resolution of %q from site %d: types=%v err=%v", probe, other, types, err)
	}

	// With the whole replica set but the super-peer dead, a fresh write
	// cannot reach a quorum — the site refuses the ack rather than
	// promising durability it cannot provide.
	if err := survivor.RegisterType(&Type{Name: "PostStormType", Domain: "CrashStorm"}); err == nil ||
		!strings.Contains(err.Error(), "quorum") {
		t.Fatalf("registration without a reachable quorum = %v, want quorum error", err)
	}
	if n := g.Telemetry(sp).Counter("glare_replica_quorum_failures_total").Value(); n == 0 {
		t.Fatal("glare_replica_quorum_failures_total = 0 after failed registration")
	}

	// Replacement: a fresh, empty site joins under the first dead site's
	// name; the next repair pass hands its adopted data back.
	dead := storm.Killed()[0]
	if err := g.ReplaceSite(dead); err != nil {
		t.Fatal(err)
	}
	if got := g.Client(dead).Types(); len(got) != 0 {
		t.Fatalf("replacement site started with state: %v", got)
	}
	// Repair passes hand the data back once the survivor's breaker
	// half-opens against the replacement's address.
	replTypes := map[string]bool{}
	for attempt := 0; attempt < 20 && len(replTypes) == 0; attempt++ {
		survivor.RepairReplicas()
		for _, name := range g.Client(dead).Types() {
			replTypes[name] = true
		}
		if len(replTypes) == 0 {
			time.Sleep(100 * time.Millisecond)
		}
	}
	for _, name := range storm.Acked() {
		if ownerOf[name] == dead && !replTypes[name] {
			t.Fatalf("replacement site missing handed-off registration %q (has %v)", name, g.Client(dead).Types())
		}
	}
	if n := g.Telemetry(sp).Counter("glare_replica_handoffs_total").Value(); n == 0 {
		t.Fatal("glare_replica_handoffs_total = 0 after hand-off")
	}
}

// TestSiteLifecycleGuards pins the lifecycle error surface: RestartSite
// refuses sites that were never stopped, sites already restarted, and
// sites removed permanently; KillSite refuses the community-index holder
// and double kills; ReplaceSite refuses sites that still exist.
func TestSiteLifecycleGuards(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3, DataDir: t.TempDir()})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}

	// Restarting a live site must not race the live listener.
	if err := g.RestartSite(1); err == nil || !strings.Contains(err.Error(), "not stopped") {
		t.Fatalf("RestartSite on a running site = %v, want not-stopped error", err)
	}
	g.StopSite(1)
	if err := g.RestartSite(1); err != nil {
		t.Fatal(err)
	}
	// The restart consumed the stop: a second restart has nothing to do.
	if err := g.RestartSite(1); err == nil || !strings.Contains(err.Error(), "not stopped") {
		t.Fatalf("double RestartSite = %v, want not-stopped error", err)
	}

	if err := g.KillSite(0); err == nil {
		t.Fatal("killed the community-index holder")
	}
	if err := g.ReplaceSite(2); err == nil {
		t.Fatal("replaced a site that was never killed")
	}
	if err := g.KillSite(2); err != nil {
		t.Fatal(err)
	}
	if err := g.KillSite(2); err == nil {
		t.Fatal("killed the same site twice")
	}
	if err := g.RestartSite(2); err == nil || !strings.Contains(err.Error(), "ReplaceSite") {
		t.Fatalf("RestartSite on a killed site = %v, want ReplaceSite hint", err)
	}
	if err := g.ReplaceSite(2); err != nil {
		t.Fatal(err)
	}
	// The replacement is a live site again: normal lifecycle applies.
	if err := g.RestartSite(2); err == nil || !strings.Contains(err.Error(), "not stopped") {
		t.Fatalf("RestartSite on a replaced live site = %v, want not-stopped error", err)
	}
}
