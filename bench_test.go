// Benchmark harness: one benchmark (family) per table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md. The
// full sweeps with printed rows live in cmd/experiments; these benches
// measure the same operations under `go test -bench`.
package glare_test

import (
	"fmt"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/agwl"
	"glare/internal/atr"
	"glare/internal/enactor"
	"glare/internal/experiments"
	"glare/internal/mds"
	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/vo"
	"glare/internal/workload"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
	"glare/internal/xpath"
)

// --------------------------------------------------------------- Table 1

// BenchmarkTable1 regenerates the deployment-cost table (virtual clock, so
// an iteration costs milliseconds of real time). The virtual totals are
// reported as custom metrics.
func BenchmarkTable1(b *testing.B) {
	for _, method := range []rdm.Method{rdm.MethodExpect, rdm.MethodCoG} {
		for _, ty := range workload.EvaluationTypes() {
			b.Run(fmt.Sprintf("%s/%s", method, ty.Name), func(b *testing.B) {
				var total time.Duration
				for i := 0; i < b.N; i++ {
					v, err := vo.Build(vo.Options{Sites: 1})
					if err != nil {
						b.Fatal(err)
					}
					if err := v.RegisterImagingStack(0); err != nil {
						b.Fatal(err)
					}
					for _, tool := range []string{"Java", "Ant"} {
						tt, _ := v.Nodes[0].RDM.LookupType(tool)
						if _, err := v.Nodes[0].RDM.DeployLocal(tt, rdm.MethodExpect); err != nil {
							b.Fatal(err)
						}
					}
					rep, err := v.Nodes[0].RDM.DeployLocal(ty, method)
					if err != nil {
						b.Fatal(err)
					}
					total += rep.Timings.Total()
					v.Close()
				}
				b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "virtual-ms/deploy")
			})
		}
	}
}

// --------------------------------------------------------------- Fig. 10

// fig10Bench measures one named-resource query against either service over
// real loopback HTTP, the operation whose rate Fig. 10 plots.
func fig10Bench(b *testing.B, service string, secure bool, resources int) {
	b.Helper()
	tb, err := experiments.NewBenchTestbed(resources, secure)
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := tb.QueryOnce(service, i); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkFig10_ATR_HTTP(b *testing.B)    { fig10Bench(b, "ATR", false, 100) }
func BenchmarkFig10_Index_HTTP(b *testing.B)  { fig10Bench(b, "Index", false, 100) }
func BenchmarkFig10_ATR_HTTPS(b *testing.B)   { fig10Bench(b, "ATR", true, 100) }
func BenchmarkFig10_Index_HTTPS(b *testing.B) { fig10Bench(b, "Index", true, 100) }

// --------------------------------------------------------------- Fig. 11

// Fig. 11 varies the number of registered resources: the registry's named
// lookup stays flat while the index's XPath scan degrades.
func BenchmarkFig11_ResourceSweep(b *testing.B) {
	for _, resources := range []int{10, 100, 300} {
		for _, service := range []string{"ATR", "Index"} {
			b.Run(fmt.Sprintf("%s/%dresources", service, resources), func(b *testing.B) {
				fig10Bench(b, service, false, resources)
			})
		}
	}
}

// --------------------------------------------------------------- Fig. 12

// fig12Bench measures one deployment-list request from a client site, with
// entries spread over `sites` holder sites.
func fig12Bench(b *testing.B, sites int, cacheOn bool) {
	b.Helper()
	const entries = 240
	v, err := vo.Build(vo.Options{
		Sites:             sites + 1,
		GroupSize:         sites + 1,
		Clock:             simclock.Real,
		CacheDisabled:     !cacheOn,
		CacheTTL:          time.Hour,
		ScanDelayPerEntry: 50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer v.Close()
	if err := v.ElectSuperPeers(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		holder := v.Nodes[1+i%sites]
		d := &activity.Deployment{
			Name: fmt.Sprintf("dep-%04d", i), Type: "Fig12App",
			Kind: activity.KindExecutable, Site: holder.Info.Name,
			Path: fmt.Sprintf("/opt/fig12/bin/dep-%04d", i),
		}
		if _, err := holder.RDM.RegisterDeployment(d); err != nil {
			b.Fatal(err)
		}
	}
	client := v.Nodes[0].RDM
	if _, err := client.GetDeployments("Fig12App", rdm.MethodExpect, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.GetDeployments("Fig12App", rdm.MethodExpect, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12_Cache1Site(b *testing.B)   { fig12Bench(b, 1, true) }
func BenchmarkFig12_NoCache1Site(b *testing.B) { fig12Bench(b, 1, false) }
func BenchmarkFig12_NoCache3Sites(b *testing.B) {
	if testing.Short() {
		b.Skip("multi-site")
	}
	fig12Bench(b, 3, false)
}
func BenchmarkFig12_NoCache7Sites(b *testing.B) {
	if testing.Short() {
		b.Skip("multi-site")
	}
	fig12Bench(b, 7, false)
}

// --------------------------------------------------------------- Fig. 13

// BenchmarkFig13_NotificationFanout measures one notification published to
// N subscribed sinks — the per-tick work whose queueing Fig. 13's load
// average tracks.
func BenchmarkFig13_NotificationFanout(b *testing.B) {
	for _, sinks := range []int{10, 90, 210} {
		b.Run(fmt.Sprintf("%dsinks", sinks), func(b *testing.B) {
			broker := wsrf.NewBroker(nil)
			delivered := 0
			for i := 0; i < sinks; i++ {
				broker.Subscribe(wsrf.TopicDeployment, wsrf.SinkFunc(func(wsrf.Notification) {
					delivered++
				}))
			}
			msg := xmlutil.NewNode("Deployed")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := broker.Publish(wsrf.TopicDeployment, "bench", msg); n != sinks {
					b.Fatalf("published to %d sinks", n)
				}
			}
		})
	}
}

// -------------------------------------------------------------- Ablations

// BenchmarkAblation_NamedLookup compares the two query paths inside the
// same registry: the hash table (GLARE's named lookup) versus an XPath
// scan over the aggregation (the Index Service's only mechanism). This is
// the design choice the paper credits for Figs. 10/11.
func BenchmarkAblation_NamedLookup(b *testing.B) {
	for _, resources := range []int{100, 300} {
		reg := atr.New("", nil, nil)
		for _, ty := range workload.SyntheticTypes(resources) {
			if _, err := reg.Register(ty); err != nil {
				b.Fatal(err)
			}
		}
		idx := mds.New("bench", mds.DefaultIndex, nil)
		for _, ty := range reg.Types() {
			idx.Register(reg.EPR(ty.Name), ty.ToXML())
		}
		target := fmt.Sprintf("Synthetic%04d", resources/2)
		b.Run(fmt.Sprintf("hash/%dresources", resources), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := reg.Lookup(target); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
		expr := xpath.MustCompile(fmt.Sprintf(`//ActivityTypeEntry[@name='%s']`, target))
		b.Run(fmt.Sprintf("xpath/%dresources", resources), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := idx.Query(expr)
				if err != nil || len(res.Nodes) != 1 {
					b.Fatalf("query failed: %v", err)
				}
			}
		})
	}
}

// BenchmarkAblation_Cache compares repeat lookups with the two-level cache
// on and off (Fig. 12's cached series as an isolated design choice).
func BenchmarkAblation_Cache(b *testing.B) {
	for _, cacheOn := range []bool{true, false} {
		name := "off"
		if cacheOn {
			name = "on"
		}
		b.Run(name, func(b *testing.B) { fig12Bench(b, 1, cacheOn) })
	}
}

// BenchmarkDeploy compares the two deployment methods end to end under the
// virtual clock (Table 1's two halves as an ablation of the deployment
// handler design).
func BenchmarkDeploy(b *testing.B) {
	for _, method := range []rdm.Method{rdm.MethodExpect, rdm.MethodCoG} {
		b.Run(string(method), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				v, err := vo.Build(vo.Options{Sites: 1})
				if err != nil {
					b.Fatal(err)
				}
				ty := workload.EvaluationTypes()[0] // Wien2k
				rep, err := v.Nodes[0].RDM.DeployLocal(ty, method)
				if err != nil {
					b.Fatal(err)
				}
				total += rep.Timings.Total()
				v.Close()
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "virtual-ms/deploy")
		})
	}
}

// BenchmarkAblation_LookAhead compares workflow makespan with and without
// the look-ahead scheduler (the paper's proposed optimization: hide
// on-demand deployment of later stages behind the execution of earlier
// ones). Runs on a scaled-real clock so concurrency genuinely overlaps.
func BenchmarkAblation_LookAhead(b *testing.B) {
	for _, lookAhead := range []bool{true, false} {
		name := "without"
		if lookAhead {
			name = "with"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				clock := simclock.NewScaled(1000)
				v, err := vo.Build(vo.Options{Sites: 1, Clock: clock})
				if err != nil {
					b.Fatal(err)
				}
				if err := v.RegisterImagingStack(0); err != nil {
					b.Fatal(err)
				}
				if err := v.RegisterEvaluationApps(0); err != nil {
					b.Fatal(err)
				}
				eng := &enactor.Engine{
					Home:      v.Nodes[0].RDM,
					Sites:     map[string]*rdm.Service{v.Nodes[0].Info.Name: v.Nodes[0].RDM},
					FTP:       v.Nodes[0].RDM.FTP,
					Clock:     clock,
					LookAhead: lookAhead,
				}
				w, err := agwl.ParseString(`
<Workflow name="two-stage">
  <Activity name="one" type="JPOVray"><Output name="o"/></Activity>
  <Activity name="two" type="Wien2k"><Input name="i" source="one:o"/></Activity>
</Workflow>`)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := eng.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				total += rep.Makespan
				v.Close()
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "scaled-ms/makespan")
		})
	}
}

// BenchmarkElection measures super-peer election time over a real VO.
func BenchmarkElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunElection(7, 3)
		if err != nil {
			b.Fatal(err)
		}
		if st.SuperPeers != 3 {
			b.Fatalf("super-peers = %d", st.SuperPeers)
		}
	}
}
