package glare

import (
	"testing"
	"time"

	"glare/internal/simclock"
)

// registerDeployment registers a pre-installed executable deployment of
// typeName on site i (dynamically registering the concrete type).
func registerDeployment(t *testing.T, g *Grid, i int, name, typeName string) {
	t.Helper()
	c := g.Client(i)
	c.ProvisionExecutable("/opt/robust/bin/" + name)
	if err := c.RegisterDeployment(&Deployment{
		Name: name,
		Type: typeName,
		Kind: KindExecutable,
		Site: c.SiteName(),
		Path: "/opt/robust/bin/" + name,
	}); err != nil {
		t.Fatal(err)
	}
}

func depNames(deps []*Deployment) map[string]bool {
	out := map[string]bool{}
	for _, d := range deps {
		out[d.Name] = true
	}
	return out
}

// TestResolutionSurvivesBlackHoledSite is the robustness acceptance path:
// a three-site VO with deterministic fault injection black-holes one site
// mid-run; resolution from another site still returns the live sites'
// deployments with no error surfaced to the enactor, and the caller's
// /metrics shows nonzero retry and breaker-open counters.
func TestResolutionSurvivesBlackHoledSite(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:        3,
		GroupSize:    3,
		DisableCache: true, // every resolution re-fans-out
		ChaosSeed:    42,
		CallTimeout:  250 * time.Millisecond, // quick black-hole timeouts
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	registerDeployment(t, g, 0, "dep-a", "ChaosApp")
	registerDeployment(t, g, 2, "dep-c", "ChaosApp")
	scheduler := g.Client(1)

	// Healthy baseline: both deployments resolve.
	deps, err := scheduler.DiscoverNoDeploy("ChaosApp")
	if err != nil {
		t.Fatal(err)
	}
	if names := depNames(deps); !names["dep-a"] || !names["dep-c"] {
		t.Fatalf("healthy resolution = %v", names)
	}

	// Partition site 0: requests to it hang until the caller's timeout.
	if err := g.BlackHoleSite(0); err != nil {
		t.Fatal(err)
	}
	deps, err = scheduler.DiscoverNoDeploy("ChaosApp")
	if err != nil {
		t.Fatalf("resolution must survive a black-holed site, got %v", err)
	}
	names := depNames(deps)
	if !names["dep-c"] {
		t.Fatalf("live site's deployment missing: %v", names)
	}
	if names["dep-a"] {
		t.Fatalf("partitioned site's deployment should be absent: %v", names)
	}
	if n := g.Telemetry(1).Counter("glare_rdm_resolve_degraded_total").Value(); n == 0 {
		t.Fatal("degraded counter did not move")
	}

	// The caller's own /metrics page tells the story: retries were spent
	// and the dead destination's breaker tripped open.
	metrics := scrapeAdmin(t, g.SiteURL(1)+"/metrics")
	if !nonzeroSeries(metrics, "glare_transport_retries_total{") {
		t.Fatal("no transport retries on the caller's /metrics")
	}
	if !nonzeroSeries(metrics, "glare_transport_breaker_open_total{") {
		t.Fatal("no breaker-open events on the caller's /metrics")
	}

	// Healing the partition restores full resolution.
	if err := g.RestoreSite(0); err != nil {
		t.Fatal(err)
	}
	// The breaker may still be open for a few seconds; the degraded answer
	// in the meantime must keep coming from the live site.
	deps, err = scheduler.DiscoverNoDeploy("ChaosApp")
	if err != nil {
		t.Fatal(err)
	}
	if names := depNames(deps); !names["dep-c"] {
		t.Fatalf("post-restore resolution = %v", names)
	}
}

// TestFanOutWithDeadPeerReturnsLivePeers stops one of three sites outright
// (connection refused, not a timeout): the deployment fan-out still
// returns the surviving peers' deployments and counts the resolution as
// degraded.
func TestFanOutWithDeadPeerReturnsLivePeers(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3, GroupSize: 3, DisableCache: true})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	registerDeployment(t, g, 0, "fan-a", "FanApp")
	registerDeployment(t, g, 2, "fan-c", "FanApp")
	scheduler := g.Client(1)

	if n := g.Telemetry(1).Counter("glare_rdm_resolve_degraded_total").Value(); n != 0 {
		t.Fatalf("degraded = %d before any failure", n)
	}
	g.StopSite(0)

	deps, err := scheduler.DiscoverNoDeploy("FanApp")
	if err != nil {
		t.Fatalf("fan-out with one dead peer must succeed: %v", err)
	}
	names := depNames(deps)
	if !names["fan-c"] || names["fan-a"] {
		t.Fatalf("deployments = %v, want only the live peer's", names)
	}
	if n := g.Telemetry(1).Counter("glare_rdm_resolve_degraded_total").Value(); n == 0 {
		t.Fatal("degraded counter did not move")
	}
}

// TestStaleCacheServesDegradedResults exercises graceful degradation: when
// every peer is unreachable and the cache entries have expired past their
// TTL (but within the revival window), resolution serves the stale entries
// marked Degraded instead of failing.
func TestStaleCacheServesDegradedResults(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3, GroupSize: 3, ChaosSeed: 7})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	registerDeployment(t, g, 0, "stale-a", "StaleApp")
	scheduler := g.Client(1)

	// Warm the cache with a healthy resolution.
	deps, err := scheduler.DiscoverNoDeploy("StaleApp")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0].Degraded {
		t.Fatalf("healthy resolution = %+v", deps)
	}

	// Expire the cache (TTL 5m) while staying inside the 30m revival
	// window, then cut site 1 off from every peer.
	g.vo.Clock.(*simclock.Virtual).Advance(10 * time.Minute)
	if err := g.DropSite(0); err != nil {
		t.Fatal(err)
	}
	if err := g.DropSite(2); err != nil {
		t.Fatal(err)
	}

	deps, err = scheduler.DiscoverNoDeploy("StaleApp")
	if err != nil {
		t.Fatalf("degraded resolution must serve stale cache, got %v", err)
	}
	if len(deps) != 1 || deps[0].Name != "stale-a" {
		t.Fatalf("stale resolution = %+v", deps)
	}
	if !deps[0].Degraded {
		t.Fatal("stale-served deployment not marked Degraded")
	}
	tel := g.Telemetry(1)
	if n := tel.Counter("glare_rdm_resolve_degraded_total").Value(); n == 0 {
		t.Fatal("degraded counter did not move")
	}
	metrics := scrapeAdmin(t, g.SiteURL(1)+"/metrics")
	if !nonzeroSeries(metrics, "glare_rdm_cache_stale_served_total{") {
		t.Fatal("no stale-served series on /metrics")
	}

	// Past the revival window even stale entries are gone: resolution now
	// fails rather than serving arbitrarily old data.
	g.vo.Clock.(*simclock.Virtual).Advance(time.Hour)
	if _, err := scheduler.DiscoverNoDeploy("StaleApp"); err == nil {
		t.Fatal("resolution served data older than the revival window")
	}
}
