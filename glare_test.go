package glare

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func newGrid(t *testing.T, opts GridOptions) *Grid {
	t.Helper()
	g, err := NewGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func TestQuickstartFlow(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	provider := g.Client(0)
	if err := provider.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	scheduler := g.Client(1)
	deps, err := scheduler.Discover("ImageConversion")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) == 0 {
		t.Fatal("no deployments")
	}
	names := map[string]bool{}
	for _, d := range deps {
		names[d.Name] = true
	}
	if !names["jpovray"] || !names["WS-JPOVray"] {
		t.Fatalf("deployments = %v", names)
	}
}

func TestGridAccessors(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2})
	if g.Sites() != 2 {
		t.Fatalf("sites = %d", g.Sites())
	}
	if g.SiteName(0) == "" || g.SiteURL(0) == "" {
		t.Fatal("site identity empty")
	}
	if g.Client(5) != nil || g.Client(-1) != nil {
		t.Fatal("out-of-range client must be nil")
	}
	if g.Client(0).SiteName() != g.SiteName(0) {
		t.Fatal("client site mismatch")
	}
}

func TestLeasingThroughFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1})
	c := g.Client(0)
	if err := c.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Discover("JPOVray"); err != nil {
		t.Fatal(err)
	}
	tk, err := c.Lease("jpovray", "sched", LeaseExclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Instantiate("jpovray", "sched", tk.ID, "scene.pov"); err != nil {
		t.Fatal(err)
	}
	if err := c.Instantiate("jpovray", "other", 0, ""); err == nil {
		t.Fatal("exclusive lease not enforced")
	}
	if err := c.Release(tk.ID); err != nil {
		t.Fatal(err)
	}
	c.SetSharedLimit("jpovray", 1)
	if _, err := c.Lease("jpovray", "a", LeaseShared, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lease("jpovray", "b", LeaseShared, time.Hour); err == nil {
		t.Fatal("shared limit not enforced")
	}
}

func TestSubscriptionsThroughFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1})
	c := g.Client(0)
	var mu sync.Mutex
	var seen []string
	if err := c.Subscribe(TopicDeployment, func(n Notification) {
		mu.Lock()
		seen = append(seen, n.Producer)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	c.RegisterTypes(ImagingTypes()...)
	if _, err := c.Discover("JPOVray"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no deployment notifications")
	}
}

func TestFailoverThroughFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 4, GroupSize: 4})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	spName := g.SuperPeerOf(0)
	spIdx := -1
	for i := 0; i < g.Sites(); i++ {
		if g.SiteName(i) == spName {
			spIdx = i
		}
	}
	g.StopSite(spIdx)
	survivor := (spIdx + 1) % g.Sites()
	// Trigger detection directly (monitors would do this periodically);
	// the suspicion counter needs two consecutive missed probes.
	gvo := g.vo
	for i := 0; i < 2; i++ {
		if _, err := gvo.Nodes[survivor].Agent.DetectAndRecover(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for g.SuperPeerOf(survivor) == spName {
		select {
		case <-deadline:
			t.Fatal("no re-election")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !strings.HasPrefix(g.SuperPeerOf(survivor), "agrid") {
		t.Fatalf("new super-peer = %q", g.SuperPeerOf(survivor))
	}
}

func TestUndeployAndMigrateFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2, GroupSize: 2})
	g.Elect()
	c := g.Client(0)
	if err := c.RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Deploy("Wien2k", MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timings.Total() <= 0 {
		t.Fatal("no timings")
	}
	// Migrate one executable to the other site.
	dep := rep.Deployments[0]
	mig, err := c.Migrate(dep.Name, MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Site == c.SiteName() {
		t.Fatalf("migrated to same site %s", mig.Site)
	}
	// Old site no longer holds it.
	for _, d := range c.Deployments() {
		if d.Name == dep.Name {
			t.Fatal("deployment still on source site")
		}
	}
	// The target site does.
	other := g.Client(1)
	found := false
	for _, d := range other.Deployments() {
		if d.Name == dep.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("deployment missing on target site")
	}
}

func TestAdminNoticesSurface(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1})
	c := g.Client(0)
	manual := &Type{
		Name: "ManualOnly",
		Installation: &Installation{
			Mode:          ModeManual,
			DeployFileURL: "http://provider/x.build",
		},
	}
	if err := c.RegisterType(manual); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Discover("ManualOnly"); err == nil {
		t.Fatal("manual type must not auto-deploy")
	}
	notices := c.AdminNotices()
	if len(notices) == 0 || !strings.Contains(notices[0], "manual installation") {
		t.Fatalf("notices = %v", notices)
	}
}

func TestTypesAndDeploymentsListing(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1})
	c := g.Client(0)
	c.RegisterTypes(ImagingTypes()...)
	if len(c.Types()) != len(ImagingTypes()) {
		t.Fatalf("types = %v", c.Types())
	}
	if len(c.Deployments()) != 0 {
		t.Fatal("phantom deployments")
	}
	c.Discover("JPOVray")
	if len(c.Deployments()) == 0 {
		t.Fatal("no deployments listed")
	}
}

func TestEnactWorkflowThroughFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2, GroupSize: 2})
	g.Elect()
	provider := g.Client(0)
	if err := provider.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	w, err := ParseWorkflow(`
<Workflow name="mini">
  <Activity name="render" type="ImageConversion">
    <Input name="scene" source="user:scene.pov"/>
    <Output name="image"/>
  </Activity>
  <Activity name="post" type="JPOVray">
    <Input name="in" source="render:image"/>
  </Activity>
</Workflow>`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Enact(w, EnactOptions{Home: 1, LookAhead: true, Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Placements) != 2 {
		t.Fatalf("placements = %+v", rep.Placements)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	// Parse errors surface.
	if _, err := ParseWorkflow(`<Workflow name="w"/>`); err == nil {
		t.Fatal("empty workflow accepted")
	}
}

func TestSecureGrid(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2, Secure: true})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(g.SiteURL(0), "https://") {
		t.Fatalf("url = %s", g.SiteURL(0))
	}
	c := g.Client(0)
	if err := c.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Client(1).Discover("POVray"); err != nil {
		t.Fatal(err)
	}
}

func TestSemanticSearchThroughFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1})
	c := g.Client(0)
	if err := c.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	matches, err := c.Search(SemanticQuery{Function: "render", ConcreteOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Type.Name != "JPOVray" {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Via != "render" || matches[0].Score <= 0 {
		t.Fatalf("match detail = %+v", matches[0])
	}
}

func TestWrapServiceThroughFacade(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 1})
	c := g.Client(0)
	if err := c.RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("Wien2k", MethodExpect); err != nil {
		t.Fatal(err)
	}
	// Wien2k installs only executables; generate a WS wrapper for one.
	w, err := c.WrapService("lapw0")
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != KindService || w.Name != "WS-lapw0" || w.Address == "" {
		t.Fatalf("wrapper = %+v", w)
	}
	// The wrapper is a registered deployment of the same type and is
	// instantiable.
	deps, err := c.DiscoverNoDeploy("Wien2k")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deps {
		if d.Name == "WS-lapw0" {
			found = true
		}
	}
	if !found {
		t.Fatal("wrapper not discoverable")
	}
	if err := c.Instantiate("WS-lapw0", "client", 0, ""); err != nil {
		t.Fatal(err)
	}
	// Double-wrapping and wrapping non-executables fail.
	if _, err := c.WrapService("lapw0"); err == nil {
		t.Fatal("double wrap accepted")
	}
	if _, err := c.WrapService("WS-lapw0"); err == nil {
		t.Fatal("wrapping a service accepted")
	}
	if _, err := c.WrapService("ghost"); err == nil {
		t.Fatal("wrapping a ghost accepted")
	}
}
