package glare

import (
	"strings"
	"testing"
	"time"
)

// TestSiteRestartRecoversRegistrationsGridWide is the durability
// acceptance path: a 3-site grid registers types and a deployment and
// takes a lease on one site; that site's daemon is stopped and restarted
// against the same data directory; after journal replay every
// registration resolves grid-wide again and the unexpired lease is still
// held — with zero re-registration calls on the recovered site.
func TestSiteRestartRecoversRegistrationsGridWide(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:   3,
		DataDir: t.TempDir(),
		// Caches off so the post-restart resolution provably hits the
		// recovered registries, not a survivor's cache.
		DisableCache: true,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}

	provider := g.Client(2)
	if err := provider.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	provider.ProvisionExecutable("/opt/jpovray/bin/jpovray")
	if err := provider.RegisterDeployment(&Deployment{
		Name: "jpovray", Type: "JPOVray", Kind: KindExecutable,
		Path: "/opt/jpovray/bin/jpovray",
	}); err != nil {
		t.Fatal(err)
	}
	tk, err := provider.Lease("jpovray", "sched-1", LeaseExclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-crash sanity: another site resolves the registration VO-wide.
	scheduler := g.Client(1)
	if deps, err := scheduler.DiscoverNoDeploy("ImageConversion"); err != nil || len(deps) == 0 {
		t.Fatalf("pre-crash resolution: deps=%v err=%v", deps, err)
	}

	// The provider site dies and comes back on the same address.
	g.StopSite(2)
	if err := g.RestartSite(2); err != nil {
		t.Fatal(err)
	}
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}

	// Every registration resolves grid-wide after replay…
	deps, err := scheduler.DiscoverNoDeploy("ImageConversion")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deps {
		if d.Name == "jpovray" && d.Site == g.SiteName(2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered deployment not resolvable from site 1: %v", deps)
	}
	recovered := g.Client(2)
	if got := recovered.Types(); len(got) != len(ImagingTypes()) {
		t.Fatalf("recovered types = %v", got)
	}

	// …the store reports the replay…
	status, ok := recovered.StoreStatus()
	if !ok {
		t.Fatal("recovered site has no store")
	}
	if status.ReplayRecords == 0 || status.LiveRecords == 0 {
		t.Fatalf("store status after restart = %+v", status)
	}

	// …the unexpired lease is still held by its client…
	if _, err := recovered.Lease("jpovray", "rival", LeaseExclusive, time.Hour); err == nil ||
		!strings.Contains(err.Error(), "conflict") {
		t.Fatalf("revived lease not enforced: %v", err)
	}
	if err := g.vo.Nodes[2].RDM.Leases.Authorize(tk.ID, "sched-1", "jpovray"); err != nil {
		t.Fatalf("ticket from before the crash no longer authorizes: %v", err)
	}

	// …and replay issued zero registration calls: the recovered site's
	// fresh telemetry shows no registry traffic at all.
	for _, name := range []string{"glare_atr_registers_total", "glare_adr_registers_total"} {
		if n := recovered.Telemetry().Counter(name).Value(); n != 0 {
			t.Fatalf("%s = %d on recovered site, want 0 (replay must not re-register)", name, n)
		}
	}
}

// TestRestartWithoutDataDirLosesState pins the contrast: memory-only
// sites come back empty, which is exactly what the durable store exists
// to prevent.
func TestRestartWithoutDataDirLosesState(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3, DisableCache: true})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	provider := g.Client(2)
	if err := provider.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	g.StopSite(2)
	if err := g.RestartSite(2); err != nil {
		t.Fatal(err)
	}
	if got := g.Client(2).Types(); len(got) != 0 {
		t.Fatalf("memory-only site kept %v across restart", got)
	}
	if _, ok := g.Client(2).StoreStatus(); ok {
		t.Fatal("memory-only site reports a store")
	}
}

// TestRestartSiteGuards: site 0 (community-index holder) and running
// sites are not restartable.
func TestRestartSiteGuards(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2})
	if err := g.RestartSite(1); err == nil {
		t.Fatal("restarted a running site")
	}
	if err := g.RestartSite(0); err == nil {
		t.Fatal("restarted the community-index holder")
	}
}
