// Command glarectl is the command-line client of a GLARE site: it speaks
// the envelope protocol to the RDM service at -url and performs the
// operations a scheduler or activity provider would.
//
// Usage:
//
//	glarectl -url http://127.0.0.1:PORT discover ImageConversion
//	glarectl -url ... types
//	glarectl -url ... deployments JPOVray
//	glarectl -url ... deploy Wien2k [expect|cog]
//	glarectl -url ... register-type type.xml
//	glarectl -url ... undeploy jpovray
//	glarectl -url ... lease jpovray client1 exclusive 3600
//	glarectl -url ... release 3
//	glarectl -url ... instantiate jpovray client1 3 "scene.pov"
//
// -url may be the site base (http://host:port) or the full RDM service URL.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glare/internal/atr"
	"glare/internal/rdm"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

func main() {
	url := flag.String("url", "", "site base URL or RDM service URL (required)")
	flag.Parse()
	if *url == "" || flag.NArg() == 0 {
		usage()
	}
	base := strings.TrimSuffix(*url, "/")
	rdmURL := base
	if !strings.Contains(base, transport.ServicePrefix) {
		rdmURL = base + transport.ServicePrefix + rdm.ServiceName
	}
	siteBase := rdmURL[:strings.Index(rdmURL, transport.ServicePrefix)]
	cli := transport.NewClient(nil)

	args := flag.Args()
	var err error
	switch args[0] {
	case "discover":
		err = discover(cli, rdmURL, arg(args, 1), "auto")
	case "resolve":
		err = discover(cli, rdmURL, arg(args, 1), "never")
	case "types":
		err = listTypes(cli, siteBase)
	case "deployments":
		err = deployments(cli, rdmURL, arg(args, 1))
	case "deploy":
		method := "expect"
		if len(args) > 2 {
			method = args[2]
		}
		err = deploy(cli, rdmURL, arg(args, 1), method)
	case "register-type":
		err = registerType(cli, rdmURL, arg(args, 1))
	case "undeploy":
		_, err = cli.Call(rdmURL, "Undeploy", xmlutil.NewNode("Name", arg(args, 1)))
		if err == nil {
			fmt.Println("undeployed", args[1])
		}
	case "lease":
		err = leaseCmd(cli, rdmURL, args)
	case "release":
		_, err = cli.Call(rdmURL, "ReleaseLease", xmlutil.NewNode("ID", arg(args, 1)))
		if err == nil {
			fmt.Println("released")
		}
	case "instantiate":
		err = instantiate(cli, rdmURL, args)
	case "search":
		err = search(cli, rdmURL, args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "glarectl:", err)
		os.Exit(1)
	}
}

func arg(args []string, i int) string {
	if i >= len(args) {
		usage()
	}
	return args[i]
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: glarectl -url <site> <command> [args]
commands:
  discover <type>                    resolve deployments, installing on demand
  resolve <type>                     resolve deployments, never installing
  types                              list activity types on the site
  deployments <type>                 list the site's local deployments of a type
  deploy <type> [expect|cog]         force an on-demand deployment
  register-type <file.xml>           register an ActivityTypeEntry document
  undeploy <deployment>              remove a deployment
  lease <dep> <client> <kind> <sec>  acquire a lease (kind: exclusive|shared)
  release <ticket-id>                release a lease
  instantiate <dep> <client> <ticket|0> [args]
  search <function> [input...]       semantic type search by capability`)
	os.Exit(2)
}

func discover(cli *transport.Client, url, typeName, deployMode string) error {
	req := xmlutil.NewNode("Request")
	req.SetAttr("type", typeName)
	req.SetAttr("deploy", deployMode)
	resp, err := cli.Call(url, "GetDeployments", req)
	if err != nil {
		return err
	}
	printDeployments(resp)
	return nil
}

func deployments(cli *transport.Client, url, typeName string) error {
	resp, err := cli.Call(url, "LocalDeployments", xmlutil.NewNode("Type", typeName))
	if err != nil {
		return err
	}
	printDeployments(resp)
	return nil
}

func printDeployments(resp *xmlutil.Node) {
	list := resp.All("ActivityDeployment")
	if len(list) == 0 {
		fmt.Println("no deployments")
		return
	}
	for _, d := range list {
		loc := d.ChildText("Path")
		if loc == "" {
			loc = d.ChildText("Address")
		}
		fmt.Printf("%-16s %-12s %-10s site=%s %s\n",
			d.AttrOr("name", "?"), d.AttrOr("type", "?"),
			d.AttrOr("category", "?"), d.ChildText("Site"), loc)
	}
}

func listTypes(cli *transport.Client, siteBase string) error {
	resp, err := cli.Call(siteBase+transport.ServicePrefix+atr.ServiceName, "ListTypes", nil)
	if err != nil {
		return err
	}
	for _, t := range resp.All("Type") {
		fmt.Println(t.Text)
	}
	return nil
}

func deploy(cli *transport.Client, url, typeName, method string) error {
	req := xmlutil.NewNode("Deploy")
	req.SetAttr("type", typeName)
	req.SetAttr("method", method)
	resp, err := cli.Call(url, "DeployLocal", req)
	if err != nil {
		return err
	}
	printDeployments(resp)
	if tm := resp.First("Timings"); tm != nil {
		fmt.Printf("timings (ms): type-addition=%s communication=%s installation=%s registration=%s notification=%s method-overhead=%s\n",
			tm.ChildText("TypeAddition"), tm.ChildText("Communication"),
			tm.ChildText("Installation"), tm.ChildText("Registration"),
			tm.ChildText("Notification"), tm.ChildText("MethodOverhead"))
	}
	return nil
}

func registerType(cli *transport.Client, url, file string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	doc, err := xmlutil.ParseString(string(data))
	if err != nil {
		return err
	}
	resp, err := cli.Call(url, "RegisterType", doc)
	if err != nil {
		return err
	}
	fmt.Println("registered:", resp.ChildText("Address"))
	return nil
}

func leaseCmd(cli *transport.Client, url string, args []string) error {
	if len(args) < 5 {
		usage()
	}
	req := xmlutil.NewNode("Lease")
	req.SetAttr("deployment", args[1])
	req.SetAttr("client", args[2])
	req.SetAttr("kind", args[3])
	req.SetAttr("seconds", args[4])
	resp, err := cli.Call(url, "AcquireLease", req)
	if err != nil {
		return err
	}
	fmt.Printf("ticket %s (%s on %s)\n",
		resp.AttrOr("id", "?"), resp.AttrOr("kind", "?"), resp.AttrOr("deployment", "?"))
	return nil
}

func search(cli *transport.Client, url string, args []string) error {
	if len(args) == 0 {
		usage()
	}
	q := xmlutil.NewNode("Query")
	q.SetAttr("function", args[0])
	for _, in := range args[1:] {
		q.Elem("Input", in)
	}
	resp, err := cli.Call(url, "SearchTypes", q)
	if err != nil {
		return err
	}
	matches := resp.All("Match")
	if len(matches) == 0 {
		fmt.Println("no matching activity types")
		return nil
	}
	for _, m := range matches {
		ty := m.First("ActivityTypeEntry")
		fmt.Printf("%-16s score=%s via=%s\n",
			ty.AttrOr("name", "?"), m.AttrOr("score", "?"), m.AttrOr("via", "-"))
	}
	return nil
}

func instantiate(cli *transport.Client, url string, args []string) error {
	if len(args) < 4 {
		usage()
	}
	req := xmlutil.NewNode("Run")
	req.SetAttr("name", args[1])
	req.SetAttr("client", args[2])
	req.SetAttr("ticket", args[3])
	if len(args) > 4 {
		req.SetAttr("args", strings.Join(args[4:], " "))
	}
	if _, err := cli.Call(url, "Instantiate", req); err != nil {
		return err
	}
	fmt.Println("started")
	return nil
}
