// Command glarectl is the command-line client of a GLARE site: it speaks
// the envelope protocol to the RDM service at -url and performs the
// operations a scheduler or activity provider would.
//
// Usage:
//
//	glarectl -url http://127.0.0.1:PORT discover ImageConversion
//	glarectl -url ... types
//	glarectl -url ... deployments JPOVray
//	glarectl -url ... deploy Wien2k [expect|cog]
//	glarectl -url ... register-type type.xml
//	glarectl -url ... undeploy jpovray
//	glarectl -url ... lease jpovray client1 exclusive 3600
//	glarectl -url ... release 3
//	glarectl -url ... instantiate jpovray client1 3 "scene.pov"
//
// -url may be the site base (http://host:port) or the full RDM service URL.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"glare/internal/atr"
	"glare/internal/mds"
	"glare/internal/rdm"
	"glare/internal/superpeer"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

func main() {
	url := flag.String("url", "", "site base URL or RDM service URL (required)")
	flag.Parse()
	if *url == "" || flag.NArg() == 0 {
		usage()
	}
	base := strings.TrimSuffix(*url, "/")
	rdmURL := base
	if !strings.Contains(base, transport.ServicePrefix) {
		rdmURL = base + transport.ServicePrefix + rdm.ServiceName
	}
	siteBase := rdmURL[:strings.Index(rdmURL, transport.ServicePrefix)]
	cli := transport.NewClient(nil)
	// One-shot admin calls ride the same transport robustness as the
	// daemons: transient connection failures are retried with backoff.
	cli.SetRetryPolicy(transport.DefaultRetryPolicy())

	args := flag.Args()
	var err error
	switch args[0] {
	case "discover":
		err = discover(cli, rdmURL, arg(args, 1), "auto")
	case "resolve":
		err = discover(cli, rdmURL, arg(args, 1), "never")
	case "types":
		err = listTypes(cli, siteBase)
	case "deployments":
		err = deployments(cli, rdmURL, arg(args, 1))
	case "deploy":
		method := "expect"
		if len(args) > 2 {
			method = args[2]
		}
		err = deploy(cli, rdmURL, arg(args, 1), method)
	case "register-type":
		err = registerType(cli, rdmURL, arg(args, 1))
	case "undeploy":
		_, err = cli.Call(rdmURL, "Undeploy", xmlutil.NewNode("Name", arg(args, 1)))
		if err == nil {
			fmt.Println("undeployed", args[1])
		}
	case "lease":
		err = leaseCmd(cli, rdmURL, args)
	case "release":
		_, err = cli.Call(rdmURL, "ReleaseLease", xmlutil.NewNode("ID", arg(args, 1)))
		if err == nil {
			fmt.Println("released")
		}
	case "instantiate":
		err = instantiate(cli, rdmURL, args)
	case "search":
		err = search(cli, rdmURL, args[1:])
	case "metrics":
		err = metricsCmd(cli, siteBase, args[1:])
	case "history":
		err = historyCmd(cli, rdmURL, args[1:])
	case "status":
		err = statusCmd(cli, siteBase)
	case "store":
		if arg(args, 1) != "status" {
			usage()
		}
		err = storeStatusCmd(cli, siteBase)
	case "builds":
		err = buildsCmd(cli, siteBase)
	case "replicas":
		err = replicasCmd(cli, siteBase)
	case "artifacts":
		err = artifactsCmd(cli, siteBase)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "glarectl:", err)
		os.Exit(1)
	}
}

func arg(args []string, i int) string {
	if i >= len(args) {
		usage()
	}
	return args[i]
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: glarectl -url <site> <command> [args]
commands:
  discover <type>                    resolve deployments, installing on demand
  resolve <type>                     resolve deployments, never installing
  types                              list activity types on the site
  deployments <type>                 list the site's local deployments of a type
  deploy <type> [expect|cog]         force an on-demand deployment
  register-type <file.xml>           register an ActivityTypeEntry document
  undeploy <deployment>              remove a deployment
  lease <dep> <client> <kind> <sec>  acquire a lease (kind: exclusive|shared)
  release <ticket-id>                release a lease
  instantiate <dep> <client> <ticket|0> [args]
  search <function> [input...]       semantic type search by capability
  metrics [--filter <prefix>]        scrape /metrics from every community
                                     site into one table (the prefix
                                     filters metric names; default glare_;
                                     a bare positional prefix also works)
  history [--json] <metric>          dump the site's round-robin history of
                                     a metric: every retention archive with
                                     row stats and an ASCII sparkline, or
                                     the raw export as JSON; super-peers
                                     also keep grid-wide grid:<metric>
                                     rollup series
  status                             probe every community site's overlay
                                     view and load: role, epoch, admission
                                     inflight/queued/shed (each column a
                                     control/interactive/bulk triple) and
                                     super-peer per site (split brains show
                                     up as rows disagreeing on the
                                     super-peer)
  store status                       probe every community site's durable
                                     registry store: WAL segments, live and
                                     snapshot record counts, snapshot age
  builds                             probe every community site's deployment
                                     engine: in-flight builds, queue depth,
                                     quarantined types, resumable builds
  replicas                           probe every community site's quorum
                                     replication state: replication factor,
                                     the site's own replica set, and the
                                     origins it holds shadow copies for
  artifacts                          probe every community site's content-
                                     addressed artifact cache: occupancy,
                                     hit/miss, peer vs origin fetches,
                                     bytes saved, and held blobs
                                     (entry counts, freshness, promotions)`)
	os.Exit(2)
}

func discover(cli *transport.Client, url, typeName, deployMode string) error {
	req := xmlutil.NewNode("Request")
	req.SetAttr("type", typeName)
	req.SetAttr("deploy", deployMode)
	resp, err := cli.Call(url, "GetDeployments", req)
	if err != nil {
		return err
	}
	printDeployments(resp)
	return nil
}

func deployments(cli *transport.Client, url, typeName string) error {
	resp, err := cli.Call(url, "LocalDeployments", xmlutil.NewNode("Type", typeName))
	if err != nil {
		return err
	}
	printDeployments(resp)
	return nil
}

func printDeployments(resp *xmlutil.Node) {
	list := resp.All("ActivityDeployment")
	if len(list) == 0 {
		fmt.Println("no deployments")
		return
	}
	for _, d := range list {
		loc := d.ChildText("Path")
		if loc == "" {
			loc = d.ChildText("Address")
		}
		fmt.Printf("%-16s %-12s %-10s site=%s %s\n",
			d.AttrOr("name", "?"), d.AttrOr("type", "?"),
			d.AttrOr("category", "?"), d.ChildText("Site"), loc)
	}
}

func listTypes(cli *transport.Client, siteBase string) error {
	resp, err := cli.Call(siteBase+transport.ServicePrefix+atr.ServiceName, "ListTypes", nil)
	if err != nil {
		return err
	}
	for _, t := range resp.All("Type") {
		fmt.Println(t.Text)
	}
	return nil
}

func deploy(cli *transport.Client, url, typeName, method string) error {
	req := xmlutil.NewNode("Deploy")
	req.SetAttr("type", typeName)
	req.SetAttr("method", method)
	resp, err := cli.Call(url, "DeployLocal", req)
	if err != nil {
		return err
	}
	printDeployments(resp)
	if tm := resp.First("Timings"); tm != nil {
		fmt.Printf("timings (ms): type-addition=%s communication=%s installation=%s registration=%s notification=%s method-overhead=%s\n",
			tm.ChildText("TypeAddition"), tm.ChildText("Communication"),
			tm.ChildText("Installation"), tm.ChildText("Registration"),
			tm.ChildText("Notification"), tm.ChildText("MethodOverhead"))
	}
	return nil
}

func registerType(cli *transport.Client, url, file string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	doc, err := xmlutil.ParseString(string(data))
	if err != nil {
		return err
	}
	resp, err := cli.Call(url, "RegisterType", doc)
	if err != nil {
		return err
	}
	fmt.Println("registered:", resp.ChildText("Address"))
	return nil
}

func leaseCmd(cli *transport.Client, url string, args []string) error {
	if len(args) < 5 {
		usage()
	}
	req := xmlutil.NewNode("Lease")
	req.SetAttr("deployment", args[1])
	req.SetAttr("client", args[2])
	req.SetAttr("kind", args[3])
	req.SetAttr("seconds", args[4])
	resp, err := cli.Call(url, "AcquireLease", req)
	if err != nil {
		return err
	}
	fmt.Printf("ticket %s (%s on %s)\n",
		resp.AttrOr("id", "?"), resp.AttrOr("kind", "?"), resp.AttrOr("deployment", "?"))
	return nil
}

func search(cli *transport.Client, url string, args []string) error {
	if len(args) == 0 {
		usage()
	}
	q := xmlutil.NewNode("Query")
	q.SetAttr("function", args[0])
	for _, in := range args[1:] {
		q.Elem("Input", in)
	}
	resp, err := cli.Call(url, "SearchTypes", q)
	if err != nil {
		return err
	}
	matches := resp.All("Match")
	if len(matches) == 0 {
		fmt.Println("no matching activity types")
		return nil
	}
	for _, m := range matches {
		ty := m.First("ActivityTypeEntry")
		fmt.Printf("%-16s score=%s via=%s\n",
			ty.AttrOr("name", "?"), m.AttrOr("score", "?"), m.AttrOr("via", "-"))
	}
	return nil
}

// metricsCmd scrapes the /metrics admin endpoint of every site registered
// in the community index reachable through -url, and prints one grid-wide
// table: one row per metric series, one column per site. When the index
// is unreachable (or empty) it falls back to scraping the -url site alone.
func metricsCmd(cli *transport.Client, siteBase string, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	filter := fs.String("filter", "glare_", "keep metric series whose name starts with this prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prefix := *filter
	// A bare positional prefix keeps the pre-flag invocation working.
	if fs.NArg() > 0 {
		prefix = fs.Arg(0)
	}
	sites := communitySites(cli, siteBase)
	if len(sites) == 0 {
		sites = []superpeer.SiteInfo{{Name: siteBase, BaseURL: siteBase}}
	}

	// site name -> metric series -> value; unreachable sites show as "-".
	perSite := make([]map[string]string, len(sites))
	union := map[string]bool{}
	for i, s := range sites {
		text, err := cli.Get(s.BaseURL + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "glarectl: %s: %v\n", s.Name, err)
			continue
		}
		perSite[i] = parseExposition(text, prefix)
		for name := range perSite[i] {
			union[name] = true
		}
	}
	if len(union) == 0 {
		return fmt.Errorf("no metrics matching %q scraped from %d site(s)", prefix, len(sites))
	}

	names := make([]string, 0, len(union))
	for n := range union {
		names = append(names, n)
	}
	sort.Strings(names)

	wide := 0
	for _, n := range names {
		if len(n) > wide {
			wide = len(n)
		}
	}
	fmt.Printf("%-*s", wide, "METRIC")
	for _, s := range sites {
		fmt.Printf("  %s", s.Name)
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("%-*s", wide, n)
		for i, s := range sites {
			v := "-"
			if perSite[i] != nil {
				if got, ok := perSite[i][n]; ok {
					v = got
				}
			}
			fmt.Printf("  %*s", len(s.Name), v)
		}
		fmt.Println()
	}
	return nil
}

// statusCmd probes the overlay view of every site registered in the
// community index and prints one row per site: its role, its view's epoch,
// its admission-controller load (inflight/queued/shed, each split
// control/interactive/bulk) and the super-peer it follows. During a
// partition the rows disagree on the super-peer column; after a heal they
// converge back to one reign.
func statusCmd(cli *transport.Client, siteBase string) error {
	sites := communitySites(cli, siteBase)
	if len(sites) == 0 {
		sites = []superpeer.SiteInfo{{Name: siteBase, BaseURL: siteBase}}
	}
	wide := len("SITE")
	for _, s := range sites {
		if len(s.Name) > wide {
			wide = len(s.Name)
		}
	}
	fmt.Printf("%-*s  %-10s  %5s  %8s  %8s  %8s  %8s  %s\n", wide,
		"SITE", "ROLE", "EPOCH", "INFLIGHT", "QUEUED", "SHED", "SKEW", "SUPER-PEER")
	for _, s := range sites {
		resp, err := cli.Call(s.PeerURL(), "ViewStatus", nil)
		if err != nil {
			fmt.Printf("%-*s  %-10s  %5s  %8s  %8s  %8s  %8s  %s\n", wide, s.Name,
				"-", "-", "-", "-", "-", "-", "- ("+err.Error()+")")
			continue
		}
		superPeer := resp.AttrOr("superPeer", "")
		if superPeer == "" {
			superPeer = "(unassigned)"
		}
		inflight, queued, shed := loadColumns(cli, s)
		fmt.Printf("%-*s  %-10s  %5s  %8s  %8s  %8s  %8s  %s\n", wide, s.Name,
			resp.AttrOr("role", "?"), resp.AttrOr("epoch", "?"),
			inflight, queued, shed, skewColumn(resp), superPeer)
	}
	return nil
}

// skewColumn renders the worst clock-skew observation a site reported in
// its ViewStatus: the signed offset (in ms) of the most-disagreeing peer's
// HLC stamps against the probed site's own clock. Sites without skew
// surveillance (older builds) render as a dash.
func skewColumn(resp *xmlutil.Node) string {
	ms := resp.AttrOr("skewMs", "")
	if ms == "" {
		return "-"
	}
	return ms + "ms"
}

// loadColumns probes a site's admission controller (the RDM "LoadStatus"
// operation) and renders the inflight/queued/shed columns, each value a
// control/interactive/bulk triple. Sites without admission control (or
// unreachable ones) render as dashes.
func loadColumns(cli *transport.Client, s superpeer.SiteInfo) (inflight, queued, shed string) {
	resp, err := cli.Call(s.ServiceURL(rdm.ServiceName), "LoadStatus", nil)
	if err != nil || resp.AttrOr("enabled", "false") != "true" {
		return "-", "-", "-"
	}
	var in, qu, sh []string
	for _, c := range resp.All("Class") {
		in = append(in, c.AttrOr("inflight", "?"))
		qu = append(qu, c.AttrOr("queued", "?"))
		// Shed column folds both overflow sheds and in-queue expiries:
		// everything the controller refused for this class.
		sheds, expired := c.AttrOr("sheds", "?"), c.AttrOr("expired", "0")
		if expired != "0" {
			sheds += "+" + expired
		}
		sh = append(sh, sheds)
	}
	return strings.Join(in, "/"), strings.Join(qu, "/"), strings.Join(sh, "/")
}

// storeStatusCmd probes the durable registry store of every site
// registered in the community index and prints one row per site: WAL
// segment count, live and snapshot record counts and the snapshot's age.
// Memory-only sites show as "off"; unreachable sites as "-".
func storeStatusCmd(cli *transport.Client, siteBase string) error {
	sites := communitySites(cli, siteBase)
	if len(sites) == 0 {
		sites = []superpeer.SiteInfo{{Name: siteBase, BaseURL: siteBase}}
	}
	wide := len("SITE")
	for _, s := range sites {
		if len(s.Name) > wide {
			wide = len(s.Name)
		}
	}
	fmt.Printf("%-*s  %8s  %7s  %9s  %8s  %8s  %s\n", wide,
		"SITE", "SEGMENTS", "LASTSEQ", "LIVE-RECS", "SNAP-RECS", "SNAP-AGE", "NOTES")
	for _, s := range sites {
		resp, err := cli.Call(s.ServiceURL(rdm.ServiceName), "StoreStatus", nil)
		if err != nil {
			fmt.Printf("%-*s  %8s  %7s  %9s  %8s  %8s  %s\n", wide, s.Name,
				"-", "-", "-", "-", "-", err.Error())
			continue
		}
		if resp.AttrOr("enabled", "false") != "true" {
			fmt.Printf("%-*s  %8s  %7s  %9s  %8s  %8s  %s\n", wide, s.Name,
				"off", "-", "-", "-", "-", "memory-only")
			continue
		}
		snapRecs, snapAge := "-", "-"
		if resp.AttrOr("snapshot", "false") == "true" {
			snapRecs = resp.AttrOr("snapshotRecords", "?")
			snapAge = resp.AttrOr("snapshotAgeSeconds", "?") + "s"
		}
		notes := fmt.Sprintf("replayed %s rec(s) in %sms",
			resp.AttrOr("replayRecords", "0"), resp.AttrOr("replayMs", "0"))
		if tb := resp.AttrOr("truncatedBytes", "0"); tb != "0" {
			notes += ", truncated " + tb + "B"
		}
		if e := resp.AttrOr("err", ""); e != "" {
			notes += ", ERR: " + e
		}
		fmt.Printf("%-*s  %8s  %7s  %9s  %8s  %8s  %s\n", wide, s.Name,
			resp.AttrOr("segments", "?"), resp.AttrOr("lastSeq", "?"),
			resp.AttrOr("liveRecords", "?"), snapRecs, snapAge, notes)
	}
	return nil
}

// buildsCmd probes the deployment execution engine of every site registered
// in the community index: what is building now, how deep the admission
// queue is, which types are quarantined after repeated failures and which
// interrupted builds hold checkpoints awaiting resume.
func buildsCmd(cli *transport.Client, siteBase string) error {
	sites := communitySites(cli, siteBase)
	if len(sites) == 0 {
		sites = []superpeer.SiteInfo{{Name: siteBase, BaseURL: siteBase}}
	}
	wide := len("SITE")
	for _, s := range sites {
		if len(s.Name) > wide {
			wide = len(s.Name)
		}
	}
	fmt.Printf("%-*s  %5s  %6s  %-24s  %-28s  %s\n", wide,
		"SITE", "SLOTS", "QUEUED", "BUILDING", "QUARANTINED", "RESUMABLE")
	for _, s := range sites {
		resp, err := cli.Call(s.ServiceURL(rdm.ServiceName), "DeployStatus", nil)
		if err != nil {
			fmt.Printf("%-*s  %5s  %6s  %-24s  %-28s  %s\n", wide, s.Name,
				"-", "-", "-", "-", err.Error())
			continue
		}
		var building, quarantined, resumable []string
		for _, n := range resp.All("Building") {
			building = append(building, n.AttrOr("type", "?"))
		}
		for _, n := range resp.All("Quarantined") {
			quarantined = append(quarantined, fmt.Sprintf("%s(%s fails, %sms left)",
				n.AttrOr("type", "?"), n.AttrOr("failures", "?"), n.AttrOr("remainingMS", "?")))
		}
		for _, n := range resp.All("Resumable") {
			resumable = append(resumable, fmt.Sprintf("%s(%s steps)",
				n.AttrOr("type", "?"), n.AttrOr("steps", "?")))
		}
		dash := func(v []string) string {
			if len(v) == 0 {
				return "-"
			}
			return strings.Join(v, ",")
		}
		fmt.Printf("%-*s  %5s  %6s  %-24s  %-28s  %s\n", wide, s.Name,
			resp.AttrOr("maxBuilds", "?"), resp.AttrOr("queued", "?"),
			dash(building), dash(quarantined), dash(resumable))
	}
	return nil
}

// replicasCmd probes the quorum-replication state of every site registered
// in the community index and prints one row per site: the replication
// factor K, the replicas this site fans its own writes out to, and the
// origins it holds shadow copies for (with entry counts, the newest
// last-update time held and a "*" marking promoted origins — origins whose
// data this site adopted after their permanent loss). Sites without
// replication show as "off"; unreachable sites as "-".
func replicasCmd(cli *transport.Client, siteBase string) error {
	sites := communitySites(cli, siteBase)
	if len(sites) == 0 {
		sites = []superpeer.SiteInfo{{Name: siteBase, BaseURL: siteBase}}
	}
	wide := len("SITE")
	for _, s := range sites {
		if len(s.Name) > wide {
			wide = len(s.Name)
		}
	}
	fmt.Printf("%-*s  %3s  %-28s  %s\n", wide, "SITE", "K", "REPLICATES-TO", "HOLDS")
	for _, s := range sites {
		resp, err := cli.Call(s.ServiceURL(rdm.ServiceName), "ReplicaStatus", nil)
		if err != nil {
			fmt.Printf("%-*s  %3s  %-28s  %s\n", wide, s.Name, "-", "-", err.Error())
			continue
		}
		if resp.AttrOr("enabled", "false") != "true" {
			fmt.Printf("%-*s  %3s  %-28s  %s\n", wide, s.Name, "off", "-", "-")
			continue
		}
		var set, holds []string
		for _, r := range resp.All("Replica") {
			set = append(set, r.AttrOr("name", "?"))
		}
		for _, o := range resp.All("Origin") {
			h := fmt.Sprintf("%s(%s)", o.AttrOr("name", "?"), o.AttrOr("entries", "?"))
			if o.AttrOr("promoted", "false") == "true" {
				h += "*"
			}
			holds = append(holds, h)
		}
		dash := func(v []string) string {
			if len(v) == 0 {
				return "-"
			}
			return strings.Join(v, ",")
		}
		fmt.Printf("%-*s  %3s  %-28s  %s\n", wide, s.Name,
			resp.AttrOr("k", "?"), dash(set), dash(holds))
	}
	return nil
}

// artifactsCmd probes the content-addressed artifact cache of every site
// registered in the community index and prints one row per site: cache
// occupancy against its byte budget, hit/miss counts, how many blobs came
// from peers versus origin, verification failures and the transfer bytes
// the cache saved. Sites with the artifact grid disabled show as "off";
// unreachable sites as "-".
func artifactsCmd(cli *transport.Client, siteBase string) error {
	sites := communitySites(cli, siteBase)
	if len(sites) == 0 {
		sites = []superpeer.SiteInfo{{Name: siteBase, BaseURL: siteBase}}
	}
	wide := len("SITE")
	for _, s := range sites {
		if len(s.Name) > wide {
			wide = len(s.Name)
		}
	}
	fmt.Printf("%-*s  %5s  %-17s  %5s  %5s  %5s  %5s  %6s  %10s  %s\n", wide,
		"SITE", "BLOBS", "BYTES/BUDGET", "HITS", "MISS", "PEER", "ORIG", "BADVFY", "SAVED", "HOLDINGS")
	for _, s := range sites {
		resp, err := cli.Call(s.ServiceURL(rdm.ServiceName), "ArtifactStatus", nil)
		if err != nil {
			fmt.Printf("%-*s  %5s  %-17s  %5s  %5s  %5s  %5s  %6s  %10s  %s\n", wide,
				s.Name, "-", "-", "-", "-", "-", "-", "-", "-", err.Error())
			continue
		}
		if resp.AttrOr("enabled", "false") != "true" {
			fmt.Printf("%-*s  %5s  %-17s  %5s  %5s  %5s  %5s  %6s  %10s  %s\n", wide,
				s.Name, "off", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		var holdings []string
		for _, b := range resp.All("Blob") {
			h := b.AttrOr("artifact", b.AttrOr("sum", "?"))
			if len(h) > 24 {
				h = h[:24]
			}
			if b.AttrOr("corrupt", "false") == "true" {
				h += "!"
			}
			holdings = append(holdings, h)
		}
		hold := "-"
		if len(holdings) > 0 {
			hold = strings.Join(holdings, ",")
		}
		fmt.Printf("%-*s  %5s  %-17s  %5s  %5s  %5s  %5s  %6s  %10s  %s\n", wide, s.Name,
			resp.AttrOr("entries", "?"),
			resp.AttrOr("bytes", "?")+"/"+resp.AttrOr("budget", "?"),
			resp.AttrOr("hits", "?"), resp.AttrOr("misses", "?"),
			resp.AttrOr("peerFetches", "?"), resp.AttrOr("originFetches", "?"),
			resp.AttrOr("verifyFailures", "?"), resp.AttrOr("bytesSaved", "?"), hold)
	}
	return nil
}

// communitySites asks the site's index service for every <Site> registered
// in the (aggregated) community document.
func communitySites(cli *transport.Client, siteBase string) []superpeer.SiteInfo {
	resp, err := cli.Call(siteBase+transport.ServicePrefix+mds.ServiceName,
		"Query", xmlutil.NewNode("XPath", "//Site"))
	if err != nil || resp == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []superpeer.SiteInfo
	for _, n := range resp.All("Site") {
		info, err := superpeer.SiteInfoFromXML(n)
		if err != nil || seen[info.Name] || info.BaseURL == "" {
			continue
		}
		seen[info.Name] = true
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// parseExposition extracts "name value" samples from the text exposition
// format, keeping series whose name starts with prefix.
func parseExposition(text, prefix string) map[string]string {
	out := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		name, value := line[:i], line[i+1:]
		if strings.HasPrefix(name, prefix) {
			out[name] = value
		}
	}
	return out
}

func instantiate(cli *transport.Client, url string, args []string) error {
	if len(args) < 4 {
		usage()
	}
	req := xmlutil.NewNode("Run")
	req.SetAttr("name", args[1])
	req.SetAttr("client", args[2])
	req.SetAttr("ticket", args[3])
	if len(args) > 4 {
		req.SetAttr("args", strings.Join(args[4:], " "))
	}
	if _, err := cli.Call(url, "Instantiate", req); err != nil {
		return err
	}
	fmt.Println("started")
	return nil
}
