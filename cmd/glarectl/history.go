package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// historyCmd fetches a metric's ring archives from the site's round-robin
// history store via the HistoryXport operation and renders them: one block
// per archive (CF, step, row stats) with an ASCII sparkline of the ring,
// or the whole export as JSON with --json.
func historyCmd(cli *transport.Client, rdmURL string, args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the raw export as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		usage()
	}
	metric := fs.Arg(0)

	req := xmlutil.NewNode("History")
	req.SetAttr("metric", metric)
	resp, err := cli.Call(rdmURL, "HistoryXport", req)
	if err != nil {
		return err
	}
	series := resp.All("Series")
	if len(series) == 0 {
		return fmt.Errorf("no history for metric %q (is the sampler running?)", metric)
	}
	if *asJSON {
		return printHistoryJSON(resp, series)
	}
	for _, sn := range series {
		fmt.Printf("%s  kind=%s  site=%s\n",
			sn.AttrOr("name", "?"), sn.AttrOr("kind", "?"), resp.AttrOr("site", "?"))
		for _, an := range sn.All("Archive") {
			printArchive(an)
		}
	}
	return nil
}

// historyPoint is one exported slot in the --json rendering; NaN slots
// carry a null value.
type historyPoint struct {
	TS   string   `json:"ts"`
	V    *float64 `json:"v"`
	Live bool     `json:"live,omitempty"`
}

type historyArchive struct {
	CF     string         `json:"cf"`
	Step   string         `json:"step"`
	Points []historyPoint `json:"points"`
}

type historySeries struct {
	Name     string           `json:"name"`
	Kind     string           `json:"kind"`
	Site     string           `json:"site"`
	Archives []historyArchive `json:"archives"`
}

func printHistoryJSON(resp *xmlutil.Node, series []*xmlutil.Node) error {
	var out []historySeries
	for _, sn := range series {
		hs := historySeries{
			Name: sn.AttrOr("name", ""),
			Kind: sn.AttrOr("kind", ""),
			Site: resp.AttrOr("site", ""),
		}
		for _, an := range sn.All("Archive") {
			stepNs, _ := strconv.ParseInt(an.AttrOr("stepNs", "0"), 10, 64)
			ha := historyArchive{
				CF:   an.AttrOr("cf", "?"),
				Step: time.Duration(stepNs).String(),
			}
			for _, pt := range archivePoints(an) {
				p := historyPoint{
					TS:   time.Unix(0, pt.ts).UTC().Format(time.RFC3339),
					Live: pt.live,
				}
				if !math.IsNaN(pt.v) {
					vv := pt.v
					p.V = &vv
				}
				ha.Points = append(ha.Points, p)
			}
			hs.Archives = append(hs.Archives, ha)
		}
		out = append(out, hs)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	return nil
}

// wirePoint is one <P> child of an Archive node; NaN marks unknown slots.
type wirePoint struct {
	ts   int64
	v    float64
	live bool
}

func archivePoints(an *xmlutil.Node) []wirePoint {
	var out []wirePoint
	for _, pn := range an.All("P") {
		ts, _ := strconv.ParseInt(pn.AttrOr("tsNs", "0"), 10, 64)
		v := math.NaN()
		if raw := pn.AttrOr("v", ""); raw != "" {
			if f, err := strconv.ParseFloat(raw, 64); err == nil {
				v = f
			}
		}
		out = append(out, wirePoint{ts: ts, v: v, live: pn.AttrOr("live", "") == "true"})
	}
	return out
}

func printArchive(an *xmlutil.Node) {
	stepNs, _ := strconv.ParseInt(an.AttrOr("stepNs", "0"), 10, 64)
	step := time.Duration(stepNs)
	var vals []float64
	var first, last int64
	known := 0
	for _, pt := range archivePoints(an) {
		if first == 0 {
			first = pt.ts
		}
		last = pt.ts
		vals = append(vals, pt.v)
		if !math.IsNaN(pt.v) {
			known++
		}
	}
	if len(vals) == 0 {
		fmt.Printf("  %-7s step=%-6s (empty)\n", an.AttrOr("cf", "?"), step)
		return
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	lastV := math.NaN()
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		min, max = math.Min(min, v), math.Max(max, v)
		sum += v
		lastV = v
	}
	stats := "no data"
	if known > 0 {
		stats = fmt.Sprintf("min=%s max=%s avg=%s last=%s",
			fmtVal(min), fmtVal(max), fmtVal(sum/float64(known)), fmtVal(lastV))
	}
	fmt.Printf("  %-7s step=%-6s points=%d/%d  %s .. %s  %s\n",
		an.AttrOr("cf", "?"), step, known, len(vals),
		time.Unix(0, first).UTC().Format("15:04:05"),
		time.Unix(0, last).UTC().Format("15:04:05"), stats)
	fmt.Printf("  %s\n", sparkline(vals, 60))
}

func fmtVal(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// sparkline renders values as a fixed-width block-character strip; NaN
// slots render as spaces. Wider series are downsampled by max-pooling so
// spikes stay visible.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		pooled := make([]float64, width)
		for i := range pooled {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi == lo {
				hi = lo + 1
			}
			m := math.NaN()
			for _, v := range vals[lo:hi] {
				if math.IsNaN(v) {
					continue
				}
				if math.IsNaN(m) || v > m {
					m = v
				}
			}
			pooled[i] = m
		}
		vals = pooled
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if !math.IsNaN(v) {
			min, max = math.Min(min, v), math.Max(max, v)
		}
	}
	if math.IsInf(min, 1) {
		return strings.Repeat(" ", len(vals))
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case max == min:
			b.WriteRune(ramp[0])
		default:
			idx := int((v - min) / (max - min) * float64(len(ramp)-1))
			b.WriteRune(ramp[idx])
		}
	}
	return b.String()
}
