// Command experiments regenerates the paper's evaluation: Table 1 and
// Figures 10-13, plus the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	experiments -exp all            # everything, full scale
//	experiments -exp table1
//	experiments -exp fig10 -scale quick
//	experiments -exp fig11,fig12
//	experiments -exp ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glare/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "experiments to run: all, table1, fig10, fig11, fig12, fig13, ablation (comma-separated)")
	scaleFlag := flag.String("scale", "full", "sweep scale: quick or full")
	flag.Parse()

	scale := experiments.Full
	if *scaleFlag == "quick" {
		scale = experiments.Quick
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}

	if all || want["table1"] {
		ran++
		fmt.Println("== Table 1: time spent in deployment operations (virtual ms) ==")
		rows, err := experiments.RunTable1()
		if err != nil {
			fail("table1", err)
		}
		experiments.PrintTable1(os.Stdout, rows)
	}
	if all || want["fig10"] {
		ran++
		fmt.Println("\n== Fig. 10: registry vs index throughput under concurrent clients ==")
		pts, err := experiments.RunFig10(experiments.DefaultFig10(scale))
		if err != nil {
			fail("fig10", err)
		}
		experiments.PrintFig10(os.Stdout, pts)
	}
	if all || want["fig11"] {
		ran++
		fmt.Println("\n== Fig. 11: throughput vs number of registered activity types ==")
		pts, err := experiments.RunFig11(experiments.DefaultFig11(scale))
		if err != nil {
			fail("fig11", err)
		}
		experiments.PrintFig11(os.Stdout, pts)
	}
	if all || want["fig12"] {
		ran++
		fmt.Println("\n== Fig. 12: deployment-request response time vs sites and cache ==")
		pts, err := experiments.RunFig12(experiments.DefaultFig12(scale))
		if err != nil {
			fail("fig12", err)
		}
		experiments.PrintFig12(os.Stdout, pts)
	}
	if all || want["fig13"] {
		ran++
		fmt.Println("\n== Fig. 13: 1-minute load average vs requesters and sinks ==")
		cfg := experiments.DefaultFig13(scale)
		reqs, err := experiments.RunFig13Requesters(cfg)
		if err != nil {
			fail("fig13", err)
		}
		sinks, err := experiments.RunFig13Sinks(cfg)
		if err != nil {
			fail("fig13", err)
		}
		experiments.PrintFig13(os.Stdout, append(reqs, sinks...))
	}
	if all || want["ablation"] {
		ran++
		fmt.Println("\n== Ablations ==")
		var pts []experiments.AblationPoint
		cachePts, err := experiments.RunAblationCache(200, 10)
		if err != nil {
			fail("ablation-cache", err)
		}
		pts = append(pts, cachePts...)
		overlayPts, err := experiments.RunAblationOverlay(7, 210, 10)
		if err != nil {
			fail("ablation-overlay", err)
		}
		pts = append(pts, overlayPts...)
		experiments.PrintAblation(os.Stdout, pts)
		st, err := experiments.RunElection(10, 3)
		if err != nil {
			fail("ablation-election", err)
		}
		fmt.Printf("\nSuper-peer election: %d sites, group size %d -> %d super-peers in %v\n",
			st.Sites, st.GroupSize, st.SuperPeers, st.Elapsed)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment selection %q\n", *expFlag)
		os.Exit(2)
	}
}
