// Command glared runs a single standalone GLARE site daemon: the full
// per-site stack (transport container, Default Index, ATR, ADR,
// PeerService, RDM frontend and monitors) on one address.
//
// A daemon can run alone, or join an existing community by registering
// itself in a remote community index:
//
//	glared -addr 127.0.0.1:9001 -name agrid-a            # community holder
//	glared -addr 127.0.0.1:9002 -name agrid-b -join http://127.0.0.1:9001
//
// The joining site appears in the holder's community index; the holder's
// Index Monitor then re-runs the super-peer election to fold it in.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"glare/internal/epr"
	"glare/internal/mds"
	"glare/internal/rdm"
	"glare/internal/rrd"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	name := flag.String("name", "", "site name (default derived from address)")
	join := flag.String("join", "", "base URL of the community-index holder to join")
	community := flag.Bool("community", false, "host the community index (election coordinator)")
	mhz := flag.Int("mhz", 1500, "site processor speed attribute")
	memory := flag.Int("memory", 2048, "site memory attribute (MB)")
	dataDir := flag.String("data", "", "durable store directory (empty = memory-only; registries and leases are then lost on restart)")
	fsyncMode := flag.String("fsync", "interval", "store fsync policy: always|interval|never")
	maxBuilds := flag.Int("max-builds", 0, "concurrent on-demand builds this site runs (0 = engine default)")
	buildQueue := flag.Int("build-queue", 0, "builds waiting for a slot before new ones are shed (0 = engine default, negative = no queue)")
	historyStep := flag.Duration("history-step", rrd.DefaultStep, "telemetry-history base step (0 or negative disables the round-robin history)")
	historyRet := flag.String("history-ret", "", "telemetry-history retention archives as comma-separated [cf:]STEPSxROWS items, e.g. avg:1x600,avg:60x1440,max:10x600 (empty = defaults)")
	admission := flag.Bool("admission", true, "enable the overload admission controller (priority classes, deadline-aware queueing, AIMD limits)")
	replicas := flag.Int("replicas", 0, "total copies of every registration kept in the peer group, owner included; writes are acknowledged at a quorum (0 or 1 = no replication)")
	casBudget := flag.Int64("cas-budget", 0, "content-addressed artifact cache byte budget (0 = default, negative = disable the artifact grid)")
	flag.Parse()

	historyCfg, err := historyConfig(*historyStep, *historyRet)
	if err != nil {
		fatal(err)
	}

	fsync, err := store.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}

	attrs := site.Attributes{
		Name:         *name,
		ProcessorMHz: *mhz,
		MemoryMB:     *memory,
		UptimeHours:  100,
		Processors:   4,
		Platform:     "Intel",
		OS:           "Linux",
		Arch:         "32bit",
	}
	srv := transport.NewServer()
	if err := srv.Start(*addr, nil); err != nil {
		fatal(err)
	}
	defer srv.Close()
	if attrs.Name == "" {
		attrs.Name = strings.TrimPrefix(srv.BaseURL(), "http://")
	}

	clock := simclock.Real
	st := site.New(attrs, clock, site.StandardUniverse())
	info := superpeer.SiteInfo{Name: attrs.Name, Rank: attrs.Rank(), BaseURL: srv.BaseURL()}
	tel := telemetry.New(attrs.Name)
	if *admission {
		srv.SetAdmission(transport.NewAdmission(transport.DefaultAdmissionConfig(), tel))
	}
	client := transport.NewClient(nil)
	client.SetTelemetry(tel)
	client.SetRetryPolicy(transport.DefaultRetryPolicy())
	client.SetRetryBudget(transport.NewRetryBudget(0, 0))
	client.SetBreaker(transport.DefaultBreakerConfig())
	agent := superpeer.NewAgent(info, client, nil)

	kind := mds.DefaultIndex
	if *community || *join == "" {
		kind = mds.CommunityIndex
	}
	index := mds.New("index-"+attrs.Name, kind, clock)
	resolver := workload.NewResolver(st.Repo)

	// Durability: recover the site's journal before assembling the RDM so
	// registrations, deployment documents and unexpired leases survive a
	// daemon restart.
	var durable *store.Store
	if *dataDir != "" {
		durable, err = store.Open(store.Options{Dir: *dataDir, Fsync: fsync, Clock: clock})
		if err != nil {
			fatal(err)
		}
	}

	svc, err := rdm.New(rdm.Config{
		Site:        st,
		Clock:       clock,
		Client:      client,
		Agent:       agent,
		LocalIndex:  index,
		DeployFiles: resolver.Fetch,
		Telemetry:   tel,
		Store:       durable,
		Deploy: rdm.DeployLimits{
			MaxConcurrent: *maxBuilds,
			QueueDepth:    *buildQueue,
		},
		History:   historyCfg,
		ReplicaK:  *replicas,
		CASBudget: *casBudget,
	})
	if err != nil {
		fatal(err)
	}
	if durable != nil {
		s := durable.Status()
		fmt.Printf("glared: store %s recovered %d record(s) in %s (live=%d, truncated=%dB, fsync=%s)\n",
			s.Dir, s.ReplayRecords, s.ReplayDuration.Round(time.Millisecond),
			s.LiveRecords, s.TruncatedBytes, fsync)
	}
	svc.Mount(srv)
	svc.MountExtensions(srv)

	// Register this site in the community index — ours, or the remote
	// holder's when joining.
	siteEPR := epr.New(info.ServiceURL(rdm.ServiceName), "SiteKey", info.Name)
	if *join != "" {
		entry := xmlutil.NewNode("Entry")
		entry.Add(siteEPR.ToXML("MemberEPR"))
		entry.Add(info.ToXML())
		joinURL := strings.TrimSuffix(*join, "/") + transport.ServicePrefix + mds.ServiceName
		if _, err := client.Call(joinURL, "Register", entry); err != nil {
			fatal(fmt.Errorf("joining %s: %w", *join, err))
		}
		fmt.Printf("joined community at %s\n", *join)
	} else {
		index.Register(siteEPR, info.ToXML())
	}

	svc.StartMonitors(rdm.DefaultIntervals())
	fmt.Printf("glared: site %s up at %s (index: %s)\n", attrs.Name, srv.BaseURL(), kind)
	fmt.Printf("RDM service: %s\n", srv.ServiceURL(rdm.ServiceName))
	fmt.Printf("admin: %s/metrics %s/healthz %s/tracez\n",
		srv.BaseURL(), srv.BaseURL(), srv.BaseURL())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	svc.Stop()
	fmt.Println("glared: shutting down")
}

// historyConfig builds the site's telemetry-history configuration from the
// -history-step / -history-ret flags. A retention item is [cf:]STEPSxROWS
// where cf is one of avg|min|max|last (default avg), STEPS is how many base
// steps one slot consolidates and ROWS is the ring length.
func historyConfig(step time.Duration, retention string) (rdm.HistoryConfig, error) {
	cfg := rdm.HistoryConfig{Step: step}
	if step <= 0 {
		cfg = rdm.HistoryConfig{Disabled: true}
		return cfg, nil
	}
	if retention == "" {
		return cfg, nil
	}
	for _, item := range strings.Split(retention, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		spec := rrd.ArchiveSpec{CF: rrd.Average}
		body := item
		if i := strings.IndexByte(item, ':'); i >= 0 {
			cf, err := rrd.ParseCF(item[:i])
			if err != nil {
				return cfg, fmt.Errorf("-history-ret %q: %w", item, err)
			}
			spec.CF = cf
			body = item[i+1:]
		}
		if _, err := fmt.Sscanf(body, "%dx%d", &spec.Steps, &spec.Rows); err != nil ||
			spec.Steps <= 0 || spec.Rows <= 0 {
			return cfg, fmt.Errorf("-history-ret %q: want [cf:]STEPSxROWS", item)
		}
		cfg.Archives = append(cfg.Archives, spec)
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glared:", err)
	os.Exit(1)
}
