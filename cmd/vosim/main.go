// Command vosim starts a simulated Virtual Organization of N GLARE sites
// on the loopback interface and keeps it running so that glarectl (or any
// HTTP client speaking the envelope protocol) can be pointed at it.
//
// Usage:
//
//	vosim -sites 7 -group-size 3 [-secure] [-register-imaging]
//
// The endpoints of every site are printed at startup. Interrupt to stop.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/superpeer"
	"glare/internal/vo"
)

func main() {
	sites := flag.Int("sites", 3, "number of Grid sites")
	groupSize := flag.Int("group-size", 0, "super-peer group size (0 = default)")
	secure := flag.Bool("secure", false, "serve HTTPS with a VO-internal CA")
	registerImaging := flag.Bool("register-imaging", true, "register the POVray imaging stack on site 1")
	registerApps := flag.Bool("register-apps", true, "register the Wien2k/Invmod/Counter types on site 1")
	flag.Parse()

	v, err := vo.Build(vo.Options{
		Sites:     *sites,
		GroupSize: *groupSize,
		Secure:    *secure,
		Clock:     simclock.Real,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vosim:", err)
		os.Exit(1)
	}
	defer v.Close()
	if err := v.ElectSuperPeers(); err != nil {
		fmt.Fprintln(os.Stderr, "vosim: election:", err)
		os.Exit(1)
	}
	if *registerImaging {
		if err := v.RegisterImagingStack(0); err != nil {
			fmt.Fprintln(os.Stderr, "vosim:", err)
			os.Exit(1)
		}
	}
	if *registerApps {
		if err := v.RegisterEvaluationApps(0); err != nil {
			fmt.Fprintln(os.Stderr, "vosim:", err)
			os.Exit(1)
		}
	}
	for _, n := range v.Nodes {
		n.RDM.StartMonitors(rdm.DefaultIntervals())
	}

	fmt.Printf("VO up: %d sites\n", len(v.Nodes))
	for _, n := range v.Nodes {
		role := n.Agent.Role().String()
		if role == superpeer.RoleSuperPeer.String() {
			role = "SUPER-PEER"
		}
		fmt.Printf("  %-22s %-11s %s\n", n.Info.Name, role,
			n.Info.ServiceURL(rdm.ServiceName))
	}
	fmt.Println("interrupt to stop")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("shutting down")
}
