// Overload benchmark: goodput and per-class p99 at 1x, 5x and 20x the
// interactive admission capacity — the numbers CI publishes as
// BENCH_overload.json so a goodput regression (or a brownout-order
// break) shows up as a metric shift, not just a test flake.
package glare_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/vo"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

// benchAdmission pins every class's limit (AIMD off) so the multiplier
// arithmetic is stable across runs: interactive capacity is exactly 4
// concurrent slots.
func benchAdmission() *transport.AdmissionConfig {
	return &transport.AdmissionConfig{
		Control:     transport.ClassLimits{Limit: 8, MinLimit: 8, MaxLimit: 8, QueueDepth: 16},
		Interactive: transport.ClassLimits{Limit: 4, MinLimit: 4, MaxLimit: 4, QueueDepth: 10},
		Bulk:        transport.ClassLimits{Limit: 1, MinLimit: 1, MaxLimit: 1, QueueDepth: 2},
	}
}

// BenchmarkOverloadFlood floods one site at a multiple of its interactive
// capacity and reports goodput plus per-class p99 latency. At x1 nothing
// sheds; at x5 and x20 the brownout ladder engages and the interesting
// number is how flat interactive goodput stays.
func BenchmarkOverloadFlood(b *testing.B) {
	const service = 20 * time.Millisecond
	for _, mult := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("x%d", mult), func(b *testing.B) {
			v, err := vo.Build(vo.Options{
				Sites:     1,
				Clock:     simclock.Real,
				Admission: benchAdmission(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer v.Close()
			node := v.Nodes[0]
			node.Server.RegisterCtx("FloodSvc", "Work",
				func(ctx context.Context, _ *telemetry.Span, _ *xmlutil.Node) (*xmlutil.Node, error) {
					time.Sleep(service)
					return xmlutil.NewNode("Done"), nil
				})
			workURL := node.Info.BaseURL + transport.ServicePrefix + "FloodSvc"
			peerURL := node.Info.PeerURL()
			rdmURL := node.Info.ServiceURL(rdm.ServiceName)

			cli := transport.NewClient(nil)
			defer cli.CloseIdle()
			callOp := func(url, op string) func(ctx context.Context) error {
				return func(ctx context.Context) error {
					_, err := cli.CallCtx(ctx, nil, url, op, nil)
					if transport.IsOverloadReject(err) {
						time.Sleep(50*time.Millisecond + time.Duration(rand.Int63n(int64(50*time.Millisecond))))
					}
					return err
				}
			}

			var workGoodput, probeGoodput, scanGoodput, workP99, probeP99, shedRate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := workload.RunFlood(context.Background(), workload.FloodConfig{
					Duration: 300 * time.Millisecond,
					Ops: []workload.FloodOp{
						{Name: "work", Class: "interactive", Clients: 4 * mult,
							Budget: 150 * time.Millisecond, Ramp: 50 * time.Millisecond,
							Do: callOp(workURL, "Work")},
						{Name: "probe", Class: "control", Clients: 2,
							Budget: 200 * time.Millisecond, Do: callOp(peerURL, "ViewStatus")},
						{Name: "scan", Class: "bulk", Clients: 2,
							Budget: 100 * time.Millisecond, Do: callOp(rdmURL, "RegistryDigest")},
					},
				})
				work, probe := res.Op("work"), res.Op("probe")
				workGoodput += work.Goodput
				probeGoodput += probe.Goodput
				scanGoodput += res.Op("scan").Goodput
				workP99 += float64(work.P99.Microseconds()) / 1e3
				probeP99 += float64(probe.P99.Microseconds()) / 1e3
				if work.Issued > 0 {
					shedRate += float64(work.Shed) / float64(work.Issued)
				}
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(workGoodput/n, "work-goodput/s")
			b.ReportMetric(probeGoodput/n, "probe-goodput/s")
			b.ReportMetric(scanGoodput/n, "scan-goodput/s")
			b.ReportMetric(workP99/n, "work-p99-ms")
			b.ReportMetric(probeP99/n, "probe-p99-ms")
			b.ReportMetric(100*shedRate/n, "work-shed-%")
		})
	}
}
