package glare_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandsEndToEnd builds the real glared and glarectl binaries, boots
// a two-daemon community (the second joins the first), and drives the full
// provider/scheduler flow through the CLI: register a type document,
// discover with on-demand deployment, lease, instantiate, release and
// undeploy.
func TestCommandsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	glared := build("glared")
	glarectl := build("glarectl")

	// Daemon A holds the community index.
	a, aURL := startDaemon(t, glared, "-addr", "127.0.0.1:0", "-name", "site-a")
	defer stop(a)
	// Daemon B joins A's community.
	b, bURL := startDaemon(t, glared, "-addr", "127.0.0.1:0", "-name", "site-b", "-join", aURL)
	defer stop(b)

	ctl := func(args ...string) (string, error) {
		out, err := exec.Command(glarectl, args...).CombinedOutput()
		return string(out), err
	}

	// Wait until A's index monitor has folded B in (election re-run) —
	// observable as B acquiring a super-peer role answer on Ping; simplest
	// robust signal: type registration on A becomes discoverable from B.
	typeFile := filepath.Join(bin, "type.xml")
	typeXML := `<ActivityTypeEntry name="CLIApp" type="Demo">
  <Artifact>Ant</Artifact>
  <Installation mode="on-demand">
    <DeployFile url="http://dps.uibk.ac.at/~glare/deployfiles/ant.build"/>
  </Installation>
</ActivityTypeEntry>`
	if err := os.WriteFile(typeFile, []byte(typeXML), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := ctl("-url", aURL, "register-type", typeFile); err != nil {
		t.Fatalf("register-type: %v\n%s", err, out)
	}
	if out, err := ctl("-url", aURL, "types"); err != nil || !strings.Contains(out, "CLIApp") {
		t.Fatalf("types: %v\n%s", err, out)
	}

	// Discovery from B must resolve the type registered on A and install
	// it on demand. The election that makes A and B peers is asynchronous
	// (index monitor), so poll.
	deadline := time.Now().Add(30 * time.Second)
	var out string
	var err error
	for {
		out, err = ctl("-url", bURL, "discover", "CLIApp")
		if err == nil && strings.Contains(out, "ant") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("discover from B never succeeded: %v\n%s", err, out)
		}
		time.Sleep(500 * time.Millisecond)
	}

	// The grid-wide metrics table scraped through A's community index must
	// cover both daemons and show the RDM traffic the flow above produced.
	if out, err = ctl("-url", aURL, "metrics"); err != nil {
		t.Fatalf("metrics: %v\n%s", err, out)
	}
	for _, want := range []string{"METRIC", "site-a", "site-b", "glare_rdm_requests_total", "glare_rpc_server_requests_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics table missing %q:\n%s", want, out)
		}
	}

	// The deployment lives somewhere; lease + instantiate + release on the
	// site that owns it (B deployed locally since it matches constraints).
	owner := bURL
	if !strings.Contains(out, "site-b") {
		owner = aURL
	}
	out, err = ctl("-url", owner, "lease", "ant", "cli-user", "exclusive", "60")
	if err != nil {
		t.Fatalf("lease: %v\n%s", err, out)
	}
	// Output: "ticket <id> (exclusive on ant)".
	fields := strings.Fields(out)
	if len(fields) < 2 || fields[0] != "ticket" {
		t.Fatalf("lease output %q", out)
	}
	ticket := fields[1]
	if out, err = ctl("-url", owner, "instantiate", "ant", "cli-user", ticket); err != nil {
		t.Fatalf("instantiate: %v\n%s", err, out)
	}
	if out, err = ctl("-url", owner, "release", ticket); err != nil {
		t.Fatalf("release: %v\n%s", err, out)
	}
	if out, err = ctl("-url", owner, "undeploy", "ant"); err != nil {
		t.Fatalf("undeploy: %v\n%s", err, out)
	}
	// Resolve (no deploy) now finds nothing locally on the owner.
	out, _ = ctl("-url", owner, "deployments", "CLIApp")
	if !strings.Contains(out, "no deployments") {
		t.Fatalf("after undeploy: %s", out)
	}

	// The round-robin history sampler (real-time monitor) must be feeding
	// series by now; `history` renders each retention archive.
	deadline = time.Now().Add(20 * time.Second)
	var hist string
	for {
		hist, err = ctl("-url", aURL, "history", "glare_site_services")
		if err == nil && strings.Contains(hist, "AVERAGE") && strings.Contains(hist, "kind=gauge") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never served: %v\n%s", err, hist)
		}
		time.Sleep(500 * time.Millisecond)
	}
	if hist, err = ctl("-url", aURL, "history", "--json", "glare_site_services"); err != nil ||
		!strings.Contains(hist, `"cf": "AVERAGE"`) {
		t.Fatalf("history --json: %v\n%s", err, hist)
	}
	// The --filter flag form of the metrics table.
	if hist, err = ctl("-url", aURL, "metrics", "--filter", "glare_history_"); err != nil ||
		!strings.Contains(hist, "glare_history_samples_total") {
		t.Fatalf("metrics --filter: %v\n%s", err, hist)
	}
}

// startDaemon launches glared and extracts its base URL from stdout.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "up at http") {
				i := strings.Index(line, "http")
				urlCh <- strings.TrimSpace(line[i:strings.LastIndex(line, " (")])
			}
		}
	}()
	select {
	case url := <-urlCh:
		return cmd, url
	case <-time.After(20 * time.Second):
		stop(cmd)
		t.Fatal("daemon never reported its URL")
		return nil, ""
	}
}

func stop(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
}
