package glare

import (
	"strings"
	"testing"
	"time"

	"glare/internal/rrd"
	"glare/internal/simclock"
)

// TestHistoryAlertQuarantineAndRestart is the telemetry-history acceptance
// path: on a 3-site grid with durable stores, injected build faults drive a
// rising deploy-failure rate; the round-robin history records the spike at
// two resolutions; the default alert rule fires and quarantines the failing
// type pre-emptively — before the consecutive-failure threshold would —
// /healthz reports the firing alert, and the archives survive a site
// restart by replaying the store journal.
func TestHistoryAlertQuarantineAndRestart(t *testing.T) {
	const step = 5 * time.Second
	g := newGrid(t, GridOptions{
		Sites:   3,
		DataDir: t.TempDir(),
		// A deliberately high threshold: consecutive failures alone must
		// not quarantine Invmod inside this test's attempt budget.
		Deploy:  DeployLimits{QuarantineAfter: 6, QuarantineCooldown: time.Hour},
		History: HistoryConfig{Step: step},
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	c := g.Client(1)
	if err := c.RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}
	clock := g.vo.Clock.(*simclock.Virtual)

	// Seed the history so the rollback counter has a baseline sample.
	c.SampleHistory()

	// Chaos: every Invmod build dies at its Expand step and rolls back.
	g.FailBuildStep(1, "Invmod", "Expand", 100)

	rollbacks, quarantined := 0, false
	for i := 0; i < 12 && !quarantined; i++ {
		_, err := c.Deploy("Invmod", MethodExpect)
		if err == nil {
			t.Fatalf("attempt %d succeeded despite injected fault", i+1)
		}
		if strings.Contains(err.Error(), "quarantined") {
			quarantined = true
			break
		}
		rollbacks++
		clock.Advance(step)
		c.SampleHistory()
	}
	if !quarantined {
		t.Fatalf("type never quarantined after %d rollbacks", rollbacks)
	}
	// The alert pre-empted the threshold: far fewer consecutive failures
	// than DeployLimits.QuarantineAfter actually happened.
	if rollbacks >= 6 {
		t.Fatalf("quarantine came only after %d rollbacks — not pre-emptive", rollbacks)
	}
	st := c.DeployEngineStatus()
	if len(st.Quarantined) != 1 || st.Quarantined[0].Type != "Invmod" ||
		!st.Quarantined[0].Preempted {
		t.Fatalf("quarantine status = %+v, want pre-empted Invmod", st.Quarantined)
	}
	firing := c.FiringAlerts()
	if len(firing) != 1 || firing[0].Rule.Name != "deploy-failure-rate" {
		t.Fatalf("firing alerts = %+v", firing)
	}

	// The health endpoint reflects the incident while it is live.
	health := scrapeAdmin(t, g.SiteURL(1)+"/healthz")
	for _, want := range []string{`"status":"alerting"`, `"quarantined":1`, `"firing_alerts":1`} {
		if !strings.Contains(health, want) {
			t.Fatalf("healthz missing %s: %s", want, health)
		}
	}

	// Keep sampling past a coarse slot boundary so the 10-step archive
	// consolidates the spike into a closed row.
	for i := 0; i < 12; i++ {
		clock.Advance(step)
		c.SampleHistory()
	}

	// The spike is visible at two resolutions of the same series.
	assertSpike := func(h *HistoryStore, context string) {
		t.Helper()
		x, err := h.Xport("glare_deploy_rollbacks_total")
		if err != nil {
			t.Fatalf("%s: %v", context, err)
		}
		found := map[time.Duration]bool{}
		for _, a := range x.Archives {
			if a.Spec.CF != rrd.Average {
				continue
			}
			for _, p := range a.Points {
				if !p.Live && p.V > 0 {
					found[a.Step] = true
				}
			}
		}
		if !found[step] || !found[10*step] {
			t.Fatalf("%s: spike resolutions = %v, want both %v and %v",
				context, found, step, 10*step)
		}
	}
	assertSpike(c.History(), "before restart")

	// Crash-and-recover: the archives replay out of the store journal.
	g.StopSite(1)
	if err := g.RestartSite(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	assertSpike(g.Client(1).History(), "after restart")
}

// TestSuperPeerRollupConsolidatesGridSeries: community members' archives
// fold into grid-wide grid:<metric> series on the super-peer, summing
// per-slot rates across sites; non-super-peers fold nothing.
func TestSuperPeerRollupConsolidatesGridSeries(t *testing.T) {
	const step = 5 * time.Second
	g := newGrid(t, GridOptions{Sites: 3, History: HistoryConfig{Step: step}})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	clock := g.vo.Clock.(*simclock.Virtual)

	// Give two different sites rollback activity, then sample everywhere
	// across several closed slots.
	for tick := 0; tick < 4; tick++ {
		for i := 0; i < g.Sites(); i++ {
			if tick > 0 && (i == 0 || i == 2) {
				g.Telemetry(i).Counter("glare_deploy_rollbacks_total").Inc()
			}
			g.Client(i).SampleHistory()
		}
		clock.Advance(step)
	}

	super, members := -1, 0
	for i := 0; i < g.Sites(); i++ {
		if g.IsSuperPeer(i) {
			super = i
		} else {
			members++
		}
	}
	if super < 0 || members == 0 {
		t.Fatalf("no super-peer elected")
	}
	if n := g.Client((super + 1) % g.Sites()).RollupHistory(); n != 0 {
		t.Fatalf("member folded %d rollup points", n)
	}
	n := g.Client(super).RollupHistory()
	if n == 0 {
		t.Fatal("super-peer rollup folded nothing")
	}
	h := g.Client(super).History()
	grid := "grid:glare_deploy_rollbacks_total"
	if !h.Has(grid) {
		t.Fatalf("missing %s; have %v", grid, h.Names())
	}
	// Read the finest archive's slot-exact rates (a wide Fetch range would
	// select a coarser consolidation).
	x, err := h.Xport(grid)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range x.Archives {
		if a.Spec.CF != rrd.Average || a.Spec.Steps != 1 {
			continue
		}
		for _, p := range a.Points {
			if p.V > 0 {
				sum += p.V * step.Seconds()
			}
		}
	}
	// Sites 0 and 2 each produced two closed rate slots of one rollback
	// per step (the third increment is still in the live head slot and is
	// not rolled up), so the grid series integrates to 4 rollbacks.
	if sum < 3.5 || sum > 4.5 {
		t.Fatalf("grid series integrates to %.2f rollbacks, want ~4", sum)
	}
	// A second pass re-pulls nothing new: everything folded is deduped by
	// the grid series' own timestamps.
	if again := g.Client(super).RollupHistory(); again != 0 {
		t.Fatalf("idempotent re-rollup folded %d points", again)
	}
}
