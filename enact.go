package glare

import (
	"glare/internal/agwl"
	"glare/internal/enactor"
	"glare/internal/rdm"
)

// WorkflowSpec is an AGWL workflow: activities referencing activity types,
// wired by data-flow edges. Parse one from XML with ParseWorkflow or build
// it directly.
type WorkflowSpec = agwl.Workflow

// WorkflowActivity is one workflow node.
type WorkflowActivity = agwl.Activity

// WorkflowPort is a named input or output of a workflow activity.
type WorkflowPort = agwl.Port

// EnactReport summarizes a workflow run: where every activity was placed,
// how long the whole run took, and how much data moved between sites.
type EnactReport = enactor.Report

// Placement records where one workflow activity ran.
type Placement = enactor.Placement

// ParseWorkflow parses an AGWL workflow document:
//
//	<Workflow name="povray">
//	  <Activity name="render" type="ImageConversion">
//	    <Input name="scene" source="user:scene.pov"/>
//	    <Output name="image"/>
//	  </Activity>
//	  <Activity name="view" type="Visualization">
//	    <Input name="image" source="render:image"/>
//	  </Activity>
//	</Workflow>
func ParseWorkflow(xml string) (*WorkflowSpec, error) {
	return agwl.ParseString(xml)
}

// EnactOptions tunes a workflow run.
type EnactOptions struct {
	// Home is the index of the site whose local GLARE service the
	// enactment engine talks to (the submitting user's site).
	Home int
	// LookAhead pre-resolves (and on-demand-installs) every activity type
	// the workflow needs, concurrently with the early stages — the
	// "intelligent look-ahead scheduling" the paper proposes to hide
	// deployment overhead.
	LookAhead bool
	// Client labels the run for leasing/metrics purposes.
	Client string
}

// Enact runs a workflow against the grid: each activity is resolved to a
// concrete deployment through GLARE (installing on demand), inputs are
// staged between sites, executables run as GRAM jobs, and failures retry
// on an alternative deployment.
func (g *Grid) Enact(w *WorkflowSpec, opts EnactOptions) (*EnactReport, error) {
	home := g.vo.Nodes[opts.Home].RDM
	sites := map[string]*rdm.Service{}
	for _, n := range g.vo.Nodes {
		sites[n.Info.Name] = n.RDM
	}
	eng := &enactor.Engine{
		Home:      home,
		Sites:     sites,
		FTP:       home.FTP,
		Clock:     g.vo.Clock,
		LookAhead: opts.LookAhead,
		Client:    opts.Client,
	}
	return eng.Run(w)
}
