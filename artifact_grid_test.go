package glare

import (
	"sync"
	"testing"

	"glare/internal/gridftp"
)

// flashInstall builds a K-site grid (one peer group) and has every site
// deploy the same release concurrently. It returns the grid, the per-URL
// origin transfer totals summed across all sites, and each site's report.
func flashInstall(t *testing.T, k int) (*Grid, map[string]int, []*DeployReport) {
	t.Helper()
	g := newGrid(t, GridOptions{Sites: k, GroupSize: k})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	if err := g.Client(0).RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reports := make([]*DeployReport, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = g.Client(i).Deploy("Wien2k", MethodExpect)
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil || reports[i] == nil || len(reports[i].Deployments) == 0 {
			t.Fatalf("site %d flash deploy: report=%+v err=%v", i, reports[i], errs[i])
		}
	}
	perURL := map[string]int{}
	for i := 0; i < k; i++ {
		for url, n := range g.OriginFetches(i) {
			perURL[url] += n
		}
	}
	return g, perURL, reports
}

// originBytes sums the bytes every site's direct GridFTP client moved from
// origin (the quantity the artifact grid exists to bound).
func originBytes(g *Grid) int64 {
	var total int64
	for i := 0; i < g.Sites(); i++ {
		total += g.vo.Nodes[i].RDM.FTP.SourceStats()[gridftp.OriginSource].Bytes
	}
	return total
}

// TestFlashInstallBoundsOriginTransfers is the artifact-grid acceptance
// path: K sites concurrently install the same release; the rendezvous home
// pulls the archive from origin once (under a per-key singleflight) and
// every other site peer-fetches it, so the origin sees at most two
// transfers per distinct blob — one happy-path pull plus at most one
// racing direct fetch by the home's own build — regardless of K.
func TestFlashInstallBoundsOriginTransfers(t *testing.T) {
	const k = 6
	g, perURL, reports := flashInstall(t, k)

	if len(perURL) == 0 {
		t.Fatal("flash install recorded no origin transfers at all")
	}
	for url, n := range perURL {
		if n > 2 {
			t.Fatalf("origin transfers for %s = %d with K=%d, want <= 2", url, n, k)
		}
	}
	var peer, verify, misses uint64
	for i := 0; i < k; i++ {
		st := g.ArtifactStats(i)
		if !st.Enabled {
			t.Fatalf("site %d has no artifact store", i)
		}
		peer += st.PeerFetches
		verify += st.VerifyFailures
		misses += st.Misses
	}
	// At least K-2 sites were served by peers, every served copy verified.
	if peer < k-2 {
		t.Fatalf("peer fetches = %d, want >= %d (origin not offloaded)", peer, k-2)
	}
	if verify != 0 {
		t.Fatalf("verify failures = %d during a clean flash install", verify)
	}
	if misses == 0 {
		t.Fatal("no CAS misses recorded — the ladder never ran")
	}

	// Warm grid: tear the installs down (the CAS keeps its blobs) and
	// redeploy everywhere. Every transfer step is now a local hit: zero
	// new origin transfers, zero new origin bytes — trivially under the
	// 25% warm/cold acceptance bound.
	coldBytes := originBytes(g)
	if coldBytes == 0 {
		t.Fatal("cold flash install moved no origin bytes")
	}
	for i := 0; i < k; i++ {
		for _, d := range reports[i].Deployments {
			if err := g.Client(i).Undeploy(d.Name); err != nil {
				t.Fatalf("site %d undeploy %s: %v", i, d.Name, err)
			}
		}
	}
	for i := 0; i < k; i++ {
		if _, err := g.Client(i).Deploy("Wien2k", MethodExpect); err != nil {
			t.Fatalf("site %d warm redeploy: %v", i, err)
		}
		if st := g.ArtifactStats(i); st.Hits == 0 {
			t.Fatalf("site %d warm redeploy missed its local CAS: %+v", i, st)
		}
	}
	warmPerURL := map[string]int{}
	for i := 0; i < k; i++ {
		for url, n := range g.OriginFetches(i) {
			warmPerURL[url] += n
		}
	}
	for url, n := range warmPerURL {
		if n != perURL[url] {
			t.Fatalf("warm redeploy re-fetched %s from origin (%d -> %d)", url, perURL[url], n)
		}
	}
	if warmDelta := originBytes(g) - coldBytes; warmDelta*4 >= coldBytes {
		t.Fatalf("warm origin bytes %d not under 25%% of cold %d", warmDelta, coldBytes)
	}
}

// TestFlashInstallOriginCountConstantAsGridGrows pins the scaling claim:
// the per-blob origin transfer total obeys the same <=2 bound at K=3 and
// K=6 — origin load does not grow with the number of installing sites.
func TestFlashInstallOriginCountConstantAsGridGrows(t *testing.T) {
	for _, k := range []int{3, 6} {
		g, perURL, _ := flashInstall(t, k)
		for url, n := range perURL {
			if n > 2 {
				t.Fatalf("K=%d: origin transfers for %s = %d, want <= 2", k, url, n)
			}
		}
		g.Close()
	}
}

// TestCorruptedPeerCopyFallsBackToOrigin fault-injects bit rot into a
// holder's CAS: the requester rejects the rotted copy at verification,
// drops the stale location, and completes the build from origin — the
// install succeeds, the corruption is only visible as a verify-failure
// counter and one extra origin transfer.
func TestCorruptedPeerCopyFallsBackToOrigin(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2, GroupSize: 2})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	if err := g.Client(0).RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Client(0).Deploy("Invmod", MethodExpect); err != nil {
		t.Fatal(err)
	}
	holdings := g.vo.Nodes[0].RDM.ArtifactHoldings()
	if len(holdings) == 0 {
		t.Fatal("deploy ingested nothing into site 0's CAS")
	}
	for _, e := range holdings {
		if !g.CorruptArtifact(0, e.Key.Algo, e.Key.Sum) {
			t.Fatalf("could not corrupt %s", e.Key)
		}
	}
	// One anti-entropy pass teaches site 1 that site 0 holds the blob, so
	// its ladder provably tries the (rotted) peer copy first.
	g.vo.Nodes[1].RDM.SyncRegistries()

	if _, err := g.Client(1).Deploy("Invmod", MethodExpect); err != nil {
		t.Fatalf("deploy must survive a rotted peer copy: %v", err)
	}
	st := g.ArtifactStats(1)
	if st.VerifyFailures == 0 {
		t.Fatalf("rotted peer copy was not detected: %+v", st)
	}
	if st.PeerFetches != 0 {
		t.Fatalf("rotted copy was ingested as a peer fetch: %+v", st)
	}
	var total int
	for _, n := range g.OriginFetches(1) {
		total += n
	}
	if total == 0 {
		t.Fatal("fallback to origin never happened")
	}
}

// TestCrashedTransferResumesFromRestoredCAS extends the PR 5 resume
// property into the artifact grid: a build crashes at its Download step
// (no checkpoint for the transfer exists), the site restarts, the store
// WAL restores the CAS — and the resumed build satisfies its transfer
// with a local hit: zero origin transfers, zero bytes moved.
func TestCrashedTransferResumesFromRestoredCAS(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:        3,
		DataDir:      t.TempDir(),
		DisableCache: true,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	installer := g.Client(1)
	if err := installer.RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}

	// First life: a full install seeds the CAS (and its WAL records).
	rep, err := installer.Deploy("Wien2k", MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	if st := g.ArtifactStats(1); st.Entries == 0 {
		t.Fatalf("install ingested nothing: %+v", st)
	}
	// Tear the install down; the CAS keeps the blob.
	for _, d := range rep.Deployments {
		if err := installer.Undeploy(d.Name); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: the daemon dies at the Download step itself, so no
	// checkpoint covers the transfer.
	g.CrashBuildStep(1, "Wien2k", "Download")
	if _, err := installer.Deploy("Wien2k", MethodExpect); err == nil {
		t.Fatal("crashed deployment reported success")
	}
	g.StopSite(1)
	if err := g.RestartSite(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	recovered := g.Client(1)

	// The WAL restored the blob into the recovered site's CAS.
	if st := g.ArtifactStats(1); st.Entries == 0 {
		t.Fatalf("restart lost the CAS: %+v", st)
	}
	if _, err := recovered.Deploy("Wien2k", MethodExpect); err != nil {
		t.Fatalf("resumed deployment failed: %v", err)
	}
	// The re-run Download was a CAS hit: the recovered site's fresh GridFTP
	// client moved nothing at all.
	if transfers, bytes := g.vo.Nodes[1].RDM.FTP.Stats(); transfers != 0 || bytes != 0 {
		t.Fatalf("resumed build transferred %d archive(s) (%d bytes), want 0", transfers, bytes)
	}
	if st := g.ArtifactStats(1); st.Hits == 0 {
		t.Fatalf("resumed Download did not hit the restored CAS: %+v", st)
	}
}

// TestKillSiteDestroysCASButRestartRestoresIt pins the lifecycle contract:
// RestartSite replays the CAS from the WAL; KillSite deletes the data
// directory, so a replacement site comes back with an empty store.
func TestKillSiteDestroysCASButRestartRestoresIt(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3, DataDir: t.TempDir(), DisableCache: true})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	if err := g.Client(1).RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Client(1).Deploy("Invmod", MethodExpect); err != nil {
		t.Fatal(err)
	}
	if st := g.ArtifactStats(1); st.Entries == 0 {
		t.Fatal("deploy ingested nothing")
	}
	g.StopSite(1)
	if err := g.RestartSite(1); err != nil {
		t.Fatal(err)
	}
	if st := g.ArtifactStats(1); st.Entries == 0 {
		t.Fatalf("restart lost the CAS: %+v", st)
	}
	if err := g.KillSite(1); err != nil {
		t.Fatal(err)
	}
	if err := g.ReplaceSite(1); err != nil {
		t.Fatal(err)
	}
	if st := g.ArtifactStats(1); st.Entries != 0 {
		t.Fatalf("permanent loss kept CAS blobs: %+v", st)
	}
}
