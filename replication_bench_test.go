// Replication benchmarks: the quorum-write latency tax relative to an
// unreplicated registration, and the time from a permanent site loss to
// a completed failover — the numbers CI publishes as
// BENCH_replication.json so a replication slowdown (or a failover-time
// regression) shows up as a metric shift, not just a test flake.
package glare_test

import (
	"fmt"
	"testing"
	"time"

	"glare"
)

// benchReplicaGrid builds a 3-site grid (one peer group) with the given
// replication factor and returns it elected.
func benchReplicaGrid(b *testing.B, k int) *glare.Grid {
	b.Helper()
	g, err := glare.NewGrid(glare.GridOptions{
		Sites:           3,
		GroupSize:       3,
		Replicas:        k,
		DisableCache:    true,
		BreakerCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	if err := g.Elect(); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkReplicationQuorumWrite registers activity types at replication
// factors 1 (no replication — the baseline), 2 and 3. The delta against
// single is the price of the durability promise: one (K=2) or one-of-two
// (K=3) synchronous replica acknowledgements per registration.
func BenchmarkReplicationQuorumWrite(b *testing.B) {
	for _, bench := range []struct {
		name string
		k    int
	}{{"single", 0}, {"K2", 2}, {"K3", 3}} {
		b.Run(bench.name, func(b *testing.B) {
			g := benchReplicaGrid(b, bench.k)
			provider := g.Client(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := &glare.Type{Name: fmt.Sprintf("BenchType%s%06d", bench.name, i), Domain: "Bench"}
				if err := provider.RegisterType(t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicationFailover measures permanent-loss failover: kill a
// registration owner and clock how long until a surviving site's failure
// detector has promoted a replica and the owner's registrations resolve
// again. Each iteration builds a fresh grid; the reported failover-ms is
// the wall time from KillSite to the first successful resolution.
func BenchmarkReplicationFailover(b *testing.B) {
	for _, k := range []int{2, 3} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var totalMS float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := benchReplicaGrid(b, k)
				// The owner must be killable (not the community-index
				// holder) and must not be the group's super-peer, which
				// runs the failure detector.
				owner := 1
				if g.IsSuperPeer(owner) {
					owner = 2
				}
				var sp int
				for j := 0; j < g.Sites(); j++ {
					if g.IsSuperPeer(j) {
						sp = j
					}
				}
				name := fmt.Sprintf("FailoverType%06d", i)
				if err := g.Client(owner).RegisterType(&glare.Type{Name: name, Domain: "Bench"}); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < g.Sites(); j++ {
					g.Client(j).RepairReplicas()
				}
				b.StartTimer()
				start := time.Now()
				if err := g.KillSite(owner); err != nil {
					b.Fatal(err)
				}
				deadline := time.Now().Add(15 * time.Second)
				for {
					g.Client(sp).CheckReplicas()
					if types, err := g.Client(sp).ResolveTypes(name); err == nil && len(types) > 0 {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("failover did not complete within 15s at K=%d", k)
					}
				}
				elapsed := time.Since(start)
				b.StopTimer()
				totalMS += float64(elapsed.Microseconds()) / 1e3
				g.Close()
			}
			b.ReportMetric(totalMS/float64(b.N), "failover-ms")
		})
	}
}
