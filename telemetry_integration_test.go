package glare

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// scrapeAdmin fetches one of a site's plain-HTTP admin endpoints.
func scrapeAdmin(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// nonzeroSeries reports whether any exposition line whose series name
// starts with prefix carries a value other than zero.
func nonzeroSeries(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		switch strings.TrimSpace(line[i+1:]) {
		case "", "0", "0.000":
		default:
			return true
		}
	}
	return false
}

// TestTelemetryAcrossGrid is the subsystem's acceptance path: after a
// discovery that fans out across a three-site VO, every site serves
// /metrics with live RDM counters and latency histograms, /healthz
// answers, and /tracez on at least two sites shares one correlation ID —
// the discovery's trace crossed the wire.
func TestTelemetryAcrossGrid(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 3})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	if err := g.Client(0).RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}
	// Two discoveries from two different sites: each fans LocalDeployments
	// out to both its peers, so all three sites serve RDM traffic.
	if _, err := g.Client(1).Discover("ImageConversion"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Client(2).Discover("ImageConversion"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < g.Sites(); i++ {
		if g.Telemetry(i) == nil {
			t.Fatalf("site %d: nil telemetry", i)
		}
		if g.Telemetry(i) != g.Client(i).Telemetry() {
			t.Fatalf("site %d: Grid and Client disagree on the telemetry bundle", i)
		}
		base := g.SiteURL(i)
		metrics := scrapeAdmin(t, base+"/metrics")
		if !nonzeroSeries(metrics, "glare_rdm_requests_total{") {
			t.Fatalf("site %d: no RDM requests counted:\n%s", i, metrics)
		}
		if !nonzeroSeries(metrics, "glare_rdm_latency_count{") {
			t.Fatalf("site %d: empty RDM latency histogram:\n%s", i, metrics)
		}
		if !nonzeroSeries(metrics, "glare_rpc_server_requests_total{") {
			t.Fatalf("site %d: no RPC traffic counted:\n%s", i, metrics)
		}
		health := scrapeAdmin(t, base+"/healthz")
		if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, g.SiteName(i)) {
			t.Fatalf("site %d: bad healthz: %s", i, health)
		}
	}

	// The discovery initiated on site 1 starts a trace there; its fan-out
	// must have carried the correlation ID to other sites' tracez.
	traces1 := scrapeAdmin(t, g.SiteURL(1)+"/tracez")
	re := regexp.MustCompile(`rdm\.GetDeployments\s+trace=(\S+)`)
	m := re.FindStringSubmatch(traces1)
	if m == nil {
		t.Fatalf("site 1 tracez has no rdm.GetDeployments span:\n%s", traces1)
	}
	traceID := m[1]
	sitesWithTrace := 0
	for i := 0; i < g.Sites(); i++ {
		if strings.Contains(scrapeAdmin(t, g.SiteURL(i)+"/tracez"), "trace="+traceID) {
			sitesWithTrace++
		}
	}
	if sitesWithTrace < 2 {
		t.Fatalf("trace %s visible on %d site(s), want >= 2", traceID, sitesWithTrace)
	}

	// The resolution ladder attributed the discovery to a source tier.
	if !nonzeroSeries(scrapeAdmin(t, g.SiteURL(1)+"/metrics"), "glare_rdm_resolve_total{") {
		t.Fatal("site 1: resolve-source counters all zero")
	}
}
