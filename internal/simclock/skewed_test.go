package simclock

import (
	"testing"
	"time"
)

func TestSkewedOffsetDisplacesOnlyNow(t *testing.T) {
	base := NewVirtual(time.Time{})
	s := NewSkewed(base)
	if !s.Now().Equal(base.Now()) {
		t.Fatal("fresh view must match the base clock")
	}
	s.SetOffset(10 * time.Minute)
	if got := s.Now().Sub(base.Now()); got != 10*time.Minute {
		t.Fatalf("displacement = %v, want 10m", got)
	}
	// Waiters registered through the view fire on base-clock advances: skew
	// changes what the site reads, not how long its timers take.
	done := s.After(time.Second)
	base.Advance(time.Second)
	select {
	case <-done:
	default:
		t.Fatal("After waiter did not fire through the base clock")
	}
	s.SetOffset(-3 * time.Minute)
	if got := s.Offset(); got != -3*time.Minute {
		t.Fatalf("offset = %v, want -3m", got)
	}
}

func TestSkewedDriftAccruesWithBaseTime(t *testing.T) {
	base := NewVirtual(time.Time{})
	s := NewSkewed(base)
	s.SetDrift(0.01) // gains 10ms per second
	base.Advance(100 * time.Second)
	if got := s.Offset(); got != time.Second {
		t.Fatalf("accrued drift = %v, want 1s after 100s at 1%%", got)
	}
	// Changing the rate folds accrued drift into the offset: displacement is
	// continuous, and the new rate accrues from now.
	s.SetDrift(-0.01)
	if got := s.Offset(); got != time.Second {
		t.Fatalf("displacement jumped across a rate change: %v", got)
	}
	base.Advance(50 * time.Second)
	if got := s.Offset(); got != 500*time.Millisecond {
		t.Fatalf("displacement = %v, want 500ms (1s minus 50s at -1%%)", got)
	}
	// SetOffset re-anchors: the fixed part replaces everything accrued.
	s.SetOffset(time.Minute)
	base.Advance(10 * time.Second)
	if got := s.Offset(); got != time.Minute-100*time.Millisecond {
		t.Fatalf("displacement = %v, want 1m less 10s of -1%% drift", got)
	}
}
