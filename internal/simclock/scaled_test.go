package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestScaledSleepCompressesTime(t *testing.T) {
	c := NewScaled(1000)
	start := time.Now()
	c.Sleep(2 * time.Second) // 2ms real
	real := time.Since(start)
	if real > 500*time.Millisecond {
		t.Fatalf("scaled sleep took %v real", real)
	}
	if real < time.Millisecond {
		t.Fatalf("scaled sleep too fast: %v", real)
	}
}

func TestScaledNowAdvancesFast(t *testing.T) {
	c := NewScaled(1000)
	t0 := c.Now()
	time.Sleep(5 * time.Millisecond)
	if el := c.Now().Sub(t0); el < time.Second {
		t.Fatalf("scaled now advanced only %v", el)
	}
}

func TestScaledFactorClamp(t *testing.T) {
	if NewScaled(0).Factor() != 1 || NewScaled(-5).Factor() != 1 {
		t.Fatal("factor not clamped")
	}
	if NewScaled(100).Factor() != 100 {
		t.Fatal("factor lost")
	}
}

func TestScaledZeroSleep(t *testing.T) {
	c := NewScaled(10)
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-positive sleep blocked")
	}
}

func TestScaledAfter(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(time.Second): // ~1ms real
	case <-time.After(2 * time.Second):
		t.Fatal("After never fired")
	}
}

// The property Scaled exists for: concurrent sleeps overlap (unlike
// Virtual, whose sleeps serialize into the shared counter).
func TestScaledConcurrentSleepsOverlap(t *testing.T) {
	c := NewScaled(1000)
	const n = 8
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(3 * time.Second) // 3ms real each
		}()
	}
	wg.Wait()
	real := time.Since(start)
	// Serialized this would take >= 24ms; overlapped it is ~3ms.
	if real > 20*time.Millisecond {
		t.Fatalf("concurrent scaled sleeps serialized: %v", real)
	}
}
