package simclock

import "time"

// Scaled is a wall clock running Factor times faster: Sleep(d) blocks for
// d/Factor of real time, and Now reports real time stretched by Factor
// from the clock's start.
//
// Unlike Virtual (whose Sleep advances a shared counter and therefore
// serializes concurrent work), Scaled preserves real concurrency:
// goroutines sleeping in parallel overlap exactly as they would in real
// time. The enactment engine's makespan experiments use it so that the
// look-ahead scheduler's deployment/execution overlap is measurable.
type Scaled struct {
	factor int64
	start  time.Time
}

// NewScaled creates a clock running factor times faster than real time;
// factor < 1 is clamped to 1.
func NewScaled(factor int64) *Scaled {
	if factor < 1 {
		factor = 1
	}
	return &Scaled{factor: factor, start: time.Now()}
}

// Factor returns the speed-up factor.
func (s *Scaled) Factor() int64 { return s.factor }

// Now returns the scaled instant: start + factor*(real elapsed).
func (s *Scaled) Now() time.Time {
	return s.start.Add(time.Since(s.start) * time.Duration(s.factor))
}

// Sleep blocks for d of scaled time (d/factor real time).
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	real := d / time.Duration(s.factor)
	if real <= 0 {
		real = time.Microsecond
	}
	time.Sleep(real)
}

// After returns a channel firing after d of scaled time.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		s.Sleep(d)
		ch <- s.Now()
	}()
	return ch
}
