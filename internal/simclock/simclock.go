// Package simclock provides a clock abstraction so that the GLARE
// middleware and its experiments can run either against the wall clock or
// against a deterministic virtual clock.
//
// The paper's Table 1 reports tens of seconds of installation and transfer
// time per application. Reproducing those rows in real time would make the
// experiment suite take minutes for no benefit, so deployment cost models
// advance a virtual clock instead. Components that genuinely need wall time
// (HTTP benchmarks, throughput measurement) use the Real clock.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal clock surface used throughout the repository.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant of this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time. On a virtual
	// clock Sleep advances the clock instead of blocking the OS thread.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a deterministic, manually- or automatically-advancing clock.
// Sleep advances the clock immediately; waiters registered via After fire
// as soon as the clock passes their deadline.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewVirtual creates a virtual clock starting at the given epoch. A zero
// epoch is replaced by a fixed, reproducible instant.
func NewVirtual(epoch time.Time) *Virtual {
	if epoch.IsZero() {
		epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC) // SC'05
	}
	return &Virtual{now: epoch}
}

// Now returns the virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d, releasing any waiter whose
// deadline is reached. It never blocks the OS thread.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.Advance(d)
}

// After registers a waiter that fires when the clock passes now+d.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &waiter{deadline: v.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, w)
	return ch
}

// Advance moves the clock forward by d and fires matured waiters.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var keep []*waiter
	var fire []*waiter
	for _, w := range v.waiters {
		if !w.deadline.After(now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	v.waiters = keep
	v.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// Pending reports how many waiters have not yet matured. Useful in tests.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// Stopwatch measures elapsed time on an arbitrary Clock.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on the given clock.
func NewStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the time since the stopwatch was started or last reset.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now().Sub(s.start) }

// Reset restarts the stopwatch at the clock's current instant.
func (s *Stopwatch) Reset() { s.start = s.clock.Now() }
