package simclock

import (
	"sync"
	"time"
)

// Skewed is a per-site view of a base clock displaced by a fixed offset and
// an optional drift rate. It models the fault domain GLARE's registries
// actually live in: autonomous sites whose wall clocks disagree by minutes
// and wander apart over time.
//
// Only Now is displaced. Sleep and After delegate to the base clock, so
// waiters registered through a skewed view still fire when the shared
// virtual clock advances — skew corrupts what a site *reads*, not how long
// its timers genuinely take.
type Skewed struct {
	mu     sync.Mutex
	base   Clock
	offset time.Duration // fixed displacement, including folded-in past drift
	drift  float64       // additional seconds gained per base second
	anchor time.Time     // base instant drift accrues from
}

// NewSkewed wraps base in a skew view with zero initial displacement.
func NewSkewed(base Clock) *Skewed {
	return &Skewed{base: base, anchor: base.Now()}
}

// Now returns the base instant displaced by the configured offset plus the
// drift accrued since it was set.
func (s *Skewed) Now() time.Time {
	bt := s.base.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return bt.Add(s.displacement(bt))
}

func (s *Skewed) displacement(bt time.Time) time.Duration {
	d := s.offset
	if s.drift != 0 {
		d += time.Duration(float64(bt.Sub(s.anchor)) * s.drift)
	}
	return d
}

// Sleep delegates to the base clock.
func (s *Skewed) Sleep(d time.Duration) { s.base.Sleep(d) }

// After delegates to the base clock.
func (s *Skewed) After(d time.Duration) <-chan time.Time { return s.base.After(d) }

// SetOffset fixes the view's displacement. Accrued drift is folded into the
// new offset's baseline first, so an active drift rate keeps accruing from
// now rather than jumping.
func (s *Skewed) SetOffset(d time.Duration) {
	bt := s.base.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.anchor = bt
	s.offset = d
}

// SetDrift sets the drift rate in seconds gained per base-clock second
// (e.g. 0.001 gains one millisecond per second; negative rates fall
// behind). Drift accrued under the previous rate is folded into the fixed
// offset so the displacement is continuous across the change.
func (s *Skewed) SetDrift(rate float64) {
	bt := s.base.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offset = s.displacement(bt)
	s.anchor = bt
	s.drift = rate
}

// Offset reports the view's current total displacement from the base clock.
func (s *Skewed) Offset() time.Duration {
	bt := s.base.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.displacement(bt)
}
