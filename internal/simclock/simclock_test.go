package simclock

import (
	"testing"
	"time"
)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	t0 := v.Now()
	v.Advance(5 * time.Second)
	if got := v.Now().Sub(t0); got != 5*time.Second {
		t.Fatalf("advanced %v, want 5s", got)
	}
}

func TestVirtualSleepAdvancesInsteadOfBlocking(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := time.Now()
	v.Sleep(10 * time.Hour)
	if real := time.Since(start); real > time.Second {
		t.Fatalf("virtual sleep took %v of real time", real)
	}
	if v.Now().Sub(NewVirtual(time.Time{}).Now()) != 10*time.Hour {
		t.Fatal("virtual clock did not advance")
	}
}

func TestVirtualSleepNonPositive(t *testing.T) {
	v := NewVirtual(time.Time{})
	t0 := v.Now()
	v.Sleep(0)
	v.Sleep(-time.Second)
	if !v.Now().Equal(t0) {
		t.Fatal("non-positive sleep must not advance")
	}
}

func TestVirtualAfter(t *testing.T) {
	v := NewVirtual(time.Time{})
	ch := v.After(3 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before deadline")
	default:
	}
	v.Advance(2 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired too early")
	default:
	}
	if v.Pending() != 1 {
		t.Fatalf("pending = %d", v.Pending())
	}
	v.Advance(2 * time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("did not fire after deadline")
	}
	if v.Pending() != 0 {
		t.Fatalf("pending after fire = %d", v.Pending())
	}
}

func TestVirtualAfterImmediate(t *testing.T) {
	v := NewVirtual(time.Time{})
	select {
	case <-v.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) must fire immediately")
	}
}

func TestRealClock(t *testing.T) {
	t0 := Real.Now()
	Real.Sleep(time.Millisecond)
	if !Real.Now().After(t0) {
		t.Fatal("real clock did not move")
	}
	select {
	case <-Real.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestStopwatch(t *testing.T) {
	v := NewVirtual(time.Time{})
	sw := NewStopwatch(v)
	v.Advance(7 * time.Second)
	if sw.Elapsed() != 7*time.Second {
		t.Fatalf("elapsed = %v", sw.Elapsed())
	}
	sw.Reset()
	if sw.Elapsed() != 0 {
		t.Fatalf("after reset = %v", sw.Elapsed())
	}
}

func TestVirtualConcurrentWaiters(t *testing.T) {
	v := NewVirtual(time.Time{})
	const n = 32
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			<-v.After(time.Duration(i+1) * time.Millisecond)
			done <- struct{}{}
		}(i)
	}
	// Let the goroutines register.
	for v.Pending() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Duration(n+1) * time.Millisecond)
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d never fired", i)
		}
	}
}
