package activity

import (
	"strings"
	"testing"
	"time"

	"glare/internal/xmlutil"
)

func jpovray() *Type {
	return &Type{
		Name:   "JPOVray",
		Base:   []string{"POVray", "Imaging"},
		Domain: "Imaging",
		Functions: []Function{
			{Name: "render", Inputs: []string{"scene.pov"}, Outputs: []string{"image.png"}},
		},
		Dependencies: []string{"Java", "Ant"},
		Installation: &Installation{
			Mode:          ModeOnDemand,
			Constraints:   Constraints{Platform: "Intel", OS: "Linux", Arch: "32bit"},
			DeployFileURL: "http://dps.uibk.ac.at/deployfiles/povray.build",
			DeployFileMD5: "d41d8cd9",
		},
		MaxDeployments: 5,
		Artifact:       "JPOVray",
	}
}

func TestTypeRoundTrip(t *testing.T) {
	orig := jpovray()
	n := orig.ToXML()
	// Serialize through real XML to catch encoding issues.
	parsed, err := xmlutil.ParseString(n.String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := TypeFromXML(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "JPOVray" || len(got.Base) != 2 || got.Base[0] != "POVray" {
		t.Fatalf("bases = %v", got.Base)
	}
	if len(got.Dependencies) != 2 || got.Dependencies[1] != "Ant" {
		t.Fatalf("deps = %v", got.Dependencies)
	}
	if got.Installation == nil || got.Installation.Mode != ModeOnDemand {
		t.Fatal("installation lost")
	}
	if got.Installation.Constraints.OS != "Linux" {
		t.Fatalf("constraints = %+v", got.Installation.Constraints)
	}
	if got.Installation.DeployFileURL == "" || got.Installation.DeployFileMD5 != "d41d8cd9" {
		t.Fatal("deploy file ref lost")
	}
	if got.MaxDeployments != 5 {
		t.Fatalf("max deployments = %d", got.MaxDeployments)
	}
	if len(got.Functions) != 1 || got.Functions[0].Inputs[0] != "scene.pov" {
		t.Fatalf("functions = %+v", got.Functions)
	}
	if got.Artifact != "JPOVray" {
		t.Fatal("artifact lost")
	}
}

func TestAbstractTypeRoundTrip(t *testing.T) {
	a := &Type{Name: "Imaging", Abstract: true, Domain: "Imaging"}
	got, err := TypeFromXML(a.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Abstract {
		t.Fatal("abstract flag lost")
	}
}

func TestTypeValidate(t *testing.T) {
	cases := []struct {
		label string
		mut   func(*Type)
	}{
		{"empty name", func(t *Type) { t.Name = "" }},
		{"self base", func(t *Type) { t.Base = []string{"JPOVray"} }},
		{"min>max", func(t *Type) { t.MinDeployments = 9; t.MaxDeployments = 2 }},
		{"negative min", func(t *Type) { t.MinDeployments = -1 }},
		{"bad mode", func(t *Type) { t.Installation.Mode = "weird" }},
		{"abstract with install", func(t *Type) { t.Abstract = true }},
	}
	for _, c := range cases {
		ty := jpovray()
		c.mut(ty)
		if err := ty.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.label)
		}
	}
	ok := jpovray()
	ok.Installation.Mode = ""
	if err := ok.Validate(); err != nil || ok.Installation.Mode != ModeOnDemand {
		t.Fatal("empty mode must default to on-demand")
	}
}

func TestTypeFromXMLRejectsWrongElement(t *testing.T) {
	if _, err := TypeFromXML(xmlutil.NewNode("Nope")); err == nil {
		t.Fatal("wrong element must fail")
	}
	if _, err := TypeFromXML(nil); err == nil {
		t.Fatal("nil must fail")
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	d := &Deployment{
		Name: "jpovray", Type: "JPOVray", Kind: KindExecutable,
		Site: "altix1.uibk",
		Path: "/opt/glare/deployments/jpovray/bin/jpovray",
		Home: "/opt/glare/deployments/jpovray",
		Env:  map[string]string{"JAVA_HOME": "/opt/java"},
		Metrics: Metrics{
			LastExecutionTime: 1500 * time.Millisecond,
			LastReturnCode:    0,
			Invocations:       3,
			LastInvocation:    time.Date(2005, 11, 1, 2, 3, 4, 0, time.UTC),
		},
	}
	parsed, err := xmlutil.ParseString(d.ToXML().String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeploymentFromXML(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "jpovray" || got.Kind != KindExecutable || got.Path != d.Path {
		t.Fatalf("got %+v", got)
	}
	if got.Env["JAVA_HOME"] != "/opt/java" {
		t.Fatal("env lost")
	}
	if got.Metrics.LastExecutionTime != 1500*time.Millisecond || got.Metrics.Invocations != 3 {
		t.Fatalf("metrics = %+v", got.Metrics)
	}
	if !got.Metrics.LastInvocation.Equal(d.Metrics.LastInvocation) {
		t.Fatal("last invocation lost")
	}
}

func TestServiceDeployment(t *testing.T) {
	d := &Deployment{
		Name: "WS-JPOVray", Type: "JPOVray", Kind: KindService,
		Site: "altix1.uibk", Address: "https://altix1:8084/wsrf/services/WS-JPOVray",
	}
	got, err := DeploymentFromXML(d.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if got.Address != d.Address {
		t.Fatal("address lost")
	}
}

func TestDeploymentValidate(t *testing.T) {
	bad := []*Deployment{
		{Name: "", Type: "T", Kind: KindExecutable, Path: "/x"},
		{Name: "d", Type: "", Kind: KindExecutable, Path: "/x"},
		{Name: "d", Type: "T", Kind: KindExecutable},
		{Name: "d", Type: "T", Kind: "strange"},
		{Name: "d", Type: "T", Kind: KindService},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func imagingHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy([]*Type{
		{Name: "Imaging", Abstract: true,
			Functions: []Function{{Name: "export"}}},
		{Name: "POVray", Abstract: true, Base: []string{"Imaging"},
			Functions: []Function{{Name: "render"}}},
		jpovray(),
		{Name: "Wien2k", Domain: "Physics"},
		{Name: "ImageConversion", Abstract: true, Base: []string{"Imaging"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyResolution(t *testing.T) {
	h := imagingHierarchy(t)
	// Abstract lookup resolves to concrete subtype (Fig. 2's flow).
	concrete := h.ConcreteOf("Imaging")
	if len(concrete) != 1 || concrete[0].Name != "JPOVray" {
		t.Fatalf("ConcreteOf(Imaging) = %v", names(concrete))
	}
	concrete = h.ConcreteOf("POVray")
	if len(concrete) != 1 || concrete[0].Name != "JPOVray" {
		t.Fatalf("ConcreteOf(POVray) = %v", names(concrete))
	}
	// A concrete type resolves to itself.
	concrete = h.ConcreteOf("JPOVray")
	if len(concrete) != 1 || concrete[0].Name != "JPOVray" {
		t.Fatalf("ConcreteOf(JPOVray) = %v", names(concrete))
	}
	// Unrelated abstract type resolves to nothing.
	if got := h.ConcreteOf("ImageConversion"); len(got) != 0 {
		t.Fatalf("ConcreteOf(ImageConversion) = %v", names(got))
	}
	if got := h.ConcreteOf("Wien2k"); len(got) != 1 {
		t.Fatalf("standalone concrete = %v", names(got))
	}
}

func names(ts []*Type) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.Name)
	}
	return out
}

func TestAncestorsAndIsA(t *testing.T) {
	h := imagingHierarchy(t)
	anc := h.Ancestors("JPOVray")
	if strings.Join(anc, ",") != "Imaging,POVray" {
		t.Fatalf("ancestors = %v", anc)
	}
	if !h.IsA("JPOVray", "Imaging") || !h.IsA("JPOVray", "JPOVray") {
		t.Fatal("IsA failed")
	}
	if h.IsA("Wien2k", "Imaging") {
		t.Fatal("Wien2k is not Imaging")
	}
}

func TestInheritedFunctions(t *testing.T) {
	h := imagingHierarchy(t)
	fns := h.InheritedFunctions("JPOVray")
	have := map[string]bool{}
	for _, f := range fns {
		have[f.Name] = true
	}
	if !have["render"] || !have["export"] {
		t.Fatalf("inherited = %v", fns)
	}
}

func TestHierarchyRejectsCycle(t *testing.T) {
	_, err := NewHierarchy([]*Type{
		{Name: "A", Base: []string{"B"}, Abstract: true},
		{Name: "B", Base: []string{"A"}, Abstract: true},
	})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestHierarchyRejectsDuplicates(t *testing.T) {
	_, err := NewHierarchy([]*Type{{Name: "A"}, {Name: "A"}})
	if err == nil {
		t.Fatal("duplicate types must be rejected")
	}
}

func TestHierarchyDanglingBaseAllowed(t *testing.T) {
	h, err := NewHierarchy([]*Type{{Name: "X", Base: []string{"RemoteBase"}}})
	if err != nil {
		t.Fatalf("dangling base must be allowed: %v", err)
	}
	// Unknown bases are reported by name so callers can resolve them from
	// remote registries (iterative lookup).
	anc := h.Ancestors("X")
	if len(anc) != 1 || anc[0] != "RemoteBase" {
		t.Fatalf("ancestors = %v, want [RemoteBase]", anc)
	}
}
