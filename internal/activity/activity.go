// Package activity defines GLARE's data model: activity types (functional
// descriptions organized in an abstract/concrete hierarchy) and activity
// deployments (installed executables or Grid/web services).
//
// "An activity type (AT) is a functional or behavioural description, which
// can be used to lookup or deploy an activity. An activity deployment (AD)
// refers to an executable or Grid/web service and describes how they can
// be accessed and executed." (paper §2.2)
package activity

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"glare/internal/xmlutil"
)

// InstallMode selects how a type may be installed on new sites.
type InstallMode string

const (
	// ModeOnDemand lets GLARE install automatically when a client needs a
	// deployment and none exists.
	ModeOnDemand InstallMode = "on-demand"
	// ModeManual makes GLARE notify the site administrator instead.
	ModeManual InstallMode = "manual"
)

// Constraints restrict where a type may be installed (paper Fig. 9).
type Constraints struct {
	Platform string
	OS       string
	Arch     string
}

// Installation describes how a concrete type is installed on demand.
type Installation struct {
	Mode          InstallMode
	Constraints   Constraints
	DeployFileURL string
	DeployFileMD5 string
}

// Function is one behavioural capability of a type (e.g. render, export)
// with named inputs and outputs.
type Function struct {
	Name    string
	Inputs  []string
	Outputs []string
}

// Type is one activity type.
type Type struct {
	// Name is the unique type name, e.g. "JPOVray".
	Name string
	// Base lists the types this one extends, e.g. {"POVray", "Imaging"}.
	// A concrete type inherits the functional description of its bases.
	Base []string
	// Abstract types have no directly associated deployments.
	Abstract bool
	// Domain is a coarse classification, e.g. "Imaging".
	Domain string
	// Functions describe behaviour with possible inputs/outputs.
	Functions []Function
	// Dependencies are other activity types that must be deployed on a
	// site before this one (e.g. JPOVray depends on Java and Ant).
	Dependencies []string
	// Installation describes on-demand deployment; nil means the type
	// cannot be auto-installed.
	Installation *Installation
	// MinDeployments/MaxDeployments bound how many deployments of this
	// type may exist VO-wide; 0 means unbounded (paper §3.3: "a provider
	// can also specify minimum and maximum limits of deployments").
	MinDeployments int
	MaxDeployments int
	// Artifact names the software artifact in the simulated universe that
	// implements this type (substitution for real tarballs).
	Artifact string
}

// Validate checks structural invariants.
func (t *Type) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("activity: type with empty name")
	}
	if t.Abstract && t.Installation != nil {
		return fmt.Errorf("activity: abstract type %q cannot carry an installation", t.Name)
	}
	if t.MinDeployments < 0 || t.MaxDeployments < 0 {
		return fmt.Errorf("activity: type %q: negative deployment bounds", t.Name)
	}
	if t.MaxDeployments > 0 && t.MinDeployments > t.MaxDeployments {
		return fmt.Errorf("activity: type %q: min deployments %d > max %d",
			t.Name, t.MinDeployments, t.MaxDeployments)
	}
	for _, b := range t.Base {
		if b == t.Name {
			return fmt.Errorf("activity: type %q extends itself", t.Name)
		}
	}
	if t.Installation != nil {
		switch t.Installation.Mode {
		case ModeOnDemand, ModeManual:
		case "":
			t.Installation.Mode = ModeOnDemand
		default:
			return fmt.Errorf("activity: type %q: unknown install mode %q", t.Name, t.Installation.Mode)
		}
	}
	return nil
}

// ToXML renders the type as a registry property document (Fig. 9's
// ActivityTypeEntry, extended with the full model).
func (t *Type) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("ActivityTypeEntry")
	n.SetAttr("name", t.Name)
	if t.Domain != "" {
		n.SetAttr("type", t.Domain)
	}
	if t.Abstract {
		n.SetAttr("abstract", "true")
	}
	for _, b := range t.Base {
		n.Elem("BaseType", b)
	}
	for _, f := range t.Functions {
		fn := n.Elem("Function")
		fn.SetAttr("name", f.Name)
		for _, in := range f.Inputs {
			fn.Elem("Input", in)
		}
		for _, out := range f.Outputs {
			fn.Elem("Output", out)
		}
	}
	if len(t.Dependencies) > 0 {
		n.Elem("Dependency", strings.Join(t.Dependencies, ","))
	}
	if t.MinDeployments > 0 || t.MaxDeployments > 0 {
		lim := n.Elem("DeploymentLimits")
		lim.SetAttr("min", strconv.Itoa(t.MinDeployments))
		lim.SetAttr("max", strconv.Itoa(t.MaxDeployments))
	}
	if t.Artifact != "" {
		n.Elem("Artifact", t.Artifact)
	}
	if inst := t.Installation; inst != nil {
		in := n.Elem("Installation")
		in.SetAttr("mode", string(inst.Mode))
		c := in.Elem("Constraints")
		if inst.Constraints.Platform != "" {
			c.Elem("platform", inst.Constraints.Platform)
		}
		if inst.Constraints.OS != "" {
			c.Elem("os", inst.Constraints.OS)
		}
		if inst.Constraints.Arch != "" {
			c.Elem("arch", inst.Constraints.Arch)
		}
		if inst.DeployFileURL != "" {
			df := in.Elem("DeployFile")
			df.SetAttr("url", inst.DeployFileURL)
			if inst.DeployFileMD5 != "" {
				df.SetAttr("md5sum", inst.DeployFileMD5)
			}
		}
	}
	return n
}

// TypeFromXML parses a type from its property document.
func TypeFromXML(n *xmlutil.Node) (*Type, error) {
	if n == nil || n.Name != "ActivityTypeEntry" {
		return nil, fmt.Errorf("activity: expected <ActivityTypeEntry>")
	}
	t := &Type{
		Name:     n.AttrOr("name", ""),
		Domain:   n.AttrOr("type", ""),
		Abstract: n.AttrOr("abstract", "") == "true",
		Artifact: n.ChildText("Artifact"),
	}
	for _, b := range n.All("BaseType") {
		t.Base = append(t.Base, strings.TrimSpace(b.Text))
	}
	for _, fn := range n.All("Function") {
		f := Function{Name: fn.AttrOr("name", "")}
		for _, in := range fn.All("Input") {
			f.Inputs = append(f.Inputs, strings.TrimSpace(in.Text))
		}
		for _, out := range fn.All("Output") {
			f.Outputs = append(f.Outputs, strings.TrimSpace(out.Text))
		}
		t.Functions = append(t.Functions, f)
	}
	if dep := n.ChildText("Dependency"); dep != "" {
		for _, d := range strings.Split(dep, ",") {
			if d = strings.TrimSpace(d); d != "" {
				t.Dependencies = append(t.Dependencies, d)
			}
		}
	}
	if lim := n.First("DeploymentLimits"); lim != nil {
		t.MinDeployments, _ = strconv.Atoi(lim.AttrOr("min", "0"))
		t.MaxDeployments, _ = strconv.Atoi(lim.AttrOr("max", "0"))
	}
	if in := n.First("Installation"); in != nil {
		inst := &Installation{Mode: InstallMode(in.AttrOr("mode", string(ModeOnDemand)))}
		if c := in.First("Constraints"); c != nil {
			inst.Constraints = Constraints{
				Platform: c.ChildText("platform"),
				OS:       c.ChildText("os"),
				Arch:     c.ChildText("arch"),
			}
		}
		if df := in.First("DeployFile"); df != nil {
			inst.DeployFileURL = df.AttrOr("url", "")
			inst.DeployFileMD5 = df.AttrOr("md5sum", "")
		}
		t.Installation = inst
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DeploymentKind distinguishes executables from hosted services.
type DeploymentKind string

const (
	KindExecutable DeploymentKind = "executable"
	KindService    DeploymentKind = "service"
)

// Metrics are the latest per-deployment statistics the Deployment Status
// Monitor gathers from WS-GRAM ("attributes like last execution time,
// return code, last invocation time etc.").
type Metrics struct {
	LastExecutionTime time.Duration
	LastReturnCode    int
	LastInvocation    time.Time
	Invocations       int
}

// Deployment is one installed incarnation of a concrete type.
type Deployment struct {
	// Name is the deployment key, e.g. "jpovray" or "WS-JPOVray".
	Name string
	// Type is the concrete activity type this deploys, e.g. "JPOVray".
	Type string
	// Kind is executable or service.
	Kind DeploymentKind
	// Site is the hosting Grid site name.
	Site string
	// Path/Home locate an executable deployment.
	Path string
	Home string
	// Address is the endpoint URL of a service deployment.
	Address string
	// Env carries variables needed to instantiate the deployment.
	Env map[string]string
	// Metrics holds monitoring data.
	Metrics Metrics
	// Degraded marks a result served from a stale cache entry because the
	// source site was unreachable: it may describe a deployment that has
	// since changed or vanished. Schedulers should prefer non-degraded
	// alternatives.
	Degraded bool
}

// Validate checks structural invariants.
func (d *Deployment) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("activity: deployment with empty name")
	}
	if d.Type == "" {
		return fmt.Errorf("activity: deployment %q has no type", d.Name)
	}
	switch d.Kind {
	case KindExecutable:
		if d.Path == "" {
			return fmt.Errorf("activity: executable deployment %q has no path", d.Name)
		}
	case KindService:
		if d.Address == "" && d.Site == "" {
			return fmt.Errorf("activity: service deployment %q has no address", d.Name)
		}
	default:
		return fmt.Errorf("activity: deployment %q: unknown kind %q", d.Name, d.Kind)
	}
	return nil
}

// ToXML renders the deployment document (paper Fig. 7).
func (d *Deployment) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("ActivityDeployment")
	n.SetAttr("name", d.Name)
	n.SetAttr("type", d.Type)
	n.SetAttr("category", string(d.Kind))
	if d.Degraded {
		n.SetAttr("degraded", "true")
	}
	if d.Site != "" {
		n.Elem("Site", d.Site)
	}
	switch d.Kind {
	case KindExecutable:
		n.Elem("Path", d.Path)
		if d.Home != "" {
			n.Elem("Home", d.Home)
		}
	case KindService:
		n.Elem("Address", d.Address)
	}
	if len(d.Env) > 0 {
		envN := n.Elem("Environment")
		keys := make([]string, 0, len(d.Env))
		for k := range d.Env {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := envN.Elem("Env")
			e.SetAttr("name", k)
			e.SetAttr("value", d.Env[k])
		}
	}
	m := n.Elem("Metrics")
	m.Elem("LastExecutionTimeMS", strconv.FormatInt(d.Metrics.LastExecutionTime.Milliseconds(), 10))
	m.Elem("LastReturnCode", strconv.Itoa(d.Metrics.LastReturnCode))
	m.Elem("Invocations", strconv.Itoa(d.Metrics.Invocations))
	if !d.Metrics.LastInvocation.IsZero() {
		m.Elem("LastInvocation", d.Metrics.LastInvocation.Format(time.RFC3339Nano))
	}
	return n
}

// DeploymentFromXML parses a deployment document.
func DeploymentFromXML(n *xmlutil.Node) (*Deployment, error) {
	if n == nil || n.Name != "ActivityDeployment" {
		return nil, fmt.Errorf("activity: expected <ActivityDeployment>")
	}
	d := &Deployment{
		Name:     n.AttrOr("name", ""),
		Type:     n.AttrOr("type", ""),
		Kind:     DeploymentKind(n.AttrOr("category", string(KindExecutable))),
		Site:     n.ChildText("Site"),
		Path:     n.ChildText("Path"),
		Home:     n.ChildText("Home"),
		Address:  n.ChildText("Address"),
		Degraded: n.AttrOr("degraded", "") == "true",
	}
	if envN := n.First("Environment"); envN != nil {
		d.Env = map[string]string{}
		for _, e := range envN.All("Env") {
			d.Env[e.AttrOr("name", "")] = e.AttrOr("value", "")
		}
	}
	if m := n.First("Metrics"); m != nil {
		if ms, err := strconv.ParseInt(m.ChildText("LastExecutionTimeMS"), 10, 64); err == nil {
			d.Metrics.LastExecutionTime = time.Duration(ms) * time.Millisecond
		}
		d.Metrics.LastReturnCode, _ = strconv.Atoi(m.ChildText("LastReturnCode"))
		d.Metrics.Invocations, _ = strconv.Atoi(m.ChildText("Invocations"))
		if ts := m.ChildText("LastInvocation"); ts != "" {
			if t, err := time.Parse(time.RFC3339Nano, ts); err == nil {
				d.Metrics.LastInvocation = t
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
