package activity

import (
	"fmt"
	"sort"
)

// Hierarchy is an in-memory view over a set of types supporting the
// abstract→concrete resolution of paper Fig. 2: "An abstract type is one
// which has no directly associated deployment. ... Abstract activity types
// are used to discover concrete activity types."
type Hierarchy struct {
	types map[string]*Type
}

// NewHierarchy builds a hierarchy over the given types. Duplicate names
// are rejected; dangling base references are allowed (bases may live on
// other sites and resolve later).
func NewHierarchy(types []*Type) (*Hierarchy, error) {
	h := &Hierarchy{types: make(map[string]*Type, len(types))}
	for _, t := range types {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := h.types[t.Name]; dup {
			return nil, fmt.Errorf("activity: duplicate type %q", t.Name)
		}
		h.types[t.Name] = t
	}
	if err := h.checkAcyclic(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Hierarchy) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(h.types))
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("activity: type hierarchy cycle through %q", name)
		case black:
			return nil
		}
		color[name] = grey
		if t := h.types[name]; t != nil {
			for _, b := range t.Base {
				if _, known := h.types[b]; known {
					if err := visit(b); err != nil {
						return err
					}
				}
			}
		}
		color[name] = black
		return nil
	}
	names := h.Names()
	for _, n := range names {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns a type by name.
func (h *Hierarchy) Lookup(name string) (*Type, bool) {
	t, ok := h.types[name]
	return t, ok
}

// Names lists all type names in sorted order.
func (h *Hierarchy) Names() []string {
	out := make([]string, 0, len(h.types))
	for n := range h.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ancestors returns the transitive base types of name (excluding name),
// sorted. Unknown bases are included by name so callers can resolve them
// remotely.
func (h *Hierarchy) Ancestors(name string) []string {
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		t, ok := h.types[n]
		if !ok {
			return
		}
		for _, b := range t.Base {
			if !seen[b] {
				seen[b] = true
				walk(b)
			}
		}
	}
	walk(name)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsA reports whether typ is name or (transitively) extends it.
func (h *Hierarchy) IsA(typ, name string) bool {
	if typ == name {
		return true
	}
	for _, a := range h.Ancestors(typ) {
		if a == name {
			return true
		}
	}
	return false
}

// ConcreteOf resolves an activity type name — abstract or concrete — to
// the sorted list of concrete types satisfying it. Asking for a concrete
// type returns that type itself (plus any concrete subtypes).
func (h *Hierarchy) ConcreteOf(name string) []*Type {
	var out []*Type
	for _, tn := range h.Names() {
		t := h.types[tn]
		if t.Abstract {
			continue
		}
		if h.IsA(tn, name) {
			out = append(out, t)
		}
	}
	return out
}

// InheritedFunctions returns the functions of a type merged with those of
// all its (known) ancestors; subtypes "inherit functional description of
// the base types".
func (h *Hierarchy) InheritedFunctions(name string) []Function {
	seen := map[string]bool{}
	var out []Function
	add := func(t *Type) {
		for _, f := range t.Functions {
			if !seen[f.Name] {
				seen[f.Name] = true
				out = append(out, f)
			}
		}
	}
	if t, ok := h.types[name]; ok {
		add(t)
	}
	for _, a := range h.Ancestors(name) {
		if t, ok := h.types[a]; ok {
			add(t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
