package superpeer

import (
	"strconv"
	"testing"
	"time"

	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// electNotify sends one ElectNotify round to an agent over the wire.
func electNotify(t *testing.T, cli *transport.Client, target SiteInfo, round, strength int) (*xmlutil.Node, error) {
	t.Helper()
	n := xmlutil.NewNode("Election")
	n.SetAttr("round", strconv.Itoa(round))
	n.SetAttr("communitySize", strconv.Itoa(strength))
	n.SetAttr("coordinator", "test")
	return cli.Call(target.PeerURL(), "ElectNotify", n)
}

// The paper: "A notification message includes [the] number of registered
// Grid sites in the community ... A message from a smaller community is
// acknowledged in case of notifications from multiple indices."
func TestMultipleCoordinatorsSmallerCommunityWins(t *testing.T) {
	h := newHarness(t, 1)
	cli := transport.NewClient(nil)
	target := h.infos[0]

	// Two coordinators announce in round 1: community sizes 10 and 4.
	if _, err := electNotify(t, cli, target, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := electNotify(t, cli, target, 1, 4); err != nil {
		t.Fatal(err)
	}
	// Round 2 from the larger community is refused...
	if _, err := electNotify(t, cli, target, 2, 10); err == nil {
		t.Fatal("larger community acknowledged")
	}
	// ...while the smaller one is acknowledged with the site's rank.
	resp, err := electNotify(t, cli, target, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "Ack" || resp.AttrOr("rank", "") == "" {
		t.Fatalf("ack = %s", resp)
	}
}

// Losing a re-elected super-peer must trigger a second, equally successful
// re-election among the remaining members.
func TestRepeatedFailover(t *testing.T) {
	h := newHarness(t, 5)
	if _, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 5}); err != nil {
		t.Fatal(err)
	}
	// Ranks rise with index: site04 is the first super-peer.
	kill := func(name string) {
		for i, info := range h.infos {
			if info.Name == name {
				h.servers[i].Close()
			}
		}
	}
	survivorIdx := 0
	waitSP := func(want string) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for h.agents[survivorIdx].View().SuperPeer.Name != want {
			select {
			case <-deadline:
				t.Fatalf("super-peer never became %s (is %s)",
					want, h.agents[survivorIdx].View().SuperPeer.Name)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	// Each detection needs DefaultSuspicionThreshold consecutive missed
	// probes before it initiates recovery.
	detect := func() {
		t.Helper()
		for i := 0; i < DefaultSuspicionThreshold; i++ {
			if _, err := h.agents[survivorIdx].DetectAndRecover(); err != nil {
				t.Fatal(err)
			}
		}
	}

	kill("site04")
	detect()
	waitSP("site03")

	kill("site03")
	detect()
	waitSP("site02")

	// The twice-rebuilt group no longer contains either corpse.
	view := h.agents[survivorIdx].View()
	for _, s := range view.Group {
		if s.Name == "site04" || s.Name == "site03" {
			t.Fatalf("dead site %s still in group", s.Name)
		}
	}
	if len(view.Group) != 3 {
		t.Fatalf("group = %d members", len(view.Group))
	}
}

// A takeover with no majority (every other member is unreachable) must be
// refused unless the candidate alone IS the majority.
func TestTakeoverMajorityRule(t *testing.T) {
	h := newHarness(t, 4)
	if _, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 4}); err != nil {
		t.Fatal(err)
	}
	// Kill the super-peer (site03) AND one member (site01): survivors are
	// site02 (candidate) and site00. Candidate + 1 ack = 2 of 3 survivors
	// in the old view — still a majority, takeover succeeds.
	h.servers[3].Close()
	h.servers[1].Close()
	if err := h.agents[2].RunTakeover("site03"); err != nil {
		t.Fatalf("majority takeover failed: %v", err)
	}
	if h.agents[2].Role() != RoleSuperPeer {
		t.Fatal("candidate did not take over")
	}
}
