// Package superpeer implements GLARE's self-management overlay (paper
// §3.3): Grid sites form peer groups, each group elects one super-peer by
// rank, all super-peers form a super-group, and members detect super-peer
// failure and re-elect by majority acknowledgement.
package superpeer

import (
	"fmt"
	"sort"
	"strconv"

	"glare/internal/xmlutil"
)

// SiteInfo identifies one Grid site in the overlay.
type SiteInfo struct {
	// Name is the unique site name.
	Name string
	// Rank is the site's unique hashcode computed from static attributes
	// (site.Attributes.Rank); higher ranks win elections.
	Rank uint64
	// BaseURL is the site's transport base (http(s)://host:port); the
	// standard services are mounted under it.
	BaseURL string
}

// IsZero reports whether the info is unset.
func (s SiteInfo) IsZero() bool { return s.Name == "" }

// PeerURL returns the site's PeerService address.
func (s SiteInfo) PeerURL() string { return s.BaseURL + "/wsrf/services/" + ServiceName }

// ServiceURL returns the address of an arbitrary service on the site.
func (s SiteInfo) ServiceURL(service string) string {
	return s.BaseURL + "/wsrf/services/" + service
}

// ToXML renders the site info.
func (s SiteInfo) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("Site")
	n.SetAttr("name", s.Name)
	n.SetAttr("rank", strconv.FormatUint(s.Rank, 10))
	n.SetAttr("baseURL", s.BaseURL)
	return n
}

// SiteInfoFromXML parses a site info node.
func SiteInfoFromXML(n *xmlutil.Node) (SiteInfo, error) {
	if n == nil || n.Name != "Site" {
		return SiteInfo{}, fmt.Errorf("superpeer: expected <Site>")
	}
	rank, err := strconv.ParseUint(n.AttrOr("rank", "0"), 10, 64)
	if err != nil {
		return SiteInfo{}, fmt.Errorf("superpeer: bad rank: %w", err)
	}
	s := SiteInfo{Name: n.AttrOr("name", ""), Rank: rank, BaseURL: n.AttrOr("baseURL", "")}
	if s.Name == "" {
		return SiteInfo{}, fmt.Errorf("superpeer: site without name")
	}
	return s, nil
}

// View is a site's knowledge of the overlay.
type View struct {
	// Epoch is the view's fencing token: every election, takeover or
	// split-brain merge installs views with a strictly higher epoch, and
	// agents reject installs that would move their view backwards. A
	// super-peer that was partitioned away keeps broadcasting its old
	// epoch and is fenced out instead of overwriting the fresh side.
	Epoch uint64
	// Group lists the members of this site's peer group, including the
	// super-peer and the site itself.
	Group []SiteInfo
	// SuperPeer is this group's super-peer.
	SuperPeer SiteInfo
	// SuperPeers lists every super-peer in the VO (the super-group).
	SuperPeers []SiteInfo
	// ReplicaK is the registry replication factor the election coordinator
	// stamped into this view (total copies per entry, owner included). The
	// view carries it so every member derives the same per-site replica-set
	// assignment from the same epoch-fenced membership; zero means
	// replication is off.
	ReplicaK int
}

// Clone deep-copies the view.
func (v View) Clone() View {
	return View{
		Epoch:      v.Epoch,
		Group:      append([]SiteInfo(nil), v.Group...),
		SuperPeer:  v.SuperPeer,
		SuperPeers: append([]SiteInfo(nil), v.SuperPeers...),
		ReplicaK:   v.ReplicaK,
	}
}

// Compare totally orders views by (Epoch, SuperPeer.Rank, SuperPeer.Name):
// a higher epoch always wins; equal epochs (two candidates racing the same
// takeover) are arbitrated by super-peer rank, then name, so every agent
// picks the same winner without another message round. Returns -1, 0 or 1.
func (v View) Compare(o View) int {
	switch {
	case v.Epoch != o.Epoch:
		if v.Epoch < o.Epoch {
			return -1
		}
		return 1
	case v.SuperPeer.Rank != o.SuperPeer.Rank:
		if v.SuperPeer.Rank < o.SuperPeer.Rank {
			return -1
		}
		return 1
	case v.SuperPeer.Name != o.SuperPeer.Name:
		// Mirror RankSites: on equal rank the smaller name wins.
		if v.SuperPeer.Name > o.SuperPeer.Name {
			return -1
		}
		return 1
	}
	return 0
}

// OlderThan reports whether v loses against o under the epoch fence.
func (v View) OlderThan(o View) bool { return v.Compare(o) < 0 }

// MergeViews folds an abdicating super-peer's view into the winner's: the
// groups are unioned, the super-group keeps every known super-peer except
// the loser, and the merged epoch moves past both sides so it installs
// everywhere. winner.SuperPeer stays in charge.
func MergeViews(winner, loser View) View {
	group := append([]SiteInfo(nil), winner.Group...)
	seen := map[string]bool{}
	for _, s := range group {
		seen[s.Name] = true
	}
	for _, s := range loser.Group {
		if !seen[s.Name] {
			seen[s.Name] = true
			group = append(group, s)
		}
	}
	supers := []SiteInfo{}
	seenSP := map[string]bool{}
	for _, s := range append(append([]SiteInfo(nil), winner.SuperPeers...), loser.SuperPeers...) {
		if s.Name == loser.SuperPeer.Name || seenSP[s.Name] {
			continue
		}
		seenSP[s.Name] = true
		supers = append(supers, s)
	}
	if !seenSP[winner.SuperPeer.Name] {
		supers = append(supers, winner.SuperPeer)
	}
	epoch := winner.Epoch
	if loser.Epoch > epoch {
		epoch = loser.Epoch
	}
	k := winner.ReplicaK
	if loser.ReplicaK > k {
		k = loser.ReplicaK
	}
	return View{Epoch: epoch + 1, Group: RankSites(group), SuperPeer: winner.SuperPeer, SuperPeers: RankSites(supers), ReplicaK: k}
}

// Peers returns the group members excluding the named site.
func (v View) Peers(self string) []SiteInfo {
	var out []SiteInfo
	for _, s := range v.Group {
		if s.Name != self {
			out = append(out, s)
		}
	}
	return out
}

// Member reports whether name is in the group.
func (v View) Member(name string) bool {
	for _, s := range v.Group {
		if s.Name == name {
			return true
		}
	}
	return false
}

// ToXML renders a group-assignment message.
func (v View) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("Group")
	n.SetAttr("epoch", strconv.FormatUint(v.Epoch, 10))
	n.SetAttr("superPeer", v.SuperPeer.Name)
	n.SetAttr("superPeerURL", v.SuperPeer.BaseURL)
	if v.ReplicaK > 0 {
		n.SetAttr("replicaK", strconv.Itoa(v.ReplicaK))
	}
	for _, s := range v.Group {
		n.Add(s.ToXML())
	}
	sp := n.Elem("SuperPeers")
	for _, s := range v.SuperPeers {
		sp.Add(s.ToXML())
	}
	return n
}

// ViewFromXML parses a group-assignment message.
func ViewFromXML(n *xmlutil.Node) (View, error) {
	if n == nil || n.Name != "Group" {
		return View{}, fmt.Errorf("superpeer: expected <Group>")
	}
	var v View
	v.Epoch, _ = strconv.ParseUint(n.AttrOr("epoch", "0"), 10, 64)
	v.ReplicaK, _ = strconv.Atoi(n.AttrOr("replicaK", "0"))
	for _, c := range n.All("Site") {
		s, err := SiteInfoFromXML(c)
		if err != nil {
			return View{}, err
		}
		v.Group = append(v.Group, s)
	}
	if sp := n.First("SuperPeers"); sp != nil {
		for _, c := range sp.All("Site") {
			s, err := SiteInfoFromXML(c)
			if err != nil {
				return View{}, err
			}
			v.SuperPeers = append(v.SuperPeers, s)
		}
	}
	spName := n.AttrOr("superPeer", "")
	for _, s := range v.Group {
		if s.Name == spName {
			v.SuperPeer = s
		}
	}
	if v.SuperPeer.IsZero() {
		return View{}, fmt.Errorf("superpeer: group message without super-peer")
	}
	return v, nil
}

// RankSites orders sites by descending rank (ties by name for
// determinism). The highest-ranked site wins elections.
func RankSites(sites []SiteInfo) []SiteInfo {
	out := append([]SiteInfo(nil), sites...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}
