// Package superpeer implements GLARE's self-management overlay (paper
// §3.3): Grid sites form peer groups, each group elects one super-peer by
// rank, all super-peers form a super-group, and members detect super-peer
// failure and re-elect by majority acknowledgement.
package superpeer

import (
	"fmt"
	"sort"
	"strconv"

	"glare/internal/xmlutil"
)

// SiteInfo identifies one Grid site in the overlay.
type SiteInfo struct {
	// Name is the unique site name.
	Name string
	// Rank is the site's unique hashcode computed from static attributes
	// (site.Attributes.Rank); higher ranks win elections.
	Rank uint64
	// BaseURL is the site's transport base (http(s)://host:port); the
	// standard services are mounted under it.
	BaseURL string
}

// IsZero reports whether the info is unset.
func (s SiteInfo) IsZero() bool { return s.Name == "" }

// PeerURL returns the site's PeerService address.
func (s SiteInfo) PeerURL() string { return s.BaseURL + "/wsrf/services/" + ServiceName }

// ServiceURL returns the address of an arbitrary service on the site.
func (s SiteInfo) ServiceURL(service string) string {
	return s.BaseURL + "/wsrf/services/" + service
}

// ToXML renders the site info.
func (s SiteInfo) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("Site")
	n.SetAttr("name", s.Name)
	n.SetAttr("rank", strconv.FormatUint(s.Rank, 10))
	n.SetAttr("baseURL", s.BaseURL)
	return n
}

// SiteInfoFromXML parses a site info node.
func SiteInfoFromXML(n *xmlutil.Node) (SiteInfo, error) {
	if n == nil || n.Name != "Site" {
		return SiteInfo{}, fmt.Errorf("superpeer: expected <Site>")
	}
	rank, err := strconv.ParseUint(n.AttrOr("rank", "0"), 10, 64)
	if err != nil {
		return SiteInfo{}, fmt.Errorf("superpeer: bad rank: %w", err)
	}
	s := SiteInfo{Name: n.AttrOr("name", ""), Rank: rank, BaseURL: n.AttrOr("baseURL", "")}
	if s.Name == "" {
		return SiteInfo{}, fmt.Errorf("superpeer: site without name")
	}
	return s, nil
}

// View is a site's knowledge of the overlay.
type View struct {
	// Group lists the members of this site's peer group, including the
	// super-peer and the site itself.
	Group []SiteInfo
	// SuperPeer is this group's super-peer.
	SuperPeer SiteInfo
	// SuperPeers lists every super-peer in the VO (the super-group).
	SuperPeers []SiteInfo
}

// Clone deep-copies the view.
func (v View) Clone() View {
	return View{
		Group:      append([]SiteInfo(nil), v.Group...),
		SuperPeer:  v.SuperPeer,
		SuperPeers: append([]SiteInfo(nil), v.SuperPeers...),
	}
}

// Peers returns the group members excluding the named site.
func (v View) Peers(self string) []SiteInfo {
	var out []SiteInfo
	for _, s := range v.Group {
		if s.Name != self {
			out = append(out, s)
		}
	}
	return out
}

// Member reports whether name is in the group.
func (v View) Member(name string) bool {
	for _, s := range v.Group {
		if s.Name == name {
			return true
		}
	}
	return false
}

// ToXML renders a group-assignment message.
func (v View) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("Group")
	n.SetAttr("superPeer", v.SuperPeer.Name)
	n.SetAttr("superPeerURL", v.SuperPeer.BaseURL)
	for _, s := range v.Group {
		n.Add(s.ToXML())
	}
	sp := n.Elem("SuperPeers")
	for _, s := range v.SuperPeers {
		sp.Add(s.ToXML())
	}
	return n
}

// ViewFromXML parses a group-assignment message.
func ViewFromXML(n *xmlutil.Node) (View, error) {
	if n == nil || n.Name != "Group" {
		return View{}, fmt.Errorf("superpeer: expected <Group>")
	}
	var v View
	for _, c := range n.All("Site") {
		s, err := SiteInfoFromXML(c)
		if err != nil {
			return View{}, err
		}
		v.Group = append(v.Group, s)
	}
	if sp := n.First("SuperPeers"); sp != nil {
		for _, c := range sp.All("Site") {
			s, err := SiteInfoFromXML(c)
			if err != nil {
				return View{}, err
			}
			v.SuperPeers = append(v.SuperPeers, s)
		}
	}
	spName := n.AttrOr("superPeer", "")
	for _, s := range v.Group {
		if s.Name == spName {
			v.SuperPeer = s
		}
	}
	if v.SuperPeer.IsZero() {
		return View{}, fmt.Errorf("superpeer: group message without super-peer")
	}
	return v, nil
}

// RankSites orders sites by descending rank (ties by name for
// determinism). The highest-ranked site wins elections.
func RankSites(sites []SiteInfo) []SiteInfo {
	out := append([]SiteInfo(nil), sites...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}
