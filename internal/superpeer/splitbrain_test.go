package superpeer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"glare/internal/faultinject"
	"glare/internal/telemetry"
	"glare/internal/transport"
)

// chaosHarness is like harness but gives every agent its own client and
// fault injector, so per-site reachability (the substrate of partitions
// and takeover races) can differ between observers.
type chaosHarness struct {
	agents  []*Agent
	servers []*transport.Server
	infos   []SiteInfo
	injs    []*faultinject.Injector
}

func newChaosHarness(t *testing.T, n int) *chaosHarness {
	t.Helper()
	h := &chaosHarness{}
	for i := 0; i < n; i++ {
		srv := transport.NewServer()
		if err := srv.Start("127.0.0.1:0", nil); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		info := SiteInfo{
			Name:    fmt.Sprintf("site%02d", i),
			Rank:    uint64(1000 + i),
			BaseURL: srv.BaseURL(),
		}
		cli := transport.NewClient(nil)
		inj := faultinject.New(int64(100 + i))
		cli.WrapTransport(inj.Wrap)
		a := NewAgent(info, cli, nil)
		a.SetPingTimeout(100 * time.Millisecond)
		a.Mount(srv)
		h.agents = append(h.agents, a)
		h.servers = append(h.servers, srv)
		h.infos = append(h.infos, info)
		h.injs = append(h.injs, inj)
	}
	return h
}

func TestViewCompareOrdering(t *testing.T) {
	lo := SiteInfo{Name: "a", Rank: 1}
	hi := SiteInfo{Name: "b", Rank: 2}
	base := View{Epoch: 2, SuperPeer: hi}
	// A higher epoch always wins, regardless of rank.
	if !(View{Epoch: 1, SuperPeer: hi}).OlderThan(View{Epoch: 2, SuperPeer: lo}) {
		t.Fatal("epoch must dominate rank")
	}
	// Equal epochs fall back to super-peer rank.
	if !(View{Epoch: 2, SuperPeer: lo}).OlderThan(base) {
		t.Fatal("equal epoch must arbitrate by rank")
	}
	// Equal ranks fall back to name: the smaller name wins (as RankSites).
	a := View{Epoch: 2, SuperPeer: SiteInfo{Name: "aa", Rank: 5}}
	b := View{Epoch: 2, SuperPeer: SiteInfo{Name: "zz", Rank: 5}}
	if !b.OlderThan(a) || a.OlderThan(b) {
		t.Fatal("equal rank must arbitrate by name, smaller wins")
	}
	if base.Compare(base) != 0 {
		t.Fatal("view must compare equal to itself")
	}
}

func TestMergeViews(t *testing.T) {
	s := func(i int) SiteInfo { return SiteInfo{Name: fmt.Sprintf("s%d", i), Rank: uint64(i)} }
	winner := View{Epoch: 3, Group: []SiteInfo{s(5), s(1)}, SuperPeer: s(5), SuperPeers: []SiteInfo{s(5)}}
	loser := View{Epoch: 7, Group: []SiteInfo{s(4), s(2), s(1)}, SuperPeer: s(4), SuperPeers: []SiteInfo{s(4), s(5)}}
	m := MergeViews(winner, loser)
	if m.Epoch != 8 {
		t.Fatalf("merged epoch = %d, want max+1 = 8", m.Epoch)
	}
	if m.SuperPeer.Name != "s5" {
		t.Fatalf("merged super-peer = %s", m.SuperPeer.Name)
	}
	if len(m.Group) != 4 || !m.Member("s1") || !m.Member("s2") || !m.Member("s4") || !m.Member("s5") {
		t.Fatalf("merged group = %v", m.Group)
	}
	// The abdicating super-peer is out of the super-group; the winner stays.
	for _, sp := range m.SuperPeers {
		if sp.Name == "s4" {
			t.Fatal("loser still in super-group")
		}
	}
	if len(m.SuperPeers) != 1 || m.SuperPeers[0].Name != "s5" {
		t.Fatalf("merged supers = %v", m.SuperPeers)
	}
}

// TestEpochFenceRejectsStaleInstalls drives the fence through the wire
// protocol: Takeover and GroupAssign messages carrying an older (epoch,
// rank) view must be refused without disturbing the installed one.
func TestEpochFenceRejectsStaleInstalls(t *testing.T) {
	h := newHarness(t, 3)
	tel := telemetry.New("fence")
	h.agents[0].SetTelemetry(tel)
	if _, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3}); err != nil {
		t.Fatal(err)
	}
	// One group of 3 at epoch 1, super-peer site02.
	cur := h.agents[0].View()
	if cur.Epoch != 1 || cur.SuperPeer.Name != "site02" {
		t.Fatalf("view after election = epoch %d sp %s", cur.Epoch, cur.SuperPeer.Name)
	}
	cli := transport.NewClient(nil)

	stale := cur.Clone()
	stale.Epoch = 0
	stale.SuperPeer = h.infos[1]
	if _, err := cli.Call(h.infos[0].PeerURL(), "Takeover", stale.ToXML()); err == nil {
		t.Fatal("stale-epoch Takeover accepted")
	}
	if _, err := cli.Call(h.infos[0].PeerURL(), "GroupAssign", stale.ToXML()); err == nil {
		t.Fatal("stale-epoch GroupAssign accepted")
	}
	if got := h.agents[0].View(); got.Epoch != 1 || got.SuperPeer.Name != "site02" {
		t.Fatalf("stale install disturbed the view: %+v", got)
	}
	if n := tel.Counter("glare_superpeer_stale_view_rejected_total").Value(); n != 2 {
		t.Fatalf("stale rejections = %d, want 2", n)
	}

	// A higher epoch installs.
	newer := cur.Clone()
	newer.Epoch = 5
	newer.SuperPeer = h.infos[1]
	if _, err := cli.Call(h.infos[0].PeerURL(), "Takeover", newer.ToXML()); err != nil {
		t.Fatal(err)
	}
	if got := h.agents[0].View(); got.Epoch != 5 || got.SuperPeer.Name != "site01" {
		t.Fatalf("newer view not installed: %+v", got)
	}

	// Equal epoch: a lower-ranked super-peer loses, a higher-ranked wins.
	lower := newer.Clone()
	lower.SuperPeer = h.infos[0]
	if _, err := cli.Call(h.infos[0].PeerURL(), "Takeover", lower.ToXML()); err == nil {
		t.Fatal("equal-epoch lower-rank Takeover accepted")
	}
	higher := newer.Clone()
	higher.SuperPeer = h.infos[2]
	if _, err := cli.Call(h.infos[0].PeerURL(), "Takeover", higher.ToXML()); err != nil {
		t.Fatal(err)
	}
	if got := h.agents[0].View(); got.SuperPeer.Name != "site02" {
		t.Fatalf("equal-epoch higher-rank view not installed: %+v", got)
	}
	if n := tel.Gauge("glare_superpeer_epoch").Value(); n != 5 {
		t.Fatalf("epoch gauge = %d, want 5", n)
	}
}

// TestSuspicionResetOnTransientFailure verifies one missed probe does not
// depose a healthy super-peer: suspicion clears on the next successful
// probe and has to build up again from zero once the failure is real.
func TestSuspicionResetOnTransientFailure(t *testing.T) {
	h := newChaosHarness(t, 3)
	if _, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3}); err != nil {
		t.Fatal(err)
	}
	spDest := destOfURL(h.infos[2].BaseURL)

	// A transient fault: one missed probe only raises suspicion.
	h.injs[0].Drop(spDest)
	if initiated, err := h.agents[0].DetectAndRecover(); err != nil || initiated {
		t.Fatalf("transient miss tripped recovery: %v %v", initiated, err)
	}
	// The super-peer answers again: suspicion must reset.
	h.injs[0].Restore(spDest)
	if initiated, err := h.agents[0].DetectAndRecover(); err != nil || initiated {
		t.Fatalf("healthy probe tripped recovery: %v %v", initiated, err)
	}
	// Now the super-peer really dies. If the earlier miss had leaked into
	// the counter, the very next probe would trip; it must take a full
	// threshold's worth of misses again.
	h.servers[2].Close()
	if initiated, err := h.agents[0].DetectAndRecover(); err != nil || initiated {
		t.Fatalf("suspicion did not reset: %v %v", initiated, err)
	}
	initiated, err := h.agents[0].DetectAndRecover()
	if err != nil || !initiated {
		t.Fatalf("recovery not initiated at threshold: %v %v", initiated, err)
	}
	waitFor(t, func() bool { return h.agents[1].Role() == RoleSuperPeer }, "takeover by site01")
}

// TestConcurrentTakeoverRace races two takeover candidates for the same
// dead super-peer: site03 can reach everyone, while site00-02 cannot reach
// site03 (so they verify and acknowledge site02 as well). Whatever the
// interleaving, the equal-epoch fence arbitration by super-peer rank must
// leave exactly one reign standing, with both surviving members following
// the same winner at epoch 2.
func TestConcurrentTakeoverRace(t *testing.T) {
	h := newChaosHarness(t, 5)
	if _, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 5}); err != nil {
		t.Fatal(err)
	}
	if h.agents[0].View().SuperPeer.Name != "site04" {
		t.Fatalf("super-peer = %s", h.agents[0].View().SuperPeer.Name)
	}
	h.servers[4].Close()
	// Sites 00-02 lose sight of site03, so from their vantage point site02
	// is the best surviving candidate, while site03 still sees everyone.
	dest3 := destOfURL(h.infos[3].BaseURL)
	for _, i := range []int{0, 1, 2} {
		h.injs[i].Drop(dest3)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = h.agents[3].RunTakeover("site04") }()
	go func() { defer wg.Done(); _ = h.agents[2].RunTakeover("site04") }()
	wg.Wait()

	waitFor(t, func() bool {
		supers := 0
		for _, a := range h.agents[:4] {
			if a.Role() == RoleSuperPeer {
				supers++
			}
		}
		if supers != 1 {
			return false
		}
		v0, v1 := h.agents[0].View(), h.agents[1].View()
		return v0.Epoch == 2 && v1.Epoch == 2 &&
			v0.SuperPeer.Name == v1.SuperPeer.Name &&
			h.agents[int(v0.SuperPeer.Rank-1000)].Role() == RoleSuperPeer
	}, "single takeover winner")
}

// splitReigns manufactures the aftermath of a healed partition: site03
// still reigns over everyone at epoch 1, while a takeover on the other
// side put site02 in charge at epoch 2.
func splitReigns(t *testing.T, h *harness) (older, newer View) {
	t.Helper()
	older = View{Epoch: 1, Group: h.infos, SuperPeer: h.infos[3], SuperPeers: []SiteInfo{h.infos[3]}}
	newer = View{Epoch: 2, Group: h.infos, SuperPeer: h.infos[2], SuperPeers: []SiteInfo{h.infos[2]}}
	for _, i := range []int{3, 0} {
		if !h.agents[i].setView(older.Clone()) {
			t.Fatal("seeding old reign failed")
		}
	}
	for _, i := range []int{2, 1} {
		if !h.agents[i].setView(newer.Clone()) {
			t.Fatal("seeding new reign failed")
		}
	}
	return older, newer
}

func assertHealed(t *testing.T, h *harness) {
	t.Helper()
	waitFor(t, func() bool {
		for _, a := range h.agents {
			v := a.View()
			if v.SuperPeer.Name != "site02" || v.Epoch != 3 {
				return false
			}
		}
		return h.agents[3].Role() == RoleMember && h.agents[2].Role() == RoleSuperPeer
	}, "split-brain heal convergence")
}

// TestCheckRivalsAbdicatesToNewerReign: the out-fenced super-peer discovers
// the rival itself and hands its group over via Rejoin.
func TestCheckRivalsAbdicatesToNewerReign(t *testing.T) {
	h := newHarness(t, 4)
	tel := telemetry.New("heal")
	h.agents[3].SetTelemetry(tel)
	splitReigns(t, h)

	healed, err := h.agents[3].CheckRivals()
	if err != nil {
		t.Fatal(err)
	}
	if !healed {
		t.Fatal("rival reign not detected")
	}
	assertHealed(t, h)
	if n := tel.Counter("glare_superpeer_rivals_detected_total").Value(); n == 0 {
		t.Fatal("rival detection not counted")
	}
	if n := tel.Counter("glare_superpeer_abdications_total").Value(); n != 1 {
		t.Fatalf("abdications = %d, want 1", n)
	}
}

// TestCheckRivalsAbsorbsOlderRival: the winning super-peer discovers the
// stale reign and absorbs it directly, fencing the rival out with the
// merged broadcast.
func TestCheckRivalsAbsorbsOlderRival(t *testing.T) {
	h := newHarness(t, 4)
	splitReigns(t, h)

	healed, err := h.agents[2].CheckRivals()
	if err != nil {
		t.Fatal(err)
	}
	if !healed {
		t.Fatal("rival reign not detected")
	}
	assertHealed(t, h)
}

// TestCheckRivalsIgnoresDisjointGroups: two super-peers over disjoint
// groups are the normal multi-group overlay, not a split brain.
func TestCheckRivalsIgnoresDisjointGroups(t *testing.T) {
	h := newHarness(t, 4)
	a := View{Epoch: 1, Group: h.infos[:2], SuperPeer: h.infos[1], SuperPeers: []SiteInfo{h.infos[1], h.infos[3]}}
	b := View{Epoch: 2, Group: h.infos[2:], SuperPeer: h.infos[3], SuperPeers: []SiteInfo{h.infos[1], h.infos[3]}}
	h.agents[1].setView(a.Clone())
	h.agents[0].setView(a.Clone())
	h.agents[3].setView(b.Clone())
	h.agents[2].setView(b.Clone())

	healed, err := h.agents[1].CheckRivals()
	if err != nil {
		t.Fatal(err)
	}
	if healed {
		t.Fatal("disjoint groups treated as rivals")
	}
	if h.agents[1].Role() != RoleSuperPeer || h.agents[3].Role() != RoleSuperPeer {
		t.Fatal("legitimate multi-group reigns disturbed")
	}
}
