package superpeer

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// harness spins up n overlay agents on real loopback servers.
type harness struct {
	agents  []*Agent
	servers []*transport.Server
	infos   []SiteInfo
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{}
	cli := transport.NewClient(nil)
	for i := 0; i < n; i++ {
		srv := transport.NewServer()
		if err := srv.Start("127.0.0.1:0", nil); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		info := SiteInfo{
			Name: fmt.Sprintf("site%02d", i),
			// Deterministic ranks: site with highest index has highest rank.
			Rank:    uint64(1000 + i),
			BaseURL: srv.BaseURL(),
		}
		a := NewAgent(info, cli, nil)
		a.Mount(srv)
		h.agents = append(h.agents, a)
		h.servers = append(h.servers, srv)
		h.infos = append(h.infos, info)
	}
	return h
}

func TestSiteInfoXMLRoundTrip(t *testing.T) {
	s := SiteInfo{Name: "a", Rank: 42, BaseURL: "http://h:1"}
	got, err := SiteInfoFromXML(s.ToXML())
	if err != nil || got != s {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := SiteInfoFromXML(nil); err == nil {
		t.Fatal("nil must fail")
	}
}

func TestViewXMLRoundTrip(t *testing.T) {
	v := View{
		Group:      []SiteInfo{{Name: "a", Rank: 2, BaseURL: "http://a"}, {Name: "b", Rank: 1, BaseURL: "http://b"}},
		SuperPeer:  SiteInfo{Name: "a", Rank: 2, BaseURL: "http://a"},
		SuperPeers: []SiteInfo{{Name: "a", Rank: 2, BaseURL: "http://a"}},
	}
	got, err := ViewFromXML(v.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if got.SuperPeer.Name != "a" || len(got.Group) != 2 || len(got.SuperPeers) != 1 {
		t.Fatalf("got %+v", got)
	}
	// Missing super-peer in group is invalid.
	bad := v
	bad.SuperPeer = SiteInfo{Name: "zz", Rank: 9}
	if _, err := ViewFromXML(bad.ToXML()); err == nil {
		t.Fatal("dangling super-peer accepted")
	}
}

func TestRankSites(t *testing.T) {
	sites := []SiteInfo{{Name: "b", Rank: 5}, {Name: "a", Rank: 5}, {Name: "c", Rank: 9}}
	ranked := RankSites(sites)
	if ranked[0].Name != "c" || ranked[1].Name != "a" || ranked[2].Name != "b" {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestPartitionGroups(t *testing.T) {
	var sites []SiteInfo
	for i := 0; i < 10; i++ {
		sites = append(sites, SiteInfo{Name: fmt.Sprintf("s%02d", i), Rank: uint64(i)})
	}
	views := PartitionGroups(sites, 4)
	if len(views) != 10 {
		t.Fatalf("views = %d", len(views))
	}
	// ceil(10/4) = 3 super-peers; the three highest-ranked sites.
	supers := map[string]bool{}
	for _, v := range views {
		supers[v.SuperPeer.Name] = true
		if len(v.SuperPeers) != 3 {
			t.Fatalf("super list = %v", v.SuperPeers)
		}
		// Every member's view contains its super-peer.
		if !v.Member(v.SuperPeer.Name) {
			t.Fatal("super-peer not in own group")
		}
	}
	if len(supers) != 3 || !supers["s09"] || !supers["s08"] || !supers["s07"] {
		t.Fatalf("supers = %v", supers)
	}
	// Each group has exactly one super-peer and sizes are balanced
	// (10 sites / 3 groups => sizes 3 or 4).
	sizes := map[string]int{}
	for name, v := range views {
		if views[v.SuperPeer.Name].SuperPeer.Name != v.SuperPeer.Name {
			t.Fatal("super-peer's own view disagrees")
		}
		if name == v.SuperPeer.Name {
			sizes[v.SuperPeer.Name] = len(v.Group)
		}
	}
	for sp, n := range sizes {
		if n < 3 || n > 4 {
			t.Fatalf("group %s size %d", sp, n)
		}
	}
}

func TestPartitionSingleSite(t *testing.T) {
	views := PartitionGroups([]SiteInfo{{Name: "only", Rank: 1}}, 4)
	v := views["only"]
	if v.SuperPeer.Name != "only" || len(v.Group) != 1 {
		t.Fatalf("view = %+v", v)
	}
}

func TestCoordinateAssignsAllSites(t *testing.T) {
	h := newHarness(t, 7)
	coord := h.agents[0]
	views, err := coord.Coordinate(h.infos, CoordinatorConfig{GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 7 {
		t.Fatalf("views = %d", len(views))
	}
	// Every agent must have received its view and role.
	superCount := 0
	for _, a := range h.agents {
		v := a.View()
		if v.SuperPeer.IsZero() {
			t.Fatalf("%s has no super-peer", a.Self().Name)
		}
		if a.Role() == RoleSuperPeer {
			superCount++
			if v.SuperPeer.Name != a.Self().Name {
				t.Fatal("super-peer role/view mismatch")
			}
		}
	}
	if superCount != 3 { // ceil(7/3)
		t.Fatalf("super-peers = %d", superCount)
	}
}

func TestCoordinateSkipsDeadSites(t *testing.T) {
	h := newHarness(t, 4)
	h.servers[2].Close() // site02 is down and cannot ack
	views, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := views["site02"]; ok {
		t.Fatal("dead site assigned to a group")
	}
	if len(views) != 3 {
		t.Fatalf("views = %d", len(views))
	}
}

func TestCoordinateEmptyCommunity(t *testing.T) {
	h := newHarness(t, 1)
	if _, err := h.agents[0].Coordinate(nil, CoordinatorConfig{}); err == nil {
		t.Fatal("empty community must fail")
	}
}

func TestPing(t *testing.T) {
	h := newHarness(t, 2)
	if !h.agents[0].Ping(h.infos[1]) {
		t.Fatal("ping to live site failed")
	}
	h.servers[1].Close()
	if h.agents[0].Ping(h.infos[1]) {
		t.Fatal("ping to dead site succeeded")
	}
}

func TestFailureDetectionAndReelection(t *testing.T) {
	h := newHarness(t, 4)
	// One group of 4: site03 (highest rank) becomes super-peer.
	views, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	sp := views["site00"].SuperPeer
	if sp.Name != "site03" {
		t.Fatalf("super-peer = %s", sp.Name)
	}
	// Kill the super-peer.
	h.servers[3].Close()
	// A low-ranked member detects the failure; site02 (next-highest) must
	// take over after majority verification. The first missed probe only
	// raises suspicion — recovery waits for the threshold.
	initiated, err := h.agents[0].DetectAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if initiated {
		t.Fatal("recovery initiated on a single missed probe")
	}
	initiated, err = h.agents[0].DetectAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if !initiated {
		t.Fatal("recovery not initiated")
	}
	// CandidateNotify triggers takeover asynchronously; wait for it.
	deadline := time.After(5 * time.Second)
	for {
		if h.agents[2].Role() == RoleSuperPeer {
			break
		}
		select {
		case <-deadline:
			t.Fatal("takeover never completed")
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Members learn the new super-peer.
	for _, i := range []int{0, 1} {
		waitFor(t, func() bool {
			return h.agents[i].View().SuperPeer.Name == "site02"
		}, "member view update")
	}
	// The super-group membership swapped the dead peer for the new one.
	for _, s := range h.agents[2].View().SuperPeers {
		if s.Name == "site03" {
			t.Fatal("dead super-peer still in super-group")
		}
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %s", what)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestDetectNoopWhenSuperPeerAlive(t *testing.T) {
	h := newHarness(t, 3)
	h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3})
	initiated, err := h.agents[0].DetectAndRecover()
	if err != nil || initiated {
		t.Fatalf("spurious recovery: %v %v", initiated, err)
	}
}

func TestTakeoverRefusedWhenSuperPeerAlive(t *testing.T) {
	h := newHarness(t, 3)
	h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3})
	sp := h.agents[0].View().SuperPeer
	// Ask the second-ranked member to take over while the SP is alive.
	if err := h.agents[1].RunTakeover(sp.Name); err == nil {
		t.Fatal("takeover with living super-peer must fail")
	}
}

func TestTakeoverRefusedForWrongCandidate(t *testing.T) {
	h := newHarness(t, 4)
	h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 4})
	h.servers[3].Close() // super-peer down
	// site00 is the lowest-ranked survivor; its takeover must be refused.
	if err := h.agents[0].RunTakeover("site03"); err == nil {
		t.Fatal("low-ranked candidate must not take over")
	}
}

func TestVerifyRequestRejectsWrongSuperPeer(t *testing.T) {
	h := newHarness(t, 3)
	h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3})
	cli := transport.NewClient(nil)
	body := xmlutil.NewNode("Verify")
	body.SetAttr("down", "not-my-sp")
	body.SetAttr("candidate", "site01")
	body.SetAttr("rank", "1001")
	if _, err := cli.Call(h.infos[0].PeerURL(), "VerifyRequest", body); err == nil {
		t.Fatal("wrong super-peer name must be rejected")
	}
}

func TestOnViewChangeFires(t *testing.T) {
	h := newHarness(t, 2)
	got := make(chan View, 4)
	h.agents[1].OnViewChange(func(v View) { got <- v })
	if _, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v.SuperPeer.IsZero() {
			t.Fatal("empty view delivered")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("view change callback never fired")
	}
}

func TestMonitorDrivesRecovery(t *testing.T) {
	h := newHarness(t, 3)
	h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3})
	stop := make(chan struct{})
	defer close(stop)
	for _, a := range h.agents[:2] {
		a.StartMonitor(20*time.Millisecond, stop)
	}
	h.servers[2].Close() // super-peer (site02, highest rank) dies
	waitFor(t, func() bool {
		return h.agents[1].Role() == RoleSuperPeer
	}, "monitor-driven takeover")
}

func TestRoleString(t *testing.T) {
	if RoleMember.String() != "Member" || RoleSuperPeer.String() != "SuperPeer" ||
		RoleUnassigned.String() != "Unassigned" {
		t.Fatal("role names wrong")
	}
}

// Property: PartitionGroups places every site in exactly one group, gives
// each group exactly one super-peer (its highest-ranked member), and the
// super-group is exactly the top-ceil(n/size) ranked sites.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(n, size uint8) bool {
		count := int(n%20) + 1
		groupSize := int(size%6) + 1
		var sites []SiteInfo
		for i := 0; i < count; i++ {
			sites = append(sites, SiteInfo{
				Name: fmt.Sprintf("s%03d", i), Rank: uint64(i * 7),
			})
		}
		views := PartitionGroups(sites, groupSize)
		if len(views) != count {
			return false
		}
		k := (count + groupSize - 1) / groupSize
		supers := map[string]bool{}
		assigned := map[string]int{}
		for name, v := range views {
			if !v.Member(name) {
				return false
			}
			supers[v.SuperPeer.Name] = true
			if len(v.SuperPeers) != k {
				return false
			}
			for _, m := range v.Group {
				if m.Name == name {
					assigned[name]++
				}
			}
			// The super-peer is the highest-ranked member of its group.
			for _, m := range v.Group {
				if m.Rank > v.SuperPeer.Rank {
					return false
				}
			}
		}
		if len(supers) != k {
			return false
		}
		for _, c := range assigned {
			if c != 1 {
				return false
			}
		}
		// Supers are exactly the k highest-ranked sites.
		ranked := RankSites(sites)
		for i := 0; i < k; i++ {
			if !supers[ranked[i].Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinateGrowingCommunity replays the daemon join sequence: the
// coordinator elects over {0,1}, then site 2 joins and it re-elects over
// all three. The smaller-community commitment from the first round must
// not outlive that election — before the reset in setView, site 1 would
// refuse every later (larger) election forever and strand itself on the
// old epoch with a disagreeing replica set.
func TestCoordinateGrowingCommunity(t *testing.T) {
	h := newHarness(t, 3)
	if _, err := h.agents[0].Coordinate(h.infos[:2], CoordinatorConfig{GroupSize: 3}); err != nil {
		t.Fatal(err)
	}
	views, err := h.agents[0].Coordinate(h.infos, CoordinatorConfig{GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("second election assigned %d views, want 3: %v", len(views), views)
	}
	for i, a := range h.agents {
		if got := a.View().Epoch; got != 2 {
			t.Fatalf("agent %d at epoch %d after the grow election, want 2", i, got)
		}
		if got := len(a.View().Group); got != 3 {
			t.Fatalf("agent %d sees a group of %d, want 3", i, got)
		}
	}
}
