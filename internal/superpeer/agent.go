package superpeer

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

// ServiceName is the transport mount point of the overlay agent.
const ServiceName = "PeerService"

// Role is a site's position in the overlay.
type Role int

const (
	RoleUnassigned Role = iota
	RoleMember
	RoleSuperPeer
)

// String renders the role name.
func (r Role) String() string {
	switch r {
	case RoleMember:
		return "Member"
	case RoleSuperPeer:
		return "SuperPeer"
	}
	return "Unassigned"
}

// Agent is one site's overlay participant. It serves the PeerService
// operations and runs the election-coordinator and failure-recovery
// protocols.
type Agent struct {
	self        SiteInfo
	client      *transport.Client
	broker      *wsrf.Broker
	pingTimeout time.Duration

	// Overlay instrumentation; nil (no-op) until SetTelemetry is called.
	tel        *telemetry.Telemetry
	elections  *telemetry.Counter
	heartbeats *telemetry.Counter
	recoveries *telemetry.Counter
	takeovers  *telemetry.Counter

	mu   sync.Mutex
	role Role
	view View
	// bestCommunity is the strength of the strongest community whose
	// coordinator this agent acknowledged; used to arbitrate between
	// notifications from multiple indices.
	bestCommunity int
	onViewChange  []func(View)
}

// DefaultPingTimeout bounds one liveness probe. Failure detection must be
// far snappier than a regular operation: a hung site should be declared
// dead well before the transport's DefaultCallTimeout would give up on a
// normal call.
const DefaultPingTimeout = 1 * time.Second

// NewAgent creates an overlay agent for a site.
func NewAgent(self SiteInfo, client *transport.Client, broker *wsrf.Broker) *Agent {
	if broker == nil {
		broker = wsrf.NewBroker(nil)
	}
	return &Agent{self: self, client: client, broker: broker, pingTimeout: DefaultPingTimeout}
}

// SetPingTimeout overrides the liveness-probe timeout (d <= 0 restores
// the default). Call during site assembly, before monitors start.
func (a *Agent) SetPingTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultPingTimeout
	}
	a.pingTimeout = d
}

// Self returns this agent's site info.
func (a *Agent) Self() SiteInfo { return a.self }

// SetTelemetry binds the agent's overlay instrumentation to a site's
// telemetry bundle. Call during site assembly, before serving traffic.
func (a *Agent) SetTelemetry(tel *telemetry.Telemetry) {
	a.tel = tel
	a.elections = tel.Counter("glare_superpeer_elections_total")
	a.heartbeats = tel.Counter("glare_superpeer_heartbeats_total")
	a.recoveries = tel.Counter("glare_superpeer_recoveries_total")
	a.takeovers = tel.Counter("glare_superpeer_takeovers_total")
}

// Role returns the current overlay role.
func (a *Agent) Role() Role {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.role
}

// View returns a copy of the current overlay view.
func (a *Agent) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Clone()
}

// OnViewChange registers a callback fired whenever the view changes.
func (a *Agent) OnViewChange(fn func(View)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onViewChange = append(a.onViewChange, fn)
}

func (a *Agent) setView(v View) {
	a.mu.Lock()
	a.view = v
	if v.SuperPeer.Name == a.self.Name {
		a.role = RoleSuperPeer
	} else {
		a.role = RoleMember
	}
	callbacks := append([]func(View){}, a.onViewChange...)
	a.mu.Unlock()
	for _, fn := range callbacks {
		fn(v.Clone())
	}
	a.broker.Publish(wsrf.TopicElection, a.self.Name, v.ToXML())
}

// Mount exposes the PeerService operations.
func (a *Agent) Mount(srv *transport.Server) {
	srv.RegisterService(ServiceName, map[string]transport.Handler{
		"Ping": func(*xmlutil.Node) (*xmlutil.Node, error) {
			n := xmlutil.NewNode("Pong")
			n.SetAttr("name", a.self.Name)
			n.SetAttr("rank", strconv.FormatUint(a.self.Rank, 10))
			n.SetAttr("role", a.Role().String())
			return n, nil
		},
		"ElectNotify":     a.handleElectNotify,
		"GroupAssign":     a.handleGroupAssign,
		"CandidateNotify": a.handleCandidateNotify,
		"VerifyRequest":   a.handleVerifyRequest,
		"Takeover":        a.handleTakeover,
	})
}

// handleElectNotify processes the coordinator's two-round notification.
// Round 1 is informational; round 2 must be acknowledged. When multiple
// coordinators (multiple community indices) notify, the message from the
// smaller community is the one acknowledged, per the paper.
func (a *Agent) handleElectNotify(body *xmlutil.Node) (*xmlutil.Node, error) {
	if body == nil {
		return nil, fmt.Errorf("ElectNotify: missing body")
	}
	round, _ := strconv.Atoi(body.AttrOr("round", "1"))
	strength, _ := strconv.Atoi(body.AttrOr("communitySize", "0"))
	a.mu.Lock()
	defer a.mu.Unlock()
	if round < 2 {
		if a.bestCommunity == 0 || strength < a.bestCommunity {
			a.bestCommunity = strength
		}
		return xmlutil.NewNode("Noted"), nil
	}
	// Second round: acknowledge only the chosen community.
	if a.bestCommunity != 0 && strength > a.bestCommunity {
		return nil, fmt.Errorf("ElectNotify: already committed to community of %d sites", a.bestCommunity)
	}
	ack := xmlutil.NewNode("Ack")
	ack.SetAttr("name", a.self.Name)
	ack.SetAttr("rank", strconv.FormatUint(a.self.Rank, 10))
	return ack, nil
}

func (a *Agent) handleGroupAssign(body *xmlutil.Node) (*xmlutil.Node, error) {
	v, err := ViewFromXML(body)
	if err != nil {
		return nil, err
	}
	if !v.Member(a.self.Name) {
		return nil, fmt.Errorf("GroupAssign: %s is not in the assigned group", a.self.Name)
	}
	a.setView(v)
	return xmlutil.NewNode("Assigned"), nil
}

// Ping checks whether a remote site's agent answers. It probes under its
// own short timeout (SetPingTimeout) with no retries, and shares the
// client's circuit-breaker state: a destination whose breaker is already
// open fails instantly, so heartbeat, takeover verification and
// resolution do not each re-probe a site the client knows is dead.
func (a *Agent) Ping(target SiteInfo) bool {
	if a.client == nil {
		return false
	}
	a.heartbeats.Inc()
	resp, err := a.client.Probe(target.PeerURL(), "Ping", nil, a.pingTimeout)
	return err == nil && resp != nil && resp.Name == "Pong"
}

// ------------------------------------------------------------ coordinator

// CoordinatorConfig tunes the election run by the community-index holder.
type CoordinatorConfig struct {
	// GroupSize is the target number of sites per peer group.
	GroupSize int
	// NotifyDelay separates the two notification rounds ("Notification is
	// done twice (with a configurable time interval)").
	NotifyDelay time.Duration
}

// DefaultGroupSize matches the paper's figure of ~3-4 sites per group.
const DefaultGroupSize = 4

// Coordinate runs a super-peer election over the given community. The
// caller is the GLARE service holding the community index ("A GLARE
// service on a site with community index becomes super-peer election
// coordinator"). It returns the assigned views keyed by site name.
func (a *Agent) Coordinate(sites []SiteInfo, cfg CoordinatorConfig) (views map[string]View, err error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("superpeer: empty community")
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = DefaultGroupSize
	}
	a.elections.Inc()
	// One span covers the whole election round; its correlation ID rides
	// every notification, so /tracez on the member sites links back here.
	sp := a.tel.StartSpan("superpeer.Coordinate", nil)
	sp.SetNote(fmt.Sprintf("community=%d", len(sites)))
	defer func() { sp.End(err) }()
	// Round 1: informational notification carrying community strength.
	note := xmlutil.NewNode("Election")
	note.SetAttr("round", "1")
	note.SetAttr("communitySize", strconv.Itoa(len(sites)))
	note.SetAttr("coordinator", a.self.Name)
	for _, s := range sites {
		if s.Name == a.self.Name {
			continue
		}
		_, _ = a.client.CallSpan(sp, s.PeerURL(), "ElectNotify", note.Clone())
	}
	if cfg.NotifyDelay > 0 {
		time.Sleep(cfg.NotifyDelay)
	}
	// Round 2: acknowledged notification; only responders participate.
	note.SetAttr("round", "2")
	responding := []SiteInfo{}
	for _, s := range sites {
		if s.Name == a.self.Name {
			responding = append(responding, s)
			continue
		}
		if resp, err := a.client.CallSpan(sp, s.PeerURL(), "ElectNotify", note.Clone()); err == nil && resp != nil {
			responding = append(responding, s)
		}
	}
	if len(responding) == 0 {
		return nil, fmt.Errorf("superpeer: no site acknowledged the election")
	}
	views = PartitionGroups(responding, cfg.GroupSize)
	// Distribute assignments; the coordinator applies its own locally.
	for name, v := range views {
		if name == a.self.Name {
			a.setView(v)
			continue
		}
		var target SiteInfo
		for _, s := range responding {
			if s.Name == name {
				target = s
			}
		}
		if _, err := a.client.CallSpan(sp, target.PeerURL(), "GroupAssign", v.ToXML()); err != nil {
			return views, fmt.Errorf("superpeer: assigning %s: %w", name, err)
		}
	}
	return views, nil
}

// PartitionGroups ranks the sites, elects the top ceil(n/groupSize) as
// super-peers and distributes the remaining members equally among them.
// It is exported (and pure) so the partitioning policy can be tested and
// ablated independently of the messaging.
func PartitionGroups(sites []SiteInfo, groupSize int) map[string]View {
	ranked := RankSites(sites)
	n := len(ranked)
	k := (n + groupSize - 1) / groupSize
	if k < 1 {
		k = 1
	}
	supers := ranked[:k]
	rest := ranked[k:]
	groups := make([][]SiteInfo, k)
	for i, s := range supers {
		groups[i] = []SiteInfo{s}
	}
	for i, s := range rest {
		g := i % k
		groups[g] = append(groups[g], s)
	}
	views := make(map[string]View, n)
	superList := append([]SiteInfo(nil), supers...)
	for gi, members := range groups {
		v := View{Group: members, SuperPeer: supers[gi], SuperPeers: superList}
		for _, m := range members {
			views[m.Name] = v
		}
	}
	return views
}

// --------------------------------------------------------- failure paths

// handleCandidateNotify is received by the highest-ranked member when
// another member detects the super-peer's failure.
func (a *Agent) handleCandidateNotify(body *xmlutil.Node) (*xmlutil.Node, error) {
	if body == nil {
		return nil, fmt.Errorf("CandidateNotify: missing body")
	}
	downName := body.AttrOr("down", "")
	go a.RunTakeover(downName) // verification happens inside
	return xmlutil.NewNode("Noted"), nil
}

// handleVerifyRequest: a member independently verifies that the super-peer
// is unavailable and that the candidate outranks it, then acknowledges.
func (a *Agent) handleVerifyRequest(body *xmlutil.Node) (*xmlutil.Node, error) {
	if body == nil {
		return nil, fmt.Errorf("VerifyRequest: missing body")
	}
	candRank, _ := strconv.ParseUint(body.AttrOr("rank", "0"), 10, 64)
	candName := body.AttrOr("candidate", "")
	a.mu.Lock()
	view := a.view.Clone()
	a.mu.Unlock()
	if view.SuperPeer.IsZero() {
		return nil, fmt.Errorf("VerifyRequest: no group assigned")
	}
	if body.AttrOr("down", "") != view.SuperPeer.Name {
		return nil, fmt.Errorf("VerifyRequest: %q is not my super-peer", body.AttrOr("down", ""))
	}
	// Verify the super-peer really is unreachable.
	if a.Ping(view.SuperPeer) {
		return nil, fmt.Errorf("VerifyRequest: super-peer %s is alive", view.SuperPeer.Name)
	}
	// Verify the candidate is the highest-ranked surviving member.
	for _, s := range view.Group {
		if s.Name == view.SuperPeer.Name || s.Name == candName {
			continue
		}
		if s.Rank > candRank && a.Ping(s) {
			return nil, fmt.Errorf("VerifyRequest: %s outranks candidate", s.Name)
		}
	}
	ack := xmlutil.NewNode("Ack")
	ack.SetAttr("agree", "true")
	ack.SetAttr("name", a.self.Name)
	return ack, nil
}

func (a *Agent) handleTakeover(body *xmlutil.Node) (*xmlutil.Node, error) {
	v, err := ViewFromXML(body)
	if err != nil {
		return nil, err
	}
	if !v.Member(a.self.Name) {
		return nil, fmt.Errorf("Takeover: not my group")
	}
	a.setView(v)
	return xmlutil.NewNode("Accepted"), nil
}

// DetectAndRecover is the member-side failure path: if the super-peer does
// not answer, compute the ranks of the surviving members, notify the
// highest-ranked one (or run the takeover directly if that is us). It
// reports whether recovery was initiated.
func (a *Agent) DetectAndRecover() (bool, error) {
	view := a.View()
	if view.SuperPeer.IsZero() || view.SuperPeer.Name == a.self.Name {
		return false, nil
	}
	if a.Ping(view.SuperPeer) {
		return false, nil
	}
	survivors := make([]SiteInfo, 0, len(view.Group))
	for _, s := range view.Group {
		if s.Name != view.SuperPeer.Name {
			survivors = append(survivors, s)
		}
	}
	ranked := RankSites(survivors)
	if len(ranked) == 0 {
		return false, fmt.Errorf("superpeer: no survivors in group")
	}
	a.recoveries.Inc()
	highest := ranked[0]
	if highest.Name == a.self.Name {
		return true, a.RunTakeover(view.SuperPeer.Name)
	}
	note := xmlutil.NewNode("SuperPeerDown")
	note.SetAttr("down", view.SuperPeer.Name)
	if _, err := a.client.Call(highest.PeerURL(), "CandidateNotify", note); err != nil {
		return false, fmt.Errorf("superpeer: notifying candidate %s: %w", highest.Name, err)
	}
	return true, nil
}

// RunTakeover is the candidate-side protocol: (a) verify the super-peer is
// down, (b) verify our own rank, (c) collect verification acks from every
// member; a simple majority confirms and we take over.
func (a *Agent) RunTakeover(downName string) error {
	view := a.View()
	if view.SuperPeer.IsZero() || view.SuperPeer.Name != downName {
		return fmt.Errorf("superpeer: %q is not the current super-peer", downName)
	}
	if a.Ping(view.SuperPeer) {
		return fmt.Errorf("superpeer: %s is alive, aborting takeover", downName)
	}
	survivors := make([]SiteInfo, 0, len(view.Group))
	for _, s := range view.Group {
		if s.Name != downName {
			survivors = append(survivors, s)
		}
	}
	ranked := RankSites(survivors)
	if len(ranked) == 0 || ranked[0].Name != a.self.Name {
		return fmt.Errorf("superpeer: %s is not the highest-ranked survivor", a.self.Name)
	}
	// Collect verification acks from the other members.
	req := xmlutil.NewNode("Verify")
	req.SetAttr("down", downName)
	req.SetAttr("candidate", a.self.Name)
	req.SetAttr("rank", strconv.FormatUint(a.self.Rank, 10))
	acks := 1 // our own vote
	for _, s := range survivors {
		if s.Name == a.self.Name {
			continue
		}
		if resp, err := a.client.Call(s.PeerURL(), "VerifyRequest", req.Clone()); err == nil &&
			resp != nil && resp.AttrOr("agree", "") == "true" {
			acks++
		}
	}
	if acks*2 <= len(survivors) {
		return fmt.Errorf("superpeer: only %d/%d acknowledgements, no majority", acks, len(survivors))
	}
	// Build the new view: we are the super-peer; the super-group swaps the
	// failed peer for us.
	newSupers := make([]SiteInfo, 0, len(view.SuperPeers))
	for _, s := range view.SuperPeers {
		if s.Name == downName {
			newSupers = append(newSupers, a.self)
		} else {
			newSupers = append(newSupers, s)
		}
	}
	newView := View{Group: survivors, SuperPeer: a.self, SuperPeers: newSupers}
	a.takeovers.Inc()
	a.setView(newView)
	for _, s := range survivors {
		if s.Name == a.self.Name {
			continue
		}
		_, _ = a.client.Call(s.PeerURL(), "Takeover", newView.ToXML())
	}
	return nil
}

// StartMonitor launches periodic super-peer liveness checks until stop is
// closed. interval is real time.
func (a *Agent) StartMonitor(interval time.Duration, stop <-chan struct{}) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _ = a.DetectAndRecover()
			}
		}
	}()
}
