package superpeer

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

// ServiceName is the transport mount point of the overlay agent.
const ServiceName = "PeerService"

// Role is a site's position in the overlay.
type Role int

const (
	RoleUnassigned Role = iota
	RoleMember
	RoleSuperPeer
)

// String renders the role name.
func (r Role) String() string {
	switch r {
	case RoleMember:
		return "Member"
	case RoleSuperPeer:
		return "SuperPeer"
	}
	return "Unassigned"
}

// Agent is one site's overlay participant. It serves the PeerService
// operations and runs the election-coordinator and failure-recovery
// protocols.
type Agent struct {
	self        SiteInfo
	client      *transport.Client
	broker      *wsrf.Broker
	pingTimeout time.Duration

	// Overlay instrumentation; nil (no-op) until SetTelemetry is called.
	tel            *telemetry.Telemetry
	elections      *telemetry.Counter
	heartbeats     *telemetry.Counter
	recoveries     *telemetry.Counter
	takeovers      *telemetry.Counter
	abdications    *telemetry.Counter
	propagateFails *telemetry.Counter
	staleRejects   *telemetry.Counter
	rivals         *telemetry.Counter
	epochGauge     *telemetry.Gauge

	mu   sync.Mutex
	role Role
	view View
	// bestCommunity is the strength of the strongest community whose
	// coordinator this agent acknowledged; used to arbitrate between
	// notifications from multiple indices. It lives only for the current
	// election window — installing a view resets it.
	bestCommunity int
	onViewChange  []func(View)
	// suspicion counts consecutive missed super-peer probes; recovery
	// starts only once it reaches suspicionK, so one dropped packet under
	// chaos does not trigger an election storm.
	suspicion  int
	suspicionK int
	// replicaK is this site's configured registry replication factor; the
	// election coordinator stamps it into every view it assigns, so the
	// whole overlay agrees on one K per epoch.
	replicaK int
	// skewSource reports the worst clock-skew observation this site has
	// made against any peer (peer name, signed offset); nil hides the
	// ViewStatus skew columns. Set during site assembly.
	skewSource func() (string, time.Duration)
}

// DefaultPingTimeout bounds one liveness probe. Failure detection must be
// far snappier than a regular operation: a hung site should be declared
// dead well before the transport's DefaultCallTimeout would give up on a
// normal call.
const DefaultPingTimeout = 1 * time.Second

// DefaultSuspicionThreshold is how many consecutive missed probes declare
// the super-peer dead.
const DefaultSuspicionThreshold = 2

// NewAgent creates an overlay agent for a site.
func NewAgent(self SiteInfo, client *transport.Client, broker *wsrf.Broker) *Agent {
	if broker == nil {
		broker = wsrf.NewBroker(nil)
	}
	return &Agent{self: self, client: client, broker: broker,
		pingTimeout: DefaultPingTimeout, suspicionK: DefaultSuspicionThreshold}
}

// SetSuspicionThreshold overrides how many consecutive missed probes
// DetectAndRecover needs before initiating recovery (k <= 0 restores the
// default). Call during site assembly, before monitors start.
func (a *Agent) SetSuspicionThreshold(k int) {
	if k <= 0 {
		k = DefaultSuspicionThreshold
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.suspicionK = k
}

// SetPingTimeout overrides the liveness-probe timeout (d <= 0 restores
// the default). Call during site assembly, before monitors start.
func (a *Agent) SetPingTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultPingTimeout
	}
	a.pingTimeout = d
}

// SetReplicaK declares the registry replication factor this site wants
// (total copies per entry, owner included). The value only takes effect
// grid-wide when this site coordinates an election: the assigned views
// carry it, and takeovers and merges preserve it. Call during site
// assembly.
func (a *Agent) SetReplicaK(k int) {
	if k < 0 {
		k = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.replicaK = k
}

// SetSkewSource wires the probe behind the ViewStatus skew columns: fn
// reports the peer with the largest observed clock offset against this
// site's physical clock, and that offset (positive: the peer's stamps run
// ahead of us). Call during site assembly.
func (a *Agent) SetSkewSource(fn func() (string, time.Duration)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.skewSource = fn
}

// Self returns this agent's site info.
func (a *Agent) Self() SiteInfo { return a.self }

// SetTelemetry binds the agent's overlay instrumentation to a site's
// telemetry bundle. Call during site assembly, before serving traffic.
func (a *Agent) SetTelemetry(tel *telemetry.Telemetry) {
	a.tel = tel
	a.elections = tel.Counter("glare_superpeer_elections_total")
	a.heartbeats = tel.Counter("glare_superpeer_heartbeats_total")
	a.recoveries = tel.Counter("glare_superpeer_recoveries_total")
	a.takeovers = tel.Counter("glare_superpeer_takeovers_total")
	a.abdications = tel.Counter("glare_superpeer_abdications_total")
	a.propagateFails = tel.Counter("glare_superpeer_view_propagate_failures_total")
	a.staleRejects = tel.Counter("glare_superpeer_stale_view_rejected_total")
	a.rivals = tel.Counter("glare_superpeer_rivals_detected_total")
	a.epochGauge = tel.Gauge("glare_superpeer_epoch")
}

// Role returns the current overlay role.
func (a *Agent) Role() Role {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.role
}

// IsSuperPeer reports whether the agent currently acts as a super-peer —
// the gate for super-peer-only background passes (registry anti-entropy,
// telemetry-history rollup).
func (a *Agent) IsSuperPeer() bool { return a.Role() == RoleSuperPeer }

// View returns a copy of the current overlay view.
func (a *Agent) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Clone()
}

// OnViewChange registers a callback fired whenever the view changes.
func (a *Agent) OnViewChange(fn func(View)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onViewChange = append(a.onViewChange, fn)
}

// setView installs a view behind the epoch fence: a view that compares
// strictly older than the current one (by epoch, then super-peer rank and
// name) is rejected, so a partitioned-away coordinator cannot roll the
// overlay back. Returns whether the view was installed.
func (a *Agent) setView(v View) bool {
	a.mu.Lock()
	if !a.view.SuperPeer.IsZero() && v.OlderThan(a.view) {
		a.mu.Unlock()
		a.staleRejects.Inc()
		return false
	}
	wasSuper := a.role == RoleSuperPeer
	a.view = v
	// An installed view closes the election window: the smaller-community
	// commitment arbitrated between rival coordinators of THIS round and
	// must not veto future rounds (a community that grows by one site
	// notifies with a larger strength, which a stale commitment would
	// reject forever).
	a.bestCommunity = 0
	if v.SuperPeer.Name == a.self.Name {
		a.role = RoleSuperPeer
	} else {
		a.role = RoleMember
	}
	if wasSuper && a.role != RoleSuperPeer {
		a.abdications.Inc()
	}
	a.suspicion = 0
	callbacks := append([]func(View){}, a.onViewChange...)
	a.mu.Unlock()
	a.epochGauge.Set(int64(v.Epoch))
	for _, fn := range callbacks {
		fn(v.Clone())
	}
	a.broker.Publish(wsrf.TopicElection, a.self.Name, v.ToXML())
	return true
}

// Mount exposes the PeerService operations.
func (a *Agent) Mount(srv *transport.Server) {
	srv.RegisterService(ServiceName, map[string]transport.Handler{
		"Ping": func(*xmlutil.Node) (*xmlutil.Node, error) {
			n := xmlutil.NewNode("Pong")
			n.SetAttr("name", a.self.Name)
			n.SetAttr("rank", strconv.FormatUint(a.self.Rank, 10))
			n.SetAttr("role", a.Role().String())
			return n, nil
		},
		"ElectNotify":     a.handleElectNotify,
		"GroupAssign":     a.handleGroupAssign,
		"CandidateNotify": a.handleCandidateNotify,
		"VerifyRequest":   a.handleVerifyRequest,
		"Takeover":        a.handleTakeover,
		"ViewStatus":      a.handleViewStatus,
		"Rejoin":          a.handleRejoin,
	})
}

// handleElectNotify processes the coordinator's two-round notification.
// Round 1 is informational; round 2 must be acknowledged. When multiple
// coordinators (multiple community indices) notify, the message from the
// smaller community is the one acknowledged, per the paper.
func (a *Agent) handleElectNotify(body *xmlutil.Node) (*xmlutil.Node, error) {
	if body == nil {
		return nil, fmt.Errorf("ElectNotify: missing body")
	}
	round, _ := strconv.Atoi(body.AttrOr("round", "1"))
	strength, _ := strconv.Atoi(body.AttrOr("communitySize", "0"))
	a.mu.Lock()
	defer a.mu.Unlock()
	if round < 2 {
		if a.bestCommunity == 0 || strength < a.bestCommunity {
			a.bestCommunity = strength
		}
		return xmlutil.NewNode("Noted"), nil
	}
	// Second round: acknowledge only the chosen community, and only a
	// coordinator whose election would move our view forward — a
	// coordinator re-emerging from the stale side of a partition carries
	// an epoch at or below the one we already hold.
	if ep, err := strconv.ParseUint(body.AttrOr("epoch", "0"), 10, 64); err == nil && ep > 0 && ep <= a.view.Epoch {
		return nil, fmt.Errorf("ElectNotify: stale election epoch %d (local view at %d)", ep, a.view.Epoch)
	}
	if a.bestCommunity != 0 && strength > a.bestCommunity {
		return nil, fmt.Errorf("ElectNotify: already committed to community of %d sites", a.bestCommunity)
	}
	ack := xmlutil.NewNode("Ack")
	ack.SetAttr("name", a.self.Name)
	ack.SetAttr("rank", strconv.FormatUint(a.self.Rank, 10))
	return ack, nil
}

func (a *Agent) handleGroupAssign(body *xmlutil.Node) (*xmlutil.Node, error) {
	v, err := ViewFromXML(body)
	if err != nil {
		return nil, err
	}
	if !v.Member(a.self.Name) {
		return nil, fmt.Errorf("GroupAssign: %s is not in the assigned group", a.self.Name)
	}
	if !a.setView(v) {
		return nil, fmt.Errorf("GroupAssign: view (epoch %d) is older than the installed one", v.Epoch)
	}
	return xmlutil.NewNode("Assigned"), nil
}

// Ping checks whether a remote site's agent answers. It probes under its
// own short timeout (SetPingTimeout) with no retries, and shares the
// client's circuit-breaker state: a destination whose breaker is already
// open fails instantly, so heartbeat, takeover verification and
// resolution do not each re-probe a site the client knows is dead.
func (a *Agent) Ping(target SiteInfo) bool {
	if a.client == nil {
		return false
	}
	a.heartbeats.Inc()
	resp, err := a.client.Probe(target.PeerURL(), "Ping", nil, a.pingTimeout)
	return err == nil && resp != nil && resp.Name == "Pong"
}

// ------------------------------------------------------------ coordinator

// CoordinatorConfig tunes the election run by the community-index holder.
type CoordinatorConfig struct {
	// GroupSize is the target number of sites per peer group.
	GroupSize int
	// NotifyDelay separates the two notification rounds ("Notification is
	// done twice (with a configurable time interval)").
	NotifyDelay time.Duration
}

// DefaultGroupSize matches the paper's figure of ~3-4 sites per group.
const DefaultGroupSize = 4

// Coordinate runs a super-peer election over the given community. The
// caller is the GLARE service holding the community index ("A GLARE
// service on a site with community index becomes super-peer election
// coordinator"). It returns the assigned views keyed by site name.
func (a *Agent) Coordinate(sites []SiteInfo, cfg CoordinatorConfig) (views map[string]View, err error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("superpeer: empty community")
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = DefaultGroupSize
	}
	a.elections.Inc()
	// Every election moves the overlay one epoch forward; sites that end
	// up on the stale side of a partition keep the old epoch and are
	// fenced out when they try to push their view after the heal.
	epoch := a.View().Epoch + 1
	// One span covers the whole election round; its correlation ID rides
	// every notification, so /tracez on the member sites links back here.
	sp := a.tel.StartSpan("superpeer.Coordinate", nil)
	sp.SetNote(fmt.Sprintf("community=%d epoch=%d", len(sites), epoch))
	defer func() { sp.End(err) }()
	// Round 1: informational notification carrying community strength.
	note := xmlutil.NewNode("Election")
	note.SetAttr("round", "1")
	note.SetAttr("communitySize", strconv.Itoa(len(sites)))
	note.SetAttr("coordinator", a.self.Name)
	note.SetAttr("epoch", strconv.FormatUint(epoch, 10))
	for _, s := range sites {
		if s.Name == a.self.Name {
			continue
		}
		_, _ = a.client.CallSpan(sp, s.PeerURL(), "ElectNotify", note.Clone())
	}
	if cfg.NotifyDelay > 0 {
		time.Sleep(cfg.NotifyDelay)
	}
	// Round 2: acknowledged notification; only responders participate.
	note.SetAttr("round", "2")
	responding := []SiteInfo{}
	for _, s := range sites {
		if s.Name == a.self.Name {
			responding = append(responding, s)
			continue
		}
		if resp, err := a.client.CallSpan(sp, s.PeerURL(), "ElectNotify", note.Clone()); err == nil && resp != nil {
			responding = append(responding, s)
		}
	}
	if len(responding) == 0 {
		return nil, fmt.Errorf("superpeer: no site acknowledged the election")
	}
	a.mu.Lock()
	replicaK := a.replicaK
	a.mu.Unlock()
	views = PartitionGroups(responding, cfg.GroupSize)
	for name, v := range views {
		v.Epoch = epoch
		v.ReplicaK = replicaK
		views[name] = v
	}
	// Distribute assignments; the coordinator applies its own locally.
	for name, v := range views {
		if name == a.self.Name {
			a.setView(v)
			continue
		}
		var target SiteInfo
		for _, s := range responding {
			if s.Name == name {
				target = s
			}
		}
		if _, err := a.client.CallSpan(sp, target.PeerURL(), "GroupAssign", v.ToXML()); err != nil {
			return views, fmt.Errorf("superpeer: assigning %s: %w", name, err)
		}
	}
	return views, nil
}

// PartitionGroups ranks the sites, elects the top ceil(n/groupSize) as
// super-peers and distributes the remaining members equally among them.
// It is exported (and pure) so the partitioning policy can be tested and
// ablated independently of the messaging.
func PartitionGroups(sites []SiteInfo, groupSize int) map[string]View {
	ranked := RankSites(sites)
	n := len(ranked)
	k := (n + groupSize - 1) / groupSize
	if k < 1 {
		k = 1
	}
	supers := ranked[:k]
	rest := ranked[k:]
	groups := make([][]SiteInfo, k)
	for i, s := range supers {
		groups[i] = []SiteInfo{s}
	}
	for i, s := range rest {
		g := i % k
		groups[g] = append(groups[g], s)
	}
	views := make(map[string]View, n)
	superList := append([]SiteInfo(nil), supers...)
	for gi, members := range groups {
		v := View{Group: members, SuperPeer: supers[gi], SuperPeers: superList}
		for _, m := range members {
			views[m.Name] = v
		}
	}
	return views
}

// --------------------------------------------------------- failure paths

// handleCandidateNotify is received by the highest-ranked member when
// another member detects the super-peer's failure.
func (a *Agent) handleCandidateNotify(body *xmlutil.Node) (*xmlutil.Node, error) {
	if body == nil {
		return nil, fmt.Errorf("CandidateNotify: missing body")
	}
	downName := body.AttrOr("down", "")
	go a.RunTakeover(downName) // verification happens inside
	return xmlutil.NewNode("Noted"), nil
}

// handleVerifyRequest: a member independently verifies that the super-peer
// is unavailable and that the candidate outranks it, then acknowledges.
func (a *Agent) handleVerifyRequest(body *xmlutil.Node) (*xmlutil.Node, error) {
	if body == nil {
		return nil, fmt.Errorf("VerifyRequest: missing body")
	}
	candRank, _ := strconv.ParseUint(body.AttrOr("rank", "0"), 10, 64)
	candName := body.AttrOr("candidate", "")
	a.mu.Lock()
	view := a.view.Clone()
	a.mu.Unlock()
	if view.SuperPeer.IsZero() {
		return nil, fmt.Errorf("VerifyRequest: no group assigned")
	}
	if body.AttrOr("down", "") != view.SuperPeer.Name {
		return nil, fmt.Errorf("VerifyRequest: %q is not my super-peer", body.AttrOr("down", ""))
	}
	// A candidate arguing from an older view (it missed an election or a
	// takeover we already installed) must first catch up; acknowledging it
	// would let the stale side of a partition rebuild itself.
	if ep, err := strconv.ParseUint(body.AttrOr("epoch", "0"), 10, 64); err == nil && ep < view.Epoch {
		return nil, fmt.Errorf("VerifyRequest: candidate view epoch %d is behind %d", ep, view.Epoch)
	}
	// Verify the super-peer really is unreachable.
	if a.Ping(view.SuperPeer) {
		return nil, fmt.Errorf("VerifyRequest: super-peer %s is alive", view.SuperPeer.Name)
	}
	// Verify the candidate is the highest-ranked surviving member.
	for _, s := range view.Group {
		if s.Name == view.SuperPeer.Name || s.Name == candName {
			continue
		}
		if s.Rank > candRank && a.Ping(s) {
			return nil, fmt.Errorf("VerifyRequest: %s outranks candidate", s.Name)
		}
	}
	ack := xmlutil.NewNode("Ack")
	ack.SetAttr("agree", "true")
	ack.SetAttr("name", a.self.Name)
	return ack, nil
}

func (a *Agent) handleTakeover(body *xmlutil.Node) (*xmlutil.Node, error) {
	v, err := ViewFromXML(body)
	if err != nil {
		return nil, err
	}
	if !v.Member(a.self.Name) {
		return nil, fmt.Errorf("Takeover: not my group")
	}
	if !a.setView(v) {
		return nil, fmt.Errorf("Takeover: view (epoch %d) is older than the installed one", v.Epoch)
	}
	return xmlutil.NewNode("Accepted"), nil
}

// handleViewStatus reports this agent's current view, role and epoch. It
// is the probe behind split-brain detection (CheckRivals) and the
// `glarectl status` operator view.
func (a *Agent) handleViewStatus(*xmlutil.Node) (*xmlutil.Node, error) {
	a.mu.Lock()
	v := a.view.Clone()
	role := a.role
	skew := a.skewSource
	a.mu.Unlock()
	n := v.ToXML()
	n.SetAttr("role", role.String())
	n.SetAttr("name", a.self.Name)
	if skew != nil {
		peer, off := skew()
		n.SetAttr("skewMs", fmt.Sprintf("%d", off.Milliseconds()))
		n.SetAttr("skewPeer", peer)
	}
	return n, nil
}

// handleRejoin is the winning side of a split-brain heal: a rival
// super-peer discovered us at a higher (epoch, rank) and abdicates,
// handing over its last view. We merge the two groups, bump the epoch past
// both sides and broadcast the merged view — which the abdicating
// super-peer and its members accept because it out-fences theirs.
func (a *Agent) handleRejoin(body *xmlutil.Node) (*xmlutil.Node, error) {
	loser, err := ViewFromXML(body)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	role := a.role
	cur := a.view.Clone()
	a.mu.Unlock()
	if role != RoleSuperPeer {
		return nil, fmt.Errorf("Rejoin: %s is not a super-peer", a.self.Name)
	}
	merged := MergeViews(cur, loser)
	if !a.setView(merged) {
		return nil, fmt.Errorf("Rejoin: merged view lost against a newer install")
	}
	a.broadcastView(merged)
	resp := xmlutil.NewNode("Merged")
	resp.SetAttr("epoch", strconv.FormatUint(merged.Epoch, 10))
	return resp, nil
}

// DetectAndRecover is the member-side failure path: if the super-peer has
// missed suspicionK consecutive probes, compute the ranks of the surviving
// members and notify the highest-ranked *reachable* one (or run the
// takeover directly if that is us). It reports whether recovery was
// initiated; below the suspicion threshold a missed probe only raises
// suspicion.
func (a *Agent) DetectAndRecover() (bool, error) {
	view := a.View()
	if view.SuperPeer.IsZero() || view.SuperPeer.Name == a.self.Name {
		return false, nil
	}
	if a.Ping(view.SuperPeer) {
		a.mu.Lock()
		a.suspicion = 0
		a.mu.Unlock()
		return false, nil
	}
	a.mu.Lock()
	a.suspicion++
	tripped := a.suspicion >= a.suspicionK
	if tripped {
		a.suspicion = 0
	}
	a.mu.Unlock()
	if !tripped {
		return false, nil
	}
	survivors := make([]SiteInfo, 0, len(view.Group))
	for _, s := range view.Group {
		if s.Name != view.SuperPeer.Name {
			survivors = append(survivors, s)
		}
	}
	ranked := RankSites(survivors)
	if len(ranked) == 0 {
		return false, fmt.Errorf("superpeer: no survivors in group")
	}
	a.recoveries.Inc()
	// Walk the ranking and hand the candidacy to the first survivor that
	// answers: under a partition the globally highest-ranked member may be
	// on the other side, and recovery must make do with who is reachable.
	note := xmlutil.NewNode("SuperPeerDown")
	note.SetAttr("down", view.SuperPeer.Name)
	for _, s := range ranked {
		if s.Name == a.self.Name {
			return true, a.RunTakeover(view.SuperPeer.Name)
		}
		if _, err := a.client.Call(s.PeerURL(), "CandidateNotify", note.Clone()); err == nil {
			return true, nil
		}
	}
	return false, fmt.Errorf("superpeer: no reachable takeover candidate in group")
}

// RunTakeover is the candidate-side protocol: (a) verify the super-peer is
// down, (b) verify our own rank, (c) collect verification acks from every
// member; a simple majority confirms and we take over.
func (a *Agent) RunTakeover(downName string) error {
	view := a.View()
	if view.SuperPeer.IsZero() || view.SuperPeer.Name != downName {
		return fmt.Errorf("superpeer: %q is not the current super-peer", downName)
	}
	if a.Ping(view.SuperPeer) {
		return fmt.Errorf("superpeer: %s is alive, aborting takeover", downName)
	}
	survivors := make([]SiteInfo, 0, len(view.Group))
	for _, s := range view.Group {
		if s.Name != downName {
			survivors = append(survivors, s)
		}
	}
	// We may proceed only if every survivor ranked above us is itself
	// unreachable — the same reachability rule the members apply when
	// verifying. Under a partition this lets the best-ranked member of
	// each side stand, and the epoch fence arbitrates after the heal.
	ranked := RankSites(survivors)
	eligible := false
	for _, s := range ranked {
		if s.Name == a.self.Name {
			eligible = true
			break
		}
		if a.Ping(s) {
			return fmt.Errorf("superpeer: %s outranks %s and is alive", s.Name, a.self.Name)
		}
	}
	if !eligible {
		return fmt.Errorf("superpeer: %s is not in the surviving group", a.self.Name)
	}
	// Collect verification acks from the other members.
	req := xmlutil.NewNode("Verify")
	req.SetAttr("down", downName)
	req.SetAttr("candidate", a.self.Name)
	req.SetAttr("rank", strconv.FormatUint(a.self.Rank, 10))
	req.SetAttr("epoch", strconv.FormatUint(view.Epoch, 10))
	acks := 1 // our own vote
	for _, s := range survivors {
		if s.Name == a.self.Name {
			continue
		}
		if resp, err := a.client.Call(s.PeerURL(), "VerifyRequest", req.Clone()); err == nil &&
			resp != nil && resp.AttrOr("agree", "") == "true" {
			acks++
		}
	}
	if acks*2 <= len(survivors) {
		return fmt.Errorf("superpeer: only %d/%d acknowledgements, no majority", acks, len(survivors))
	}
	// Build the new view: we are the super-peer; the super-group swaps the
	// failed peer for us.
	newSupers := make([]SiteInfo, 0, len(view.SuperPeers))
	for _, s := range view.SuperPeers {
		if s.Name == downName {
			newSupers = append(newSupers, a.self)
		} else {
			newSupers = append(newSupers, s)
		}
	}
	newView := View{Epoch: view.Epoch + 1, Group: survivors, SuperPeer: a.self, SuperPeers: newSupers, ReplicaK: view.ReplicaK}
	a.takeovers.Inc()
	if !a.setView(newView) {
		return fmt.Errorf("superpeer: takeover view lost against a newer install")
	}
	a.broadcastView(newView)
	return nil
}

// broadcastView pushes an installed view to every other group member,
// retrying each failed send once. Failures are counted in
// glare_superpeer_view_propagate_failures_total (per attempt), so members
// that silently missed a view change are at least observable.
func (a *Agent) broadcastView(v View) {
	for _, s := range v.Group {
		if s.Name == a.self.Name {
			continue
		}
		if _, err := a.client.Call(s.PeerURL(), "Takeover", v.ToXML()); err == nil {
			continue
		}
		a.propagateFails.Inc()
		if _, err := a.client.Call(s.PeerURL(), "Takeover", v.ToXML()); err != nil {
			a.propagateFails.Inc()
		}
	}
}

// CheckRivals is the super-peer-side split-brain probe: ask every site in
// our view (group members and fellow super-peers) for its ViewStatus; if
// any of them follows a *different* super-peer for an overlapping group,
// one of the two reigns must end. The loser by (epoch, rank, name)
// abdicates: if that is us, we hand our view to the winner's Rejoin and
// step down when its merged broadcast arrives; if that is them, we merge
// their group into ours and broadcast. Reports whether a heal happened.
func (a *Agent) CheckRivals() (bool, error) {
	if a.Role() != RoleSuperPeer || a.client == nil {
		return false, nil
	}
	view := a.View()
	probed := map[string]bool{a.self.Name: true}
	for _, s := range append(append([]SiteInfo(nil), view.Group...), view.SuperPeers...) {
		if probed[s.Name] {
			continue
		}
		probed[s.Name] = true
		resp, err := a.client.Probe(s.PeerURL(), "ViewStatus", nil, a.pingTimeout)
		if err != nil || resp == nil || resp.AttrOr("superPeer", "") == "" {
			continue
		}
		rv, err := ViewFromXML(resp)
		if err != nil || rv.SuperPeer.Name == a.self.Name {
			continue
		}
		// A different super-peer is only a rival if our groups overlap;
		// disjoint groups are just the normal multi-group overlay.
		overlap := false
		for _, m := range rv.Group {
			if view.Member(m.Name) {
				overlap = true
				break
			}
		}
		if !overlap {
			continue
		}
		a.rivals.Inc()
		if view.OlderThan(rv) {
			// They out-fence us: abdicate by asking their super-peer to
			// absorb our group. Our own step-down happens when the merged
			// view is broadcast back to us.
			if _, err := a.client.Call(rv.SuperPeer.PeerURL(), "Rejoin", view.ToXML()); err != nil {
				return false, fmt.Errorf("superpeer: rejoining %s: %w", rv.SuperPeer.Name, err)
			}
			return true, nil
		}
		// We out-fence them: absorb their group and broadcast, which
		// forces the rival super-peer down via the epoch fence.
		merged := MergeViews(view, rv)
		if !a.setView(merged) {
			return false, fmt.Errorf("superpeer: merged view lost against a newer install")
		}
		a.broadcastView(merged)
		return true, nil
	}
	return false, nil
}

// StartMonitor launches periodic overlay maintenance until stop is closed:
// members probe their super-peer's liveness (DetectAndRecover), while
// super-peers probe for rival reigns left behind by a healed partition
// (CheckRivals). interval is real time.
func (a *Agent) StartMonitor(interval time.Duration, stop <-chan struct{}) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if a.Role() == RoleSuperPeer {
					_, _ = a.CheckRivals()
				} else {
					_, _ = a.DetectAndRecover()
				}
			}
		}
	}()
}
