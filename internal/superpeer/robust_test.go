package superpeer

import (
	"testing"
	"time"

	"glare/internal/faultinject"
	"glare/internal/transport"
)

// TestPingUsesShortTimeout verifies a liveness probe gives up on a hung
// site long before the client's regular call timeout would.
func TestPingUsesShortTimeout(t *testing.T) {
	h := newHarness(t, 2)
	cli := transport.NewClient(nil) // 10s regular call timeout
	inj := faultinject.New(42)
	cli.WrapTransport(inj.Wrap)
	a := NewAgent(h.infos[0], cli, nil)
	a.SetPingTimeout(50 * time.Millisecond)

	dest := destOfURL(h.infos[1].BaseURL)
	inj.BlackHole(dest)

	start := time.Now()
	if a.Ping(h.infos[1]) {
		t.Fatal("ping of a black-holed site reported alive")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ping took %v; the independent ping timeout did not apply", elapsed)
	}
}

// TestPingSharesBreakerState verifies an open breaker makes later pings
// fail instantly without re-probing the dead site.
func TestPingSharesBreakerState(t *testing.T) {
	h := newHarness(t, 2)
	cli := transport.NewClient(nil)
	cli.SetBreaker(transport.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute})
	inj := faultinject.New(42)
	cli.WrapTransport(inj.Wrap)
	a := NewAgent(h.infos[0], cli, nil)
	a.SetPingTimeout(50 * time.Millisecond)

	dest := destOfURL(h.infos[1].BaseURL)
	inj.BlackHole(dest)

	if a.Ping(h.infos[1]) {
		t.Fatal("first ping should fail")
	}
	if got := inj.Stats(dest).BlackHoled; got != 1 {
		t.Fatalf("black-holed = %d, want 1", got)
	}
	if st := cli.BreakerState(h.infos[1].PeerURL()); st != transport.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}

	// The second ping is rejected by the breaker before touching the
	// network: the injector sees no new traffic.
	start := time.Now()
	if a.Ping(h.infos[1]) {
		t.Fatal("second ping should fail")
	}
	if elapsed := time.Since(start); elapsed > 25*time.Millisecond {
		t.Fatalf("breaker-rejected ping took %v; expected instant failure", elapsed)
	}
	if got := inj.Stats(dest).BlackHoled; got != 1 {
		t.Fatalf("black-holed = %d, want 1 (breaker must absorb the re-probe)", got)
	}
}

// destOfURL strips the scheme off a base URL, yielding the host:port key
// the injector matches on.
func destOfURL(base string) string {
	for i := 0; i+2 < len(base); i++ {
		if base[i] == ':' && base[i+1] == '/' && base[i+2] == '/' {
			return base[i+3:]
		}
	}
	return base
}
