// Package telemetry is GLARE's grid-wide observability subsystem: a
// lock-cheap metrics registry (counters, gauges, latency histograms), a
// lightweight tracer whose correlation IDs propagate across service hops
// through the transport envelope, and the writers behind each site's
// admin endpoints (/metrics, /healthz, /tracez).
//
// The paper evaluates GLARE through black-box measurements only; this
// package gives a live grid white-box visibility into the same hot paths
// (RDM request handling, registry lookups, cache revival, super-peer
// elections) without perturbing them: every instrument is a few atomic
// operations on the fast path, and all types are nil-safe so call sites
// need no "is telemetry on?" guards.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name dimension of an instrument (rendered Prometheus-style
// as name{key="value",...} in the text exposition).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// DecFloor subtracts one but never below zero. It reports whether the
// decrement was applied (false means the gauge was already at or below
// zero and was left untouched — the clamp case).
func (g *Gauge) DecFloor() bool {
	if g == nil {
		return false
	}
	for {
		cur := g.v.Load()
		if cur <= 0 {
			return false
		}
		if g.v.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histogram bucket upper bounds (inclusive), chosen for service latencies:
// sub-millisecond loopback RPCs up to multi-second on-demand deployments.
var bucketBounds = [...]time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram accumulates duration observations into fixed exponential
// buckets plus exact count/sum/min/max. The zero value is ready to use; a
// nil *Histogram is a no-op. All operations are atomic — no locks on the
// observation path.
type Histogram struct {
	counts [len(bucketBounds) + 1]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; 0 means "no observation yet"
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for ; i < len(bucketBounds); i++ {
		if d <= bucketBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= int64(d) {
			break
		}
		v := int64(d)
		if v == 0 {
			v = 1 // preserve the "unset" sentinel for real zero observations
		}
		if h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= int64(d) {
			break
		}
		if h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile estimates the q-quantile (0..1) by linear interpolation inside
// the owning bucket. Estimates are capped at Max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if seen+c > rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			hi := h.Max()
			if i < len(bucketBounds) {
				hi = bucketBounds[i]
			}
			if c == 0 {
				return hi
			}
			frac := float64(rank-seen+1) / float64(c)
			est := lo + time.Duration(frac*float64(hi-lo))
			if m := h.Max(); est > m {
				est = m
			}
			return est
		}
		seen += c
	}
	return h.Max()
}

// series is one named instrument registered in a Registry.
type series struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named instrument registry. Instrument lookup takes a
// short read lock; the returned instruments are lock-free, so hot paths
// should hold on to the pointer. A nil *Registry hands out nil
// instruments, which are no-ops.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func (r *Registry) lookup(name string, labels []Label) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s == nil {
		s = &series{name: name, labels: append([]Label(nil), labels...)}
		r.series[key] = s
	}
	return s
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = new(Histogram)
	}
	return s.h
}

func renderName(name string, labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// SeriesName renders the canonical exposition name for an instrument:
// the bare name, or name{k="v",...} when labelled.
func SeriesName(name string, labels ...Label) string {
	return renderName(name, labels)
}

// SampleKind tells a Snapshot consumer which instrument a sample came
// from.
type SampleKind uint8

const (
	KindCounter SampleKind = iota
	KindGauge
	KindHistogram
)

// HistogramSummary is a histogram's point-in-time digest.
type HistogramSummary struct {
	Count uint64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	Q50   time.Duration
	Q90   time.Duration
	Q99   time.Duration
}

// Sample is one instrument's state inside a Snapshot. Value carries the
// counter total or gauge level; histograms carry a summary instead.
type Sample struct {
	Name      string
	Labels    []Label
	Kind      SampleKind
	Value     float64
	Histogram *HistogramSummary
}

// SeriesName renders the sample's exposition name including labels.
func (s Sample) SeriesName() string { return renderName(s.Name, s.Labels) }

// Snapshot returns every registered instrument as structured samples,
// sorted by series key, so programmatic consumers (the history sampler,
// tests) never have to parse the text exposition. A series that carries
// several instruments yields one sample per instrument, counter first.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	all := make(map[string]*series, len(r.series))
	for k, s := range r.series {
		all[k] = s
	}
	r.mu.RUnlock()
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		s := all[k]
		if s.c != nil {
			out = append(out, Sample{Name: s.name, Labels: s.labels, Kind: KindCounter, Value: float64(s.c.Value())})
		}
		if s.g != nil {
			out = append(out, Sample{Name: s.name, Labels: s.labels, Kind: KindGauge, Value: float64(s.g.Value())})
		}
		if s.h != nil {
			h := s.h
			out = append(out, Sample{Name: s.name, Labels: s.labels, Kind: KindHistogram, Histogram: &HistogramSummary{
				Count: h.Count(),
				Sum:   h.Sum(),
				Min:   h.Min(),
				Max:   h.Max(),
				Mean:  h.Mean(),
				Q50:   h.Quantile(0.5),
				Q90:   h.Quantile(0.9),
				Q99:   h.Quantile(0.99),
			}})
		}
	}
	return out
}

// WriteText renders every registered instrument in a Prometheus-style
// text exposition, sorted by series name for stable scraping. Histograms
// are rendered as summary series: _count, _sum_ms, and quantile lines.
// It is a pure renderer over Snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.SeriesName(), uint64(s.Value)); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.SeriesName(), int64(s.Value)); err != nil {
				return err
			}
		case KindHistogram:
			h := s.Histogram
			fmt.Fprintf(w, "%s %d\n", renderName(s.Name+"_count", s.Labels), h.Count)
			fmt.Fprintf(w, "%s %.3f\n", renderName(s.Name+"_sum_ms", s.Labels), ms(h.Sum))
			for _, q := range []struct {
				tag string
				v   time.Duration
			}{{"0.5", h.Q50}, {"0.9", h.Q90}, {"0.99", h.Q99}} {
				fmt.Fprintf(w, "%s %.3f\n",
					renderName(s.Name+"_ms", s.Labels, L("quantile", q.tag)), ms(q.v))
			}
			if _, err := fmt.Fprintf(w, "%s %.3f\n",
				renderName(s.Name+"_ms", s.Labels, L("quantile", "max")), ms(h.Max)); err != nil {
				return err
			}
		}
	}
	return nil
}
