package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestQuantileEmptyHistogram: no observations means every quantile is 0,
// on both nil and zero-value histograms.
func TestQuantileEmptyHistogram(t *testing.T) {
	var nilH *Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if v := nilH.Quantile(q); v != 0 {
			t.Fatalf("nil histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
	h := new(Histogram)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
}

// TestQuantileExtremesAndClamping: q=0 stays at or below every other
// quantile, q=1 equals Max, and out-of-range q clamps rather than panics.
func TestQuantileExtremesAndClamping(t *testing.T) {
	h := new(Histogram)
	for _, d := range []time.Duration{800 * time.Microsecond, 30 * time.Millisecond, 400 * time.Millisecond} {
		h.Observe(d)
	}
	q0, q1 := h.Quantile(0), h.Quantile(1)
	if q0 <= 0 || q0 > time.Millisecond {
		t.Fatalf("Quantile(0) = %v, want inside the first occupied bucket", q0)
	}
	if q1 != h.Max() {
		t.Fatalf("Quantile(1) = %v, want Max %v", q1, h.Max())
	}
	if h.Quantile(-3) != q0 || h.Quantile(7) != q1 {
		t.Fatalf("out-of-range q did not clamp: %v / %v", h.Quantile(-3), h.Quantile(7))
	}
}

// TestQuantileSingleBucket: with every observation in one bucket, all
// quantiles interpolate inside that bucket and cap at the true Max.
func TestQuantileSingleBucket(t *testing.T) {
	h := new(Histogram)
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond) // bucket (2ms, 5ms]
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		v := h.Quantile(q)
		if v <= 2*time.Millisecond || v > 3*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want within (2ms, Max=3ms]", q, v)
		}
	}
	if h.Quantile(1) != 3*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want exactly Max", h.Quantile(1))
	}
}

// TestQuantileAboveTopBucket: observations beyond the top bucket bound
// land in the overflow bucket, whose upper edge is the live Max — so the
// estimate is the real maximum, not the 10s bucket ceiling.
func TestQuantileAboveTopBucket(t *testing.T) {
	h := new(Histogram)
	h.Observe(30 * time.Second)
	for _, q := range []float64{0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 30*time.Second {
			t.Fatalf("Quantile(%v) = %v, want 30s (capped at Max)", q, v)
		}
	}
	// Mixed: one in-range and one overflow observation; the top quantile
	// must still report the overflow value.
	h2 := new(Histogram)
	h2.Observe(time.Millisecond)
	h2.Observe(25 * time.Second)
	if v := h2.Quantile(1); v != 25*time.Second {
		t.Fatalf("mixed Quantile(1) = %v, want 25s", v)
	}
}

// TestSnapshotStructure: Snapshot returns typed samples for every
// instrument, sorted, with labels intact — and WriteText (now rebased on
// Snapshot) renders exactly those series.
func TestSnapshotStructure(t *testing.T) {
	r := NewRegistry()
	r.Counter("glare_reqs_total", L("op", "Get")).Add(7)
	r.Gauge("glare_active").Set(-2)
	r.Histogram("glare_latency", L("op", "Get")).Observe(4 * time.Millisecond)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d samples, want 3: %+v", len(snap), snap)
	}
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.SeriesName()] = s
	}
	c, ok := byName[`glare_reqs_total{op="Get"}`]
	if !ok || c.Kind != KindCounter || c.Value != 7 {
		t.Fatalf("counter sample wrong: %+v", c)
	}
	g, ok := byName["glare_active"]
	if !ok || g.Kind != KindGauge || g.Value != -2 {
		t.Fatalf("gauge sample wrong: %+v", g)
	}
	h, ok := byName[`glare_latency{op="Get"}`]
	if !ok || h.Kind != KindHistogram || h.Histogram == nil {
		t.Fatalf("histogram sample wrong: %+v", h)
	}
	if h.Histogram.Count != 1 || h.Histogram.Sum != 4*time.Millisecond || h.Histogram.Q99 == 0 {
		t.Fatalf("histogram summary wrong: %+v", h.Histogram)
	}
	if SeriesName("glare_latency_count", h.Labels...) != `glare_latency_count{op="Get"}` {
		t.Fatalf("SeriesName derived rendering wrong")
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`glare_reqs_total{op="Get"} 7`,
		"glare_active -2",
		`glare_latency_count{op="Get"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Fatalf("WriteText missing %q:\n%s", want, b.String())
		}
	}
}

// TestHealthSourceDigest: WriteHealth reflects the installed health
// source and flips status to "alerting" when alerts fire.
func TestHealthSourceDigest(t *testing.T) {
	tel := New("alpha")
	var b strings.Builder
	if err := tel.WriteHealth(&b, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"status":"ok"`, `"quarantined":0`, `"open_breakers":0`, `"firing_alerts":0`} {
		if !strings.Contains(out, want) {
			t.Fatalf("default healthz missing %q: %s", want, out)
		}
	}
	tel.SetHealthSource(func() Health {
		return Health{Quarantined: 1, OpenBreakers: 2, FiringAlerts: 3}
	})
	b.Reset()
	if err := tel.WriteHealth(&b, 2); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{`"status":"alerting"`, `"quarantined":1`, `"open_breakers":2`, `"firing_alerts":3`} {
		if !strings.Contains(out, want) {
			t.Fatalf("sourced healthz missing %q: %s", want, out)
		}
	}
}
