package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("op", "Get"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	if c2 := r.Counter("reqs_total", L("op", "Get")); c2 != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if c3 := r.Counter("reqs_total", L("op", "Put")); c3 == c {
		t.Fatal("different labels must return a different counter")
	}

	g := r.Gauge("queue")
	g.Set(3)
	g.Dec()
	if g.Value() != 2 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestGaugeDecFloorClampsAtZero(t *testing.T) {
	var g Gauge
	g.Inc()
	if !g.DecFloor() {
		t.Fatal("first DecFloor must apply")
	}
	if g.DecFloor() {
		t.Fatal("DecFloor at zero must clamp")
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d after clamp", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		r  *Registry
		tl *Telemetry
		tr *Tracer
	)
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(time.Second)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	sp := tl.StartSpan("op", nil)
	sp.SetNote("n")
	sp.End(nil)
	if id, _ := sp.Context(); id != "" {
		t.Fatal("nil span context must be empty")
	}
	if tr.StartSpan("op", nil) != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	tl.Counter("c").Add(3)
	if tl.Counter("c").Value() != 0 {
		t.Fatal("nil telemetry counter must read zero")
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 110*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Mean() != 22*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0.99); q > h.Max() {
		t.Fatalf("p99 %v exceeds max %v", q, h.Max())
	}
	if h.Quantile(1) > h.Max() {
		t.Fatal("p100 must not exceed max")
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Inc()
				r.Histogram("h").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 4000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if r.Gauge("g").Value() != 4000 {
		t.Fatalf("gauge = %d", r.Gauge("g").Value())
	}
	if r.Histogram("h").Count() != 4000 {
		t.Fatalf("histogram = %d", r.Histogram("h").Count())
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("glare_reqs_total", L("service", "GLARE"), L("op", "GetDeployments")).Add(7)
	r.Gauge("glare_run_queue").Set(2)
	r.Histogram("glare_latency", L("op", "Get")).Observe(3 * time.Millisecond)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`glare_reqs_total{service="GLARE",op="GetDeployments"} 7`,
		"glare_run_queue 2",
		`glare_latency_count{op="Get"} 1`,
		`glare_latency_sum_ms{op="Get"} 3.000`,
		`glare_latency_ms{op="Get",quantile="max"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSpanParentChildAndRemoteLinkage(t *testing.T) {
	tel := New("site-a")
	root := tel.StartSpan("rdm.GetDeployments", nil)
	child := tel.StartSpan("rdm.resolveConcrete", root)
	if child.TraceID != root.TraceID {
		t.Fatal("child must join the parent's trace")
	}
	if child.ParentID != root.SpanID {
		t.Fatal("child must link to the parent span")
	}
	// Remote hop: a second site extracts the propagated context.
	remote := New("site-b")
	traceID, spanID := child.Context()
	srv := remote.StartRemote("srv:GLARE.ConcreteOf", traceID, spanID)
	if srv.TraceID != root.TraceID || srv.ParentID != child.SpanID {
		t.Fatalf("remote span not linked: %+v", srv)
	}
	srv.End(nil)
	child.End(nil)
	root.End(nil)
	recent := tel.Tracer().Recent(0)
	if len(recent) != 2 {
		t.Fatalf("site-a retained %d spans", len(recent))
	}
	if recent[0].Name != "rdm.GetDeployments" {
		t.Fatalf("newest first, got %s", recent[0].Name)
	}
	var b strings.Builder
	if err := remote.WriteTraces(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace="+root.TraceID) {
		t.Fatalf("tracez missing propagated trace id:\n%s", b.String())
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < DefaultSpanRing+10; i++ {
		tr.StartSpan("s", nil).End(nil)
	}
	if got := len(tr.Recent(0)); got != DefaultSpanRing {
		t.Fatalf("retained %d spans", got)
	}
	if tr.Total() != DefaultSpanRing+10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestHealthz(t *testing.T) {
	tel := New("agrid01")
	var b strings.Builder
	if err := tel.WriteHealth(&b, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"status":"ok"`) || !strings.Contains(out, `"site":"agrid01"`) {
		t.Fatalf("healthz = %s", out)
	}
}
