package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one timed unit of work inside a trace. Spans on the same site
// link to their in-process parent; spans created for an incoming remote
// call link to the caller's span through the envelope trace header, so a
// single correlation (trace) ID spans every site a request touches.
//
// A nil *Span is a valid no-op, so instrumented code never needs to check
// whether tracing is enabled.
type Span struct {
	tracer   *Tracer
	Name     string
	TraceID  string
	SpanID   string
	ParentID string
	Note     string
	// start is a real (monotonic) reading used only to measure Duration;
	// wall is the owning site's clock reading shown as the record's Start,
	// so /tracez timestamps follow injected virtual time and exhibit the
	// site's clock skew instead of hiding it.
	start time.Time
	wall  time.Time
}

// SetNote attaches a short free-form annotation (e.g. the activity type
// being resolved) shown in the /tracez dump. Call before sharing the span
// across goroutines.
func (sp *Span) SetNote(note string) {
	if sp != nil {
		sp.Note = note
	}
}

// Context returns the propagation fields (trace ID, span ID); empty for a
// nil span.
func (sp *Span) Context() (traceID, spanID string) {
	if sp == nil {
		return "", ""
	}
	return sp.TraceID, sp.SpanID
}

// End finishes the span, recording it (with err, if any) into the
// tracer's recent-span ring.
func (sp *Span) End(err error) {
	if sp == nil || sp.tracer == nil {
		return
	}
	rec := SpanRecord{
		Name:     sp.Name,
		TraceID:  sp.TraceID,
		SpanID:   sp.SpanID,
		ParentID: sp.ParentID,
		Note:     sp.Note,
		Start:    sp.wall,
		Duration: time.Since(sp.start),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	sp.tracer.record(rec)
}

// SpanRecord is one finished span as kept by the tracer.
type SpanRecord struct {
	Name     string
	TraceID  string
	SpanID   string
	ParentID string
	Note     string
	Err      string
	Start    time.Time
	Duration time.Duration
}

// DefaultSpanRing bounds how many finished spans a tracer retains.
const DefaultSpanRing = 512

// Tracer creates spans and retains a bounded ring of recently finished
// ones for the /tracez endpoint. A nil *Tracer hands out nil spans.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
	// now supplies span wall timestamps; nil falls back to time.Now.
	// Durations always come from real monotonic readings regardless.
	now func() time.Time
}

// SetClock routes span wall timestamps through the given reading (the
// owning site's — possibly virtual, possibly skewed — clock). Durations
// keep using real monotonic time: latency is a measurement, not a claim
// about what time it is.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) wallNow() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	if now == nil {
		return time.Now()
	}
	return now()
}

// NewTracer creates a tracer retaining up to DefaultSpanRing spans.
func NewTracer() *Tracer {
	return &Tracer{ring: make([]SpanRecord, 0, DefaultSpanRing)}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: time-derived, still unique enough for correlation.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// StartSpan opens a span. With a non-nil parent the span joins the
// parent's trace; otherwise it starts a new trace with a fresh
// correlation ID.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t, Name: name, SpanID: newID(), start: time.Now(), wall: t.wallNow()}
	if parent != nil {
		sp.TraceID = parent.TraceID
		sp.ParentID = parent.SpanID
	} else {
		sp.TraceID = newID()
	}
	return sp
}

// StartRemote opens a server-side span for an incoming call carrying the
// given propagated trace context. Empty traceID starts a fresh trace (the
// caller did not propagate one).
func (t *Tracer) StartRemote(name, traceID, parentSpanID string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t, Name: name, SpanID: newID(), start: time.Now(), wall: t.wallNow()}
	if traceID != "" {
		sp.TraceID = traceID
		sp.ParentID = parentSpanID
	} else {
		sp.TraceID = newID()
	}
	return sp
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		return
	}
	if cap(t.ring) == 0 {
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % cap(t.ring)
}

// Recent returns up to n finished spans, newest first. n <= 0 returns
// everything retained.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	// Newest entry is just before t.next once the ring has wrapped,
	// otherwise it is the last appended element.
	for i := 0; i < n; i++ {
		var idx int
		if size < cap(t.ring) {
			idx = size - 1 - i
		} else {
			idx = ((t.next-1-i)%size + size) % size
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Total returns how many spans have finished since start.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteText dumps the recent spans, newest first, one line per span.
func (t *Tracer) WriteText(w io.Writer, n int) error {
	if t == nil {
		return nil
	}
	recent := t.Recent(n)
	if _, err := fmt.Fprintf(w, "tracez spans=%d retained=%d\n", t.Total(), len(recent)); err != nil {
		return err
	}
	for _, r := range recent {
		parent := r.ParentID
		if parent == "" {
			parent = "-"
		}
		note := r.Note
		if note == "" {
			note = "-"
		}
		errStr := r.Err
		if errStr == "" {
			errStr = "-"
		}
		if _, err := fmt.Fprintf(w, "%s %10.3fms %-34s trace=%s span=%s parent=%s note=%s err=%s\n",
			r.Start.Format(time.RFC3339Nano),
			float64(r.Duration)/float64(time.Millisecond),
			r.Name, r.TraceID, r.SpanID, parent, note, errStr); err != nil {
			return err
		}
	}
	return nil
}
