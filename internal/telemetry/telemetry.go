package telemetry

import (
	"fmt"
	"io"
	"time"
)

// Telemetry bundles one site's metrics registry and tracer. Every method
// is safe on a nil receiver (no-op or zero result), so components accept
// a *Telemetry without caring whether observability is enabled.
type Telemetry struct {
	site     string
	start    time.Time
	registry *Registry
	tracer   *Tracer
}

// New creates a telemetry bundle for a site.
func New(site string) *Telemetry {
	return &Telemetry{
		site:     site,
		start:    time.Now(),
		registry: NewRegistry(),
		tracer:   NewTracer(),
	}
}

// Site returns the owning site's name.
func (t *Telemetry) Site() string {
	if t == nil {
		return ""
	}
	return t.site
}

// Uptime reports how long this bundle has existed.
func (t *Telemetry) Uptime() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Registry returns the metrics registry (nil when t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.registry
}

// Tracer returns the tracer (nil when t is nil).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counter is shorthand for Registry().Counter.
func (t *Telemetry) Counter(name string, labels ...Label) *Counter {
	return t.Registry().Counter(name, labels...)
}

// Gauge is shorthand for Registry().Gauge.
func (t *Telemetry) Gauge(name string, labels ...Label) *Gauge {
	return t.Registry().Gauge(name, labels...)
}

// Histogram is shorthand for Registry().Histogram.
func (t *Telemetry) Histogram(name string, labels ...Label) *Histogram {
	return t.Registry().Histogram(name, labels...)
}

// StartSpan is shorthand for Tracer().StartSpan.
func (t *Telemetry) StartSpan(name string, parent *Span) *Span {
	return t.Tracer().StartSpan(name, parent)
}

// StartRemote is shorthand for Tracer().StartRemote.
func (t *Telemetry) StartRemote(name, traceID, parentSpanID string) *Span {
	return t.Tracer().StartRemote(name, traceID, parentSpanID)
}

// WriteMetrics renders the /metrics exposition.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "")
		return err
	}
	return t.registry.WriteText(w)
}

// WriteHealth renders the /healthz body.
func (t *Telemetry) WriteHealth(w io.Writer, services int) error {
	if t == nil {
		_, err := io.WriteString(w, `{"status":"ok"}`+"\n")
		return err
	}
	_, err := fmt.Fprintf(w,
		`{"status":"ok","site":%q,"uptime_seconds":%.1f,"services":%d,"spans":%d}`+"\n",
		t.site, t.Uptime().Seconds(), services, t.Tracer().Total())
	return err
}

// WriteTraces renders the /tracez body.
func (t *Telemetry) WriteTraces(w io.Writer, n int) error {
	if t == nil {
		_, err := io.WriteString(w, "tracez spans=0 retained=0\n")
		return err
	}
	return t.tracer.WriteText(w, n)
}
