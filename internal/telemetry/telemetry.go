package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Health is the liveness digest a site reports on /healthz beyond bare
// uptime: how many application types sit in deploy quarantine, how many
// circuit breakers to peers are open, and how many alert rules fire.
type Health struct {
	Quarantined  int
	OpenBreakers int
	FiringAlerts int
}

// Telemetry bundles one site's metrics registry and tracer. Every method
// is safe on a nil receiver (no-op or zero result), so components accept
// a *Telemetry without caring whether observability is enabled.
type Telemetry struct {
	site     string
	start    time.Time
	registry *Registry
	tracer   *Tracer

	healthMu sync.Mutex
	healthFn func() Health
}

// New creates a telemetry bundle for a site.
func New(site string) *Telemetry {
	return &Telemetry{
		site:     site,
		start:    time.Now(),
		registry: NewRegistry(),
		tracer:   NewTracer(),
	}
}

// SetClock routes trace-span wall timestamps through the given reading —
// the owning site's injected (possibly virtual, possibly skewed) clock —
// so /tracez shows grid time, not the host's. Uptime and span durations
// stay on real time: both are measurements of elapsed host time.
func (t *Telemetry) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.tracer.SetClock(now)
}

// Site returns the owning site's name.
func (t *Telemetry) Site() string {
	if t == nil {
		return ""
	}
	return t.site
}

// Uptime reports how long this bundle has existed.
func (t *Telemetry) Uptime() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Registry returns the metrics registry (nil when t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.registry
}

// Tracer returns the tracer (nil when t is nil).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counter is shorthand for Registry().Counter.
func (t *Telemetry) Counter(name string, labels ...Label) *Counter {
	return t.Registry().Counter(name, labels...)
}

// Gauge is shorthand for Registry().Gauge.
func (t *Telemetry) Gauge(name string, labels ...Label) *Gauge {
	return t.Registry().Gauge(name, labels...)
}

// Histogram is shorthand for Registry().Histogram.
func (t *Telemetry) Histogram(name string, labels ...Label) *Histogram {
	return t.Registry().Histogram(name, labels...)
}

// StartSpan is shorthand for Tracer().StartSpan.
func (t *Telemetry) StartSpan(name string, parent *Span) *Span {
	return t.Tracer().StartSpan(name, parent)
}

// StartRemote is shorthand for Tracer().StartRemote.
func (t *Telemetry) StartRemote(name, traceID, parentSpanID string) *Span {
	return t.Tracer().StartRemote(name, traceID, parentSpanID)
}

// WriteMetrics renders the /metrics exposition.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "")
		return err
	}
	return t.registry.WriteText(w)
}

// SetHealthSource installs the callback WriteHealth consults for the
// quarantine/breaker/alert digest. The RDM service wires this at startup.
func (t *Telemetry) SetHealthSource(fn func() Health) {
	if t == nil {
		return
	}
	t.healthMu.Lock()
	t.healthFn = fn
	t.healthMu.Unlock()
}

// HealthSnapshot evaluates the installed health source (zero when none).
func (t *Telemetry) HealthSnapshot() Health {
	if t == nil {
		return Health{}
	}
	t.healthMu.Lock()
	fn := t.healthFn
	t.healthMu.Unlock()
	if fn == nil {
		return Health{}
	}
	return fn()
}

// WriteHealth renders the /healthz body. A site with firing alerts
// reports status "alerting" so load balancers and operators see trouble
// before it becomes an outage.
func (t *Telemetry) WriteHealth(w io.Writer, services int) error {
	if t == nil {
		_, err := io.WriteString(w, `{"status":"ok"}`+"\n")
		return err
	}
	h := t.HealthSnapshot()
	status := "ok"
	if h.FiringAlerts > 0 {
		status = "alerting"
	}
	_, err := fmt.Fprintf(w,
		`{"status":%q,"site":%q,"uptime_seconds":%.1f,"services":%d,"spans":%d,"quarantined":%d,"open_breakers":%d,"firing_alerts":%d}`+"\n",
		status, t.site, t.Uptime().Seconds(), services, t.Tracer().Total(),
		h.Quarantined, h.OpenBreakers, h.FiringAlerts)
	return err
}

// WriteTraces renders the /tracez body.
func (t *Telemetry) WriteTraces(w io.Writer, n int) error {
	if t == nil {
		_, err := io.WriteString(w, "tracez spans=0 retained=0\n")
		return err
	}
	return t.tracer.WriteText(w, n)
}
