// Package vo assembles a simulated Virtual Organization: N Grid sites on
// the loopback interface, each running the full per-site stack (transport
// container, Default Index, ATR, ADR, PeerService, GLARE RDM), wired into
// the GT4-style aggregation hierarchy with one community index, ready for
// super-peer election.
//
// This is the stand-in for the Austrian Grid testbed of the paper's
// evaluation: everything above the site substrate is the production code
// path — real HTTP(S) between sites, real registries, real elections.
package vo

import (
	"crypto/tls"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"glare/internal/cog"
	"glare/internal/epr"
	"glare/internal/faultinject"
	"glare/internal/gridftp"
	"glare/internal/gsi"
	"glare/internal/mds"
	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/workload"
)

// Options configures a VO build.
type Options struct {
	// Sites is the number of Grid sites (default 3).
	Sites int
	// Secure enables HTTPS with a VO-internal CA on every container.
	Secure bool
	// GroupSize is the super-peer group size (default superpeer default).
	GroupSize int
	// Clock is shared by all sites; nil means a fresh virtual clock.
	Clock simclock.Clock
	// CacheDisabled turns off RDM caches VO-wide (Fig. 12 config).
	CacheDisabled bool
	// CacheTTL overrides the cache TTL.
	CacheTTL time.Duration
	// ScanDelayPerEntry models remote registry processing per scanned
	// entry (see rdm.Config).
	ScanDelayPerEntry time.Duration
	// Costs overrides the Table 1 cost calibration.
	Costs rdm.DeployCosts
	// TransferCost configures direct GridFTP transfers.
	TransferCost gridftp.CostModel
	// CoG configures the JavaCoG path.
	CoG cog.Config
	// IndexCollapse configures the community index's overload behaviour;
	// zero disables it (keep it disabled unless reproducing Fig. 11).
	IndexCollapse mds.CollapseConfig
	// CallTimeout overrides the transport per-request timeout (zero uses
	// transport.DefaultCallTimeout).
	CallTimeout time.Duration
	// Retry overrides the per-site clients' retry policy; nil uses
	// transport.DefaultRetryPolicy.
	Retry *transport.RetryPolicy
	// Breaker overrides the per-site clients' circuit-breaker config; nil
	// uses transport.DefaultBreakerConfig.
	Breaker *transport.BreakerConfig
	// ChaosSeed, when nonzero, installs a deterministic fault injector on
	// every client so tests can drop, delay or black-hole traffic per
	// destination (see VO.Chaos).
	ChaosSeed int64
	// DataDir enables durable registry stores: each site journals its ATR,
	// ADR and lease mutations under DataDir/site-NN and replays them on
	// restart (see RestartSite). Empty keeps every site memory-only.
	DataDir string
	// StoreFsync is the durability fsync policy (default store.FsyncInterval).
	StoreFsync store.FsyncPolicy
	// Deploy tunes every site's deployment execution engine (concurrency,
	// queue depth, retry, quarantine); zero uses rdm.DefaultDeployLimits.
	Deploy rdm.DeployLimits
	// History tunes every site's round-robin telemetry history (sampling
	// step, retention, alert rules); the zero value enables defaults.
	History rdm.HistoryConfig
	// Admission overrides every site's overload admission controller
	// (per-class concurrency limits, queue depths, AIMD target); nil uses
	// transport.DefaultAdmissionConfig.
	Admission *transport.AdmissionConfig
	// AdmissionOff disables admission control VO-wide: every request is
	// executed immediately regardless of load (pre-PR-7 behaviour, and the
	// baseline for overload experiments).
	AdmissionOff bool
	// ReplicaK is the registry replication factor: every site's ATR/ADR/
	// lease mutations are journaled on ReplicaK group members (itself
	// included) and registrations acknowledge only after a write quorum.
	// Zero or one keeps replication off.
	ReplicaK int
	// CASBudget is each site's content-addressed artifact store byte
	// budget: zero selects the cas package default, negative disables the
	// artifact grid.
	CASBudget int64
}

// Node is one Grid site's full stack.
type Node struct {
	Site   *site.Site
	Server *transport.Server
	RDM    *rdm.Service
	Agent  *superpeer.Agent
	Index  *mds.Index
	Info   superpeer.SiteInfo
	Tel    *telemetry.Telemetry
	// Client is the site's own outbound transport client: its retry,
	// circuit-breaker and telemetry state belong to this caller, so a
	// destination one site has learned is dead is fast-failed by every
	// subsystem on that site (RDM resolution, heartbeats, takeover) while
	// other sites form their own opinion.
	Client *transport.Client
	// Deploy injects faults into this site's deployment steps. It survives
	// RestartSite, so a rule armed before a crash stays armed on the
	// rebuilt stack.
	Deploy *faultinject.DeployChaos
}

// VO is a running virtual organization.
type VO struct {
	Clock    simclock.Clock
	Repo     *site.Repo
	Resolver *workload.Resolver
	CA       *gsi.Authority
	// Client is the VO-wide admin client (protocol tests, glarectl-style
	// scrapes); each Node additionally owns a per-site client.
	Client    *transport.Client
	Nodes     []*Node
	Community *mds.Index
	// Chaos is the fault injector shared by every client; nil unless
	// Options.ChaosSeed was set.
	Chaos *faultinject.Injector

	// opts is the (defaults-filled) build configuration, retained so
	// RestartSite can rebuild a site exactly as Build did.
	opts Options
	// mu guards the lifecycle state below: concurrent Stop/Restart/Kill/
	// Replace calls serialize instead of racing a live listener.
	mu      sync.Mutex
	stopped map[int]bool
	// killed marks sites destroyed permanently (KillSite): their data
	// directory is gone and only ReplaceSite may bring the slot back.
	killed map[int]bool
	// restarting marks sites whose stack is being rebuilt, so a second
	// RestartSite gets a clear error instead of racing the first.
	restarting map[int]bool
	// deployChaos holds each site's step-fault injector across restarts.
	deployChaos map[int]*faultinject.DeployChaos
	// clockChaos owns each site's skewable clock view (keyed by site name,
	// so an armed skew survives RestartSite/ReplaceSite like deploy chaos
	// does). Always present: an unskewed view reads exactly like Clock.
	clockChaos *faultinject.ClockChaos
}

// siteAttrs fabricates realistic, mutually distinct site attributes.
func siteAttrs(i int) site.Attributes {
	return site.Attributes{
		Name:         fmt.Sprintf("agrid%02d.uibk.ac.at", i+1),
		ProcessorMHz: 1000 + 250*(i%5),
		MemoryMB:     1024 * (1 + i%4),
		UptimeHours:  200 + 37*i,
		Processors:   4 * (1 + i%3),
		Platform:     "Intel",
		OS:           "Linux",
		Arch:         "32bit",
	}
}

// Build constructs and starts a VO.
func Build(opts Options) (*VO, error) {
	if opts.Sites <= 0 {
		opts.Sites = 3
	}
	clock := opts.Clock
	if clock == nil {
		clock = simclock.NewVirtual(time.Time{})
	}
	repo := site.StandardUniverse()
	resolver := workload.NewResolver(repo)

	opts.Clock = clock
	v := &VO{
		Clock: clock, Repo: repo, Resolver: resolver, opts: opts,
		stopped:     map[int]bool{},
		killed:      map[int]bool{},
		restarting:  map[int]bool{},
		deployChaos: map[int]*faultinject.DeployChaos{},
		clockChaos:  faultinject.NewClockChaos(),
	}
	if opts.ChaosSeed != 0 {
		v.Chaos = faultinject.New(opts.ChaosSeed)
	}
	if opts.Secure {
		ca, err := gsi.NewAuthority("glare-vo-ca")
		if err != nil {
			return nil, err
		}
		v.CA = ca
	}
	v.Client = v.newClient(opts, nil, "")

	for i := 0; i < opts.Sites; i++ {
		node, err := v.buildNode(i, opts, "127.0.0.1:0")
		if err != nil {
			v.Close()
			return nil, err
		}
		v.Nodes = append(v.Nodes, node)
	}
	// Hierarchical aggregation: every default index feeds the community
	// index (held by site 0), and every site registers itself there.
	v.Community = v.Nodes[0].Index
	for i, n := range v.Nodes {
		if i != 0 {
			n.Index.AddUpstream(v.Community)
		}
		siteEPR := epr.New(n.Info.ServiceURL(rdm.ServiceName), "SiteKey", n.Info.Name)
		siteEPR.LastUpdateTime = n.RDM.HLC().Now()
		n.Index.Register(siteEPR, n.Info.ToXML())
	}
	return v, nil
}

// newClient assembles one fault-tolerant transport client: retries with
// backoff, a shared retry budget, per-destination circuit breakers, and
// — when chaos is armed — the VO's fault injector. tel may be nil for
// the VO-wide admin client, whose source is "" so it is never caught in a
// simulated network partition; per-site clients carry their own host:port
// as source (see buildNode) and land on one side of the split.
func (v *VO) newClient(opts Options, tel *telemetry.Telemetry, source string) *transport.Client {
	var tlsConf *tls.Config
	if v.CA != nil {
		tlsConf = v.CA.ClientConfig()
	}
	c := transport.NewClientTimeout(tlsConf, opts.CallTimeout)
	retry := transport.DefaultRetryPolicy()
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	c.SetRetryPolicy(retry)
	c.SetRetryBudget(transport.NewRetryBudget(0, 0))
	breaker := transport.DefaultBreakerConfig()
	if opts.Breaker != nil {
		breaker = *opts.Breaker
	}
	c.SetBreaker(breaker)
	if tel != nil {
		c.SetTelemetry(tel)
	}
	if v.Chaos != nil {
		c.WrapTransport(v.Chaos.WrapSource(source))
	}
	return c
}

// hostOf extracts the host:port chaos-partition key from a base URL.
func hostOf(baseURL string) string {
	u, err := url.Parse(baseURL)
	if err != nil {
		return ""
	}
	return u.Host
}

// buildNode assembles one site's stack listening on addr ("127.0.0.1:0"
// for a fresh ephemeral port; RestartSite passes the site's original
// host:port so EPRs minted before a crash stay routable).
func (v *VO) buildNode(i int, opts Options, addr string) (*Node, error) {
	attrs := siteAttrs(i)
	// Every site reads time through its own skewable view of the shared
	// clock: autonomous sites do not share a wall clock, and the clock-chaos
	// injector (SkewSite/DriftSite) displaces exactly this view. Undisplaced
	// views read identically to v.Clock, so unskewed grids are unchanged.
	siteClock := v.clockChaos.View(attrs.Name, v.Clock)
	st := site.New(attrs, siteClock, v.Repo)
	srv := transport.NewServer()
	if opts.Secure {
		conf, err := v.CA.ServerConfig("127.0.0.1")
		if err != nil {
			return nil, err
		}
		if err := srv.Start(addr, conf); err != nil {
			return nil, err
		}
	} else {
		if err := srv.Start(addr, nil); err != nil {
			return nil, err
		}
	}
	info := superpeer.SiteInfo{Name: attrs.Name, Rank: attrs.Rank(), BaseURL: srv.BaseURL()}
	tel := telemetry.New(attrs.Name)
	if !opts.AdmissionOff {
		acfg := transport.DefaultAdmissionConfig()
		if opts.Admission != nil {
			acfg = *opts.Admission
		}
		srv.SetAdmission(transport.NewAdmission(acfg, tel))
	}
	cli := v.newClient(opts, tel, hostOf(srv.BaseURL()))
	agent := superpeer.NewAgent(info, cli, nil)

	kind := mds.DefaultIndex
	if i == 0 {
		kind = mds.CommunityIndex
	}
	index := mds.New(fmt.Sprintf("index-%s", attrs.Name), kind, siteClock)
	if i == 0 && opts.IndexCollapse != (mds.CollapseConfig{}) {
		index.SetCollapse(opts.IndexCollapse)
	}

	// Durability: open (and recover) the site's journal before the RDM is
	// assembled, so rdm.New replays it into the fresh registries.
	var durable *store.Store
	if opts.DataDir != "" {
		var err error
		durable, err = store.Open(store.Options{
			Dir:   filepath.Join(opts.DataDir, fmt.Sprintf("site-%02d", i+1)),
			Fsync: opts.StoreFsync,
			Clock: siteClock,
		})
		if err != nil {
			srv.Close()
			return nil, err
		}
	}

	// The step-fault injector is per-site and survives restarts, so chaos
	// armed before a simulated crash stays armed on the rebuilt stack.
	chaos := v.deployChaos[i]
	if chaos == nil {
		chaos = faultinject.NewDeployChaos()
		v.deployChaos[i] = chaos
	}

	svc, err := rdm.New(rdm.Config{
		Site:              st,
		Clock:             siteClock,
		Client:            cli,
		Agent:             agent,
		LocalIndex:        index,
		DeployFiles:       v.Resolver.Fetch,
		GroupSize:         opts.GroupSize,
		Costs:             opts.Costs,
		CacheTTL:          opts.CacheTTL,
		ScanDelayPerEntry: opts.ScanDelayPerEntry,
		CacheDisabled:     opts.CacheDisabled,
		TransferCost:      opts.TransferCost,
		CoG:               opts.CoG,
		Telemetry:         tel,
		Store:             durable,
		Deploy:            opts.Deploy,
		DeployHook:        chaos.Step,
		History:           opts.History,
		ReplicaK:          opts.ReplicaK,
		CASBudget:         opts.CASBudget,
	})
	if err != nil {
		if durable != nil {
			durable.Close()
		}
		srv.Close()
		return nil, err
	}
	// HLC exchange: the site's stamps ride every envelope it sends (client)
	// and every response it serves (server), so any message exchange bounds
	// its ordering divergence from the rest of the grid.
	cli.SetHLC(svc.HLC())
	srv.SetHLC(svc.HLC())
	svc.Mount(srv)
	svc.MountExtensions(srv)
	return &Node{Site: st, Server: srv, RDM: svc, Agent: agent, Index: index, Info: info, Tel: tel, Client: cli, Deploy: chaos}, nil
}

// ElectSuperPeers runs the initial election from the community-index
// holder (the Index Monitor path).
func (v *VO) ElectSuperPeers() error {
	return v.Nodes[0].RDM.CheckIndex()
}

// Node returns a site's stack by index.
func (v *VO) Node(i int) *Node { return v.Nodes[i] }

// StopSite simulates a site failure: its container stops answering.
func (v *VO) StopSite(i int) {
	v.mu.Lock()
	if v.stopped[i] {
		v.mu.Unlock()
		return
	}
	v.stopped[i] = true
	v.mu.Unlock()
	v.Nodes[i].RDM.Stop()
	v.Nodes[i].Server.Close()
}

// Stopped reports whether a site was stopped.
func (v *VO) Stopped(i int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stopped[i]
}

// Killed reports whether a site was permanently destroyed.
func (v *VO) Killed(i int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.killed[i]
}

// KillSite simulates PERMANENT site loss: the container stops answering
// and — unlike StopSite — the site's durable state is destroyed, so
// RestartSite can never bring it back. This is the disaster quorum
// replication exists for; ReplaceSite later joins a fresh, empty site
// under the same name and address, and promoted replicas hand the data
// back. Site 0 is refused: it holds the community index.
func (v *VO) KillSite(i int) error {
	v.mu.Lock()
	switch {
	case i <= 0 || i >= len(v.Nodes):
		v.mu.Unlock()
		return fmt.Errorf("vo: cannot kill site %d (site 0 holds the community index)", i)
	case v.killed[i]:
		v.mu.Unlock()
		return fmt.Errorf("vo: site %d is already killed", i)
	}
	v.killed[i] = true
	alreadyStopped := v.stopped[i]
	v.stopped[i] = true
	v.mu.Unlock()
	if !alreadyStopped {
		v.Nodes[i].RDM.Stop()
		v.Nodes[i].Server.Close()
	}
	if v.opts.DataDir != "" {
		if err := os.RemoveAll(filepath.Join(v.opts.DataDir, fmt.Sprintf("site-%02d", i+1))); err != nil {
			return fmt.Errorf("vo: destroying site %d state: %w", i, err)
		}
	}
	return nil
}

// ReplaceSite joins a fresh, empty replacement for a killed site, reusing
// the dead site's name and host:port so the overlay view and every minted
// EPR keep routing. The replacement owns nothing until promoted holders
// hand the dead site's data back (see rdm.RepairReplicas).
func (v *VO) ReplaceSite(i int) error {
	v.mu.Lock()
	switch {
	case i <= 0 || i >= len(v.Nodes):
		v.mu.Unlock()
		return fmt.Errorf("vo: cannot replace site %d", i)
	case !v.killed[i]:
		v.mu.Unlock()
		return fmt.Errorf("vo: site %d was not killed; use RestartSite for stopped sites", i)
	case v.restarting[i]:
		v.mu.Unlock()
		return fmt.Errorf("vo: site %d is already being rebuilt", i)
	}
	v.restarting[i] = true
	v.mu.Unlock()
	err := v.rebuildSite(i)
	v.mu.Lock()
	delete(v.restarting, i)
	if err == nil {
		delete(v.killed, i)
		delete(v.stopped, i)
	}
	v.mu.Unlock()
	return err
}

// RestartSite rebuilds a stopped site's full stack on its original
// host:port — the glared-crashed-and-came-back path. With Options.DataDir
// set, the rebuilt RDM recovers the site's journal, so its registrations,
// deployment documents and unexpired leases survive without any
// re-registration traffic; reusing the address keeps EPRs minted before
// the crash routable. Site 0 cannot be restarted: it holds the community
// index, whose aggregated entries are rebuilt by anti-entropy rather than
// journaled.
func (v *VO) RestartSite(i int) error {
	v.mu.Lock()
	switch {
	case i <= 0 || i >= len(v.Nodes):
		v.mu.Unlock()
		return fmt.Errorf("vo: cannot restart site %d (site 0 holds the community index)", i)
	case v.killed[i]:
		v.mu.Unlock()
		return fmt.Errorf("vo: site %d was killed permanently; use ReplaceSite", i)
	case !v.stopped[i]:
		v.mu.Unlock()
		return fmt.Errorf("vo: site %d is not stopped", i)
	case v.restarting[i]:
		v.mu.Unlock()
		return fmt.Errorf("vo: site %d is already being restarted", i)
	}
	v.restarting[i] = true
	v.mu.Unlock()
	err := v.rebuildSite(i)
	v.mu.Lock()
	delete(v.restarting, i)
	if err == nil {
		delete(v.stopped, i)
	}
	v.mu.Unlock()
	return err
}

// rebuildSite rebuilds a site's full stack on its original host:port and
// re-joins it to the aggregation hierarchy exactly as Build wired it.
// Callers hold the lifecycle markers (restarting/stopped/killed).
func (v *VO) rebuildSite(i int) error {
	old := v.Nodes[i]
	if old.Client != nil {
		old.Client.CloseIdle()
	}
	node, err := v.buildNode(i, v.opts, hostOf(old.Info.BaseURL))
	if err != nil {
		return err
	}
	v.Nodes[i] = node
	node.Index.AddUpstream(v.Community)
	siteEPR := epr.New(node.Info.ServiceURL(rdm.ServiceName), "SiteKey", node.Info.Name)
	siteEPR.LastUpdateTime = node.RDM.HLC().Now()
	node.Index.Register(siteEPR, node.Info.ToXML())
	return nil
}

// SkewSite displaces site i's wall clock by offset (negative runs slow).
// Only what the site READS changes: timers and sleeps still follow the
// shared base clock, so virtual-time tests keep advancing everyone.
// The skew survives RestartSite and ReplaceSite (keyed by site name).
func (v *VO) SkewSite(i int, offset time.Duration) {
	v.clockChaos.SkewSite(v.Nodes[i].Info.Name, offset)
}

// DriftSite makes site i's clock wander at rate seconds gained per second
// of base time (negative falls behind), on top of any fixed offset.
func (v *VO) DriftSite(i int, rate float64) {
	v.clockChaos.DriftSite(v.Nodes[i].Info.Name, rate)
}

// ClockOffset reports site i's current total displacement from the shared
// base clock (offset plus accrued drift).
func (v *VO) ClockOffset(i int) time.Duration {
	return v.clockChaos.Offset(v.Nodes[i].Info.Name)
}

// RestoreClock zeroes site i's skew and drift.
func (v *VO) RestoreClock(i int) {
	v.clockChaos.Restore(v.Nodes[i].Info.Name)
}

// ScheduleSkew arms a deterministic seeded skew schedule VO-wide: every
// site draws an offset uniformly from [-max, +max] plus a small drift in
// the same direction. Returns the offsets applied, keyed by site name.
func (v *VO) ScheduleSkew(seed int64, max time.Duration) map[string]time.Duration {
	return v.clockChaos.ScheduleSkew(seed, max)
}

// RegisterImagingStack registers the Section-2 type hierarchy on one site.
func (v *VO) RegisterImagingStack(i int) error {
	for _, t := range workload.ImagingTypes() {
		if _, err := v.Nodes[i].RDM.RegisterType(t); err != nil {
			return err
		}
	}
	return nil
}

// RegisterEvaluationApps registers the Table 1 application types on one
// site.
func (v *VO) RegisterEvaluationApps(i int) error {
	for _, t := range workload.EvaluationTypes() {
		if _, err := v.Nodes[i].RDM.RegisterType(t); err != nil {
			return err
		}
	}
	return nil
}

// Close stops every site.
func (v *VO) Close() {
	for i := range v.Nodes {
		v.StopSite(i)
	}
	for _, n := range v.Nodes {
		if n.Client != nil {
			n.Client.CloseIdle()
		}
	}
	if v.Client != nil {
		v.Client.CloseIdle()
	}
}
