package vo

import (
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/rdm"
	"glare/internal/superpeer"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

func buildVO(t *testing.T, opts Options) *VO {
	t.Helper()
	v, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	return v
}

func TestBuildAndElection(t *testing.T) {
	v := buildVO(t, Options{Sites: 7, GroupSize: 3})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	supers := 0
	for _, n := range v.Nodes {
		switch n.Agent.Role() {
		case superpeer.RoleSuperPeer:
			supers++
		case superpeer.RoleMember:
		default:
			t.Fatalf("%s unassigned after election", n.Info.Name)
		}
	}
	if supers < 2 { // 7 sites / group size 4 (default) or 3 -> >=2 groups
		t.Fatalf("super-peers = %d", supers)
	}
	// Election is idempotent per coordinator.
	if err := v.Nodes[0].RDM.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityIndexSeesAllSites(t *testing.T) {
	v := buildVO(t, Options{Sites: 5})
	sites := v.Nodes[0].RDM.CommunitySites()
	if len(sites) != 5 {
		t.Fatalf("community sites = %d", len(sites))
	}
}

func TestCrossSiteTypeDiscovery(t *testing.T) {
	v := buildVO(t, Options{Sites: 4, GroupSize: 4})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	// Register the imaging stack on site 2 only.
	if err := v.RegisterImagingStack(2); err != nil {
		t.Fatal(err)
	}
	// A client of site 1 resolves the abstract type through the overlay.
	types, err := v.Nodes[1].RDM.ResolveConcrete("ImageConversion")
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0].Name != "JPOVray" {
		t.Fatalf("resolved %v", types)
	}
}

func TestCrossGroupDiscoveryViaSuperPeers(t *testing.T) {
	// Two groups: discovery must traverse super-peer forwarding.
	v := buildVO(t, Options{Sites: 6, GroupSize: 3})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	// Find two sites in different groups.
	var a, b int = -1, -1
	viewOf := func(i int) superpeer.View { return v.Nodes[i].Agent.View() }
	for i := 1; i < len(v.Nodes) && b < 0; i++ {
		if a < 0 {
			a = i
			continue
		}
		if !viewOf(a).Member(v.Nodes[i].Info.Name) {
			b = i
		}
	}
	if a < 0 || b < 0 {
		t.Skip("all sites landed in one group")
	}
	if err := v.RegisterImagingStack(a); err != nil {
		t.Fatal(err)
	}
	types, err := v.Nodes[b].RDM.ResolveConcrete("POVray")
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0].Name != "JPOVray" {
		t.Fatalf("cross-group resolution got %v", types)
	}
}

func TestOnDemandDeploymentAcrossSites(t *testing.T) {
	v := buildVO(t, Options{Sites: 3, GroupSize: 3})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	if err := v.RegisterImagingStack(0); err != nil {
		t.Fatal(err)
	}
	// Scheduler at site 1 requests deployments; GLARE deploys on demand.
	deps, err := v.Nodes[1].RDM.GetDeployments("ImageConversion", rdm.MethodExpect, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) == 0 {
		t.Fatal("no deployments returned")
	}
	// The installation happened on site 1 itself (it satisfies the
	// constraints) and is discoverable from other sites now.
	found, err := v.Nodes[2].RDM.GetDeployments("ImageConversion", rdm.MethodExpect, false)
	if err != nil {
		t.Fatalf("site 2 discovery: %v", err)
	}
	if len(found) == 0 {
		t.Fatal("deployment not visible VO-wide")
	}
}

func TestCachingAcceleratesRepeatLookups(t *testing.T) {
	v := buildVO(t, Options{Sites: 3, GroupSize: 3})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	v.RegisterImagingStack(0)
	if _, err := v.Nodes[0].RDM.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	// First remote lookup misses the cache, second hits it.
	svc := v.Nodes[1].RDM
	if _, err := svc.GetDeployments("JPOVray", rdm.MethodExpect, false); err != nil {
		t.Fatal(err)
	}
	_, depsStats := svc.CacheStats()
	if depsStats.Misses == 0 {
		t.Fatal("expected at least one miss")
	}
	if _, err := svc.GetDeployments("JPOVray", rdm.MethodExpect, false); err != nil {
		t.Fatal(err)
	}
	_, after := svc.CacheStats()
	if after.Hits <= depsStats.Hits {
		t.Fatalf("no cache hits: before %+v after %+v", depsStats, after)
	}
}

func TestCacheDisabledConfig(t *testing.T) {
	v := buildVO(t, Options{Sites: 2, GroupSize: 2, CacheDisabled: true})
	v.ElectSuperPeers()
	v.RegisterImagingStack(0)
	if _, err := v.Nodes[0].RDM.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	svc := v.Nodes[1].RDM
	svc.GetDeployments("JPOVray", rdm.MethodExpect, false)
	svc.GetDeployments("JPOVray", rdm.MethodExpect, false)
	_, st := svc.CacheStats()
	if st.Hits != 0 {
		t.Fatalf("cache disabled but %d hits", st.Hits)
	}
}

func TestCacheRefreshRevivesUpdatedDeployment(t *testing.T) {
	v := buildVO(t, Options{Sites: 2, GroupSize: 2, CacheTTL: time.Hour})
	v.ElectSuperPeers()
	v.RegisterImagingStack(0)
	if _, err := v.Nodes[0].RDM.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	// Site 1 caches site 0's deployment.
	svc := v.Nodes[1].RDM
	if _, err := svc.GetDeployments("JPOVray", rdm.MethodExpect, false); err != nil {
		t.Fatal(err)
	}
	// Site 0's status monitor touches the deployment (bumps LUT).
	v.Clock.(interface{ Advance(time.Duration) }).Advance(time.Second)
	v.Nodes[0].RDM.CheckDeployments()
	revived, _ := svc.RefreshCaches()
	if revived == 0 {
		t.Fatal("updated deployment was not revived")
	}
}

func TestSecureVO(t *testing.T) {
	v := buildVO(t, Options{Sites: 2, GroupSize: 2, Secure: true})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	v.RegisterImagingStack(0)
	types, err := v.Nodes[1].RDM.ResolveConcrete("POVray")
	if err != nil || len(types) != 1 {
		t.Fatalf("secure resolution: %v %v", types, err)
	}
	for _, n := range v.Nodes {
		if !n.Server.Secure() {
			t.Fatal("server not secure")
		}
	}
}

func TestSuperPeerFailover(t *testing.T) {
	v := buildVO(t, Options{Sites: 4, GroupSize: 4})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	// Identify the super-peer and a member.
	spName := v.Nodes[0].Agent.View().SuperPeer.Name
	var spIdx = -1
	for i, n := range v.Nodes {
		if n.Info.Name == spName {
			spIdx = i
		}
	}
	if spIdx < 0 {
		t.Fatal("super-peer not found")
	}
	v.StopSite(spIdx)
	if !v.Stopped(spIdx) {
		t.Fatal("stop not recorded")
	}
	// Any surviving member detects and initiates recovery.
	var member *Node
	for i, n := range v.Nodes {
		if i != spIdx {
			member = n
			break
		}
	}
	for i := 0; i < superpeer.DefaultSuspicionThreshold; i++ {
		if _, err := member.RDM.Agent().DetectAndRecover(); err != nil {
			t.Fatal(err)
		}
	}
	// Eventually a new super-peer reigns.
	deadline := time.After(5 * time.Second)
	for {
		newSP := member.Agent.View().SuperPeer.Name
		if newSP != spName && newSP != "" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no new super-peer elected")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Discovery still works among survivors ("If some sites or services
	// fail, the rest of the GLARE system continues working").
	var reg *Node
	for i, n := range v.Nodes {
		if i != spIdx {
			reg = n
			break
		}
	}
	for _, ty := range []int{0} {
		_ = ty
	}
	if err := v.RegisterImagingStack(indexOf(v, reg)); err != nil {
		t.Fatal(err)
	}
	for i, n := range v.Nodes {
		if i == spIdx || n == reg {
			continue
		}
		types, err := n.RDM.ResolveConcrete("POVray")
		if err != nil || len(types) == 0 {
			t.Fatalf("survivor %s cannot resolve: %v %v", n.Info.Name, types, err)
		}
	}
}

func workloadEvaluationType(t *testing.T, name string) *activity.Type {
	t.Helper()
	for _, ty := range workload.EvaluationTypes() {
		if ty.Name == name {
			return ty
		}
	}
	t.Fatalf("no evaluation type %q", name)
	return nil
}

func indexOf(v *VO, target *Node) int {
	for i, n := range v.Nodes {
		if n == target {
			return i
		}
	}
	return -1
}

func TestRemoteClientProtocol(t *testing.T) {
	v := buildVO(t, Options{Sites: 2, GroupSize: 2})
	v.ElectSuperPeers()
	v.RegisterImagingStack(0)
	// Drive the whole flow through the wire protocol, like glarectl does.
	url := v.Nodes[1].Info.ServiceURL(rdm.ServiceName)
	req := xmlutil.NewNode("Request")
	req.SetAttr("type", "ImageConversion")
	req.SetAttr("deploy", "auto")
	resp, err := v.Client.Call(url, "GetDeployments", req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.All("ActivityDeployment")) == 0 {
		t.Fatalf("no deployments over the wire: %s", resp)
	}
	// Lease over the wire.
	lr := xmlutil.NewNode("Lease")
	lr.SetAttr("deployment", "jpovray")
	lr.SetAttr("client", "wire-client")
	lr.SetAttr("kind", "exclusive")
	lr.SetAttr("seconds", "3600")
	tk, err := v.Client.Call(v.Nodes[1].Info.ServiceURL(rdm.ServiceName), "AcquireLease", lr)
	if err != nil {
		t.Fatal(err)
	}
	if tk.AttrOr("id", "") == "" {
		t.Fatalf("ticket = %s", tk)
	}
	// Instantiate with the ticket.
	inst := xmlutil.NewNode("Run")
	inst.SetAttr("name", "jpovray")
	inst.SetAttr("client", "wire-client")
	inst.SetAttr("ticket", tk.AttrOr("id", ""))
	if _, err := v.Client.Call(url, "Instantiate", inst); err != nil {
		t.Fatal(err)
	}
	// Release.
	if _, err := v.Client.Call(url, "ReleaseLease",
		xmlutil.NewNode("ID", tk.AttrOr("id", ""))); err != nil {
		t.Fatal(err)
	}
}

func TestTable1CostsShapeAcrossVO(t *testing.T) {
	v := buildVO(t, Options{Sites: 1})
	svc := v.Nodes[0].RDM
	// The type arrives with the deployment request (it is new to this
	// site), so "Activity Type Addition" is charged.
	wien := workloadEvaluationType(t, "Wien2k")
	rep, err := svc.DeployLocal(wien, rdm.MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	tt := rep.Timings
	// Ballpark row checks against Table 1 (virtual ms).
	if tt.TypeAddition < 400*time.Millisecond || tt.TypeAddition > time.Second {
		t.Fatalf("type addition = %v", tt.TypeAddition)
	}
	if tt.Registration < 200*time.Millisecond || tt.Registration > time.Second {
		t.Fatalf("registration = %v", tt.Registration)
	}
	if tt.Notification < 200*time.Millisecond || tt.Notification > time.Second {
		t.Fatalf("notification = %v", tt.Notification)
	}
	if tt.Installation < 3*time.Second {
		t.Fatalf("installation = %v", tt.Installation)
	}
	if tt.Total() < 5*time.Second {
		t.Fatalf("total = %v", tt.Total())
	}
}

func TestBrokerPicksHighestCapacityPeer(t *testing.T) {
	// One group of four sites. Capacities (from siteAttrs): site i has
	// 4*(1+i%3) processors at 1000+250*i MHz — agrid03 (index 2) scores
	// highest among site 0's peers, so migration must land there.
	v := buildVO(t, Options{Sites: 4, GroupSize: 4})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	if err := v.RegisterEvaluationApps(0); err != nil {
		t.Fatal(err)
	}
	wien, _ := v.Nodes[0].RDM.LookupType("Wien2k")
	rep, err := v.Nodes[0].RDM.DeployLocal(wien, rdm.MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := v.Nodes[0].RDM.Migrate(rep.Deployments[0].Name, rdm.MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Site != v.Nodes[2].Info.Name {
		t.Fatalf("broker chose %s, want %s", mig.Site, v.Nodes[2].Info.Name)
	}
}
