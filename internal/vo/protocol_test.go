package vo

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"glare/internal/rdm"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// call is a helper hitting a node's RDM operation over the wire.
func call(t *testing.T, v *VO, node int, op string, body *xmlutil.Node) (*xmlutil.Node, error) {
	t.Helper()
	return v.Client.Call(v.Nodes[node].Info.ServiceURL(rdm.ServiceName), op, body)
}

func TestSiteAttrsOverWire(t *testing.T) {
	v := buildVO(t, Options{Sites: 1})
	resp, err := call(t, v, 0, "SiteAttrs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.AttrOr("platform", "") != "Intel" || resp.AttrOr("os", "") != "Linux" {
		t.Fatalf("attrs = %s", resp)
	}
	if resp.AttrOr("name", "") == "" {
		t.Fatal("missing site name")
	}
}

func TestGroupAndForwardOpsOverWire(t *testing.T) {
	v := buildVO(t, Options{Sites: 4, GroupSize: 2}) // two groups
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	if err := v.RegisterImagingStack(3); err != nil {
		t.Fatal(err)
	}
	// Ask a super-peer to resolve from its group (GroupConcreteOf) and
	// across groups (ForwardConcreteOf); both answer the concrete type.
	spName := v.Nodes[3].Agent.View().SuperPeer.Name
	spIdx := -1
	for i, n := range v.Nodes {
		if n.Info.Name == spName {
			spIdx = i
		}
	}
	resp, err := call(t, v, spIdx, "GroupConcreteOf", xmlutil.NewNode("Name", "POVray"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.All("ActivityTypeEntry")) != 1 {
		t.Fatalf("group resolution: %s", resp)
	}
	// From the OTHER group's super-peer, forwarding must find it too.
	var otherSP int = -1
	for i, n := range v.Nodes {
		if n.Agent.Role().String() == "SuperPeer" && n.Info.Name != spName {
			otherSP = i
		}
	}
	if otherSP < 0 {
		t.Skip("single group formed")
	}
	resp, err = call(t, v, otherSP, "ForwardConcreteOf", xmlutil.NewNode("Name", "POVray"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.All("ActivityTypeEntry")) != 1 {
		t.Fatalf("forwarded resolution: %s", resp)
	}
}

func TestForwardDeploymentsOverWire(t *testing.T) {
	v := buildVO(t, Options{Sites: 4, GroupSize: 2})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	v.RegisterImagingStack(0)
	if _, err := v.Nodes[0].RDM.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	// Any super-peer must aggregate the deployment via forwarding.
	for i, n := range v.Nodes {
		if n.Agent.Role().String() != "SuperPeer" {
			continue
		}
		resp, err := call(t, v, i, "ForwardDeployments", xmlutil.NewNode("Type", "JPOVray"))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.All("ActivityDeployment")) == 0 {
			t.Fatalf("super-peer %s found nothing", n.Info.Name)
		}
	}
}

func TestRemoteNotificationSink(t *testing.T) {
	v := buildVO(t, Options{Sites: 1})
	// Stand up a sink container.
	sink := transport.NewServer()
	var mu sync.Mutex
	var got []string
	sink.Register("Sink", "Notify", func(body *xmlutil.Node) (*xmlutil.Node, error) {
		mu.Lock()
		got = append(got, body.AttrOr("producer", ""))
		mu.Unlock()
		return xmlutil.NewNode("OK"), nil
	})
	if err := sink.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	req := xmlutil.NewNode("Subscribe")
	req.SetAttr("topic", "Deployment")
	req.SetAttr("sink", sink.ServiceURL("Sink"))
	resp, err := call(t, v, 0, "Subscribe", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.AttrOr("id", "") == "" {
		t.Fatalf("subscription = %s", resp)
	}
	// Trigger a deployment; the sink must receive the event over HTTP.
	v.RegisterImagingStack(0)
	if _, err := v.Nodes[0].RDM.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sink never notified")
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "JPOVray") && !strings.Contains(joined, "Java") {
		t.Fatalf("producers = %v", got)
	}
}

func TestSearchTypesOverWire(t *testing.T) {
	v := buildVO(t, Options{Sites: 1})
	v.RegisterImagingStack(0)
	q := xmlutil.NewNode("Query")
	q.SetAttr("function", "render")
	q.SetAttr("concreteOnly", "true")
	resp, err := call(t, v, 0, "SearchTypes", q)
	if err != nil {
		t.Fatal(err)
	}
	matches := resp.All("Match")
	if len(matches) != 1 {
		t.Fatalf("matches = %s", resp)
	}
	score, err := strconv.ParseFloat(matches[0].AttrOr("score", ""), 64)
	if err != nil || score <= 0 {
		t.Fatalf("score = %q", matches[0].AttrOr("score", ""))
	}
	if matches[0].First("ActivityTypeEntry").AttrOr("name", "") != "JPOVray" {
		t.Fatalf("match = %s", matches[0])
	}
	// Port-constrained query over the wire.
	q2 := xmlutil.NewNode("Query")
	q2.Elem("Input", "scene.pov")
	q2.Elem("Output", "image.png")
	resp, err = call(t, v, 0, "SearchTypes", q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.All("Match")) == 0 {
		t.Fatal("port query found nothing")
	}
}

func TestWrapServiceOverWire(t *testing.T) {
	v := buildVO(t, Options{Sites: 1})
	v.RegisterEvaluationApps(0)
	v.RegisterImagingStack(0)
	wien, _ := v.Nodes[0].RDM.LookupType("Wien2k")
	if _, err := v.Nodes[0].RDM.DeployLocal(wien, rdm.MethodExpect); err != nil {
		t.Fatal(err)
	}
	resp, err := call(t, v, 0, "WrapService", xmlutil.NewNode("Name", "lapw1"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.AttrOr("name", "") != "WS-lapw1" || resp.AttrOr("category", "") != "service" {
		t.Fatalf("wrapper = %s", resp)
	}
	if _, err := call(t, v, 0, "WrapService", xmlutil.NewNode("Name", "nope")); err == nil {
		t.Fatal("wrapping unknown must fault")
	}
}

func TestDeployLocalByTypeNameOverWire(t *testing.T) {
	v := buildVO(t, Options{Sites: 1})
	v.RegisterImagingStack(0)
	req := xmlutil.NewNode("Deploy")
	req.SetAttr("type", "JPOVray") // by name, no inline type document
	resp, err := call(t, v, 0, "DeployLocal", req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.All("ActivityDeployment")) == 0 || resp.First("Timings") == nil {
		t.Fatalf("deploy response = %s", resp)
	}
	// Unknown type by name faults.
	bad := xmlutil.NewNode("Deploy")
	bad.SetAttr("type", "Ghost")
	if _, err := call(t, v, 0, "DeployLocal", bad); err == nil {
		t.Fatal("unknown type must fault")
	}
}

func TestDiscoveryToleratesDeadPeer(t *testing.T) {
	v := buildVO(t, Options{Sites: 3, GroupSize: 3})
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	v.RegisterImagingStack(0)
	if _, err := v.Nodes[0].RDM.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	// Kill a non-essential peer; discovery from the others must survive
	// ("If some sites or services fail, the rest of the GLARE system
	// continues working").
	spName := v.Nodes[1].Agent.View().SuperPeer.Name
	killed := -1
	for i, n := range v.Nodes {
		if i != 0 && n.Info.Name != spName {
			killed = i
			break
		}
	}
	if killed < 0 {
		t.Skip("no non-essential peer")
	}
	v.StopSite(killed)
	for i := range v.Nodes {
		if i == killed {
			continue
		}
		deps, err := v.Nodes[i].RDM.GetDeployments("JPOVray", rdm.MethodExpect, false)
		if err != nil || len(deps) == 0 {
			t.Fatalf("site %d discovery after peer death: %v %v", i, deps, err)
		}
	}
}
