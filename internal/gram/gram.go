// Package gram simulates the Globus Resource Allocation Manager: batch job
// submission to a site. The deployment handler's GRAM alternative and the
// JavaCoG deployment path submit installation steps as GRAM jobs; activity
// instantiation of executable deployments also goes through GRAM.
//
// Each submission pays a fixed virtual-time overhead (authentication, job
// manager fork, polling) before the job's own cost — this per-step tax is
// why the CoG rows of Table 1 are so much slower than the Expect rows.
package gram

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

// JobState enumerates the lifecycle of a GRAM job.
type JobState int

const (
	StatePending JobState = iota
	StateActive
	StateDone
	StateFailed
)

// String renders the state name.
func (s JobState) String() string {
	switch s {
	case StatePending:
		return "Pending"
	case StateActive:
		return "Active"
	case StateDone:
		return "Done"
	case StateFailed:
		return "Failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one submitted job.
type Job struct {
	ID      uint64
	Cmdline string
	Env     map[string]string
	Dir     string

	mu       sync.Mutex
	state    JobState
	output   []string
	exitCode int
	err      error
	done     chan struct{}

	// Metrics recorded for the Deployment Status Monitor.
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Wait blocks until the job finishes and returns its exit code and error.
func (j *Job) Wait() (int, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.exitCode, j.err
}

// Output returns the job's collected output lines (after completion).
func (j *Job) Output() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.output...)
}

// Manager is the per-site GRAM service.
type Manager struct {
	site  *site.Site
	clock simclock.Clock

	// SubmitOverhead is the fixed virtual cost per submission.
	SubmitOverhead time.Duration

	nextID    uint64
	mu        sync.Mutex
	jobs      map[uint64]*Job
	submitted uint64
}

// DefaultSubmitOverhead approximates GT4 GRAM's per-job cost.
const DefaultSubmitOverhead = 450 * time.Millisecond

// NewManager creates a job manager for one site.
func NewManager(s *site.Site, clock simclock.Clock) *Manager {
	if clock == nil {
		clock = simclock.Real
	}
	return &Manager{
		site:           s,
		clock:          clock,
		SubmitOverhead: DefaultSubmitOverhead,
		jobs:           make(map[uint64]*Job),
	}
}

// Submit queues a job and runs it synchronously on the site (the simulated
// machine room has one slot per submission; concurrency is the caller's
// concern, matching GRAM fork jobmanagers).
func (m *Manager) Submit(cmdline, dir string, env map[string]string) *Job {
	id := atomic.AddUint64(&m.nextID, 1)
	j := &Job{
		ID: id, Cmdline: cmdline, Env: env, Dir: dir,
		state: StatePending, done: make(chan struct{}),
		Submitted: m.clock.Now(),
	}
	m.mu.Lock()
	m.jobs[id] = j
	m.submitted++
	m.mu.Unlock()
	go m.run(j)
	return j
}

// SubmitWait submits and waits; convenience for sequential deployment steps.
func (m *Manager) SubmitWait(cmdline, dir string, env map[string]string) ([]string, int, error) {
	j := m.Submit(cmdline, dir, env)
	code, err := j.Wait()
	return j.Output(), code, err
}

func (m *Manager) run(j *Job) {
	m.clock.Sleep(m.SubmitOverhead)
	sh := m.site.NewShell()
	sh.AutoAnswer = true // batch jobs have no terminal
	for k, v := range j.Env {
		sh.Setenv(k, v)
	}
	if j.Dir != "" {
		if err := sh.Chdir(j.Dir); err != nil {
			j.mu.Lock()
			j.state = StateFailed
			j.err = err
			j.exitCode = 1
			j.Finished = m.clock.Now()
			j.mu.Unlock()
			close(j.done)
			return
		}
	}
	j.mu.Lock()
	j.state = StateActive
	j.Started = m.clock.Now()
	j.mu.Unlock()

	out, code, err := sh.Run(j.Cmdline)

	j.mu.Lock()
	j.output = out
	j.exitCode = code
	j.err = err
	if err != nil || code != 0 {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	j.Finished = m.clock.Now()
	j.mu.Unlock()
	close(j.done)
}

// Job returns a submitted job by ID, or nil.
func (m *Manager) Job(id uint64) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Submitted returns the total number of submissions.
func (m *Manager) Submitted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.submitted
}

// Site returns the managed site.
func (m *Manager) Site() *site.Site { return m.site }
