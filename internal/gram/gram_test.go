package gram

import (
	"testing"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

func testManager() (*Manager, *site.Site, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	s := site.New(site.Attributes{Name: "s1", Platform: "Intel", OS: "Linux"}, v, site.StandardUniverse())
	return NewManager(s, v), s, v
}

func TestSubmitRunsJob(t *testing.T) {
	m, s, v := testManager()
	s.FS.Mkdir("/work")
	t0 := v.Now()
	j := m.Submit("mkdir-p /work/out", "/work", nil)
	code, err := j.Wait()
	if err != nil || code != 0 {
		t.Fatalf("job failed: %d %v", code, err)
	}
	if j.State() != StateDone {
		t.Fatalf("state = %v", j.State())
	}
	if !s.FS.IsDir("/work/out") {
		t.Fatal("job had no effect")
	}
	if v.Now().Sub(t0) < m.SubmitOverhead {
		t.Fatal("submission overhead not charged")
	}
	if m.Submitted() != 1 {
		t.Fatalf("submitted = %d", m.Submitted())
	}
	if m.Job(j.ID) != j {
		t.Fatal("job lookup failed")
	}
	if m.Job(999) != nil {
		t.Fatal("unknown job must be nil")
	}
}

func TestFailingJob(t *testing.T) {
	m, _, _ := testManager()
	_, code, err := m.SubmitWait("no-such-command", "", nil)
	if code == 0 || err == nil {
		t.Fatal("failing command must fail the job")
	}
}

func TestBadWorkingDirectory(t *testing.T) {
	m, _, _ := testManager()
	j := m.Submit("echo hi", "/does/not/exist", nil)
	code, err := j.Wait()
	if code == 0 || err == nil {
		t.Fatal("bad dir must fail")
	}
	if j.State() != StateFailed {
		t.Fatalf("state = %v", j.State())
	}
}

func TestJobEnvPropagates(t *testing.T) {
	m, s, _ := testManager()
	out, code, err := m.SubmitWait("mkdir-p $TARGET", "", map[string]string{"TARGET": "/env/dir"})
	if code != 0 || err != nil {
		t.Fatalf("job: %v %v", out, err)
	}
	if !s.FS.IsDir("/env/dir") {
		t.Fatal("env not substituted")
	}
}

func TestJobTimestampsAndOutput(t *testing.T) {
	m, _, _ := testManager()
	j := m.Submit("echo hello world", "", nil)
	j.Wait()
	if j.Finished.Before(j.Started) || j.Started.Before(j.Submitted) {
		t.Fatalf("timestamps out of order: %v %v %v", j.Submitted, j.Started, j.Finished)
	}
	out := j.Output()
	if len(out) != 1 || out[0] != "hello world" {
		t.Fatalf("output = %v", out)
	}
}

func TestJobsAutoAnswerPrompts(t *testing.T) {
	// A batch GRAM job has no terminal: interactive installers must be
	// auto-answered (the generated deployment-script path of Example 1).
	m, s, _ := testManager()
	a, _ := s.Repo.ByName("POVray")
	s.FS.Mkdir("/b")
	s.FS.Write("/b/p.tgz", site.KindFile, a.SizeBytes, a.MD5(), a.Name)
	if _, code, err := m.SubmitWait("tar xvfz p.tgz", "/b", nil); code != 0 {
		t.Fatalf("tar: %v", err)
	}
	if _, code, err := m.SubmitWait("./configure", "/b/povray-3.6.1", nil); code != 0 {
		t.Fatalf("configure: %v", err)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[JobState]string{
		StatePending: "Pending", StateActive: "Active",
		StateDone: "Done", StateFailed: "Failed", JobState(42): "JobState(42)",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", int(st), st.String())
		}
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	m, s, _ := testManager()
	s.FS.Mkdir("/c")
	jobs := make([]*Job, 8)
	for i := range jobs {
		jobs[i] = m.Submit("mkdir-p /c/out", "/c", nil)
	}
	for _, j := range jobs {
		if code, err := j.Wait(); code != 0 || err != nil {
			t.Fatalf("concurrent job failed: %v", err)
		}
	}
}
