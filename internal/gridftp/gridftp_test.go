package gridftp

import (
	"strings"
	"testing"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/telemetry"
)

func fixture() (*Client, *site.Site, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	repo := site.StandardUniverse()
	s := site.New(site.Attributes{Name: "dst"}, v, repo)
	c := NewClient(v, repo, CostModel{LatencyPerTransfer: 100 * time.Millisecond, BytesPerMS: 1 << 20})
	return c, s, v
}

func TestFetchMaterializesFileAndChargesCost(t *testing.T) {
	c, s, v := fixture()
	a, _ := s.Repo.ByName("POVray")
	t0 := v.Now()
	if err := c.Fetch(a.URL, s, "/tmp/povray.tgz"); err != nil {
		t.Fatal(err)
	}
	e := s.FS.Stat("/tmp/povray.tgz")
	if e == nil || e.Size != a.SizeBytes || e.Artifact != "POVray" {
		t.Fatalf("entry = %+v", e)
	}
	want := 100*time.Millisecond + time.Duration(a.SizeBytes/(1<<20))*time.Millisecond
	if got := v.Now().Sub(t0); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	n, b := c.Stats()
	if n != 1 || b != a.SizeBytes {
		t.Fatalf("stats = %d, %d", n, b)
	}
}

func TestFetchUnknownURL(t *testing.T) {
	c, s, _ := fixture()
	if err := c.Fetch("http://nowhere/else.tgz", s, "/tmp/x"); err == nil {
		t.Fatal("unknown URL must fail")
	}
	if err := c.Fetch("not-a-url", s, "/tmp/x"); err == nil || !strings.Contains(err.Error(), "not a URL") {
		t.Fatalf("bad URL error = %v", err)
	}
}

func TestFetchChecked(t *testing.T) {
	c, s, _ := fixture()
	a, _ := s.Repo.ByName("Ant")
	if err := c.FetchChecked(a.URL, s, "/tmp/ant.tgz", a.MD5()); err != nil {
		t.Fatal(err)
	}
	if err := c.FetchChecked(a.URL, s, "/tmp/ant2.tgz", "wrong-sum"); err == nil {
		t.Fatal("md5 mismatch must fail")
	}
	if s.FS.Exists("/tmp/ant2.tgz") {
		t.Fatal("corrupt download must be removed")
	}
	// Empty expected sum skips verification.
	if err := c.FetchChecked(a.URL, s, "/tmp/ant3.tgz", ""); err != nil {
		t.Fatal(err)
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	c, dst, v := fixture()
	src := site.New(site.Attributes{Name: "src"}, v, dst.Repo)
	src.FS.Write("/data/result.png", site.KindFile, 2<<20, "sum", "")
	if err := c.ThirdParty(src, "/data/result.png", dst, "/home/glare/result.png"); err != nil {
		t.Fatal(err)
	}
	if e := dst.FS.Stat("/home/glare/result.png"); e == nil || e.Size != 2<<20 {
		t.Fatal("third-party copy failed")
	}
	if err := c.ThirdParty(src, "/missing", dst, "/x"); err == nil {
		t.Fatal("missing source must fail")
	}
}

func TestAttachEnablesShellCopy(t *testing.T) {
	c, s, _ := fixture()
	c.Attach(s)
	sh := s.NewShell()
	a, _ := s.Repo.ByName("Counter")
	if _, code, err := sh.Run("globus-url-copy " + a.URL + " file:///tmp/counter.tgz"); code != 0 {
		t.Fatalf("shell copy: %v", err)
	}
	if !s.FS.Exists("/tmp/counter.tgz") {
		t.Fatal("file not transferred")
	}
}

func TestCostModelDefaults(t *testing.T) {
	if DefaultCost.Duration(0) != DefaultCost.LatencyPerTransfer {
		t.Fatal("zero-size transfer should cost just latency")
	}
	zero := CostModel{}
	if zero.Duration(10<<20) <= 0 {
		t.Fatal("zero model must fall back to default bandwidth")
	}
	v := simclock.NewVirtual(time.Time{})
	c := NewClient(v, site.NewRepo(), CostModel{})
	if c.cost != DefaultCost {
		t.Fatal("empty cost model must default")
	}
}

func TestDurationRoundsUp(t *testing.T) {
	c := CostModel{LatencyPerTransfer: 10 * time.Millisecond, BytesPerMS: 1 << 20}
	// A 1-byte file occupies a full millisecond of channel time.
	if got := c.Duration(1); got != 11*time.Millisecond {
		t.Fatalf("1-byte transfer = %v, want 11ms", got)
	}
	// One byte over a bandwidth boundary rounds up to the next ms.
	if got := c.Duration(1<<20 + 1); got != 12*time.Millisecond {
		t.Fatalf("1MiB+1 transfer = %v, want 12ms", got)
	}
	if got := c.Duration(1 << 20); got != 11*time.Millisecond {
		t.Fatalf("exact 1MiB transfer = %v, want 11ms", got)
	}
	// BytesPerMS <= 0 falls back to the default bandwidth, still rounded up.
	zero := CostModel{}
	if got := zero.Duration(1); got != time.Millisecond {
		t.Fatalf("fallback 1-byte transfer = %v, want 1ms", got)
	}
	neg := CostModel{LatencyPerTransfer: time.Millisecond, BytesPerMS: -5}
	want := time.Millisecond + time.Duration((10<<20+DefaultCost.BytesPerMS-1)/DefaultCost.BytesPerMS)*time.Millisecond
	if got := neg.Duration(10 << 20); got != want {
		t.Fatalf("negative-bandwidth fallback = %v, want %v", got, want)
	}
}

func TestFetchSumPrefersDeclaredAlgo(t *testing.T) {
	c, s, _ := fixture()
	a, _ := s.Repo.ByName("Ant")
	if err := c.FetchSum(a.URL, s, "/tmp/a1.tgz", "sha256", a.SHA256()); err != nil {
		t.Fatal(err)
	}
	err := c.FetchSum(a.URL, s, "/tmp/a2.tgz", "sha256", "deadbeef")
	if err == nil || !strings.Contains(err.Error(), "sha256 mismatch") {
		t.Fatalf("sha256 mismatch error = %v", err)
	}
	if s.FS.Exists("/tmp/a2.tgz") {
		t.Fatal("mismatching copy must be removed")
	}
	// Empty sum skips verification.
	if err := c.FetchSum(a.URL, s, "/tmp/a3.tgz", "sha256", ""); err != nil {
		t.Fatal(err)
	}
}

func TestSourceAccounting(t *testing.T) {
	c, s, _ := fixture()
	a, _ := s.Repo.ByName("Ant")
	if err := c.Fetch(a.URL, s, "/tmp/ant.tgz"); err != nil {
		t.Fatal(err)
	}
	c.PeerCopy("peer.site", s, "/tmp/ant2.tgz", a.SizeBytes, a.MD5(), a.Name)
	if _, err := c.Pull(a.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pull("http://nowhere/x.tgz"); err == nil {
		t.Fatal("pull of unknown URL must fail")
	}
	stats := c.SourceStats()
	if got := stats[OriginSource]; got.Transfers != 2 || got.Bytes != 2*a.SizeBytes {
		t.Fatalf("origin stats = %+v", got)
	}
	if got := stats["peer.site"]; got.Transfers != 1 || got.Bytes != a.SizeBytes {
		t.Fatalf("peer stats = %+v", got)
	}
	if got := c.OriginFetches()[a.URL]; got != 2 {
		t.Fatalf("origin fetches for %s = %d, want 2", a.URL, got)
	}
	if !s.FS.Exists("/tmp/ant2.tgz") {
		t.Fatal("peer copy must materialize the file")
	}
}

func TestTransferTelemetryCounters(t *testing.T) {
	c, s, _ := fixture()
	tel := telemetry.New("dst")
	c.SetTelemetry(tel)
	a, _ := s.Repo.ByName("Ant")
	if err := c.Fetch(a.URL, s, "/tmp/ant.tgz"); err != nil {
		t.Fatal(err)
	}
	c.PeerCopy("peer.site", s, "/tmp/ant2.tgz", a.SizeBytes, a.MD5(), a.Name)
	if got := tel.Counter("glare_gridftp_transfers_total").Value(); got != 2 {
		t.Fatalf("transfers counter = %d, want 2", got)
	}
	if got := tel.Counter("glare_gridftp_bytes_total").Value(); got != uint64(2*a.SizeBytes) {
		t.Fatalf("bytes counter = %d, want %d", got, 2*a.SizeBytes)
	}
}
