// Package gridftp simulates the GridFTP data-movement substrate: transfers
// of installation archives and data files onto a site's virtual
// filesystem, with a latency + bandwidth cost model advancing the virtual
// clock.
//
// Table 1's "Communication Overhead" rows are the time GridFTP spends
// moving deploy-files, sources and libraries to the target site, so the
// cost model is the load-bearing part; bytes never actually move.
package gridftp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/telemetry"
)

// CostModel parameterizes transfer timing.
type CostModel struct {
	// LatencyPerTransfer is the fixed setup cost (control channel,
	// authentication) paid once per transfer.
	LatencyPerTransfer time.Duration
	// BytesPerMS is effective throughput in bytes per virtual millisecond.
	BytesPerMS int64
}

// DefaultCost approximates a well-connected national grid: ~80 ms setup,
// ~10 MB/s effective throughput.
var DefaultCost = CostModel{LatencyPerTransfer: 80 * time.Millisecond, BytesPerMS: 10 << 10}

// Duration computes the virtual time to move size bytes. Bandwidth time
// rounds up: any non-empty transfer occupies at least one millisecond of
// channel time, so a 1-byte file never rides for free.
func (c CostModel) Duration(size int64) time.Duration {
	bp := c.BytesPerMS
	if bp <= 0 {
		bp = DefaultCost.BytesPerMS
	}
	d := c.LatencyPerTransfer
	if size > 0 {
		d += time.Duration((size+bp-1)/bp) * time.Millisecond
	}
	return d
}

// OriginSource labels transfers served by the software repository itself
// in per-source accounting, as opposed to a named peer site.
const OriginSource = "origin"

// SourceStat tallies transfers attributed to one source.
type SourceStat struct {
	Transfers int
	Bytes     int64
}

// Client performs transfers into sites. One client is shared VO-wide.
type Client struct {
	mu    sync.Mutex
	clock simclock.Clock
	repo  *site.Repo
	cost  CostModel

	transfers int
	bytes     int64
	sources   map[string]*SourceStat
	originBy  map[string]int // origin fetches per source URL

	telTransfers *telemetry.Counter
	telBytes     *telemetry.Counter
}

// SetTelemetry exports the client's transfer tallies as
// glare_gridftp_transfers_total / glare_gridftp_bytes_total counters.
func (c *Client) SetTelemetry(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	c.mu.Lock()
	c.telTransfers = tel.Counter("glare_gridftp_transfers_total")
	c.telBytes = tel.Counter("glare_gridftp_bytes_total")
	c.mu.Unlock()
}

// account records one completed transfer of size bytes from source.
func (c *Client) account(source string, size int64) {
	c.mu.Lock()
	c.transfers++
	c.bytes += size
	if c.sources == nil {
		c.sources = map[string]*SourceStat{}
	}
	st := c.sources[source]
	if st == nil {
		st = &SourceStat{}
		c.sources[source] = st
	}
	st.Transfers++
	st.Bytes += size
	tt, tb := c.telTransfers, c.telBytes
	c.mu.Unlock()
	tt.Inc()
	tb.Add(uint64(size))
}

func (c *Client) accountOrigin(srcURL string, size int64) {
	c.account(OriginSource, size)
	c.mu.Lock()
	if c.originBy == nil {
		c.originBy = map[string]int{}
	}
	c.originBy[srcURL]++
	c.mu.Unlock()
}

// NewClient builds a transfer client over the software universe.
func NewClient(clock simclock.Clock, repo *site.Repo, cost CostModel) *Client {
	if clock == nil {
		clock = simclock.Real
	}
	if cost == (CostModel{}) {
		cost = DefaultCost
	}
	return &Client{clock: clock, repo: repo, cost: cost}
}

// Fetch transfers the object at srcURL into dst's filesystem at dstPath.
// Repository URLs resolve through the software universe; anything else is
// an error (the VO has no other data sources).
func (c *Client) Fetch(srcURL string, dst *site.Site, dstPath string) error {
	if !strings.Contains(srcURL, "://") {
		return fmt.Errorf("gridftp: %q is not a URL", srcURL)
	}
	a, ok := c.repo.ByURL(srcURL)
	if !ok {
		return fmt.Errorf("gridftp: no such object: %s", srcURL)
	}
	c.clock.Sleep(c.cost.Duration(a.SizeBytes))
	dst.FS.Write(dstPath, site.KindFile, a.SizeBytes, a.MD5(), a.Name)
	c.accountOrigin(srcURL, a.SizeBytes)
	return nil
}

// FetchChecked is Fetch plus md5 verification against the expected sum, as
// deploy-files carry md5sum attributes for their downloads.
func (c *Client) FetchChecked(srcURL string, dst *site.Site, dstPath, md5sum string) error {
	if err := c.Fetch(srcURL, dst, dstPath); err != nil {
		return err
	}
	if md5sum == "" {
		return nil
	}
	e := dst.FS.Stat(dstPath)
	if e == nil || e.MD5 != md5sum {
		got := ""
		if e != nil {
			got = e.MD5
		}
		dst.FS.Remove(dstPath)
		return &ChecksumError{URL: srcURL, Want: md5sum, Got: got}
	}
	return nil
}

// FetchSum is Fetch plus verification of the named checksum algorithm
// ("md5" or "sha256") against the declared sum; an empty sum skips
// verification. The mismatching copy is removed before the error returns,
// as with FetchChecked.
func (c *Client) FetchSum(srcURL string, dst *site.Site, dstPath, algo, sum string) error {
	if err := c.Fetch(srcURL, dst, dstPath); err != nil {
		return err
	}
	if sum == "" {
		return nil
	}
	got := ""
	if a, ok := c.repo.ByURL(srcURL); ok {
		got = a.Checksum(algo)
	}
	if got != sum {
		dst.FS.Remove(dstPath)
		return &ChecksumError{URL: srcURL, Algo: algo, Want: sum, Got: got}
	}
	return nil
}

// Pull charges an origin transfer of the artifact at srcURL without
// materializing a filesystem entry: the receiving site is ingesting the
// blob straight into its content-addressed store on behalf of a peer
// (pull-through), not installing it.
func (c *Client) Pull(srcURL string) (*site.Artifact, error) {
	a, ok := c.repo.ByURL(srcURL)
	if !ok {
		return nil, fmt.Errorf("gridftp: no such object: %s", srcURL)
	}
	c.clock.Sleep(c.cost.Duration(a.SizeBytes))
	c.accountOrigin(srcURL, a.SizeBytes)
	return a, nil
}

// PeerCopy charges a transfer of size bytes received from peer site
// `source` and writes the content into dst at dstPath. The caller has
// already verified the peer copy's checksum against the declared sum.
func (c *Client) PeerCopy(source string, dst *site.Site, dstPath string, size int64, md5, artifact string) {
	c.clock.Sleep(c.cost.Duration(size))
	dst.FS.Write(dstPath, site.KindFile, size, md5, artifact)
	c.account(source, size)
}

// ChecksumError reports a transfer whose content fingerprint did not match
// the deploy-file's declared checksum. It is retryable: the archive may
// have been torn in flight, and a fresh fetch can still produce the right
// bits.
type ChecksumError struct {
	URL  string
	Algo string // "" means md5 (legacy FetchChecked path)
	Want string
	Got  string
}

func (e *ChecksumError) Error() string {
	algo := e.Algo
	if algo == "" {
		algo = "md5"
	}
	return fmt.Sprintf("gridftp: %s mismatch for %s (want %s, got %q)", algo, e.URL, e.Want, e.Got)
}

// ThirdParty copies a file between two sites (third-party transfer).
func (c *Client) ThirdParty(src *site.Site, srcPath string, dst *site.Site, dstPath string) error {
	e, err := src.FS.MustStat(srcPath)
	if err != nil {
		return fmt.Errorf("gridftp: %w", err)
	}
	c.clock.Sleep(c.cost.Duration(e.Size))
	dst.FS.Write(dstPath, e.Kind, e.Size, e.MD5, e.Artifact)
	c.account(src.Attrs.Name, e.Size)
	return nil
}

// Attach wires this client into a site's shell so globus-url-copy works.
func (c *Client) Attach(s *site.Site) {
	s.Transfer = func(srcURL, dstPath string) error { return c.Fetch(srcURL, s, dstPath) }
}

// Stats reports total transfers and bytes moved.
func (c *Client) Stats() (transfers int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transfers, c.bytes
}

// SourceStats reports per-source transfer tallies: OriginSource for
// repository fetches, peer site names for CAS peer copies and third-party
// transfers.
func (c *Client) SourceStats() map[string]SourceStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SourceStat, len(c.sources))
	for s, st := range c.sources {
		out[s] = *st
	}
	return out
}

// OriginFetches reports how many times each source URL was fetched from
// origin through this client — the quantity the artifact grid exists to
// bound.
func (c *Client) OriginFetches() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.originBy))
	for u, n := range c.originBy {
		out[u] = n
	}
	return out
}
