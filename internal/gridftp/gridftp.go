// Package gridftp simulates the GridFTP data-movement substrate: transfers
// of installation archives and data files onto a site's virtual
// filesystem, with a latency + bandwidth cost model advancing the virtual
// clock.
//
// Table 1's "Communication Overhead" rows are the time GridFTP spends
// moving deploy-files, sources and libraries to the target site, so the
// cost model is the load-bearing part; bytes never actually move.
package gridftp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

// CostModel parameterizes transfer timing.
type CostModel struct {
	// LatencyPerTransfer is the fixed setup cost (control channel,
	// authentication) paid once per transfer.
	LatencyPerTransfer time.Duration
	// BytesPerMS is effective throughput in bytes per virtual millisecond.
	BytesPerMS int64
}

// DefaultCost approximates a well-connected national grid: ~80 ms setup,
// ~10 MB/s effective throughput.
var DefaultCost = CostModel{LatencyPerTransfer: 80 * time.Millisecond, BytesPerMS: 10 << 10}

// Duration computes the virtual time to move size bytes.
func (c CostModel) Duration(size int64) time.Duration {
	bp := c.BytesPerMS
	if bp <= 0 {
		bp = DefaultCost.BytesPerMS
	}
	return c.LatencyPerTransfer + time.Duration(size/bp)*time.Millisecond
}

// Client performs transfers into sites. One client is shared VO-wide.
type Client struct {
	mu    sync.Mutex
	clock simclock.Clock
	repo  *site.Repo
	cost  CostModel

	transfers int
	bytes     int64
}

// NewClient builds a transfer client over the software universe.
func NewClient(clock simclock.Clock, repo *site.Repo, cost CostModel) *Client {
	if clock == nil {
		clock = simclock.Real
	}
	if cost == (CostModel{}) {
		cost = DefaultCost
	}
	return &Client{clock: clock, repo: repo, cost: cost}
}

// Fetch transfers the object at srcURL into dst's filesystem at dstPath.
// Repository URLs resolve through the software universe; anything else is
// an error (the VO has no other data sources).
func (c *Client) Fetch(srcURL string, dst *site.Site, dstPath string) error {
	if !strings.Contains(srcURL, "://") {
		return fmt.Errorf("gridftp: %q is not a URL", srcURL)
	}
	a, ok := c.repo.ByURL(srcURL)
	if !ok {
		return fmt.Errorf("gridftp: no such object: %s", srcURL)
	}
	c.clock.Sleep(c.cost.Duration(a.SizeBytes))
	dst.FS.Write(dstPath, site.KindFile, a.SizeBytes, a.MD5(), a.Name)
	c.mu.Lock()
	c.transfers++
	c.bytes += a.SizeBytes
	c.mu.Unlock()
	return nil
}

// FetchChecked is Fetch plus md5 verification against the expected sum, as
// deploy-files carry md5sum attributes for their downloads.
func (c *Client) FetchChecked(srcURL string, dst *site.Site, dstPath, md5sum string) error {
	if err := c.Fetch(srcURL, dst, dstPath); err != nil {
		return err
	}
	if md5sum == "" {
		return nil
	}
	e := dst.FS.Stat(dstPath)
	if e == nil || e.MD5 != md5sum {
		got := ""
		if e != nil {
			got = e.MD5
		}
		dst.FS.Remove(dstPath)
		return &ChecksumError{URL: srcURL, Want: md5sum, Got: got}
	}
	return nil
}

// ChecksumError reports a transfer whose content fingerprint did not match
// the deploy-file's declared md5sum. It is retryable: the archive may have
// been torn in flight, and a fresh fetch can still produce the right bits.
type ChecksumError struct {
	URL  string
	Want string
	Got  string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("gridftp: md5 mismatch for %s (want %s, got %q)", e.URL, e.Want, e.Got)
}

// ThirdParty copies a file between two sites (third-party transfer).
func (c *Client) ThirdParty(src *site.Site, srcPath string, dst *site.Site, dstPath string) error {
	e, err := src.FS.MustStat(srcPath)
	if err != nil {
		return fmt.Errorf("gridftp: %w", err)
	}
	c.clock.Sleep(c.cost.Duration(e.Size))
	dst.FS.Write(dstPath, e.Kind, e.Size, e.MD5, e.Artifact)
	c.mu.Lock()
	c.transfers++
	c.bytes += e.Size
	c.mu.Unlock()
	return nil
}

// Attach wires this client into a site's shell so globus-url-copy works.
func (c *Client) Attach(s *site.Site) {
	s.Transfer = func(srcURL, dstPath string) error { return c.Fetch(srcURL, s, dstPath) }
}

// Stats reports total transfers and bytes moved.
func (c *Client) Stats() (transfers int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transfers, c.bytes
}
