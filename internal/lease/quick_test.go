package lease

import (
	"testing"
	"testing/quick"
	"time"

	"glare/internal/simclock"
)

// op encodes one random action against the lease service.
type op struct {
	Kind    uint8 // 0 acquire-shared, 1 acquire-exclusive, 2 release, 3 advance
	Client  uint8
	Seconds uint8
}

// Property: under any operation sequence, the service invariants hold:
//   - at most one exclusive lease per deployment, never alongside shared;
//   - active shared leases never exceed the configured limit;
//   - ActiveLeases agrees with what Acquire/Release reported.
func TestQuickLeaseInvariants(t *testing.T) {
	const dep = "dep"
	const limit = 3
	f := func(ops []op) bool {
		clock := simclock.NewVirtual(time.Time{})
		s := NewService(clock)
		s.SetSharedLimit(dep, limit)
		type live struct {
			id   uint64
			kind Kind
			end  time.Time
		}
		var mine []live
		expire := func() {
			now := clock.Now()
			kept := mine[:0]
			for _, l := range mine {
				if l.end.After(now) {
					kept = append(kept, l)
				}
			}
			mine = kept
		}
		for _, o := range ops {
			expire()
			switch o.Kind % 4 {
			case 0, 1:
				kind := Shared
				if o.Kind%4 == 1 {
					kind = Exclusive
				}
				d := time.Duration(o.Seconds%60+1) * time.Second
				tk, err := s.Acquire(dep, clientName(o.Client), kind, d)
				// Model what must have happened.
				var excl, shared int
				for _, l := range mine {
					if l.kind == Exclusive {
						excl++
					} else {
						shared++
					}
				}
				shouldFail := excl > 0 ||
					(kind == Exclusive && shared > 0) ||
					(kind == Shared && shared >= limit)
				if shouldFail != (err != nil) {
					return false
				}
				if err == nil {
					mine = append(mine, live{id: tk.ID, kind: kind, end: tk.End})
				}
			case 2:
				if len(mine) > 0 {
					idx := int(o.Client) % len(mine)
					if s.Release(mine[idx].id) != nil {
						return false
					}
					mine = append(mine[:idx], mine[idx+1:]...)
				}
			case 3:
				clock.Advance(time.Duration(o.Seconds%30) * time.Second)
			}
			expire()
			if got := s.ActiveLeases(dep); got != len(mine) {
				return false
			}
			inUse, excl := s.InUse(dep)
			if inUse != (len(mine) > 0) {
				return false
			}
			wantExcl := len(mine) > 0 && mine[0].kind == Exclusive
			if excl != wantExcl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clientName(c uint8) string {
	return "client-" + string(rune('a'+c%8))
}
