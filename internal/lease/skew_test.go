package lease

import (
	"errors"
	"testing"
	"time"

	"glare/internal/simclock"
)

// Lease semantics under clock skew, pinned: a lease's window is measured
// ENTIRELY in the granting site's clock frame — Acquire stamps
// [now, now+d) from the granter's clock and every later validity check
// (Authorize, conflict detection, expiry) reads the SAME clock. A fixed
// absolute offset therefore cancels: a site running 10 minutes fast
// grants leases that last exactly d of real time, never d minus the
// skew. Holders never compare the ticket's absolute Start/End against
// their own clocks; they hold the ticket ID and let the granter judge
// validity, so a granter/holder disagreement about what time it is
// cannot expire a lease early from the holder's perspective.
func TestLeaseWindowIsGranterFrame(t *testing.T) {
	base := simclock.NewVirtual(time.Time{})
	fast := simclock.NewSkewed(base)
	fast.SetOffset(10 * time.Minute) // granter runs 10 minutes fast

	s := NewService(fast)
	tk, err := s.Acquire("jpovray", "sched-1", Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// The ticket's absolute stamps live in the granter's (skewed) frame.
	if got := tk.End.Sub(tk.Start); got != time.Hour {
		t.Fatalf("lease window = %v, want 1h", got)
	}

	// 50 real minutes later — 10 minutes shy of expiry in ANY frame,
	// because both grant and check use the granter's clock and the fixed
	// offset cancels. A naive implementation that had stamped End from a
	// true clock but checked with the fast one would expire here.
	base.Advance(50 * time.Minute)
	if err := s.Authorize(tk.ID, "sched-1", "jpovray"); err != nil {
		t.Fatalf("lease expired early under +10m granter skew: %v", err)
	}
	if _, err := s.Acquire("jpovray", "rival", Exclusive, time.Hour); !errors.Is(err, ErrConflict) {
		t.Fatalf("exclusive lease not enforced at minute 50: %v", err)
	}

	// Past the full hour of real time the lease lapses — skew shifts the
	// window's absolute stamps, not its duration.
	base.Advance(11 * time.Minute)
	if _, err := s.Acquire("jpovray", "rival", Exclusive, time.Hour); err != nil {
		t.Fatalf("lease outlived its window under skew: %v", err)
	}
}

// A slow granter is the symmetric case: the window still spans exactly d
// of real time. Only drift (a clock running at the wrong RATE) changes a
// lease's real-time length, and then proportionally to the drift.
func TestLeaseWindowSlowGranter(t *testing.T) {
	base := simclock.NewVirtual(time.Time{})
	slow := simclock.NewSkewed(base)
	slow.SetOffset(-10 * time.Minute)

	s := NewService(slow)
	tk, err := s.Acquire("jpovray", "sched-1", Exclusive, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	base.Advance(29 * time.Minute)
	if err := s.Authorize(tk.ID, "sched-1", "jpovray"); err != nil {
		t.Fatalf("lease expired early under -10m granter skew: %v", err)
	}
	base.Advance(2 * time.Minute)
	if err := s.Authorize(tk.ID, "sched-1", "jpovray"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("expired lease still authorized under negative skew: %v", err)
	}
}
