package lease

import (
	"errors"
	"testing"
	"time"

	"glare/internal/simclock"
)

func fixture() (*Service, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	return NewService(v), v
}

func TestExclusiveLease(t *testing.T) {
	s, v := fixture()
	tk, err := s.Acquire("jpovray", "scheduler-1", Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Valid(v.Now()) {
		t.Fatal("fresh ticket invalid")
	}
	// No one else may lease it, shared or exclusive.
	if _, err := s.Acquire("jpovray", "other", Exclusive, time.Hour); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Acquire("jpovray", "other", Shared, time.Hour); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	inUse, excl := s.InUse("jpovray")
	if !inUse || !excl {
		t.Fatal("InUse wrong")
	}
	// The holder is authorized; others are not.
	if err := s.Authorize(tk.ID, "scheduler-1", "jpovray"); err != nil {
		t.Fatal(err)
	}
	if err := s.Authorize(tk.ID, "intruder", "jpovray"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Authorize(tk.ID, "scheduler-1", "other-dep"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedLeaseConcurrencyLimit(t *testing.T) {
	s, _ := fixture()
	s.SetSharedLimit("wien2k", 2)
	a, err := s.Acquire("wien2k", "c1", Shared, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("wien2k", "c2", Shared, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("wien2k", "c3", Shared, time.Hour); !errors.Is(err, ErrLimit) {
		t.Fatalf("limit not enforced: %v", err)
	}
	// Exclusive conflicts with shared holders.
	if _, err := s.Acquire("wien2k", "c4", Exclusive, time.Hour); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	// Releasing frees a slot.
	if err := s.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("wien2k", "c3", Shared, time.Hour); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if s.ActiveLeases("wien2k") != 2 {
		t.Fatalf("active = %d", s.ActiveLeases("wien2k"))
	}
}

func TestUnlimitedSharedByDefault(t *testing.T) {
	s, _ := fixture()
	for i := 0; i < 50; i++ {
		if _, err := s.Acquire("counter", "c", Shared, time.Hour); err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
	}
}

func TestLeaseExpiry(t *testing.T) {
	s, v := fixture()
	tk, _ := s.Acquire("d", "c", Exclusive, time.Minute)
	v.Advance(2 * time.Minute)
	// Expired exclusive no longer blocks.
	if _, err := s.Acquire("d", "c2", Exclusive, time.Minute); err != nil {
		t.Fatalf("expired lease still blocking: %v", err)
	}
	// And the old ticket no longer authorizes.
	if err := s.Authorize(tk.ID, "c", "d"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v", err)
	}
	inUse, _ := s.InUse("nonexistent")
	if inUse {
		t.Fatal("unknown deployment in use")
	}
}

func TestReleaseUnknown(t *testing.T) {
	s, _ := fixture()
	if err := s.Release(99); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Authorize(99, "c", "d"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestAcquireValidation(t *testing.T) {
	s, _ := fixture()
	if _, err := s.Acquire("", "c", Shared, time.Hour); err == nil {
		t.Fatal("empty deployment must fail")
	}
	if _, err := s.Acquire("d", "", Shared, time.Hour); err == nil {
		t.Fatal("empty client must fail")
	}
	if _, err := s.Acquire("d", "c", Shared, 0); err == nil {
		t.Fatal("zero duration must fail")
	}
	if _, err := s.Acquire("d", "c", Kind("weird"), time.Hour); err == nil {
		t.Fatal("bad kind must fail")
	}
}

func TestExclusiveAfterSharedExpiry(t *testing.T) {
	s, v := fixture()
	s.Acquire("d", "c1", Shared, time.Minute)
	s.Acquire("d", "c2", Shared, 2*time.Minute)
	if _, err := s.Acquire("d", "x", Exclusive, time.Hour); !errors.Is(err, ErrConflict) {
		t.Fatal("shared leases must block exclusive")
	}
	v.Advance(3 * time.Minute)
	if _, err := s.Acquire("d", "x", Exclusive, time.Hour); err != nil {
		t.Fatalf("after expiry: %v", err)
	}
}

func TestTicketValidWindow(t *testing.T) {
	now := time.Now()
	tk := Ticket{Start: now, End: now.Add(time.Hour)}
	if !tk.Valid(now) {
		t.Fatal("start instant must be valid")
	}
	if tk.Valid(now.Add(time.Hour)) {
		t.Fatal("end instant must be invalid")
	}
	if tk.Valid(now.Add(-time.Second)) {
		t.Fatal("before start must be invalid")
	}
}

func TestReleaseByDeployment(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	s := NewService(v)
	j := &journalRec{}
	s.SetJournal(j)

	ex, err := s.Acquire("jpovray", "c1", Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sh1, err := s.Acquire("wien2k", "c2", Shared, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := s.Acquire("wien2k", "c3", Shared, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	ids := s.ReleaseByDeployment("wien2k")
	if len(ids) != 2 || ids[0] != sh1.ID || ids[1] != sh2.ID {
		t.Fatalf("released %v, want [%d %d]", ids, sh1.ID, sh2.ID)
	}
	// Both shared tickets are gone and journaled; the other deployment's
	// exclusive lease is untouched.
	if len(j.released) != 2 {
		t.Fatalf("journaled releases = %v", j.released)
	}
	if err := s.Authorize(sh1.ID, "c2", "wien2k"); err == nil {
		t.Fatal("released ticket still authorizes")
	}
	if err := s.Authorize(ex.ID, "c1", "jpovray"); err != nil {
		t.Fatalf("unrelated lease disturbed: %v", err)
	}
	if used, _ := s.InUse("wien2k"); used {
		t.Fatal("deployment still marked in use")
	}
	if got := s.ReleaseByDeployment("wien2k"); got != nil {
		t.Fatalf("second release = %v, want nil", got)
	}
	// The freed deployment accepts new leases (state fully reset).
	if _, err := s.Acquire("wien2k", "c4", Exclusive, time.Hour); err != nil {
		t.Fatalf("re-acquire after bulk release: %v", err)
	}
}
