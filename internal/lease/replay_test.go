package lease

import (
	"errors"
	"testing"
	"time"

	"glare/internal/simclock"
)

// journalRec captures the mutations a Service emits.
type journalRec struct {
	acquired []Ticket
	released []uint64
	limits   map[string]int
}

func (j *journalRec) RecordAcquire(t Ticket)  { j.acquired = append(j.acquired, t) }
func (j *journalRec) RecordRelease(id uint64) { j.released = append(j.released, id) }
func (j *journalRec) RecordLimit(dep string, max int) {
	if j.limits == nil {
		j.limits = map[string]int{}
	}
	j.limits[dep] = max
}

func TestJournalSeesMutations(t *testing.T) {
	clock := simclock.NewVirtual(time.Time{})
	s := NewService(clock)
	j := &journalRec{}
	s.SetJournal(j)

	tk, err := s.Acquire("jpovray", "c1", Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSharedLimit("wien2k", 4)
	if err := s.Release(tk.ID); err != nil {
		t.Fatal(err)
	}
	if len(j.acquired) != 1 || j.acquired[0].ID != tk.ID {
		t.Fatalf("acquired journal = %+v", j.acquired)
	}
	if len(j.released) != 1 || j.released[0] != tk.ID {
		t.Fatalf("released journal = %+v", j.released)
	}
	if j.limits["wien2k"] != 4 {
		t.Fatalf("limit journal = %+v", j.limits)
	}
	// Failed acquires must not be journaled.
	if _, err := s.Acquire("jpovray", "", Exclusive, time.Hour); err == nil {
		t.Fatal("bad acquire accepted")
	}
	if len(j.acquired) != 1 {
		t.Fatalf("failed acquire journaled: %+v", j.acquired)
	}
}

// TestReplayDropsExpiredLease is the crash-recovery semantic of the
// issue: a lease that expired while the site was down is NOT resurrected
// — the deployment returns to the shared pool — but its ticket ID is
// retired so the restarted service never reissues it.
func TestReplayDropsExpiredLease(t *testing.T) {
	clock := simclock.NewVirtual(time.Time{})
	before := NewService(clock)
	tk, err := before.Acquire("jpovray", "c1", Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// The site "crashes"; 2 hours pass; a fresh service replays the
	// journaled ticket.
	clock.Advance(2 * time.Hour)
	after := NewService(clock)
	if after.Restore(tk) {
		t.Fatal("expired ticket was revived")
	}
	if n := after.ActiveLeases("jpovray"); n != 0 {
		t.Fatalf("active leases = %d, want 0", n)
	}
	// The pool is free again: a new client can lease the deployment…
	nt, err := after.Acquire("jpovray", "c2", Exclusive, time.Hour)
	if err != nil {
		t.Fatalf("deployment not returned to pool: %v", err)
	}
	// …but the dead ticket's ID was retired, never reused.
	if nt.ID <= tk.ID {
		t.Fatalf("reissued ID %d <= retired ID %d", nt.ID, tk.ID)
	}
	// And the expired ticket authorizes nothing.
	if err := after.Authorize(tk.ID, "c1", "jpovray"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("expired ticket authorize = %v", err)
	}
}

func TestReplayRevivesUnexpiredLease(t *testing.T) {
	clock := simclock.NewVirtual(time.Time{})
	before := NewService(clock)
	tk, err := before.Acquire("jpovray", "c1", Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	clock.Advance(10 * time.Minute) // restart well inside the lease window
	after := NewService(clock)
	if !after.Restore(tk) {
		t.Fatal("valid ticket not revived")
	}
	// The lease still excludes other clients…
	if _, err := after.Acquire("jpovray", "c2", Exclusive, time.Hour); !errors.Is(err, ErrConflict) {
		t.Fatalf("acquire on revived lease = %v", err)
	}
	// …and still authorizes its holder.
	if err := after.Authorize(tk.ID, "c1", "jpovray"); err != nil {
		t.Fatalf("revived ticket authorize = %v", err)
	}
	inUse, exclusive := after.InUse("jpovray")
	if !inUse || !exclusive {
		t.Fatalf("InUse = %v, %v", inUse, exclusive)
	}
}

func TestRestoreLimitAndRetireID(t *testing.T) {
	clock := simclock.NewVirtual(time.Time{})
	s := NewService(clock)
	s.RestoreLimit("wien2k", 2)
	s.RetireID(17)

	if _, err := s.Acquire("wien2k", "a", Shared, time.Hour); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Acquire("wien2k", "b", Shared, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID <= 17 {
		t.Fatalf("ticket ID %d not past retired 17", tk.ID)
	}
	if _, err := s.Acquire("wien2k", "c", Shared, time.Hour); !errors.Is(err, ErrLimit) {
		t.Fatalf("restored limit not enforced: %v", err)
	}
}
