// Package lease implements GLARE's deployment leasing, the GridARM
// reservation analogue of paper §3.2:
//
//	"The GLARE service provides the capability to lease an activity
//	deployment ... A fine-grained reservation of a specific activity
//	instead of the entire Grid site is supported. A user with valid
//	reservation ticket is authorized to instantiate the reserved
//	activity. A lease can be exclusive or shared. In case of an
//	exclusive lease no one else is allowed to use the activity, during
//	its leased timeframe. In case of shared lease, multiple clients can
//	use the leased activity but GridARM reservation service ensures that
//	the number of concurrent clients does not exceed the allowed limits."
package lease

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"glare/internal/simclock"
)

// Kind distinguishes exclusive from shared leases.
type Kind string

const (
	Exclusive Kind = "exclusive"
	Shared    Kind = "shared"
)

// Ticket authorizes a client to instantiate a leased deployment.
type Ticket struct {
	ID         uint64
	Deployment string
	Client     string
	Kind       Kind
	Start      time.Time
	End        time.Time
}

// Valid reports whether the ticket covers the given instant.
func (t Ticket) Valid(now time.Time) bool {
	return !now.Before(t.Start) && now.Before(t.End)
}

// Errors returned by the service.
var (
	ErrConflict     = errors.New("lease: conflicts with an existing lease")
	ErrLimit        = errors.New("lease: concurrent client limit reached")
	ErrUnknown      = errors.New("lease: no such ticket")
	ErrUnauthorized = errors.New("lease: ticket does not authorize this use")
)

// Journal receives every lease mutation for durable replay (the
// write-ahead log of internal/store satisfies it). Implementations must
// be safe for concurrent use; nil means no persistence.
type Journal interface {
	RecordAcquire(t Ticket)
	RecordRelease(id uint64)
	RecordLimit(deployment string, max int)
}

// deploymentState tracks the active leases of one deployment.
type deploymentState struct {
	exclusive *Ticket
	shared    map[uint64]*Ticket
	// maxShared bounds concurrent shared lessees; 0 = unlimited.
	maxShared int
}

// Service is the reservation service of one GLARE site.
type Service struct {
	mu      sync.Mutex
	clock   simclock.Clock
	nextID  uint64
	deps    map[string]*deploymentState
	byID    map[uint64]*Ticket
	journal Journal
}

// NewService creates an empty reservation service.
func NewService(clock simclock.Clock) *Service {
	if clock == nil {
		clock = simclock.Real
	}
	return &Service{
		clock: clock,
		deps:  make(map[string]*deploymentState),
		byID:  make(map[uint64]*Ticket),
	}
}

// SetJournal binds the durability journal; call during site assembly,
// before serving traffic.
func (s *Service) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// SetSharedLimit bounds the number of concurrent shared lessees of a
// deployment ("the number of concurrent clients does not exceed the
// allowed limits"); 0 removes the bound.
func (s *Service) SetSharedLimit(deployment string, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stateLocked(deployment)
	st.maxShared = max
	if s.journal != nil {
		s.journal.RecordLimit(deployment, max)
	}
}

// Restore re-installs a journaled ticket during crash recovery. The
// ticket's ID is retired unconditionally — a restarted site must never
// reissue an ID that was handed to a client before the crash — but the
// lease itself is only revived if still unexpired: an expired ticket is
// dropped and its deployment returns to the shared pool rather than being
// resurrected. Reports whether the ticket was revived. No journal entry
// is written (replay must not re-journal what it reads).
func (s *Service) Restore(t Ticket) bool {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.ID > s.nextID {
		s.nextID = t.ID
	}
	if !t.Valid(now) {
		return false
	}
	st := s.stateLocked(t.Deployment)
	tt := t
	if t.Kind == Exclusive {
		st.exclusive = &tt
	} else {
		st.shared[t.ID] = &tt
	}
	s.byID[t.ID] = &tt
	return true
}

// RestoreLimit re-installs a journaled shared-lessee bound during crash
// recovery, without re-journaling it.
func (s *Service) RestoreLimit(deployment string, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stateLocked(deployment).maxShared = max
}

// RetireID advances the ID allocator past id without reviving anything;
// recovery calls it for journaled tickets that no longer exist so released
// IDs are never reused either.
func (s *Service) RetireID(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id > s.nextID {
		s.nextID = id
	}
}

func (s *Service) stateLocked(deployment string) *deploymentState {
	st := s.deps[deployment]
	if st == nil {
		st = &deploymentState{shared: make(map[uint64]*Ticket)}
		s.deps[deployment] = st
	}
	return st
}

// expireLocked drops lapsed leases of one deployment.
func (s *Service) expireLocked(st *deploymentState, now time.Time) {
	if st.exclusive != nil && !st.exclusive.Valid(now) {
		delete(s.byID, st.exclusive.ID)
		st.exclusive = nil
	}
	for id, t := range st.shared {
		if !t.Valid(now) {
			delete(st.shared, id)
			delete(s.byID, id)
		}
	}
}

// Acquire leases a deployment for the client over [now, now+d).
func (s *Service) Acquire(deployment, client string, kind Kind, d time.Duration) (Ticket, error) {
	if deployment == "" || client == "" {
		return Ticket{}, fmt.Errorf("lease: deployment and client are required")
	}
	if d <= 0 {
		return Ticket{}, fmt.Errorf("lease: non-positive duration %v", d)
	}
	if kind != Exclusive && kind != Shared {
		return Ticket{}, fmt.Errorf("lease: unknown kind %q", kind)
	}
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stateLocked(deployment)
	s.expireLocked(st, now)

	switch kind {
	case Exclusive:
		if st.exclusive != nil || len(st.shared) > 0 {
			return Ticket{}, ErrConflict
		}
	case Shared:
		if st.exclusive != nil {
			return Ticket{}, ErrConflict
		}
		if st.maxShared > 0 && len(st.shared) >= st.maxShared {
			return Ticket{}, ErrLimit
		}
	}
	s.nextID++
	t := &Ticket{
		ID: s.nextID, Deployment: deployment, Client: client, Kind: kind,
		Start: now, End: now.Add(d),
	}
	if kind == Exclusive {
		st.exclusive = t
	} else {
		st.shared[t.ID] = t
	}
	s.byID[t.ID] = t
	if s.journal != nil {
		s.journal.RecordAcquire(*t)
	}
	return *t, nil
}

// Release ends a lease early.
func (s *Service) Release(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	if !ok {
		return ErrUnknown
	}
	delete(s.byID, id)
	st := s.deps[t.Deployment]
	if st != nil {
		if st.exclusive != nil && st.exclusive.ID == id {
			st.exclusive = nil
		}
		delete(st.shared, id)
	}
	if s.journal != nil {
		s.journal.RecordRelease(id)
	}
	return nil
}

// ReleaseByDeployment releases every outstanding ticket on a deployment
// and returns the released IDs (ascending). This is the undeploy path: a
// removed deployment must not keep live reservations, and each release is
// journaled so a restart cannot resurrect a lease on a deployment that no
// longer exists.
func (s *Service) ReleaseByDeployment(deployment string) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.deps[deployment]
	if st == nil {
		return nil
	}
	var ids []uint64
	if st.exclusive != nil {
		ids = append(ids, st.exclusive.ID)
	}
	for id := range st.shared {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		delete(s.byID, id)
		if s.journal != nil {
			s.journal.RecordRelease(id)
		}
	}
	delete(s.deps, deployment)
	return ids
}

// Authorize checks that the ticket permits the client to use the
// deployment now. It is what the instantiation path consults before
// starting a leased activity.
func (s *Service) Authorize(id uint64, client, deployment string) error {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	if !ok {
		return ErrUnknown
	}
	if !t.Valid(now) {
		delete(s.byID, id)
		if st := s.deps[t.Deployment]; st != nil {
			if st.exclusive != nil && st.exclusive.ID == id {
				st.exclusive = nil
			}
			delete(st.shared, id)
		}
		return ErrUnknown
	}
	if t.Client != client || t.Deployment != deployment {
		return ErrUnauthorized
	}
	return nil
}

// InUse reports whether the deployment currently has any valid lease, and
// whether that lease is exclusive.
func (s *Service) InUse(deployment string) (inUse, exclusive bool) {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.deps[deployment]
	if st == nil {
		return false, false
	}
	s.expireLocked(st, now)
	if st.exclusive != nil {
		return true, true
	}
	return len(st.shared) > 0, false
}

// ActiveLeases returns the number of currently valid leases on the
// deployment.
func (s *Service) ActiveLeases(deployment string) int {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.deps[deployment]
	if st == nil {
		return 0
	}
	s.expireLocked(st, now)
	n := len(st.shared)
	if st.exclusive != nil {
		n++
	}
	return n
}
