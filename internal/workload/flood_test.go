package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"glare/internal/transport"
)

func TestFloodTallyClassification(t *testing.T) {
	tally := &floodTally{}
	tally.observe(nil, time.Millisecond)
	tally.observe(&transport.Unavailable{Reason: "server-shed"}, time.Millisecond)
	tally.observe(&transport.Unavailable{Reason: "server-brownout"}, time.Millisecond)
	tally.observe(&transport.Unavailable{Reason: "server-expired"}, time.Millisecond)
	tally.observe(&transport.Unavailable{Reason: "deadline"}, time.Millisecond)
	tally.observe(&transport.Unavailable{Reason: "timeout"}, time.Millisecond)
	tally.observe(&transport.Unavailable{Reason: "connection"}, time.Millisecond)
	tally.observe(&transport.Fault{Message: "bad request"}, time.Millisecond)
	tally.observe(context.DeadlineExceeded, time.Millisecond)
	tally.observe(errors.New("mystery"), time.Millisecond)

	st := tally.finish("mix", "interactive", time.Second)
	want := OpStats{
		Name: "mix", Class: "interactive",
		Issued: 10, OK: 1, Shed: 2, Expired: 4, Unavailable: 2, Faults: 1,
		P50: time.Millisecond, P99: time.Millisecond, Goodput: 1,
	}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestRunFloodBudgetEnforced(t *testing.T) {
	var sawDeadline atomic.Bool
	res := RunFlood(context.Background(), FloodConfig{
		Duration: 50 * time.Millisecond,
		Ops: []FloodOp{{
			Name: "probe", Class: "control", Clients: 2,
			Budget: 10 * time.Millisecond,
			Do: func(ctx context.Context) error {
				if _, ok := ctx.Deadline(); ok {
					sawDeadline.Store(true)
				}
				return nil
			},
		}},
	})
	if !sawDeadline.Load() {
		t.Fatal("Budget did not reach the call context")
	}
	op := res.Op("probe")
	if op.Issued == 0 || op.OK != op.Issued {
		t.Fatalf("stats = %+v, want all OK", op)
	}
	if res.Goodput() <= 0 {
		t.Fatalf("goodput = %v, want > 0", res.Goodput())
	}
}

func TestRunFloodCountsBudgetExpiry(t *testing.T) {
	res := RunFlood(context.Background(), FloodConfig{
		Duration: 60 * time.Millisecond,
		Ops: []FloodOp{{
			Name: "slow", Class: "bulk", Clients: 1,
			Budget: 5 * time.Millisecond,
			Do: func(ctx context.Context) error {
				<-ctx.Done() // always outlives its budget
				return ctx.Err()
			},
		}},
	})
	op := res.Op("slow")
	if op.Expired == 0 {
		t.Fatalf("stats = %+v, want budget expiries tallied", op)
	}
	if op.OK != 0 {
		t.Fatalf("stats = %+v, want no successes", op)
	}
}

func TestQuantile(t *testing.T) {
	lats := []time.Duration{5, 1, 4, 2, 3}
	if got := quantile(lats, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := quantile(lats, 0.99); got != 4 {
		t.Fatalf("p99 over 5 samples = %v, want 4 (index 3)", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}
