// Flood is the overload request generator: the paper's Fig. 10/11
// experiment shape, where a growing crowd of schedulers hammers one
// community until its index collapses — except here the point is to show
// the admission layer *preventing* the collapse. A flood runs several
// operation mixes at once (control probes, interactive resolutions, bulk
// scans), each with its own closed-loop client fleet and deadline
// budget, and reports per-class goodput, shed/expiry counts and latency
// quantiles so a test can assert the brownout ladder: control and
// interactive hold their SLOs while bulk sheds.
package workload

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"glare/internal/faultinject"
	"glare/internal/transport"
)

// FloodOp is one operation mix in a flood: Clients concurrent
// closed-loop callers, each giving every call a Budget of deadline.
type FloodOp struct {
	// Name labels the mix in the result ("resolve", "scan", ...).
	Name string
	// Class is the priority class the operation lands in, for reporting
	// ("control", "interactive", "bulk").
	Class string
	// Clients is the closed-loop fleet size.
	Clients int
	// Budget is the per-call deadline budget propagated to the server;
	// zero sends no deadline.
	Budget time.Duration
	// Ramp staggers the fleet's starts evenly across this duration, so
	// the flood's offered load builds up like a real client horde instead
	// of one phase-locked burst.
	Ramp time.Duration
	// Do issues one operation. ctx carries the call's deadline.
	Do func(ctx context.Context) error
}

// FloodConfig drives RunFlood.
type FloodConfig struct {
	// Duration is how long the flood runs.
	Duration time.Duration
	// Ops are the concurrent operation mixes.
	Ops []FloodOp
}

// OpStats is one operation mix's outcome tally.
type OpStats struct {
	Name  string
	Class string
	// Issued counts completed calls; OK the successful ones.
	Issued uint64
	OK     uint64
	// Shed counts admission refusals (server-shed, server-brownout);
	// Expired counts deadline losses on either side (server-expired,
	// client deadline, timeout); Unavailable the remaining transport
	// failures; Faults the application-level errors.
	Shed        uint64
	Expired     uint64
	Unavailable uint64
	Faults      uint64
	// P50 and P99 are latency quantiles over every completed call.
	P50 time.Duration
	P99 time.Duration
	// Goodput is OK per second of flood time.
	Goodput float64
}

// FloodResult is a finished flood.
type FloodResult struct {
	Elapsed time.Duration
	Ops     []OpStats
}

// Goodput is the total successful operations per second across mixes.
func (r FloodResult) Goodput() float64 {
	var g float64
	for _, op := range r.Ops {
		g += op.Goodput
	}
	return g
}

// Op returns the named mix's stats (zero value when absent).
func (r FloodResult) Op(name string) OpStats {
	for _, op := range r.Ops {
		if op.Name == name {
			return op
		}
	}
	return OpStats{}
}

// floodTally accumulates one mix's outcomes under a lock of its own.
type floodTally struct {
	mu   sync.Mutex
	st   OpStats
	lats []time.Duration
}

// observe classifies one completed call. The classification mirrors the
// transport taxonomy: overload refusals arrive as Unavailable with a
// "server-" reason, deadline losses as "deadline"/"timeout"/
// "server-expired", and application errors as *transport.Fault.
func (t *floodTally) observe(err error, lat time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.Issued++
	t.lats = append(t.lats, lat)
	if err == nil {
		t.st.OK++
		return
	}
	var un *transport.Unavailable
	var fault *transport.Fault
	switch {
	case errors.As(err, &un):
		switch un.Reason {
		case "server-shed", "server-brownout":
			t.st.Shed++
		case "server-expired", "deadline", "timeout":
			t.st.Expired++
		default:
			t.st.Unavailable++
		}
	case errors.As(err, &fault):
		t.st.Faults++
	case errors.Is(err, context.DeadlineExceeded):
		t.st.Expired++
	default:
		t.st.Unavailable++
	}
}

// finish folds the latency samples into quantiles and goodput.
func (t *floodTally) finish(name, class string, elapsed time.Duration) OpStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.Name, st.Class = name, class
	st.P50 = quantile(t.lats, 0.50)
	st.P99 = quantile(t.lats, 0.99)
	if elapsed > 0 {
		st.Goodput = float64(st.OK) / elapsed.Seconds()
	}
	return st
}

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// RunFlood runs every mix's client fleet for cfg.Duration (or until ctx
// cancels) and tallies the outcomes.
func RunFlood(ctx context.Context, cfg FloodConfig) FloodResult {
	if ctx == nil {
		ctx = context.Background()
	}
	surges := make([]*faultinject.Surge, len(cfg.Ops))
	tallies := make([]*floodTally, len(cfg.Ops))
	for i, op := range cfg.Ops {
		op := op
		tally := &floodTally{}
		tallies[i] = tally
		surges[i] = faultinject.NewSurge(op.Clients, func(surgeCtx context.Context) error {
			callCtx := surgeCtx
			if op.Budget > 0 {
				var cancel context.CancelFunc
				callCtx, cancel = context.WithTimeout(surgeCtx, op.Budget)
				defer cancel()
			}
			start := time.Now()
			err := op.Do(callCtx)
			// Classify here rather than via OnResult so the latency and
			// the verdict land in the tally atomically. A call aborted by
			// flood shutdown (surge context, not its own budget) is not an
			// outcome and stays untallied.
			if surgeCtx.Err() == nil || err == nil {
				tally.observe(err, time.Since(start))
			}
			return err
		})
		surges[i].SetRamp(op.Ramp)
	}
	start := time.Now()
	for _, s := range surges {
		s.Start(ctx)
	}
	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	// The measurement window closes here: Stop still waits for in-flight
	// operations (and polite-backoff sleeps) to drain, and counting that
	// tail in elapsed would dilute goodput with time no load was offered.
	elapsed := time.Since(start)
	for _, s := range surges {
		s.Stop()
	}

	res := FloodResult{Elapsed: elapsed}
	for i, op := range cfg.Ops {
		res.Ops = append(res.Ops, tallies[i].finish(op.Name, op.Class, elapsed))
	}
	return res
}
