// Package workload defines the applications and request generators used by
// the examples and the paper's experiments: the Section-2 imaging stack
// (Imaging/POVray/JPOVray with Java and Ant prerequisites) and the three
// evaluation applications of Table 1 (Wien2k, Invmod, Counter), together
// with their provider-published deploy-files.
package workload

import (
	"fmt"
	"strings"

	"glare/internal/activity"
	"glare/internal/deployfile"
	"glare/internal/site"
)

// DeployFileHost is the notional server provider deploy-files live on.
const DeployFileHost = "http://dps.uibk.ac.at/~glare/deployfiles/"

// DeployFileURL returns the canonical deploy-file URL of an artifact.
func DeployFileURL(artifactName string) string {
	return DeployFileHost + strings.ToLower(artifactName) + ".build"
}

// SynthesizeBuild generates the deploy-file for an artifact: the standard
// download → expand → configure → build → install pipeline of paper
// Fig. 9, with the artifact's interaction dialog embedded as
// send/expect patterns.
func SynthesizeBuild(a *site.Artifact) *deployfile.Build {
	lower := strings.ToLower(a.Name)
	workDir := "/tmp/" + lower
	homeVar := strings.ToUpper(a.Name) + "_HOME"
	srcDir := workDir + "/" + a.UnpackDir

	b := &deployfile.Build{
		Name:        a.Name,
		BaseDir:     workDir,
		DefaultTask: "Deploy",
	}
	init := deployfile.Step{
		Name: "Init", Task: "mkdir-p", BaseDir: "/tmp",
		Envs: []deployfile.KV{
			{Name: homeVar, Value: "$DEPLOYMENT_DIR/" + lower},
			{Name: "WORK_DIR", Value: workDir},
		},
		Props: []deployfile.KV{
			{Name: "argument", Value: "$WORK_DIR"},
			{Name: "argument", Value: "$DEPLOYMENT_DIR"},
		},
	}
	download := deployfile.Step{
		Name: "Download", Depends: []string{"Init"},
		Task: "$GLOBUS_LOCATION/bin/globus-url-copy", BaseDir: workDir,
		Props: []deployfile.KV{
			{Name: "source", Value: a.URL},
			{Name: "destination", Value: "file://" + workDir + "/" + lower + ".tgz"},
			{Name: "md5sum", Value: a.MD5()},
			{Name: "sha256sum", Value: a.SHA256()},
		},
	}
	expand := deployfile.Step{
		Name: "Expand", Depends: []string{"Download"}, Task: "tar xvfz", BaseDir: workDir,
		Props: []deployfile.KV{{Name: "argument", Value: workDir + "/" + lower + ".tgz"}},
	}
	b.Steps = append(b.Steps, init, download, expand)

	prev := "Expand"
	// Build tool: ant for build.xml projects, autoconf otherwise; JDK-style
	// artifacts carry a self-installer.
	switch {
	case hasSource(a, "build.xml"):
		b.Steps = append(b.Steps, deployfile.Step{
			Name: "Deploy", Depends: []string{prev}, Task: "ant", BaseDir: srcDir,
			Props: []deployfile.KV{{Name: "argument", Value: "Deploy"}},
		})
	case hasSource(a, "install.sh"):
		b.Steps = append(b.Steps, deployfile.Step{
			Name: "Deploy", Depends: []string{prev},
			Task: "sh " + srcDir + "/install.sh", BaseDir: srcDir,
			Props:  []deployfile.KV{{Name: "argument", Value: "$" + homeVar}},
			Dialog: dialogOf(a),
		})
	default:
		cfg := deployfile.Step{
			Name: "Configure", Depends: []string{prev}, Task: "./configure", BaseDir: srcDir,
			Props:  []deployfile.KV{{Name: "argument", Value: "--prefix=$" + homeVar}},
			Dialog: dialogOf(a),
		}
		b.Steps = append(b.Steps, cfg,
			deployfile.Step{Name: "Build", Depends: []string{"Configure"}, Task: "make", BaseDir: srcDir},
			deployfile.Step{Name: "Deploy", Depends: []string{"Build"}, Task: "make", BaseDir: srcDir,
				Props: []deployfile.KV{{Name: "argument", Value: "install"}}},
		)
	}
	return b
}

func hasSource(a *site.Artifact, name string) bool {
	for _, t := range a.SourceTree {
		if t.RelPath == name || strings.HasSuffix(t.RelPath, "/"+name) {
			return true
		}
	}
	return false
}

func dialogOf(a *site.Artifact) []deployfile.Interaction {
	var out []deployfile.Interaction
	for _, d := range a.ConfigureDialog {
		// Keep the pattern short and robust, as a provider would.
		pat := d.Prompt
		if i := strings.IndexAny(pat, "[(?"); i > 0 {
			pat = strings.TrimSpace(pat[:i])
		}
		out = append(out, deployfile.Interaction{Expect: pat, Send: d.Answer})
	}
	return out
}

// Resolver maps deploy-file URLs to parsed builds, standing in for the
// provider's web server. GLARE fetches deploy-files by URL at
// deployment time.
type Resolver struct {
	builds map[string]*deployfile.Build
}

// NewResolver synthesizes deploy-files for every artifact in the universe.
func NewResolver(repo *site.Repo) *Resolver {
	r := &Resolver{builds: make(map[string]*deployfile.Build)}
	for _, name := range repo.Names() {
		a, _ := repo.ByName(name)
		r.builds[DeployFileURL(name)] = SynthesizeBuild(a)
	}
	return r
}

// Fetch returns the build published at url.
func (r *Resolver) Fetch(url string) (*deployfile.Build, error) {
	b, ok := r.builds[url]
	if !ok {
		return nil, fmt.Errorf("workload: no deploy-file at %s", url)
	}
	return b, nil
}

// Publish adds (or replaces) a deploy-file at a URL.
func (r *Resolver) Publish(url string, b *deployfile.Build) { r.builds[url] = b }

// ImagingTypes returns the Section-2 activity type hierarchy: abstract
// Imaging, ImageConversion and POVray plus concrete JPOVray (depending on
// Java and Ant) and the toolchain types themselves.
func ImagingTypes() []*activity.Type {
	return []*activity.Type{
		{Name: "Imaging", Abstract: true, Domain: "Imaging",
			Functions: []activity.Function{{Name: "export", Inputs: []string{"image"}, Outputs: []string{"file"}}}},
		{Name: "ImageConversion", Abstract: true, Base: []string{"Imaging"}, Domain: "Imaging",
			Functions: []activity.Function{{Name: "convert", Inputs: []string{"scene.pov"}, Outputs: []string{"image.png"}}}},
		{Name: "POVray", Abstract: true, Base: []string{"ImageConversion"}, Domain: "Imaging",
			Functions: []activity.Function{{Name: "render", Inputs: []string{"scene.pov"}, Outputs: []string{"image.png"}}}},
		{Name: "JPOVray", Base: []string{"POVray"}, Domain: "Imaging",
			Dependencies: []string{"Java", "Ant"},
			Installation: &activity.Installation{
				Mode:          activity.ModeOnDemand,
				Constraints:   activity.Constraints{Platform: "Intel", OS: "Linux", Arch: "32bit"},
				DeployFileURL: DeployFileURL("JPOVray"),
			},
			Artifact: "JPOVray"},
		{Name: "Java", Domain: "Toolchain",
			Installation: &activity.Installation{Mode: activity.ModeOnDemand,
				DeployFileURL: DeployFileURL("Java")},
			Artifact: "Java"},
		{Name: "Ant", Domain: "Toolchain",
			Dependencies: []string{"Java"},
			Installation: &activity.Installation{Mode: activity.ModeOnDemand,
				DeployFileURL: DeployFileURL("Ant")},
			Artifact: "Ant"},
	}
}

// EvaluationTypes returns the Table 1 applications as activity types.
func EvaluationTypes() []*activity.Type {
	return []*activity.Type{
		{Name: "Wien2k", Domain: "Physics",
			Installation: &activity.Installation{Mode: activity.ModeOnDemand,
				Constraints:   activity.Constraints{OS: "Linux"},
				DeployFileURL: DeployFileURL("Wien2k")},
			Artifact: "Wien2k"},
		{Name: "Invmod", Domain: "Hydrology",
			Installation: &activity.Installation{Mode: activity.ModeOnDemand,
				Constraints:   activity.Constraints{OS: "Linux"},
				DeployFileURL: DeployFileURL("Invmod")},
			Artifact: "Invmod"},
		// Counter is a GT4 service built with ant, so it drags the Java
		// toolchain in — which is why its Table 1 totals are the largest.
		{Name: "Counter", Domain: "Service",
			Dependencies: []string{"Java", "Ant"},
			Installation: &activity.Installation{Mode: activity.ModeOnDemand,
				DeployFileURL: DeployFileURL("Counter")},
			Artifact: "Counter"},
	}
}

// SyntheticTypes generates n registrable concrete types for the
// registry-scalability experiments (Figs. 10/11).
func SyntheticTypes(n int) []*activity.Type {
	out := make([]*activity.Type, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &activity.Type{
			Name:   fmt.Sprintf("Synthetic%04d", i),
			Domain: "Synthetic",
			Functions: []activity.Function{
				{Name: "run", Inputs: []string{"in"}, Outputs: []string{"out"}},
			},
		})
	}
	return out
}
