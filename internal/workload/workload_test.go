package workload

import (
	"strings"
	"testing"

	"glare/internal/site"
)

func TestSynthesizeBuildShapes(t *testing.T) {
	repo := site.StandardUniverse()
	cases := map[string][]string{
		// artifact -> expected step tasks (substring match)
		"POVray":  {"mkdir-p", "globus-url-copy", "tar xvfz", "./configure", "make", "make"},
		"JPOVray": {"mkdir-p", "globus-url-copy", "tar xvfz", "ant"},
		"Java":    {"mkdir-p", "globus-url-copy", "tar xvfz", "install.sh"},
		"Wien2k":  {"mkdir-p", "globus-url-copy", "tar xvfz"},
	}
	for name, wantTasks := range cases {
		a, ok := repo.ByName(name)
		if !ok {
			t.Fatalf("missing artifact %s", name)
		}
		b := SynthesizeBuild(a)
		if b.Name != name {
			t.Fatalf("%s: build name %q", name, b.Name)
		}
		steps, err := b.Order()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(steps) < len(wantTasks) {
			t.Fatalf("%s: %d steps, want >= %d", name, len(steps), len(wantTasks))
		}
		for i, want := range wantTasks {
			if !strings.Contains(steps[i].Task, want) {
				t.Fatalf("%s step %d task %q, want %q", name, i, steps[i].Task, want)
			}
		}
	}
}

func TestSynthesizedDialogsCarryProviderPatterns(t *testing.T) {
	repo := site.StandardUniverse()
	a, _ := repo.ByName("POVray")
	b := SynthesizeBuild(a)
	var found bool
	for _, s := range b.Steps {
		for _, d := range s.Dialog {
			if strings.Contains(d.Expect, "Accept POV-Ray license") && d.Send == "y" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("license dialog not in deploy-file")
	}
}

func TestResolver(t *testing.T) {
	repo := site.StandardUniverse()
	r := NewResolver(repo)
	for _, name := range repo.Names() {
		b, err := r.Fetch(DeployFileURL(name))
		if err != nil || b == nil {
			t.Fatalf("fetch %s: %v", name, err)
		}
	}
	if _, err := r.Fetch("http://nowhere/x.build"); err == nil {
		t.Fatal("unknown url must fail")
	}
	custom := SynthesizeBuild(mustArtifact(t, repo, "Ant"))
	r.Publish("http://custom/ant.build", custom)
	if b, err := r.Fetch("http://custom/ant.build"); err != nil || b != custom {
		t.Fatal("publish/fetch failed")
	}
}

func mustArtifact(t *testing.T, repo *site.Repo, name string) *site.Artifact {
	t.Helper()
	a, ok := repo.ByName(name)
	if !ok {
		t.Fatalf("no artifact %s", name)
	}
	return a
}

func TestImagingTypesConsistency(t *testing.T) {
	types := ImagingTypes()
	byName := map[string]bool{}
	for _, ty := range types {
		if err := ty.Validate(); err != nil {
			t.Fatalf("%s: %v", ty.Name, err)
		}
		byName[ty.Name] = true
	}
	// Every base and dependency resolves within the stack.
	for _, ty := range types {
		for _, b := range ty.Base {
			if !byName[b] {
				t.Fatalf("%s: dangling base %s", ty.Name, b)
			}
		}
		for _, d := range ty.Dependencies {
			if !byName[d] {
				t.Fatalf("%s: dangling dependency %s", ty.Name, d)
			}
		}
	}
	// Deploy-file URLs resolve against the standard universe.
	r := NewResolver(site.StandardUniverse())
	for _, ty := range types {
		if ty.Installation == nil {
			continue
		}
		if _, err := r.Fetch(ty.Installation.DeployFileURL); err != nil {
			t.Fatalf("%s deploy-file: %v", ty.Name, err)
		}
	}
}

func TestEvaluationTypes(t *testing.T) {
	types := EvaluationTypes()
	if len(types) != 3 {
		t.Fatalf("types = %d", len(types))
	}
	names := map[string]bool{}
	for _, ty := range types {
		if err := ty.Validate(); err != nil {
			t.Fatal(err)
		}
		if ty.Installation == nil || ty.Installation.Mode != "on-demand" {
			t.Fatalf("%s not on-demand installable", ty.Name)
		}
		names[ty.Name] = true
	}
	for _, want := range []string{"Wien2k", "Invmod", "Counter"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestSyntheticTypes(t *testing.T) {
	types := SyntheticTypes(50)
	if len(types) != 50 {
		t.Fatalf("len = %d", len(types))
	}
	seen := map[string]bool{}
	for _, ty := range types {
		if seen[ty.Name] {
			t.Fatalf("duplicate %s", ty.Name)
		}
		seen[ty.Name] = true
		if err := ty.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(SyntheticTypes(0)) != 0 {
		t.Fatal("zero must be empty")
	}
}
