package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"glare/internal/faultinject"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

func TestDeadlineStampRoundTrip(t *testing.T) {
	env := xmlutil.NewNode("Envelope")
	stampDeadline(env, 1500*time.Millisecond)
	now := time.Unix(2000, 0)
	dl, ok := parseDeadline(env, now)
	if !ok {
		t.Fatal("stamped deadline did not parse")
	}
	if got := dl.Sub(now); got != 1500*time.Millisecond {
		t.Fatalf("budget = %v, want 1.5s", got)
	}
	// Re-stamping replaces, never accumulates elements.
	stampDeadline(env, 200*time.Millisecond)
	if n := len(env.All(deadlineElem)); n != 1 {
		t.Fatalf("re-stamp left %d Deadline elements, want 1", n)
	}
	dl, _ = parseDeadline(env, now)
	if got := dl.Sub(now); got != 200*time.Millisecond {
		t.Fatalf("re-stamped budget = %v, want 200ms", got)
	}
	if _, ok := parseDeadline(xmlutil.NewNode("Envelope"), now); ok {
		t.Fatal("unstamped envelope parsed a deadline")
	}
}

// TestExpiredOnArrivalRejected hand-crafts an envelope whose budget is
// already spent and posts it raw: the server must refuse it with an
// overload fault before the handler runs.
func TestExpiredOnArrivalRejected(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("site")
	srv.SetTelemetry(tel)
	var ran int
	srv.RegisterCtx("Echo", "Slow", func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
		ran++
		return nil, nil
	})

	env := xmlutil.NewNode("Envelope")
	env.Elem("Operation", "Slow")
	env.Elem("Body")
	stampDeadline(env, -5*time.Millisecond)
	out, err := cli.post(context.Background(), srv.ServiceURL("Echo"), env, time.Second)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	f := out.First("Fault")
	if f == nil {
		t.Fatalf("expected overload fault, got %s", out)
	}
	if f.AttrOr("code", "") != "unavailable" || f.AttrOr("reason", "") != "expired" {
		t.Fatalf("fault attrs = code=%q reason=%q, want unavailable/expired",
			f.AttrOr("code", ""), f.AttrOr("reason", ""))
	}
	if ran != 0 {
		t.Fatal("expired request executed")
	}
	got := tel.Counter("glare_server_expired_on_arrival_total",
		telemetry.L("service", "Echo"), telemetry.L("op", "Slow")).Value()
	if got != 1 {
		t.Fatalf("expired_on_arrival_total = %d, want 1", got)
	}
}

// TestExpiredDeadlineNeverHitsWire: a caller whose context is already
// expired is refused locally, before any network traffic.
func TestExpiredDeadlineNeverHitsWire(t *testing.T) {
	srv, cli := echoServer(t)
	inj := faultinject.New(1)
	cli.WrapTransport(inj.Wrap)
	dest := destOf(srv.BaseURL())

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	_, err := cli.CallCtx(ctx, nil, srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"))
	var u *Unavailable
	if !errors.As(err, &u) || u.Reason != "deadline" {
		t.Fatalf("expected Unavailable/deadline, got %v", err)
	}
	if st := inj.Stats(dest); st.Passed+st.Dropped != 0 {
		t.Fatalf("expired call generated traffic: %+v", st)
	}
}

// TestServerOverloadRejectMapsToUnavailable drives a site into shedding
// (bulk limit 1, no queue) and checks the client surfaces the refusal as
// a non-retried Unavailable with a "server-" reason.
func TestServerOverloadRejectMapsToUnavailable(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(4))
	srv.SetAdmission(NewAdmission(AdmissionConfig{
		Bulk: ClassLimits{Limit: 1, MaxLimit: 1, QueueDepth: 0},
	}, nil))

	// StoreStatus classifies as bulk; block its only slot.
	hold := make(chan struct{})
	entered := make(chan struct{})
	srv.RegisterCtx("Echo", "StoreStatus", func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
		close(entered)
		<-hold
		return nil, nil
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = cli.Call(srv.ServiceURL("Echo"), "StoreStatus", nil)
	}()
	<-entered

	_, err := cli.Call(srv.ServiceURL("Echo"), "StoreStatus", nil)
	close(hold)
	wg.Wait()
	var u *Unavailable
	if !errors.As(err, &u) {
		t.Fatalf("expected Unavailable, got %v", err)
	}
	if u.Reason != "server-shed" {
		t.Fatalf("reason = %q, want server-shed", u.Reason)
	}
	if !IsOverloadReject(err) {
		t.Fatal("IsOverloadReject = false")
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "StoreStatus")).Value(); n != 0 {
		t.Fatalf("overload reject was retried %d times", n)
	}
	if n := tel.Counter("glare_transport_server_rejects_total",
		telemetry.L("op", "StoreStatus"), telemetry.L("reason", "shed")).Value(); n != 1 {
		t.Fatalf("server_rejects_total = %d, want 1", n)
	}
}

// TestRetryStopsWhenBudgetCannotCoverBackoff is the satellite-fix
// regression: once the remaining deadline cannot cover the next backoff,
// the call abandons immediately instead of sleeping into certain failure,
// and no further RetryBudget token is burned.
func TestRetryStopsWhenBudgetCannotCoverBackoff(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: 200 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2})
	budget := NewRetryBudget(20, 0.1)
	cli.SetRetryBudget(budget)

	inj := faultinject.New(7)
	cli.WrapTransport(inj.Wrap)
	inj.Drop(destOf(srv.BaseURL()))

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.CallCtx(ctx, nil, srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"))
	elapsed := time.Since(start)
	var u *Unavailable
	if !errors.As(err, &u) || u.Reason != "deadline" {
		t.Fatalf("expected Unavailable/deadline, got %v", err)
	}
	// Attempt 1 fails fast, one 200ms backoff, attempt 2 fails fast, the
	// 400ms backoff exceeds the ~50ms remainder: abandon. Well under the
	// ~850ms a deadline-blind loop would burn.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("call took %v; backoff ignored the deadline", elapsed)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if n := tel.Counter("glare_transport_deadline_abandoned_total", telemetry.L("op", "Say")).Value(); n != 1 {
		t.Fatalf("deadline_abandoned = %d, want 1", n)
	}
	if got := budget.Tokens(); got != 19 {
		t.Fatalf("budget tokens = %v, want 19 (abandonment must not withdraw)", got)
	}
}

// TestBreakerRefusalDoesNotBurnRetryBudget is the other satellite-fix
// regression: an open breaker's local refusal is not a network repair
// attempt and must leave the RetryBudget untouched.
func TestBreakerRefusalDoesNotBurnRetryBudget(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(4))
	budget := NewRetryBudget(20, 0.1)
	cli.SetRetryBudget(budget)
	cli.SetBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour, HalfOpenSuccesses: 1})

	inj := faultinject.New(7)
	cli.WrapTransport(inj.Wrap)
	dest := destOf(srv.BaseURL())
	inj.Drop(dest)

	_, err := cli.Call(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"))
	var u *Unavailable
	if !errors.As(err, &u) || u.Reason != "breaker-open" {
		t.Fatalf("expected breaker-open, got %v", err)
	}
	// Attempt 1 tripped the breaker; attempt 2 was refused locally before
	// the retry token was withdrawn.
	if got := inj.Stats(dest).Dropped; got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := budget.Tokens(); got != 20 {
		t.Fatalf("budget tokens = %v, want 20 (refusal burned a token)", got)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 0 {
		t.Fatalf("retries = %d, want 0", n)
	}
	if n := tel.Counter("glare_transport_breaker_rejected_total", telemetry.L("dest", dest)).Value(); n != 1 {
		t.Fatalf("breaker_rejected = %d, want 1", n)
	}
}

// TestPropagatedBudgetShrinksMonotonically is the multi-hop property
// test: a resolve-style chain of forwarding sites must observe a strictly
// decreasing budget at every hop, for any pattern of per-hop delays.
func TestPropagatedBudgetShrinksMonotonically(t *testing.T) {
	const hops = 5
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		cli := NewClient(nil)

		var mu sync.Mutex
		var budgets []time.Duration
		servers := make([]*Server, hops)
		for i := hops - 1; i >= 0; i-- {
			srv := NewServer()
			delay := time.Duration(1+rng.Intn(4)) * time.Millisecond
			next := ""
			if i < hops-1 {
				next = servers[i+1].ServiceURL("Chain")
			}
			srv.RegisterCtx("Chain", "Resolve", func(ctx context.Context, _ *telemetry.Span, _ *xmlutil.Node) (*xmlutil.Node, error) {
				dl, ok := ctx.Deadline()
				if !ok {
					return nil, fmt.Errorf("hop lost the deadline")
				}
				mu.Lock()
				budgets = append(budgets, time.Until(dl))
				mu.Unlock()
				time.Sleep(delay)
				if next == "" {
					return xmlutil.NewNode("Done"), nil
				}
				return cli.CallCtx(ctx, nil, next, "Resolve", nil)
			})
			if err := srv.Start("127.0.0.1:0", nil); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			servers[i] = srv
		}

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if _, err := cli.CallCtx(ctx, nil, servers[0].ServiceURL("Chain"), "Resolve", nil); err != nil {
			t.Fatalf("seed %d: chain call: %v", seed, err)
		}
		cancel()
		if len(budgets) != hops {
			t.Fatalf("seed %d: %d hops observed, want %d", seed, len(budgets), hops)
		}
		for i := 1; i < len(budgets); i++ {
			if budgets[i] >= budgets[i-1] {
				t.Fatalf("seed %d: budget grew across hop %d: %v -> %v (chain %v)",
					seed, i, budgets[i-1], budgets[i], budgets)
			}
		}
		budgets = nil
	}
}
