package transport

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"glare/internal/xmlutil"
)

// Property: the <Deadline budget_ms> wire format carries a pure duration,
// so the deadline a receiver derives depends only on (budget, receiver
// anchor) — never on the sender's idea of what time it is. With sites up
// to ±10 minutes apart (the skew fault domain this repo injects), an
// absolute-timestamp encoding would shift deadlines by the full skew;
// the relative encoding must shift them by exactly zero.
func TestDeadlineBudgetImmuneToSenderClockError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2006, 5, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 2000; i++ {
		budget := time.Duration(1+rng.Int63n(int64(10*time.Minute))) * time.Nanosecond
		senderSkew := time.Duration(rng.Int63n(int64(20*time.Minute))) - 10*time.Minute
		receiverSkew := time.Duration(rng.Int63n(int64(20*time.Minute))) - 10*time.Minute

		// The sender stamps while believing it is base+senderSkew; nothing
		// about that belief may reach the wire.
		env := xmlutil.NewNode("Envelope")
		stampDeadline(env, budget)

		receiverNow := base.Add(receiverSkew)
		deadline, ok := parseDeadline(env, receiverNow)
		if !ok {
			t.Fatalf("stamped budget failed to parse (budget=%v)", budget)
		}
		got := deadline.Sub(receiverNow)
		// budget_ms is fractional milliseconds with 3 decimals: microsecond
		// resolution. Anything beyond that rounding is inherited clock error.
		if diff := math.Abs(float64(got - budget)); diff > float64(time.Microsecond) {
			t.Fatalf("budget %v arrived as %v (err %v) with senderSkew=%v receiverSkew=%v — wire inherited absolute time",
				budget, got, time.Duration(diff), senderSkew, receiverSkew)
		}
	}
}

// Property: re-stamping along a forwarding chain only ever shrinks the
// budget (each hop charges its local elapsed time), and a hop's clock
// skew never re-inflates it: the remainder is computed against the hop's
// own anchor, so absolute offsets cancel hop by hop.
func TestDeadlineBudgetShrinksAcrossSkewedHops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		budget := time.Duration(1+rng.Int63n(int64(time.Minute))) * time.Nanosecond
		env := xmlutil.NewNode("Envelope")
		stampDeadline(env, budget)

		remaining := budget
		for hop := 0; hop < 4; hop++ {
			// Each hop lives at an arbitrarily skewed absolute time...
			anchor := time.Date(2006, 5, 1, 12, 0, 0, 0, time.UTC).
				Add(time.Duration(rng.Int63n(int64(20*time.Minute))) - 10*time.Minute)
			deadline, ok := parseDeadline(env, anchor)
			if !ok {
				t.Fatal("budget failed to parse mid-chain")
			}
			// ...spends some of the budget doing work...
			work := time.Duration(rng.Int63n(int64(remaining)/4 + 1))
			left := deadline.Sub(anchor.Add(work))
			if left > remaining {
				t.Fatalf("hop %d inflated the budget: %v -> %v", hop, remaining, left)
			}
			// ...and forwards the shrunk remainder.
			stampDeadline(env, left)
			remaining = left
		}
		// Four hops of microsecond-rounding later the budget is within
		// rounding of (budget - total work), and total work alone cannot
		// explain more than the full budget: it never went negative-to-
		// positive or picked up a skew term.
		if remaining > budget {
			t.Fatalf("chain ended with more budget (%v) than it started with (%v)", remaining, budget)
		}
	}
}
