package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"glare/internal/telemetry"
)

// admit1 is a tiny fixed config: one interactive slot, queue of depth q.
func admit1(q int) *Admission {
	return NewAdmission(AdmissionConfig{
		Interactive: ClassLimits{Limit: 1, MaxLimit: 1, QueueDepth: q},
	}, nil)
}

func mustAdmit(t *testing.T, a *Admission, service, op string, dl time.Time) func() {
	t.Helper()
	release, err := a.Admit(service, op, dl)
	if err != nil {
		t.Fatalf("Admit(%s.%s): %v", service, op, err)
	}
	return release
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		service, op string
		want        Class
	}{
		{"PeerService", "InstallView", ClassControl},
		{"GLARE", "ViewStatus", ClassControl},
		{"GLARE", "Ping", ClassControl},
		{"GLARE", "RegistryDigest", ClassBulk},
		{"GLARE", "HistoryXport", ClassBulk},
		{"GLARE", "StoreStatus", ClassBulk},
		{"GLARE", "GetDeployments", ClassInteractive},
		{"GLARE", "RegisterType", ClassInteractive},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.service, c.op); got != c.want {
			t.Fatalf("classify(%s,%s) = %v, want %v", c.service, c.op, got, c.want)
		}
	}
}

func TestZeroQueueShedsImmediately(t *testing.T) {
	a := admit1(0)
	release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})
	defer release()
	_, err := a.Admit("GLARE", "GetDeployments", time.Time{})
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != "shed" {
		t.Fatalf("expected shed, got %v", err)
	}
	st := a.Status()
	if st[1].Sheds != 1 || st[1].Inflight != 1 {
		t.Fatalf("status = %+v", st[1])
	}
}

// TestQueueShedsEarliestDeadlineFirst: on overflow the waiter least
// likely to make its deadline is evicted, not the newcomer.
func TestQueueShedsEarliestDeadlineFirst(t *testing.T) {
	a := admit1(2)
	release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})

	now := time.Now()
	type result struct {
		name string
		err  error
	}
	results := make(chan result, 3)
	enqueue := func(name string, dl time.Time, wantQueued int) {
		go func() {
			_, err := a.Admit("GLARE", "GetDeployments", dl)
			results <- result{name, err}
		}()
		// Wait for the waiter to reach the queue.
		for i := 0; a.Status()[1].Queued < wantQueued; i++ {
			if i > 1000 {
				t.Fatalf("waiter %s never queued", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("tight", now.Add(time.Minute), 1)
	enqueue("loose", now.Add(10*time.Minute), 2)

	// Queue is full; a third arrival with a middling deadline evicts
	// "tight" (earliest deadline = least likely to be saved by a slot).
	done := make(chan result, 1)
	go func() {
		_, err := a.Admit("GLARE", "GetDeployments", now.Add(5*time.Minute))
		done <- result{"newcomer", err}
	}()
	evicted := <-results
	if evicted.name != "tight" {
		t.Fatalf("evicted %q, want tight", evicted.name)
	}
	var ov *Overload
	if !errors.As(evicted.err, &ov) || ov.Reason != "shed" {
		t.Fatalf("evicted error = %v", evicted.err)
	}

	// Release the slot twice: both remaining waiters get through.
	release()
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("waiter %s: %v", r.name, r.err)
			}
		case r := <-done:
			if r.err != nil {
				t.Fatalf("waiter %s: %v", r.name, r.err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter never promoted")
		}
		// Return the admitted waiter's slot so the next one promotes.
		a.release(a.classes[ClassInteractive], time.Now())
	}
}

// TestNewcomerShedsItselfWhenItIsTheSoonest: when the arriving request
// has the nearest deadline of all, it is the victim — synchronously.
func TestNewcomerShedsItselfWhenItIsTheSoonest(t *testing.T) {
	a := admit1(1)
	release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})
	defer release()
	go func() {
		_, _ = a.Admit("GLARE", "GetDeployments", time.Now().Add(10*time.Second))
	}()
	for i := 0; a.Status()[1].Queued < 1; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := a.Admit("GLARE", "GetDeployments", time.Now().Add(5*time.Millisecond))
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != "shed" {
		t.Fatalf("expected synchronous shed, got %v", err)
	}
}

// TestExpiredWhileQueuedNeverExecutes: a waiter whose budget lapses in
// the queue is withdrawn with reason "expired" and never admitted.
func TestExpiredWhileQueuedNeverExecutes(t *testing.T) {
	a := admit1(4)
	release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})

	_, err := a.Admit("GLARE", "GetDeployments", time.Now().Add(20*time.Millisecond))
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != "expired" {
		t.Fatalf("expected expired, got %v", err)
	}
	st := a.Status()
	if st[1].Expired != 1 {
		t.Fatalf("expired count = %d, want 1", st[1].Expired)
	}
	release()
	if st := a.Status(); st[1].Inflight != 0 || st[1].Queued != 0 {
		t.Fatalf("controller leaked state: %+v", st[1])
	}
}

// TestBrownoutLadder: once a higher class is queueing, lower classes are
// refused outright while the higher class itself still admits.
func TestBrownoutLadder(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		Control:     ClassLimits{Limit: 4, MaxLimit: 4, QueueDepth: 4},
		Interactive: ClassLimits{Limit: 1, MaxLimit: 1, QueueDepth: 4},
		Bulk:        ClassLimits{Limit: 4, MaxLimit: 4, QueueDepth: 4},
	}, nil)
	release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})
	defer release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := a.Admit("GLARE", "GetDeployments", time.Time{})
		if err == nil {
			r()
		}
	}()
	for i := 0; a.Status()[1].Queued < 1; i++ {
		if i > 1000 {
			t.Fatal("interactive waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Bulk browns out...
	_, err := a.Admit("GLARE", "RegistryDigest", time.Time{})
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != "brownout" {
		t.Fatalf("expected bulk brownout, got %v", err)
	}
	// ...while control still sails through.
	rc := mustAdmit(t, a, "PeerService", "InstallView", time.Time{})
	rc()

	release2 := mustAdmit(t, a, "PeerService", "Ping", time.Time{})
	release2()
	release()
	wg.Wait()
}

// TestAIMDConvergence: sustained latency above target halves the limit
// down to the floor; fast completions grow it back one slot at a time.
func TestAIMDConvergence(t *testing.T) {
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	a := NewAdmission(AdmissionConfig{
		Interactive: ClassLimits{Limit: 8, MinLimit: 2, MaxLimit: 16, QueueDepth: 4},
		TargetP99:   10 * time.Millisecond,
		AIMDWindow:  8,
		Now:         clock,
	}, telemetry.New("site"))

	slowRound := func() {
		for i := 0; i < 8; i++ {
			release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})
			advance(50 * time.Millisecond) // p99 far above target
			release()
		}
	}
	limit := func() int { return a.Status()[1].Limit }

	slowRound()
	if got := limit(); got != 4 {
		t.Fatalf("limit after slow round = %d, want 4", got)
	}
	slowRound()
	if got := limit(); got != 2 {
		t.Fatalf("limit after second slow round = %d, want 2 (floor)", got)
	}
	slowRound()
	if got := limit(); got != 2 {
		t.Fatalf("limit must not drop below MinLimit, got %d", got)
	}

	// Fast completions: additive increase, one slot per window.
	for r := 0; r < 3; r++ {
		for i := 0; i < 8; i++ {
			release := mustAdmit(t, a, "GLARE", "GetDeployments", time.Time{})
			advance(time.Millisecond)
			release()
		}
	}
	if got := limit(); got != 5 {
		t.Fatalf("limit after 3 fast windows = %d, want 5", got)
	}
}
