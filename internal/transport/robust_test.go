package transport

import (
	"errors"
	"testing"
	"time"

	"glare/internal/faultinject"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// fastRetry is a retry policy with millisecond backoffs so tests that
// exhaust attempts stay quick.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Multiplier:  2,
	}
}

func TestDeadSiteIsUnavailableNotFault(t *testing.T) {
	srv, cli := echoServer(t)
	addr := srv.ServiceURL("Echo")
	srv.Close()

	_, err := cli.Call(addr, "Say", xmlutil.NewNode("Msg", "hello"))
	if err == nil {
		t.Fatal("expected error calling a closed server")
	}
	if !IsUnavailable(err) {
		t.Fatalf("expected Unavailable, got %T: %v", err, err)
	}
	if IsFault(err) {
		t.Fatalf("dead site must not classify as Fault: %v", err)
	}
	var u *Unavailable
	if !errors.As(err, &u) {
		t.Fatal("errors.As failed")
	}
	if u.Reason != "connection" && u.Reason != "timeout" {
		t.Fatalf("reason = %q", u.Reason)
	}
	if u.Operation != "Say" {
		t.Fatalf("operation = %q", u.Operation)
	}
}

func TestFaultIsNeverRetried(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(4))

	// Nil body makes the Echo handler fault: the site answered, so the
	// call must not be repeated.
	_, err := cli.Call(srv.ServiceURL("Echo"), "Say", nil)
	if err == nil || !IsFault(err) {
		t.Fatalf("expected fault, got %v", err)
	}
	if IsUnavailable(err) {
		t.Fatalf("fault must not classify as Unavailable: %v", err)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 0 {
		t.Fatalf("fault was retried %d times", n)
	}
}

func TestRetryRecoversTransientDrops(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(4))

	inj := faultinject.New(7)
	cli.WrapTransport(inj.Wrap)
	dest := destOf(srv.BaseURL())
	inj.Set(dest, faultinject.Rule{Mode: faultinject.Drop, Remaining: 2})

	resp, err := cli.Call(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"))
	if err != nil {
		t.Fatalf("call should recover after two dropped attempts: %v", err)
	}
	if resp.Text != "hi" {
		t.Fatalf("resp = %s", resp)
	}
	if got := inj.Stats(dest).Dropped; got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 2 {
		t.Fatalf("retries = %d, want 2", n)
	}
	if n := tel.Counter("glare_transport_unavailable_total", telemetry.L("op", "Say")).Value(); n != 0 {
		t.Fatalf("unavailable = %d, want 0", n)
	}
}

func TestRetryExhaustionCountsUnavailable(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(3))

	inj := faultinject.New(7)
	cli.WrapTransport(inj.Wrap)
	inj.Drop(destOf(srv.BaseURL()))

	_, err := cli.Call(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"))
	if !IsUnavailable(err) {
		t.Fatalf("expected Unavailable, got %v", err)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 2 {
		t.Fatalf("retries = %d, want 2", n)
	}
	if n := tel.Counter("glare_transport_unavailable_total", telemetry.L("op", "Say")).Value(); n != 1 {
		t.Fatalf("unavailable = %d, want 1", n)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(5))
	cli.SetRetryBudget(NewRetryBudget(1, 0.1)) // one retry, then dry

	inj := faultinject.New(7)
	cli.WrapTransport(inj.Wrap)
	inj.Drop(destOf(srv.BaseURL()))

	_, err := cli.Call(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"))
	var u *Unavailable
	if !errors.As(err, &u) {
		t.Fatalf("expected Unavailable, got %v", err)
	}
	if u.Reason != "retry-budget" {
		t.Fatalf("reason = %q, want retry-budget", u.Reason)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if n := tel.Counter("glare_transport_retry_budget_exhausted_total").Value(); n != 1 {
		t.Fatalf("budget exhausted = %d, want 1", n)
	}
}

// TestBreakerStateMachine walks the whole closed → open → half-open cycle
// with a deterministic fault injector and an injected clock, verifying
// that an open breaker fast-fails without touching the network.
func TestBreakerStateMachine(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)

	now := time.Unix(1000, 0)
	cli.SetBreaker(BreakerConfig{
		FailureThreshold:  3,
		Cooldown:          time.Second,
		HalfOpenSuccesses: 1,
		Now:               func() time.Time { return now },
	})

	inj := faultinject.New(42)
	cli.WrapTransport(inj.Wrap)
	addr := srv.ServiceURL("Echo")
	dest := destOf(srv.BaseURL())
	call := func() error {
		_, err := cli.Call(addr, "Say", xmlutil.NewNode("Msg", "hi"))
		return err
	}

	// Three consecutive failures trip the breaker (no retry policy, so
	// each Call is exactly one attempt).
	inj.Drop(dest)
	for i := 0; i < 3; i++ {
		if err := call(); !IsUnavailable(err) {
			t.Fatalf("call %d: expected Unavailable, got %v", i, err)
		}
	}
	if st := cli.BreakerState(addr); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	if n := tel.Counter("glare_transport_breaker_open_total", telemetry.L("dest", dest)).Value(); n != 1 {
		t.Fatalf("breaker_open_total = %d, want 1", n)
	}

	// While open, calls are rejected before reaching the network: the
	// injector sees no new traffic.
	err := call()
	var u *Unavailable
	if !errors.As(err, &u) || u.Reason != "breaker-open" {
		t.Fatalf("expected breaker-open rejection, got %v", err)
	}
	if got := inj.Stats(dest).Dropped; got != 3 {
		t.Fatalf("dropped = %d, want 3 (rejection must not hit the wire)", got)
	}
	if n := tel.Counter("glare_transport_breaker_rejected_total", telemetry.L("dest", dest)).Value(); n != 1 {
		t.Fatalf("breaker_rejected_total = %d, want 1", n)
	}

	// After the cooldown a single probe is admitted; its failure re-opens
	// the breaker immediately.
	now = now.Add(2 * time.Second)
	if err := call(); !IsUnavailable(err) {
		t.Fatalf("probe should fail while still dropped: %v", err)
	}
	if got := inj.Stats(dest).Dropped; got != 4 {
		t.Fatalf("dropped = %d, want 4 (exactly one probe)", got)
	}
	if st := cli.BreakerState(addr); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}

	// Heal the destination; after another cooldown the probe succeeds and
	// the breaker closes.
	now = now.Add(2 * time.Second)
	inj.Restore(dest)
	if err := call(); err != nil {
		t.Fatalf("probe after restore: %v", err)
	}
	if st := cli.BreakerState(addr); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if err := call(); err != nil {
		t.Fatalf("closed breaker should pass traffic: %v", err)
	}
}

func TestProbeUsesShortTimeout(t *testing.T) {
	srv, cli := echoServer(t)

	inj := faultinject.New(42)
	cli.WrapTransport(inj.Wrap)
	inj.BlackHole(destOf(srv.BaseURL()))

	start := time.Now()
	_, err := cli.Probe(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"), 50*time.Millisecond)
	elapsed := time.Since(start)
	if !IsUnavailable(err) {
		t.Fatalf("expected Unavailable, got %v", err)
	}
	var u *Unavailable
	if errors.As(err, &u); u.Reason != "timeout" {
		t.Fatalf("reason = %q, want timeout", u.Reason)
	}
	// Far below the client's own 10s call timeout.
	if elapsed > 2*time.Second {
		t.Fatalf("probe took %v; the independent timeout did not apply", elapsed)
	}
}

func TestProbeDoesNotRetry(t *testing.T) {
	srv, cli := echoServer(t)
	tel := telemetry.New("caller")
	cli.SetTelemetry(tel)
	cli.SetRetryPolicy(fastRetry(4))

	inj := faultinject.New(42)
	cli.WrapTransport(inj.Wrap)
	dest := destOf(srv.BaseURL())
	inj.Drop(dest)

	if _, err := cli.Probe(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hi"), 50*time.Millisecond); !IsUnavailable(err) {
		t.Fatalf("expected Unavailable, got %v", err)
	}
	if got := inj.Stats(dest).Dropped; got != 1 {
		t.Fatalf("dropped = %d, want 1 (probes are single-attempt)", got)
	}
	if n := tel.Counter("glare_transport_retries_total", telemetry.L("op", "Say")).Value(); n != 0 {
		t.Fatalf("probe was retried %d times", n)
	}
}

func TestDestOf(t *testing.T) {
	cases := map[string]string{
		"http://127.0.0.1:4512/wsrf/services/GLARE":  "127.0.0.1:4512",
		"https://127.0.0.1:4512/wsrf/services/GLARE": "127.0.0.1:4512",
		"http://127.0.0.1:4512":                      "127.0.0.1:4512",
		"127.0.0.1:4512/metrics":                     "127.0.0.1:4512",
	}
	for in, want := range cases {
		if got := destOf(in); got != want {
			t.Fatalf("destOf(%q) = %q, want %q", in, got, want)
		}
	}
}
