package transport

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy retries calls that failed at the transport level (see
// Unavailable). Application Faults are never retried: the site answered,
// so repeating the operation would not change the outcome and might not
// be idempotent.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; zero means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry; values < 1 are treated as 1.
	Multiplier float64
	// Jitter randomizes away up to this fraction of each backoff (0..1),
	// decorrelating retry storms from many callers.
	Jitter float64
	// Seed seeds the jitter RNG so retry schedules are reproducible; zero
	// selects a fixed default seed.
	Seed int64
}

// DefaultRetryPolicy suits intra-VO calls: three quick attempts, well
// under a single DefaultCallTimeout in added latency.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// delay computes the backoff after the attempt-th try (1-based) failed.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 - p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// RetryBudget caps the global ratio of retries to successful calls with a
// token bucket: every retry withdraws one token, every success deposits
// PerSuccess. When a whole destination goes dark the breaker absorbs the
// load after a few failures; the budget bounds the extra traffic retries
// may generate before that happens, so a flaky VO cannot be drowned in
// its own repair attempts. A nil *RetryBudget is an unlimited budget.
type RetryBudget struct {
	mu         sync.Mutex
	tokens     float64
	max        float64
	perSuccess float64
}

// DefaultRetryBudgetTokens is the bucket size of NewRetryBudget(0, 0).
const DefaultRetryBudgetTokens = 20.0

// NewRetryBudget builds a budget with the given bucket size and
// per-success refill; non-positive arguments select defaults (20, 0.1).
func NewRetryBudget(max, perSuccess float64) *RetryBudget {
	if max <= 0 {
		max = DefaultRetryBudgetTokens
	}
	if perSuccess <= 0 {
		perSuccess = 0.1
	}
	return &RetryBudget{tokens: max, max: max, perSuccess: perSuccess}
}

// Withdraw spends one token for a retry, reporting false when the budget
// is exhausted.
func (b *RetryBudget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Deposit refills the budget after a successful call.
func (b *RetryBudget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.perSuccess
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Tokens reports the current token count (for tests and introspection).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
