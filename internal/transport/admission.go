package transport

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"glare/internal/telemetry"
)

// Class ranks a request's priority for admission control. Lower values
// are more important: under overload the site browns out bottom-up,
// shedding bulk anti-entropy traffic first and control-plane traffic
// last, so a flooded community degrades instead of partitioning.
type Class int

const (
	// ClassControl is overlay control-plane traffic — elections, view
	// installs, liveness probes, takeover. Starving it would turn
	// overload into partition, so it sheds last.
	ClassControl Class = iota
	// ClassInteractive is client-facing resolution and registration:
	// the traffic whose latency the paper's Fig. 10/11 measure.
	ClassInteractive
	// ClassBulk is background anti-entropy and history traffic —
	// registry sync digests, HistoryXport rollups, store status scans.
	// It browns out first: a stale rollup is recoverable, a failed
	// resolution is user-visible.
	ClassBulk

	numClasses = 3
)

// String names the class for telemetry labels and status output.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassInteractive:
		return "interactive"
	case ClassBulk:
		return "bulk"
	}
	return fmt.Sprintf("class-%d", int(c))
}

// Classifier maps an incoming (service, operation) pair to its class.
type Classifier func(service, operation string) Class

// DefaultClassify is the grid's standard operation taxonomy: everything
// on the PeerService (plus view/liveness reads) is control plane,
// anti-entropy digests and history exports are bulk, and everything else
// — resolution, registration, deployment, leasing — is interactive.
func DefaultClassify(service, operation string) Class {
	if service == "PeerService" {
		return ClassControl
	}
	switch operation {
	case "ViewStatus", "Ping":
		return ClassControl
	// Replication is infrastructure traffic: a quorum write or a failover
	// hand-off must not queue behind the very client load it protects.
	case "Replicate", "ReplicaFetch", "ReplicaPromote", "ReplicaHandOff":
		return ClassControl
	case "RegistryDigest", "HistoryXport", "StoreStatus", "GetLUT", "ReplicaStatus",
		"ArtifactFetch", "ArtifactStatus":
		// Artifact-grid traffic is bulk: a blob fetch must not starve
		// interactive resolution, and brownout shedding it only sends the
		// requester down the ladder to origin.
		return ClassBulk
	}
	return ClassInteractive
}

// ClassLimits bounds one priority class's concurrency.
type ClassLimits struct {
	// Limit is the initial concurrent-execution limit (default 16).
	Limit int
	// MinLimit and MaxLimit bound AIMD adaptation (defaults 1 and Limit).
	MinLimit int
	MaxLimit int
	// QueueDepth bounds the deadline-aware wait queue; zero means no
	// queue (a request arriving at the limit is shed immediately).
	QueueDepth int
}

func (l ClassLimits) normalized() ClassLimits {
	if l.Limit <= 0 {
		l.Limit = 16
	}
	if l.MinLimit <= 0 {
		l.MinLimit = 1
	}
	if l.MinLimit > l.Limit {
		l.MinLimit = l.Limit
	}
	if l.MaxLimit < l.Limit {
		l.MaxLimit = l.Limit
	}
	if l.QueueDepth < 0 {
		l.QueueDepth = 0
	}
	return l
}

// AdmissionConfig configures a per-site admission controller.
type AdmissionConfig struct {
	Control     ClassLimits
	Interactive ClassLimits
	Bulk        ClassLimits
	// TargetP99 is the latency target the AIMD controller adapts each
	// class's concurrency limit against: a windowed p99 above the target
	// halves the limit (multiplicative decrease, floored at MinLimit),
	// at or below it adds one slot (additive increase, capped at
	// MaxLimit). Zero disables adaptation and keeps limits fixed.
	TargetP99 time.Duration
	// AIMDWindow is the number of completions per class between
	// adaptations (default 64).
	AIMDWindow int
	// Classify overrides the operation taxonomy (default DefaultClassify).
	Classify Classifier
	// Now overrides the time source (tests).
	Now func() time.Time
}

// DefaultAdmissionConfig returns limits generous enough that a healthy
// site never queues, while a flooded one sheds bulk and queue-overflow
// traffic instead of collapsing MDS-style.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Control:     ClassLimits{Limit: 64, MinLimit: 16, MaxLimit: 256, QueueDepth: 256},
		Interactive: ClassLimits{Limit: 128, MinLimit: 8, MaxLimit: 512, QueueDepth: 512},
		Bulk:        ClassLimits{Limit: 16, MinLimit: 2, MaxLimit: 64, QueueDepth: 64},
		TargetP99:   2 * time.Second,
		AIMDWindow:  64,
	}
}

// Overload is the admission controller's refusal: the site is up but
// will not execute this request. The server renders it as a coded fault
// that the client maps back to a retryable Unavailable.
type Overload struct {
	Class Class
	// Reason is "shed" (queue overflow), "expired" (the propagated
	// deadline passed while queued) or "brownout" (a higher-priority
	// class is already queueing, so lower-priority work is refused).
	Reason string
}

// Error implements the error interface.
func (o *Overload) Error() string {
	return fmt.Sprintf("overloaded: %s request %s", o.Class, o.Reason)
}

// waiter is one queued request.
type waiter struct {
	deadline time.Time // zero when the request carries no budget
	ready    chan bool // buffered; true = admitted, false = shed
}

// classState is one priority class's live admission state.
type classState struct {
	class  Class
	limits ClassLimits
	limit  int
	infl   int
	queue  []*waiter

	lats []time.Duration
	nlat int

	sheds   uint64
	expired uint64

	inflG, queueG, limitG *telemetry.Gauge
}

// Admission is a per-site admission controller: per-class AIMD-adaptive
// concurrency limits with bounded, deadline-aware wait queues and a
// brownout ladder across priority classes. One controller guards one
// Server's whole service tree.
type Admission struct {
	cfg      AdmissionConfig
	classify Classifier
	now      func() time.Time
	tel      *telemetry.Telemetry

	mu      sync.Mutex
	classes [numClasses]*classState
}

// NewAdmission builds a controller; tel may be nil (no metrics).
func NewAdmission(cfg AdmissionConfig, tel *telemetry.Telemetry) *Admission {
	if cfg.AIMDWindow <= 0 {
		cfg.AIMDWindow = 64
	}
	a := &Admission{cfg: cfg, classify: cfg.Classify, now: cfg.Now, tel: tel}
	if a.classify == nil {
		a.classify = DefaultClassify
	}
	if a.now == nil {
		a.now = time.Now
	}
	for i, lim := range []ClassLimits{cfg.Control, cfg.Interactive, cfg.Bulk} {
		lim = lim.normalized()
		cs := &classState{
			class:  Class(i),
			limits: lim,
			limit:  lim.Limit,
			lats:   make([]time.Duration, cfg.AIMDWindow),
		}
		label := telemetry.L("class", cs.class.String())
		cs.inflG = tel.Gauge("glare_server_inflight", label)
		cs.queueG = tel.Gauge("glare_server_queue_depth", label)
		cs.limitG = tel.Gauge("glare_server_admission_limit", label)
		cs.limitG.Set(int64(cs.limit))
		a.classes[i] = cs
	}
	return a
}

// shedLocked accounts one refused request. Callers hold a.mu.
func (a *Admission) shedLocked(cs *classState, reason string) {
	cs.sheds++
	if reason == "expired" {
		cs.expired++
	}
	a.tel.Counter("glare_server_sheds_total").Inc()
	a.tel.Counter("glare_server_sheds_total",
		telemetry.L("class", cs.class.String()), telemetry.L("reason", reason)).Inc()
}

// sooner reports whether deadline a expires before b. A zero deadline
// never expires and therefore always loses the comparison.
func sooner(a, b time.Time) bool {
	if a.IsZero() {
		return false
	}
	if b.IsZero() {
		return true
	}
	return a.Before(b)
}

// Admit asks leave to execute (service, operation) under the given
// absolute deadline (zero when the request carries no budget). On
// admission it returns a release callback the server invokes when the
// request completes; on refusal it returns an *Overload. Admit blocks
// while the request waits in its class's queue.
func (a *Admission) Admit(service, operation string, deadline time.Time) (func(), error) {
	class := a.classify(service, operation)
	cs := a.classes[class]
	a.mu.Lock()
	// Brownout ladder: while any higher-priority class has waiters
	// queued, the site is saturated from this class's point of view —
	// lower-priority traffic is refused outright instead of competing
	// for slots the more important work is already waiting on.
	for higher := Class(0); higher < class; higher++ {
		if len(a.classes[higher].queue) > 0 {
			a.shedLocked(cs, "brownout")
			a.mu.Unlock()
			return nil, &Overload{Class: class, Reason: "brownout"}
		}
	}
	if cs.infl < cs.limit {
		cs.infl++
		cs.inflG.Set(int64(cs.infl))
		start := a.now()
		a.mu.Unlock()
		return func() { a.release(cs, start) }, nil
	}
	w := &waiter{deadline: deadline, ready: make(chan bool, 1)}
	if len(cs.queue) >= cs.limits.QueueDepth {
		// Queue overflow: shed the request least likely to make its
		// deadline — with every slot and queue position taken, the
		// waiter with the nearest deadline is the one a freed slot can
		// no longer save. Deadline-less requests are infinitely patient
		// and only lose to each other (then the newcomer sheds).
		victim, idx := w, -1
		for i, q := range cs.queue {
			if sooner(q.deadline, victim.deadline) {
				victim, idx = q, i
			}
		}
		a.shedLocked(cs, "shed")
		if victim == w {
			a.mu.Unlock()
			return nil, &Overload{Class: class, Reason: "shed"}
		}
		cs.queue = append(cs.queue[:idx], cs.queue[idx+1:]...)
		victim.ready <- false
	}
	cs.queue = append(cs.queue, w)
	cs.queueG.Set(int64(len(cs.queue)))
	a.mu.Unlock()

	var expiry <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		expiry = t.C
	}
	select {
	case ok := <-w.ready:
		if !ok {
			return nil, &Overload{Class: class, Reason: "shed"}
		}
		start := a.now()
		return func() { a.release(cs, start) }, nil
	case <-expiry:
		// The budget ran out while queued: withdraw — unless a release
		// admitted (or an overflow shed) us in the same instant, in
		// which case honour that verdict instead.
		a.mu.Lock()
		for i, q := range cs.queue {
			if q == w {
				cs.queue = append(cs.queue[:i], cs.queue[i+1:]...)
				cs.queueG.Set(int64(len(cs.queue)))
				a.shedLocked(cs, "expired")
				a.mu.Unlock()
				return nil, &Overload{Class: class, Reason: "expired"}
			}
		}
		a.mu.Unlock()
		if ok := <-w.ready; ok {
			start := a.now()
			return func() { a.release(cs, start) }, nil
		}
		return nil, &Overload{Class: class, Reason: "shed"}
	}
}

// release returns a slot, feeds the AIMD controller, and promotes
// waiters — skipping any whose deadline has already passed, so an
// expired request never starts executing.
func (a *Admission) release(cs *classState, start time.Time) {
	elapsed := a.now().Sub(start)
	a.mu.Lock()
	cs.infl--
	if a.cfg.TargetP99 > 0 {
		cs.lats[cs.nlat%len(cs.lats)] = elapsed
		cs.nlat++
		if cs.nlat >= len(cs.lats) && cs.nlat%len(cs.lats) == 0 {
			if p99 := quantileDur(cs.lats, 0.99); p99 > a.cfg.TargetP99 {
				if cs.limit = cs.limit / 2; cs.limit < cs.limits.MinLimit {
					cs.limit = cs.limits.MinLimit
				}
			} else if cs.limit < cs.limits.MaxLimit {
				cs.limit++
			}
			cs.limitG.Set(int64(cs.limit))
		}
	}
	now := a.now()
	for cs.infl < cs.limit && len(cs.queue) > 0 {
		w := cs.queue[0]
		cs.queue = cs.queue[1:]
		if !w.deadline.IsZero() && !now.Before(w.deadline) {
			a.shedLocked(cs, "expired")
			w.ready <- false
			continue
		}
		cs.infl++
		w.ready <- true
	}
	cs.inflG.Set(int64(cs.infl))
	cs.queueG.Set(int64(len(cs.queue)))
	a.mu.Unlock()
}

// quantileDur computes the q-quantile of a latency window by sorting a
// copy (windows are small — the default is 64 entries).
func quantileDur(lats []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// ClassStatus is one class's instantaneous admission picture.
type ClassStatus struct {
	Class    string
	Limit    int
	Inflight int
	Queued   int
	Sheds    uint64
	Expired  uint64
}

// Status reports the controller's per-class state, ordered control,
// interactive, bulk — the `glarectl status` columns.
func (a *Admission) Status() []ClassStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ClassStatus, 0, numClasses)
	for _, cs := range a.classes {
		out = append(out, ClassStatus{
			Class:    cs.class.String(),
			Limit:    cs.limit,
			Inflight: cs.infl,
			Queued:   len(cs.queue),
			Sheds:    cs.sheds,
			Expired:  cs.expired,
		})
	}
	return out
}
