package transport

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"glare/internal/gsi"
	"glare/internal/xmlutil"
)

func echoServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	srv.Register("Echo", "Say", func(body *xmlutil.Node) (*xmlutil.Node, error) {
		if body == nil {
			return nil, fmt.Errorf("nothing to say")
		}
		out := xmlutil.NewNode("Said", body.Text)
		return out, nil
	})
	srv.Register("Echo", "Nothing", func(body *xmlutil.Node) (*xmlutil.Node, error) {
		return nil, nil
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, NewClient(nil)
}

func TestCallRoundTrip(t *testing.T) {
	srv, cli := echoServer(t)
	resp, err := cli.Call(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("Msg", "hello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "Said" || resp.Text != "hello" {
		t.Fatalf("resp = %s", resp)
	}
}

func TestCallNilBodyAndNilResponse(t *testing.T) {
	srv, cli := echoServer(t)
	resp, err := cli.Call(srv.ServiceURL("Echo"), "Nothing", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Fatalf("expected nil response, got %s", resp)
	}
}

func TestFaultPropagation(t *testing.T) {
	srv, cli := echoServer(t)
	_, err := cli.Call(srv.ServiceURL("Echo"), "Say", nil)
	if err == nil || !IsFault(err) {
		t.Fatalf("expected fault, got %v", err)
	}
	var f *Fault
	if !strings.Contains(err.Error(), "nothing to say") {
		t.Fatalf("fault text = %v", err)
	}
	_ = f
}

func TestUnknownServiceAndOperation(t *testing.T) {
	srv, cli := echoServer(t)
	if _, err := cli.Call(srv.ServiceURL("Nope"), "Say", nil); err == nil {
		t.Fatal("unknown service must fault")
	}
	if _, err := cli.Call(srv.ServiceURL("Echo"), "Nope", nil); err == nil {
		t.Fatal("unknown operation must fault")
	}
}

func TestSecureTransport(t *testing.T) {
	ca, err := gsi.NewAuthority("vo-ca")
	if err != nil {
		t.Fatal(err)
	}
	conf, err := ca.ServerConfig("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.Register("S", "Ping", func(*xmlutil.Node) (*xmlutil.Node, error) {
		return xmlutil.NewNode("Pong"), nil
	})
	if err := srv.Start("127.0.0.1:0", conf); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !srv.Secure() || !strings.HasPrefix(srv.BaseURL(), "https://") {
		t.Fatalf("base url = %s", srv.BaseURL())
	}
	cli := NewClient(ca.ClientConfig())
	resp, err := cli.Call(srv.ServiceURL("S"), "Ping", nil)
	if err != nil || resp.Name != "Pong" {
		t.Fatalf("secure call: %v %v", resp, err)
	}
	// A client that does not trust the CA must fail the handshake.
	bad := NewClient(nil)
	if _, err := bad.Call(srv.ServiceURL("S"), "Ping", nil); err == nil {
		t.Fatal("untrusting client must fail TLS")
	}
}

func TestRegisterServiceTable(t *testing.T) {
	srv := NewServer()
	srv.RegisterService("Multi", map[string]Handler{
		"A": func(*xmlutil.Node) (*xmlutil.Node, error) { return xmlutil.NewNode("RA"), nil },
		"B": func(*xmlutil.Node) (*xmlutil.Node, error) { return xmlutil.NewNode("RB"), nil },
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(nil)
	for _, op := range []string{"A", "B"} {
		resp, err := cli.Call(srv.ServiceURL("Multi"), op, nil)
		if err != nil || resp.Name != "R"+op {
			t.Fatalf("%s: %v %v", op, resp, err)
		}
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, cli := echoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				msg := fmt.Sprintf("m%d-%d", i, j)
				resp, err := cli.Call(srv.ServiceURL("Echo"), "Say", xmlutil.NewNode("M", msg))
				if err != nil {
					errs <- err
					return
				}
				if resp.Text != msg {
					errs <- fmt.Errorf("got %q want %q", resp.Text, msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndUnstartedClose(t *testing.T) {
	srv := NewServer()
	if err := srv.Close(); err != nil {
		t.Fatalf("closing unstarted server: %v", err)
	}
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cli := NewClient(nil)
	if _, err := cli.Call(srv.ServiceURL("X"), "Y", nil); err == nil {
		t.Fatal("call after close must fail")
	}
	cli.CloseIdle()
}

func TestFaultErrorFormat(t *testing.T) {
	f := &Fault{Service: "S", Operation: "Op", Message: "boom"}
	if got := f.Error(); got != "fault from S.Op: boom" {
		t.Fatalf("Error() = %q", got)
	}
	if IsFault(fmt.Errorf("wrapped: %w", f)) != true {
		t.Fatal("IsFault must unwrap")
	}
	if IsFault(fmt.Errorf("plain")) {
		t.Fatal("plain error is not a fault")
	}
}

func TestServiceOf(t *testing.T) {
	if got := serviceOf("http://h:1/wsrf/services/Abc"); got != "Abc" {
		t.Fatalf("serviceOf = %q", got)
	}
	if got := serviceOf("http://h:1/other"); got != "http://h:1/other" {
		t.Fatalf("serviceOf fallback = %q", got)
	}
}
