// Package transport implements the message layer all GLARE and substrate
// services speak: XML request/response envelopes over HTTP or HTTPS on the
// loopback interface.
//
// Every service is addressed WSRF-style as
//
//	http(s)://host:port/wsrf/services/<ServiceName>
//
// and exposes named operations. A request envelope is
//
//	<Envelope><Operation>GetDeployments</Operation><Body>…</Body></Envelope>
//
// and a response is either <Envelope><Body>…</Body></Envelope> or
// <Envelope><Fault>message</Fault></Envelope>. This stands in for the
// paper's SOAP/WSRF stack while keeping real network and (optionally) real
// TLS cost in the measured path.
//
// Requests may additionally carry a trace header element,
//
//	<Trace trace="<correlation-id>" span="<caller-span-id>"/>
//
// injected by Client.CallSpan and extracted by the server, which opens a
// child span in the site's telemetry tracer so one correlation ID follows
// a request across every site it touches. Envelopes in both directions may
// also carry a hybrid-logical-clock stamp,
//
//	<HLC t="<RFC3339Nano instant>" site="<sender site>"/>
//
// injected and merged when an hlc.Clock is attached (Client.SetHLC /
// Server.SetHLC), so any message exchange bounds the two sites' ordering
// divergence however skewed their wall clocks are. A server with telemetry
// attached (SetTelemetry) also records per-service/operation request
// counters and latency histograms, and serves the per-site admin
// endpoints /metrics, /healthz and /tracez next to the service tree.
package transport

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"glare/internal/hlc"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// ServicePrefix is the URL prefix under which services are mounted.
const ServicePrefix = "/wsrf/services/"

// Admin endpoint paths served by a telemetry-enabled server.
const (
	MetricsPath = "/metrics"
	HealthPath  = "/healthz"
	TracesPath  = "/tracez"
)

// Handler processes one operation invocation. The body may be nil for
// operations without arguments; a nil response body is rendered as an empty
// <Body/>.
type Handler func(body *xmlutil.Node) (*xmlutil.Node, error)

// TracedHandler is a Handler that additionally receives the server span
// opened for the incoming call (nil when the server has no telemetry).
// Handlers that make further service calls pass the span down so child
// spans on other sites link into the same trace.
type TracedHandler func(sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error)

// CtxHandler is the fullest handler form: it additionally receives the
// request context, which carries the caller's propagated deadline (see
// the Deadline envelope element) and the HTTP request's cancellation.
// Handlers that forward calls pass ctx down through Client.CallCtx so
// every hop shrinks the remaining budget instead of resetting it.
type CtxHandler func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error)

// Fault is an application-level error returned by a remote service.
type Fault struct {
	Service   string
	Operation string
	Message   string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("fault from %s.%s: %s", f.Service, f.Operation, f.Message)
}

// IsFault reports whether err is (or wraps) a remote Fault.
func IsFault(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Server hosts services on one listener. It is the per-site "container"
// (the GT4 analogue) into which registries and grid services deploy.
type Server struct {
	mu        sync.RWMutex
	services  map[string]map[string]CtxHandler // service -> operation -> handler
	tel       *telemetry.Telemetry
	admission *Admission
	hlc       *hlc.Clock
	listener  net.Listener
	http      *http.Server
	secure    bool
	baseURL   string
	closed    chan struct{}
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	return &Server{
		services: make(map[string]map[string]CtxHandler),
		closed:   make(chan struct{}),
	}
}

// SetTelemetry attaches the site's telemetry bundle: incoming calls are
// measured and traced, and the admin endpoints are served. Call before
// Start (or at least before traffic arrives).
func (s *Server) SetTelemetry(tel *telemetry.Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = tel
}

// Telemetry returns the attached telemetry bundle (may be nil).
func (s *Server) Telemetry() *telemetry.Telemetry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tel
}

// SetHLC attaches the site's hybrid logical clock: every incoming
// envelope's <HLC> stamp is merged into it (bounding this site's ordering
// divergence from the sender), and every response envelope carries this
// site's stamp back. Call before traffic arrives; nil disables the
// exchange (requests from/to pre-HLC peers still work — the element is
// simply absent).
func (s *Server) SetHLC(h *hlc.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hlc = h
}

// SetAdmission installs the site's admission controller: every incoming
// operation is classified, counted against its class's concurrency
// limit, and possibly queued or shed before the handler runs. nil
// disables admission control (unbounded concurrency). Call before
// traffic arrives.
func (s *Server) SetAdmission(a *Admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.admission = a
}

// Admission returns the installed admission controller (nil when
// admission control is disabled).
func (s *Server) Admission() *Admission {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admission
}

// Register mounts an operation handler on a service. Registering the same
// service/operation twice replaces the handler.
func (s *Server) Register(service, operation string, h Handler) {
	s.RegisterCtx(service, operation, func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
		return h(body)
	})
}

// RegisterTraced mounts a span-aware operation handler on a service.
func (s *Server) RegisterTraced(service, operation string, h TracedHandler) {
	s.RegisterCtx(service, operation, func(_ context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
		return h(sp, body)
	})
}

// RegisterCtx mounts a context-aware operation handler on a service.
func (s *Server) RegisterCtx(service, operation string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := s.services[service]
	if ops == nil {
		ops = make(map[string]CtxHandler)
		s.services[service] = ops
	}
	ops[operation] = h
}

// RegisterService mounts a whole operation table at once.
func (s *Server) RegisterService(service string, ops map[string]Handler) {
	for op, h := range ops {
		s.Register(service, op, h)
	}
}

// RegisterTracedService mounts a whole span-aware operation table at once.
func (s *Server) RegisterTracedService(service string, ops map[string]TracedHandler) {
	for op, h := range ops {
		s.RegisterTraced(service, op, h)
	}
}

// RegisterCtxService mounts a whole context-aware operation table at once.
func (s *Server) RegisterCtxService(service string, ops map[string]CtxHandler) {
	for op, h := range ops {
		s.RegisterCtx(service, op, h)
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port). If tlsConf
// is non-nil the server speaks HTTPS.
func (s *Server) Start(addr string, tlsConf *tls.Config) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.secure = tlsConf != nil
	scheme := "http"
	if s.secure {
		scheme = "https"
	}
	s.baseURL = fmt.Sprintf("%s://%s", scheme, ln.Addr().String())
	s.http = &http.Server{Handler: http.HandlerFunc(s.serveHTTP), TLSConfig: tlsConf}
	srv := s.http
	s.mu.Unlock()
	go func() {
		var serveErr error
		if tlsConf != nil {
			serveErr = srv.ServeTLS(ln, "", "")
		} else {
			serveErr = srv.Serve(ln)
		}
		_ = serveErr // http.ErrServerClosed on shutdown
		close(s.closed)
	}()
	return nil
}

// BaseURL returns e.g. "http://127.0.0.1:45123"; empty before Start.
func (s *Server) BaseURL() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseURL
}

// ServiceURL returns the full address of a mounted service.
func (s *Server) ServiceURL(service string) string {
	return s.BaseURL() + ServicePrefix + service
}

// Secure reports whether the server speaks HTTPS.
func (s *Server) Secure() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.secure
}

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	select {
	case <-s.closed:
	case <-time.After(5 * time.Second):
	}
	return err
}

func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, ServicePrefix) {
		s.serveAdmin(w, r)
		return
	}
	service := strings.TrimPrefix(r.URL.Path, ServicePrefix)
	s.mu.RLock()
	ops := s.services[service]
	tel := s.tel
	adm := s.admission
	hc := s.hlc
	s.mu.RUnlock()
	if ops == nil {
		writeFault(w, http.StatusNotFound, fmt.Sprintf("no such service %q", service))
		return
	}
	env, err := xmlutil.Parse(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeFault(w, http.StatusBadRequest, "malformed envelope: "+err.Error())
		return
	}
	opName := env.ChildText("Operation")
	h := ops[opName]
	if h == nil {
		writeFault(w, http.StatusNotFound, fmt.Sprintf("no such operation %q on %q", opName, service))
		return
	}
	// Merge the caller's hybrid-logical-clock stamp before any work: every
	// ordering stamp this request produces must order after everything the
	// caller had seen when it sent the message, regardless of wall-clock
	// skew between the two sites.
	observeHLC(hc, env)
	svcLabels := []telemetry.Label{telemetry.L("service", service), telemetry.L("op", opName)}
	// Overload protection, stage 1: re-derive the caller's deadline from
	// the propagated budget. A request that is already expired on arrival
	// is refused before any queueing or work — the caller has given up,
	// so executing it can only waste the capacity a live request needs.
	ctx := r.Context()
	deadline, hasDeadline := parseDeadline(env, time.Now())
	if hasDeadline {
		if !deadline.After(time.Now()) {
			if tel != nil {
				tel.Counter("glare_server_expired_on_arrival_total", svcLabels...).Inc()
			}
			writeOverloadFault(w, "expired")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	// Stage 2: admission control. The request is classified, counted
	// against its class's concurrency limit, and possibly queued (shed if
	// the queue overflows or a brownout is in force). Refusals are
	// answered with an overload fault the client maps to a non-retried
	// Unavailable — hammering an overloaded site with retries is how
	// collapse starts.
	if adm != nil {
		release, aerr := adm.Admit(service, opName, deadline)
		if aerr != nil {
			var ov *Overload
			reason := "shed"
			if errors.As(aerr, &ov) {
				reason = ov.Reason
			}
			writeOverloadFault(w, reason)
			return
		}
		defer release()
	}
	var body *xmlutil.Node
	if b := env.First("Body"); b != nil && len(b.Children) > 0 {
		body = b.Children[0]
	}
	// Instrumentation middleware: open a server span linked to the
	// caller's propagated trace context (if any) and measure the call.
	var sp *telemetry.Span
	var start time.Time
	if tel != nil {
		var traceID, parentSpan string
		if tn := env.First("Trace"); tn != nil {
			traceID = tn.AttrOr("trace", "")
			parentSpan = tn.AttrOr("span", "")
		}
		sp = tel.StartRemote("srv:"+service+"."+opName, traceID, parentSpan)
	}
	start = time.Now()
	// Final gate: time queued in admission counts against the budget, so
	// a request whose deadline lapsed while it waited must not execute.
	if hasDeadline && !start.Before(deadline) {
		if tel != nil {
			tel.Counter("glare_server_expired_on_arrival_total", svcLabels...).Inc()
			sp.End(context.DeadlineExceeded)
		}
		writeOverloadFault(w, "expired")
		return
	}
	resp, err := h(ctx, sp, body)
	if tel != nil {
		tel.Counter("glare_rpc_server_requests_total", svcLabels...).Inc()
		tel.Histogram("glare_rpc_server_latency", svcLabels...).Observe(time.Since(start))
		if err != nil {
			tel.Counter("glare_rpc_server_faults_total", svcLabels...).Inc()
		}
		sp.End(err)
	}
	if err != nil {
		// A handler killed by the propagated deadline is an overload
		// outcome, not an application fault: report it as retryable-
		// elsewhere Unavailable so the caller degrades instead of
		// surfacing a spurious hard error.
		if errors.Is(err, context.DeadlineExceeded) {
			writeOverloadFault(w, "expired")
			return
		}
		writeFault(w, http.StatusOK, err.Error())
		return
	}
	out := xmlutil.NewNode("Envelope")
	stampHLC(hc, out)
	b := out.Elem("Body")
	if resp != nil {
		b.Add(resp)
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = io.WriteString(w, out.String())
}

// stampHLC adds this site's hybrid-logical-clock stamp to an envelope;
// observeHLC merges a received envelope's stamp. Both are no-ops without a
// clock or element, so HLC exchange degrades cleanly across versions.
func stampHLC(h *hlc.Clock, env *xmlutil.Node) {
	if h == nil {
		return
	}
	n := env.Elem("HLC")
	n.SetAttr("t", h.Now().Format(time.RFC3339Nano))
	n.SetAttr("site", h.Site())
}

func observeHLC(h *hlc.Clock, env *xmlutil.Node) {
	if h == nil {
		return
	}
	n := env.First("HLC")
	if n == nil {
		return
	}
	if t, err := time.Parse(time.RFC3339Nano, n.AttrOr("t", "")); err == nil {
		h.Observe(n.AttrOr("site", ""), t)
	}
}

// serveAdmin answers the per-site observability endpoints.
func (s *Server) serveAdmin(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	tel := s.tel
	nServices := len(s.services)
	s.mu.RUnlock()
	if tel == nil {
		http.NotFound(w, r)
		return
	}
	switch r.URL.Path {
	case MetricsPath:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = tel.WriteMetrics(w)
	case HealthPath:
		w.Header().Set("Content-Type", "application/json")
		_ = tel.WriteHealth(w, nServices)
	case TracesPath:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = tel.WriteTraces(w, 0)
	default:
		http.NotFound(w, r)
	}
}

func writeFault(w http.ResponseWriter, status int, msg string) {
	out := xmlutil.NewNode("Envelope")
	out.Elem("Fault", msg)
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, out.String())
}

// writeOverloadFault answers an overload refusal: a fault envelope whose
// code="unavailable" attribute tells the client this is a transport-level
// condition (map to Unavailable, don't surface as an application Fault)
// and whose reason attribute ("expired", "shed", "brownout") explains why.
// 503 matches the HTTP semantics but clients key off the envelope.
func writeOverloadFault(w http.ResponseWriter, reason string) {
	out := xmlutil.NewNode("Envelope")
	fn := out.Elem("Fault", "overloaded: "+reason)
	fn.SetAttr("code", "unavailable")
	fn.SetAttr("reason", reason)
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = io.WriteString(w, out.String())
}

// DefaultCallTimeout bounds one Call when the client was not configured
// otherwise, so a hung site cannot stall discovery forever. On-demand
// deployments held open across a call can legitimately take seconds;
// callers driving those paths in real time should raise the timeout.
const DefaultCallTimeout = 10 * time.Second

// Client invokes operations on remote services. The zero value is not
// usable; construct with NewClient.
//
// A client optionally layers fault tolerance over its calls: a RetryPolicy
// re-issues calls that failed at the transport level (never application
// Faults), a RetryBudget bounds the extra traffic those retries generate,
// and per-destination circuit breakers (SetBreaker) stop hammering a site
// that keeps failing, re-probing it after a cooldown. All three are off by
// default and configured at assembly time.
type Client struct {
	http    *http.Client
	timeout time.Duration
	tel     *telemetry.Telemetry
	hlc     *hlc.Clock

	retry    RetryPolicy
	budget   *RetryBudget
	breakers *breakerSet

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewClient builds a client with the default per-request timeout. tlsConf
// may be nil for plain HTTP; when non-nil it is used for HTTPS addresses.
func NewClient(tlsConf *tls.Config) *Client {
	return NewClientTimeout(tlsConf, DefaultCallTimeout)
}

// NewClientTimeout builds a client with an explicit per-request timeout;
// timeout <= 0 selects DefaultCallTimeout.
func NewClientTimeout(tlsConf *tls.Config, timeout time.Duration) *Client {
	tr := &http.Transport{
		TLSClientConfig:     tlsConf,
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     30 * time.Second,
	}
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	return &Client{http: &http.Client{Transport: tr}, timeout: timeout}
}

// SetTimeout changes the per-request timeout; d <= 0 restores the default.
// Not safe to call concurrently with Call.
func (c *Client) SetTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultCallTimeout
	}
	c.timeout = d
}

// Timeout returns the per-request timeout.
func (c *Client) Timeout() time.Duration { return c.timeout }

// SetTelemetry attaches a telemetry bundle: outgoing calls are counted
// and timed into its registry. Not safe to call concurrently with Call.
func (c *Client) SetTelemetry(tel *telemetry.Telemetry) { c.tel = tel }

// SetHLC attaches the site's hybrid logical clock: every outgoing
// envelope carries its stamp, and every response's stamp is merged back —
// so any message exchange, in either direction, bounds the two sites'
// ordering divergence. Not safe to call concurrently with Call.
func (c *Client) SetHLC(h *hlc.Clock) { c.hlc = h }

// SetRetryPolicy enables transport-level retries. Only Unavailable errors
// are ever retried; a Fault means the site answered and is final. Not
// safe to call concurrently with Call.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
}

// SetRetryBudget bounds the global retry volume; nil restores the
// unlimited default. Not safe to call concurrently with Call.
func (c *Client) SetRetryBudget(b *RetryBudget) { c.budget = b }

// SetBreaker enables per-destination circuit breakers. Not safe to call
// concurrently with Call.
func (c *Client) SetBreaker(cfg BreakerConfig) { c.breakers = newBreakerSet(cfg) }

// BreakerState reports the breaker position for the site hosting address
// (BreakerClosed when breakers are disabled or the site was never called).
func (c *Client) BreakerState(address string) BreakerState {
	if c.breakers == nil {
		return BreakerClosed
	}
	return c.breakers.get(destOf(address)).current()
}

// OpenBreakers counts destinations whose breaker is currently open —
// the health digest's "how many peers am I refusing to call" figure.
func (c *Client) OpenBreakers() int {
	if c.breakers == nil {
		return 0
	}
	return c.breakers.countOpen()
}

// WrapTransport wraps the client's underlying HTTP round-tripper, e.g.
// with a faultinject.Injector for chaos testing. Call during assembly,
// before issuing requests.
func (c *Client) WrapTransport(wrap func(http.RoundTripper) http.RoundTripper) {
	c.http.Transport = wrap(c.http.Transport)
}

// Call invokes operation on the service at address (a full service URL as
// returned by Server.ServiceURL) with an optional body node.
func (c *Client) Call(address, operation string, body *xmlutil.Node) (*xmlutil.Node, error) {
	return c.CallSpan(nil, address, operation, body)
}

// CallSpan is Call with trace propagation: when sp is non-nil its trace
// context rides in the request envelope's Trace header, so the server's
// span (and everything below it) joins the caller's trace.
func (c *Client) CallSpan(sp *telemetry.Span, address, operation string, body *xmlutil.Node) (*xmlutil.Node, error) {
	return c.call(context.Background(), sp, address, operation, body, c.timeout, true)
}

// CallCtx is CallSpan with deadline propagation: when ctx carries a
// deadline, the remaining budget is stamped into the request envelope so
// the server (and every further hop it makes) works against the caller's
// clock instead of its own. Retries re-stamp the shrunk remainder, stop
// as soon as the budget cannot cover another backoff, and never start an
// attempt after the deadline. ctx cancellation aborts in-flight attempts.
func (c *Client) CallCtx(ctx context.Context, sp *telemetry.Span, address, operation string, body *xmlutil.Node) (*xmlutil.Node, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return c.call(ctx, sp, address, operation, body, c.timeout, true)
}

// Probe issues a single-attempt call under its own (typically short)
// timeout, bypassing the retry policy but not the circuit breaker: an
// open breaker fails the probe immediately. Liveness checks use this so
// (a) failure detection is not slowed by the regular per-request timeout
// and (b) a site the client already knows is dead is not re-probed by
// every subsystem. The probe timeout doubles as the propagated budget, so
// the probed site sheds the request rather than answering into the void
// after the prober has moved on.
func (c *Client) Probe(address, operation string, body *xmlutil.Node, timeout time.Duration) (*xmlutil.Node, error) {
	if timeout <= 0 {
		timeout = c.timeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.call(ctx, nil, address, operation, body, timeout, false)
}

func (c *Client) call(ctx context.Context, sp *telemetry.Span, address, operation string, body *xmlutil.Node, timeout time.Duration, retryable bool) (*xmlutil.Node, error) {
	env := xmlutil.NewNode("Envelope")
	env.Elem("Operation", operation)
	if traceID, spanID := sp.Context(); traceID != "" {
		tn := env.Elem("Trace")
		tn.SetAttr("trace", traceID)
		tn.SetAttr("span", spanID)
	}
	stampHLC(c.hlc, env)
	b := env.Elem("Body")
	if body != nil {
		b.Add(body)
	}
	var start time.Time
	if c.tel != nil {
		start = time.Now()
	}
	out, err := c.exchange(ctx, address, operation, env, timeout, retryable)
	if c.tel != nil {
		labels := []telemetry.Label{telemetry.L("op", operation)}
		c.tel.Counter("glare_rpc_client_requests_total", labels...).Inc()
		c.tel.Histogram("glare_rpc_client_latency", labels...).Observe(time.Since(start))
		if err != nil {
			c.tel.Counter("glare_rpc_client_errors_total", labels...).Inc()
		}
	}
	if err != nil {
		return nil, err
	}
	observeHLC(c.hlc, out)
	if f := out.First("Fault"); f != nil {
		// An overload refusal (code="unavailable") is the site protecting
		// itself, not an application error: surface it as Unavailable so
		// resolution falls back to caches/other peers — but it is never
		// retried against the same site (see exchange), because retrying
		// into an admission controller is just more flood.
		if f.AttrOr("code", "") == "unavailable" {
			reason := f.AttrOr("reason", "overload")
			if c.tel != nil {
				c.tel.Counter("glare_transport_server_rejects_total",
					telemetry.L("op", operation), telemetry.L("reason", reason)).Inc()
			}
			return nil, &Unavailable{Address: address, Operation: operation, Reason: "server-" + reason}
		}
		return nil, &Fault{Service: serviceOf(address), Operation: operation, Message: f.Text}
	}
	if b := out.First("Body"); b != nil && len(b.Children) > 0 {
		return b.Children[0], nil
	}
	return nil, nil
}

// exchange runs the attempt loop for one logical call: breaker admission,
// deadline accounting, the POST itself, failure classification, and
// backoff between retries. Errors escaping here are always *Unavailable;
// Faults surface later from the parsed envelope (and count as transport
// successes — the site is up).
//
// Ordering inside the loop matters for the fault-tolerance economics:
// the breaker is consulted before the retry budget, so an open breaker's
// local refusal never burns a budget token (it isn't network traffic);
// and the remaining deadline is checked before every withdrawal and every
// backoff sleep, so a call abandons retrying — with its tokens intact —
// as soon as the budget cannot cover another attempt.
func (c *Client) exchange(ctx context.Context, address, operation string, env *xmlutil.Node, timeout time.Duration, retryable bool) (*xmlutil.Node, error) {
	maxAttempts := 1
	if retryable && c.retry.MaxAttempts > 1 {
		maxAttempts = c.retry.MaxAttempts
	}
	dest := destOf(address)
	deadline, hasDeadline := ctx.Deadline()
	var lastErr error
	for attempt := 1; ; attempt++ {
		var br *breaker
		probe := false
		if c.breakers != nil {
			br = c.breakers.get(dest)
			ok, p := br.admit()
			if !ok {
				c.tel.Counter("glare_transport_breaker_rejected_total", telemetry.L("dest", dest)).Inc()
				return nil, &Unavailable{Address: address, Operation: operation, Reason: "breaker-open", Err: lastErr}
			}
			probe = p
		}
		// The retry token is withdrawn only once an attempt is actually
		// going to hit the wire — after breaker admission, so a local
		// refusal costs nothing.
		if attempt > 1 {
			if !c.budget.Withdraw() {
				c.tel.Counter("glare_transport_retry_budget_exhausted_total").Inc()
				c.tel.Counter("glare_transport_unavailable_total", telemetry.L("op", operation)).Inc()
				return nil, &Unavailable{Address: address, Operation: operation, Reason: "retry-budget", Err: lastErr}
			}
			c.tel.Counter("glare_transport_retries_total", telemetry.L("op", operation)).Inc()
		}
		attemptTimeout := timeout
		if hasDeadline {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				c.tel.Counter("glare_transport_deadline_expired_total", telemetry.L("op", operation)).Inc()
				return nil, &Unavailable{Address: address, Operation: operation, Reason: "deadline", Err: lastErr}
			}
			stampDeadline(env, remaining)
			if attemptTimeout <= 0 || remaining < attemptTimeout {
				attemptTimeout = remaining
			}
		}
		out, err := c.post(ctx, address, env, attemptTimeout)
		if err == nil {
			if br != nil {
				br.onSuccess(probe)
				c.tel.Gauge("glare_transport_breaker_state", telemetry.L("dest", dest)).Set(int64(br.current()))
			}
			c.budget.Deposit()
			return out, nil
		}
		lastErr = err
		if br != nil {
			if br.onFailure(probe) {
				c.tel.Counter("glare_transport_breaker_open_total", telemetry.L("dest", dest)).Inc()
			}
			c.tel.Gauge("glare_transport_breaker_state", telemetry.L("dest", dest)).Set(int64(br.current()))
		}
		if attempt >= maxAttempts {
			c.tel.Counter("glare_transport_unavailable_total", telemetry.L("op", operation)).Inc()
			return nil, &Unavailable{Address: address, Operation: operation, Reason: unavailableReason(err), Err: err}
		}
		delay := c.backoff(attempt)
		if hasDeadline && time.Until(deadline) <= delay {
			// The budget cannot cover the backoff, let alone another
			// attempt: abandon now, with the remaining tokens intact.
			c.tel.Counter("glare_transport_deadline_abandoned_total", telemetry.L("op", operation)).Inc()
			c.tel.Counter("glare_transport_unavailable_total", telemetry.L("op", operation)).Inc()
			return nil, &Unavailable{Address: address, Operation: operation, Reason: "deadline", Err: err}
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			c.tel.Counter("glare_transport_unavailable_total", telemetry.L("op", operation)).Inc()
			return nil, &Unavailable{Address: address, Operation: operation, Reason: "deadline", Err: ctx.Err()}
		}
	}
}

// backoff computes the jittered delay after the attempt-th failed try.
func (c *Client) backoff(attempt int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.retry.delay(attempt, c.rng)
}

// post sends one envelope under the given timeout and parses the response
// envelope. ctx bounds the attempt in addition to the timeout, so a
// cancelled caller aborts the request in flight.
func (c *Client) post(ctx context.Context, address string, env *xmlutil.Node, timeout time.Duration) (*xmlutil.Node, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, address,
		bytes.NewReader([]byte(env.String())))
	if err != nil {
		return nil, fmt.Errorf("transport: call %s: %w", address, err)
	}
	req.Header.Set("Content-Type", "application/xml")
	operation := env.ChildText("Operation")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: call %s %s: %w", address, operation, err)
	}
	defer resp.Body.Close()
	out, err := xmlutil.Parse(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("transport: call %s %s: bad response: %w", address, operation, err)
	}
	return out, nil
}

// Get fetches a plain (non-envelope) resource — the admin endpoints a
// Server exposes beside its services (/metrics, /healthz, /tracez) —
// using the client's TLS configuration and per-request timeout.
func (c *Client) Get(url string) (string, error) {
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", fmt.Errorf("transport: get %s: %w", url, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("transport: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("transport: get %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("transport: get %s: %s", url, resp.Status)
	}
	return string(data), nil
}

// CloseIdle releases pooled connections.
func (c *Client) CloseIdle() { c.http.CloseIdleConnections() }

func serviceOf(address string) string {
	if i := strings.LastIndex(address, ServicePrefix); i >= 0 {
		return address[i+len(ServicePrefix):]
	}
	return address
}
