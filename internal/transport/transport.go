// Package transport implements the message layer all GLARE and substrate
// services speak: XML request/response envelopes over HTTP or HTTPS on the
// loopback interface.
//
// Every service is addressed WSRF-style as
//
//	http(s)://host:port/wsrf/services/<ServiceName>
//
// and exposes named operations. A request envelope is
//
//	<Envelope><Operation>GetDeployments</Operation><Body>…</Body></Envelope>
//
// and a response is either <Envelope><Body>…</Body></Envelope> or
// <Envelope><Fault>message</Fault></Envelope>. This stands in for the
// paper's SOAP/WSRF stack while keeping real network and (optionally) real
// TLS cost in the measured path.
package transport

import (
	"bytes"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"glare/internal/xmlutil"
)

// ServicePrefix is the URL prefix under which services are mounted.
const ServicePrefix = "/wsrf/services/"

// Handler processes one operation invocation. The body may be nil for
// operations without arguments; a nil response body is rendered as an empty
// <Body/>.
type Handler func(body *xmlutil.Node) (*xmlutil.Node, error)

// Fault is an application-level error returned by a remote service.
type Fault struct {
	Service   string
	Operation string
	Message   string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("fault from %s.%s: %s", f.Service, f.Operation, f.Message)
}

// IsFault reports whether err is (or wraps) a remote Fault.
func IsFault(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Server hosts services on one listener. It is the per-site "container"
// (the GT4 analogue) into which registries and grid services deploy.
type Server struct {
	mu       sync.RWMutex
	services map[string]map[string]Handler // service -> operation -> handler
	listener net.Listener
	http     *http.Server
	secure   bool
	baseURL  string
	closed   chan struct{}
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	return &Server{
		services: make(map[string]map[string]Handler),
		closed:   make(chan struct{}),
	}
}

// Register mounts an operation handler on a service. Registering the same
// service/operation twice replaces the handler.
func (s *Server) Register(service, operation string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := s.services[service]
	if ops == nil {
		ops = make(map[string]Handler)
		s.services[service] = ops
	}
	ops[operation] = h
}

// RegisterService mounts a whole operation table at once.
func (s *Server) RegisterService(service string, ops map[string]Handler) {
	for op, h := range ops {
		s.Register(service, op, h)
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port). If tlsConf
// is non-nil the server speaks HTTPS.
func (s *Server) Start(addr string, tlsConf *tls.Config) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.secure = tlsConf != nil
	scheme := "http"
	if s.secure {
		scheme = "https"
	}
	s.baseURL = fmt.Sprintf("%s://%s", scheme, ln.Addr().String())
	s.http = &http.Server{Handler: http.HandlerFunc(s.serveHTTP), TLSConfig: tlsConf}
	srv := s.http
	s.mu.Unlock()
	go func() {
		var serveErr error
		if tlsConf != nil {
			serveErr = srv.ServeTLS(ln, "", "")
		} else {
			serveErr = srv.Serve(ln)
		}
		_ = serveErr // http.ErrServerClosed on shutdown
		close(s.closed)
	}()
	return nil
}

// BaseURL returns e.g. "http://127.0.0.1:45123"; empty before Start.
func (s *Server) BaseURL() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseURL
}

// ServiceURL returns the full address of a mounted service.
func (s *Server) ServiceURL(service string) string {
	return s.BaseURL() + ServicePrefix + service
}

// Secure reports whether the server speaks HTTPS.
func (s *Server) Secure() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.secure
}

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	select {
	case <-s.closed:
	case <-time.After(5 * time.Second):
	}
	return err
}

func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, ServicePrefix) {
		http.NotFound(w, r)
		return
	}
	service := strings.TrimPrefix(r.URL.Path, ServicePrefix)
	s.mu.RLock()
	ops := s.services[service]
	s.mu.RUnlock()
	if ops == nil {
		writeFault(w, http.StatusNotFound, fmt.Sprintf("no such service %q", service))
		return
	}
	env, err := xmlutil.Parse(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeFault(w, http.StatusBadRequest, "malformed envelope: "+err.Error())
		return
	}
	opName := env.ChildText("Operation")
	h := ops[opName]
	if h == nil {
		writeFault(w, http.StatusNotFound, fmt.Sprintf("no such operation %q on %q", opName, service))
		return
	}
	var body *xmlutil.Node
	if b := env.First("Body"); b != nil && len(b.Children) > 0 {
		body = b.Children[0]
	}
	resp, err := h(body)
	if err != nil {
		writeFault(w, http.StatusOK, err.Error())
		return
	}
	out := xmlutil.NewNode("Envelope")
	b := out.Elem("Body")
	if resp != nil {
		b.Add(resp)
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = io.WriteString(w, out.String())
}

func writeFault(w http.ResponseWriter, status int, msg string) {
	out := xmlutil.NewNode("Envelope")
	out.Elem("Fault", msg)
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, out.String())
}

// Client invokes operations on remote services. The zero value is not
// usable; construct with NewClient.
type Client struct {
	http *http.Client
}

// NewClient builds a client. tlsConf may be nil for plain HTTP; when
// non-nil it is used for HTTPS addresses.
func NewClient(tlsConf *tls.Config) *Client {
	tr := &http.Transport{
		TLSClientConfig:     tlsConf,
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     30 * time.Second,
	}
	return &Client{http: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

// Call invokes operation on the service at address (a full service URL as
// returned by Server.ServiceURL) with an optional body node.
func (c *Client) Call(address, operation string, body *xmlutil.Node) (*xmlutil.Node, error) {
	env := xmlutil.NewNode("Envelope")
	env.Elem("Operation", operation)
	b := env.Elem("Body")
	if body != nil {
		b.Add(body)
	}
	resp, err := c.http.Post(address, "application/xml", bytes.NewReader([]byte(env.String())))
	if err != nil {
		return nil, fmt.Errorf("transport: call %s %s: %w", address, operation, err)
	}
	defer resp.Body.Close()
	out, err := xmlutil.Parse(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("transport: call %s %s: bad response: %w", address, operation, err)
	}
	if f := out.First("Fault"); f != nil {
		return nil, &Fault{Service: serviceOf(address), Operation: operation, Message: f.Text}
	}
	if b := out.First("Body"); b != nil && len(b.Children) > 0 {
		return b.Children[0], nil
	}
	return nil, nil
}

// CloseIdle releases pooled connections.
func (c *Client) CloseIdle() { c.http.CloseIdleConnections() }

func serviceOf(address string) string {
	if i := strings.LastIndex(address, ServicePrefix); i >= 0 {
		return address[i+len(ServicePrefix):]
	}
	return address
}
