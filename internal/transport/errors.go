package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Unavailable is a transport-level failure: the remote site could not be
// reached at all — connection refused, request timeout, or a circuit
// breaker rejecting the destination — as opposed to a Fault, which means
// the site answered and rejected the operation. The distinction drives
// the whole robustness layer: the retry policy only ever retries
// Unavailable errors, and resolution layers use it to decide when serving
// stale cache entries beats surfacing an error.
type Unavailable struct {
	// Address is the service URL of the failed call.
	Address string
	// Operation is the invoked operation name.
	Operation string
	// Reason classifies the failure: "connection", "timeout",
	// "breaker-open", "retry-budget", "deadline" (the caller's propagated
	// budget ran out before or between attempts), or "server-expired" /
	// "server-shed" / "server-brownout" (the site's admission controller
	// refused the request; see IsOverloadReject).
	Reason string
	// Err is the underlying error (nil for breaker rejections that never
	// touched the network).
	Err error
}

// Error implements the error interface.
func (u *Unavailable) Error() string {
	if u.Err != nil {
		return fmt.Sprintf("transport: %s %s unavailable (%s): %v",
			u.Address, u.Operation, u.Reason, u.Err)
	}
	return fmt.Sprintf("transport: %s %s unavailable (%s)", u.Address, u.Operation, u.Reason)
}

// Unwrap exposes the underlying transport error.
func (u *Unavailable) Unwrap() error { return u.Err }

// IsUnavailable reports whether err is (or wraps) an Unavailable, i.e. the
// destination site is down or unreachable rather than rejecting the
// operation.
func IsUnavailable(err error) bool {
	var u *Unavailable
	return errors.As(err, &u)
}

// IsOverloadReject reports whether err is an Unavailable produced by the
// remote site's admission controller (shed, brownout, or expired on
// arrival) rather than by an unreachable site. Overload rejects mean the
// site is alive but protecting itself: callers should back off or degrade
// rather than fail over to probing it.
func IsOverloadReject(err error) bool {
	var u *Unavailable
	if !errors.As(err, &u) {
		return false
	}
	return strings.HasPrefix(u.Reason, "server-")
}

// unavailableReason classifies a raw transport error for Unavailable.Reason.
func unavailableReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	return "connection"
}
