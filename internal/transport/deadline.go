package transport

import (
	"strconv"
	"time"

	"glare/internal/xmlutil"
)

// Deadline propagation: a caller whose context carries a deadline stamps
// the remaining budget into the request envelope as
//
//	<Deadline budget_ms="142.512"/>
//
// and the server re-derives an absolute deadline from the budget on
// arrival. Budgets are relative (milliseconds remaining) rather than
// absolute timestamps so the scheme needs no clock synchronisation
// between sites — the network transit time is simply charged against the
// budget. Every forwarding hop re-stamps the (smaller) remainder, so the
// budget shrinks monotonically along a resolution chain, and a request
// whose budget is gone on arrival is refused before any work is done.

// deadlineElem is the envelope element carrying the propagated budget;
// budgetAttr is its attribute, in (fractional) milliseconds.
const (
	deadlineElem = "Deadline"
	budgetAttr   = "budget_ms"
)

// stampDeadline writes the remaining budget into env, replacing any
// previous stamp — each retry attempt re-stamps the shrunk remainder.
func stampDeadline(env *xmlutil.Node, remaining time.Duration) {
	dn := env.First(deadlineElem)
	if dn == nil {
		dn = env.Elem(deadlineElem)
	}
	ms := float64(remaining) / float64(time.Millisecond)
	dn.SetAttr(budgetAttr, strconv.FormatFloat(ms, 'f', 3, 64))
}

// parseDeadline extracts the propagated budget from a request envelope,
// anchoring it at now. ok is false when the envelope carries no (or a
// malformed) stamp, i.e. the caller set no deadline.
func parseDeadline(env *xmlutil.Node, now time.Time) (deadline time.Time, ok bool) {
	dn := env.First(deadlineElem)
	if dn == nil {
		return time.Time{}, false
	}
	ms, err := strconv.ParseFloat(dn.AttrOr(budgetAttr, ""), 64)
	if err != nil {
		return time.Time{}, false
	}
	return now.Add(time.Duration(ms * float64(time.Millisecond))), true
}
