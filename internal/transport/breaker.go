package transport

import (
	"strings"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed lets calls through and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls without touching the network until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe request through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerConfig tunes the per-destination circuit breakers of a Client.
type BreakerConfig struct {
	// FailureThreshold consecutive transport failures trip the breaker.
	// Retries count individually, so one retried call to a dead site can
	// open its breaker. Default 3.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting one
	// half-open probe. Default 5s.
	Cooldown time.Duration
	// HalfOpenSuccesses successful probes close a half-open breaker.
	// Default 1.
	HalfOpenSuccesses int
	// Now is the breaker's time source; nil uses time.Now. Tests inject a
	// fake to step through the cooldown deterministically.
	Now func() time.Time
}

// DefaultBreakerConfig suits intra-VO failure detection.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{FailureThreshold: 3, Cooldown: 5 * time.Second, HalfOpenSuccesses: 1}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breaker is one destination's state machine.
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // a half-open probe is in flight
}

// admit reports whether a call may proceed; probe marks the call as the
// half-open trial whose outcome settles the state.
func (b *breaker) admit() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probing = true
		return true, true
	default: // half-open: one probe at a time
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// onSuccess records a successful exchange; probe echoes admit's flag.
func (b *breaker) onSuccess(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		if probe {
			b.probing = false
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.state = BreakerClosed
			b.failures = 0
		}
	}
}

// onFailure records a transport failure and reports whether the breaker
// tripped open on this call.
func (b *breaker) onFailure(probe bool) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
			return true
		}
	case BreakerHalfOpen:
		if probe {
			b.probing = false
		}
		b.state = BreakerOpen
		b.openedAt = b.cfg.Now()
		return true
	}
	return false
}

// current returns the literal state (an open breaker past its cooldown
// still reports open until a call flips it to half-open).
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerSet keys breakers by destination host:port.
type breakerSet struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*breaker
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), m: make(map[string]*breaker)}
}

// countOpen tallies destinations whose breaker currently sits Open — the
// sites this client refuses to call. Half-open probes do not count: the
// client is already testing recovery there.
func (s *breakerSet) countOpen() int {
	s.mu.Lock()
	breakers := make([]*breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	n := 0
	for _, b := range breakers {
		if b.current() == BreakerOpen {
			n++
		}
	}
	return n
}

func (s *breakerSet) get(dest string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[dest]
	if b == nil {
		b = &breaker{cfg: s.cfg}
		s.m[dest] = b
	}
	return b
}

// destOf reduces a service URL to its host:port breaker key, so every
// service on one site shares one breaker — a dead container is dead for
// all its services.
func destOf(address string) string {
	rest := address
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
