package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

func TestClientTimeoutAbortsHungCall(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	srv.Register("Slow", "Hang", func(*xmlutil.Node) (*xmlutil.Node, error) {
		<-release
		return xmlutil.NewNode("Done"), nil
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close(release); srv.Close() })

	cli := NewClientTimeout(nil, 50*time.Millisecond)
	if cli.Timeout() != 50*time.Millisecond {
		t.Fatalf("timeout = %v", cli.Timeout())
	}
	start := time.Now()
	_, err := cli.Call(srv.ServiceURL("Slow"), "Hang", nil)
	if err == nil {
		t.Fatal("hung call must time out")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timed out only after %v", el)
	}
}

func TestClientDefaultAndSetTimeout(t *testing.T) {
	cli := NewClient(nil)
	if cli.Timeout() != DefaultCallTimeout {
		t.Fatalf("default timeout = %v", cli.Timeout())
	}
	cli.SetTimeout(time.Second)
	if cli.Timeout() != time.Second {
		t.Fatalf("timeout = %v", cli.Timeout())
	}
	cli.SetTimeout(0)
	if cli.Timeout() != DefaultCallTimeout {
		t.Fatalf("zero must restore default, got %v", cli.Timeout())
	}
}

func TestFaultDecodeWithinTimeout(t *testing.T) {
	srv := NewServer()
	srv.Register("F", "Boom", func(*xmlutil.Node) (*xmlutil.Node, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClientTimeout(nil, 2*time.Second)
	_, err := cli.Call(srv.ServiceURL("F"), "Boom", nil)
	if !IsFault(err) {
		t.Fatalf("want fault, got %v", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Service != "F" || f.Operation != "Boom" ||
		!strings.Contains(f.Message, "deliberate failure") {
		t.Fatalf("fault fields = %+v", f)
	}
}

func TestTracePropagationAcrossHop(t *testing.T) {
	telA := telemetry.New("caller")
	telB := telemetry.New("server")
	srv := NewServer()
	srv.SetTelemetry(telB)
	var gotSpan *telemetry.Span
	srv.RegisterTraced("T", "Op", func(sp *telemetry.Span, _ *xmlutil.Node) (*xmlutil.Node, error) {
		gotSpan = sp
		return xmlutil.NewNode("OK"), nil
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewClient(nil)
	root := telA.StartSpan("client.root", nil)
	if _, err := cli.CallSpan(root, srv.ServiceURL("T"), "Op", nil); err != nil {
		t.Fatal(err)
	}
	root.End(nil)
	if gotSpan == nil {
		t.Fatal("traced handler did not receive a span")
	}
	if gotSpan.TraceID != root.TraceID {
		t.Fatalf("server span trace %s != caller trace %s", gotSpan.TraceID, root.TraceID)
	}
	if gotSpan.ParentID != root.SpanID {
		t.Fatalf("server span parent %s != caller span %s", gotSpan.ParentID, root.SpanID)
	}
	// The server's tracez shows the propagated correlation ID.
	var b strings.Builder
	if err := telB.WriteTraces(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace="+root.TraceID) {
		t.Fatalf("server tracez missing trace id:\n%s", b.String())
	}
	// Server metrics counted the call.
	if telB.Counter("glare_rpc_server_requests_total",
		telemetry.L("service", "T"), telemetry.L("op", "Op")).Value() != 1 {
		t.Fatal("server request counter not incremented")
	}
}

func TestCallWithoutSpanStartsFreshServerTrace(t *testing.T) {
	tel := telemetry.New("server")
	srv := NewServer()
	srv.SetTelemetry(tel)
	srv.Register("T", "Op", func(*xmlutil.Node) (*xmlutil.Node, error) {
		return xmlutil.NewNode("OK"), nil
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := NewClient(nil).Call(srv.ServiceURL("T"), "Op", nil); err != nil {
		t.Fatal(err)
	}
	recent := tel.Tracer().Recent(0)
	if len(recent) != 1 || recent[0].TraceID == "" || recent[0].ParentID != "" {
		t.Fatalf("unexpected server spans: %+v", recent)
	}
}

func TestAdminEndpoints(t *testing.T) {
	tel := telemetry.New("agrid01")
	srv := NewServer()
	srv.SetTelemetry(tel)
	srv.Register("T", "Op", func(*xmlutil.Node) (*xmlutil.Node, error) {
		return xmlutil.NewNode("OK"), nil
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(nil)
	if _, err := cli.Call(srv.ServiceURL("T"), "Op", nil); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.BaseURL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get(MetricsPath); code != 200 ||
		!strings.Contains(body, `glare_rpc_server_requests_total{service="T",op="Op"} 1`) {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get(HealthPath); code != 200 ||
		!strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, `"site":"agrid01"`) {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	if code, body := get(TracesPath); code != 200 || !strings.Contains(body, "srv:T.Op") {
		t.Fatalf("/tracez: %d\n%s", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown admin path: %d", code)
	}
	// Without telemetry the admin tree stays dark.
	bare := NewServer()
	if err := bare.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, err := http.Get(bare.BaseURL() + MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("telemetry-less /metrics: %d", resp.StatusCode)
	}
}
