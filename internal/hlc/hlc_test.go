package hlc

import (
	"sync"
	"testing"
	"time"

	"glare/internal/simclock"
)

func TestNowIsStrictlyMonotonicOnAStalledClock(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	c := New("A1", v)
	prev := c.Now()
	for i := 0; i < 100; i++ {
		next := c.Now()
		if !next.After(prev) {
			t.Fatalf("stamp %d not after its predecessor: %v <= %v", i, next, prev)
		}
		prev = next
	}
	if c.Logical() != 100 {
		t.Fatalf("logical = %d, want 100 bumps on a stalled physical clock", c.Logical())
	}
	v.Advance(time.Millisecond)
	if next := c.Now(); !next.After(prev) || c.Logical() != 0 {
		t.Fatalf("physical advance must lead and reset logical: %v after %v, logical=%d",
			next, prev, c.Logical())
	}
}

// The HLC causality guarantee: an event stamped after receiving a message
// orders strictly after every stamp carried by that message, even when the
// receiver's physical clock runs far behind the sender's.
func TestObservePreservesCausalityAcrossSkew(t *testing.T) {
	base := simclock.NewVirtual(time.Time{})
	fast := simclock.NewSkewed(base)
	fast.SetOffset(10 * time.Minute)
	slow := simclock.NewSkewed(base)
	slow.SetOffset(-10 * time.Minute)

	sender := New("Fast1", fast)
	receiver := New("Slow1", slow)

	msg := sender.Now()
	off := receiver.Observe("Fast1", msg)
	if off < 19*time.Minute {
		t.Fatalf("observed offset %v, want about +20m (sender leads by skew sum)", off)
	}
	if after := receiver.Now(); !after.After(msg) {
		t.Fatalf("post-receive stamp %v does not order after the message stamp %v", after, msg)
	}
	if receiver.Lead() < 19*time.Minute {
		t.Fatalf("receiver lead %v, want the inherited divergence", receiver.Lead())
	}
	// Raw wall clocks get this wrong: the receiver's own clock stays behind.
	if raw := slow.Now(); raw.After(msg) {
		t.Fatal("test premise broken: the raw skewed clock should trail the message")
	}
}

func TestObserveIgnoresZeroAndTracksPeerOffsets(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	c := New("A1", v)
	before := c.Now()
	if off := c.Observe("Old1", time.Time{}); off != 0 {
		t.Fatalf("zero stamp produced offset %v", off)
	}
	if len(c.PeerOffsets()) != 0 {
		t.Fatal("zero stamp must not be recorded as a peer observation")
	}
	c.Observe("B1", v.Now().Add(time.Minute))
	c.Observe("C1", v.Now().Add(-3*time.Minute))
	offs := c.PeerOffsets()
	if offs["B1"] != time.Minute || offs["C1"] != -3*time.Minute {
		t.Fatalf("peer offsets = %v", offs)
	}
	peer, off := c.MaxPeerOffset()
	if peer != "C1" || off != -3*time.Minute {
		t.Fatalf("max offset = %s %v, want C1 -3m", peer, off)
	}
	if next := c.Now(); !next.After(before) {
		t.Fatal("monotonicity lost across observations")
	}
}

func TestSkewAlarmFiresBeyondBound(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	c := New("A1", v)
	var mu sync.Mutex
	fired := map[string]time.Duration{}
	c.OnSkew(func(peer string, off time.Duration) {
		mu.Lock()
		fired[peer] = off
		mu.Unlock()
	})
	c.SetSkewBound(2 * time.Second)

	c.Observe("NearPeer", v.Now().Add(time.Second))
	mu.Lock()
	n := len(fired)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("alarm fired inside the bound: %v", fired)
	}
	c.Observe("FastPeer", v.Now().Add(time.Minute))
	c.Observe("SlowPeer", v.Now().Add(-time.Minute))
	mu.Lock()
	defer mu.Unlock()
	if fired["FastPeer"] < 2*time.Second || fired["SlowPeer"] > -2*time.Second {
		t.Fatalf("alarm offsets = %v, want both directions beyond the bound", fired)
	}
}

// Satellite: the (HLC, site name) total order is deterministic for the
// equal-instant conflicts that a shared virtual clock makes common.
func TestSiteNameBreaksEqualInstantTies(t *testing.T) {
	at := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	if !Less(at, "A1", at, "B1") || Less(at, "B1", at, "A1") {
		t.Fatal("equal instants must order by site name")
	}
	if Less(at, "A1", at, "A1") || Newer(at, "A1", at, "A1") {
		t.Fatal("identical stamps are neither less nor newer")
	}
	if !Newer(at.Add(time.Nanosecond), "A1", at, "Z9") {
		t.Fatal("instant dominates site name")
	}
	if !Newer(at, "B1", at, "A1") {
		t.Fatal("Newer must mirror Less")
	}
}

func TestClockImplementsSimclockClock(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	var c simclock.Clock = New("A1", v)
	done := c.After(time.Second)
	c.Sleep(2 * time.Second) // delegates to the virtual clock: advances it
	select {
	case <-done:
	default:
		t.Fatal("After waiter did not fire through the delegated virtual clock")
	}
}

func TestConcurrentNowAndObserveStaysMonotonic(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	c := New("A1", v)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := c.Now()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					c.Observe("P1", prev.Add(time.Duration(i)*time.Microsecond))
				}
				next := c.Now()
				if !next.After(prev) {
					t.Errorf("goroutine %d: non-monotonic stamp", g)
					return
				}
				prev = next
			}
		}(g)
	}
	wg.Wait()
}
