// Package hlc implements hybrid logical clocks for cross-site ordering.
//
// Every newest-wins comparison in GLARE — registry anti-entropy, replication
// tombstones, blob location tables — used to compare raw per-site wall-clock
// reads. Autonomous sites do not share a wall clock: a few minutes of skew
// can make a genuinely newer write look older, silently dropping an acked
// registration or resurrecting a deleted deployment. A hybrid logical clock
// (Kulkarni et al.) fixes this by combining a physical component (close to
// the site's own clock) with a logical component that preserves causality:
// any event that happens after a message is received is stamped strictly
// after every stamp carried by that message, regardless of skew.
//
// This package uses the compact encoding from §6.2 of the HLC paper: the
// logical component is folded into the low bits of the physical value by
// bumping the timestamp one nanosecond per causally-ordered event while the
// physical clock stands still. Stamps therefore remain ordinary time.Time
// values — every existing wire format (RFC3339Nano ref-properties), journal
// record and comparison keeps working — while gaining the HLC ordering
// guarantee. The encoding is safe here because the virtual clock advances in
// millisecond-or-larger steps (1e6 ns ≫ the handful of 1 ns bumps issued
// between advances) and real clocks advance far faster than stamp rates.
//
// Stamps issued by an HLC are for ordering only. They may lead the site's
// physical clock by up to the largest observed peer skew, so they must never
// be compared against the local clock for expiry decisions (lease validity,
// termination sweeps); those stay on the site's own physical clock.
package hlc

import (
	"sync"
	"time"

	"glare/internal/simclock"
)

// Clock is a hybrid logical clock bound to one site. It implements
// simclock.Clock so it can be handed to components that only need Now;
// Sleep and After delegate to the underlying physical clock.
type Clock struct {
	mu      sync.Mutex
	site    string
	phys    simclock.Clock
	wall    time.Time                // last issued/merged HLC instant
	logical uint64                   // 1 ns bumps since the physical clock last led
	peers   map[string]time.Duration // last observed offset per peer site
	bound   time.Duration            // |offset| beyond which onSkew fires
	onSkew  func(peer string, offset time.Duration)
}

// New creates a hybrid logical clock for the named site on top of its
// physical clock (which may itself be a skewed fault-injection view).
func New(site string, phys simclock.Clock) *Clock {
	return &Clock{
		site:  site,
		phys:  phys,
		peers: make(map[string]time.Duration),
	}
}

// Site returns the site name used as the final tiebreak in total orders.
func (c *Clock) Site() string { return c.site }

// Now issues the next HLC stamp: the physical clock when it leads, otherwise
// the previous stamp advanced by one nanosecond. Stamps are strictly
// monotonic per clock.
func (c *Clock) Now() time.Time {
	pt := c.phys.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if pt.After(c.wall) {
		c.wall = pt
		c.logical = 0
	} else {
		c.wall = c.wall.Add(time.Nanosecond)
		c.logical++
	}
	return c.wall
}

// Sleep delegates to the physical clock.
func (c *Clock) Sleep(d time.Duration) { c.phys.Sleep(d) }

// After delegates to the physical clock.
func (c *Clock) After(d time.Duration) <-chan time.Time { return c.phys.After(d) }

// Observe merges a stamp received from a peer site into the clock, so every
// stamp issued afterwards orders strictly after the message that carried it.
// It returns the peer's apparent clock offset (remote minus local physical
// time) and fires the skew alarm when that offset exceeds the configured
// bound. A zero remote stamp (peer predates HLC piggybacking) is ignored.
func (c *Clock) Observe(peer string, remote time.Time) time.Duration {
	if remote.IsZero() {
		return 0
	}
	pt := c.phys.Now()
	off := remote.Sub(pt)
	c.mu.Lock()
	if remote.After(c.wall) {
		c.wall = remote
		c.logical = 0
	}
	if peer != "" {
		c.peers[peer] = off
	}
	bound, alarm := c.bound, c.onSkew
	c.mu.Unlock()
	if alarm != nil && bound > 0 && (off > bound || off < -bound) {
		alarm(peer, off)
	}
	return off
}

// Lead reports how far the HLC currently runs ahead of the site's physical
// clock — the divergence inherited from faster peers. Zero when the local
// physical clock leads.
func (c *Clock) Lead() time.Duration {
	pt := c.phys.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.wall.Sub(pt); l > 0 {
		return l
	}
	return 0
}

// Logical returns the count of logical (1 ns) bumps issued since the
// physical clock last led — a direct gauge of how hard causality ordering
// is working against the physical clock.
func (c *Clock) Logical() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logical
}

// SetSkewBound arms the skew alarm: Observe calls the OnSkew callback when a
// peer's apparent offset exceeds the bound in either direction.
func (c *Clock) SetSkewBound(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bound = d
}

// OnSkew installs the alarm callback. The callback runs on the Observe
// caller's goroutine and must not call back into the clock under its own
// locks.
func (c *Clock) OnSkew(fn func(peer string, offset time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSkew = fn
}

// PeerOffsets returns a copy of the last observed offset per peer.
func (c *Clock) PeerOffsets() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.peers))
	for p, off := range c.peers {
		out[p] = off
	}
	return out
}

// MaxPeerOffset returns the peer with the largest absolute observed offset.
// The zero values mean no peer has been observed yet.
func (c *Clock) MaxPeerOffset() (peer string, offset time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p, off := range c.peers {
		a := off
		if a < 0 {
			a = -a
		}
		m := offset
		if m < 0 {
			m = -m
		}
		if a > m || peer == "" {
			peer, offset = p, off
		}
	}
	return peer, offset
}

// Less reports whether stamp (t1, site1) orders strictly before (t2, site2)
// in the grid-wide total order: HLC instant first, site name as the
// deterministic tiebreak for equal instants.
func Less(t1 time.Time, site1 string, t2 time.Time, site2 string) bool {
	if !t1.Equal(t2) {
		return t1.Before(t2)
	}
	return site1 < site2
}

// Newer reports whether stamp (t1, site1) orders strictly after (t2, site2).
func Newer(t1 time.Time, site1 string, t2 time.Time, site2 string) bool {
	return Less(t2, site2, t1, site1)
}
