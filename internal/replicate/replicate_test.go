package replicate

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

func site(name string, rank uint64) superpeer.SiteInfo {
	return superpeer.SiteInfo{Name: name, Rank: rank, BaseURL: "http://" + name}
}

func testView(names ...string) superpeer.View {
	v := superpeer.View{Epoch: 3}
	for i, n := range names {
		v.Group = append(v.Group, site(n, uint64(100-i)))
	}
	v.SuperPeer = v.Group[0]
	return v
}

func TestQuorum(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3}
	for k, want := range cases {
		if got := Quorum(k); got != want {
			t.Errorf("Quorum(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestReplicaSetDeterministicWalk(t *testing.T) {
	v := testView("a", "b", "c", "d")
	// Ranked order is a(100), b(99), c(98), d(97).
	got := ReplicaSet(v, "b", 3)
	if len(got) != 2 || got[0].Name != "c" || got[1].Name != "d" {
		t.Fatalf("ReplicaSet(b, 3) = %v", got)
	}
	// Wrap-around from the tail.
	got = ReplicaSet(v, "d", 3)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("ReplicaSet(d, 3) = %v", got)
	}
	// k capped by group size.
	got = ReplicaSet(testView("a", "b"), "a", 5)
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("ReplicaSet small group = %v", got)
	}
	// Singleton group or k<=1: no replicas.
	if got := ReplicaSet(testView("a"), "a", 3); got != nil {
		t.Fatalf("singleton group got %v", got)
	}
	if got := ReplicaSet(v, "a", 1); got != nil {
		t.Fatalf("k=1 got %v", got)
	}
	// Unknown owner: no replicas rather than a wrong guess.
	if got := ReplicaSet(v, "zz", 3); got != nil {
		t.Fatalf("unknown owner got %v", got)
	}
}

func TestHolderFreshnessAndStatus(t *testing.T) {
	h := NewHolder(nil)
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	doc := xmlutil.NewNode("Doc", "v1")
	if !h.Put("s1", "atr", "povray", doc, t0, t0.Add(time.Hour)) {
		t.Fatal("first put not applied")
	}
	// Older LUT must not overwrite.
	if h.Put("s1", "atr", "povray", xmlutil.NewNode("Doc", "old"), t0.Add(-time.Minute), t0) {
		t.Fatal("stale put applied")
	}
	// Newer LUT wins.
	if !h.Put("s1", "atr", "povray", xmlutil.NewNode("Doc", "v2"), t0.Add(time.Minute), t0) {
		t.Fatal("fresh put not applied")
	}
	h.Put("s1", "adr", "povray-dep", doc, t0.Add(2*time.Minute), t0)
	n, last, promoted := h.Status("s1")
	if n != 2 || !last.Equal(t0.Add(2*time.Minute)) || promoted {
		t.Fatalf("Status = (%d, %v, %v)", n, last, promoted)
	}
	if !h.Has("s1", "atr", "povray", t0.Add(time.Minute)) {
		t.Fatal("Has missed fresh entry")
	}
	if h.Has("s1", "atr", "povray", t0.Add(time.Hour)) {
		t.Fatal("Has claimed freshness it lacks")
	}
	if !h.Delete("s1", "adr", "povray-dep", t0.Add(3*time.Minute)) {
		t.Fatal("delete missed held entry")
	}
	if n, _, _ := h.Status("s1"); n != 1 {
		t.Fatalf("after delete Status entries = %d", n)
	}
	h.SetPromoted("s1", true)
	if !h.Promoted("s1") {
		t.Fatal("promoted flag lost")
	}
}

type recordingJournal struct {
	puts, deletes int32
}

func (j *recordingJournal) RecordPut(string, *xmlutil.Node, time.Time, time.Time) {
	atomic.AddInt32(&j.puts, 1)
}
func (j *recordingJournal) RecordDelete(string) { atomic.AddInt32(&j.deletes, 1) }

func TestHolderWritesThroughJournal(t *testing.T) {
	j := &recordingJournal{}
	h := NewHolder(func(origin, reg string) Journal {
		if origin != "s1" || reg != "atr" {
			t.Errorf("factory called with (%q, %q)", origin, reg)
		}
		return j
	})
	t0 := time.Now()
	h.Put("s1", "atr", "x", nil, t0, t0)
	h.Delete("s1", "atr", "x", t0.Add(time.Second))
	// Restore must NOT write back to the journal it replays from.
	h.Restore("s1", "atr", Entry{Key: "x", LUT: t0})
	if j.puts != 1 || j.deletes != 1 {
		t.Fatalf("journal saw %d puts, %d deletes", j.puts, j.deletes)
	}
}

// TestHolderTombstoneOrdering pins the out-of-order fan-out cases: the
// replica must converge to the origin's final state no matter which
// order a key's put and delete arrive in.
func TestHolderTombstoneOrdering(t *testing.T) {
	h := NewHolder(nil)
	t1 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	t2 := t1.Add(time.Minute)
	t3 := t2.Add(time.Minute)

	// Delete (stamped t2) arrives BEFORE the put it follows (t1): the
	// straggler put must not resurrect the deleted entry.
	h.Delete("s1", "atr", "gone", t2)
	if h.Put("s1", "atr", "gone", xmlutil.NewNode("Doc"), t1, t1.Add(time.Hour)) {
		t.Fatal("put older than tombstone resurrected a deleted entry")
	}
	if n, _, _ := h.Status("s1"); n != 0 {
		t.Fatalf("entries after straggler put = %d, want 0", n)
	}
	// A genuinely newer put (a re-registration at t3) clears the tombstone.
	if !h.Put("s1", "atr", "gone", xmlutil.NewNode("Doc", "v2"), t3, t3.Add(time.Hour)) {
		t.Fatal("re-registration newer than tombstone dropped")
	}

	// Reversed pair the other way: the held copy (t3) is newer than a
	// straggler delete stamped t2, so the delete must be ignored.
	if h.Delete("s1", "atr", "gone", t2) {
		t.Fatal("delete older than the held entry applied")
	}
	if !h.Has("s1", "atr", "gone", t3) {
		t.Fatal("newer entry lost to a straggler delete")
	}

	// Unstamped delete (zero lut, pre-stamp wire format): unconditional.
	if !h.Delete("s1", "atr", "gone", time.Time{}) {
		t.Fatal("unstamped delete missed held entry")
	}
}

// TestRestoreKeepsFreshest: replaying a WAL holding several generations
// of one key must leave the newest installed regardless of replay order.
func TestRestoreKeepsFreshest(t *testing.T) {
	h := NewHolder(nil)
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	h.Restore("s1", "atr", Entry{Key: "x", Doc: xmlutil.NewNode("Doc", "new"), LUT: t0.Add(time.Minute)})
	h.Restore("s1", "atr", Entry{Key: "x", Doc: xmlutil.NewNode("Doc", "old"), LUT: t0})
	es := h.Entries("s1", "atr")
	if len(es) != 1 || es[0].Doc.Text != "new" {
		t.Fatalf("stale WAL generation won the restore: %+v", es)
	}
}

func TestMutationRoundTrip(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 123456789, time.UTC)
	m := Mutation{Origin: "s1", Epoch: 7, Seq: 42, Reg: "atr", Key: "povray",
		Doc: xmlutil.NewNode("ActivityType", "x"), LUT: t0, Term: t0.Add(time.Hour)}
	got, err := MutationFromXML(m.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "s1" || got.Epoch != 7 || got.Seq != 42 || got.Reg != "atr" ||
		got.Key != "povray" || !got.LUT.Equal(t0) || !got.Term.Equal(t0.Add(time.Hour)) ||
		got.Doc == nil || got.Doc.Text != "x" {
		t.Fatalf("round trip mangled mutation: %+v", got)
	}
	d := Mutation{Origin: "s1", Epoch: 7, Reg: "adr", Key: "dep", Delete: true}
	got, err = MutationFromXML(d.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Delete || got.Reg != "adr" || got.Key != "dep" {
		t.Fatalf("delete round trip: %+v", got)
	}
	if _, err := MutationFromXML(xmlutil.NewNode("Replicate")); err == nil {
		t.Fatal("originless mutation accepted")
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	in := map[string][]Entry{
		"atr": {{Key: "a", Doc: xmlutil.NewNode("T"), LUT: t0, Term: t0.Add(time.Hour)}},
		"adr": {{Key: "b", LUT: t0.Add(time.Minute)}},
	}
	origin, out, err := EntriesFromXML(EntriesToXML("s2", in))
	if err != nil {
		t.Fatal(err)
	}
	if origin != "s2" || len(out["atr"]) != 1 || len(out["adr"]) != 1 {
		t.Fatalf("entries round trip: origin=%q out=%v", origin, out)
	}
	if out["atr"][0].Key != "a" || !out["atr"][0].LUT.Equal(t0) || out["atr"][0].Doc == nil {
		t.Fatalf("atr entry mangled: %+v", out["atr"][0])
	}
}

func quorumReplicator(t *testing.T, k int, call CallFunc) *Replicator {
	t.Helper()
	v := testView("self", "r1", "r2")
	return New(Config{
		Self: v.Group[0], K: k,
		View:    func() superpeer.View { return v },
		Call:    call,
		Service: "RDM",
		Timeout: 500 * time.Millisecond,
		Tel:     telemetry.New("self"),
	})
}

func TestAwaitQuorumSucceedsWithOneRemoteAck(t *testing.T) {
	var calls int32
	r := quorumReplicator(t, 3, func(ctx context.Context, addr, op string, body *xmlutil.Node) (*xmlutil.Node, error) {
		// One replica acks, the other is down: 2 of 3 copies = quorum at k=3.
		if atomic.AddInt32(&calls, 1) == 1 {
			return xmlutil.NewNode("OK"), nil
		}
		return nil, errors.New("unreachable")
	})
	r.ForwardPut("atr", "povray", xmlutil.NewNode("T"), time.Now(), time.Now().Add(time.Hour))
	if err := r.AwaitQuorum("atr", "povray"); err != nil {
		t.Fatalf("quorum should hold with one remote ack: %v", err)
	}
}

func TestAwaitQuorumFailsWhenAllReplicasDown(t *testing.T) {
	r := quorumReplicator(t, 3, func(ctx context.Context, addr, op string, body *xmlutil.Node) (*xmlutil.Node, error) {
		return nil, errors.New("unreachable")
	})
	r.ForwardPut("atr", "povray", xmlutil.NewNode("T"), time.Now(), time.Now().Add(time.Hour))
	if err := r.AwaitQuorum("atr", "povray"); err == nil {
		t.Fatal("quorum reported with zero remote acks")
	}
	if r.QuorumFailures.Value() == 0 {
		t.Fatal("quorum failure not counted")
	}
}

// TestAwaitQuorumFailsAfterDrainWithoutQuorum pins the settle/await race:
// when every send fails FAST (connection refused to down replicas), the
// fan-out drains before the caller reaches AwaitQuorum. The drained-
// without-quorum result must persist as a terminal failure — a missing
// pending entry must never be read as success, or the client would be
// acked with zero remote copies.
func TestAwaitQuorumFailsAfterDrainWithoutQuorum(t *testing.T) {
	r := quorumReplicator(t, 3, func(ctx context.Context, addr, op string, body *xmlutil.Node) (*xmlutil.Node, error) {
		return nil, errors.New("connection refused")
	})
	r.ForwardPut("atr", "povray", xmlutil.NewNode("T"), time.Now(), time.Now().Add(time.Hour))
	// The in-flight gauge hits zero only after every goroutine has run
	// settle, so this waits out the full drain before awaiting.
	for i := 0; r.Lag.Value() != 0; i++ {
		if i > 1000 {
			t.Fatal("fan-out never drained")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := r.AwaitQuorum("atr", "povray"); err == nil {
		t.Fatal("drained-without-quorum fan-out acknowledged")
	}
	// The failure is terminal, not a timeout: it must surface immediately.
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("terminal quorum failure took %v (timed out instead)", elapsed)
	}
	if r.QuorumFailures.Value() == 0 {
		t.Fatal("quorum failure not counted")
	}
	// The terminal result is consumed: a later await of the same key (a
	// new mutation would have replaced the entry anyway) is clean.
	if err := r.AwaitQuorum("atr", "povray"); err != nil {
		t.Fatalf("consumed failure resurfaced: %v", err)
	}
}

func TestAwaitQuorumNoReplicasIsTrivial(t *testing.T) {
	v := testView("self")
	r := New(Config{Self: v.Group[0], K: 3,
		View: func() superpeer.View { return v },
		Call: func(ctx context.Context, addr, op string, body *xmlutil.Node) (*xmlutil.Node, error) {
			t.Fatal("no call expected for a singleton group")
			return nil, nil
		},
		Timeout: 100 * time.Millisecond})
	r.ForwardPut("atr", "x", nil, time.Now(), time.Now())
	if err := r.AwaitQuorum("atr", "x"); err != nil {
		t.Fatalf("singleton group must self-quorum: %v", err)
	}
}

func TestApplyEpochFence(t *testing.T) {
	r := quorumReplicator(t, 3, nil)
	// "r1" is a real group member whose replica set includes "self".
	m := Mutation{Origin: "r1", Epoch: 2, Reg: "atr", Key: "x", LUT: time.Now()}
	if err := r.Apply(m); err == nil {
		t.Fatal("stale-epoch mutation accepted")
	}
	if r.StaleEpoch.Value() == 0 {
		t.Fatal("stale epoch not counted")
	}
	m.Epoch = 3
	if err := r.Apply(m); err != nil {
		t.Fatalf("current-epoch mutation rejected: %v", err)
	}
	if n, _, _ := r.Holder().Status("r1"); n != 1 {
		t.Fatalf("applied mutation not held, entries=%d", n)
	}
}

// TestApplyRejectsNonReplicaOrigin: a mutation from an origin whose
// replica set (under OUR view) does not include this site must not seed
// shadow state — promotion would later treat it as a caught-up copy.
func TestApplyRejectsNonReplicaOrigin(t *testing.T) {
	// K=2 over (self, r1, r2) ranked in that order: r1's single replica
	// is r2, so self is NOT in r1's set; r2's set wraps around to self.
	r := quorumReplicator(t, 2, nil)
	m := Mutation{Origin: "r1", Epoch: 3, Reg: "atr", Key: "x", LUT: time.Now()}
	if err := r.Apply(m); err == nil {
		t.Fatal("mutation from a non-replica origin accepted")
	}
	if r.Misrouted.Value() == 0 {
		t.Fatal("misrouted mutation not counted")
	}
	if n, _, _ := r.Holder().Status("r1"); n != 0 {
		t.Fatalf("rejected mutation still seeded %d entries", n)
	}
	// An unknown origin (not in the view at all) is equally rejected.
	if err := r.Apply(Mutation{Origin: "s9", Epoch: 3, Reg: "atr", Key: "x", LUT: time.Now()}); err == nil {
		t.Fatal("mutation from an unknown origin accepted")
	}
	m.Origin = "r2"
	if err := r.Apply(m); err != nil {
		t.Fatalf("mutation from a legitimate origin rejected: %v", err)
	}
}
