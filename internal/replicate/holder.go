package replicate

import (
	"sort"
	"sync"
	"time"

	"glare/internal/xmlutil"
)

// Entry is one replicated registry record as journaled at its origin.
type Entry struct {
	Key  string
	Doc  *xmlutil.Node
	LUT  time.Time
	Term time.Time
}

// Journal receives a replica's applied mutations for durable replay; the
// store's per-registry WAL satisfies it. Nil means memory-only.
type Journal interface {
	RecordPut(key string, doc *xmlutil.Node, lut, term time.Time)
	RecordDelete(key string)
}

// JournalFactory mints the journal a replica writes an origin's entries
// through. Implementations name the backing registry "replica:<origin>:<reg>"
// so replica state rides the site's existing WAL and snapshots without any
// new storage machinery.
type JournalFactory func(origin, reg string) Journal

type originState struct {
	// regs maps a registry name ("atr", "adr", "lease") to its entries.
	regs map[string]map[string]Entry
	// promoted marks that this site adopted the origin's entries as its
	// own after the origin was declared permanently lost.
	promoted bool
}

// Holder is a site's store of replicated entries, keyed by origin site.
// Entries applied here are shadow copies: they do not enter the site's own
// registries until a promotion adopts them.
type Holder struct {
	mu      sync.Mutex
	origins map[string]*originState
	factory JournalFactory
}

// NewHolder creates a holder; factory may be nil for memory-only sites.
func NewHolder(factory JournalFactory) *Holder {
	return &Holder{origins: map[string]*originState{}, factory: factory}
}

func (h *Holder) origin(name string) *originState {
	st := h.origins[name]
	if st == nil {
		st = &originState{regs: map[string]map[string]Entry{}}
		h.origins[name] = st
	}
	return st
}

// Put applies an origin's mutation if it is new or at least as fresh as
// the copy held (last-update time wins; equal times overwrite, so an
// origin's own re-send converges). Returns whether the entry was applied.
func (h *Holder) Put(origin, reg, key string, doc *xmlutil.Node, lut, term time.Time) bool {
	h.mu.Lock()
	st := h.origin(origin)
	entries := st.regs[reg]
	if entries == nil {
		entries = map[string]Entry{}
		st.regs[reg] = entries
	}
	if have, ok := entries[key]; ok && have.LUT.After(lut) {
		h.mu.Unlock()
		return false
	}
	entries[key] = Entry{Key: key, Doc: doc, LUT: lut, Term: term}
	factory := h.factory
	h.mu.Unlock()
	if factory != nil {
		if j := factory(origin, reg); j != nil {
			d := doc
			if d == nil {
				d = xmlutil.NewNode("Empty")
			}
			j.RecordPut(key, d, lut, term)
		}
	}
	return true
}

// Delete removes an origin's entry; returns whether one was held.
func (h *Holder) Delete(origin, reg, key string) bool {
	h.mu.Lock()
	st := h.origin(origin)
	entries := st.regs[reg]
	_, ok := entries[key]
	if ok {
		delete(entries, key)
	}
	factory := h.factory
	h.mu.Unlock()
	if ok && factory != nil {
		if j := factory(origin, reg); j != nil {
			j.RecordDelete(key)
		}
	}
	return ok
}

// Restore re-installs a journaled replica entry during crash recovery
// without writing it back to the journal it just came from.
func (h *Holder) Restore(origin, reg string, e Entry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origin(origin)
	if st.regs[reg] == nil {
		st.regs[reg] = map[string]Entry{}
	}
	st.regs[reg][e.Key] = e
}

// Entries returns an origin's held entries for one registry, key-sorted.
func (h *Holder) Entries(origin, reg string) []Entry {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	if st == nil {
		return nil
	}
	out := make([]Entry, 0, len(st.regs[reg]))
	for _, e := range st.regs[reg] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Origins lists the sites this holder replicates, sorted.
func (h *Holder) Origins() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.origins))
	for name := range h.origins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Status summarizes how caught-up this holder is for an origin: total
// entries held and the newest last-update time seen. Promotion compares
// candidates on (entries, lastLUT) — unlike a sequence counter, both
// survive a replica's own restart.
func (h *Holder) Status(origin string) (entries int, lastLUT time.Time, promoted bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	if st == nil {
		return 0, time.Time{}, false
	}
	for _, reg := range st.regs {
		for _, e := range reg {
			entries++
			if e.LUT.After(lastLUT) {
				lastLUT = e.LUT
			}
		}
	}
	return entries, lastLUT, st.promoted
}

// Has reports whether an origin's entry is held at least as fresh as lut.
func (h *Holder) Has(origin, reg, key string, lut time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	if st == nil {
		return false
	}
	e, ok := st.regs[reg][key]
	return ok && !e.LUT.Before(lut)
}

// SetPromoted flags (or clears) an origin as promoted here.
func (h *Holder) SetPromoted(origin string, v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.origin(origin).promoted = v
}

// Promoted reports whether this site adopted the origin's entries.
func (h *Holder) Promoted(origin string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	return st != nil && st.promoted
}
