package replicate

import (
	"sort"
	"sync"
	"time"

	"glare/internal/xmlutil"
)

// Entry is one replicated registry record as journaled at its origin.
type Entry struct {
	Key  string
	Doc  *xmlutil.Node
	LUT  time.Time
	Term time.Time
}

// Journal receives a replica's applied mutations for durable replay; the
// store's per-registry WAL satisfies it. Nil means memory-only.
type Journal interface {
	RecordPut(key string, doc *xmlutil.Node, lut, term time.Time)
	RecordDelete(key string)
}

// JournalFactory mints the journal a replica writes an origin's entries
// through. Implementations name the backing registry "replica:<origin>:<reg>"
// so replica state rides the site's existing WAL and snapshots without any
// new storage machinery.
type JournalFactory func(origin, reg string) Journal

type originState struct {
	// regs maps a registry name ("atr", "adr", "lease") to its entries.
	regs map[string]map[string]Entry
	// tombs records, per registry, the delete stamp of keys removed by a
	// replicated delete. Fan-out goroutines impose no arrival order, so a
	// put older than the key's tombstone is an out-of-order straggler the
	// origin already deleted — it must not resurrect the entry.
	tombs map[string]map[string]time.Time
	// promoted marks that this site adopted the origin's entries as its
	// own after the origin was declared permanently lost.
	promoted bool
}

// Holder is a site's store of replicated entries, keyed by origin site.
// Entries applied here are shadow copies: they do not enter the site's own
// registries until a promotion adopts them.
type Holder struct {
	mu      sync.Mutex
	origins map[string]*originState
	factory JournalFactory
}

// NewHolder creates a holder; factory may be nil for memory-only sites.
func NewHolder(factory JournalFactory) *Holder {
	return &Holder{origins: map[string]*originState{}, factory: factory}
}

func (h *Holder) origin(name string) *originState {
	st := h.origins[name]
	if st == nil {
		st = &originState{regs: map[string]map[string]Entry{}, tombs: map[string]map[string]time.Time{}}
		h.origins[name] = st
	}
	return st
}

// Put applies an origin's mutation if it is new or at least as fresh as
// the copy held (last-update time wins; equal times overwrite, so an
// origin's own re-send converges). A put at or before the key's tombstone
// is an out-of-order straggler of a delete and is dropped. The journal
// write happens under the mutex so the WAL records mutations in exactly
// their in-memory application order — concurrent puts of one key cannot
// journal reversed and replay the stale copy after a restart. Returns
// whether the entry was applied.
func (h *Holder) Put(origin, reg, key string, doc *xmlutil.Node, lut, term time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origin(origin)
	if tomb, ok := st.tombs[reg][key]; ok {
		if !lut.After(tomb) {
			return false
		}
		delete(st.tombs[reg], key) // the key legitimately re-registered
	}
	entries := st.regs[reg]
	if entries == nil {
		entries = map[string]Entry{}
		st.regs[reg] = entries
	}
	if have, ok := entries[key]; ok && have.LUT.After(lut) {
		return false
	}
	entries[key] = Entry{Key: key, Doc: doc, LUT: lut, Term: term}
	if h.factory != nil {
		if j := h.factory(origin, reg); j != nil {
			d := doc
			if d == nil {
				d = xmlutil.NewNode("Empty")
			}
			j.RecordPut(key, d, lut, term)
		}
	}
	return true
}

// Delete removes an origin's entry and leaves a tombstone stamped with
// the delete's LUT (the origin's clock at delete time), so a straggler
// put of an older state cannot resurrect it. A delete older than the
// held copy is itself the straggler — the key was re-registered after
// this delete was issued — and is ignored. A zero lut (no stamp on the
// wire) deletes unconditionally without a tombstone, matching the
// pre-stamp behavior. Returns whether an entry was held and removed.
func (h *Holder) Delete(origin, reg, key string, lut time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origin(origin)
	entries := st.regs[reg]
	e, ok := entries[key]
	if !lut.IsZero() {
		if ok && e.LUT.After(lut) {
			return false
		}
		if st.tombs[reg] == nil {
			st.tombs[reg] = map[string]time.Time{}
		}
		if lut.After(st.tombs[reg][key]) {
			st.tombs[reg][key] = lut
		}
	}
	if ok {
		delete(entries, key)
	}
	if ok && h.factory != nil {
		if j := h.factory(origin, reg); j != nil {
			j.RecordDelete(key)
		}
	}
	return ok
}

// Restore re-installs a journaled replica entry during crash recovery
// without writing it back to the journal it just came from. Freshest
// copy wins, so replaying a WAL that holds several generations of one
// key cannot leave the stale one installed.
func (h *Holder) Restore(origin, reg string, e Entry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origin(origin)
	if st.regs[reg] == nil {
		st.regs[reg] = map[string]Entry{}
	}
	if have, ok := st.regs[reg][e.Key]; ok && have.LUT.After(e.LUT) {
		return
	}
	st.regs[reg][e.Key] = e
}

// Entries returns an origin's held entries for one registry, key-sorted.
func (h *Holder) Entries(origin, reg string) []Entry {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	if st == nil {
		return nil
	}
	out := make([]Entry, 0, len(st.regs[reg]))
	for _, e := range st.regs[reg] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Origins lists the sites this holder replicates, sorted.
func (h *Holder) Origins() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.origins))
	for name := range h.origins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Status summarizes how caught-up this holder is for an origin: total
// entries held and the newest last-update time seen. Promotion compares
// candidates on (entries, lastLUT) — unlike a sequence counter, both
// survive a replica's own restart.
func (h *Holder) Status(origin string) (entries int, lastLUT time.Time, promoted bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	if st == nil {
		return 0, time.Time{}, false
	}
	for _, reg := range st.regs {
		for _, e := range reg {
			entries++
			if e.LUT.After(lastLUT) {
				lastLUT = e.LUT
			}
		}
	}
	return entries, lastLUT, st.promoted
}

// Has reports whether an origin's entry is held at least as fresh as lut.
func (h *Holder) Has(origin, reg, key string, lut time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	if st == nil {
		return false
	}
	e, ok := st.regs[reg][key]
	return ok && !e.LUT.Before(lut)
}

// SetPromoted flags (or clears) an origin as promoted here.
func (h *Holder) SetPromoted(origin string, v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.origin(origin).promoted = v
}

// Promoted reports whether this site adopted the origin's entries.
func (h *Holder) Promoted(origin string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.origins[origin]
	return st != nil && st.promoted
}
