// Package replicate implements quorum-acknowledged replication of
// registry mutations inside a site's peer group. Every ATR/ADR/lease
// mutation an owner journals locally is forwarded to k−1 replicas chosen
// deterministically from the epoch-fenced overlay view; a registration is
// acknowledged to the client only once a write quorum (⌈(k+1)/2⌉ copies,
// owner included) is durable. On permanent owner loss the super-peer
// promotes the most-caught-up replica, and read repair back-fills
// replicas that missed writes.
//
// The package is deliberately transport- and store-agnostic: callers
// inject a CallFunc for the wire and a JournalFactory for durability, so
// replicate imports neither internal/transport nor internal/store.
package replicate

import "glare/internal/superpeer"

// Quorum returns the write quorum for k total copies: ⌈(k+1)/2⌉. The
// owner's own durable write counts toward it, so a k=3 registration needs
// one remote ack and survives any single copy's loss; k−1 simultaneous
// permanent losses cannot take out every acknowledged copy once the
// asynchronous fan-out to the full replica set has drained.
func Quorum(k int) int {
	if k <= 1 {
		return 1
	}
	return (k + 2) / 2
}

// ReplicaSet derives the owner's replica peers from the view: rank the
// owner's group, then walk forward from the owner's position taking the
// next k−1 members, wrapping around. Every site holding the same view
// computes the same assignment — no replica-placement messages exist, the
// epoch-fenced view IS the assignment, and it changes atomically with
// view installs.
func ReplicaSet(view superpeer.View, owner string, k int) []superpeer.SiteInfo {
	if k <= 1 {
		return nil
	}
	ranked := superpeer.RankSites(view.Group)
	at := -1
	for i, s := range ranked {
		if s.Name == owner {
			at = i
			break
		}
	}
	if at < 0 {
		return nil
	}
	n := k - 1
	if max := len(ranked) - 1; n > max {
		n = max
	}
	if n <= 0 {
		return nil
	}
	out := make([]superpeer.SiteInfo, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, ranked[(at+i)%len(ranked)])
	}
	return out
}

// Contains reports whether the replica set includes the named site.
func Contains(set []superpeer.SiteInfo, name string) bool {
	for _, s := range set {
		if s.Name == name {
			return true
		}
	}
	return false
}
