package replicate

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"glare/internal/epr"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// CallFunc issues one wire operation against a service address; the rdm
// service injects its deadline-propagating client call here.
type CallFunc func(ctx context.Context, address, op string, body *xmlutil.Node) (*xmlutil.Node, error)

// DefaultTimeout bounds a quorum wait and each replica send.
const DefaultTimeout = 3 * time.Second

// Config assembles a site's replicator.
type Config struct {
	// Self identifies the owning site.
	Self superpeer.SiteInfo
	// K is the configured replication factor (total copies, owner
	// included); the effective factor is capped by the group size.
	K int
	// View returns the current epoch-fenced overlay view.
	View func() superpeer.View
	// Call issues wire operations (rides deadline propagation).
	Call CallFunc
	// Service is the wire service the replication ops are mounted on.
	Service string
	// Journals mints replica write-through journals; nil = memory-only.
	Journals JournalFactory
	// Timeout bounds quorum waits and replica sends (DefaultTimeout if 0).
	Timeout time.Duration
	// Now is the ordering-stamp source for delete tombstones — the site's
	// hybrid logical clock, so a tombstone always orders after the put it
	// deletes however skewed the site's wall clock is. Nil falls back to
	// the wall clock (pre-HLC behaviour).
	Now func() time.Time
	// Tel binds the glare_replica_* instruments; nil is a no-op.
	Tel *telemetry.Telemetry
}

// pendingWrite tracks one mutation's outstanding remote acknowledgements.
type pendingWrite struct {
	need        int // remote acks required for quorum (self already counted)
	acks        int
	outstanding int // sends still in flight
	signaled    bool
	failed      bool // drained with acks < need; kept until AwaitQuorum consumes it
	done        chan struct{}
}

// Replicator fans a site's registry mutations out to its replica set and
// gates registrations on the write quorum.
type Replicator struct {
	cfg    Config
	holder *Holder

	mu        sync.Mutex
	seq       uint64
	pending   map[string]*pendingWrite
	suspicion map[string]int
	// ordered tracks, on the super-peer, the dead sites whose promotion
	// has already been carried out — the promoted best holder is usually
	// a REMOTE site, so the local holder's flag cannot record completion.
	ordered map[string]bool

	// Instruments; exported so the rdm layer bumps promotion/repair
	// counters without replicate owning those passes.
	Writes, QuorumFailures, Applies, StaleEpoch  *telemetry.Counter
	Misrouted, Promotions, ReadRepairs, HandOffs *telemetry.Counter
	Lag                                          *telemetry.Gauge
}

// New creates a replicator; it is inert until mutations are forwarded.
func New(cfg Config) *Replicator {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	r := &Replicator{
		cfg:       cfg,
		holder:    NewHolder(cfg.Journals),
		pending:   map[string]*pendingWrite{},
		suspicion: map[string]int{},
		ordered:   map[string]bool{},

		Writes:         cfg.Tel.Counter("glare_replica_writes_total"),
		QuorumFailures: cfg.Tel.Counter("glare_replica_quorum_failures_total"),
		Applies:        cfg.Tel.Counter("glare_replica_apply_total"),
		StaleEpoch:     cfg.Tel.Counter("glare_replica_stale_epoch_rejected_total"),
		Misrouted:      cfg.Tel.Counter("glare_replica_misrouted_rejected_total"),
		Promotions:     cfg.Tel.Counter("glare_replica_promotions_total"),
		ReadRepairs:    cfg.Tel.Counter("glare_replica_read_repairs_total"),
		HandOffs:       cfg.Tel.Counter("glare_replica_handoffs_total"),
		Lag:            cfg.Tel.Gauge("glare_replica_lag_entries"),
	}
	return r
}

// Holder exposes the replica store (wire handlers and promotion use it).
func (r *Replicator) Holder() *Holder { return r.holder }

// K returns the configured replication factor.
func (r *Replicator) K() int { return r.cfg.K }

// Replicas returns this site's current replica set.
func (r *Replicator) Replicas() []superpeer.SiteInfo {
	return ReplicaSet(r.cfg.View(), r.cfg.Self.Name, r.cfg.K)
}

// ForwardPut fans one put mutation out to the replica set asynchronously.
// Called on the owner's journal path, after the local write is durable; a
// following AwaitQuorum on the same (reg, key) blocks until the write
// quorum acknowledged. The fan-out always targets the FULL replica set —
// quorum only gates the client ack — so once sends drain, every replica
// holds the entry and any k−1 simultaneous permanent losses still leave a
// copy alive.
func (r *Replicator) ForwardPut(reg, key string, doc *xmlutil.Node, lut, term time.Time) {
	view := r.cfg.View()
	replicas := ReplicaSet(view, r.cfg.Self.Name, r.cfg.K)
	if len(replicas) == 0 {
		return
	}
	r.Writes.Inc()
	m := Mutation{Origin: r.cfg.Self.Name, Epoch: view.Epoch, Reg: reg, Key: key,
		Doc: doc, LUT: lut, Term: term}
	r.send(reg, key, m, replicas)
}

// ForwardDelete fans one delete mutation out to the replica set. The
// delete is stamped with the owner's ordering clock (Config.Now) so
// replicas can order it against puts of the same key that arrive out of
// order (see Holder); an HLC stamp source guarantees the tombstone orders
// after the put it deletes even on a skewed site.
func (r *Replicator) ForwardDelete(reg, key string) {
	view := r.cfg.View()
	replicas := ReplicaSet(view, r.cfg.Self.Name, r.cfg.K)
	if len(replicas) == 0 {
		return
	}
	r.Writes.Inc()
	m := Mutation{Origin: r.cfg.Self.Name, Epoch: view.Epoch, Reg: reg, Key: key,
		Delete: true, LUT: r.cfg.Now()}
	r.send(reg, key, m, replicas)
}

func (r *Replicator) send(reg, key string, m Mutation, replicas []superpeer.SiteInfo) {
	pkey := reg + "|" + key
	r.mu.Lock()
	r.seq++
	m.Seq = r.seq
	// Effective k: the owner plus however many replicas the group yields.
	need := Quorum(len(replicas)+1) - 1
	p := &pendingWrite{need: need, outstanding: len(replicas), done: make(chan struct{})}
	if need <= 0 {
		p.signaled = true
		close(p.done)
	}
	r.pending[pkey] = p
	r.mu.Unlock()

	body := m.ToXML()
	for _, rep := range replicas {
		rep := rep
		r.Lag.Add(1)
		go func() {
			defer r.Lag.Add(-1)
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
			defer cancel()
			_, err := r.cfg.Call(ctx, rep.ServiceURL(r.cfg.Service), "Replicate", body)
			r.settle(pkey, p, err == nil)
		}()
	}
}

// settle records one replica send's outcome. A fan-out that drains WITH
// quorum forgets its pending entry (a missing entry then means success);
// one that drains WITHOUT quorum must never be confused with that, so it
// stays behind as a terminal failed result until AwaitQuorum consumes it
// or the next mutation of the same key replaces it.
func (r *Replicator) settle(pkey string, p *pendingWrite, acked bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if acked {
		p.acks++
	}
	if !p.signaled && p.acks >= p.need {
		p.signaled = true
		close(p.done)
	}
	p.outstanding--
	if p.outstanding > 0 {
		return
	}
	if p.signaled {
		if r.pending[pkey] == p {
			delete(r.pending, pkey)
		}
		return
	}
	p.failed = true
	close(p.done)
}

// AwaitQuorum blocks until the most recent mutation of (reg, key) reached
// its write quorum. Returns nil immediately when nothing is pending (no
// replicas assigned, or the fan-out already drained with quorum). On
// timeout or a fan-out that drained short of quorum the caller must fail
// the registration — the client never sees an ack the grid cannot back.
func (r *Replicator) AwaitQuorum(reg, key string) error {
	pkey := reg + "|" + key
	r.mu.Lock()
	p := r.pending[pkey]
	r.mu.Unlock()
	if p == nil {
		return nil
	}
	select {
	case <-p.done:
	case <-time.After(r.cfg.Timeout):
		// Raced the last settle? Check once more before declaring failure.
		select {
		case <-p.done:
		default:
			r.QuorumFailures.Inc()
			return fmt.Errorf("replicate: write quorum not reached for %s %q within %v (need %d remote acks)",
				reg, key, r.cfg.Timeout, p.need)
		}
	}
	r.mu.Lock()
	failed := p.failed
	if failed && r.pending[pkey] == p {
		delete(r.pending, pkey) // consume the terminal failed result
	}
	r.mu.Unlock()
	if failed {
		r.QuorumFailures.Inc()
		return fmt.Errorf("replicate: write quorum not reached for %s %q (%d of %d remote acks)",
			reg, key, p.acks, p.need)
	}
	return nil
}

// Apply installs an origin's mutation into the local holder. Both fences
// are conservative — refusing costs at most a spurious quorum failure at
// the origin, never durability: a mutation stamped with an older view
// epoch than ours is rejected outright (its sender is partitioned or
// about to be fenced), and a mutation from an origin whose replica set
// does not include this site is rejected so a misconfigured or stale
// sender cannot seed shadow state that promotion would later treat as a
// legitimate caught-up copy.
func (r *Replicator) Apply(m Mutation) error {
	v := r.cfg.View()
	if m.Epoch < v.Epoch {
		r.StaleEpoch.Inc()
		return fmt.Errorf("replicate: stale epoch %d < view epoch %d from %s", m.Epoch, v.Epoch, m.Origin)
	}
	if !Contains(ReplicaSet(v, m.Origin, r.cfg.K), r.cfg.Self.Name) {
		r.Misrouted.Inc()
		return fmt.Errorf("replicate: %s is not in %s's replica set at epoch %d", r.cfg.Self.Name, m.Origin, v.Epoch)
	}
	if m.Delete {
		r.holder.Delete(m.Origin, m.Reg, m.Key, m.LUT)
		r.Applies.Inc()
		return nil
	}
	if r.holder.Put(m.Origin, m.Reg, m.Key, m.Doc, m.LUT, m.Term) {
		r.Applies.Inc()
	}
	return nil
}

// Suspect bumps and returns a site's suspicion count (consecutive failed
// liveness probes during replica checks).
func (r *Replicator) Suspect(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suspicion[name]++
	return r.suspicion[name]
}

// ClearSuspicion resets a site's suspicion count after a successful
// probe. The site answering again also clears any recorded promotion
// order — should it die a second time, its data must be re-promoted.
func (r *Replicator) ClearSuspicion(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.suspicion, name)
	delete(r.ordered, name)
}

// MarkPromotionOrdered records that this super-peer already ordered a
// promotion for a dead site, so failure-detection passes stop re-running
// status gathering and re-sending ReplicaPromote every interval.
func (r *Replicator) MarkPromotionOrdered(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ordered[name] = true
}

// PromotionOrdered reports whether a promotion was already ordered for a
// dead site (and it has not answered a probe since).
func (r *Replicator) PromotionOrdered(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ordered[name]
}

// Mutation is one replicated registry operation on the wire. Ordering
// between mutations of the same key is decided by LUT (the owner stamps
// puts with the registry's last-update time and deletes with its clock),
// NOT by Seq: the owner's in-memory sequence restarts from zero when the
// owner restarts, while LUTs keep advancing. Seq is a per-origin tracing
// aid only. For deletes, LUT is the tombstone stamp.
type Mutation struct {
	Origin string
	Epoch  uint64
	Seq    uint64
	Delete bool
	Reg    string
	Key    string
	Doc    *xmlutil.Node
	LUT    time.Time
	Term   time.Time
}

// ToXML renders the mutation for the Replicate wire op.
func (m Mutation) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("Replicate")
	n.SetAttr("origin", m.Origin)
	n.SetAttr("epoch", strconv.FormatUint(m.Epoch, 10))
	n.SetAttr("seq", strconv.FormatUint(m.Seq, 10))
	var op *xmlutil.Node
	if m.Delete {
		op = n.Elem("Delete")
		if !m.LUT.IsZero() {
			op.SetAttr("lut", m.LUT.Format(epr.TimeLayout))
		}
	} else {
		op = n.Elem("Put")
		op.SetAttr("lut", m.LUT.Format(epr.TimeLayout))
		op.SetAttr("term", m.Term.Format(epr.TimeLayout))
		if m.Doc != nil {
			op.Add(m.Doc)
		}
	}
	op.SetAttr("reg", m.Reg)
	op.SetAttr("key", m.Key)
	return n
}

// MutationFromXML parses a Replicate wire body.
func MutationFromXML(n *xmlutil.Node) (Mutation, error) {
	if n == nil || n.Name != "Replicate" {
		return Mutation{}, fmt.Errorf("replicate: expected <Replicate>")
	}
	m := Mutation{Origin: n.AttrOr("origin", "")}
	if m.Origin == "" {
		return Mutation{}, fmt.Errorf("replicate: mutation without origin")
	}
	m.Epoch, _ = strconv.ParseUint(n.AttrOr("epoch", "0"), 10, 64)
	m.Seq, _ = strconv.ParseUint(n.AttrOr("seq", "0"), 10, 64)
	if op := n.First("Put"); op != nil {
		m.Reg = op.AttrOr("reg", "")
		m.Key = op.AttrOr("key", "")
		m.LUT, _ = time.Parse(epr.TimeLayout, op.AttrOr("lut", ""))
		m.Term, _ = time.Parse(epr.TimeLayout, op.AttrOr("term", ""))
		if len(op.Children) > 0 {
			m.Doc = op.Children[0]
		}
	} else if op := n.First("Delete"); op != nil {
		m.Delete = true
		m.Reg = op.AttrOr("reg", "")
		m.Key = op.AttrOr("key", "")
		m.LUT, _ = time.Parse(epr.TimeLayout, op.AttrOr("lut", ""))
	} else {
		return Mutation{}, fmt.Errorf("replicate: mutation without Put/Delete")
	}
	if m.Reg == "" || m.Key == "" {
		return Mutation{}, fmt.Errorf("replicate: mutation without reg/key")
	}
	return m, nil
}

// EntriesToXML renders a fetch/hand-off payload: every held registry of
// one origin.
func EntriesToXML(origin string, regs map[string][]Entry) *xmlutil.Node {
	n := xmlutil.NewNode("Entries")
	n.SetAttr("origin", origin)
	for reg, entries := range regs {
		for _, e := range entries {
			en := n.Elem("Entry")
			en.SetAttr("reg", reg)
			en.SetAttr("key", e.Key)
			en.SetAttr("lut", e.LUT.Format(epr.TimeLayout))
			en.SetAttr("term", e.Term.Format(epr.TimeLayout))
			if e.Doc != nil {
				en.Add(e.Doc)
			}
		}
	}
	return n
}

// EntriesFromXML parses a fetch/hand-off payload back into per-registry
// entry lists.
func EntriesFromXML(n *xmlutil.Node) (origin string, regs map[string][]Entry, err error) {
	if n == nil || n.Name != "Entries" {
		return "", nil, fmt.Errorf("replicate: expected <Entries>")
	}
	origin = n.AttrOr("origin", "")
	regs = map[string][]Entry{}
	for _, en := range n.All("Entry") {
		reg := en.AttrOr("reg", "")
		e := Entry{Key: en.AttrOr("key", "")}
		if reg == "" || e.Key == "" {
			return "", nil, fmt.Errorf("replicate: entry without reg/key")
		}
		e.LUT, _ = time.Parse(epr.TimeLayout, en.AttrOr("lut", ""))
		e.Term, _ = time.Parse(epr.TimeLayout, en.AttrOr("term", ""))
		if len(en.Children) > 0 {
			e.Doc = en.Children[0]
		}
		regs[reg] = append(regs[reg], e)
	}
	return origin, regs, nil
}
