package replicate

import (
	"testing"
	"time"

	"glare/internal/xmlutil"
)

// Equal-stamp conflict rules, pinned. Under hybrid logical clocks a
// replica can legitimately receive a put and a delete carrying the same
// stamp only through re-delivery of the same origin event (the origin's
// HLC never hands out one stamp twice for distinct events), so the rules
// below make re-delivery idempotent and keep deletes sticky:
//
//   - a put against an equal-stamp tombstone loses (delete wins ties),
//   - a put against an equal-stamp entry overwrites (re-delivery installs
//     the same state; last write is as good as the first),
//   - a delete against an equal-stamp entry removes it (delete wins ties).
func TestEqualStampDeleteBeatsPut(t *testing.T) {
	h := NewHolder(nil)
	stamp := time.Unix(100, 0).UTC()

	if !h.Put("origin", "atr", "k", xmlutil.NewNode("Doc"), stamp, time.Time{}) {
		t.Fatal("initial put refused")
	}
	if !h.Delete("origin", "atr", "k", stamp) {
		t.Fatal("equal-stamp delete refused; delete must win ties")
	}
	// The tombstone now carries stamp; a re-delivered put at the same
	// stamp must NOT resurrect the entry.
	if h.Put("origin", "atr", "k", xmlutil.NewNode("Doc"), stamp, time.Time{}) {
		t.Fatal("equal-stamp put resurrected a tombstoned key")
	}
	if got := h.Entries("origin", "atr"); len(got) != 0 {
		t.Fatalf("entries after equal-stamp put vs tombstone = %d, want 0", len(got))
	}
	// Only a strictly newer put (a real re-registration, which the
	// origin's HLC guarantees orders after its own delete) clears it.
	if !h.Put("origin", "atr", "k", xmlutil.NewNode("Doc"), stamp.Add(time.Nanosecond), time.Time{}) {
		t.Fatal("strictly newer put refused after tombstone")
	}
}

func TestEqualStampPutOverwrites(t *testing.T) {
	h := NewHolder(nil)
	stamp := time.Unix(100, 0).UTC()

	first := xmlutil.NewNode("Doc")
	first.SetAttr("gen", "1")
	second := xmlutil.NewNode("Doc")
	second.SetAttr("gen", "2")

	if !h.Put("origin", "adr", "k", first, stamp, time.Time{}) {
		t.Fatal("initial put refused")
	}
	if !h.Put("origin", "adr", "k", second, stamp, time.Time{}) {
		t.Fatal("equal-stamp put refused; re-delivery must stay idempotent")
	}
	got := h.Entries("origin", "adr")
	if len(got) != 1 || got[0].Doc.AttrOr("gen", "") != "2" {
		t.Fatalf("equal-stamp put did not overwrite: %+v", got)
	}
}

func TestEqualStampRestoreKeepsLatestReplay(t *testing.T) {
	h := NewHolder(nil)
	stamp := time.Unix(100, 0).UTC()

	a := xmlutil.NewNode("Doc")
	a.SetAttr("gen", "a")
	b := xmlutil.NewNode("Doc")
	b.SetAttr("gen", "b")
	h.Restore("origin", "atr", Entry{Key: "k", Doc: a, LUT: stamp})
	h.Restore("origin", "atr", Entry{Key: "k", Doc: b, LUT: stamp})
	got := h.Entries("origin", "atr")
	if len(got) != 1 || got[0].Doc.AttrOr("gen", "") != "b" {
		t.Fatalf("equal-stamp restore did not keep the later replay: %+v", got)
	}
}
