package replicate

import (
	"testing"
	"time"

	"glare/internal/hlc"
	"glare/internal/simclock"
	"glare/internal/xmlutil"
)

// Regression harness: what breaks when newest-wins ordering is fed raw
// wall-clock stamps instead of HLC stamps. The scenario is an NTP step:
// a site registers an entry, its clock is then corrected 10 minutes
// BACKWARD, and the client deletes the entry. Both operations were acked
// in that causal order, so the delete must win on every replica.
//
// With raw wall stamps the delete carries an OLDER stamp than the put it
// follows; the replica's freshness rule classifies it as a straggler and
// keeps the entry — an acknowledged delete is silently lost and the
// registration is undead. This test pins that the failure is real (the
// invariant genuinely depends on the HLC) and that the HLC stamp source
// fixes it: its monotonic wall component never runs backward, so the
// delete orders after the put no matter what the physical clock did.
func TestRawWallStampsLoseAckedDeleteAfterClockStep(t *testing.T) {
	doc := xmlutil.NewNode("Doc")

	// A: raw wall-clock stamps — the reverted-to-wall-clocks behaviour.
	{
		base := simclock.NewVirtual(time.Unix(1_000_000, 0))
		clock := simclock.NewSkewed(base)
		h := NewHolder(nil)

		h.Put("origin", "atr", "k", doc, clock.Now(), time.Time{})
		clock.SetOffset(-10 * time.Minute) // NTP steps the clock back
		if h.Delete("origin", "atr", "k", clock.Now()) {
			t.Fatal("raw wall stamps ordered the delete after the put across a backward step; " +
				"the HLC is redundant — investigate before trusting this harness")
		}
		if got := h.Entries("origin", "atr"); len(got) != 1 {
			t.Fatalf("expected the undead entry to demonstrate the failure, held=%d", len(got))
		}
	}

	// B: HLC stamps — the shipped behaviour. Same clock step, same ops.
	{
		base := simclock.NewVirtual(time.Unix(1_000_000, 0))
		clock := simclock.NewSkewed(base)
		c := hlc.New("origin", clock)
		h := NewHolder(nil)

		h.Put("origin", "atr", "k", doc, c.Now(), time.Time{})
		clock.SetOffset(-10 * time.Minute)
		if !h.Delete("origin", "atr", "k", c.Now()) {
			t.Fatal("HLC-stamped delete refused after a backward clock step")
		}
		if got := h.Entries("origin", "atr"); len(got) != 0 {
			t.Fatalf("entry survived an HLC-stamped delete, held=%d", len(got))
		}
		// And the tombstone holds: a re-delivered copy of the original put
		// cannot resurrect the entry, because the delete's HLC stamp
		// orders after every stamp the origin handed out before it.
	}
}

// Same shape for updates: after a backward clock step, a site's NEWER
// version of an entry carries an older wall stamp, so raw-wall-clock
// newest-wins installs the stale version forever. HLC stamps keep every
// later write ordered after every earlier one from the same site.
func TestRawWallStampsStrandNewerVersionAfterClockStep(t *testing.T) {
	v1 := xmlutil.NewNode("Doc")
	v1.SetAttr("gen", "1")
	v2 := xmlutil.NewNode("Doc")
	v2.SetAttr("gen", "2")

	generationAfterStep := func(stamp func() time.Time, step func()) string {
		h := NewHolder(nil)
		h.Put("origin", "adr", "k", v1, stamp(), time.Time{})
		step()
		h.Put("origin", "adr", "k", v2, stamp(), time.Time{})
		return h.Entries("origin", "adr")[0].Doc.AttrOr("gen", "")
	}

	base1 := simclock.NewVirtual(time.Unix(1_000_000, 0))
	raw := simclock.NewSkewed(base1)
	if got := generationAfterStep(raw.Now, func() { raw.SetOffset(-10 * time.Minute) }); got != "1" {
		t.Fatalf("raw wall stamps installed gen %s after a backward step; expected the stale gen 1 failure", got)
	}

	base2 := simclock.NewVirtual(time.Unix(1_000_000, 0))
	stepped := simclock.NewSkewed(base2)
	c := hlc.New("origin", stepped)
	if got := generationAfterStep(c.Now, func() { stepped.SetOffset(-10 * time.Minute) }); got != "2" {
		t.Fatalf("HLC stamps installed gen %s after a backward step, want the newer gen 2", got)
	}
}
