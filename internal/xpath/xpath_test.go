package xpath

import (
	"fmt"
	"testing"

	"glare/internal/xmlutil"
)

var doc = xmlutil.MustParse(`
<ServiceGroup name="atr">
  <Entry key="JPOVray">
    <ActivityTypeEntry name="JPOVray" type="Imaging">
      <BaseType>POVray</BaseType>
      <Dependency>Java,Ant</Dependency>
      <Installation mode="on-demand">
        <Constraints><os>Linux</os><arch>32bit</arch></Constraints>
      </Installation>
    </ActivityTypeEntry>
  </Entry>
  <Entry key="POVray">
    <ActivityTypeEntry name="POVray" type="Imaging" abstract="true">
      <BaseType>Imaging</BaseType>
    </ActivityTypeEntry>
  </Entry>
  <Entry key="Wien2k">
    <ActivityTypeEntry name="Wien2k" type="Physics">
      <Installation mode="manual"/>
    </ActivityTypeEntry>
  </Entry>
</ServiceGroup>`)

func sel(t *testing.T, src string) Result {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return e.Select(doc)
}

func TestAbsoluteChildPath(t *testing.T) {
	r := sel(t, "/ServiceGroup/Entry")
	if len(r.Nodes) != 3 {
		t.Fatalf("entries = %d, want 3", len(r.Nodes))
	}
}

func TestDescendantAxis(t *testing.T) {
	r := sel(t, "//ActivityTypeEntry")
	if len(r.Nodes) != 3 {
		t.Fatalf("types = %d, want 3", len(r.Nodes))
	}
	r = sel(t, "//BaseType")
	if len(r.Nodes) != 2 {
		t.Fatalf("base types = %d, want 2", len(r.Nodes))
	}
}

func TestAttrEqualsPredicate(t *testing.T) {
	r := sel(t, `//ActivityTypeEntry[@name='JPOVray']`)
	if len(r.Nodes) != 1 {
		t.Fatalf("matches = %d, want 1", len(r.Nodes))
	}
	if got := r.Nodes[0].AttrOr("type", ""); got != "Imaging" {
		t.Fatalf("type attr = %q", got)
	}
}

func TestAttrExistsPredicate(t *testing.T) {
	r := sel(t, `//ActivityTypeEntry[@abstract]`)
	if len(r.Nodes) != 1 || r.Nodes[0].AttrOr("name", "") != "POVray" {
		t.Fatalf("abstract match wrong: %v", r.Nodes)
	}
}

func TestChildTextPredicate(t *testing.T) {
	r := sel(t, `//ActivityTypeEntry[BaseType='POVray']`)
	if len(r.Nodes) != 1 || r.Nodes[0].AttrOr("name", "") != "JPOVray" {
		t.Fatalf("child-text match wrong")
	}
}

func TestChildExistsPredicate(t *testing.T) {
	r := sel(t, `//ActivityTypeEntry[Installation]`)
	if len(r.Nodes) != 2 {
		t.Fatalf("Installation holders = %d, want 2", len(r.Nodes))
	}
}

func TestNestedPathWithPredicate(t *testing.T) {
	r := sel(t, `/ServiceGroup/Entry[@key='JPOVray']/ActivityTypeEntry/Installation[@mode='on-demand']`)
	if len(r.Nodes) != 1 {
		t.Fatalf("nested = %d, want 1", len(r.Nodes))
	}
}

func TestAttributeSelection(t *testing.T) {
	r := sel(t, `//ActivityTypeEntry/@name`)
	if len(r.Strings) != 3 {
		t.Fatalf("names = %v", r.Strings)
	}
	want := map[string]bool{"JPOVray": true, "POVray": true, "Wien2k": true}
	for _, s := range r.Strings {
		if !want[s] {
			t.Fatalf("unexpected name %q", s)
		}
	}
}

func TestPositionPredicate(t *testing.T) {
	r := sel(t, `/ServiceGroup/Entry[2]`)
	if len(r.Nodes) != 1 || r.Nodes[0].AttrOr("key", "") != "POVray" {
		t.Fatalf("position: got %v", r.Nodes)
	}
	if !sel(t, `/ServiceGroup/Entry[9]`).Empty() {
		t.Fatal("out-of-range position must be empty")
	}
}

func TestTextPredicate(t *testing.T) {
	r := sel(t, `//os[text()='Linux']`)
	if len(r.Nodes) != 1 {
		t.Fatalf("text() = %d, want 1", len(r.Nodes))
	}
}

func TestContains(t *testing.T) {
	r := sel(t, `//ActivityTypeEntry[contains(Dependency,'Java')]`)
	if len(r.Nodes) != 1 || r.Nodes[0].AttrOr("name", "") != "JPOVray" {
		t.Fatal("contains(child) failed")
	}
	r = sel(t, `//ActivityTypeEntry[contains(@name,'POV')]`)
	if len(r.Nodes) != 2 {
		t.Fatalf("contains(@attr) = %d, want 2", len(r.Nodes))
	}
}

func TestRelativeExpressionSearchesEverywhere(t *testing.T) {
	r := sel(t, `Entry[@key='Wien2k']`)
	if len(r.Nodes) != 1 {
		t.Fatalf("relative = %d, want 1", len(r.Nodes))
	}
}

func TestWildcard(t *testing.T) {
	r := sel(t, `/ServiceGroup/*`)
	if len(r.Nodes) != 3 {
		t.Fatalf("wildcard = %d, want 3", len(r.Nodes))
	}
	r = sel(t, `//Constraints/*`)
	if len(r.Nodes) != 2 {
		t.Fatalf("constraints children = %d, want 2", len(r.Nodes))
	}
}

func TestParentAxis(t *testing.T) {
	r := sel(t, `//BaseType[text()='POVray']/../@name`)
	if len(r.Strings) != 1 || r.Strings[0] != "JPOVray" {
		t.Fatalf("parent axis: %v", r.Strings)
	}
}

func TestSelectFirst(t *testing.T) {
	e := MustCompile(`//Entry`)
	if n := e.SelectFirst(doc); n == nil || n.AttrOr("key", "") != "JPOVray" {
		t.Fatal("SelectFirst wrong")
	}
	if n := MustCompile(`//Nope`).SelectFirst(doc); n != nil {
		t.Fatal("SelectFirst on no match must be nil")
	}
}

func TestNilRoot(t *testing.T) {
	if !MustCompile("//x").Select(nil).Empty() {
		t.Fatal("nil root must select nothing")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"//",
		"/a[",
		"/a[@]",
		"/a[text()]",
		"/a[b='unterminated]",
		"/a]b",
		"/@x/y", // attribute step must be terminal
	}
	for _, src := range bad {
		e, err := Compile(src)
		if err == nil {
			// "/@x/y" compiles but must fail at evaluation time.
			if src == "/@x/y" {
				if !e.Select(doc).Empty() {
					t.Errorf("%q: expected empty result", src)
				}
				continue
			}
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestDedupAcrossDescendant(t *testing.T) {
	d := xmlutil.MustParse(`<r><a><a><b/></a></a></r>`)
	r := MustCompile(`//a//b`).Select(d)
	if len(r.Nodes) != 1 {
		t.Fatalf("dedup: %d nodes, want 1", len(r.Nodes))
	}
}

// The engine must scale linearly (not explode) over wide documents; this
// also guards against accidental O(n^2) regressions via a budget check in
// benchmarks, here we only assert correctness on a large doc.
func TestLargeDocument(t *testing.T) {
	root := xmlutil.NewNode("ServiceGroup")
	for i := 0; i < 500; i++ {
		e := root.Elem("Entry")
		e.SetAttr("key", fmt.Sprintf("t%03d", i))
		te := e.Elem("ActivityTypeEntry")
		te.SetAttr("name", fmt.Sprintf("t%03d", i))
	}
	r := MustCompile(`/ServiceGroup/Entry[@key='t123']/ActivityTypeEntry`).Select(root)
	if len(r.Nodes) != 1 {
		t.Fatalf("large doc lookup = %d", len(r.Nodes))
	}
}
