package xpath

import (
	"fmt"
	"testing"
	"testing/quick"

	"glare/internal/xmlutil"
)

// buildTree constructs a deterministic tree from a compact spec: each byte
// selects a tag and whether to descend or ascend.
func buildTree(spec []byte) *xmlutil.Node {
	tags := []string{"a", "b", "c"}
	root := xmlutil.NewNode("root")
	cur := root
	parents := map[*xmlutil.Node]*xmlutil.Node{}
	id := 0
	for _, s := range spec {
		switch s % 4 {
		case 0, 1: // add child, stay
			c := cur.Elem(tags[int(s/4)%len(tags)])
			c.SetAttr("id", fmt.Sprintf("n%d", id))
			id++
		case 2: // add child, descend
			c := cur.Elem(tags[int(s/4)%len(tags)])
			c.SetAttr("id", fmt.Sprintf("n%d", id))
			id++
			parents[c] = cur
			cur = c
		case 3: // ascend
			if p := parents[cur]; p != nil {
				cur = p
			}
		}
	}
	return root
}

// naiveDescendants is the reference evaluator for //tag.
func naiveDescendants(root *xmlutil.Node, tag string) []*xmlutil.Node {
	var out []*xmlutil.Node
	var walk func(n *xmlutil.Node)
	walk = func(n *xmlutil.Node) {
		for _, c := range n.Children {
			if c.Name == tag {
				out = append(out, c)
			}
			walk(c)
		}
	}
	walk(root)
	return out
}

// Property: //tag matches exactly the reference descendant scan, in
// document order.
func TestQuickDescendantMatchesReference(t *testing.T) {
	f := func(spec []byte) bool {
		if len(spec) > 64 {
			spec = spec[:64]
		}
		root := buildTree(spec)
		for _, tag := range []string{"a", "b", "c"} {
			got := MustCompile("//" + tag).Select(root).Nodes
			want := naiveDescendants(root, tag)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: an attribute-equality predicate on a unique id matches exactly
// one node, and it is the right one.
func TestQuickAttrPredicateFindsUniqueNode(t *testing.T) {
	f := func(spec []byte, pick uint8) bool {
		if len(spec) > 64 {
			spec = spec[:64]
		}
		root := buildTree(spec)
		all := root.Descendants("*")
		if len(all) == 0 {
			return true
		}
		target := all[int(pick)%len(all)]
		id, _ := target.Attr("id")
		expr := MustCompile(fmt.Sprintf(`//%s[@id='%s']`, target.Name, id))
		got := expr.Select(root).Nodes
		return len(got) == 1 && got[0] == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: //*/@id returns exactly one value per element, all distinct.
func TestQuickAttributeProjection(t *testing.T) {
	f := func(spec []byte) bool {
		if len(spec) > 64 {
			spec = spec[:64]
		}
		root := buildTree(spec)
		vals := MustCompile(`//*/@id`).Select(root).Strings
		all := root.Descendants("*")
		if len(vals) != len(all) {
			return false
		}
		seen := map[string]bool{}
		for _, v := range vals {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
