// Package xpath implements the XPath subset used by GLARE registries and
// the WS-MDS Index baseline to query resource property documents.
//
// Supported grammar (a practical subset of XPath 1.0):
//
//	path     := '/'? step ( '/' step | '//' step )*  |  '//' step ( ... )*
//	step     := ( name | '*' | '..' | '.' | '@' name ) predicate*
//	predicate:= '[' expr ']'
//	expr     := '@' name ( '=' literal )?      attribute existence / equality
//	          | name ( '=' literal )?          child existence / text equality
//	          | 'text()' '=' literal           own text equality
//	          | 'contains(' target ',' literal ')'
//	          | integer                        1-based position
//	literal  := '\'' ... '\'' | '"' ... '"'
//
// The engine is deliberately a linear scan over the document: the paper's
// Index Service queries aggregated documents exactly this way, which is why
// its throughput degrades with the number of registered resources (Fig. 11)
// while GLARE's hash-table named lookup stays flat.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"glare/internal/xmlutil"
)

// Expr is a compiled XPath expression.
type Expr struct {
	src      string
	absolute bool
	steps    []step
}

type axis int

const (
	axisChild axis = iota
	axisDescendant
	axisSelf
	axisParent
	axisAttribute
)

type step struct {
	axis  axis
	name  string // element or attribute name; "*" is a wildcard
	preds []pred
}

type predKind int

const (
	predAttrExists predKind = iota
	predAttrEquals
	predChildExists
	predChildEquals
	predTextEquals
	predPosition
	predContains
)

type pred struct {
	kind   predKind
	name   string // attribute or child name ("" for text())
	value  string
	pos    int
	onAttr bool // for contains(): target is an attribute
}

// Compile parses an XPath expression.
func Compile(src string) (*Expr, error) {
	p := &parser{src: src, rest: strings.TrimSpace(src)}
	e, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("xpath: %q: %w", src, err)
	}
	return e, nil
}

// MustCompile is Compile that panics on error; for expression literals.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the original expression source.
func (e *Expr) String() string { return e.src }

// Result holds matched nodes and, for attribute-final paths, strings.
type Result struct {
	Nodes   []*xmlutil.Node
	Strings []string
}

// Empty reports whether the result matched nothing.
func (r Result) Empty() bool { return len(r.Nodes) == 0 && len(r.Strings) == 0 }

// Select evaluates the expression against a document root. The root element
// itself is addressable as the first step of an absolute path, matching how
// aggregated property documents are queried in GT4.
func (e *Expr) Select(root *xmlutil.Node) Result {
	if root == nil {
		return Result{}
	}
	// Current node-set. For absolute paths we start "above" the root with a
	// virtual document node whose only child is root.
	doc := &xmlutil.Node{Name: "#doc", Children: []*xmlutil.Node{root}}
	cur := []*xmlutil.Node{doc}
	parents := map[*xmlutil.Node]*xmlutil.Node{root: doc}
	registerParents(root, parents)

	var attrOut []string
	for i, st := range e.steps {
		if st.axis == axisAttribute {
			for _, n := range cur {
				if st.name == "*" {
					for _, a := range n.Attrs {
						attrOut = append(attrOut, a.Value)
					}
				} else if v, ok := n.Attr(st.name); ok {
					attrOut = append(attrOut, v)
				}
			}
			if i != len(e.steps)-1 {
				return Result{} // attributes are terminal
			}
			return Result{Strings: attrOut}
		}
		var next []*xmlutil.Node
		for _, n := range cur {
			next = append(next, st.apply(n, parents)...)
		}
		next = dedup(next)
		cur = applyPositional(next, st.preds)
		if len(cur) == 0 {
			return Result{}
		}
	}
	// Drop the virtual document node if it survived (e.g. expression ".").
	out := cur[:0:0]
	for _, n := range cur {
		if n.Name != "#doc" {
			out = append(out, n)
		}
	}
	return Result{Nodes: out}
}

// SelectFirst returns the first matched node or nil.
func (e *Expr) SelectFirst(root *xmlutil.Node) *xmlutil.Node {
	r := e.Select(root)
	if len(r.Nodes) == 0 {
		return nil
	}
	return r.Nodes[0]
}

func registerParents(n *xmlutil.Node, parents map[*xmlutil.Node]*xmlutil.Node) {
	for _, c := range n.Children {
		parents[c] = n
		registerParents(c, parents)
	}
}

func (st step) apply(n *xmlutil.Node, parents map[*xmlutil.Node]*xmlutil.Node) []*xmlutil.Node {
	var cand []*xmlutil.Node
	switch st.axis {
	case axisChild:
		for _, c := range n.Children {
			if st.name == "*" || c.Name == st.name {
				cand = append(cand, c)
			}
		}
	case axisDescendant:
		n.Walk(func(d *xmlutil.Node) bool {
			if d != n && (st.name == "*" || d.Name == st.name) {
				cand = append(cand, d)
			}
			return true
		})
	case axisSelf:
		cand = append(cand, n)
	case axisParent:
		if p := parents[n]; p != nil && p.Name != "#doc" {
			cand = append(cand, p)
		}
	}
	var out []*xmlutil.Node
	for _, c := range cand {
		if matchesNonPositional(c, st.preds) {
			out = append(out, c)
		}
	}
	return out
}

func matchesNonPositional(n *xmlutil.Node, preds []pred) bool {
	for _, p := range preds {
		if p.kind == predPosition {
			continue
		}
		if !p.match(n) {
			return false
		}
	}
	return true
}

func applyPositional(ns []*xmlutil.Node, preds []pred) []*xmlutil.Node {
	for _, p := range preds {
		if p.kind != predPosition {
			continue
		}
		if p.pos < 1 || p.pos > len(ns) {
			return nil
		}
		ns = []*xmlutil.Node{ns[p.pos-1]}
	}
	return ns
}

func (p pred) match(n *xmlutil.Node) bool {
	switch p.kind {
	case predAttrExists:
		_, ok := n.Attr(p.name)
		return ok
	case predAttrEquals:
		v, ok := n.Attr(p.name)
		return ok && v == p.value
	case predChildExists:
		return n.First(p.name) != nil
	case predChildEquals:
		for _, c := range n.All(p.name) {
			if strings.TrimSpace(c.Text) == p.value {
				return true
			}
		}
		return false
	case predTextEquals:
		return strings.TrimSpace(n.Text) == p.value
	case predContains:
		var target string
		if p.onAttr {
			target, _ = n.Attr(p.name)
		} else if p.name == "" {
			target = n.Text
		} else if c := n.First(p.name); c != nil {
			target = c.Text
		}
		return strings.Contains(target, p.value)
	}
	return false
}

func dedup(ns []*xmlutil.Node) []*xmlutil.Node {
	seen := make(map[*xmlutil.Node]bool, len(ns))
	out := ns[:0]
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// ---------------------------------------------------------------- parser --

type parser struct {
	src  string
	rest string
}

func (p *parser) parse() (*Expr, error) {
	e := &Expr{src: p.src}
	if p.rest == "" {
		return nil, fmt.Errorf("empty expression")
	}
	nextAxis := axisChild
	if strings.HasPrefix(p.rest, "//") {
		e.absolute = true
		nextAxis = axisDescendant
		p.rest = p.rest[2:]
	} else if strings.HasPrefix(p.rest, "/") {
		e.absolute = true
		p.rest = p.rest[1:]
	} else {
		// Relative expressions search from anywhere under the root, which is
		// how service-group entries are queried; treat as descendant.
		nextAxis = axisDescendant
	}
	for {
		st, err := p.parseStep(nextAxis)
		if err != nil {
			return nil, err
		}
		e.steps = append(e.steps, st)
		if p.rest == "" {
			break
		}
		if strings.HasPrefix(p.rest, "//") {
			nextAxis = axisDescendant
			p.rest = p.rest[2:]
		} else if strings.HasPrefix(p.rest, "/") {
			nextAxis = axisChild
			p.rest = p.rest[1:]
		} else {
			return nil, fmt.Errorf("unexpected %q", p.rest)
		}
	}
	return e, nil
}

func (p *parser) parseStep(ax axis) (step, error) {
	st := step{axis: ax}
	switch {
	case strings.HasPrefix(p.rest, ".."):
		st.axis = axisParent
		st.name = "*"
		p.rest = p.rest[2:]
	case strings.HasPrefix(p.rest, "."):
		st.axis = axisSelf
		st.name = "*"
		p.rest = p.rest[1:]
	case strings.HasPrefix(p.rest, "@"):
		st.axis = axisAttribute
		p.rest = p.rest[1:]
		st.name = p.takeName()
		if st.name == "" {
			return st, fmt.Errorf("missing attribute name")
		}
	default:
		st.name = p.takeName()
		if st.name == "" {
			return st, fmt.Errorf("missing step name at %q", p.rest)
		}
	}
	for strings.HasPrefix(p.rest, "[") {
		pr, err := p.parsePred()
		if err != nil {
			return st, err
		}
		st.preds = append(st.preds, pr)
	}
	return st, nil
}

func (p *parser) takeName() string {
	if strings.HasPrefix(p.rest, "*") {
		p.rest = p.rest[1:]
		return "*"
	}
	i := 0
	for i < len(p.rest) {
		c := p.rest[i]
		if c == '/' || c == '[' || c == ']' || c == '=' || c == ',' || c == ')' || c == ' ' {
			break
		}
		i++
	}
	name := p.rest[:i]
	p.rest = p.rest[i:]
	return name
}

func (p *parser) parsePred() (pred, error) {
	p.rest = p.rest[1:] // consume '['
	p.skipSpace()
	var pr pred
	switch {
	case strings.HasPrefix(p.rest, "contains("):
		p.rest = p.rest[len("contains("):]
		p.skipSpace()
		pr.kind = predContains
		if strings.HasPrefix(p.rest, "@") {
			pr.onAttr = true
			p.rest = p.rest[1:]
			pr.name = p.takeName()
		} else if strings.HasPrefix(p.rest, "text()") {
			p.rest = p.rest[len("text()"):]
		} else {
			pr.name = p.takeName()
		}
		p.skipSpace()
		if !strings.HasPrefix(p.rest, ",") {
			return pr, fmt.Errorf("contains: expected ','")
		}
		p.rest = p.rest[1:]
		p.skipSpace()
		v, err := p.takeLiteral()
		if err != nil {
			return pr, err
		}
		pr.value = v
		p.skipSpace()
		if !strings.HasPrefix(p.rest, ")") {
			return pr, fmt.Errorf("contains: expected ')'")
		}
		p.rest = p.rest[1:]
	case strings.HasPrefix(p.rest, "@"):
		p.rest = p.rest[1:]
		pr.name = p.takeName()
		if pr.name == "" {
			return pr, fmt.Errorf("missing attribute name in predicate")
		}
		p.skipSpace()
		if strings.HasPrefix(p.rest, "=") {
			p.rest = p.rest[1:]
			p.skipSpace()
			v, err := p.takeLiteral()
			if err != nil {
				return pr, err
			}
			pr.kind = predAttrEquals
			pr.value = v
		} else {
			pr.kind = predAttrExists
		}
	case strings.HasPrefix(p.rest, "text()"):
		p.rest = p.rest[len("text()"):]
		p.skipSpace()
		if !strings.HasPrefix(p.rest, "=") {
			return pr, fmt.Errorf("text(): expected '='")
		}
		p.rest = p.rest[1:]
		p.skipSpace()
		v, err := p.takeLiteral()
		if err != nil {
			return pr, err
		}
		pr.kind = predTextEquals
		pr.value = v
	default:
		// position or child name
		if n, rest, ok := takeInt(p.rest); ok {
			pr.kind = predPosition
			pr.pos = n
			p.rest = rest
		} else {
			pr.name = p.takeName()
			if pr.name == "" {
				return pr, fmt.Errorf("bad predicate at %q", p.rest)
			}
			p.skipSpace()
			if strings.HasPrefix(p.rest, "=") {
				p.rest = p.rest[1:]
				p.skipSpace()
				v, err := p.takeLiteral()
				if err != nil {
					return pr, err
				}
				pr.kind = predChildEquals
				pr.value = v
			} else {
				pr.kind = predChildExists
			}
		}
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest, "]") {
		return pr, fmt.Errorf("unterminated predicate at %q", p.rest)
	}
	p.rest = p.rest[1:]
	return pr, nil
}

func (p *parser) skipSpace() { p.rest = strings.TrimLeft(p.rest, " \t") }

func (p *parser) takeLiteral() (string, error) {
	if p.rest == "" {
		return "", fmt.Errorf("missing literal")
	}
	q := p.rest[0]
	if q != '\'' && q != '"' {
		return "", fmt.Errorf("expected quoted literal at %q", p.rest)
	}
	end := strings.IndexByte(p.rest[1:], q)
	if end < 0 {
		return "", fmt.Errorf("unterminated literal")
	}
	v := p.rest[1 : 1+end]
	p.rest = p.rest[2+end:]
	return v, nil
}

func takeInt(s string) (int, string, bool) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, s, false
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, s, false
	}
	return n, s[i:], true
}
