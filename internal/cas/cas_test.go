package cas

import (
	"fmt"
	"testing"
	"time"

	"glare/internal/simclock"
)

func blob(n int, size int64) Entry {
	k := Key{Algo: "md5", Sum: fmt.Sprintf("%032x", n)}
	return Entry{Key: k, Sum: k.Sum, Size: size, MD5: k.Sum, Artifact: fmt.Sprintf("a%d", n)}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New(simclock.NewVirtual(time.Time{}), 100)
	e := blob(1, 40)
	if ev, ok := s.Put(e); !ok || len(ev) != 0 {
		t.Fatalf("Put = %v, %v", ev, ok)
	}
	got, ok := s.Get(e.Key)
	if !ok || got.Artifact != "a1" || got.Size != 40 || got.Added.IsZero() {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get(Key{Algo: "md5", Sum: "missing"}); ok {
		t.Fatal("Get of absent key succeeded")
	}
	entries, bytes, budget, ingests := s.Stats()
	if entries != 1 || bytes != 40 || budget != 100 || ingests != 1 {
		t.Fatalf("Stats = %d, %d, %d, %d", entries, bytes, budget, ingests)
	}
}

func TestLRUEvictionRespectsBudget(t *testing.T) {
	s := New(simclock.NewVirtual(time.Time{}), 100)
	s.Put(blob(1, 40))
	s.Put(blob(2, 40))
	// Touch 1 so 2 is the LRU victim.
	s.Get(blob(1, 0).Key)
	ev, ok := s.Put(blob(3, 40))
	if !ok || len(ev) != 1 || ev[0].Artifact != "a2" {
		t.Fatalf("eviction = %+v, %v (want a2 evicted)", ev, ok)
	}
	if _, ok := s.Get(blob(2, 0).Key); ok {
		t.Fatal("evicted entry still readable")
	}
	if _, ok := s.Get(blob(1, 0).Key); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, bytes, _, _ := s.Stats(); bytes > 100 {
		t.Fatalf("bytes %d over budget", bytes)
	}
}

func TestOversizeBlobRejected(t *testing.T) {
	s := New(simclock.NewVirtual(time.Time{}), 100)
	s.Put(blob(1, 60))
	if ev, ok := s.Put(blob(2, 101)); ok || len(ev) != 0 {
		t.Fatalf("oversize Put = %v, %v; want rejected without evictions", ev, ok)
	}
	if _, ok := s.Get(blob(1, 0).Key); !ok {
		t.Fatal("oversize reject evicted an existing entry")
	}
}

func TestReplaceSameKeyAdjustsBytes(t *testing.T) {
	s := New(simclock.NewVirtual(time.Time{}), 100)
	s.Put(blob(1, 40))
	e := blob(1, 70)
	if _, ok := s.Put(e); !ok {
		t.Fatal("replace Put failed")
	}
	entries, bytes, _, ingests := s.Stats()
	if entries != 1 || bytes != 70 {
		t.Fatalf("after replace: entries %d bytes %d", entries, bytes)
	}
	if ingests != 1 {
		t.Fatalf("replace counted as new ingest: %d", ingests)
	}
}

func TestCorruptDetectableAndDeletable(t *testing.T) {
	s := New(simclock.NewVirtual(time.Time{}), 100)
	e := blob(1, 10)
	s.Put(e)
	if !s.Corrupt(e.Key) {
		t.Fatal("Corrupt of held key failed")
	}
	if s.Corrupt(Key{Algo: "md5", Sum: "none"}) {
		t.Fatal("Corrupt of absent key succeeded")
	}
	got, _ := s.Get(e.Key)
	if got.Sum == got.Key.Sum {
		t.Fatal("corrupted entry still verifies")
	}
	if _, ok := s.Delete(e.Key); !ok {
		t.Fatal("Delete failed")
	}
	if _, bytes, _, _ := s.Stats(); bytes != 0 {
		t.Fatalf("bytes %d after delete", bytes)
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	k := Key{Algo: "sha256", Sum: "abc123"}
	got, ok := ParseKey(k.String())
	if !ok || got != k {
		t.Fatalf("ParseKey(%q) = %+v, %v", k.String(), got, ok)
	}
	if _, ok := ParseKey("nosum"); ok {
		t.Fatal("ParseKey accepted keyless string")
	}
	if !(Key{}).IsZero() || k.IsZero() {
		t.Fatal("IsZero wrong")
	}
}
