// Package cas is a site-local content-addressed store of verified
// installation artifacts, keyed by the checksum the deploy-file declared
// for the download step (md5 or sha256). Entries are byte-accounted
// against a budget and evicted least-recently-used; the grid layer above
// (internal/rdm) advertises holdings through the registry anti-entropy
// sync so peers can fetch from the nearest holder instead of origin.
//
// The store holds metadata only — the simulated grid never moves real
// bytes (DESIGN §3) — so an entry carries the artifact's size, its
// filesystem fingerprint for materialization, and the actual content
// checksum observed at ingest. A healthy entry's Sum equals its Key.Sum;
// Corrupt flips the stored sum to model bit rot, and every consumer
// (local hit, peer fetch) re-verifies before trusting the copy.
package cas

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"time"

	"glare/internal/simclock"
)

// DefaultBudget bounds a site's CAS when no explicit budget is configured:
// enough for several copies of the full software universe without letting
// the cache grow unboundedly.
const DefaultBudget = 256 << 20

// Key addresses a blob by its declared checksum.
type Key struct {
	Algo string // "md5" or "sha256"
	Sum  string // lowercase hex digest
}

// String renders the key in "algo:sum" form, the shape the store WAL and
// wire ops use.
func (k Key) String() string { return k.Algo + ":" + k.Sum }

// IsZero reports whether the key is empty.
func (k Key) IsZero() bool { return k.Algo == "" || k.Sum == "" }

// ParseKey inverts Key.String.
func ParseKey(s string) (Key, bool) {
	algo, sum, ok := strings.Cut(s, ":")
	if !ok || algo == "" || sum == "" {
		return Key{}, false
	}
	return Key{Algo: algo, Sum: sum}, true
}

// Entry is one held blob.
type Entry struct {
	Key Key
	// Sum is the actual content checksum observed when the blob was
	// verified on ingest. It equals Key.Sum for a healthy copy; Corrupt
	// makes them diverge so readers can detect the rot.
	Sum string
	// Size is the archive size in bytes; it drives budget accounting and
	// transfer cost when a peer fetches this blob.
	Size int64
	// MD5 and Artifact are the filesystem fingerprint and artifact name
	// needed to materialize the blob into a site FS on a cache hit.
	MD5      string
	Artifact string
	// URL is the origin the blob was first fetched from.
	URL string
	// Added is when the blob was ingested (virtual time).
	Added time.Time
}

// Store is the site-local CAS. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	clock   simclock.Clock
	budget  int64
	bytes   int64
	byKey   map[Key]*list.Element
	lru     *list.List // front = most recently used; values are *Entry
	ingests uint64
}

// New builds a store with the given byte budget; budget <= 0 selects
// DefaultBudget.
func New(clock simclock.Clock, budget int64) *Store {
	if clock == nil {
		clock = simclock.Real
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Store{
		clock:  clock,
		budget: budget,
		byKey:  map[Key]*list.Element{},
		lru:    list.New(),
	}
}

// Put ingests a verified blob and returns the entries evicted to fit it
// under the budget. A blob larger than the whole budget is not stored
// (evicting everything for one unpinnable blob would thrash the cache);
// Put reports it as neither stored nor evicting.
func (s *Store) Put(e Entry) (evicted []Entry, stored bool) {
	if e.Key.IsZero() || e.Size > s.budget {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Added.IsZero() {
		e.Added = s.clock.Now()
	}
	if el, ok := s.byKey[e.Key]; ok {
		old := el.Value.(*Entry)
		s.bytes += e.Size - old.Size
		*old = e
		s.lru.MoveToFront(el)
	} else {
		s.byKey[e.Key] = s.lru.PushFront(&e)
		s.bytes += e.Size
		s.ingests++
	}
	for s.bytes > s.budget {
		el := s.lru.Back()
		if el == nil {
			break
		}
		evicted = append(evicted, s.removeLocked(el))
	}
	return evicted, true
}

// Get returns the entry for key and bumps its recency.
func (s *Store) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		return Entry{}, false
	}
	s.lru.MoveToFront(el)
	return *el.Value.(*Entry), true
}

// Peek returns the entry for key without touching recency (status views).
func (s *Store) Peek(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		return Entry{}, false
	}
	return *el.Value.(*Entry), true
}

// Delete drops the entry for key, reporting whether it was held.
func (s *Store) Delete(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		return Entry{}, false
	}
	return s.removeLocked(el), true
}

// Corrupt flips the stored content sum of the entry for key, simulating
// undetected bit rot in the local copy. Readers verifying Sum against
// Key.Sum will reject the copy. Returns false if the key is not held.
func (s *Store) Corrupt(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		return false
	}
	e := el.Value.(*Entry)
	e.Sum = "rot-" + e.Sum
	return true
}

// Holdings lists every held entry, most recently used first.
func (s *Store) Holdings() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*Entry))
	}
	return out
}

// SortedHoldings lists every held entry ordered by key, for stable status
// output.
func (s *Store) SortedHoldings() []Entry {
	out := s.Holdings()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Stats reports entry count, held bytes, budget, and lifetime ingests.
func (s *Store) Stats() (entries int, bytes, budget int64, ingests uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len(), s.bytes, s.budget, s.ingests
}

func (s *Store) removeLocked(el *list.Element) Entry {
	e := el.Value.(*Entry)
	s.lru.Remove(el)
	delete(s.byKey, e.Key)
	s.bytes -= e.Size
	return *e
}
