// Package gsi provides the transport-level security substrate: a small
// certificate authority that issues host certificates and builds TLS
// configurations for GLARE services and clients.
//
// The paper's experiments compare every service "with and without transport
// level security enabled (i.e. with http and https)" and observe throughput
// dropping by roughly half. Real TLS over loopback reproduces that cost, so
// this package mints an in-memory CA and per-host certificates with Go's
// stdlib crypto.
package gsi

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"
)

// Authority is an in-memory certificate authority ("the VO's CA").
type Authority struct {
	mu     sync.Mutex
	cert   *x509.Certificate
	key    *ecdsa.PrivateKey
	pool   *x509.CertPool
	serial int64
}

// NewAuthority creates a CA valid for ten years.
func NewAuthority(name string) (*Authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"GLARE VO"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("gsi: create CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("gsi: parse CA cert: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &Authority{cert: cert, key: key, pool: pool, serial: 1}, nil
}

// IssueHost issues a certificate for the given host (DNS name or IP).
func (a *Authority) IssueHost(host string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("gsi: generate host key: %w", err)
	}
	a.mu.Lock()
	a.serial++
	serial := a.serial
	a.mu.Unlock()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: host, Organization: []string{"GLARE VO"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	if ip := net.ParseIP(host); ip != nil {
		tmpl.IPAddresses = []net.IP{ip}
	} else {
		tmpl.DNSNames = []string{host}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("gsi: create host cert: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// ServerConfig returns a TLS config for a service listening as host.
func (a *Authority) ServerConfig(host string) (*tls.Config, error) {
	cert, err := a.IssueHost(host)
	if err != nil {
		return nil, err
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}, nil
}

// ClientConfig returns a TLS config trusting this CA.
func (a *Authority) ClientConfig() *tls.Config {
	return &tls.Config{RootCAs: a.pool, MinVersion: tls.VersionTLS12}
}
