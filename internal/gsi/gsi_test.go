package gsi

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
)

func TestAuthorityIssuesVerifiableCerts(t *testing.T) {
	ca, err := NewAuthority("vo-ca")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueHost("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	pool := ca.ClientConfig().RootCAs
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: pool}); err != nil {
		t.Fatalf("issued cert does not chain to CA: %v", err)
	}
	if len(leaf.IPAddresses) != 1 || !leaf.IPAddresses[0].Equal(net.ParseIP("127.0.0.1")) {
		t.Fatalf("IP SAN = %v", leaf.IPAddresses)
	}
}

func TestDNSNameCert(t *testing.T) {
	ca, _ := NewAuthority("vo-ca")
	cert, err := ca.IssueHost("grid1.example")
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := x509.ParseCertificate(cert.Certificate[0])
	if len(leaf.DNSNames) != 1 || leaf.DNSNames[0] != "grid1.example" {
		t.Fatalf("DNS SAN = %v", leaf.DNSNames)
	}
}

func TestSerialsAreUnique(t *testing.T) {
	ca, _ := NewAuthority("vo-ca")
	a, _ := ca.IssueHost("a")
	b, _ := ca.IssueHost("b")
	la, _ := x509.ParseCertificate(a.Certificate[0])
	lb, _ := x509.ParseCertificate(b.Certificate[0])
	if la.SerialNumber.Cmp(lb.SerialNumber) == 0 {
		t.Fatal("serials must differ")
	}
}

func TestEndToEndTLSHandshake(t *testing.T) {
	ca, _ := NewAuthority("vo-ca")
	serverConf, err := ca.ServerConfig("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", serverConf)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := c.Read(buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf)
		done <- err
	}()
	conf := ca.ClientConfig()
	conf.ServerName = "127.0.0.1"
	c, err := tls.Dial("tcp", ln.Addr().String(), conf)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
