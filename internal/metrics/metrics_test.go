package metrics

import (
	"math"
	"sync"
	"testing"
	"time"

	"glare/internal/telemetry"
)

func TestThroughput(t *testing.T) {
	m := NewThroughput()
	m.Add(10)
	m.Add(5)
	if m.Ops() != 15 {
		t.Fatalf("ops = %d", m.Ops())
	}
	time.Sleep(10 * time.Millisecond)
	if m.PerSecond() <= 0 {
		t.Fatal("rate must be positive")
	}
}

func TestLoadTrackerQueue(t *testing.T) {
	lt := NewLoadTracker()
	lt.Enter()
	lt.Enter()
	if lt.Queue() != 2 {
		t.Fatalf("queue = %d", lt.Queue())
	}
	lt.Exit()
	if lt.Queue() != 1 {
		t.Fatalf("queue = %d", lt.Queue())
	}
	lt.Exit()
	lt.Exit() // extra exits clamp at zero
	if lt.Queue() != 0 {
		t.Fatalf("queue = %d", lt.Queue())
	}
}

func TestLoadTrackerClampedExitsObservable(t *testing.T) {
	lt := NewLoadTracker()
	lt.Enter()
	lt.Exit()
	lt.Exit() // no matching Enter: clamped, not applied
	if lt.Queue() != 0 {
		t.Fatalf("queue = %d", lt.Queue())
	}
	if lt.ClampedExits() != 1 {
		t.Fatalf("clamped = %d", lt.ClampedExits())
	}
	// The clamp must not corrupt later accounting.
	lt.Enter()
	if lt.Queue() != 1 {
		t.Fatalf("queue after re-enter = %d", lt.Queue())
	}
	if lt.ClampedExits() != 1 {
		t.Fatalf("clamped after re-enter = %d", lt.ClampedExits())
	}
}

func TestLoadTrackerOnSharedGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("glare_rdm_run_queue")
	lt := NewLoadTrackerOn(g, time.Second, time.Minute)
	lt.Enter()
	lt.Enter()
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, queue depth must be visible on the registry", g.Value())
	}
	lt.Exit()
	if lt.Queue() != 1 || g.Value() != 1 {
		t.Fatalf("queue = %d gauge = %d", lt.Queue(), g.Value())
	}
}

func TestThroughputOnSharedCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("glare_ops_total")
	m := NewThroughputOn(c)
	m.Add(3)
	if c.Value() != 3 || m.Ops() != 3 {
		t.Fatalf("counter = %d ops = %d", c.Value(), m.Ops())
	}
}

func TestLoadConvergesToSteadyQueue(t *testing.T) {
	lt := NewLoadTrackerWith(time.Second, time.Minute)
	const depth = 8
	for i := 0; i < depth; i++ {
		lt.Enter()
	}
	// After many windows, load approaches queue depth, like Unix loadavg.
	for i := 0; i < 600; i++ {
		lt.Sample()
	}
	if got := lt.Load(); math.Abs(got-depth) > 0.1 {
		t.Fatalf("load = %v, want ~%d", got, depth)
	}
	if lt.Samples() != 600 {
		t.Fatalf("samples = %d", lt.Samples())
	}
	// Queue drains: load decays toward zero.
	for i := 0; i < depth; i++ {
		lt.Exit()
	}
	for i := 0; i < 600; i++ {
		lt.Sample()
	}
	if got := lt.Load(); got > 0.1 {
		t.Fatalf("decayed load = %v", got)
	}
}

func TestLoadMonotoneInQueueDepth(t *testing.T) {
	loadFor := func(depth int) float64 {
		lt := NewLoadTrackerWith(time.Second, time.Minute)
		for i := 0; i < depth; i++ {
			lt.Enter()
		}
		for i := 0; i < 60; i++ {
			lt.Sample()
		}
		return lt.Load()
	}
	prev := -1.0
	for _, d := range []int{1, 4, 16, 64} {
		l := loadFor(d)
		if l <= prev {
			t.Fatalf("load not monotone: depth %d -> %v (prev %v)", d, l, prev)
		}
		prev = l
	}
}

func TestLoadTrackerStart(t *testing.T) {
	lt := NewLoadTrackerWith(5*time.Millisecond, 50*time.Millisecond)
	lt.Enter()
	stop := make(chan struct{})
	lt.Start(stop)
	deadline := time.After(2 * time.Second)
	for lt.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("sampler never ran")
		case <-time.After(2 * time.Millisecond):
		}
	}
	close(stop)
}

func TestLoadTrackerConcurrency(t *testing.T) {
	lt := NewLoadTracker()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				lt.Enter()
				lt.Sample()
				lt.Exit()
			}
		}()
	}
	wg.Wait()
	if lt.Queue() != 0 {
		t.Fatalf("queue = %d after balanced enter/exit", lt.Queue())
	}
}

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	if r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("zero recorder wrong")
	}
	r.Observe(10 * time.Millisecond)
	r.Observe(30 * time.Millisecond)
	if r.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", r.Mean())
	}
	lo, hi := r.MinMax()
	if lo != 10*time.Millisecond || hi != 30*time.Millisecond {
		t.Fatalf("minmax = %v %v", lo, hi)
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d", r.Count())
	}
}
