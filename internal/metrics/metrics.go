// Package metrics implements the measurement instruments the experiments
// need: a throughput meter (Figs. 10/11) and a Unix-style 1-minute load
// average over a service's run queue (Fig. 13).
//
// The paper measures "the load average ... as the load on the Activity
// Type Registry during the last minute (using Unix uptime command). The
// load average is therefore a measure of the number of jobs waiting in the
// run queue." Here the run queue is the set of requests currently being
// handled by a service, sampled and exponentially decayed exactly like the
// kernel's loadavg.
//
// The instruments are thin wrappers over the telemetry package's counters,
// gauges and histograms, so experiment measurements and the live /metrics
// exposition share one implementation. The *On constructors bind a tracker
// to an instrument from a site registry; the plain constructors keep the
// historical standalone behavior with private instruments.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"glare/internal/telemetry"
)

// Throughput measures completed operations per second over a window.
type Throughput struct {
	start time.Time
	ops   *telemetry.Counter
}

// NewThroughput starts a meter backed by a private counter.
func NewThroughput() *Throughput { return NewThroughputOn(nil) }

// NewThroughputOn starts a meter recording into c, so the same completions
// feed both the experiment figure and the site's /metrics exposition. A
// nil c falls back to a private counter.
func NewThroughputOn(c *telemetry.Counter) *Throughput {
	if c == nil {
		c = new(telemetry.Counter)
	}
	return &Throughput{start: time.Now(), ops: c}
}

// Add records n completed operations.
func (t *Throughput) Add(n int) { t.ops.Add(uint64(n)) }

// Ops returns the operation count.
func (t *Throughput) Ops() uint64 { return t.ops.Value() }

// PerSecond returns operations per wall-clock second since start.
func (t *Throughput) PerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops.Value()) / el
}

// LoadTracker computes a 1-minute exponentially-decayed load average of a
// run queue. Callers bracket request handling with Enter/Exit; a sampler
// goroutine (or explicit Sample calls, for deterministic tests) folds the
// instantaneous queue length into the average.
type LoadTracker struct {
	queue   *telemetry.Gauge
	clamped atomic.Uint64

	mu      sync.Mutex
	load    float64
	period  time.Duration
	window  time.Duration
	decay   float64
	samples uint64
}

// NewLoadTracker creates a tracker with the kernel's classic parameters:
// 5-second sampling against a 1-minute window.
func NewLoadTracker() *LoadTracker {
	return NewLoadTrackerWith(5*time.Second, time.Minute)
}

// NewLoadTrackerWith creates a tracker with explicit sampling period and
// averaging window.
func NewLoadTrackerWith(period, window time.Duration) *LoadTracker {
	return NewLoadTrackerOn(nil, period, window)
}

// NewLoadTrackerOn creates a tracker whose run queue is the given gauge,
// so the instantaneous queue depth shows up on /metrics while the tracker
// derives the decayed average from it. A nil gauge falls back to a private
// one.
func NewLoadTrackerOn(g *telemetry.Gauge, period, window time.Duration) *LoadTracker {
	if g == nil {
		g = new(telemetry.Gauge)
	}
	t := &LoadTracker{queue: g, period: period, window: window}
	t.decay = math.Exp(-period.Seconds() / window.Seconds())
	return t
}

// Enter marks a request entering the run queue.
func (t *LoadTracker) Enter() { t.queue.Inc() }

// Exit marks a request leaving the run queue.
//
// Exits without a matching Enter are clamped: the queue never goes
// negative, mirroring a kernel run queue, which cannot hold a negative
// number of jobs. Each clamped call is counted and reported by
// ClampedExits, so a double-Exit bug in an instrumented service is
// observable instead of silently dragging the load average below reality.
func (t *LoadTracker) Exit() {
	if !t.queue.DecFloor() {
		t.clamped.Add(1)
	}
}

// ClampedExits returns how many Exit calls arrived with an empty run queue
// and were clamped rather than applied.
func (t *LoadTracker) ClampedExits() uint64 { return t.clamped.Load() }

// Queue returns the instantaneous run-queue length.
func (t *LoadTracker) Queue() int { return int(t.queue.Value()) }

// Sample folds the current queue length into the load average, exactly as
// the kernel does: load = load*decay + queue*(1-decay).
func (t *LoadTracker) Sample() {
	q := float64(t.queue.Value())
	t.mu.Lock()
	defer t.mu.Unlock()
	t.load = t.load*t.decay + q*(1-t.decay)
	t.samples++
}

// Load returns the current 1-minute load average.
func (t *LoadTracker) Load() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.load
}

// Samples returns how many samples have been folded in.
func (t *LoadTracker) Samples() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.samples
}

// Start launches the periodic sampler until stop is closed.
func (t *LoadTracker) Start(stop <-chan struct{}) {
	go func() {
		tick := time.NewTicker(t.period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Sample()
			}
		}
	}()
}

// LatencyRecorder accumulates response-time observations (Fig. 12). The
// zero value is ready to use; it wraps a telemetry histogram, adding the
// experiment-friendly Mean/MinMax surface.
type LatencyRecorder struct {
	h telemetry.Histogram
}

// Observe records one response time.
func (l *LatencyRecorder) Observe(d time.Duration) { l.h.Observe(d) }

// Mean returns the average response time.
func (l *LatencyRecorder) Mean() time.Duration { return l.h.Mean() }

// Count returns the number of observations.
func (l *LatencyRecorder) Count() int { return int(l.h.Count()) }

// MinMax returns the extreme observations.
func (l *LatencyRecorder) MinMax() (time.Duration, time.Duration) {
	return l.h.Min(), l.h.Max()
}

// Quantile reports an approximate latency quantile (0 < q <= 1) from the
// underlying histogram buckets.
func (l *LatencyRecorder) Quantile(q float64) time.Duration { return l.h.Quantile(q) }
