// Package metrics implements the measurement instruments the experiments
// need: a throughput meter (Figs. 10/11) and a Unix-style 1-minute load
// average over a service's run queue (Fig. 13).
//
// The paper measures "the load average ... as the load on the Activity
// Type Registry during the last minute (using Unix uptime command). The
// load average is therefore a measure of the number of jobs waiting in the
// run queue." Here the run queue is the set of requests currently being
// handled by a service, sampled and exponentially decayed exactly like the
// kernel's loadavg.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Throughput measures completed operations per second over a window.
type Throughput struct {
	start time.Time
	ops   atomic.Uint64
}

// NewThroughput starts a meter.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Add records n completed operations.
func (t *Throughput) Add(n int) { t.ops.Add(uint64(n)) }

// Ops returns the operation count.
func (t *Throughput) Ops() uint64 { return t.ops.Load() }

// PerSecond returns operations per wall-clock second since start.
func (t *Throughput) PerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops.Load()) / el
}

// LoadTracker computes a 1-minute exponentially-decayed load average of a
// run queue. Callers bracket request handling with Enter/Exit; a sampler
// goroutine (or explicit Sample calls, for deterministic tests) folds the
// instantaneous queue length into the average.
type LoadTracker struct {
	mu      sync.Mutex
	queue   int64
	load    float64
	period  time.Duration
	window  time.Duration
	decay   float64
	samples uint64
}

// NewLoadTracker creates a tracker with the kernel's classic parameters:
// 5-second sampling against a 1-minute window.
func NewLoadTracker() *LoadTracker {
	return NewLoadTrackerWith(5*time.Second, time.Minute)
}

// NewLoadTrackerWith creates a tracker with explicit sampling period and
// averaging window.
func NewLoadTrackerWith(period, window time.Duration) *LoadTracker {
	t := &LoadTracker{period: period, window: window}
	t.decay = math.Exp(-period.Seconds() / window.Seconds())
	return t
}

// Enter marks a request entering the run queue.
func (t *LoadTracker) Enter() {
	t.mu.Lock()
	t.queue++
	t.mu.Unlock()
}

// Exit marks a request leaving the run queue.
func (t *LoadTracker) Exit() {
	t.mu.Lock()
	if t.queue > 0 {
		t.queue--
	}
	t.mu.Unlock()
}

// Queue returns the instantaneous run-queue length.
func (t *LoadTracker) Queue() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.queue)
}

// Sample folds the current queue length into the load average, exactly as
// the kernel does: load = load*decay + queue*(1-decay).
func (t *LoadTracker) Sample() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.load = t.load*t.decay + float64(t.queue)*(1-t.decay)
	t.samples++
}

// Load returns the current 1-minute load average.
func (t *LoadTracker) Load() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.load
}

// Samples returns how many samples have been folded in.
func (t *LoadTracker) Samples() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.samples
}

// Start launches the periodic sampler until stop is closed.
func (t *LoadTracker) Start(stop <-chan struct{}) {
	go func() {
		tick := time.NewTicker(t.period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Sample()
			}
		}
	}()
}

// LatencyRecorder accumulates response-time observations (Fig. 12).
type LatencyRecorder struct {
	mu    sync.Mutex
	total time.Duration
	count int
	max   time.Duration
	min   time.Duration
}

// Observe records one response time.
func (l *LatencyRecorder) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total += d
	l.count++
	if d > l.max {
		l.max = d
	}
	if l.min == 0 || d < l.min {
		l.min = d
	}
}

// Mean returns the average response time.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.total / time.Duration(l.count)
}

// Count returns the number of observations.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// MinMax returns the extreme observations.
func (l *LatencyRecorder) MinMax() (time.Duration, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.min, l.max
}
