package gridarm

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

func attrs(name string, mhz, mem, procs, uptime int) site.Attributes {
	return site.Attributes{
		Name: name, ProcessorMHz: mhz, MemoryMB: mem, Processors: procs,
		UptimeHours: uptime, Platform: "Intel", OS: "Linux", Arch: "32bit",
	}
}

func TestRequestSatisfies(t *testing.T) {
	a := attrs("s", 1500, 2048, 8, 100)
	cases := []struct {
		req  Request
		want bool
	}{
		{Request{}, true},
		{Request{OS: "Linux", MinProcessorMHz: 1000}, true},
		{Request{OS: "Solaris"}, false},
		{Request{MinProcessorMHz: 2000}, false},
		{Request{MinMemoryMB: 4096}, false},
		{Request{MinProcessors: 16}, false},
		{Request{MinProcessors: 8, MinMemoryMB: 2048, MinProcessorMHz: 1500}, true},
	}
	for i, c := range cases {
		if got := c.req.Satisfies(a); got != c.want {
			t.Errorf("case %d: Satisfies = %v", i, got)
		}
	}
}

func TestRankOrdersByCapacity(t *testing.T) {
	sites := []site.Attributes{
		attrs("small", 1000, 1024, 2, 100),
		attrs("big", 2000, 8192, 16, 100),
		attrs("mid", 1500, 4096, 8, 100),
		attrs("wrong-os", 3000, 16384, 32, 100),
	}
	sites[3].OS = "Solaris"
	ranked := Rank(sites, Request{OS: "Linux"})
	if len(ranked) != 3 {
		t.Fatalf("candidates = %d", len(ranked))
	}
	if ranked[0].Attrs.Name != "big" || ranked[1].Attrs.Name != "mid" || ranked[2].Attrs.Name != "small" {
		t.Fatalf("order = %v %v %v", ranked[0].Attrs.Name, ranked[1].Attrs.Name, ranked[2].Attrs.Name)
	}
	// Deterministic tie-break by name.
	tie := []site.Attributes{attrs("b", 1000, 1024, 2, 100), attrs("a", 1000, 1024, 2, 100)}
	r := Rank(tie, Request{})
	if r[0].Attrs.Name != "a" {
		t.Fatal("tie-break not by name")
	}
}

func fixture() (*Reservations, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	s := NewReservations(v)
	s.RegisterSite(attrs("agrid1", 1500, 2048, 8, 100))
	return s, v
}

func TestReserveWithinCapacity(t *testing.T) {
	s, v := fixture()
	now := v.Now()
	r1, err := s.Reserve("agrid1", "c1", 4, now, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve("agrid1", "c2", 4, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Capacity is now exhausted for the window.
	if _, err := s.Reserve("agrid1", "c3", 1, now, now.Add(time.Hour)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v", err)
	}
	// A disjoint window is free.
	if _, err := s.Reserve("agrid1", "c3", 8, now.Add(2*time.Hour), now.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Releasing frees the slot.
	if err := s.Release(r1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve("agrid1", "c3", 4, now, now.Add(time.Hour)); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if err := s.Release(999); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestReserveValidation(t *testing.T) {
	s, v := fixture()
	now := v.Now()
	if _, err := s.Reserve("agrid1", "c", 0, now, now.Add(time.Hour)); err == nil {
		t.Fatal("zero processors accepted")
	}
	if _, err := s.Reserve("agrid1", "c", 1, now, now); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := s.Reserve("ghost", "c", 1, now, now.Add(time.Hour)); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestCommittedAndExpire(t *testing.T) {
	s, v := fixture()
	now := v.Now()
	s.Reserve("agrid1", "c", 3, now, now.Add(time.Hour))
	s.Reserve("agrid1", "c", 2, now.Add(30*time.Minute), now.Add(90*time.Minute))
	if got := s.Committed("agrid1", now.Add(45*time.Minute)); got != 5 {
		t.Fatalf("committed = %d", got)
	}
	if got := s.Committed("agrid1", now.Add(80*time.Minute)); got != 2 {
		t.Fatalf("committed = %d", got)
	}
	v.Advance(2 * time.Hour)
	if n := s.Expire(); n != 2 {
		t.Fatalf("expired = %d", n)
	}
	if s.Active() != 0 {
		t.Fatal("reservations survived expiry")
	}
}

// Property: whatever sequence of reservations succeeds, the committed
// processors at any sampled instant never exceed the site capacity.
func TestQuickCapacityNeverExceeded(t *testing.T) {
	type res struct {
		Procs    uint8
		FromMin  uint8
		LenMin   uint8
		SampleAt uint8
	}
	f := func(ops []res) bool {
		v := simclock.NewVirtual(time.Time{})
		s := NewReservations(v)
		const cap = 8
		s.RegisterSite(attrs("s", 1000, 1024, cap, 1))
		base := v.Now()
		for _, o := range ops {
			from := base.Add(time.Duration(o.FromMin%120) * time.Minute)
			to := from.Add(time.Duration(o.LenMin%60+1) * time.Minute)
			_, _ = s.Reserve("s", "c", int(o.Procs%5)+1, from, to)
			at := base.Add(time.Duration(o.SampleAt%180) * time.Minute)
			if s.Committed("s", at) > cap {
				return false
			}
		}
		// Exhaustive sweep over minute boundaries.
		for m := 0; m < 181; m++ {
			if s.Committed("s", base.Add(time.Duration(m)*time.Minute)) > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
