// Package gridarm implements the companion resource-management system the
// paper pairs GLARE with: "GLARE's dynamic registration, automatic
// deployment and on-demand provision of the Grid activities, in
// combination with GridARM's resource brokerage and advanced reservation,
// provide a powerful base for the Grid workflow management system" (§1,
// citing [36]).
//
// Two services are provided:
//
//   - Broker: ranks candidate Grid sites against a physical-resource
//     request (platform/OS/arch constraints plus capacity minima). The
//     GLARE deployment manager consults it when choosing an installation
//     target.
//   - Reservations: site-level advance reservations — time windows over a
//     site's processor capacity. GLARE's activity leasing (internal/lease)
//     reserves one deployment; GridARM reserves the machine room under it.
package gridarm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

// Request describes the physical resources an application needs.
type Request struct {
	// Platform/OS/Arch are hard constraints (empty = any).
	Platform string
	OS       string
	Arch     string
	// Minimum capacities (0 = no minimum).
	MinProcessorMHz int
	MinMemoryMB     int
	MinProcessors   int
}

// Satisfies reports whether a site meets the request's hard constraints.
func (r Request) Satisfies(a site.Attributes) bool {
	if !a.Matches(r.Platform, r.OS, r.Arch) {
		return false
	}
	if r.MinProcessorMHz > 0 && a.ProcessorMHz < r.MinProcessorMHz {
		return false
	}
	if r.MinMemoryMB > 0 && a.MemoryMB < r.MinMemoryMB {
		return false
	}
	if r.MinProcessors > 0 && a.Processors < r.MinProcessors {
		return false
	}
	return true
}

// Candidate is one ranked brokerage result.
type Candidate struct {
	Attrs site.Attributes
	Score float64
}

// Rank filters the sites against the request and orders the survivors by
// capacity score (more/faster processors and more memory first; uptime
// breaks ties — long-lived sites are likelier to stay up). Deterministic:
// equal scores order by name.
func Rank(sites []site.Attributes, req Request) []Candidate {
	var out []Candidate
	for _, a := range sites {
		if !req.Satisfies(a) {
			continue
		}
		score := float64(a.Processors)*float64(a.ProcessorMHz)/1000 +
			float64(a.MemoryMB)/1024 +
			float64(a.UptimeHours)/1000
		out = append(out, Candidate{Attrs: a, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Attrs.Name < out[j].Attrs.Name
	})
	return out
}

// Errors returned by the reservation service.
var (
	ErrCapacity = errors.New("gridarm: insufficient capacity in the window")
	ErrUnknown  = errors.New("gridarm: no such reservation")
)

// Reservation is one advance reservation of processors on a site.
type Reservation struct {
	ID         uint64
	Site       string
	Client     string
	Processors int
	From, To   time.Time
}

// overlaps reports whether two half-open windows intersect.
func (r Reservation) overlaps(from, to time.Time) bool {
	return r.From.Before(to) && from.Before(r.To)
}

// Reservations is the advance-reservation service over a set of sites.
type Reservations struct {
	mu       sync.Mutex
	clock    simclock.Clock
	capacity map[string]int // site -> processors
	nextID   uint64
	active   map[uint64]*Reservation
}

// NewReservations creates the service; capacities are registered per site.
func NewReservations(clock simclock.Clock) *Reservations {
	if clock == nil {
		clock = simclock.Real
	}
	return &Reservations{
		clock:    clock,
		capacity: make(map[string]int),
		active:   make(map[uint64]*Reservation),
	}
}

// RegisterSite declares a site's processor capacity.
func (s *Reservations) RegisterSite(a site.Attributes) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity[a.Name] = a.Processors
}

// Reserve books processors on a site over [from, to). It fails when the
// peak committed capacity in the window would exceed the site's.
func (s *Reservations) Reserve(siteName, client string, processors int, from, to time.Time) (Reservation, error) {
	if processors <= 0 {
		return Reservation{}, fmt.Errorf("gridarm: non-positive processor count")
	}
	if !from.Before(to) {
		return Reservation{}, fmt.Errorf("gridarm: empty window")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cap, ok := s.capacity[siteName]
	if !ok {
		return Reservation{}, fmt.Errorf("gridarm: unknown site %q", siteName)
	}
	committed := 0
	for _, r := range s.active {
		if r.Site == siteName && r.overlaps(from, to) {
			committed += r.Processors
		}
	}
	if committed+processors > cap {
		return Reservation{}, fmt.Errorf("%w: %d committed + %d requested > %d on %s",
			ErrCapacity, committed, processors, cap, siteName)
	}
	s.nextID++
	r := &Reservation{
		ID: s.nextID, Site: siteName, Client: client,
		Processors: processors, From: from, To: to,
	}
	s.active[r.ID] = r
	return *r, nil
}

// Release cancels a reservation.
func (s *Reservations) Release(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.active[id]; !ok {
		return ErrUnknown
	}
	delete(s.active, id)
	return nil
}

// Committed reports the processors committed on a site at an instant.
func (s *Reservations) Committed(siteName string, at time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, r := range s.active {
		if r.Site == siteName && !at.Before(r.From) && at.Before(r.To) {
			total += r.Processors
		}
	}
	return total
}

// Expire drops reservations whose window has passed; returns the count.
func (s *Reservations) Expire() int {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, r := range s.active {
		if !r.To.After(now) {
			delete(s.active, id)
			n++
		}
	}
	return n
}

// Active returns the number of live reservations.
func (s *Reservations) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}
