package semantic

import (
	"testing"

	"glare/internal/activity"
	"glare/internal/workload"
)

func hierarchy(t *testing.T) *activity.Hierarchy {
	t.Helper()
	types := workload.ImagingTypes()
	types = append(types, &activity.Type{
		Name: "Wien2k", Domain: "Physics",
		Functions: []activity.Function{
			{Name: "scf", Inputs: []string{"structure"}, Outputs: []string{"energy"}},
		},
	})
	h, err := activity.NewHierarchy(types)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func names(ms []Match) []string {
	var out []string
	for _, m := range ms {
		out = append(out, m.Type.Name)
	}
	return out
}

func TestSearchByFunction(t *testing.T) {
	h := hierarchy(t)
	ms := Search(h, Query{Function: "render"})
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	// POVray declares render; JPOVray inherits it; both must appear.
	found := map[string]bool{}
	for _, m := range ms {
		found[m.Type.Name] = true
	}
	if !found["POVray"] || !found["JPOVray"] {
		t.Fatalf("matches = %v", names(ms))
	}
	if found["Wien2k"] {
		t.Fatal("Wien2k does not render")
	}
	// The inherited match names the providing function.
	for _, m := range ms {
		if m.Type.Name == "JPOVray" && m.Via != "render" {
			t.Fatalf("via = %q", m.Via)
		}
	}
}

func TestConcreteOnly(t *testing.T) {
	h := hierarchy(t)
	ms := Search(h, Query{Function: "render", ConcreteOnly: true})
	if len(ms) != 1 || ms[0].Type.Name != "JPOVray" {
		t.Fatalf("concrete matches = %v", names(ms))
	}
}

func TestSearchByInputsOutputs(t *testing.T) {
	h := hierarchy(t)
	ms := Search(h, Query{Inputs: []string{"scene.pov"}, Outputs: []string{"image"}, ConcreteOnly: true})
	if len(ms) == 0 || ms[0].Type.Name != "JPOVray" {
		t.Fatalf("matches = %v", names(ms))
	}
	if ms[0].Score <= 0.5 {
		t.Fatalf("score = %v", ms[0].Score)
	}
	// Substring tolerance: asking for "pov" still matches scene.pov.
	ms = Search(h, Query{Inputs: []string{"pov"}, ConcreteOnly: true})
	if len(ms) == 0 {
		t.Fatal("substring port match failed")
	}
}

func TestDomainIsHardConstraint(t *testing.T) {
	h := hierarchy(t)
	ms := Search(h, Query{Domain: "Physics"})
	if len(ms) != 1 || ms[0].Type.Name != "Wien2k" {
		t.Fatalf("matches = %v", names(ms))
	}
	ms = Search(h, Query{Domain: "Physics", Function: "render"})
	if len(ms) != 0 {
		t.Fatalf("impossible query matched %v", names(ms))
	}
}

func TestPerfectMatchScoresHighest(t *testing.T) {
	h := hierarchy(t)
	ms := Search(h, Query{
		Function: "convert",
		Inputs:   []string{"scene.pov"},
		Outputs:  []string{"image.png"},
	})
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	if ms[0].Score != 1.0 {
		t.Fatalf("top score = %v (%s)", ms[0].Score, ms[0].Type.Name)
	}
}

func TestEmptyQueryMatchesWeakly(t *testing.T) {
	h := hierarchy(t)
	ms := Search(h, Query{})
	if len(ms) != len(h.Names()) {
		t.Fatalf("empty query matched %d/%d", len(ms), len(h.Names()))
	}
	for _, m := range ms {
		if m.Score > 0.2 {
			t.Fatalf("empty query scored %v", m.Score)
		}
	}
}

func TestNoMatchForUnknownFunction(t *testing.T) {
	h := hierarchy(t)
	if ms := Search(h, Query{Function: "teleport"}); len(ms) != 0 {
		t.Fatalf("matches = %v", names(ms))
	}
}

func TestRankingDeterministic(t *testing.T) {
	h := hierarchy(t)
	a := names(Search(h, Query{Function: "render"}))
	b := names(Search(h, Query{Function: "render"}))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ranking not deterministic")
		}
	}
}
