// Package semantic implements capability-based activity-type search — the
// paper's future-work item: "we plan to augment activity types with
// ontological description so that activity types can be searched for
// based on a semantic description" (§6, referencing [37]).
//
// A query describes WHAT the requester needs — a function, its inputs and
// outputs, a domain — and matching ranks the registered types by how well
// their (inherited) functional descriptions satisfy it. Inheritance
// matters: a concrete type satisfies a query if any of its base types
// provides the capability, which is exactly what the abstract/concrete
// hierarchy encodes.
package semantic

import (
	"sort"
	"strings"

	"glare/internal/activity"
)

// Query is a semantic description of a needed capability. Empty fields
// are unconstrained. String matching is case-insensitive; inputs/outputs
// match if the type's port list contains every requested name.
type Query struct {
	// Function is the behaviour wanted, e.g. "render".
	Function string
	// Inputs and Outputs the function must accept/produce.
	Inputs  []string
	Outputs []string
	// Domain restricts the type's domain, e.g. "Imaging".
	Domain string
	// ConcreteOnly drops abstract types from the results (a scheduler
	// wants deployable types; a composer may want abstract ones).
	ConcreteOnly bool
}

// IsZero reports whether the query is unconstrained.
func (q Query) IsZero() bool {
	return q.Function == "" && len(q.Inputs) == 0 && len(q.Outputs) == 0 && q.Domain == ""
}

// Match is one scored result.
type Match struct {
	Type *activity.Type
	// Score in (0,1]: 1.0 is a perfect match of every constraint.
	Score float64
	// Via names the type (possibly a base type) whose function satisfied
	// the query; empty when only domain matched.
	Via string
}

// Search ranks the hierarchy's types against the query, best first. Ties
// break by type name for determinism.
func Search(h *activity.Hierarchy, q Query) []Match {
	var out []Match
	for _, name := range h.Names() {
		t, _ := h.Lookup(name)
		if q.ConcreteOnly && t.Abstract {
			continue
		}
		if m, ok := score(h, t, q); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Type.Name < out[j].Type.Name
	})
	return out
}

// score evaluates one type against the query.
func score(h *activity.Hierarchy, t *activity.Type, q Query) (Match, bool) {
	if q.IsZero() {
		return Match{Type: t, Score: 0.1}, true
	}
	total := 0.0
	weight := 0.0

	if q.Domain != "" {
		weight += 1
		if fold(t.Domain) == fold(q.Domain) {
			total += 1
		} else {
			return Match{}, false // domain is a hard constraint
		}
	}

	via := ""
	if q.Function != "" || len(q.Inputs) > 0 || len(q.Outputs) > 0 {
		weight += 3
		best := 0.0
		// A type offers its own functions plus everything inherited from
		// its bases ("inherits functional description of the base types").
		fns := h.InheritedFunctions(t.Name)
		for _, f := range fns {
			s, source := scoreFunction(f, q)
			if s > best {
				best = s
				via = source
			}
		}
		if best == 0 {
			return Match{}, false
		}
		total += 3 * best
	}

	if weight == 0 {
		return Match{}, false
	}
	return Match{Type: t, Score: total / weight, Via: via}, true
}

// scoreFunction rates one function against the query's function part.
func scoreFunction(f activity.Function, q Query) (float64, string) {
	parts := 0.0
	weight := 0.0
	if q.Function != "" {
		weight += 1
		switch {
		case fold(f.Name) == fold(q.Function):
			parts += 1
		case strings.Contains(fold(f.Name), fold(q.Function)):
			parts += 0.5
		default:
			return 0, ""
		}
	}
	if len(q.Inputs) > 0 {
		weight += 1
		parts += portCoverage(f.Inputs, q.Inputs)
	}
	if len(q.Outputs) > 0 {
		weight += 1
		parts += portCoverage(f.Outputs, q.Outputs)
	}
	if weight == 0 {
		return 0, ""
	}
	s := parts / weight
	if s == 0 {
		return 0, ""
	}
	return s, f.Name
}

// portCoverage is the fraction of wanted ports the function provides
// (substring-tolerant: "scene.pov" satisfies a request for "pov").
func portCoverage(have, want []string) float64 {
	if len(want) == 0 {
		return 1
	}
	hits := 0
	for _, w := range want {
		for _, h := range have {
			if fold(h) == fold(w) || strings.Contains(fold(h), fold(w)) {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(want))
}

func fold(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
