package wsrf

import (
	"fmt"
	"sync"
	"time"

	"glare/internal/simclock"
	"glare/internal/xmlutil"
)

// Notification is one event delivered to subscribed sinks. WS-Notification
// carries the topic, the producing resource's key and a message document.
type Notification struct {
	Topic    string
	Producer string // resource key or service name that produced the event
	Message  *xmlutil.Node
	Sent     time.Time
}

// Sink consumes notifications. Implementations must be safe for concurrent
// use; delivery happens on the publisher's goroutine pool.
type Sink interface {
	Notify(n Notification)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(n Notification)

// Notify calls f(n).
func (f SinkFunc) Notify(n Notification) { f(n) }

// SubscriptionID identifies one subscription for cancellation.
type SubscriptionID uint64

// Broker is a topic-based notification broker (WS-Notification analogue).
// GLARE resources publish lifecycle and update events through it; Fig. 13
// measures registry load as the number of sinks and the notify rate grow.
type Broker struct {
	mu     sync.RWMutex
	clock  simclock.Clock
	nextID SubscriptionID
	subs   map[string]map[SubscriptionID]Sink // topic -> id -> sink
	// delivered counts total notifications handed to sinks; exposed so the
	// load-average experiment can verify delivery actually happened.
	delivered uint64
}

// NewBroker creates an empty broker.
func NewBroker(clock simclock.Clock) *Broker {
	if clock == nil {
		clock = simclock.Real
	}
	return &Broker{clock: clock, subs: make(map[string]map[SubscriptionID]Sink)}
}

// Subscribe registers a sink on a topic and returns its subscription ID.
func (b *Broker) Subscribe(topic string, s Sink) (SubscriptionID, error) {
	if topic == "" {
		return 0, fmt.Errorf("wsrf: empty topic")
	}
	if s == nil {
		return 0, fmt.Errorf("wsrf: nil sink")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	m := b.subs[topic]
	if m == nil {
		m = make(map[SubscriptionID]Sink)
		b.subs[topic] = m
	}
	m[id] = s
	return id, nil
}

// Unsubscribe cancels a subscription; it is a no-op for unknown IDs.
func (b *Broker) Unsubscribe(topic string, id SubscriptionID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m := b.subs[topic]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(b.subs, topic)
		}
	}
}

// Subscribers reports the number of sinks on a topic.
func (b *Broker) Subscribers(topic string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs[topic])
}

// Publish delivers a message to every sink subscribed to the topic,
// synchronously on the caller's goroutine. It returns the number of sinks
// notified.
func (b *Broker) Publish(topic, producer string, msg *xmlutil.Node) int {
	b.mu.RLock()
	m := b.subs[topic]
	sinks := make([]Sink, 0, len(m))
	for _, s := range m {
		sinks = append(sinks, s)
	}
	b.mu.RUnlock()
	n := Notification{Topic: topic, Producer: producer, Message: msg, Sent: b.clock.Now()}
	for _, s := range sinks {
		s.Notify(n)
	}
	b.mu.Lock()
	b.delivered += uint64(len(sinks))
	b.mu.Unlock()
	return len(sinks)
}

// Delivered returns the total number of sink deliveries so far.
func (b *Broker) Delivered() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.delivered
}

// Standard topic names used by the registries.
const (
	TopicResourceCreated   = "ResourceCreated"
	TopicResourceUpdated   = "ResourceUpdated"
	TopicResourceDestroyed = "ResourceDestroyed"
	TopicDeployment        = "Deployment"
	TopicElection          = "Election"
)
