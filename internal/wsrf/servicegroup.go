package wsrf

import (
	"sort"
	"sync"
	"time"

	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/xmlutil"
	"glare/internal/xpath"
)

// ServiceGroup aggregates resource property documents from many sources
// into one queryable document, mirroring the GT4 WSRF service-group
// framework that both the GLARE registries and the Index Service build on.
//
// Entries are periodically refreshed; each entry carries the EPR of its
// source resource and a cached copy of its content.
type Entry struct {
	EPR     epr.EPR
	Content *xmlutil.Node
	Added   time.Time
	Renewed time.Time
}

// ServiceGroup holds aggregated entries keyed by the source resource key.
type ServiceGroup struct {
	mu      sync.RWMutex
	name    string
	clock   simclock.Clock
	entries map[string]*Entry
}

// NewServiceGroup creates a named, empty service group.
func NewServiceGroup(name string, clock simclock.Clock) *ServiceGroup {
	if clock == nil {
		clock = simclock.Real
	}
	return &ServiceGroup{name: name, clock: clock, entries: make(map[string]*Entry)}
}

// Name returns the group name.
func (g *ServiceGroup) Name() string { return g.name }

// AddEntry inserts or refreshes an aggregated entry.
func (g *ServiceGroup) AddEntry(e epr.EPR, content *xmlutil.Node) {
	now := g.clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if old, ok := g.entries[e.Key]; ok {
		old.EPR = e
		old.Content = content
		old.Renewed = now
		return
	}
	g.entries[e.Key] = &Entry{EPR: e, Content: content, Added: now, Renewed: now}
}

// RemoveEntry drops an entry by resource key.
func (g *ServiceGroup) RemoveEntry(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.entries[key]; !ok {
		return false
	}
	delete(g.entries, key)
	return true
}

// Entry returns the aggregated entry for a key, or nil.
func (g *ServiceGroup) Entry(key string) *Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.entries[key]
}

// Len returns the number of aggregated entries.
func (g *ServiceGroup) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Document materializes the aggregated document:
//
//	<ServiceGroup name="...">
//	  <Entry key="...">
//	    <MemberEPR>…</MemberEPR>
//	    …content…
//	  </Entry>
//	</ServiceGroup>
//
// The entries are in sorted key order for determinism. XPath queries over
// the group scan this document — the linear cost at the heart of Fig. 11.
func (g *ServiceGroup) Document() *xmlutil.Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	root := xmlutil.NewNode("ServiceGroup").SetAttr("name", g.name)
	keys := make([]string, 0, len(g.entries))
	for k := range g.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := g.entries[k]
		en := root.Elem("Entry")
		en.SetAttr("key", k)
		en.Add(e.EPR.ToXML("MemberEPR"))
		if e.Content != nil {
			en.Add(e.Content.Clone())
		}
	}
	return root
}

// Query evaluates an XPath expression over the aggregated document.
func (g *ServiceGroup) Query(expr *xpath.Expr) xpath.Result {
	return expr.Select(g.Document())
}

// StaleEntries returns keys whose entry was last renewed before the cutoff.
func (g *ServiceGroup) StaleEntries(cutoff time.Time) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for k, e := range g.entries {
		if e.Renewed.Before(cutoff) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Refresh re-aggregates every resource of a Home into the group. The RDM
// Cache Refresher drives this periodically so that "aggregated resources
// are periodically refreshed".
func (g *ServiceGroup) Refresh(h *Home) {
	for _, r := range h.All() {
		g.AddEntry(h.EPR(r.Key()), r.Document())
	}
	// Drop entries whose source resource no longer exists.
	g.mu.Lock()
	defer g.mu.Unlock()
	for k := range g.entries {
		if h.Find(k) == nil {
			delete(g.entries, k)
		}
	}
}
