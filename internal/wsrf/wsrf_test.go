package wsrf

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"glare/internal/simclock"
	"glare/internal/xmlutil"
	"glare/internal/xpath"
)

func newHome(clock simclock.Clock) *Home {
	return NewHome("http://x/wsrf/services/ATR", "ActivityTypeKey", clock)
}

func TestCreateFindDestroy(t *testing.T) {
	h := newHome(nil)
	doc := xmlutil.MustParse(`<ActivityTypeEntry name="JPOVray"/>`)
	r, err := h.Create("JPOVray", doc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Find("JPOVray") != r {
		t.Fatal("Find failed")
	}
	if _, err := h.Create("JPOVray", doc); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if _, err := h.Create("", doc); err == nil {
		t.Fatal("empty key must fail")
	}
	if !h.Destroy("JPOVray") {
		t.Fatal("destroy failed")
	}
	if h.Destroy("JPOVray") {
		t.Fatal("double destroy must report false")
	}
	if h.Find("JPOVray") != nil {
		t.Fatal("destroyed resource still findable")
	}
	if !r.Destroyed() {
		t.Fatal("resource not marked destroyed")
	}
}

func TestDocumentIsolation(t *testing.T) {
	h := newHome(nil)
	r, _ := h.Create("a", xmlutil.MustParse(`<P><v>1</v></P>`))
	doc := r.Document()
	doc.First("v").Text = "mutated"
	if r.Document().ChildText("v") != "1" {
		t.Fatal("Document() must return a copy")
	}
}

func TestUpdateBumpsLastUpdate(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	h := newHome(v)
	r, _ := h.Create("a", nil)
	t0 := r.LastUpdate()
	v.Advance(time.Second)
	r.Update(v.Now(), func(doc *xmlutil.Node) { doc.Elem("x") })
	if !r.LastUpdate().After(t0) {
		t.Fatal("LastUpdate not bumped")
	}
	var hasX bool
	r.Read(func(doc *xmlutil.Node) { hasX = doc.First("x") != nil })
	if !hasX {
		t.Fatal("update lost")
	}
}

func TestLifetimeAndSweep(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	h := newHome(v)
	a, _ := h.Create("a", nil)
	b, _ := h.Create("b", nil)
	a.SetTerminationTime(v.Now().Add(10 * time.Second))
	if a.Expired(v.Now()) {
		t.Fatal("not yet expired")
	}
	v.Advance(11 * time.Second)
	if !a.Expired(v.Now()) {
		t.Fatal("should be expired")
	}
	if b.Expired(v.Now()) {
		t.Fatal("b has no termination time")
	}
	gone := h.SweepExpired()
	if len(gone) != 1 || gone[0] != "a" {
		t.Fatalf("swept %v", gone)
	}
	if h.Len() != 1 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestOnDestroyListener(t *testing.T) {
	h := newHome(nil)
	var mu sync.Mutex
	var destroyed []string
	h.OnDestroy(func(r *Resource) {
		mu.Lock()
		destroyed = append(destroyed, r.Key())
		mu.Unlock()
	})
	h.Create("x", nil)
	h.Destroy("x")
	mu.Lock()
	defer mu.Unlock()
	if len(destroyed) != 1 || destroyed[0] != "x" {
		t.Fatalf("listener saw %v", destroyed)
	}
}

func TestEPRMinting(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	h := newHome(v)
	h.Create("jpovray", nil)
	e := h.EPR("jpovray")
	if e.Address != "http://x/wsrf/services/ATR" || e.KeyName != "ActivityTypeKey" || e.Key != "jpovray" {
		t.Fatalf("EPR = %+v", e)
	}
	if e.LastUpdateTime.IsZero() {
		t.Fatal("EPR must carry LUT for existing resource")
	}
}

func TestKeysSortedAndAll(t *testing.T) {
	h := newHome(nil)
	for _, k := range []string{"c", "a", "b"} {
		h.Create(k, nil)
	}
	keys := h.Keys()
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("keys = %v", keys)
	}
	all := h.All()
	if len(all) != 3 || all[0].Key() != "a" {
		t.Fatal("All not sorted")
	}
}

func TestServiceGroupAggregationAndQuery(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	h := newHome(v)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("t%d", i)
		doc := xmlutil.NewNode("ActivityTypeEntry")
		doc.SetAttr("name", key)
		h.Create(key, doc)
	}
	g := NewServiceGroup("atr", v)
	g.Refresh(h)
	if g.Len() != 5 {
		t.Fatalf("group len = %d", g.Len())
	}
	res := g.Query(xpath.MustCompile(`//ActivityTypeEntry[@name='t3']`))
	if len(res.Nodes) != 1 {
		t.Fatalf("query = %d nodes", len(res.Nodes))
	}
	// Destroy one source and refresh: entry must disappear.
	h.Destroy("t3")
	g.Refresh(h)
	if g.Len() != 4 {
		t.Fatalf("after refresh len = %d", g.Len())
	}
	if !g.Query(xpath.MustCompile(`//ActivityTypeEntry[@name='t3']`)).Empty() {
		t.Fatal("stale entry survived refresh")
	}
}

func TestServiceGroupStaleEntries(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	g := NewServiceGroup("g", v)
	h := newHome(v)
	h.Create("a", nil)
	g.Refresh(h)
	v.Advance(time.Minute)
	h.Create("b", nil)
	g.AddEntry(h.EPR("b"), nil)
	stale := g.StaleEntries(v.Now().Add(-30 * time.Second))
	if len(stale) != 1 || stale[0] != "a" {
		t.Fatalf("stale = %v", stale)
	}
}

func TestServiceGroupRemoveEntry(t *testing.T) {
	g := NewServiceGroup("g", nil)
	h := newHome(nil)
	h.Create("a", nil)
	g.Refresh(h)
	if !g.RemoveEntry("a") {
		t.Fatal("remove failed")
	}
	if g.RemoveEntry("a") {
		t.Fatal("double remove must be false")
	}
}

func TestBrokerPublishSubscribe(t *testing.T) {
	b := NewBroker(nil)
	var mu sync.Mutex
	var got []Notification
	id, err := b.Subscribe(TopicDeployment, SinkFunc(func(n Notification) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n := b.Publish(TopicDeployment, "jpovray", xmlutil.NewNode("Deployed")); n != 1 {
		t.Fatalf("published to %d sinks", n)
	}
	if n := b.Publish("OtherTopic", "x", nil); n != 0 {
		t.Fatal("published to wrong topic")
	}
	mu.Lock()
	if len(got) != 1 || got[0].Producer != "jpovray" {
		t.Fatalf("got %v", got)
	}
	mu.Unlock()
	b.Unsubscribe(TopicDeployment, id)
	if n := b.Publish(TopicDeployment, "jpovray", nil); n != 0 {
		t.Fatal("unsubscribe ineffective")
	}
	if b.Delivered() != 1 {
		t.Fatalf("delivered = %d", b.Delivered())
	}
}

func TestBrokerErrors(t *testing.T) {
	b := NewBroker(nil)
	if _, err := b.Subscribe("", SinkFunc(func(Notification) {})); err == nil {
		t.Fatal("empty topic must fail")
	}
	if _, err := b.Subscribe("t", nil); err == nil {
		t.Fatal("nil sink must fail")
	}
}

func TestBrokerManySinks(t *testing.T) {
	b := NewBroker(nil)
	const sinks = 100
	var mu sync.Mutex
	delivered := 0
	for i := 0; i < sinks; i++ {
		b.Subscribe("t", SinkFunc(func(Notification) {
			mu.Lock()
			delivered++
			mu.Unlock()
		}))
	}
	if n := b.Publish("t", "p", nil); n != sinks {
		t.Fatalf("published %d", n)
	}
	if delivered != sinks {
		t.Fatalf("delivered %d", delivered)
	}
	if b.Subscribers("t") != sinks {
		t.Fatalf("subscribers = %d", b.Subscribers("t"))
	}
}

func TestConcurrentHomeAccess(t *testing.T) {
	h := newHome(nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				key := fmt.Sprintf("r%d-%d", i, j)
				h.Create(key, nil)
				h.Find(key)
				if j%2 == 0 {
					h.Destroy(key)
				}
			}
		}(i)
	}
	wg.Wait()
	if h.Len() != 16*25 {
		t.Fatalf("len = %d, want %d", h.Len(), 16*25)
	}
}

// TestRestoreExpiredResource pins the recovery-meets-lifetime corner: a
// journal can legitimately replay a resource whose scheduled termination
// time passed while the site was down. Restore must install it verbatim
// (recovery is not the place for lifecycle policy, and it must not stamp
// "now"), and the next SweepExpired pass — not the restore — destroys it.
func TestRestoreExpiredResource(t *testing.T) {
	start := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	v := simclock.NewVirtual(start)
	h := newHome(v)

	lut := start.Add(-2 * time.Hour)
	term := start.Add(-time.Hour) // already in the past at restore time
	r := h.Restore("stale", xmlutil.MustParse(`<P>old</P>`), lut, term)
	if got := h.Find("stale"); got != r {
		t.Fatal("expired resource must still be installed by Restore")
	}
	if !r.LastUpdate().Equal(lut) {
		t.Fatalf("Restore stamped LastUpdate %v, want journaled %v", r.LastUpdate(), lut)
	}
	if !r.Expired(v.Now()) {
		t.Fatal("restored resource should report expired")
	}

	// A fresh resource with a future termination must survive the sweep
	// that reaps the stale one.
	h.Restore("fresh", xmlutil.MustParse(`<P>new</P>`), start, start.Add(time.Hour))
	swept := h.SweepExpired()
	if len(swept) != 1 || swept[0] != "stale" {
		t.Fatalf("SweepExpired = %v, want [stale]", swept)
	}
	if h.Find("stale") != nil {
		t.Fatal("expired resource survived the sweep")
	}
	if h.Find("fresh") == nil {
		t.Fatal("unexpired resource reaped by the sweep")
	}
}
