package wsrf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBrokerConcurrentChurn hammers one broker with parallel subscribers,
// unsubscribers and publishers (run under -race in CI). Afterwards the
// broker must still be consistent: a final publish on each topic reaches
// exactly the surviving sinks, and Delivered advances by that amount.
func TestBrokerConcurrentChurn(t *testing.T) {
	b := NewBroker(nil)
	const (
		topics     = 3
		goroutines = 8
		rounds     = 200
	)
	topicName := func(j int) string { return fmt.Sprintf("churn-%d", j%topics) }

	var hits atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				topic := topicName(j)
				id, err := b.Subscribe(topic, SinkFunc(func(Notification) { hits.Add(1) }))
				if err != nil {
					t.Error(err)
					return
				}
				if j%2 == 0 {
					b.Unsubscribe(topic, id)
				}
			}
		}()
	}
	for i := 0; i < goroutines/2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				b.Publish(topicName(j), "churn-test", nil)
			}
		}()
	}
	wg.Wait()

	want := 0
	for j := 0; j < topics; j++ {
		want += b.Subscribers(topicName(j))
	}
	if want == 0 {
		t.Fatal("no subscriptions survived the churn")
	}
	before := b.Delivered()
	hitsBefore := hits.Load()
	got := 0
	for j := 0; j < topics; j++ {
		got += b.Publish(topicName(j), "churn-test", nil)
	}
	if got != want {
		t.Fatalf("final publish reached %d sinks, want %d", got, want)
	}
	if d := b.Delivered() - before; d != uint64(want) {
		t.Fatalf("Delivered advanced by %d, want %d", d, want)
	}
	if h := hits.Load() - hitsBefore; h != uint64(want) {
		t.Fatalf("sinks fired %d times, want %d", h, want)
	}
}
