// Package wsrf implements the Web-Services Resource Framework analogue the
// GLARE registries are built on: stateful resources with resource-property
// documents and lifetime management, service groups for aggregation, and
// topic-based notification.
//
// The paper implements GLARE on Globus Toolkit 4, "a reference
// implementation of the new Web-Services Resource Framework". This package
// reproduces the WSRF semantics the paper relies on — resource lifecycle,
// expiry, aggregation with periodic refresh, and event notification — so
// registries and the MDS baseline share one substrate.
package wsrf

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/xmlutil"
)

// Resource is one stateful WS-Resource: a keyed resource-property document
// with an optional termination time.
type Resource struct {
	mu          sync.RWMutex
	key         string
	doc         *xmlutil.Node
	created     time.Time
	lastUpdate  time.Time
	termination time.Time // zero = never expires
	destroyed   bool
}

// Key returns the resource key (immutable).
func (r *Resource) Key() string { return r.key }

// Document returns a deep copy of the resource property document, so
// callers can never mutate registry state behind the registry's back.
func (r *Resource) Document() *xmlutil.Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.doc.Clone()
}

// Read runs fn against the live property document under the resource's
// read lock; fn must not mutate the document or retain references past the
// call. It is the zero-copy read path (Document copies instead).
func (r *Resource) Read(fn func(doc *xmlutil.Node)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn(r.doc)
}

// Update atomically mutates the property document and bumps LastUpdate.
func (r *Resource) Update(now time.Time, fn func(doc *xmlutil.Node)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.doc)
	r.lastUpdate = now
}

// Replace swaps in a whole new property document.
func (r *Resource) Replace(now time.Time, doc *xmlutil.Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.doc = doc
	r.lastUpdate = now
}

// LastUpdate returns the last modification instant.
func (r *Resource) LastUpdate() time.Time {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lastUpdate
}

// Created returns the creation instant.
func (r *Resource) Created() time.Time { return r.created }

// TerminationTime returns the scheduled termination time (zero = never).
func (r *Resource) TerminationTime() time.Time {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.termination
}

// SetTerminationTime schedules (or cancels, with zero) expiry.
func (r *Resource) SetTerminationTime(t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.termination = t
}

// Expired reports whether the resource is past its termination time.
func (r *Resource) Expired(now time.Time) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return !r.termination.IsZero() && now.After(r.termination)
}

// Destroyed reports whether the resource has been destroyed.
func (r *Resource) Destroyed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.destroyed
}

// Home is a collection of WS-Resources of one kind (e.g. all activity-type
// resources of one registry), addressed by key through a hash table.
type Home struct {
	mu        sync.RWMutex
	service   string // service address used when minting EPRs
	keyName   string // reference property name, e.g. "ActivityTypeKey"
	clock     simclock.Clock
	stamp     func() time.Time // ordering-stamp source; nil = clock.Now
	resources map[string]*Resource
	destroyed []func(*Resource) // destruction listeners
}

// NewHome creates a resource home. service and keyName are used to mint
// EPRs for contained resources.
func NewHome(service, keyName string, clock simclock.Clock) *Home {
	if clock == nil {
		clock = simclock.Real
	}
	return &Home{
		service:   service,
		keyName:   keyName,
		clock:     clock,
		resources: make(map[string]*Resource),
	}
}

// Service returns the home's service address.
func (h *Home) Service() string { return h.service }

// SetStamp overrides the source of LastUpdate stamps for new resources —
// the site's hybrid logical clock, so cross-site newest-wins comparisons on
// LastUpdate survive wall-clock skew. Expiry decisions (SweepExpired) stay
// on the home's physical clock: HLC stamps may lead it by observed peer
// skew and must never be compared against local time. Restore is also
// unaffected: recovery replays journaled stamps verbatim.
func (h *Home) SetStamp(fn func() time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stamp = fn
}

// now returns the next ordering stamp. Callers hold h.mu.
func (h *Home) now() time.Time {
	if h.stamp != nil {
		return h.stamp()
	}
	return h.clock.Now()
}

// KeyName returns the reference-property name for resource keys.
func (h *Home) KeyName() string { return h.keyName }

// Create adds a resource with the given key and document. It fails if the
// key already exists.
func (h *Home) Create(key string, doc *xmlutil.Node) (*Resource, error) {
	if key == "" {
		return nil, fmt.Errorf("wsrf: empty resource key")
	}
	if doc == nil {
		doc = xmlutil.NewNode("Properties")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.resources[key]; ok {
		return nil, fmt.Errorf("wsrf: resource %q already exists", key)
	}
	now := h.now()
	r := &Resource{key: key, doc: doc, created: now, lastUpdate: now}
	h.resources[key] = r
	return r, nil
}

// CreateOrReplace adds a resource, replacing any existing one with the key.
func (h *Home) CreateOrReplace(key string, doc *xmlutil.Node) *Resource {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	r := &Resource{key: key, doc: doc, created: now, lastUpdate: now}
	h.resources[key] = r
	return r
}

// Restore installs a resource with explicit timestamps, replacing any
// existing resource with the key. It is the crash-recovery path: replay
// must reproduce the journaled LastUpdate exactly (cache revival and
// anti-entropy order on it) instead of stamping "now", and it fires no
// listeners — recovery is not observable as resource churn.
func (h *Home) Restore(key string, doc *xmlutil.Node, lastUpdate, termination time.Time) *Resource {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &Resource{key: key, doc: doc, created: lastUpdate,
		lastUpdate: lastUpdate, termination: termination}
	h.resources[key] = r
	return r
}

// Find returns the resource for key, or nil. This is the O(1) hash-table
// named lookup the paper credits for the ATR's flat throughput curve.
func (h *Home) Find(key string) *Resource {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.resources[key]
}

// Destroy removes a resource and fires destruction listeners.
func (h *Home) Destroy(key string) bool {
	h.mu.Lock()
	r, ok := h.resources[key]
	if ok {
		delete(h.resources, key)
	}
	listeners := append([]func(*Resource){}, h.destroyed...)
	h.mu.Unlock()
	if !ok {
		return false
	}
	r.mu.Lock()
	r.destroyed = true
	r.mu.Unlock()
	for _, fn := range listeners {
		fn(r)
	}
	return true
}

// OnDestroy registers a listener invoked after a resource is destroyed.
func (h *Home) OnDestroy(fn func(*Resource)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.destroyed = append(h.destroyed, fn)
}

// Len returns the number of live resources.
func (h *Home) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.resources)
}

// Keys returns all resource keys in sorted order.
func (h *Home) Keys() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	keys := make([]string, 0, len(h.resources))
	for k := range h.resources {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// All returns the live resources in key order.
func (h *Home) All() []*Resource {
	h.mu.RLock()
	defer h.mu.RUnlock()
	keys := make([]string, 0, len(h.resources))
	for k := range h.resources {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Resource, 0, len(keys))
	for _, k := range keys {
		out = append(out, h.resources[k])
	}
	return out
}

// EPR mints an endpoint reference for a contained resource.
func (h *Home) EPR(key string) epr.EPR {
	e := epr.New(h.service, h.keyName, key)
	if r := h.Find(key); r != nil {
		e.LastUpdateTime = r.LastUpdate()
	}
	return e
}

// SweepExpired destroys every resource past its termination time and
// returns the destroyed keys. The RDM service's monitors call this
// periodically; "outdated resources are discarded automatically".
func (h *Home) SweepExpired() []string {
	now := h.clock.Now()
	h.mu.RLock()
	var expired []string
	for k, r := range h.resources {
		if r.Expired(now) {
			expired = append(expired, k)
		}
	}
	h.mu.RUnlock()
	sort.Strings(expired)
	for _, k := range expired {
		h.Destroy(k)
	}
	return expired
}
