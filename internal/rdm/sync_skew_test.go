package rdm

import (
	"fmt"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/workload"
)

// newSkewedSyncSites is newSyncSites with each site reading time through
// its own skewed view of the shared virtual base clock: site i is
// displaced by offsets[i] (missing entries read true). Transports carry
// HLC stamps both ways, exactly like the VO builder wires them.
func newSkewedSyncSites(t *testing.T, n int, offsets map[int]time.Duration) []*syncSite {
	t.Helper()
	base := simclock.NewVirtual(time.Time{})
	var sites []*syncSite
	var infos []superpeer.SiteInfo
	for i := 0; i < n; i++ {
		view := simclock.NewSkewed(base)
		if off, ok := offsets[i]; ok {
			view.SetOffset(off)
		}
		st := site.New(site.Attributes{
			Name: fmt.Sprintf("skew%02d.uibk", i), ProcessorMHz: 1500, MemoryMB: 2048,
			Platform: "Intel", OS: "Linux", Arch: "32bit",
		}, view, site.StandardUniverse())
		srv := transport.NewServer()
		if err := srv.Start("127.0.0.1:0", nil); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		info := superpeer.SiteInfo{Name: st.Attrs.Name, Rank: uint64(1000 + i), BaseURL: srv.BaseURL()}
		cli := transport.NewClient(nil)
		agent := superpeer.NewAgent(info, cli, nil)
		tel := telemetry.New(info.Name)
		resolver := workload.NewResolver(st.Repo)
		svc, err := New(Config{
			Site: st, Clock: view, Client: cli, Agent: agent,
			DeployFiles: resolver.Fetch, Telemetry: tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Stop)
		cli.SetHLC(svc.HLC())
		srv.SetHLC(svc.HLC())
		svc.Mount(srv)
		sites = append(sites, &syncSite{svc: svc, agent: agent, info: info, tel: tel})
		infos = append(infos, info)
	}
	admin := transport.NewClient(nil)
	for i, s := range sites {
		v := superpeer.View{
			Epoch:      1,
			Group:      []superpeer.SiteInfo{infos[i]},
			SuperPeer:  infos[i],
			SuperPeers: infos,
		}
		if _, err := admin.Call(s.info.PeerURL(), "GroupAssign", v.ToXML()); err != nil {
			t.Fatal(err)
		}
	}
	return sites
}

// TestSyncConvergesUnderTenMinuteSkew: two sites register the same type
// name while their wall clocks disagree by 20 minutes (one −10m, one
// +10m). Every site — whatever order it syncs in — must converge on the
// SAME winner, and the loser's site must not have its genuinely newer
// knowledge erased. Then the slow site, having exchanged messages with
// the fast one, registers a follow-up: despite its wall clock sitting 10
// minutes in the past, the follow-up's stamp must order after everything
// it has seen (the HLC causality guarantee that raw wall clocks break).
func TestSyncConvergesUnderTenMinuteSkew(t *testing.T) {
	sites := newSkewedSyncSites(t, 3, map[int]time.Duration{
		0: -10 * time.Minute,
		1: +10 * time.Minute,
		// site 2 reads true time and owns nothing: the neutral observer.
	})
	slow, fast, observer := sites[0], sites[1], sites[2]

	if _, err := slow.svc.RegisterType(&activity.Type{Name: "Contested", Artifact: "from-slow"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fast.svc.RegisterType(&activity.Type{Name: "Contested", Artifact: "from-fast"}); err != nil {
		t.Fatal(err)
	}

	// Every site runs anti-entropy, in different orders, twice (the second
	// round re-offers every copy — convergence must be stable, not an
	// artifact of who synced first).
	for round := 0; round < 2; round++ {
		observer.svc.SyncRegistries()
		slow.svc.SyncRegistries()
		fast.svc.SyncRegistries()
		observer.svc.SyncRegistries()
	}

	// The fast site's copy carries the greater stamp: with no messages
	// exchanged before the two registrations, (stamp, site) is the agreed
	// total order and +10m beats −10m. Everyone must agree.
	wantWinner := fast.info.Name
	for _, s := range []*syncSite{observer, slow} {
		e, ok := s.svc.typeCache.Peek("type:Contested")
		if !ok {
			t.Fatalf("%s holds no cached copy of the contested type", s.info.Name)
		}
		if got := e.Source.Extra["OriginSite"]; got != wantWinner {
			t.Fatalf("%s converged on %q, want %q", s.info.Name, got, wantWinner)
		}
	}
	// The fast site must not have pulled the slow site's older copy over
	// anything: its local registry still holds its own version.
	if got, ok := fast.svc.ATR.Lookup("Contested"); !ok || got.Artifact != "from-fast" {
		t.Fatalf("winner's local registry = %+v ok=%v", got, ok)
	}

	// Causality across skew: the slow site has now observed the fast
	// site's stamps; anything it registers next must order after them,
	// even though its wall clock is 10 minutes behind the fast site's.
	if _, err := slow.svc.RegisterType(&activity.Type{Name: "Followup"}); err != nil {
		t.Fatal(err)
	}
	followupLUT, ok := slow.svc.ATR.LUT("Followup")
	if !ok {
		t.Fatal("follow-up registration has no LUT")
	}
	contestedLUT, ok := fast.svc.ATR.LUT("Contested")
	if !ok {
		t.Fatal("contested registration has no LUT")
	}
	if !followupLUT.After(contestedLUT) {
		t.Fatalf("follow-up on the slow site stamped %v, before the fast site's %v it had already seen — wall-clock ordering leaked through",
			followupLUT, contestedLUT)
	}

	// Skew surveillance saw the disagreement: both skewed sites observed
	// peer stamps beyond the alarm bound, and the gauges publish the worst
	// observation.
	if n := slow.tel.Counter("glare_clock_skew_detected_total").Value(); n == 0 {
		t.Fatal("slow site detected no skew after exchanging 20-minute-disagreeing stamps")
	}
	if peer, off := slow.svc.CheckClockSkew(); peer == "" || off <= 0 {
		t.Fatalf("slow site's worst peer offset = (%q, %v), want a positive offset against a named peer", peer, off)
	}
	if g := slow.tel.Gauge("glare_clock_offset_ms").Value(); g <= 0 {
		t.Fatalf("glare_clock_offset_ms = %d after CheckClockSkew, want > 0", g)
	}
}
