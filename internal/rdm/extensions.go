package rdm

import (
	"context"
	"fmt"
	"strconv"

	"glare/internal/activity"
	"glare/internal/semantic"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// SearchTypes ranks this site's registered activity types against a
// semantic capability query (the paper's §6 future-work item: "activity
// types can be searched for based on a semantic description").
func (s *Service) SearchTypes(q semantic.Query) ([]semantic.Match, error) {
	h, err := s.ATR.Hierarchy()
	if err != nil {
		return nil, err
	}
	return semantic.Search(h, q), nil
}

// WrapService generates a web-service wrapper around an executable
// deployment, the paper's planned Otho-toolkit integration ("generation
// of wrapper services for legacy code"). The wrapper is hosted in the
// site container and registered as a service deployment of the same type;
// instantiating it runs the wrapped executable.
func (s *Service) WrapService(execName string) (*activity.Deployment, error) {
	d, ok := s.ADR.Get(execName)
	if !ok {
		return nil, fmt.Errorf("rdm: no such deployment %q", execName)
	}
	if d.Kind != activity.KindExecutable {
		return nil, fmt.Errorf("rdm: %q is not an executable deployment", execName)
	}
	wrapped := "WS-" + d.Name
	if _, exists := s.ADR.Get(wrapped); exists {
		return nil, fmt.Errorf("rdm: wrapper %q already exists", wrapped)
	}
	s.site.DeployService(wrapped, d.Home)
	w := &activity.Deployment{
		Name:    wrapped,
		Type:    d.Type,
		Kind:    activity.KindService,
		Site:    s.site.Attrs.Name,
		Address: s.agentBase() + "/wsrf/services/" + wrapped,
		Home:    d.Home,
		Env:     map[string]string{"WRAPS": d.Name},
	}
	if _, err := s.ADR.Register(w); err != nil {
		s.site.UndeployService(wrapped)
		return nil, err
	}
	return w, nil
}

// MountExtensions adds the future-work operations to a transport server.
// Kept separate from Mount so the baseline protocol matches the paper's
// surface exactly; vo mounts both.
func (s *Service) MountExtensions(srv *transport.Server) {
	srv.RegisterCtxService(ServiceName, s.tracedTable(map[string]transport.CtxHandler{
		"SearchTypes": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			q := semantic.Query{}
			if body != nil {
				q.Function = body.AttrOr("function", "")
				q.Domain = body.AttrOr("domain", "")
				q.ConcreteOnly = body.AttrOr("concreteOnly", "") == "true"
				for _, in := range body.All("Input") {
					q.Inputs = append(q.Inputs, in.Text)
				}
				for _, out := range body.All("Output") {
					q.Outputs = append(q.Outputs, out.Text)
				}
			}
			matches, err := s.SearchTypes(q)
			if err != nil {
				return nil, err
			}
			out := xmlutil.NewNode("Matches")
			for _, m := range matches {
				mn := out.Elem("Match")
				mn.SetAttr("score", strconv.FormatFloat(m.Score, 'f', 3, 64))
				if m.Via != "" {
					mn.SetAttr("via", m.Via)
				}
				mn.Add(m.Type.ToXML())
			}
			return out, nil
		},
		"WrapService": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			d, err := s.WrapService(textOf(body))
			if err != nil {
				return nil, err
			}
			return d.ToXML(), nil
		},
	}))
}
