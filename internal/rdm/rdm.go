// Package rdm implements the GLARE Registration, Deployment and Monitoring
// service — "the main frontend service which consists of components
// including Request Manager, Deployment Manager, Cache Refresher, Index
// Monitor and Deployment Status Monitor" (paper §3.2).
//
// One Service runs per Grid site. Clients only ever talk to their local
// RDM ("clients ... interact only with their local sites"): the service
// resolves activity types and deployments from the local registries, its
// caches, the peer group, and — through the super-peer — the rest of the
// VO, and performs on-demand deployment when a requested type has no
// deployment anywhere.
package rdm

import (
	"fmt"
	"sync"
	"time"

	"glare/internal/adr"
	"glare/internal/atr"
	"glare/internal/cache"
	"glare/internal/cas"
	"glare/internal/cog"
	"glare/internal/deployfile"
	"glare/internal/gram"
	"glare/internal/gridftp"
	"glare/internal/hlc"
	"glare/internal/lease"
	"glare/internal/mds"
	"glare/internal/metrics"
	"glare/internal/replicate"
	"glare/internal/rrd"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/wsrf"
)

// ServiceName is the RDM's transport mount point.
const ServiceName = "GLARE"

// Method selects the deployment mechanics of Table 1.
type Method string

const (
	MethodExpect Method = "expect"
	MethodCoG    Method = "cog"
)

// DeployCosts models the WSRF interaction costs of the deployment phases
// that are not otherwise simulated (remote resource creation, notification
// delivery). Values calibrated against Table 1.
type DeployCosts struct {
	TypeAddition time.Duration // "Activity Type Addition"  (~630-665 ms)
	Registration time.Duration // "Activity Deployment Registration" (~350 ms)
	Notification time.Duration // "Notification" (345 ms)
	ExpectLogin  time.Duration // "Expect Overhead" (2,100 ms)
}

// DefaultDeployCosts matches the Table 1 calibration.
func DefaultDeployCosts() DeployCosts {
	return DeployCosts{
		TypeAddition: 640 * time.Millisecond,
		Registration: 352 * time.Millisecond,
		Notification: 345 * time.Millisecond,
		ExpectLogin:  expectLoginDefault,
	}
}

const expectLoginDefault = 2100 * time.Millisecond

// Config assembles one site's RDM service.
type Config struct {
	Site  *site.Site
	Clock simclock.Clock
	// Client talks to remote services; TLS config must match the VO.
	Client *transport.Client
	// Agent is the super-peer overlay participant for this site.
	Agent *superpeer.Agent
	// LocalIndex is the site's GT4 Default Index (may be the community
	// index on the root site); probed by the Index Monitor.
	LocalIndex *mds.Index
	// GroupSize is the super-peer group size used when this site becomes
	// election coordinator; zero uses the overlay default.
	GroupSize int
	// DeployFiles resolves deploy-file URLs published by providers.
	DeployFiles func(url string) (*deployfile.Build, error)
	// Costs are the modeled WSRF operation costs (Table 1 calibration).
	Costs DeployCosts
	// CacheTTL bounds cached remote resources; zero = cache.DefaultTTL.
	CacheTTL time.Duration
	// StaleFor retains expired cache entries beyond their TTL so
	// resolution can degrade to them when peers are unreachable (breaker
	// open or retries exhausted) instead of failing. Zero uses
	// DefaultStaleFor; negative disables degraded serving.
	StaleFor time.Duration
	// CacheDisabled turns local caching off (the Fig. 12 "without cache"
	// configuration).
	CacheDisabled bool
	// ScanDelayPerEntry models the remote registry container's processing
	// time per scanned deployment entry when answering LocalDeployments.
	// It is a blocking delay, so scans on different (simulated) sites
	// overlap like real machines would; zero disables the model.
	ScanDelayPerEntry time.Duration
	// TransferCost configures the Expect path's direct GridFTP transfers.
	TransferCost gridftp.CostModel
	// CoG configures the JavaCoG deployment path.
	CoG cog.Config
	// Telemetry is the site's observability bundle. Nil creates a private
	// bundle named after the site, so the RDM is always instrumented.
	Telemetry *telemetry.Telemetry
	// Store is the site's durable registry store. When set, its recovered
	// state is replayed into the registries and lease service during
	// assembly and every subsequent mutation is journaled through it. Nil
	// keeps the site memory-only (the pre-durability behaviour).
	Store *store.Store
	// Deploy tunes the deployment execution engine (checkpointing,
	// dedup/queue limits, retry and quarantine); the zero value uses
	// DefaultDeployLimits.
	Deploy DeployLimits
	// DeployHook is called before every build step (fault injection);
	// nil disables injection.
	DeployHook DeployHook
	// History tunes the round-robin telemetry history (sampling step,
	// retention ladder, alert rules, rollup set); the zero value enables
	// it with defaults, Disabled turns it off.
	History HistoryConfig
	// ReplicaK is the registry replication factor: total copies of every
	// ATR/ADR/lease entry, owner included, spread over the site's peer
	// group. Registrations are acknowledged only after a write quorum
	// (⌈(K+1)/2⌉) is durable. Zero or one disables replication (the
	// pre-replication behaviour); needs Agent and Client.
	ReplicaK int
	// CASBudget is the byte budget of the site's content-addressed
	// artifact store (internal/cas). Zero selects cas.DefaultBudget;
	// negative disables the CAS entirely (every transfer goes to origin,
	// the pre-artifact-grid behaviour).
	CASBudget int64
	// SkewAlarm is the clock-disagreement bound beyond which an observed
	// peer offset (sender HLC stamp vs this site's physical clock) raises
	// the skew alarm (glare_clock_skew_detected_total). Zero uses
	// DefaultSkewAlarm; negative disables the alarm.
	SkewAlarm time.Duration
}

// DefaultSkewAlarm is the default clock-disagreement alarm bound: wide
// enough to absorb network latency between stamp and observation, far
// tighter than the multi-minute skews operators must hear about.
const DefaultSkewAlarm = 10 * time.Second

// Service is one site's GLARE RDM.
type Service struct {
	site   *site.Site
	clock  simclock.Clock
	client *transport.Client
	// hlc is the site's hybrid logical clock: the source of every ordering
	// stamp (registry LastUpdateTimes, replication mutations, blob location
	// notes), merged with peer stamps piggybacked on the wire so newest-wins
	// comparisons survive wall-clock skew. Expiry decisions stay on clock.
	hlc *hlc.Clock

	ATR    *atr.Registry
	ADR    *adr.Registry
	Leases *lease.Service
	Jobs   *gram.Manager
	FTP    *gridftp.Client

	agent      *superpeer.Agent
	localIndex *mds.Index
	groupSize  int
	scanDelay  time.Duration
	broker     *wsrf.Broker

	typeCache *cache.Cache
	depCache  *cache.Cache
	cacheOff  bool

	// degraded counts resolutions that ran with part of the VO
	// unreachable (the result set may be incomplete or stale).
	degraded *telemetry.Counter
	// syncPulled counts registry entries pulled by anti-entropy passes
	// (glare_sync_entries_pulled_total).
	syncPulled *telemetry.Counter
	// skewDetected counts peer stamps that disagreed with this site's
	// physical clock beyond the alarm bound
	// (glare_clock_skew_detected_total).
	skewDetected *telemetry.Counter

	deployFiles func(url string) (*deployfile.Build, error)
	costs       DeployCosts
	cogCfg      cog.Config

	// Load is the request-manager run-queue tracker (Fig. 13); its queue
	// depth doubles as the glare_rdm_run_queue gauge on /metrics.
	Load *metrics.LoadTracker

	tel   *telemetry.Telemetry
	store *store.Store
	// repl is the quorum replicator (replication.go); nil when off.
	repl *replicate.Replicator

	// Telemetry history state (history.go).
	historyCfg     HistoryConfig
	history        *rrd.Store
	alerts         *rrd.Alerts
	historyJournal historyJournal
	historySamples *telemetry.Counter
	rollupPoints   *telemetry.Counter

	// Deployment execution engine state (deployrun.go).
	limits        DeployLimits
	deployHook    DeployHook
	gate          *buildGate
	deployJournal deployJournal
	deployTel     deployCounters

	// Content-addressed artifact store state (artifacts.go).
	cas        *cas.Store
	casLoc     *artifactLocations
	casJournal casJournal
	casTel     casCounters
	casMu      sync.Mutex
	casFlight  map[cas.Key]*casPull

	mu             sync.Mutex
	inflight       map[string]*buildCall         // in-flight builds by type
	resume         map[string][]store.DeployStep // checkpointed steps by type
	quarantined    map[string]*quarState         // failing types in cool-down
	buildRoots     map[string][]string           // directory roots owned by in-flight builds
	coordinatedFor int                           // community size the last election covered
	stop           chan struct{}
	stopOnce       sync.Once
}

// DefaultStaleFor is how long expired cache entries stay reachable for
// degraded resolution after their TTL.
const DefaultStaleFor = 30 * time.Minute

// New assembles the service (does not start background monitors; call
// StartMonitors for that).
func New(cfg Config) (*Service, error) {
	if cfg.Site == nil {
		return nil, fmt.Errorf("rdm: config needs a site")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real
	}
	if cfg.Costs == (DeployCosts{}) {
		cfg.Costs = DefaultDeployCosts()
	}
	broker := wsrf.NewBroker(clock)
	hybrid := hlc.New(cfg.Site.Attrs.Name, clock)
	var agentSelf superpeer.SiteInfo
	if cfg.Agent != nil {
		agentSelf = cfg.Agent.Self()
	}
	atrURL := agentSelf.ServiceURL(atr.ServiceName)
	adrURL := agentSelf.ServiceURL(adr.ServiceName)
	typesReg := atr.New(atrURL, clock, broker)
	depsReg := adr.New(adrURL, typesReg, clock, broker)
	ftp := gridftp.NewClient(clock, cfg.Site.Repo, cfg.TransferCost)
	ftp.Attach(cfg.Site)
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(cfg.Site.Attrs.Name)
	}
	// Trace-span wall timestamps follow the site's injected clock (skew and
	// all); span durations stay real-time measurements.
	tel.SetClock(clock.Now)
	s := &Service{
		site:        cfg.Site,
		clock:       clock,
		client:      cfg.Client,
		hlc:         hybrid,
		ATR:         typesReg,
		ADR:         depsReg,
		Leases:      lease.NewService(clock),
		Jobs:        gram.NewManager(cfg.Site, clock),
		FTP:         ftp,
		agent:       cfg.Agent,
		localIndex:  cfg.LocalIndex,
		groupSize:   cfg.GroupSize,
		scanDelay:   cfg.ScanDelayPerEntry,
		broker:      broker,
		typeCache:   cache.New(clock, cfg.CacheTTL),
		depCache:    cache.New(clock, cfg.CacheTTL),
		cacheOff:    cfg.CacheDisabled,
		deployFiles: cfg.DeployFiles,
		costs:       cfg.Costs,
		cogCfg:      cfg.CoG,
		Load: metrics.NewLoadTrackerOn(tel.Gauge("glare_rdm_run_queue"),
			5*time.Second, time.Minute),
		tel:         tel,
		limits:      cfg.Deploy.withDefaults(),
		deployHook:  cfg.DeployHook,
		inflight:    make(map[string]*buildCall),
		resume:      make(map[string][]store.DeployStep),
		quarantined: make(map[string]*quarState),
		buildRoots:  make(map[string][]string),
		stop:        make(chan struct{}),
	}
	s.gate = newBuildGate(s.limits.MaxConcurrent, s.limits.QueueDepth)
	s.deployTel = newDeployCounters(tel)
	// Wire the site's observability bundle through every component the RDM
	// assembles, so one /metrics page covers the whole stack.
	s.ATR.SetTelemetry(tel)
	s.ADR.SetTelemetry(tel)
	// Ordering stamps come from the hybrid logical clock: a registration
	// accepted after any message exchange orders after every stamp that
	// message carried, however skewed this site's wall clock is. Expiry
	// sweeps and lease validity stay on the site's physical clock.
	s.ATR.SetStamp(hybrid.Now)
	s.ADR.SetStamp(hybrid.Now)
	if cfg.Agent != nil {
		cfg.Agent.SetTelemetry(tel)
	}
	s.typeCache.Instrument(
		tel.Counter("glare_rdm_cache_hits_total", telemetry.L("cache", "types")),
		tel.Counter("glare_rdm_cache_misses_total", telemetry.L("cache", "types")),
		tel.Counter("glare_rdm_cache_revived_total", telemetry.L("cache", "types")),
		tel.Counter("glare_rdm_cache_discarded_total", telemetry.L("cache", "types")))
	s.depCache.Instrument(
		tel.Counter("glare_rdm_cache_hits_total", telemetry.L("cache", "deps")),
		tel.Counter("glare_rdm_cache_misses_total", telemetry.L("cache", "deps")),
		tel.Counter("glare_rdm_cache_revived_total", telemetry.L("cache", "deps")),
		tel.Counter("glare_rdm_cache_discarded_total", telemetry.L("cache", "deps")))
	// Stale retention backs graceful degradation: when a peer is down,
	// resolution serves expired entries (marked degraded) instead of
	// failing.
	staleFor := cfg.StaleFor
	if staleFor == 0 {
		staleFor = DefaultStaleFor
	}
	if staleFor > 0 {
		s.typeCache.SetStaleFor(staleFor)
		s.depCache.SetStaleFor(staleFor)
		s.typeCache.InstrumentStale(tel.Counter("glare_rdm_cache_stale_served_total", telemetry.L("cache", "types")))
		s.depCache.InstrumentStale(tel.Counter("glare_rdm_cache_stale_served_total", telemetry.L("cache", "deps")))
	}
	s.degraded = tel.Counter("glare_rdm_resolve_degraded_total")
	s.syncPulled = tel.Counter("glare_sync_entries_pulled_total")
	// Clock-skew surveillance: every envelope exchange lets the HLC compare
	// the sender's stamp against this site's physical clock; disagreements
	// beyond the alarm bound count on glare_clock_skew_detected_total and
	// surface in the overlay's ViewStatus (the `glarectl status` SKEW
	// column). The worst observation per peer is retained for the
	// CheckClockSkew monitor pass.
	s.skewDetected = tel.Counter("glare_clock_skew_detected_total")
	skewAlarm := cfg.SkewAlarm
	if skewAlarm == 0 {
		skewAlarm = DefaultSkewAlarm
	}
	if skewAlarm > 0 {
		hybrid.SetSkewBound(skewAlarm)
		hybrid.OnSkew(func(peer string, offset time.Duration) {
			s.skewDetected.Inc()
		})
	}
	if cfg.Agent != nil {
		cfg.Agent.SetSkewSource(hybrid.MaxPeerOffset)
	}
	// Content-addressed artifact store: assembled before the durable store
	// attaches so recovery can re-offer the blobs the site held. The
	// gridftp tallies feed the same telemetry bundle.
	s.FTP.SetTelemetry(tel)
	if cfg.CASBudget >= 0 {
		// The CAS stamps entry Added times, which double as blob-location
		// LUTs in the anti-entropy digest — ordering fields, so they come
		// from the HLC (which also keeps LRU recency strictly monotonic).
		s.cas = cas.New(hybrid, cfg.CASBudget)
		s.casLoc = newArtifactLocations()
		s.casTel = newCASCounters(tel)
		s.casFlight = make(map[cas.Key]*casPull)
	}
	// Telemetry history: ring archives, alert engine and /healthz digest.
	// Assembled before the store attaches so recovery can re-seed the
	// rings.
	s.historyCfg = cfg.History.withDefaults()
	if !cfg.History.Disabled {
		s.history = rrd.NewStore(s.historyCfg.Step)
		s.alerts = rrd.NewAlerts(s.history, s.historyCfg.Rules)
		s.historySamples = tel.Counter("glare_history_samples_total")
		s.rollupPoints = tel.Counter("glare_history_rollup_points_total")
	}
	tel.SetHealthSource(s.healthSnapshot)
	// Expiry cascade: destroying a type expires its deployments (§3.3).
	s.ATR.OnRemove(func(typeName string) {
		s.ADR.ExpireByType(typeName)
	})
	// Durability last: replay the journal into the assembled registries,
	// then bind the journals so new traffic is logged.
	if cfg.Store != nil {
		s.attachStore(cfg.Store)
	}
	// Replication after durability: the replicator wraps the journals the
	// store just bound, so a mutation is durable locally before it fans out.
	s.setupReplication(cfg)
	return s, nil
}

// Site returns the underlying grid site.
func (s *Service) Site() *site.Site { return s.site }

// Telemetry returns the site's observability bundle (never nil).
func (s *Service) Telemetry() *telemetry.Telemetry { return s.tel }

// Broker returns the notification broker shared by the registries.
func (s *Service) Broker() *wsrf.Broker { return s.broker }

// Agent returns the overlay agent (may be nil in single-site setups).
func (s *Service) Agent() *superpeer.Agent { return s.agent }

// Clock returns the service clock.
func (s *Service) Clock() simclock.Clock { return s.clock }

// HLC returns the site's hybrid logical clock. The transport layer
// piggybacks its stamps on every envelope and merges the stamps it
// receives, so any message exchange bounds inter-site divergence.
func (s *Service) HLC() *hlc.Clock { return s.hlc }

// SetCacheDisabled toggles local caching (Fig. 12 configurations).
func (s *Service) SetCacheDisabled(off bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheOff = off
	if off {
		s.typeCache.Clear()
		s.depCache.Clear()
	}
}

// CacheStats reports the combined type+deployment cache statistics.
func (s *Service) CacheStats() (types, deps cache.Stats) {
	return s.typeCache.Stats(), s.depCache.Stats()
}

// Stop terminates background monitors and flushes/closes the durable
// store, so a clean shutdown loses nothing regardless of fsync policy.
func (s *Service) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		if s.store != nil {
			_ = s.store.Close()
		}
	})
}
