package rdm

import (
	"testing"

	"glare/internal/xmlutil"
)

// TestSampleTelemetryFeedsHistory: one sampler pass walks the metric
// registry into the round-robin store; a re-sample at the same virtual
// instant is a no-op (every series rejects the stale timestamp).
func TestSampleTelemetryFeedsHistory(t *testing.T) {
	s, v := single(t)
	s.tel.Counter("glare_demo_total").Inc()

	n := s.SampleTelemetry()
	if n == 0 {
		t.Fatal("first sample pass recorded nothing")
	}
	for _, want := range []string{"glare_site_services", "glare_demo_total"} {
		if !s.History().Has(want) {
			t.Fatalf("series %q missing after sample; have %v", want, s.History().Names())
		}
	}
	// A same-instant re-sample may seed series that first appeared during
	// the previous pass (the sampler's own bookkeeping counter) but must
	// reject every existing series' stale timestamp; by the third pass
	// nothing is new and nothing is recorded.
	s.SampleTelemetry()
	if again := s.SampleTelemetry(); again != 0 {
		t.Fatalf("same-instant re-sample recorded %d series", again)
	}
	v.Advance(s.historyCfg.Step)
	if n2 := s.SampleTelemetry(); n2 == 0 {
		t.Fatal("sample after clock advance recorded nothing")
	}
}

// TestAlertPreemptsQuarantine: a rising rollback rate trips the default
// deploy-failure-rate rule, which quarantines every type with recorded
// failures before the consecutive-failure threshold would.
func TestAlertPreemptsQuarantine(t *testing.T) {
	s, v := single(t)
	// One recorded failure — far below DeployLimits.QuarantineAfter.
	s.mu.Lock()
	s.quarantined["Wien2k"] = &quarState{fails: 1}
	s.mu.Unlock()

	rollbacks := s.tel.Counter("glare_deploy_rollbacks_total")
	step := s.historyCfg.Step
	s.SampleTelemetry() // seed the counter series (first pdp is unknown)
	for i := 0; i < 3; i++ {
		rollbacks.Inc()
		v.Advance(step)
		s.SampleTelemetry()
	}

	firing := s.FiringAlerts()
	if len(firing) != 1 || firing[0].Rule.Name != "deploy-failure-rate" {
		t.Fatalf("firing = %+v", firing)
	}
	var q []QuarantineInfo
	for _, info := range s.DeployRunStatus().Quarantined {
		q = append(q, info)
	}
	if len(q) != 1 || q[0].Type != "Wien2k" || !q[0].Preempted {
		t.Fatalf("quarantined = %+v", q)
	}
	if q[0].Failures != s.limits.QuarantineAfter {
		t.Fatalf("failures = %d, want the threshold %d",
			q[0].Failures, s.limits.QuarantineAfter)
	}
	// The health digest that /healthz renders sees all of it.
	h := s.healthSnapshot()
	if h.Quarantined != 1 || h.FiringAlerts != 1 {
		t.Fatalf("health = %+v", h)
	}
}

// TestHistoryXportWire: the HistoryXport operation exports ring archives
// for one metric, and the finest form (used by the super-peer rollup)
// returns only closed finest-resolution AVERAGE points.
func TestHistoryXportWire(t *testing.T) {
	s, v := single(t)
	step := s.historyCfg.Step
	for i := 0; i < 4; i++ {
		s.SampleTelemetry()
		v.Advance(step)
	}

	req := xmlutil.NewNode("History")
	req.SetAttr("metric", "glare_site_services")
	resp, err := s.historyXportXML(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "HistoryXport" || resp.AttrOr("site", "") != "solo.uibk" {
		t.Fatalf("envelope = %s site=%q", resp.Name, resp.AttrOr("site", ""))
	}
	series := resp.All("Series")
	if len(series) != 1 || series[0].AttrOr("name", "") != "glare_site_services" {
		t.Fatalf("series = %+v", series)
	}
	if got := len(series[0].All("Archive")); got != len(s.historyCfg.Archives) {
		t.Fatalf("archives = %d, want %d", got, len(s.historyCfg.Archives))
	}

	fine := xmlutil.NewNode("History")
	fine.SetAttr("metric", "glare_site_services")
	fine.SetAttr("finest", "true")
	fine.SetAttr("sinceNs", "0")
	resp, err = s.historyXportXML(fine)
	if err != nil {
		t.Fatal(err)
	}
	archives := resp.All("Series")[0].All("Archive")
	if len(archives) != 1 || archives[0].AttrOr("cf", "") != "AVERAGE" {
		t.Fatalf("finest archives = %+v", archives)
	}
	points := archives[0].All("P")
	if len(points) == 0 {
		t.Fatal("finest export has no points")
	}
	for _, p := range points {
		if p.AttrOr("live", "") == "true" {
			t.Fatalf("finest export leaked a live point: %+v", p)
		}
	}
}
