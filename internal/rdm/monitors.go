package rdm

import (
	"context"
	"fmt"
	"strings"
	"time"

	"glare/internal/activity"
	"glare/internal/epr"
	"glare/internal/mds"
	"glare/internal/superpeer"
	"glare/internal/xmlutil"
)

// MonitorIntervals configures the background components.
type MonitorIntervals struct {
	CacheRefresh time.Duration
	IndexProbe   time.Duration
	StatusCheck  time.Duration
	PeerLiveness time.Duration
	// RegistrySync paces the anti-entropy reconciler (SyncRegistries);
	// only super-peers act on it.
	RegistrySync time.Duration
	// HistorySample paces the telemetry-history sampler (SampleTelemetry),
	// which also evaluates the alert rules.
	HistorySample time.Duration
	// HistoryRollup paces the grid-wide series consolidation
	// (RollupHistory); only super-peers act on it.
	HistoryRollup time.Duration
	// ReplicaCheck paces replica failure detection and promotion
	// (CheckReplicas); only super-peers act on it. Failover completes
	// within replSuspicionThreshold of these intervals plus one
	// promotion round-trip.
	ReplicaCheck time.Duration
	// ReplicaRepair paces read repair and promoted-data hand-off
	// (RepairReplicas); every replicating site acts on it.
	ReplicaRepair time.Duration
	// ClockSkew paces the clock-skew gauge refresh (CheckClockSkew); every
	// site acts on it.
	ClockSkew time.Duration
}

// DefaultIntervals suits interactive use; tests call the single-pass
// methods directly for determinism.
func DefaultIntervals() MonitorIntervals {
	return MonitorIntervals{
		CacheRefresh:  5 * time.Second,
		IndexProbe:    3 * time.Second,
		StatusCheck:   5 * time.Second,
		PeerLiveness:  2 * time.Second,
		RegistrySync:  5 * time.Second,
		HistorySample: 2 * time.Second,
		HistoryRollup: 5 * time.Second,
		ReplicaCheck:  2 * time.Second,
		ReplicaRepair: 5 * time.Second,
		ClockSkew:     5 * time.Second,
	}
}

// StartMonitors launches the Cache Refresher, Index Monitor, Deployment
// Status Monitor and super-peer liveness checks until Stop is called.
// Intervals are real time.
func (s *Service) StartMonitors(iv MonitorIntervals) {
	if iv.CacheRefresh > 0 {
		go s.loop(iv.CacheRefresh, func() { s.RefreshCaches() })
	}
	if iv.IndexProbe > 0 {
		go s.loop(iv.IndexProbe, func() { s.CheckIndex() })
	}
	if iv.StatusCheck > 0 {
		go s.loop(iv.StatusCheck, func() { s.CheckDeployments() })
	}
	if iv.PeerLiveness > 0 && s.agent != nil {
		s.agent.StartMonitor(iv.PeerLiveness, s.stop)
	}
	if iv.RegistrySync > 0 && s.agent != nil {
		go s.loop(iv.RegistrySync, func() {
			if s.agent.IsSuperPeer() {
				s.SyncRegistries()
			}
		})
	}
	if iv.HistorySample > 0 && s.history != nil {
		go s.loop(iv.HistorySample, func() { s.SampleTelemetry() })
	}
	if iv.HistoryRollup > 0 && s.history != nil && s.agent != nil {
		go s.loop(iv.HistoryRollup, func() {
			if s.agent.IsSuperPeer() {
				s.RollupHistory()
			}
		})
	}
	if iv.ReplicaCheck > 0 && s.repl != nil && s.agent != nil {
		go s.loop(iv.ReplicaCheck, func() {
			if s.agent.IsSuperPeer() {
				s.CheckReplicas()
			}
		})
	}
	if iv.ReplicaRepair > 0 && s.repl != nil {
		go s.loop(iv.ReplicaRepair, func() { s.RepairReplicas() })
	}
	if iv.ClockSkew > 0 {
		go s.loop(iv.ClockSkew, func() { s.CheckClockSkew() })
	}
}

func (s *Service) loop(interval time.Duration, fn func()) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			fn()
		}
	}
}

// RefreshCaches is one Cache Refresher pass: cached deployments and types
// whose source LastUpdateTime changed are revived; entries whose source is
// gone are discarded. Index-style entries (merged lists) age out by TTL.
// Each pass runs under its own trace span, so the LUT probes it issues
// carry a correlation ID to the source sites.
func (s *Service) RefreshCaches() (revived, discarded int) {
	sp := s.tel.StartSpan("rdm.RefreshCaches", nil)
	probe := func(key string, source epr.EPR) (time.Time, error) {
		switch {
		case strings.HasPrefix(key, "dep:"), strings.HasPrefix(key, "type:"):
			return s.probeLUT(context.Background(), sp, source.Address, source.Key)
		default:
			// Merged lists have no single source; leave them to TTL.
			return source.LastUpdateTime, nil
		}
	}
	resolve := func(key string, source epr.EPR) (epr.EPR, *xmlutil.Node, error) {
		op := "Get"
		if strings.HasPrefix(key, "type:") {
			op = "GetType"
		}
		resp, err := s.call(context.Background(), sp, source.Address, op, xmlutil.NewNode("Name", source.Key))
		if err != nil {
			return epr.EPR{}, nil, err
		}
		lut, err := s.probeLUT(context.Background(), sp, source.Address, source.Key)
		if err != nil {
			return epr.EPR{}, nil, err
		}
		fresh := source
		fresh.LastUpdateTime = lut
		return fresh, resp, nil
	}
	r1, d1 := s.depCache.Refresh(probe, resolve)
	r2, d2 := s.typeCache.Refresh(probe, resolve)
	revived, discarded = r1+r2, d1+d2
	sp.SetNote(fmt.Sprintf("revived=%d discarded=%d", revived, discarded))
	sp.End(nil)
	return revived, discarded
}

// CheckIndex is one Index Monitor pass: "It periodically probes the GT4
// Default Index to see whether it is a community index or local index. A
// GLARE service on a site with [the] community index becomes super-peer
// election coordinator and notifies all other Grid sites registered in the
// community."
func (s *Service) CheckIndex() error {
	if s.localIndex == nil || s.agent == nil {
		return nil
	}
	if s.localIndex.Kind() != mds.CommunityIndex {
		return nil
	}
	sites := s.CommunitySites()
	if len(sites) == 0 {
		return nil
	}
	// Coordinate once per community composition: a new site joining the
	// community index triggers a fresh election round that folds it into
	// the groups.
	s.mu.Lock()
	if len(sites) == s.coordinatedFor {
		s.mu.Unlock()
		return nil
	}
	s.coordinatedFor = len(sites)
	s.mu.Unlock()

	_, err := s.agent.Coordinate(sites, superpeer.CoordinatorConfig{GroupSize: s.groupSize})
	if err != nil {
		s.mu.Lock()
		s.coordinatedFor = 0
		s.mu.Unlock()
	}
	return err
}

// CommunitySites extracts the registered Grid sites from the community
// index's aggregated document.
func (s *Service) CommunitySites() []superpeer.SiteInfo {
	if s.localIndex == nil {
		return nil
	}
	res, err := s.localIndex.QueryString("//Site")
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []superpeer.SiteInfo
	for _, n := range res.Nodes {
		info, err := superpeer.SiteInfoFromXML(n)
		if err != nil || seen[info.Name] {
			continue
		}
		seen[info.Name] = true
		out = append(out, info)
	}
	return out
}

// CheckDeployments is one Deployment Status Monitor pass: verify every
// locally registered deployment still exists on the site (executable
// present, service hosted), refresh its LastUpdateTime, sweep expired
// resources, and restore any type that dropped below its provider-declared
// deployment floor. Vanished deployments are unregistered and reported.
func (s *Service) CheckDeployments() (alive int, removed []string) {
	s.ATR.SweepExpired()
	s.ADR.SweepExpired()
	s.sweepQuarantine()
	for _, d := range s.ADR.All() {
		ok := true
		switch d.Kind {
		case activity.KindExecutable:
			e := s.site.FS.Stat(d.Path)
			ok = e != nil
		case activity.KindService:
			ok = s.site.HasService(d.Name)
		}
		if !ok {
			s.ADR.Remove(d.Name)
			removed = append(removed, d.Name)
			continue
		}
		alive++
		// Touch the resource: its LUT drives cache revival elsewhere.
		_ = s.ADR.UpdateMetrics(d.Name, d.Metrics)
	}
	s.EnforceDeploymentFloor()
	s.tel.Gauge("glare_rdm_deployments_alive").Set(int64(alive))
	return alive, removed
}

// CheckClockSkew is one clock-surveillance pass: publish the worst clock
// offset this site has observed against any peer (sender HLC stamps vs the
// local physical clock, signed — positive means that peer's stamps run
// ahead of us) and the HLC's logical-counter watermark. A large offset
// means real skew somewhere (here or there); a climbing logical counter
// means the HLC is absorbing stamps from a clock ahead of ours. Returns
// the worst-offset peer and its offset.
func (s *Service) CheckClockSkew() (peer string, offset time.Duration) {
	peer, offset = s.hlc.MaxPeerOffset()
	s.tel.Gauge("glare_clock_offset_ms").Set(offset.Milliseconds())
	s.tel.Gauge("glare_clock_hlc_logical").Set(int64(s.hlc.Logical()))
	return peer, offset
}

// EnforceDeploymentFloor reinstalls types that fell below their provider's
// MinDeployments bound ("a provider can also specify minimum and maximum
// limits of deployments of an activity and the GLARE system ensures to
// fulfil the implied constraints", §3.3). Only types this site is marked
// deployed-on are restored here, so exactly one site heals each gap.
// It returns the names of the types redeployed.
func (s *Service) EnforceDeploymentFloor() []string {
	var restored []string
	for _, t := range s.ATR.Types() {
		if t.MinDeployments <= 0 || t.Abstract || t.Installation == nil ||
			t.Installation.Mode != activity.ModeOnDemand {
			continue
		}
		deployedHere := false
		for _, site := range s.ATR.DeployedOn(t.Name) {
			if site == s.site.Attrs.Name {
				deployedHere = true
			}
		}
		if !deployedHere {
			continue
		}
		if len(s.ATR.DeploymentRefs(t.Name)) >= t.MinDeployments {
			continue
		}
		if _, err := s.DeployLocal(t, MethodExpect); err == nil {
			restored = append(restored, t.Name)
		}
	}
	return restored
}
