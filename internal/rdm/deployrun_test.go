package rdm

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"glare/internal/faultinject"
	"glare/internal/gridftp"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/transport"
	"glare/internal/workload"
)

// deployEngine builds a standalone durable RDM with a chaos injector wired
// into the deployment execution engine. hookCalls counts step-hook fires,
// i.e. how many build steps actually started executing.
type deployEngine struct {
	svc       *Service
	chaos     *faultinject.DeployChaos
	resolver  *workload.Resolver
	hookCalls atomic.Int64
}

func newDeployEngine(t testing.TB, dir string, v *simclock.Virtual, limits DeployLimits) *deployEngine {
	t.Helper()
	st := site.New(site.Attributes{
		Name: "solo.uibk", ProcessorMHz: 1500, MemoryMB: 2048,
		Platform: "Intel", OS: "Linux", Arch: "32bit",
	}, v, site.StandardUniverse())
	resolver := workload.NewResolver(st.Repo)
	durable, err := store.Open(store.Options{Dir: dir, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	e := &deployEngine{chaos: faultinject.NewDeployChaos(), resolver: resolver}
	svc, err := New(Config{
		Site:        st,
		Clock:       v,
		DeployFiles: resolver.Fetch,
		Store:       durable,
		Deploy:      limits,
		DeployHook: func(ctx context.Context, typeName, stepName string) error {
			e.hookCalls.Add(1)
			return e.chaos.Step(ctx, typeName, stepName)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	e.svc = svc
	return e
}

func registerEvaluation(t testing.TB, s *Service) {
	t.Helper()
	for _, ty := range workload.EvaluationTypes() {
		if _, err := s.RegisterType(ty); err != nil {
			t.Fatal(err)
		}
	}
}

// buildOutcome is the externally observable result of an installation: the
// registered deployments and the complete site filesystem.
type buildOutcome struct {
	deployments []string
	fs          map[string]site.File
}

func outcomeOf(s *Service) buildOutcome {
	var deps []string
	for _, d := range s.ADR.All() {
		deps = append(deps, fmt.Sprintf("%s|%v|%s|%s", d.Name, d.Kind, d.Path, d.Home))
	}
	sort.Strings(deps)
	return buildOutcome{deployments: deps, fs: s.site.FS.Entries()}
}

func wien2kSteps(t testing.TB) []string {
	t.Helper()
	repo := site.StandardUniverse()
	a, ok := repo.ByName("Wien2k")
	if !ok {
		t.Fatal("no Wien2k artifact in the standard universe")
	}
	b := workload.SynthesizeBuild(a)
	names := make([]string, len(b.Steps))
	for i, s := range b.Steps {
		names[i] = s.Name
	}
	return names
}

// TestDeployResumeAfterCrashProperty is the resume property test: crashing
// the site daemon at EVERY step boundary and restarting must produce
// exactly the same registered deployments and on-disk tree as a build that
// was never interrupted — and already-verified downloads must not be
// transferred again.
func TestDeployResumeAfterCrashProperty(t *testing.T) {
	steps := wien2kSteps(t)
	if len(steps) < 4 {
		t.Fatalf("Wien2k pipeline too short to exercise resume: %v", steps)
	}

	// Reference: one uninterrupted build.
	refClock := simclock.NewVirtual(time.Time{})
	ref := newDeployEngine(t, t.TempDir(), refClock, DeployLimits{})
	registerEvaluation(t, ref.svc)
	if _, err := ref.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
		t.Fatal(err)
	}
	want := outcomeOf(ref.svc)
	if len(want.deployments) == 0 {
		t.Fatal("reference build registered no deployments")
	}

	downloadIndex := -1
	for i, name := range steps {
		if name == "Download" {
			downloadIndex = i
		}
	}
	if downloadIndex < 0 {
		t.Fatalf("no Download step in %v", steps)
	}

	for i, stepName := range steps {
		t.Run(fmt.Sprintf("crash-at-%02d-%s", i, stepName), func(t *testing.T) {
			dir := t.TempDir()
			v := simclock.NewVirtual(time.Time{})

			// First life: the daemon dies right before executing step i.
			e1 := newDeployEngine(t, dir, v, DeployLimits{})
			registerEvaluation(t, e1.svc)
			e1.chaos.CrashStep("Wien2k", stepName)
			_, err := e1.svc.DeployOnDemand("Wien2k", MethodExpect)
			if err == nil {
				t.Fatal("crashed build reported success")
			}
			var bc interface{ BuildCrash() bool }
			if !errors.As(err, &bc) || !bc.BuildCrash() {
				t.Fatalf("crash surfaced as %v, want a BuildCrash fault", err)
			}
			e1.svc.Stop()

			// Second life: fresh process, fresh (memory-only) filesystem,
			// same journal. No chaos armed.
			e2 := newDeployEngine(t, dir, v, DeployLimits{})
			st := e2.svc.DeployRunStatus()
			if i == 0 {
				if len(st.Resumable) != 0 {
					t.Fatalf("crash before any step left resumable builds: %+v", st.Resumable)
				}
			} else {
				if len(st.Resumable) != 1 || st.Resumable[0].Type != "Wien2k" || st.Resumable[0].Steps != i {
					t.Fatalf("resumable after restart = %+v, want Wien2k with %d steps", st.Resumable, i)
				}
			}
			if _, err := e2.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
				t.Fatalf("resumed build failed: %v", err)
			}

			got := outcomeOf(e2.svc)
			if !reflect.DeepEqual(got.deployments, want.deployments) {
				t.Fatalf("deployments after resume = %v, want %v", got.deployments, want.deployments)
			}
			if !reflect.DeepEqual(got.fs, want.fs) {
				t.Fatalf("filesystem after resume diverged from uninterrupted build:\n got %d entries\nwant %d entries",
					len(got.fs), len(want.fs))
			}

			skipped := e2.svc.deployTel.stepsSkipped.Value()
			resumes := e2.svc.deployTel.resumes.Value()
			if skipped != uint64(i) {
				t.Fatalf("glare_deploy_steps_skipped_total = %d, want %d", skipped, i)
			}
			wantResumes := uint64(0)
			if i > 0 {
				wantResumes = 1
			}
			if resumes != wantResumes {
				t.Fatalf("glare_deploy_resumes_total = %d, want %d", resumes, wantResumes)
			}
			// A checkpointed, md5-verified download must never re-transfer.
			transfers, _ := e2.svc.FTP.Stats()
			wantTransfers := 1
			if i > downloadIndex {
				wantTransfers = 0
			}
			if transfers != wantTransfers {
				t.Fatalf("resumed build made %d transfer(s), want %d", transfers, wantTransfers)
			}

			// Success clears the checkpoints — also in the journal, so a
			// third life has nothing left to resume.
			if st := e2.svc.DeployRunStatus(); len(st.Resumable) != 0 {
				t.Fatalf("checkpoints survived a completed build: %+v", st.Resumable)
			}
			if i == len(steps)-1 {
				e2.svc.Stop()
				e3 := newDeployEngine(t, dir, v, DeployLimits{})
				if st := e3.svc.DeployRunStatus(); len(st.Resumable) != 0 {
					t.Fatalf("journal still resumable after completed build: %+v", st.Resumable)
				}
				if got := outcomeOf(e3.svc); !reflect.DeepEqual(got.deployments, want.deployments) {
					t.Fatalf("third life lost deployments: %v", got.deployments)
				}
			}
		})
	}
}

// TestDeployRollbackOnTerminalFailure proves a build that fails for good
// leaves no trace: created files, services and bookkeeping are undone and
// nothing is left to resume.
func TestDeployRollbackOnTerminalFailure(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	e := newDeployEngine(t, t.TempDir(), v, DeployLimits{})
	registerEvaluation(t, e.svc)
	before := e.svc.site.FS.Entries()

	// A non-transfer step's failure is terminal (retry covers transfers
	// only), so the partial install must be rolled back.
	e.chaos.FailStep("Wien2k", "Configure", 1)
	if _, err := e.svc.DeployOnDemand("Wien2k", MethodExpect); err == nil {
		t.Fatal("failed build reported success")
	}

	after := e.svc.site.FS.Entries()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rollback left filesystem residue: before=%d entries, after=%d entries",
			len(before), len(after))
	}
	if deps := e.svc.ADR.All(); len(deps) != 0 {
		t.Fatalf("rollback left %d registered deployment(s)", len(deps))
	}
	if st := e.svc.DeployRunStatus(); len(st.Resumable) != 0 {
		t.Fatalf("terminal failure left resumable checkpoints: %+v", st.Resumable)
	}
	if got := e.svc.deployTel.rollbacks.Value(); got != 1 {
		t.Fatalf("glare_deploy_rollbacks_total = %d, want 1", got)
	}

	// The build is clean to retry: without the fault it succeeds.
	e.chaos.Clear()
	if _, err := e.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
		t.Fatal(err)
	}
}

// TestDeployDedupConcurrent proves two simultaneous requests for the same
// type run ONE build: the follower shares the leader's report and the
// archive is downloaded exactly once.
func TestDeployDedupConcurrent(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	e := newDeployEngine(t, t.TempDir(), v, DeployLimits{})
	registerEvaluation(t, e.svc)

	// Stretch the build in real time so the duplicate truly overlaps.
	e.chaos.DelayStep("Wien2k", "Expand", 150*time.Millisecond)

	var wg sync.WaitGroup
	reports := make([]*DeployReport, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				time.Sleep(30 * time.Millisecond) // let the leader start
			}
			reports[i], errs[i] = e.svc.DeployOnDemand("Wien2k", MethodExpect)
		}(i)
	}
	wg.Wait()

	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if reports[i] == nil || reports[i].Type != "Wien2k" || len(reports[i].Deployments) == 0 {
			t.Fatalf("request %d got report %+v", i, reports[i])
		}
	}
	if got := e.svc.deployTel.dedupHits.Value(); got != 1 {
		t.Fatalf("glare_deploy_dedup_hits_total = %d, want 1", got)
	}
	if transfers, _ := e.svc.FTP.Stats(); transfers != 1 {
		t.Fatalf("duplicate requests made %d transfers, want 1", transfers)
	}
}

// TestDeployQueueShed proves admission control: with one build slot and no
// queue, a second concurrent build of a different type is shed with
// transport.Unavailable instead of piling up.
func TestDeployQueueShed(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	e := newDeployEngine(t, t.TempDir(), v, DeployLimits{
		MaxConcurrent: 1,
		QueueDepth:    -1, // no waiting at all
	})
	registerEvaluation(t, e.svc)

	e.chaos.DelayStep("Wien2k", "Init", 300*time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := e.svc.DeployOnDemand("Wien2k", MethodExpect)
		done <- err
	}()
	time.Sleep(60 * time.Millisecond) // leader holds the only slot

	_, err := e.svc.DeployOnDemand("Invmod", MethodExpect)
	if !transport.IsUnavailable(err) {
		t.Fatalf("overflow build got %v, want transport.Unavailable", err)
	}
	if !strings.Contains(err.Error(), "deploy-queue-full") {
		t.Fatalf("shed reason missing from %v", err)
	}
	if got := e.svc.deployTel.queueShed.Value(); got != 1 {
		t.Fatalf("glare_deploy_queue_shed_total = %d, want 1", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("leader build failed: %v", err)
	}
	// With the slot free again the shed type deploys fine.
	if _, err := e.svc.DeployOnDemand("Invmod", MethodExpect); err != nil {
		t.Fatal(err)
	}
}

// TestDeployTransferRetry proves transient download faults are absorbed by
// per-step retry with backoff instead of failing the build.
func TestDeployTransferRetry(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	e := newDeployEngine(t, t.TempDir(), v, DeployLimits{
		Retry: transport.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Multiplier: 2},
	})
	registerEvaluation(t, e.svc)

	e.chaos.FailStep("Wien2k", "Download", 2)
	if _, err := e.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
		t.Fatalf("build with 2 transient transfer faults failed: %v", err)
	}
	if got := e.svc.deployTel.stepRetries.Value(); got != 2 {
		t.Fatalf("glare_deploy_step_retries_total = %d, want 2", got)
	}

	// A third consecutive fault exhausts MaxAttempts and the build fails.
	e2 := newDeployEngine(t, t.TempDir(), simclock.NewVirtual(time.Time{}), DeployLimits{
		Retry: transport.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, Multiplier: 2},
	})
	registerEvaluation(t, e2.svc)
	e2.chaos.FailStep("Wien2k", "Download", 5)
	if _, err := e2.svc.DeployOnDemand("Wien2k", MethodExpect); err == nil {
		t.Fatal("build survived more faults than retry attempts")
	}
}

// TestDeployHungStepWatchdog proves a step that stops responding is killed
// at its timeout plus grace, and the partial install is rolled back.
func TestDeployHungStepWatchdog(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	e := newDeployEngine(t, t.TempDir(), v, DeployLimits{StepGrace: 50 * time.Millisecond})
	registerEvaluation(t, e.svc)

	// Shrink the deploy-file's step timeouts: the watchdog runs in real
	// time and the stock 2-minute default would stall the test.
	b, err := e.resolver.Fetch(workload.DeployFileURL("Wien2k"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Steps {
		b.Steps[i].Timeout = 50 * time.Millisecond
	}
	e.chaos.HangStep("Wien2k", "Configure", 1)

	start := time.Now()
	_, derr := e.svc.DeployOnDemand("Wien2k", MethodExpect)
	elapsed := time.Since(start)
	if derr == nil {
		t.Fatal("hung build reported success")
	}
	if !strings.Contains(derr.Error(), "deadline") && !strings.Contains(derr.Error(), "killed") &&
		!strings.Contains(derr.Error(), "hung") {
		t.Fatalf("hung step surfaced as %v, want a watchdog kill", derr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to kill a 100ms-budget step", elapsed)
	}
	if got := e.svc.deployTel.rollbacks.Value(); got != 1 {
		t.Fatalf("glare_deploy_rollbacks_total = %d, want 1", got)
	}
}

// TestDeployQuarantineLifecycle walks the full quarantine arc: repeated
// failures arm it, requests during cool-down are refused without touching
// the site, the cool-down lapse admits one probe, and a success clears the
// streak.
func TestDeployQuarantineLifecycle(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	e := newDeployEngine(t, t.TempDir(), v, DeployLimits{
		QuarantineAfter:    3,
		QuarantineCooldown: time.Minute,
	})
	registerEvaluation(t, e.svc)

	e.chaos.FailStep("Wien2k", "Expand", 100)
	for i := 0; i < 3; i++ {
		if _, err := e.svc.DeployOnDemand("Wien2k", MethodExpect); err == nil {
			t.Fatalf("attempt %d succeeded despite injected fault", i+1)
		}
	}
	if got := e.svc.deployTel.quarantined.Value(); got != 1 {
		t.Fatalf("glare_deploy_quarantined_total = %d, want 1", got)
	}

	// Inside the cool-down the type is refused outright: no build step
	// may even start.
	hooks := e.hookCalls.Load()
	_, err := e.svc.DeployOnDemand("Wien2k", MethodExpect)
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("deploy during cool-down got %v, want quarantine refusal", err)
	}
	if e.hookCalls.Load() != hooks {
		t.Fatal("quarantined deploy still executed build steps")
	}

	st := e.svc.DeployRunStatus()
	if len(st.Quarantined) != 1 || st.Quarantined[0].Type != "Wien2k" ||
		st.Quarantined[0].Failures != 3 || st.Quarantined[0].Remaining <= 0 {
		t.Fatalf("quarantine status = %+v", st.Quarantined)
	}
	// The admin surface carries it too.
	xml := e.svc.DeployStatusXML().String()
	if !strings.Contains(xml, "Quarantined") || !strings.Contains(xml, "Wien2k") {
		t.Fatalf("DeployStatus XML misses the quarantine: %s", xml)
	}

	// Cool-down over: one probe goes through; with the fault gone it
	// succeeds and clears the streak.
	v.Advance(2 * time.Minute)
	e.chaos.Clear()
	if _, err := e.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
		t.Fatalf("probe build after cool-down failed: %v", err)
	}
	if st := e.svc.DeployRunStatus(); len(st.Quarantined) != 0 {
		t.Fatalf("success did not clear the quarantine: %+v", st.Quarantined)
	}
}

// TestRetryableStepClassification pins the engine's error taxonomy: torn
// transfers and transient faults retry, everything else is terminal.
func TestRetryableStepClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&gridftp.ChecksumError{}, true},
		{fmt.Errorf("wrapped: %w", &gridftp.ChecksumError{}), true},
		{&faultinject.BuildFault{Mode: faultinject.BuildFail}, true},
		{&faultinject.BuildFault{Mode: faultinject.BuildCrash}, false},
		{&transport.Unavailable{Address: "x", Operation: "op"}, true},
		{errors.New("no such archive"), false},
		{fmt.Errorf("step Deploy: %w", errors.New("ant: build.xml missing")), false},
	}
	for i, c := range cases {
		if got := retryableStep(c.err); got != c.want {
			t.Errorf("case %d (%v): retryableStep = %v, want %v", i, c.err, got, c.want)
		}
	}
	if !isBuildCrash(&faultinject.BuildFault{Mode: faultinject.BuildCrash}) {
		t.Error("BuildCrash fault not recognized as crash")
	}
	if isBuildCrash(&faultinject.BuildFault{Mode: faultinject.BuildFail}) {
		t.Error("transient fault misclassified as crash")
	}
}

// TestRetryDelayBackoff pins the deterministic (jitter-free) backoff curve.
func TestRetryDelayBackoff(t *testing.T) {
	p := transport.RetryPolicy{BaseDelay: 10 * time.Millisecond, Multiplier: 2, MaxDelay: 35 * time.Millisecond}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for i, w := range want {
		if got := retryDelay(p, i+1); got != w {
			t.Errorf("retryDelay(attempt=%d) = %v, want %v", i+1, got, w)
		}
	}
}

// BenchmarkDeployCold measures a from-scratch Wien2k installation;
// steps/build counts executed pipeline steps.
func BenchmarkDeployCold(b *testing.B) {
	steps := len(wien2kSteps(b))
	for i := 0; i < b.N; i++ {
		v := simclock.NewVirtual(time.Time{})
		e := newDeployEngine(b, b.TempDir(), v, DeployLimits{})
		registerEvaluation(b, e.svc)
		if _, err := e.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
			b.Fatal(err)
		}
		if skipped := e.svc.deployTel.stepsSkipped.Value(); skipped != 0 {
			b.Fatalf("cold build skipped %d steps", skipped)
		}
		e.svc.Stop()
	}
	b.ReportMetric(float64(steps), "steps/build")
	b.ReportMetric(0, "skipped/build")
}

// BenchmarkDeployResumed measures resuming a build that crashed at its
// last step: all checkpointed steps replay, only the tail executes.
func BenchmarkDeployResumed(b *testing.B) {
	steps := wien2kSteps(b)
	last := steps[len(steps)-1]
	var skipped uint64
	for i := 0; i < b.N; i++ {
		v := simclock.NewVirtual(time.Time{})
		dir := b.TempDir()

		b.StopTimer()
		e1 := newDeployEngine(b, dir, v, DeployLimits{})
		registerEvaluation(b, e1.svc)
		e1.chaos.CrashStep("Wien2k", last)
		if _, err := e1.svc.DeployOnDemand("Wien2k", MethodExpect); err == nil {
			b.Fatal("crash injection missed")
		}
		e1.svc.Stop()
		b.StartTimer()

		e2 := newDeployEngine(b, dir, v, DeployLimits{})
		if _, err := e2.svc.DeployOnDemand("Wien2k", MethodExpect); err != nil {
			b.Fatal(err)
		}
		skipped = e2.svc.deployTel.stepsSkipped.Value()
		e2.svc.Stop()
	}
	b.ReportMetric(float64(len(steps))-float64(skipped), "steps/build")
	b.ReportMetric(float64(skipped), "skipped/build")
}
