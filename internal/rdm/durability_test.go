package rdm

import (
	"errors"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/lease"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/workload"
)

// durableSingle builds a standalone single-site RDM journaling into dir.
func durableSingle(t *testing.T, dir string, v *simclock.Virtual) *Service {
	t.Helper()
	st := site.New(site.Attributes{
		Name: "solo.uibk", ProcessorMHz: 1500, MemoryMB: 2048,
		Platform: "Intel", OS: "Linux", Arch: "32bit",
	}, v, site.StandardUniverse())
	resolver := workload.NewResolver(st.Repo)
	durable, err := store.Open(store.Options{Dir: dir, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Site:        st,
		Clock:       v,
		DeployFiles: resolver.Fetch,
		Store:       durable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return svc
}

// TestRDMRecoversRegistriesAndLeases restarts a site's RDM against the
// same data directory and proves types, deployments (documents, LUTs,
// termination times) and the unexpired lease all survive — with zero
// re-registration traffic on the recovered service.
func TestRDMRecoversRegistriesAndLeases(t *testing.T) {
	dir := t.TempDir()
	v := simclock.NewVirtual(time.Time{})

	s1 := durableSingle(t, dir, v)
	for _, ty := range workload.ImagingTypes() {
		if _, err := s1.RegisterType(ty); err != nil {
			t.Fatal(err)
		}
	}
	d := &activity.Deployment{
		Name: "jpovray", Type: "JPOVray", Kind: activity.KindExecutable,
		Path: "/opt/jpovray/bin/jpovray",
	}
	if _, err := s1.RegisterDeployment(d); err != nil {
		t.Fatal(err)
	}
	wantTerm := v.Now().Add(24 * time.Hour)
	if err := s1.ADR.SetTermination("jpovray", wantTerm); err != nil {
		t.Fatal(err)
	}
	tk, err := s1.Leases.Acquire("jpovray", "sched-1", lease.Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := s1.ATR.Names()
	wantLUT, _ := s1.ADR.LUT("jpovray")
	s1.Stop() // flushes and closes the store

	// The site restarts 10 virtual minutes later: inside the lease window.
	v.Advance(10 * time.Minute)
	s2 := durableSingle(t, dir, v)

	gotTypes := s2.ATR.Names()
	if len(gotTypes) != len(wantTypes) {
		t.Fatalf("types after restart = %v, want %v", gotTypes, wantTypes)
	}
	for i := range wantTypes {
		if gotTypes[i] != wantTypes[i] {
			t.Fatalf("types after restart = %v, want %v", gotTypes, wantTypes)
		}
	}
	rd, ok := s2.ADR.Get("jpovray")
	if !ok || rd.Type != "JPOVray" || rd.Path != "/opt/jpovray/bin/jpovray" {
		t.Fatalf("deployment after restart = %+v ok=%v", rd, ok)
	}
	// The journaled LastUpdateTime is reproduced exactly, not re-stamped.
	if gotLUT, _ := s2.ADR.LUT("jpovray"); !gotLUT.Equal(wantLUT) {
		t.Fatalf("LUT after restart = %v, want %v", gotLUT, wantLUT)
	}
	// The termination time survived too: advancing past it expires the
	// recovered resource like it would have the original.
	if res := s2.ADR.Home().Find("jpovray"); res == nil ||
		!res.TerminationTime().Equal(wantTerm) {
		t.Fatal("termination time lost in recovery")
	}
	// The unexpired lease is still held by its client…
	if _, err := s2.Leases.Acquire("jpovray", "rival", lease.Exclusive, time.Hour); !errors.Is(err, lease.ErrConflict) {
		t.Fatalf("revived lease not enforced: %v", err)
	}
	if err := s2.Leases.Authorize(tk.ID, "sched-1", "jpovray"); err != nil {
		t.Fatalf("revived ticket authorize = %v", err)
	}
	// …and recovery generated zero registration traffic.
	for _, name := range []string{"glare_atr_registers_total", "glare_adr_registers_total"} {
		if n := s2.Telemetry().Counter(name).Value(); n != 0 {
			t.Fatalf("%s = %d after replay, want 0", name, n)
		}
	}
	// The recovered service keeps journaling: a mutation lands at the next
	// sequence number, not at 1.
	before := s2.Store().Status().LastSeq
	if _, err := s2.RegisterType(&activity.Type{Name: "PostCrash"}); err != nil {
		t.Fatal(err)
	}
	if after := s2.Store().Status().LastSeq; after != before+1 {
		t.Fatalf("seq %d -> %d after one mutation", before, after)
	}
}

// TestRDMExpiredLeaseFreesPoolAfterRestart: the lease lapses while the
// site is down; after replay the deployment is leasable again.
func TestRDMExpiredLeaseFreesPoolAfterRestart(t *testing.T) {
	dir := t.TempDir()
	v := simclock.NewVirtual(time.Time{})

	s1 := durableSingle(t, dir, v)
	if _, err := s1.RegisterDeployment(&activity.Deployment{
		Name: "wien2k", Type: "Wien2k", Kind: activity.KindExecutable,
		Path: "/opt/wien2k/bin/wien2k",
	}); err != nil {
		t.Fatal(err)
	}
	old, err := s1.Leases.Acquire("wien2k", "c1", lease.Exclusive, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s1.Stop()

	v.Advance(3 * time.Hour) // the lease dies while the site is down
	s2 := durableSingle(t, dir, v)
	nt, err := s2.Leases.Acquire("wien2k", "c2", lease.Exclusive, time.Hour)
	if err != nil {
		t.Fatalf("expired lease still blocks the pool: %v", err)
	}
	if nt.ID <= old.ID {
		t.Fatalf("ticket ID %d reissued at or below retired %d", nt.ID, old.ID)
	}
}

// TestRDMStoreStatusXML covers both the memory-only and durable answers
// of the StoreStatus wire operation.
func TestRDMStoreStatusXML(t *testing.T) {
	mem, _ := single(t)
	n := mem.StoreStatusXML()
	if n.AttrOr("enabled", "") != "false" {
		t.Fatalf("memory-only StoreStatus = %s", n)
	}

	dir := t.TempDir()
	v := simclock.NewVirtual(time.Time{})
	dur := durableSingle(t, dir, v)
	if _, err := dur.RegisterType(&activity.Type{Name: "Solo"}); err != nil {
		t.Fatal(err)
	}
	n = dur.StoreStatusXML()
	if n.AttrOr("enabled", "") != "true" {
		t.Fatalf("durable StoreStatus = %s", n)
	}
	if n.AttrOr("liveRecords", "0") != "1" || n.AttrOr("lastSeq", "0") != "1" {
		t.Fatalf("StoreStatus counters = %s", n)
	}
}
