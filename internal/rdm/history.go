package rdm

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"glare/internal/rrd"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// This file closes the paper's monitoring→deployment loop: a per-site
// sampler folds the telemetry registry into round-robin archives
// (internal/rrd), the durable store persists them across restarts, a
// super-peer rollup consolidates members' series into grid-wide ones,
// and an alert engine on the rings pre-emptively quarantines failing
// activity types before the consecutive-failure threshold would.

// ActionQuarantine is the alert action the RDM interprets: pre-emptively
// quarantine every activity type with recent build failures.
const ActionQuarantine = "quarantine"

// GridSeriesPrefix prefixes the consolidated grid-wide series a
// super-peer maintains, keeping them apart from the site's own.
const GridSeriesPrefix = "grid:"

// HistoryConfig tunes a site's telemetry history.
type HistoryConfig struct {
	// Disabled turns the subsystem off entirely.
	Disabled bool
	// Step is the base sampling period (default 5s).
	Step time.Duration
	// Archives is the retention ladder (default rrd.DefaultArchives).
	Archives []rrd.ArchiveSpec
	// Rules are the alert rules; nil uses DefaultAlertRules, an explicit
	// empty slice disables alerting.
	Rules []rrd.Rule
	// RollupMetrics are the per-site series super-peers consolidate into
	// grid-wide ones; nil uses DefaultRollupMetrics.
	RollupMetrics []string
}

func (c HistoryConfig) withDefaults() HistoryConfig {
	if c.Step <= 0 {
		c.Step = rrd.DefaultStep
	}
	if len(c.Archives) == 0 {
		c.Archives = rrd.DefaultArchives()
	}
	if c.Rules == nil {
		c.Rules = DefaultAlertRules(c.Step)
	}
	if c.RollupMetrics == nil {
		c.RollupMetrics = DefaultRollupMetrics()
	}
	return c
}

// DefaultAlertRules returns the built-in rule set: a rising
// deploy-failure rate (more than one rollback inside a ten-step window)
// pre-emptively quarantines the failing types, and a sustained
// admission-shed rate (more than one refused request per second over the
// window) surfaces site overload in /healthz and `glarectl history`
// before callers notice brownouts. The failure threshold is one per
// window because rates are per-second: a lone rollback averages to
// exactly 1/window over the window and stays below it.
func DefaultAlertRules(step time.Duration) []rrd.Rule {
	window := 10 * step
	return []rrd.Rule{{
		Name:      "deploy-failure-rate",
		Metric:    "glare_deploy_rollbacks_total",
		CF:        rrd.Average,
		Window:    window,
		Predicate: rrd.Above,
		Threshold: 1.0 / window.Seconds(),
		Action:    ActionQuarantine,
	}, {
		Name:      "overload-shed-rate",
		Metric:    "glare_server_sheds_total",
		CF:        rrd.Average,
		Window:    window,
		Predicate: rrd.Above,
		Threshold: 1.0,
	}}
}

// DefaultRollupMetrics lists the site series consolidated grid-wide.
func DefaultRollupMetrics() []string {
	return []string{
		"glare_deploy_rollbacks_total",
		"glare_deploy_quarantined_total",
		"glare_rdm_resolve_degraded_total",
		"glare_sync_entries_pulled_total",
		"glare_server_sheds_total",
	}
}

// historyJournal is the slice of the durable store the sampler writes
// through (store.HistoryLog satisfies it).
type historyJournal interface {
	RecordCreate(def rrd.SeriesDef)
	RecordBatch(b rrd.Batch)
}

// History returns the site's telemetry history store (nil when disabled).
func (s *Service) History() *rrd.Store { return s.history }

// FiringAlerts returns the currently-firing alerts, sorted by rule name.
func (s *Service) FiringAlerts() []rrd.Alert {
	if s.alerts == nil {
		return nil
	}
	return s.alerts.Firing()
}

// healthSnapshot feeds /healthz: quarantined types, open breakers and
// firing alerts.
func (s *Service) healthSnapshot() telemetry.Health {
	var h telemetry.Health
	now := s.clock.Now()
	s.mu.Lock()
	for _, q := range s.quarantined {
		if q.fails >= s.limits.QuarantineAfter && now.Before(q.until) {
			h.Quarantined++
		}
	}
	s.mu.Unlock()
	if s.client != nil {
		h.OpenBreakers = s.client.OpenBreakers()
	}
	if s.alerts != nil {
		h.FiringAlerts = s.alerts.FiringCount()
	}
	return h
}

// SampleTelemetry is one history-sampler pass: walk the telemetry
// registry's structured snapshot, feed every instrument into the ring
// archives (creating series on first sight), journal the tick, then
// evaluate the alert rules at the sample instant. Counters become
// counter-kind series (stored as rates); gauges are stored as-is;
// histograms contribute a _count counter and a _p99_ms gauge. Returns
// how many samples the rings accepted.
func (s *Service) SampleTelemetry() int {
	if s.history == nil {
		return 0
	}
	// Site-level gauges piggyback on the sampler so history covers the
	// container, not just the RDM's own counters.
	s.tel.Gauge("glare_site_services").Set(int64(s.site.ServiceCount()))
	now := s.clock.Now()
	batch := rrd.Batch{TS: now}
	for _, sm := range s.tel.Registry().Snapshot() {
		switch sm.Kind {
		case telemetry.KindCounter:
			s.historyObserve(&batch, sm.SeriesName(), rrd.Counter, sm.Value)
		case telemetry.KindGauge:
			s.historyObserve(&batch, sm.SeriesName(), rrd.Gauge, sm.Value)
		case telemetry.KindHistogram:
			s.historyObserve(&batch, telemetry.SeriesName(sm.Name+"_count", sm.Labels...),
				rrd.Counter, float64(sm.Histogram.Count))
			s.historyObserve(&batch, telemetry.SeriesName(sm.Name+"_p99_ms", sm.Labels...),
				rrd.Gauge, float64(sm.Histogram.Q99)/float64(time.Millisecond))
		}
	}
	if len(batch.Samples) > 0 {
		if s.historyJournal != nil {
			s.historyJournal.RecordBatch(batch)
		}
		s.historySamples.Add(uint64(len(batch.Samples)))
	}
	s.evaluateAlerts(now)
	return len(batch.Samples)
}

// historyObserve feeds one raw value into its series, creating (and
// journaling) the series on first sight. Accepted samples join the batch
// so the WAL can replay the tick after a crash.
func (s *Service) historyObserve(b *rrd.Batch, name string, kind rrd.Kind, v float64) {
	if !s.history.Has(name) {
		def := rrd.SeriesDef{Name: name, Kind: kind, Step: s.historyCfg.Step, Archives: s.historyCfg.Archives}
		if err := s.history.Create(def); err != nil {
			return
		}
		if s.historyJournal != nil {
			s.historyJournal.RecordCreate(def)
		}
	}
	if err := s.history.Update(name, b.TS, v); err != nil {
		return // ErrPast: clock did not advance since the last tick
	}
	b.Samples = append(b.Samples, rrd.Sample{Name: name, Value: v})
}

// evaluateAlerts runs the rule set and reacts to newly-firing alerts.
func (s *Service) evaluateAlerts(now time.Time) {
	if s.alerts == nil {
		return
	}
	fired := s.alerts.Evaluate(now)
	s.tel.Gauge("glare_alerts_firing").Set(int64(s.alerts.FiringCount()))
	for _, a := range fired {
		s.tel.Counter("glare_alerts_fired_total", telemetry.L("rule", a.Rule.Name)).Inc()
		s.site.NotifyAdmin("alert firing: "+a.Rule.Name,
			fmt.Sprintf("%s %s %s %g (value %g)", a.Rule.Metric, a.Rule.CF, a.Rule.Predicate, a.Rule.Threshold, a.Value))
		if a.Rule.Action == ActionQuarantine {
			s.PreemptQuarantine(a.Rule.Name)
		}
	}
}

// historyXportXML serves the HistoryXport wire op. The request selects
// series by exact name (metric attribute or <Metric> children; none
// means every series). finest="true" restricts the response to the
// finest AVERAGE archive and drops live/unfinalized points — the form
// the super-peer rollup consumes; sinceNs bounds the payload to points
// after that instant.
func (s *Service) historyXportXML(body *xmlutil.Node) (*xmlutil.Node, error) {
	if s.history == nil {
		return nil, fmt.Errorf("HistoryXport: telemetry history disabled")
	}
	var metrics []string
	finest := false
	var sinceNs int64
	if body != nil {
		if m := body.AttrOr("metric", ""); m != "" {
			metrics = append(metrics, m)
		}
		for _, n := range body.All("Metric") {
			if n.Text != "" {
				metrics = append(metrics, n.Text)
			}
		}
		finest = body.AttrOr("finest", "") == "true"
		sinceNs, _ = strconv.ParseInt(body.AttrOr("sinceNs", "0"), 10, 64)
	}
	if len(metrics) == 0 {
		metrics = s.history.Names()
	}
	resp := xmlutil.NewNode("HistoryXport")
	resp.SetAttr("site", s.selfName())
	for _, m := range metrics {
		x, err := s.history.Xport(m)
		if err != nil {
			continue
		}
		sn := resp.Elem("Series", "")
		sn.SetAttr("name", x.Def.Name)
		sn.SetAttr("kind", x.Def.Kind.String())
		for _, arch := range x.Archives {
			if finest && !(arch.Spec.CF == rrd.Average && arch.Spec.Steps == 1) {
				continue
			}
			an := sn.Elem("Archive", "")
			an.SetAttr("cf", arch.Spec.CF.String())
			an.SetAttr("stepNs", strconv.FormatInt(int64(arch.Step), 10))
			an.SetAttr("rows", strconv.Itoa(arch.Spec.Rows))
			for _, p := range arch.Points {
				if p.TS.UnixNano() <= sinceNs {
					continue
				}
				if finest && p.Live {
					continue
				}
				pn := an.Elem("P", "")
				pn.SetAttr("tsNs", strconv.FormatInt(p.TS.UnixNano(), 10))
				if !math.IsNaN(p.V) {
					pn.SetAttr("v", strconv.FormatFloat(p.V, 'g', -1, 64))
				}
				if p.Live {
					pn.SetAttr("live", "true")
				}
			}
		}
	}
	return resp, nil
}

// RollupHistory is one super-peer rollup pass: xport every group
// member's finalized fine-grained points for the configured metrics,
// sum the per-second rates per timestamp across the community (self
// included), and feed the sums into local grid:<metric> series. Only
// timestamps newer than the grid series' last sample are pulled, and
// the rings reject stale timestamps anyway, so re-pulls never
// double-count. Returns how many consolidated points were folded in.
func (s *Service) RollupHistory() int {
	if s.history == nil || s.agent == nil || s.client == nil {
		return 0
	}
	view := s.view()
	if view.SuperPeer.IsZero() || view.SuperPeer.Name != s.selfName() {
		return 0
	}
	sp := s.tel.StartSpan("rdm.RollupHistory", nil)
	folded := 0
	for _, metric := range s.historyCfg.RollupMetrics {
		gridName := GridSeriesPrefix + metric
		var sinceNs int64
		if last, ok := s.history.LastTS(gridName); ok {
			sinceNs = last.UnixNano()
		}
		// metric -> closed fine points, summed across the community.
		sums := map[int64]float64{}
		s.rollupLocal(metric, sinceNs, sums)
		seen := map[string]bool{s.selfName(): true}
		for _, t := range view.Peers(s.selfName()) {
			if seen[t.Name] {
				continue
			}
			seen[t.Name] = true
			s.rollupFrom(sp, t, metric, sinceNs, sums)
		}
		folded += s.foldGridSeries(gridName, sums)
	}
	sp.SetNote(fmt.Sprintf("points=%d", folded))
	sp.End(nil)
	return folded
}

// rollupLocal adds this site's own closed fine points to the sums. It
// reads the finest AVERAGE archive directly (the same slice of the store
// the HistoryXport finest form exports) rather than Fetch, whose
// archive-selection would pick a coarser ring for a wide-open range.
func (s *Service) rollupLocal(metric string, sinceNs int64, sums map[int64]float64) {
	x, err := s.history.Xport(metric)
	if err != nil {
		return
	}
	for _, arch := range x.Archives {
		if !(arch.Spec.CF == rrd.Average && arch.Spec.Steps == 1) {
			continue
		}
		for _, p := range arch.Points {
			if p.Live || math.IsNaN(p.V) || p.TS.UnixNano() <= sinceNs {
				continue
			}
			sums[p.TS.UnixNano()] += p.V
		}
	}
}

// rollupFrom pulls one member's closed fine points over the wire.
func (s *Service) rollupFrom(sp *telemetry.Span, target superpeer.SiteInfo, metric string, sinceNs int64, sums map[int64]float64) {
	req := xmlutil.NewNode("History")
	req.SetAttr("metric", metric)
	req.SetAttr("finest", "true")
	req.SetAttr("sinceNs", strconv.FormatInt(sinceNs, 10))
	resp, err := s.call(context.Background(), sp, target.ServiceURL(ServiceName), "HistoryXport", req)
	if err != nil || resp == nil {
		return
	}
	for _, sn := range resp.All("Series") {
		for _, an := range sn.All("Archive") {
			for _, pn := range an.All("P") {
				vs := pn.AttrOr("v", "")
				if vs == "" {
					continue
				}
				tsNs, terr := strconv.ParseInt(pn.AttrOr("tsNs", ""), 10, 64)
				v, verr := strconv.ParseFloat(vs, 64)
				if terr != nil || verr != nil || tsNs <= sinceNs {
					continue
				}
				sums[tsNs] += v
			}
		}
	}
}

// foldGridSeries feeds the summed points, in timestamp order, into the
// grid-wide series (creating and journaling it on first use). Grid
// series are gauge-kind: the member values are already rates.
func (s *Service) foldGridSeries(gridName string, sums map[int64]float64) int {
	if len(sums) == 0 {
		return 0
	}
	if !s.history.Has(gridName) {
		def := rrd.SeriesDef{Name: gridName, Kind: rrd.Gauge, Step: s.historyCfg.Step, Archives: s.historyCfg.Archives}
		if err := s.history.Create(def); err != nil {
			return 0
		}
		if s.historyJournal != nil {
			s.historyJournal.RecordCreate(def)
		}
	}
	order := make([]int64, 0, len(sums))
	for ts := range sums {
		order = append(order, ts)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	folded := 0
	for _, ts := range order {
		if err := s.history.Update(gridName, time.Unix(0, ts), sums[ts]); err != nil {
			continue
		}
		if s.historyJournal != nil {
			s.historyJournal.RecordBatch(rrd.Batch{
				TS:      time.Unix(0, ts),
				Samples: []rrd.Sample{{Name: gridName, Value: sums[ts]}},
			})
		}
		folded++
	}
	if folded > 0 {
		s.rollupPoints.Add(uint64(folded))
	}
	return folded
}
