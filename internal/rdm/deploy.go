package rdm

import (
	"context"
	"fmt"
	"path"
	"strconv"
	"strings"
	"time"

	"glare/internal/activity"
	"glare/internal/cog"
	"glare/internal/deployfile"
	"glare/internal/gridarm"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

// Timings is the per-phase breakdown of one on-demand deployment, matching
// the rows of Table 1 (all virtual time).
type Timings struct {
	TypeAddition   time.Duration
	Communication  time.Duration
	Installation   time.Duration
	Registration   time.Duration
	Notification   time.Duration
	MethodOverhead time.Duration
}

// Total is the "Total overhead for meta-scheduler" row.
func (t Timings) Total() time.Duration {
	return t.TypeAddition + t.Communication + t.Installation +
		t.Registration + t.Notification + t.MethodOverhead
}

func (t *Timings) add(o Timings) {
	t.TypeAddition += o.TypeAddition
	t.Communication += o.Communication
	t.Installation += o.Installation
	t.Registration += o.Registration
	t.Notification += o.Notification
	t.MethodOverhead += o.MethodOverhead
}

// DeployReport summarizes one on-demand deployment.
type DeployReport struct {
	Type        string
	Site        string
	Method      Method
	Deployments []*activity.Deployment
	Timings     Timings
}

// DeployOnDemand deploys a concrete activity type somewhere suitable in
// the VO — on this site when its constraints match, otherwise on an
// eligible peer — and returns the new deployments.
func (s *Service) DeployOnDemand(typeName string, method Method) (*DeployReport, error) {
	return s.deployOnDemand(context.Background(), nil, typeName, method)
}

func (s *Service) deployOnDemand(ctx context.Context, parent *telemetry.Span, typeName string, method Method) (report *DeployReport, err error) {
	sp := s.tel.StartSpan("rdm.DeployOnDemand", parent)
	sp.SetNote(typeName)
	defer func() { sp.End(err) }()
	t, ok := s.lookupType(ctx, sp, typeName)
	if !ok {
		return nil, fmt.Errorf("rdm: unknown activity type %q", typeName)
	}
	if t.Abstract {
		return nil, fmt.Errorf("rdm: cannot deploy abstract type %q", typeName)
	}
	if t.Installation == nil {
		return nil, fmt.Errorf("rdm: type %q has no installation description", typeName)
	}
	c := t.Installation.Constraints
	if s.site.Attrs.Matches(c.Platform, c.OS, c.Arch) {
		return s.deployLocal(sp, t, method, true)
	}
	// Find an eligible peer and hand the installation over to its RDM
	// ("it invokes [the] deployment handler on the target site").
	target, err := s.chooseTarget(ctx, sp, t)
	if err != nil {
		return nil, err
	}
	return s.deployRemote(ctx, sp, target, t, method)
}

// chooseTarget selects the best group peer for installing the type:
// candidates are filtered by the type's constraints and ranked by the
// GridARM broker ("in combination with GridARM's resource brokerage").
func (s *Service) chooseTarget(ctx context.Context, sp *telemetry.Span, t *activity.Type) (superpeer.SiteInfo, error) {
	c := t.Installation.Constraints
	req := gridarm.Request{Platform: c.Platform, OS: c.OS, Arch: c.Arch}
	view := s.view()
	byName := map[string]superpeer.SiteInfo{}
	var candidates []site.Attributes
	for _, peer := range view.Peers(s.selfName()) {
		if s.client == nil {
			break
		}
		resp, err := s.call(ctx, sp, peer.ServiceURL(ServiceName), "SiteAttrs", nil)
		if err != nil || resp == nil {
			continue
		}
		attrs := attrsFromXML(resp)
		if !req.Satisfies(attrs) {
			continue
		}
		byName[attrs.Name] = peer
		candidates = append(candidates, attrs)
	}
	ranked := gridarm.Rank(candidates, req)
	if len(ranked) == 0 {
		return superpeer.SiteInfo{}, fmt.Errorf(
			"rdm: no site in reach satisfies constraints %+v of %q", c, t.Name)
	}
	return byName[ranked[0].Attrs.Name], nil
}

// attrsFromXML parses a SiteAttrs response.
func attrsFromXML(n *xmlutil.Node) site.Attributes {
	atoi := func(s string) int {
		v, _ := strconv.Atoi(s)
		return v
	}
	return site.Attributes{
		Name:         n.AttrOr("name", ""),
		Platform:     n.AttrOr("platform", ""),
		OS:           n.AttrOr("os", ""),
		Arch:         n.AttrOr("arch", ""),
		Processors:   atoi(n.AttrOr("processors", "0")),
		ProcessorMHz: atoi(n.AttrOr("mhz", "0")),
		MemoryMB:     atoi(n.AttrOr("memoryMB", "0")),
	}
}

func (s *Service) deployRemote(ctx context.Context, sp *telemetry.Span, target superpeer.SiteInfo, t *activity.Type, method Method) (*DeployReport, error) {
	req := xmlutil.NewNode("Deploy")
	req.SetAttr("method", string(method))
	req.Add(t.ToXML())
	resp, err := s.call(ctx, sp, target.ServiceURL(ServiceName), "DeployLocal", req)
	if err != nil {
		return nil, fmt.Errorf("rdm: remote deployment on %s: %w", target.Name, err)
	}
	report := &DeployReport{Type: t.Name, Site: target.Name, Method: method}
	report.Deployments = deploymentsFromList(resp)
	report.Timings = timingsFromXML(resp.First("Timings"))
	// Cache the fresh deployments so subsequent lookups are local.
	for _, d := range report.Deployments {
		s.cacheDeployment(target, d)
	}
	return report, nil
}

// DeployLocal installs a concrete type on THIS site: dependencies first,
// then the type itself, then registration of the identified deployments.
func (s *Service) DeployLocal(t *activity.Type, method Method) (*DeployReport, error) {
	return s.deployLocal(nil, t, method, true)
}

// deployLocal is DeployLocal with control over the method overhead:
// dependency installations reuse the parent's Expect session / CoG kit, so
// only the top-level deployment pays the method's fixed cost (the paper's
// Table 1 charges the Expect/CoG overhead once per application).
func (s *Service) deployLocal(parent *telemetry.Span, t *activity.Type, method Method, chargeOverhead bool) (_ *DeployReport, err error) {
	sp := s.tel.StartSpan("rdm.deployLocal", parent)
	sp.SetNote(t.Name)
	s.tel.Counter("glare_rdm_deploys_total").Inc()
	defer func() {
		if err != nil {
			s.tel.Counter("glare_rdm_deploy_errors_total").Inc()
		}
		sp.End(err)
	}()
	if method == "" {
		method = MethodExpect
	}
	// Singleflight: if another request is already installing this type,
	// join the in-flight build and share its report instead of
	// double-installing (look-ahead scheduling races the regular resolution
	// path here by design). A quarantined type is refused before any work.
	call, join, jerr := s.joinOrLead(t.Name)
	if jerr != nil {
		return nil, jerr
	}
	if join != nil {
		return join()
	}

	report := &DeployReport{Type: t.Name, Site: s.site.Attrs.Name, Method: method}
	defer func() {
		if err != nil {
			s.finishCall(t.Name, call, nil, err)
		} else {
			s.finishCall(t.Name, call, report, nil)
		}
	}()

	// Admission: the site runs at most MaxConcurrent builds; excess waits
	// in a bounded FIFO queue and overflow is shed with Unavailable.
	// Dependency builds ride their parent's slot — acquiring another here
	// would deadlock the parent against its own children.
	if chargeOverhead {
		release, aerr := s.gate.acquire(s.site.Attrs.Name)
		if aerr != nil {
			s.deployTel.queueShed.Inc()
			return nil, aerr
		}
		s.deployTel.active.Inc()
		defer func() {
			s.deployTel.active.Dec()
			release()
		}()
	}

	// Constraint check against this site.
	if t.Installation != nil {
		c := t.Installation.Constraints
		if !s.site.Attrs.Matches(c.Platform, c.OS, c.Arch) {
			return nil, fmt.Errorf("rdm: site %s does not satisfy constraints of %q",
				s.site.Attrs.Name, t.Name)
		}
	}

	// Activity Type Addition: make the type known to this site's registry.
	sw := simclock.NewStopwatch(s.clock)
	if _, known := s.ATR.Lookup(t.Name); !known {
		s.clock.Sleep(s.costs.TypeAddition)
		if _, err := s.RegisterType(t); err != nil {
			return nil, err
		}
	}
	report.Timings.TypeAddition = sw.Elapsed()

	// Dependencies: "it discovers Java and Ant activity types ... and
	// installs both ... automatically". Their cost folds into the parent's
	// phases.
	for _, depName := range t.Dependencies {
		if len(s.ADR.ByType(depName)) > 0 {
			continue // already deployed here
		}
		depType, ok := s.lookupType(context.Background(), sp, depName)
		if !ok {
			return nil, fmt.Errorf("rdm: dependency %q of %q not found in VO", depName, t.Name)
		}
		depReport, err := s.deployLocal(sp, depType, method, false)
		if err != nil {
			s.site.NotifyAdmin(
				fmt.Sprintf("installation failed: %s", t.Name),
				fmt.Sprintf("dependency %s failed: %v", depName, err))
			return nil, fmt.Errorf("rdm: deploying dependency %q: %w", depName, err)
		}
		report.Timings.add(depReport.Timings)
	}

	// Fetch and resolve the deploy-file.
	build, err := s.fetchBuild(t)
	if err != nil {
		return nil, err
	}
	cmds, err := build.Resolve(s.site.DefaultEnv())
	if err != nil {
		return nil, err
	}

	// Run the installation through the execution engine: checkpointed and
	// resumable, with per-step watchdog, transfer retry, and rollback of
	// the partial install on terminal failure.
	var run cog.Result
	run, err = s.runBuild(t.Name, build, cmds, method, chargeOverhead)
	if err != nil {
		if isBuildCrash(err) {
			// Simulated daemon death: checkpoints (and their journal
			// records) stay intact so the restarted site resumes the build
			// at its first incomplete step. No admin mail from a dead
			// process, no quarantine strike.
			return nil, fmt.Errorf("rdm: installing %q: %w", t.Name, err)
		}
		s.noteBuildFailure(t.Name)
		s.site.NotifyAdmin(
			fmt.Sprintf("installation failed: %s", t.Name),
			fmt.Sprintf("deploy-file %s failed on %s: %v; contact the activity provider",
				t.Installation.DeployFileURL, s.site.Attrs.Name, err))
		return nil, fmt.Errorf("rdm: installing %q: %w", t.Name, err)
	}
	report.Timings.Communication += run.Communication
	report.Timings.Installation += run.Installation
	report.Timings.MethodOverhead += run.Overhead

	// Identify and register the new deployments.
	sw.Reset()
	s.clock.Sleep(s.costs.Registration)
	deps, err := s.identifyAndRegister(t)
	if err != nil {
		return nil, err
	}
	report.Timings.Registration += sw.Elapsed()
	report.Deployments = deps

	// Mark deployed and notify.
	sw.Reset()
	s.clock.Sleep(s.costs.Notification)
	if err := s.ATR.MarkDeployed(t.Name, s.site.Attrs.Name); err != nil {
		return nil, err
	}
	msg := xmlutil.NewNode("Deployed")
	msg.SetAttr("type", t.Name)
	msg.SetAttr("site", s.site.Attrs.Name)
	s.broker.Publish(wsrf.TopicDeployment, t.Name, msg)
	report.Timings.Notification += sw.Elapsed()

	// Only now — with the deployments registered and announced — are the
	// build's checkpoints dropped; a crash anywhere before this line leaves
	// a journal the restarted site resumes from. Success also resets the
	// type's failure streak.
	s.clearCheckpoints(t.Name)
	s.noteBuildSuccess(t.Name)
	return report, nil
}

// fetchBuild resolves the provider's deploy-file for a type.
func (s *Service) fetchBuild(t *activity.Type) (*deployfile.Build, error) {
	if t.Installation == nil || t.Installation.DeployFileURL == "" {
		return nil, fmt.Errorf("rdm: type %q has no deploy-file", t.Name)
	}
	if s.deployFiles == nil {
		return nil, fmt.Errorf("rdm: no deploy-file resolver configured")
	}
	return s.deployFiles(t.Installation.DeployFileURL)
}

func isTransferCmd(cmdline string) bool {
	f := strings.Fields(cmdline)
	return len(f) > 0 && (f[0] == "globus-url-copy" || strings.HasSuffix(f[0], "/globus-url-copy"))
}

// identifyAndRegister finds the deployments produced by an installation —
// from the artifact's executables under the deployment home ("exploring
// [the] bin sub directory of the deployed activity home") and its exposed
// services — and registers them in the local ADR.
func (s *Service) identifyAndRegister(t *activity.Type) ([]*activity.Deployment, error) {
	artifactName := t.Artifact
	if artifactName == "" {
		artifactName = t.Name
	}
	home := path.Join(s.site.DefaultEnv()["DEPLOYMENT_DIR"], strings.ToLower(artifactName))
	var out []*activity.Deployment
	for _, f := range s.site.FS.Executables(home) {
		d := &activity.Deployment{
			Name: path.Base(f.Path), Type: t.Name, Kind: activity.KindExecutable,
			Site: s.site.Attrs.Name, Path: f.Path, Home: home,
		}
		if existing, ok := s.ADR.Get(d.Name); ok && existing.Type == t.Name {
			out = append(out, existing)
			continue
		}
		if _, err := s.ADR.Register(d); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if a, ok := s.site.Repo.ByName(artifactName); ok {
		for _, svc := range a.Services {
			if !s.site.HasService(svc) {
				continue
			}
			addr := s.agentBase() + "/wsrf/services/" + svc
			d := &activity.Deployment{
				Name: svc, Type: t.Name, Kind: activity.KindService,
				Site: s.site.Attrs.Name, Address: addr, Home: home,
			}
			if existing, ok := s.ADR.Get(d.Name); ok && existing.Type == t.Name {
				out = append(out, existing)
				continue
			}
			if _, err := s.ADR.Register(d); err != nil {
				return nil, err
			}
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rdm: installation of %q produced no deployments", t.Name)
	}
	return out, nil
}

func (s *Service) agentBase() string {
	if s.agent != nil {
		return s.agent.Self().BaseURL
	}
	return "http://" + s.site.Attrs.Name
}

// Undeploy removes a deployment (paper §6 future work): the registry entry
// is destroyed, the executable removed from the site, the container
// service withdrawn.
func (s *Service) Undeploy(name string) error {
	d, ok := s.ADR.Get(name)
	if !ok {
		return fmt.Errorf("rdm: no such deployment %q", name)
	}
	s.tel.Counter("glare_rdm_undeploys_total").Inc()
	switch d.Kind {
	case activity.KindExecutable:
		s.site.FS.Remove(d.Path)
	case activity.KindService:
		s.site.UndeployService(d.Name)
	}
	if !s.ADR.Remove(name) {
		return fmt.Errorf("rdm: removing %q from registry failed", name)
	}
	// A reservation must not outlive what it reserves: every outstanding
	// lease ticket on the removed deployment is released and journaled.
	if ids := s.Leases.ReleaseByDeployment(name); len(ids) > 0 {
		s.tel.Counter("glare_rdm_undeploy_leases_released_total").Add(uint64(len(ids)))
	}
	s.depCache.Invalidate("dep:" + name)
	return nil
}

// Migrate moves a (failed) deployment to another eligible site: "if a
// deployment fails on one site, it can be moved to another site."
func (s *Service) Migrate(name string, method Method) (*DeployReport, error) {
	d, ok := s.ADR.Get(name)
	if !ok {
		return nil, fmt.Errorf("rdm: no such deployment %q", name)
	}
	t, ok := s.LookupType(d.Type)
	if !ok {
		return nil, fmt.Errorf("rdm: type %q of deployment %q not found", d.Type, name)
	}
	if t.Installation == nil {
		return nil, fmt.Errorf("rdm: type %q cannot be reinstalled automatically", d.Type)
	}
	target, err := s.chooseTarget(context.Background(), nil, t)
	if err != nil {
		return nil, err
	}
	if err := s.Undeploy(name); err != nil {
		return nil, err
	}
	return s.deployRemote(context.Background(), nil, target, t, method)
}

// Instantiate runs an executable deployment as a GRAM job (or touches a
// service deployment), enforcing leases and recording the metrics the
// Deployment Status Monitor exposes. ticketID 0 means unleased use, which
// is allowed only when no exclusive lease is active.
func (s *Service) Instantiate(name, client string, ticketID uint64, args string) error {
	d, ok := s.ADR.Get(name)
	if !ok {
		return fmt.Errorf("rdm: no such deployment %q", name)
	}
	s.tel.Counter("glare_rdm_instantiations_total").Inc()
	if ticketID != 0 {
		if err := s.Leases.Authorize(ticketID, client, name); err != nil {
			return err
		}
	} else if inUse, exclusive := s.Leases.InUse(name); inUse && exclusive {
		return fmt.Errorf("rdm: deployment %q is exclusively leased", name)
	}
	start := s.clock.Now()
	var code int
	switch d.Kind {
	case activity.KindExecutable:
		_, c, err := s.Jobs.SubmitWait(d.Path+" "+args, d.Home, d.Env)
		code = c
		if err != nil {
			code = 1
		}
	case activity.KindService:
		if !s.site.HasService(d.Name) {
			return fmt.Errorf("rdm: service %q is not hosted here", d.Name)
		}
		s.clock.Sleep(30 * time.Millisecond)
	}
	m := d.Metrics
	m.LastExecutionTime = s.clock.Now().Sub(start)
	m.LastReturnCode = code
	m.LastInvocation = s.clock.Now()
	m.Invocations++
	if err := s.ADR.UpdateMetrics(name, m); err != nil {
		return err
	}
	if code != 0 {
		return fmt.Errorf("rdm: instantiation of %q exited with code %d", name, code)
	}
	return nil
}

func timingsFromXML(n *xmlutil.Node) Timings {
	var t Timings
	if n == nil {
		return t
	}
	get := func(name string) time.Duration {
		var ms int64
		fmt.Sscanf(n.ChildText(name), "%d", &ms)
		return time.Duration(ms) * time.Millisecond
	}
	t.TypeAddition = get("TypeAddition")
	t.Communication = get("Communication")
	t.Installation = get("Installation")
	t.Registration = get("Registration")
	t.Notification = get("Notification")
	t.MethodOverhead = get("MethodOverhead")
	return t
}

func (t Timings) toXML() *xmlutil.Node {
	n := xmlutil.NewNode("Timings")
	n.Elem("TypeAddition", fmt.Sprintf("%d", t.TypeAddition.Milliseconds()))
	n.Elem("Communication", fmt.Sprintf("%d", t.Communication.Milliseconds()))
	n.Elem("Installation", fmt.Sprintf("%d", t.Installation.Milliseconds()))
	n.Elem("Registration", fmt.Sprintf("%d", t.Registration.Milliseconds()))
	n.Elem("Notification", fmt.Sprintf("%d", t.Notification.Milliseconds()))
	n.Elem("MethodOverhead", fmt.Sprintf("%d", t.MethodOverhead.Milliseconds()))
	return n
}
