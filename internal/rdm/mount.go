package rdm

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"glare/internal/activity"
	"glare/internal/lease"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

// traced wraps an RDM operation handler with the request-manager
// instrumentation: per-op request/error counters and a latency histogram,
// all on the site's registry. The server-side span opened by the transport
// middleware and the request context carrying the caller's propagated
// deadline are passed through so handlers fan out under both.
func (s *Service) traced(op string, h transport.CtxHandler) transport.CtxHandler {
	reqs := s.tel.Counter("glare_rdm_requests_total", telemetry.L("op", op))
	errs := s.tel.Counter("glare_rdm_errors_total", telemetry.L("op", op))
	lat := s.tel.Histogram("glare_rdm_latency", telemetry.L("op", op))
	return func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
		start := time.Now()
		resp, err := h(ctx, sp, body)
		lat.Observe(time.Since(start))
		reqs.Inc()
		if err != nil {
			errs.Inc()
		}
		return resp, err
	}
}

// tracedTable instruments a whole operation table.
func (s *Service) tracedTable(ops map[string]transport.CtxHandler) map[string]transport.CtxHandler {
	out := make(map[string]transport.CtxHandler, len(ops))
	for op, h := range ops {
		out[op] = s.traced(op, h)
	}
	return out
}

// Mount exposes the RDM service (and the site's registries) on a transport
// server. The RDM operation table is the protocol the distributed GLARE
// framework speaks between sites. The server also gets the site's
// telemetry bundle, which enables its /metrics, /healthz and /tracez
// admin endpoints.
func (s *Service) Mount(srv *transport.Server) {
	srv.SetTelemetry(s.tel)
	s.ATR.Mount(srv)
	s.ADR.Mount(srv)
	if s.agent != nil {
		s.agent.Mount(srv)
	}
	if s.localIndex != nil {
		s.localIndex.Mount(srv)
	}
	srv.RegisterCtxService(ServiceName, s.tracedTable(map[string]transport.CtxHandler{
		// --- client entry points -------------------------------------
		"GetDeployments": func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("GetDeployments: missing request")
			}
			typeName := body.AttrOr("type", body.Text)
			method := Method(body.AttrOr("method", string(MethodExpect)))
			allow := body.AttrOr("deploy", "auto") != "never"
			deps, err := s.GetDeploymentsCtx(ctx, sp, typeName, method, allow)
			if err != nil {
				return nil, err
			}
			return deploymentList(deps), nil
		},
		"RegisterType": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			t, err := activity.TypeFromXML(body)
			if err != nil {
				return nil, err
			}
			e, err := s.RegisterType(t)
			if err != nil {
				return nil, err
			}
			return e.ToXML("TypeEPR"), nil
		},
		"RegisterDeployment": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			d, err := activity.DeploymentFromXML(body)
			if err != nil {
				return nil, err
			}
			e, err := s.RegisterDeployment(d)
			if err != nil {
				return nil, err
			}
			return e.ToXML("DeploymentEPR"), nil
		},
		"Undeploy": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			if err := s.Undeploy(textOf(body)); err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Undeployed"), nil
		},
		"Instantiate": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("Instantiate: missing request")
			}
			ticket, _ := strconv.ParseUint(body.AttrOr("ticket", "0"), 10, 64)
			err := s.Instantiate(body.AttrOr("name", ""), body.AttrOr("client", ""),
				ticket, body.AttrOr("args", ""))
			if err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Started"), nil
		},

		// --- overlay resolution protocol -----------------------------
		"ConcreteOf": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			types, err := s.ATR.ConcreteOf(textOf(body))
			if err != nil {
				return nil, err
			}
			return typeList(types), nil
		},
		"GroupConcreteOf": func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			return typeList(s.groupConcreteOf(ctx, sp, textOf(body))), nil
		},
		"ForwardConcreteOf": func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			name := textOf(body)
			// Answer from our group first, then the other super-peers.
			if types := s.groupConcreteOf(ctx, sp, name); len(types) > 0 {
				return typeList(types), nil
			}
			// Best effort: peers this super-peer cannot reach are simply
			// absent from the answer; the querying site tracks its own
			// unavailability.
			types, _ := s.superFanOut(ctx, sp, name)
			return typeList(types), nil
		},
		"LocalDeployments": func(ctx context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			ds := s.ADR.ByType(textOf(body))
			if s.scanDelay > 0 {
				// Modeled container processing: proportional to the size
				// of the local registry this site had to scan. The caller's
				// deadline interrupts the scan — finishing it would only
				// produce an answer nobody is waiting for.
				t := time.NewTimer(time.Duration(s.ADR.Len()) * s.scanDelay)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return deploymentList(ds), nil
		},
		"GroupDeployments": func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			return deploymentList(s.groupDeployments(ctx, sp, textOf(body))), nil
		},
		"ForwardDeployments": func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			name := textOf(body)
			merged := map[string]*activity.Deployment{}
			for _, d := range s.groupDeployments(ctx, sp, name) {
				merged[d.Name] = d
			}
			forwarded, _ := s.forwardDeployments(ctx, sp, name)
			for _, d := range forwarded {
				if _, dup := merged[d.Name]; !dup {
					merged[d.Name] = d
				}
			}
			return deploymentList(sortedDeployments(merged)), nil
		},
		"RegistryDigest": func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
			// Anti-entropy: the caller reconciles against this site's
			// (name → LastUpdateTime) registry summary.
			return s.RegistryDigest(), nil
		},
		"ArtifactFetch": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			// Artifact grid: serve a held blob's verified metadata, or
			// pull it through from origin when the caller elected this
			// site the blob's rendezvous home.
			return s.artifactFetchXML(body)
		},
		"ArtifactStatus": func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
			// CAS summary for `glarectl artifacts`: holdings, hit/miss,
			// bytes saved. Answers enabled="false" when the CAS is off.
			return s.ArtifactStatusXML(), nil
		},
		"HistoryXport": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			// Ring-archive export for `glarectl history` and the
			// super-peer rollup.
			return s.historyXportXML(body)
		},
		"StoreStatus": func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
			// Durable-store summary for `glarectl store status`; answers
			// enabled="false" on memory-only sites.
			return s.StoreStatusXML(), nil
		},
		"DeployStatus": func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
			// Deployment-engine summary for `glarectl builds`: in-flight
			// builds, queue pressure, quarantined types, resumable builds.
			return s.DeployStatusXML(), nil
		},
		"LoadStatus": func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
			// Admission-controller summary for `glarectl status`: per-class
			// limit, inflight, queue depth and shed counts. Answers
			// enabled="false" when admission control is off.
			return loadStatusXML(srv.Admission()), nil
		},
		"SiteAttrs": func(context.Context, *telemetry.Span, *xmlutil.Node) (*xmlutil.Node, error) {
			a := s.site.Attrs
			n := xmlutil.NewNode("Attrs")
			n.SetAttr("name", a.Name)
			n.SetAttr("platform", a.Platform)
			n.SetAttr("os", a.OS)
			n.SetAttr("arch", a.Arch)
			n.SetAttr("processors", strconv.Itoa(a.Processors))
			n.SetAttr("mhz", strconv.Itoa(a.ProcessorMHz))
			n.SetAttr("memoryMB", strconv.Itoa(a.MemoryMB))
			return n, nil
		},
		"DeployLocal": func(ctx context.Context, sp *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("DeployLocal: missing request")
			}
			method := Method(body.AttrOr("method", string(MethodExpect)))
			tNode := body.First("ActivityTypeEntry")
			var t *activity.Type
			if tNode != nil {
				parsed, err := activity.TypeFromXML(tNode)
				if err != nil {
					return nil, err
				}
				t = parsed
			} else {
				name := body.AttrOr("type", "")
				found, ok := s.lookupType(ctx, sp, name)
				if !ok {
					return nil, fmt.Errorf("DeployLocal: unknown type %q", name)
				}
				t = found
			}
			report, err := s.deployLocal(sp, t, method, true)
			if err != nil {
				return nil, err
			}
			out := deploymentList(report.Deployments)
			out.Add(report.Timings.toXML())
			return out, nil
		},

		// --- leasing --------------------------------------------------
		"AcquireLease": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("AcquireLease: missing request")
			}
			secs, _ := strconv.Atoi(body.AttrOr("seconds", "0"))
			t, err := s.Leases.Acquire(
				body.AttrOr("deployment", ""), body.AttrOr("client", ""),
				lease.Kind(body.AttrOr("kind", string(lease.Shared))),
				time.Duration(secs)*time.Second)
			if err != nil {
				return nil, err
			}
			n := xmlutil.NewNode("Ticket")
			n.SetAttr("id", strconv.FormatUint(t.ID, 10))
			n.SetAttr("deployment", t.Deployment)
			n.SetAttr("kind", string(t.Kind))
			return n, nil
		},
		"ReleaseLease": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			id, _ := strconv.ParseUint(textOf(body), 10, 64)
			if err := s.Leases.Release(id); err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Released"), nil
		},

		// --- notification ---------------------------------------------
		"Subscribe": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("Subscribe: missing request")
			}
			topic := body.AttrOr("topic", wsrf.TopicDeployment)
			sinkURL := body.AttrOr("sink", "")
			if sinkURL == "" {
				return nil, fmt.Errorf("Subscribe: missing sink address")
			}
			id, err := s.broker.Subscribe(topic, wsrf.SinkFunc(func(n wsrf.Notification) {
				msg := xmlutil.NewNode("Notification")
				msg.SetAttr("topic", n.Topic)
				msg.SetAttr("producer", n.Producer)
				if n.Message != nil {
					msg.Add(n.Message.Clone())
				}
				_, _ = s.client.Call(sinkURL, "Notify", msg)
			}))
			if err != nil {
				return nil, err
			}
			n := xmlutil.NewNode("Subscription")
			n.SetAttr("id", strconv.FormatUint(uint64(id), 10))
			n.SetAttr("topic", topic)
			return n, nil
		},
	}))
	if s.repl != nil {
		s.MountReplication(srv)
	}
}

// loadStatusXML renders the site's admission-controller state for the
// LoadStatus wire op; a nil controller answers enabled="false".
func loadStatusXML(adm *transport.Admission) *xmlutil.Node {
	n := xmlutil.NewNode("Load")
	if adm == nil {
		n.SetAttr("enabled", "false")
		return n
	}
	n.SetAttr("enabled", "true")
	for _, cs := range adm.Status() {
		cn := n.Elem("Class")
		cn.SetAttr("name", cs.Class)
		cn.SetAttr("limit", strconv.Itoa(cs.Limit))
		cn.SetAttr("inflight", strconv.Itoa(cs.Inflight))
		cn.SetAttr("queued", strconv.Itoa(cs.Queued))
		cn.SetAttr("sheds", strconv.FormatUint(cs.Sheds, 10))
		cn.SetAttr("expired", strconv.FormatUint(cs.Expired, 10))
	}
	return n
}

func textOf(body *xmlutil.Node) string {
	if body == nil {
		return ""
	}
	return body.Text
}

func typeList(ts []*activity.Type) *xmlutil.Node {
	n := xmlutil.NewNode("Types")
	for _, t := range ts {
		n.Add(t.ToXML())
	}
	return n
}

func deploymentList(ds []*activity.Deployment) *xmlutil.Node {
	n := xmlutil.NewNode("Deployments")
	for _, d := range ds {
		n.Add(d.ToXML())
	}
	return n
}
