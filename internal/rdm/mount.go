package rdm

import (
	"fmt"
	"strconv"
	"time"

	"glare/internal/activity"
	"glare/internal/lease"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

// Mount exposes the RDM service (and the site's registries) on a transport
// server. The RDM operation table is the protocol the distributed GLARE
// framework speaks between sites.
func (s *Service) Mount(srv *transport.Server) {
	s.ATR.Mount(srv)
	s.ADR.Mount(srv)
	if s.agent != nil {
		s.agent.Mount(srv)
	}
	if s.localIndex != nil {
		s.localIndex.Mount(srv)
	}
	srv.RegisterService(ServiceName, map[string]transport.Handler{
		// --- client entry points -------------------------------------
		"GetDeployments": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("GetDeployments: missing request")
			}
			typeName := body.AttrOr("type", body.Text)
			method := Method(body.AttrOr("method", string(MethodExpect)))
			allow := body.AttrOr("deploy", "auto") != "never"
			deps, err := s.GetDeployments(typeName, method, allow)
			if err != nil {
				return nil, err
			}
			return deploymentList(deps), nil
		},
		"RegisterType": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			t, err := activity.TypeFromXML(body)
			if err != nil {
				return nil, err
			}
			e, err := s.RegisterType(t)
			if err != nil {
				return nil, err
			}
			return e.ToXML("TypeEPR"), nil
		},
		"RegisterDeployment": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			d, err := activity.DeploymentFromXML(body)
			if err != nil {
				return nil, err
			}
			e, err := s.RegisterDeployment(d)
			if err != nil {
				return nil, err
			}
			return e.ToXML("DeploymentEPR"), nil
		},
		"Undeploy": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if err := s.Undeploy(textOf(body)); err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Undeployed"), nil
		},
		"Instantiate": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("Instantiate: missing request")
			}
			ticket, _ := strconv.ParseUint(body.AttrOr("ticket", "0"), 10, 64)
			err := s.Instantiate(body.AttrOr("name", ""), body.AttrOr("client", ""),
				ticket, body.AttrOr("args", ""))
			if err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Started"), nil
		},

		// --- overlay resolution protocol -----------------------------
		"ConcreteOf": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			types, err := s.ATR.ConcreteOf(textOf(body))
			if err != nil {
				return nil, err
			}
			return typeList(types), nil
		},
		"GroupConcreteOf": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			return typeList(s.groupConcreteOf(textOf(body))), nil
		},
		"ForwardConcreteOf": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			name := textOf(body)
			// Answer from our group first, then the other super-peers.
			if types := s.groupConcreteOf(name); len(types) > 0 {
				return typeList(types), nil
			}
			return typeList(s.superFanOut(name)), nil
		},
		"LocalDeployments": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			ds := s.ADR.ByType(textOf(body))
			if s.scanDelay > 0 {
				// Modeled container processing: proportional to the size
				// of the local registry this site had to scan.
				time.Sleep(time.Duration(s.ADR.Len()) * s.scanDelay)
			}
			return deploymentList(ds), nil
		},
		"GroupDeployments": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			return deploymentList(s.groupDeployments(textOf(body))), nil
		},
		"ForwardDeployments": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			name := textOf(body)
			merged := map[string]*activity.Deployment{}
			for _, d := range s.groupDeployments(name) {
				merged[d.Name] = d
			}
			for _, d := range s.forwardDeployments(name) {
				if _, dup := merged[d.Name]; !dup {
					merged[d.Name] = d
				}
			}
			return deploymentList(sortedDeployments(merged)), nil
		},
		"SiteAttrs": func(*xmlutil.Node) (*xmlutil.Node, error) {
			a := s.site.Attrs
			n := xmlutil.NewNode("Attrs")
			n.SetAttr("name", a.Name)
			n.SetAttr("platform", a.Platform)
			n.SetAttr("os", a.OS)
			n.SetAttr("arch", a.Arch)
			n.SetAttr("processors", strconv.Itoa(a.Processors))
			n.SetAttr("mhz", strconv.Itoa(a.ProcessorMHz))
			n.SetAttr("memoryMB", strconv.Itoa(a.MemoryMB))
			return n, nil
		},
		"DeployLocal": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("DeployLocal: missing request")
			}
			method := Method(body.AttrOr("method", string(MethodExpect)))
			tNode := body.First("ActivityTypeEntry")
			var t *activity.Type
			if tNode != nil {
				parsed, err := activity.TypeFromXML(tNode)
				if err != nil {
					return nil, err
				}
				t = parsed
			} else {
				name := body.AttrOr("type", "")
				found, ok := s.LookupType(name)
				if !ok {
					return nil, fmt.Errorf("DeployLocal: unknown type %q", name)
				}
				t = found
			}
			report, err := s.DeployLocal(t, method)
			if err != nil {
				return nil, err
			}
			out := deploymentList(report.Deployments)
			out.Add(report.Timings.toXML())
			return out, nil
		},

		// --- leasing --------------------------------------------------
		"AcquireLease": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("AcquireLease: missing request")
			}
			secs, _ := strconv.Atoi(body.AttrOr("seconds", "0"))
			t, err := s.Leases.Acquire(
				body.AttrOr("deployment", ""), body.AttrOr("client", ""),
				lease.Kind(body.AttrOr("kind", string(lease.Shared))),
				time.Duration(secs)*time.Second)
			if err != nil {
				return nil, err
			}
			n := xmlutil.NewNode("Ticket")
			n.SetAttr("id", strconv.FormatUint(t.ID, 10))
			n.SetAttr("deployment", t.Deployment)
			n.SetAttr("kind", string(t.Kind))
			return n, nil
		},
		"ReleaseLease": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			id, _ := strconv.ParseUint(textOf(body), 10, 64)
			if err := s.Leases.Release(id); err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Released"), nil
		},

		// --- notification ---------------------------------------------
		"Subscribe": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("Subscribe: missing request")
			}
			topic := body.AttrOr("topic", wsrf.TopicDeployment)
			sinkURL := body.AttrOr("sink", "")
			if sinkURL == "" {
				return nil, fmt.Errorf("Subscribe: missing sink address")
			}
			id, err := s.broker.Subscribe(topic, wsrf.SinkFunc(func(n wsrf.Notification) {
				msg := xmlutil.NewNode("Notification")
				msg.SetAttr("topic", n.Topic)
				msg.SetAttr("producer", n.Producer)
				if n.Message != nil {
					msg.Add(n.Message.Clone())
				}
				_, _ = s.client.Call(sinkURL, "Notify", msg)
			}))
			if err != nil {
				return nil, err
			}
			n := xmlutil.NewNode("Subscription")
			n.SetAttr("id", strconv.FormatUint(uint64(id), 10))
			n.SetAttr("topic", topic)
			return n, nil
		},
	})
}

func textOf(body *xmlutil.Node) string {
	if body == nil {
		return ""
	}
	return body.Text
}

func typeList(ts []*activity.Type) *xmlutil.Node {
	n := xmlutil.NewNode("Types")
	for _, t := range ts {
		n.Add(t.ToXML())
	}
	return n
}

func deploymentList(ds []*activity.Deployment) *xmlutil.Node {
	n := xmlutil.NewNode("Deployments")
	for _, d := range ds {
		n.Add(d.ToXML())
	}
	return n
}
