package rdm

import (
	"fmt"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

// syncSite is one networked RDM stack for anti-entropy tests.
type syncSite struct {
	svc   *Service
	agent *superpeer.Agent
	info  superpeer.SiteInfo
	tel   *telemetry.Telemetry
}

// newSyncSites builds n full sites on loopback sharing one virtual clock,
// each the super-peer of its own single-member group (the shape two sides
// of a healed partition are left in), with every site in the super-group.
func newSyncSites(t *testing.T, n int) []*syncSite {
	t.Helper()
	clock := simclock.NewVirtual(time.Time{})
	var sites []*syncSite
	var infos []superpeer.SiteInfo
	for i := 0; i < n; i++ {
		st := site.New(site.Attributes{
			Name: fmt.Sprintf("sync%02d.uibk", i), ProcessorMHz: 1500, MemoryMB: 2048,
			Platform: "Intel", OS: "Linux", Arch: "32bit",
		}, clock, site.StandardUniverse())
		srv := transport.NewServer()
		if err := srv.Start("127.0.0.1:0", nil); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		info := superpeer.SiteInfo{Name: st.Attrs.Name, Rank: uint64(1000 + i), BaseURL: srv.BaseURL()}
		cli := transport.NewClient(nil)
		agent := superpeer.NewAgent(info, cli, nil)
		tel := telemetry.New(info.Name)
		resolver := workload.NewResolver(st.Repo)
		svc, err := New(Config{
			Site: st, Clock: clock, Client: cli, Agent: agent,
			DeployFiles: resolver.Fetch, Telemetry: tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Stop)
		svc.Mount(srv)
		sites = append(sites, &syncSite{svc: svc, agent: agent, info: info, tel: tel})
		infos = append(infos, info)
	}
	// Every site reigns over itself; all of them form the super-group.
	admin := transport.NewClient(nil)
	for i, s := range sites {
		v := superpeer.View{
			Epoch:      1,
			Group:      []superpeer.SiteInfo{infos[i]},
			SuperPeer:  infos[i],
			SuperPeers: infos,
		}
		if _, err := admin.Call(s.info.PeerURL(), "GroupAssign", v.ToXML()); err != nil {
			t.Fatal(err)
		}
	}
	return sites
}

// TestSyncRegistriesPullsNewerEntries is the anti-entropy core: a type and
// a deployment registered on one super-peer become resolvable on another
// after one SyncRegistries pass, without re-registering anything.
func TestSyncRegistriesPullsNewerEntries(t *testing.T) {
	sites := newSyncSites(t, 2)
	a, b := sites[0], sites[1]

	if _, err := b.svc.RegisterType(&activity.Type{Name: "SyncedType"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.svc.RegisterDeployment(&activity.Deployment{
		Name: "synced-dep", Type: "SyncedType", Kind: activity.KindExecutable,
		Path: "/opt/sync/bin/synced-dep",
	}); err != nil {
		t.Fatal(err)
	}

	pulled := a.svc.SyncRegistries()
	if pulled != 2 {
		t.Fatalf("pulled = %d, want 2 (one type, one deployment)", pulled)
	}
	if n := a.tel.Counter("glare_sync_entries_pulled_total").Value(); n != 2 {
		t.Fatalf("glare_sync_entries_pulled_total = %d, want 2", n)
	}

	// The pulled entries landed in the two-level cache (not the local
	// registries: site B stays the owner), so ordinary resolution finds
	// them without any further network round.
	if _, ok := a.svc.typeCache.Peek("type:SyncedType"); !ok {
		t.Fatal("type not cached")
	}
	if _, ok := a.svc.depCache.Peek("dep:synced-dep"); !ok {
		t.Fatal("deployment not cached")
	}
	if a.svc.ATR.Len() != 0 || a.svc.ADR.Len() != 0 {
		t.Fatal("anti-entropy must not clone ownership into local registries")
	}
	deps, err := a.svc.GetDeployments("SyncedType", MethodExpect, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0].Name != "synced-dep" {
		t.Fatalf("post-sync resolution = %+v", deps)
	}

	// A second pass is a no-op: everything is already at the same
	// LastUpdateTime.
	if again := a.svc.SyncRegistries(); again != 0 {
		t.Fatalf("idempotent re-sync pulled %d entries", again)
	}
}

// TestSyncRegistriesSkipsOlderEntries: a site holding the newer version of
// an entry must not have it clobbered by a peer's older copy.
func TestSyncRegistriesSkipsOlderEntries(t *testing.T) {
	sites := newSyncSites(t, 2)
	a, b := sites[0], sites[1]

	// Both sides own the same type name; A's copy is strictly newer.
	if _, err := b.svc.RegisterType(&activity.Type{Name: "Contested"}); err != nil {
		t.Fatal(err)
	}
	a.svc.clock.(*simclock.Virtual).Advance(time.Minute)
	if _, err := a.svc.RegisterType(&activity.Type{Name: "Contested", Artifact: "newer"}); err != nil {
		t.Fatal(err)
	}

	if pulled := a.svc.SyncRegistries(); pulled != 0 {
		t.Fatalf("pulled %d entries over a newer local copy", pulled)
	}
	got, ok := a.svc.ATR.Lookup("Contested")
	if !ok || got.Artifact != "newer" {
		t.Fatalf("local registry lost the newer copy: %+v", got)
	}
	// B, running its own pass, pulls A's newer version into its cache.
	if pulled := b.svc.SyncRegistries(); pulled != 1 {
		t.Fatalf("older side pulled %d entries, want 1", pulled)
	}
	e, ok := b.svc.typeCache.Peek("type:Contested")
	if !ok {
		t.Fatal("newer version not cached on the older side")
	}
	if ty, err := activity.TypeFromXML(e.Doc); err != nil || ty.Artifact != "newer" {
		t.Fatalf("cached version = %+v (%v)", e.Doc, err)
	}
}

// TestRegistryDigestShape checks the wire format the reconciler exchanges.
func TestRegistryDigestShape(t *testing.T) {
	sites := newSyncSites(t, 1)
	s := sites[0]
	if _, err := s.svc.RegisterType(&activity.Type{Name: "DigestType"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.RegisterDeployment(&activity.Deployment{
		Name: "digest-dep", Type: "DigestType", Kind: activity.KindExecutable, Path: "/opt/d",
	}); err != nil {
		t.Fatal(err)
	}
	d := s.svc.RegistryDigest()
	if d.AttrOr("site", "") != s.info.Name {
		t.Fatalf("digest site = %q", d.AttrOr("site", ""))
	}
	types, deps := d.All("Type"), d.All("Dep")
	if len(types) != 1 || types[0].AttrOr("name", "") != "DigestType" || types[0].AttrOr("lut", "") == "" {
		t.Fatalf("digest types = %v", render(types))
	}
	if len(deps) != 1 || deps[0].AttrOr("name", "") != "digest-dep" ||
		deps[0].AttrOr("type", "") != "DigestType" || deps[0].AttrOr("lut", "") == "" {
		t.Fatalf("digest deps = %v", render(deps))
	}
}

func render(ns []*xmlutil.Node) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.String())
	}
	return out
}
