package rdm

import (
	"context"
	"fmt"
	"sort"
	"time"

	"glare/internal/activity"
	"glare/internal/adr"
	"glare/internal/atr"
	"glare/internal/epr"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// call issues a traced RPC to a remote site: the span's correlation ID
// rides the envelope's Trace header, so the remote server's spans link
// back to this request, and the context's remaining deadline budget is
// stamped into the envelope so every forwarding hop works against the
// original caller's clock. A nil span degrades to a plain call.
func (s *Service) call(ctx context.Context, sp *telemetry.Span, address, operation string, body *xmlutil.Node) (*xmlutil.Node, error) {
	if s.client == nil {
		return nil, fmt.Errorf("rdm: no transport client configured")
	}
	return s.client.CallCtx(ctx, sp, address, operation, body)
}

// resolveSrc counts which tier of the resolution ladder answered a lookup:
// local registry, cache, peer group, or super-peer overlay.
func (s *Service) resolveSrc(source string) *telemetry.Counter {
	return s.tel.Counter("glare_rdm_resolve_total", telemetry.L("source", source))
}

// RegisterType registers an activity type with the local GLARE service and
// aggregates it into the site's index. "Notice that the registration of an
// activity type is done only on a single Grid site, and GLARE takes care
// of distributing and deploying it on other sites on-demand."
func (s *Service) RegisterType(t *activity.Type) (epr.EPR, error) {
	e, err := s.ATR.Register(t)
	if err != nil {
		return epr.EPR{}, err
	}
	// Quorum gate: the local write already fanned out through the wrapped
	// journal; the client is only acknowledged once enough replicas
	// journaled the copy that the registration survives this site's
	// permanent loss.
	if s.repl != nil {
		if qerr := s.repl.AwaitQuorum(replRegATR, t.Name); qerr != nil {
			return epr.EPR{}, fmt.Errorf("rdm: type %q registered locally but not quorum-replicated: %w", t.Name, qerr)
		}
	}
	if s.localIndex != nil {
		s.localIndex.Register(e, t.ToXML())
	}
	return e, nil
}

// RegisterDeployment registers an existing deployment (e.g. pre-installed
// software an administrator wants to expose) with the local registries.
func (s *Service) RegisterDeployment(d *activity.Deployment) (epr.EPR, error) {
	if d.Site == "" {
		d.Site = s.site.Attrs.Name
	}
	e, err := s.ADR.Register(d)
	if err != nil {
		return epr.EPR{}, err
	}
	if s.repl != nil {
		if qerr := s.repl.AwaitQuorum(replRegADR, d.Name); qerr != nil {
			return epr.EPR{}, fmt.Errorf("rdm: deployment %q registered locally but not quorum-replicated: %w", d.Name, qerr)
		}
	}
	return e, nil
}

// GetDeployments is the Request Manager's client entry point (Example 3):
// resolve the activity type (anywhere in the hierarchy), locate its
// deployments across the VO, and — when none exist and the type supports
// it — deploy on demand. The returned deployments are ready for selection
// by a scheduler.
func (s *Service) GetDeployments(typeName string, method Method, allowDeploy bool) ([]*activity.Deployment, error) {
	return s.GetDeploymentsSpan(nil, typeName, method, allowDeploy)
}

// GetDeploymentsSpan is GetDeployments running under an existing trace
// span; the transport layer passes the server-side span of the incoming
// call here so the whole VO-wide resolution shares one correlation ID.
// A nil parent starts a fresh trace.
func (s *Service) GetDeploymentsSpan(parent *telemetry.Span, typeName string, method Method, allowDeploy bool) ([]*activity.Deployment, error) {
	return s.GetDeploymentsCtx(context.Background(), parent, typeName, method, allowDeploy)
}

// GetDeploymentsCtx is the fullest entry point: ctx carries the caller's
// propagated deadline, so a resolution forwarded across sites works
// against the remaining budget rather than each hop's own timeout.
func (s *Service) GetDeploymentsCtx(ctx context.Context, parent *telemetry.Span, typeName string, method Method, allowDeploy bool) ([]*activity.Deployment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := s.tel.StartSpan("rdm.GetDeployments", parent)
	sp.SetNote(typeName)
	s.Load.Enter()
	defer s.Load.Exit()
	out, err := s.getDeployments(ctx, sp, typeName, method, allowDeploy)
	sp.End(err)
	return out, err
}

func (s *Service) getDeployments(ctx context.Context, sp *telemetry.Span, typeName string, method Method, allowDeploy bool) ([]*activity.Deployment, error) {
	concrete, err := s.resolveConcrete(ctx, sp, typeName)
	if err != nil {
		return nil, err
	}
	if len(concrete) == 0 {
		return nil, fmt.Errorf("rdm: no activity type matching %q in the VO", typeName)
	}
	var out []*activity.Deployment
	for _, ct := range concrete {
		out = append(out, s.resolveDeployments(ctx, sp, ct.Name)...)
	}
	if len(out) > 0 {
		return dedupeDeployments(out), nil
	}
	if !allowDeploy {
		return nil, fmt.Errorf("rdm: no deployments of %q and on-demand deployment disabled", typeName)
	}
	// On-demand deployment of the first installable concrete type.
	var lastErr error
	for _, ct := range concrete {
		if ct.Installation == nil {
			continue
		}
		if ct.Installation.Mode == activity.ModeManual {
			s.site.NotifyAdmin(
				fmt.Sprintf("manual installation required: %s", ct.Name),
				fmt.Sprintf("activity type %s requires manual deployment; see provider deploy-file %s",
					ct.Name, ct.Installation.DeployFileURL))
			lastErr = fmt.Errorf("rdm: type %q is manual-install; administrator notified", ct.Name)
			continue
		}
		report, err := s.deployOnDemand(ctx, sp, ct.Name, method)
		if err != nil {
			lastErr = err
			continue
		}
		return report.Deployments, nil
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, fmt.Errorf("rdm: no deployments of %q and no installable concrete type", typeName)
}

// ResolveConcrete resolves a type name (abstract or concrete, per Fig. 2)
// to concrete types, looking successively at the local registry, the local
// cache, the peer group, and — through the super-peer — the wider VO.
func (s *Service) ResolveConcrete(typeName string) ([]*activity.Type, error) {
	return s.resolveConcrete(context.Background(), nil, typeName)
}

func (s *Service) resolveConcrete(ctx context.Context, sp *telemetry.Span, typeName string) ([]*activity.Type, error) {
	// 1. Local hierarchy (hash lookup + subtype closure).
	local, err := s.ATR.ConcreteOf(typeName)
	if err != nil {
		return nil, err
	}
	if len(local) > 0 {
		s.resolveSrc("local").Inc()
		return local, nil
	}
	// 2. Cache.
	if !s.cacheOff {
		if e, ok := s.typeCache.Get("concrete:" + typeName); ok {
			s.resolveSrc("cache").Inc()
			return typesFromList(e.Doc), nil
		}
	}
	// 3. Peer group (peer-to-peer interaction within the group).
	view := s.view()
	unreachable := false
	for _, peer := range view.Peers(s.selfName()) {
		types, err := s.remoteConcreteOf(ctx, sp, peer, typeName)
		if transport.IsUnavailable(err) {
			unreachable = true
		}
		if len(types) > 0 {
			s.cacheTypes(typeName, peer, types)
			s.resolveSrc("peer").Inc()
			return types, nil
		}
	}
	// 4. Super-peer forwarding ("A super-peer is contacted when other
	// peers could not find information ... It then forwards requests to
	// other super-peers and caches the results").
	types, err := s.forwardConcreteOf(ctx, sp, typeName)
	if transport.IsUnavailable(err) {
		unreachable = true
	}
	if len(types) > 0 {
		s.resolveSrc("superpeer").Inc()
		return types, nil
	}
	// 5. Degraded: part of the VO was unreachable, so "not found" is not
	// trustworthy — an expired cache entry beats an error. The revival
	// window (SetStaleFor) bounds how old an answer we are willing to
	// serve.
	if unreachable {
		s.degraded.Inc()
		if !s.cacheOff {
			if e, ok := s.typeCache.GetStale("concrete:" + typeName); ok {
				s.resolveSrc("stale").Inc()
				return typesFromList(e.Doc), nil
			}
		}
	}
	return nil, nil
}

// remoteConcreteOf asks one remote RDM for its local concrete resolution.
// An Unavailable error means the peer could not be reached (as opposed to
// not knowing the type) and feeds the caller's degradation decision.
func (s *Service) remoteConcreteOf(ctx context.Context, sp *telemetry.Span, target superpeer.SiteInfo, typeName string) ([]*activity.Type, error) {
	if target.IsZero() {
		return nil, nil
	}
	resp, err := s.call(ctx, sp, target.ServiceURL(ServiceName), "ConcreteOf",
		xmlutil.NewNode("Name", typeName))
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, nil
	}
	return typesFromList(resp), nil
}

// forwardConcreteOf routes the lookup through the super-peer overlay.
func (s *Service) forwardConcreteOf(ctx context.Context, sp *telemetry.Span, typeName string) ([]*activity.Type, error) {
	view := s.view()
	if view.SuperPeer.IsZero() {
		return nil, nil
	}
	if view.SuperPeer.Name == s.selfName() {
		// We are the super-peer: fan out to the other super-peers' groups.
		return s.superFanOut(ctx, sp, typeName)
	}
	resp, err := s.call(ctx, sp, view.SuperPeer.ServiceURL(ServiceName), "ForwardConcreteOf",
		xmlutil.NewNode("Name", typeName))
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, nil
	}
	types := typesFromList(resp)
	if len(types) > 0 {
		s.cacheTypes(typeName, view.SuperPeer, types)
	}
	return types, nil
}

// superFanOut is the super-peer side of type forwarding: ask every other
// super-peer to answer from its group, cache what comes back. When no
// answer is found and at least one super-peer was unreachable, the
// returned error reports that the miss is untrustworthy.
func (s *Service) superFanOut(ctx context.Context, sp *telemetry.Span, typeName string) ([]*activity.Type, error) {
	view := s.view()
	var lastUnavailable error
	for _, peer := range view.SuperPeers {
		if peer.Name == s.selfName() {
			continue
		}
		resp, err := s.call(ctx, sp, peer.ServiceURL(ServiceName), "GroupConcreteOf",
			xmlutil.NewNode("Name", typeName))
		if err != nil {
			if transport.IsUnavailable(err) {
				lastUnavailable = err
			}
			continue
		}
		if resp == nil {
			continue
		}
		if types := typesFromList(resp); len(types) > 0 {
			s.cacheTypes(typeName, peer, types)
			return types, nil
		}
	}
	return nil, lastUnavailable
}

// groupConcreteOf answers a forwarded lookup from this super-peer's group:
// our own registry plus every group member's.
func (s *Service) groupConcreteOf(ctx context.Context, sp *telemetry.Span, typeName string) []*activity.Type {
	local, err := s.ATR.ConcreteOf(typeName)
	if err == nil && len(local) > 0 {
		return local
	}
	view := s.view()
	for _, peer := range view.Peers(s.selfName()) {
		if types, _ := s.remoteConcreteOf(ctx, sp, peer, typeName); len(types) > 0 {
			return types
		}
	}
	return nil
}

// ResolveDeployments collects the deployments of a concrete type from the
// whole VO: local registry, cache, peer group, super-peer fan-out. Results
// are merged (Fig. 12 spreads deployments across sites and expects the
// full list back).
func (s *Service) ResolveDeployments(typeName string) []*activity.Deployment {
	return s.resolveDeployments(context.Background(), nil, typeName)
}

func (s *Service) resolveDeployments(ctx context.Context, sp *telemetry.Span, typeName string) []*activity.Deployment {
	merged := map[string]*activity.Deployment{}
	for _, d := range s.ADR.ByType(typeName) {
		merged[d.Name] = d
	}
	// Cache: a per-type index of deployment names, each name its own
	// cached entry (so LUT-based revival works per deployment).
	if !s.cacheOff {
		if idx, ok := s.depCache.Get("index:" + typeName); ok {
			for _, n := range idx.Doc.All("Name") {
				if e, ok := s.depCache.Get("dep:" + n.Text); ok {
					if d, err := activity.DeploymentFromXML(e.Doc); err == nil {
						if _, dup := merged[d.Name]; !dup {
							merged[d.Name] = d
						}
					}
				}
			}
			if len(merged) > 0 {
				return sortedDeployments(merged)
			}
		}
	}
	// Peer group — queried concurrently: with deployments spread across k
	// sites each registry scans only its share, so the wall-clock cost of
	// one request drops as k grows (the Fig. 12 effect).
	view := s.view()
	answers, unreachable := s.fanOutDeployments(ctx, sp, view.Peers(s.selfName()), typeName)
	for peer, ds := range answers {
		for _, d := range ds {
			if _, dup := merged[d.Name]; !dup {
				merged[d.Name] = d
				s.cacheDeployment(peer, d)
			}
		}
	}
	// Super-peer fan-out — only on a group-wide miss: "A super-peer is
	// contacted when other peers could not find information about some
	// activity types or deployments within the group."
	if len(merged) == 0 {
		ds, err := s.forwardDeployments(ctx, sp, typeName)
		if transport.IsUnavailable(err) {
			unreachable = true
		}
		for _, d := range ds {
			if _, dup := merged[d.Name]; !dup {
				merged[d.Name] = d
			}
		}
	}
	staleServed := false
	if unreachable {
		// Part of the VO did not answer: the merged set may be missing
		// that part's deployments. Count the degraded resolution and, when
		// we would otherwise return nothing, fall back to stale cache
		// entries past their revival window, marked so schedulers can
		// prefer fresh alternatives.
		s.degraded.Inc()
		if len(merged) == 0 && !s.cacheOff {
			if idx, ok := s.depCache.GetStale("index:" + typeName); ok {
				for _, n := range idx.Doc.All("Name") {
					e, ok := s.depCache.GetStale("dep:" + n.Text)
					if !ok {
						continue
					}
					if d, err := activity.DeploymentFromXML(e.Doc); err == nil {
						d.Degraded = true
						if _, dup := merged[d.Name]; !dup {
							merged[d.Name] = d
						}
					}
				}
			}
			if len(merged) > 0 {
				s.resolveSrc("stale").Inc()
				staleServed = true
			}
		}
	}
	out := sortedDeployments(merged)
	// Do not re-index a stale-served result: that would stamp outdated
	// data as fresh and hide the degradation from the next resolution.
	if !s.cacheOff && len(out) > 0 && !staleServed {
		idx := xmlutil.NewNode("Index")
		for _, d := range out {
			idx.Elem("Name", d.Name)
		}
		s.depCache.Put("index:"+typeName, epr.EPR{}, idx)
	}
	return out
}

// remoteDeployments asks one peer for its local deployments. An
// Unavailable error distinguishes a dead peer from one with nothing to
// offer.
func (s *Service) remoteDeployments(ctx context.Context, sp *telemetry.Span, target superpeer.SiteInfo, typeName string) ([]*activity.Deployment, error) {
	if target.IsZero() {
		return nil, nil
	}
	resp, err := s.call(ctx, sp, target.ServiceURL(ServiceName), "LocalDeployments",
		xmlutil.NewNode("Type", typeName))
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, nil
	}
	return deploymentsFromList(resp), nil
}

func (s *Service) forwardDeployments(ctx context.Context, sp *telemetry.Span, typeName string) ([]*activity.Deployment, error) {
	view := s.view()
	if view.SuperPeer.IsZero() {
		return nil, nil
	}
	if view.SuperPeer.Name == s.selfName() {
		var out []*activity.Deployment
		var lastUnavailable error
		for _, peer := range view.SuperPeers {
			if peer.Name == s.selfName() {
				continue
			}
			resp, err := s.call(ctx, sp, peer.ServiceURL(ServiceName), "GroupDeployments",
				xmlutil.NewNode("Type", typeName))
			if err != nil {
				if transport.IsUnavailable(err) {
					lastUnavailable = err
				}
				continue
			}
			if resp == nil {
				continue
			}
			for _, d := range deploymentsFromList(resp) {
				out = append(out, d)
				s.cacheDeployment(peer, d)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
		return nil, lastUnavailable
	}
	resp, err := s.call(ctx, sp, view.SuperPeer.ServiceURL(ServiceName), "ForwardDeployments",
		xmlutil.NewNode("Type", typeName))
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, nil
	}
	out := deploymentsFromList(resp)
	for _, d := range out {
		s.cacheDeployment(view.SuperPeer, d)
	}
	return out, nil
}

// groupDeployments answers a forwarded deployment lookup from this
// super-peer's whole group, fanning out to the members concurrently.
func (s *Service) groupDeployments(ctx context.Context, sp *telemetry.Span, typeName string) []*activity.Deployment {
	merged := map[string]*activity.Deployment{}
	for _, d := range s.ADR.ByType(typeName) {
		merged[d.Name] = d
	}
	view := s.view()
	answers, _ := s.fanOutDeployments(ctx, sp, view.Peers(s.selfName()), typeName)
	for _, ds := range answers {
		for _, d := range ds {
			if _, dup := merged[d.Name]; !dup {
				merged[d.Name] = d
			}
		}
	}
	return sortedDeployments(merged)
}

// fanOutDeployments queries several remote registries concurrently. It
// additionally reports whether any peer was unreachable, so the caller
// knows the merged answer may be incomplete.
func (s *Service) fanOutDeployments(ctx context.Context, sp *telemetry.Span, peers []superpeer.SiteInfo, typeName string) (map[superpeer.SiteInfo][]*activity.Deployment, bool) {
	out := make(map[superpeer.SiteInfo][]*activity.Deployment, len(peers))
	if len(peers) == 0 {
		return out, false
	}
	type answer struct {
		peer superpeer.SiteInfo
		ds   []*activity.Deployment
		err  error
	}
	ch := make(chan answer, len(peers))
	for _, peer := range peers {
		go func(p superpeer.SiteInfo) {
			ds, err := s.remoteDeployments(ctx, sp, p, typeName)
			ch <- answer{peer: p, ds: ds, err: err}
		}(peer)
	}
	unreachable := false
	for range peers {
		a := <-ch
		if transport.IsUnavailable(a.err) {
			unreachable = true
		}
		if len(a.ds) > 0 {
			out[a.peer] = a.ds
		}
	}
	return out, unreachable
}

// ----------------------------------------------------------- cache plumbing

func (s *Service) cacheTypes(queryName string, source superpeer.SiteInfo, types []*activity.Type) {
	if s.cacheOff {
		return
	}
	list := xmlutil.NewNode("Types")
	for _, t := range types {
		list.Add(t.ToXML())
	}
	src := epr.New(source.ServiceURL(atr.ServiceName), atr.KeyName, queryName)
	src.LastUpdateTime = s.clock.Now()
	s.typeCache.Put("concrete:"+queryName, src, list)
}

func (s *Service) cacheDeployment(source superpeer.SiteInfo, d *activity.Deployment) {
	if s.cacheOff {
		return
	}
	src := epr.New(source.ServiceURL(adr.ServiceName), adr.KeyName, d.Name)
	src.LastUpdateTime = s.clock.Now()
	s.depCache.Put("dep:"+d.Name, src, d.ToXML())
}

// ----------------------------------------------------------------- helpers

func (s *Service) selfName() string {
	if s.agent != nil {
		return s.agent.Self().Name
	}
	return s.site.Attrs.Name
}

func (s *Service) view() superpeer.View {
	if s.agent == nil {
		return superpeer.View{}
	}
	return s.agent.View()
}

func typesFromList(list *xmlutil.Node) []*activity.Type {
	var out []*activity.Type
	for _, n := range list.All("ActivityTypeEntry") {
		if t, err := activity.TypeFromXML(n); err == nil {
			out = append(out, t)
		}
	}
	return out
}

func deploymentsFromList(list *xmlutil.Node) []*activity.Deployment {
	var out []*activity.Deployment
	for _, n := range list.All("ActivityDeployment") {
		if d, err := activity.DeploymentFromXML(n); err == nil {
			out = append(out, d)
		}
	}
	return out
}

func sortedDeployments(m map[string]*activity.Deployment) []*activity.Deployment {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*activity.Deployment, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func dedupeDeployments(in []*activity.Deployment) []*activity.Deployment {
	m := map[string]*activity.Deployment{}
	for _, d := range in {
		if _, dup := m[d.Name]; !dup {
			m[d.Name] = d
		}
	}
	return sortedDeployments(m)
}

// LookupType finds a single named type locally, in cache, or remotely.
func (s *Service) LookupType(name string) (*activity.Type, bool) {
	return s.lookupType(context.Background(), nil, name)
}

func (s *Service) lookupType(ctx context.Context, sp *telemetry.Span, name string) (*activity.Type, bool) {
	if t, ok := s.ATR.Lookup(name); ok {
		return t, true
	}
	if !s.cacheOff {
		if e, ok := s.typeCache.Get("type:" + name); ok {
			if t, err := activity.TypeFromXML(e.Doc); err == nil {
				return t, true
			}
		}
	}
	view := s.view()
	targets := view.Peers(s.selfName())
	if !view.SuperPeer.IsZero() && view.SuperPeer.Name != s.selfName() {
		targets = append(targets, view.SuperPeer)
	}
	for _, peer := range targets {
		if s.client == nil {
			break
		}
		resp, err := s.call(ctx, sp, peer.ServiceURL(atr.ServiceName), "GetType",
			xmlutil.NewNode("Name", name))
		if err != nil || resp == nil {
			continue
		}
		t, err := activity.TypeFromXML(resp)
		if err != nil {
			continue
		}
		if !s.cacheOff {
			src := epr.New(peer.ServiceURL(atr.ServiceName), atr.KeyName, name)
			src.LastUpdateTime = s.clock.Now()
			s.typeCache.Put("type:"+name, src, resp.Clone())
		}
		return t, true
	}
	return nil, false
}

// probeLUT fetches the current LastUpdateTime of a remote resource for the
// cache refresher.
func (s *Service) probeLUT(ctx context.Context, sp *telemetry.Span, service string, key string) (time.Time, error) {
	resp, err := s.call(ctx, sp, service, "GetLUT", xmlutil.NewNode("Name", key))
	if err != nil {
		return time.Time{}, err
	}
	return time.Parse(epr.TimeLayout, resp.Text)
}
