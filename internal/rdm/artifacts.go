package rdm

// This file is the grid side of the content-addressed artifact store
// (internal/cas): the fallback ladder deploy transfers walk (local CAS →
// peer holders → rendezvous home → origin), the ArtifactFetch/
// ArtifactStatus wire ops, holding advertisement through the anti-entropy
// digest, and the location table learned from peers' digests.
//
// The routing rule that bounds origin traffic during a flash install is
// rendezvous hashing: every blob key deterministically elects one "home"
// site among the epoch-fenced view's group members. A site that misses
// locally asks known holders first, then the home with pull-through
// enabled; the home collapses concurrent misses under a per-key
// singleflight and fetches from origin once. N sites installing the same
// release concurrently therefore cost one origin transfer per blob (two
// when a rotted copy forces a requester to fall back to origin itself),
// regardless of N.

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"glare/internal/cas"
	"glare/internal/deployfile"
	"glare/internal/epr"
	"glare/internal/gridftp"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// maxPeerCandidates bounds how many advertised holders a miss will try
// before the rendezvous home; each attempt is a wire call.
const maxPeerCandidates = 2

// casJournal is the slice of the durable store the artifact manager needs
// (satisfied by *store.CASLog).
type casJournal interface {
	RecordPut(store.CASBlob)
	RecordDelete(string)
}

// casCounters bundles the artifact-grid telemetry.
type casCounters struct {
	hits           *telemetry.Counter
	misses         *telemetry.Counter
	evictions      *telemetry.Counter
	peerFetches    *telemetry.Counter
	originFetches  *telemetry.Counter
	verifyFailures *telemetry.Counter
	bytesSaved     *telemetry.Counter
	bytes          *telemetry.Gauge
	entries        *telemetry.Gauge
}

func newCASCounters(tel *telemetry.Telemetry) casCounters {
	return casCounters{
		hits:           tel.Counter("glare_cas_hits_total"),
		misses:         tel.Counter("glare_cas_misses_total"),
		evictions:      tel.Counter("glare_cas_evictions_total"),
		peerFetches:    tel.Counter("glare_cas_peer_fetches_total"),
		originFetches:  tel.Counter("glare_cas_origin_fetches_total"),
		verifyFailures: tel.Counter("glare_cas_verify_failures_total"),
		bytesSaved:     tel.Counter("glare_cas_bytes_saved_total"),
		bytes:          tel.Gauge("glare_cas_bytes"),
		entries:        tel.Gauge("glare_cas_entries"),
	}
}

// artifactLocations is the site's view of who holds which blob, fed by its
// own ingests and by <Blob> elements in peers' anti-entropy digests.
// Entries are advisory: a fetch that finds the holder empty (or rotted)
// drops the location and the ladder moves on.
type artifactLocations struct {
	mu    sync.Mutex
	byKey map[cas.Key]map[string]time.Time
}

func newArtifactLocations() *artifactLocations {
	return &artifactLocations{byKey: map[cas.Key]map[string]time.Time{}}
}

// Note records that site held the blob as of lut; newer timestamps win.
func (l *artifactLocations) Note(k cas.Key, site string, lut time.Time) {
	if k.IsZero() || site == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.byKey[k]
	if m == nil {
		m = map[string]time.Time{}
		l.byKey[k] = m
	}
	if lut.After(m[site]) || m[site].IsZero() {
		m[site] = lut
	}
}

// Drop forgets one holder of a blob.
func (l *artifactLocations) Drop(k cas.Key, site string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m := l.byKey[k]; m != nil {
		delete(m, site)
		if len(m) == 0 {
			delete(l.byKey, k)
		}
	}
}

// Holders lists the known holders of a blob, freshest advertisement first
// (name-ordered on ties, so the walk is deterministic).
func (l *artifactLocations) Holders(k cas.Key) []string {
	l.mu.Lock()
	m := l.byKey[k]
	type loc struct {
		site string
		lut  time.Time
	}
	locs := make([]loc, 0, len(m))
	for s, t := range m {
		locs = append(locs, loc{s, t})
	}
	l.mu.Unlock()
	sort.Slice(locs, func(i, j int) bool {
		if !locs[i].lut.Equal(locs[j].lut) {
			return locs[i].lut.After(locs[j].lut)
		}
		return locs[i].site < locs[j].site
	})
	out := make([]string, len(locs))
	for i, lc := range locs {
		out[i] = lc.site
	}
	return out
}

// blobLocation is one (blob, holder) pair for the digest.
type blobLocation struct {
	Key  cas.Key
	Site string
	LUT  time.Time
}

// Snapshot lists every known location, deterministically ordered.
func (l *artifactLocations) Snapshot() []blobLocation {
	l.mu.Lock()
	var out []blobLocation
	for k, m := range l.byKey {
		for s, t := range m {
			out = append(out, blobLocation{Key: k, Site: s, LUT: t})
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key.String() < out[j].Key.String()
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// ---------------------------------------------------------------------------
// Ingest, eviction bookkeeping, and the durable journal.

// casIngest stores a verified blob, journals the mutation, advertises the
// holding and settles eviction bookkeeping for anything pushed out.
func (s *Service) casIngest(e cas.Entry) {
	if s.cas == nil {
		return
	}
	if e.Added.IsZero() {
		e.Added = s.hlc.Now()
	}
	evicted, stored := s.cas.Put(e)
	self := s.selfName()
	for _, ev := range evicted {
		s.casTel.evictions.Inc()
		s.casLoc.Drop(ev.Key, self)
		if s.casJournal != nil {
			s.casJournal.RecordDelete(ev.Key.String())
		}
	}
	if stored {
		s.casLoc.Note(e.Key, self, e.Added)
		if s.casJournal != nil {
			s.casJournal.RecordPut(store.CASBlob{
				Algo: e.Key.Algo, Sum: e.Key.Sum, Actual: e.Sum, Size: e.Size,
				MD5: e.MD5, Artifact: e.Artifact, URL: e.URL, Added: e.Added,
			})
		}
	}
	s.casGauges()
}

// casDrop purges one blob (rot detected, or admin action).
func (s *Service) casDrop(key cas.Key) {
	if s.cas == nil {
		return
	}
	if _, ok := s.cas.Delete(key); ok {
		s.casLoc.Drop(key, s.selfName())
		if s.casJournal != nil {
			s.casJournal.RecordDelete(key.String())
		}
	}
	s.casGauges()
}

func (s *Service) casGauges() {
	n, b, _, _ := s.cas.Stats()
	s.casTel.entries.Set(int64(n))
	s.casTel.bytes.Set(b)
}

// restoreCAS re-offers the blobs a recovered WAL says the site held,
// oldest first so the LRU order survives the restart. Called by
// attachStore before the journal binds, so restore is not re-journaled.
func (s *Service) restoreCAS(state *store.State) {
	if s.cas == nil || len(state.CAS) == 0 {
		return
	}
	blobs := make([]store.CASBlob, 0, len(state.CAS))
	for _, b := range state.CAS {
		blobs = append(blobs, b)
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].Added.Before(blobs[j].Added) })
	self := s.selfName()
	for _, b := range blobs {
		actual := b.Actual
		if actual == "" {
			actual = b.Sum
		}
		e := cas.Entry{
			Key: cas.Key{Algo: b.Algo, Sum: b.Sum}, Sum: actual, Size: b.Size,
			MD5: b.MD5, Artifact: b.Artifact, URL: b.URL, Added: b.Added,
		}
		if _, stored := s.cas.Put(e); stored {
			s.casLoc.Note(e.Key, self, e.Added)
		}
	}
	s.casGauges()
}

// ---------------------------------------------------------------------------
// The transfer ladder.

// fetchArtifactVia satisfies one deploy-file transfer step through the
// artifact grid, charging transfer costs against the method's own GridFTP
// client (expect: the site client; cog: the kit's proxied client). The
// ladder is local CAS → advertised holders → rendezvous home (pull-through
// enabled) → origin; every non-local rung verifies the declared checksum
// on ingest.
func (s *Service) fetchArtifactVia(ftp *gridftp.Client, c deployfile.Command) error {
	f := strings.Fields(c.Cmdline)
	if len(f) < 3 {
		return fmt.Errorf("transfer needs source and destination")
	}
	srcURL := f[1]
	dst := strings.TrimPrefix(f[2], "file://")
	algo, sum := deployfile.ChecksumOfStep(c.Step)
	if s.cas == nil || sum == "" {
		// No CAS (disabled) or no declared checksum to key on: the
		// pre-artifact-grid direct path.
		return ftp.FetchSum(srcURL, s.site, dst, algo, sum)
	}
	key := cas.Key{Algo: algo, Sum: sum}
	// Rung 1: the local store. Materialization is a local disk copy — no
	// transfer, no clock cost.
	if e, ok := s.cas.Get(key); ok {
		if e.Sum == key.Sum {
			s.site.FS.Write(dst, site.KindFile, e.Size, e.MD5, e.Artifact)
			s.casTel.hits.Inc()
			s.casTel.bytesSaved.Add(uint64(e.Size))
			return nil
		}
		// The local copy rotted since ingest: purge it and fall through.
		s.casTel.verifyFailures.Inc()
		s.casDrop(key)
	}
	s.casTel.misses.Inc()
	// Rung 2: peers. Known holders first, then the blob's rendezvous home
	// with pull-through — the home fetches from origin once for everyone.
	// Peer calls ride the transport client, so PR 2's retry budget and
	// per-destination breakers already bound how long a dead holder can
	// stall the ladder.
	for _, cand := range s.artifactCandidates(key) {
		if s.fetchFromPeer(ftp, cand.info, key, srcURL, dst, cand.pull) {
			return nil
		}
	}
	// Rung 3: origin.
	if err := ftp.FetchSum(srcURL, s.site, dst, algo, sum); err != nil {
		return err
	}
	s.casTel.originFetches.Inc()
	if e := s.site.FS.Stat(dst); e != nil {
		s.casIngest(cas.Entry{Key: key, Sum: sum, Size: e.Size, MD5: e.MD5, Artifact: e.Artifact, URL: srcURL})
	}
	return nil
}

// artifactCandidate is one remote rung of the ladder.
type artifactCandidate struct {
	info superpeer.SiteInfo
	pull bool // ask the peer to pull-through from origin on its own miss
}

// artifactCandidates orders the remote rungs for one blob: up to
// maxPeerCandidates advertised holders resolvable in the current view,
// then the rendezvous home (unless that is us — then we are the designated
// origin-puller and the ladder falls through).
func (s *Service) artifactCandidates(key cas.Key) []artifactCandidate {
	view := s.view()
	self := s.selfName()
	infos := map[string]superpeer.SiteInfo{}
	for _, m := range view.Group {
		infos[m.Name] = m
	}
	for _, m := range view.SuperPeers {
		if _, ok := infos[m.Name]; !ok {
			infos[m.Name] = m
		}
	}
	if !view.SuperPeer.IsZero() {
		if _, ok := infos[view.SuperPeer.Name]; !ok {
			infos[view.SuperPeer.Name] = view.SuperPeer
		}
	}
	var out []artifactCandidate
	seen := map[string]bool{self: true}
	for _, name := range s.casLoc.Holders(key) {
		if seen[name] || len(out) >= maxPeerCandidates {
			continue
		}
		m, ok := infos[name]
		if !ok {
			continue // advertised by a site outside the reachable view
		}
		seen[name] = true
		out = append(out, artifactCandidate{info: m})
	}
	if home, ok := artifactHome(view, key); ok && !seen[home.Name] {
		out = append(out, artifactCandidate{info: home, pull: true})
	}
	return out
}

// artifactHome elects the blob's rendezvous home among the view's group
// members: highest fnv64(key|name) wins, names break ties, so every member
// of the same epoch-fenced view picks the same site with no coordination.
func artifactHome(v superpeer.View, key cas.Key) (superpeer.SiteInfo, bool) {
	var best superpeer.SiteInfo
	var bestScore uint64
	found := false
	for _, m := range v.Group {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key.String()))
		_, _ = h.Write([]byte{'|'})
		_, _ = h.Write([]byte(m.Name))
		sc := h.Sum64()
		if !found || sc > bestScore || (sc == bestScore && m.Name < best.Name) {
			best, bestScore, found = m, sc, true
		}
	}
	return best, found
}

// fetchFromPeer asks one peer for the blob and, when the served copy
// verifies against the declared checksum, pays the peer-transfer cost and
// ingests it locally. Any failure — unreachable peer, miss, rotted copy —
// drops the stale location and returns false so the ladder moves on.
func (s *Service) fetchFromPeer(ftp *gridftp.Client, peer superpeer.SiteInfo, key cas.Key, srcURL, dst string, pull bool) bool {
	body := xmlutil.NewNode("ArtifactFetch")
	body.SetAttr("algo", key.Algo)
	body.SetAttr("sum", key.Sum)
	body.SetAttr("url", srcURL)
	if pull {
		body.SetAttr("pull", "1")
	}
	resp, err := s.call(context.Background(), nil, peer.ServiceURL(ServiceName), "ArtifactFetch", body)
	if err != nil || resp == nil {
		s.casLoc.Drop(key, peer.Name)
		return false
	}
	size, _ := strconv.ParseInt(resp.AttrOr("size", ""), 10, 64)
	// Verify on ingest: the peer reports the content sum its copy actually
	// has; anything but the declared checksum is rejected.
	if resp.AttrOr("actual", "") != key.Sum || size <= 0 {
		s.casTel.verifyFailures.Inc()
		s.casLoc.Drop(key, peer.Name)
		return false
	}
	md5 := resp.AttrOr("md5", "")
	artifact := resp.AttrOr("artifact", "")
	ftp.PeerCopy(peer.Name, s.site, dst, size, md5, artifact)
	s.casTel.peerFetches.Inc()
	s.casLoc.Note(key, peer.Name, s.hlc.Now())
	s.casIngest(cas.Entry{Key: key, Sum: key.Sum, Size: size, MD5: md5, Artifact: artifact, URL: srcURL})
	return true
}

// ---------------------------------------------------------------------------
// Pull-through (server side of the rendezvous home).

// casPull is one in-flight origin pull; concurrent requesters of the same
// key share the leader's result.
type casPull struct {
	done chan struct{}
	e    cas.Entry
	err  error
}

// casPullThrough fetches the blob from origin into the local CAS exactly
// once no matter how many group members ask concurrently.
func (s *Service) casPullThrough(key cas.Key, url string) (cas.Entry, error) {
	s.casMu.Lock()
	if p, ok := s.casFlight[key]; ok {
		s.casMu.Unlock()
		<-p.done
		return p.e, p.err
	}
	p := &casPull{done: make(chan struct{})}
	s.casFlight[key] = p
	s.casMu.Unlock()
	p.e, p.err = s.casOriginIngest(key, url)
	s.casMu.Lock()
	delete(s.casFlight, key)
	s.casMu.Unlock()
	close(p.done)
	return p.e, p.err
}

// casOriginIngest pulls the blob from origin straight into the CAS (no
// filesystem entry: the home is hosting, not installing).
func (s *Service) casOriginIngest(key cas.Key, url string) (cas.Entry, error) {
	// A racer may have completed between our miss and the flight slot.
	if e, ok := s.cas.Get(key); ok && e.Sum == key.Sum {
		return e, nil
	}
	a, err := s.FTP.Pull(url)
	if err != nil {
		return cas.Entry{}, err
	}
	if got := a.Checksum(key.Algo); got != key.Sum {
		s.casTel.verifyFailures.Inc()
		return cas.Entry{}, &gridftp.ChecksumError{URL: url, Algo: key.Algo, Want: key.Sum, Got: got}
	}
	s.casTel.originFetches.Inc()
	e := cas.Entry{Key: key, Sum: key.Sum, Size: a.SizeBytes, MD5: a.MD5(), Artifact: a.Name, URL: url, Added: s.hlc.Now()}
	s.casIngest(e)
	return e, nil
}

// ---------------------------------------------------------------------------
// Wire ops.

// artifactFetchXML answers one ArtifactFetch: the blob's metadata if held
// (or pulled through from origin when the caller elected us home), a fault
// otherwise. The response's "actual" attribute carries the content sum the
// stored copy really has — the requester does the verification, so a
// rotted copy is advertised honestly and rejected at ingest.
func (s *Service) artifactFetchXML(body *xmlutil.Node) (*xmlutil.Node, error) {
	if s.cas == nil {
		return nil, fmt.Errorf("ArtifactFetch: artifact store disabled")
	}
	if body == nil {
		return nil, fmt.Errorf("ArtifactFetch: missing request")
	}
	key := cas.Key{Algo: body.AttrOr("algo", ""), Sum: body.AttrOr("sum", "")}
	if key.IsZero() {
		return nil, fmt.Errorf("ArtifactFetch: needs algo and sum")
	}
	e, ok := s.cas.Get(key)
	if !ok && body.AttrOr("pull", "") == "1" {
		if url := body.AttrOr("url", ""); url != "" {
			pulled, err := s.casPullThrough(key, url)
			if err != nil {
				return nil, fmt.Errorf("ArtifactFetch: pull-through: %w", err)
			}
			e, ok = pulled, true
		}
	}
	if !ok {
		return nil, fmt.Errorf("ArtifactFetch: %s not held", key)
	}
	n := xmlutil.NewNode("Artifact")
	n.SetAttr("algo", e.Key.Algo)
	n.SetAttr("sum", e.Key.Sum)
	n.SetAttr("actual", e.Sum)
	n.SetAttr("size", strconv.FormatInt(e.Size, 10))
	n.SetAttr("md5", e.MD5)
	n.SetAttr("artifact", e.Artifact)
	n.SetAttr("site", s.selfName())
	return n, nil
}

// ArtifactStats is the artifact grid's admin-visible state for one site.
type ArtifactStats struct {
	Site    string
	Enabled bool
	Entries int
	Bytes   int64
	Budget  int64

	Hits           uint64
	Misses         uint64
	Evictions      uint64
	PeerFetches    uint64
	OriginFetches  uint64
	VerifyFailures uint64
	BytesSaved     uint64
}

// ArtifactStats reports the site's CAS counters and occupancy.
func (s *Service) ArtifactStats() ArtifactStats {
	st := ArtifactStats{Site: s.site.Attrs.Name}
	if s.cas == nil {
		return st
	}
	st.Enabled = true
	st.Entries, st.Bytes, st.Budget, _ = s.cas.Stats()
	st.Hits = s.casTel.hits.Value()
	st.Misses = s.casTel.misses.Value()
	st.Evictions = s.casTel.evictions.Value()
	st.PeerFetches = s.casTel.peerFetches.Value()
	st.OriginFetches = s.casTel.originFetches.Value()
	st.VerifyFailures = s.casTel.verifyFailures.Value()
	st.BytesSaved = s.casTel.bytesSaved.Value()
	return st
}

// ArtifactHoldings lists the blobs the site currently holds, key-ordered.
func (s *Service) ArtifactHoldings() []cas.Entry {
	if s.cas == nil {
		return nil
	}
	return s.cas.SortedHoldings()
}

// CorruptArtifact flips the stored content sum of one held blob (test
// fault injection: models undetected bit rot on the holder's disk).
func (s *Service) CorruptArtifact(key cas.Key) bool {
	if s.cas == nil {
		return false
	}
	return s.cas.Corrupt(key)
}

// ArtifactStatusXML renders the site's artifact-grid status for the wire —
// the payload of the ArtifactStatus op and of `glarectl artifacts`.
func (s *Service) ArtifactStatusXML() *xmlutil.Node {
	n := xmlutil.NewNode("ArtifactStatus")
	st := s.ArtifactStats()
	n.SetAttr("site", st.Site)
	if !st.Enabled {
		n.SetAttr("enabled", "false")
		return n
	}
	n.SetAttr("enabled", "true")
	n.SetAttr("entries", strconv.Itoa(st.Entries))
	n.SetAttr("bytes", strconv.FormatInt(st.Bytes, 10))
	n.SetAttr("budget", strconv.FormatInt(st.Budget, 10))
	n.SetAttr("hits", strconv.FormatUint(st.Hits, 10))
	n.SetAttr("misses", strconv.FormatUint(st.Misses, 10))
	n.SetAttr("evictions", strconv.FormatUint(st.Evictions, 10))
	n.SetAttr("peerFetches", strconv.FormatUint(st.PeerFetches, 10))
	n.SetAttr("originFetches", strconv.FormatUint(st.OriginFetches, 10))
	n.SetAttr("verifyFailures", strconv.FormatUint(st.VerifyFailures, 10))
	n.SetAttr("bytesSaved", strconv.FormatUint(st.BytesSaved, 10))
	for _, e := range s.ArtifactHoldings() {
		b := n.Elem("Blob", "")
		b.SetAttr("algo", e.Key.Algo)
		b.SetAttr("sum", e.Key.Sum)
		b.SetAttr("size", strconv.FormatInt(e.Size, 10))
		b.SetAttr("artifact", e.Artifact)
		if e.Sum != e.Key.Sum {
			b.SetAttr("corrupt", "true")
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Anti-entropy advertisement.

// appendBlobDigest adds one <Blob> element per known (blob, holder)
// location to the registry digest, so holdings ride the same anti-entropy
// pass that reconciles ATR/ADR entries.
func (s *Service) appendBlobDigest(n *xmlutil.Node) {
	if s.cas == nil {
		return
	}
	for _, loc := range s.casLoc.Snapshot() {
		b := n.Elem("Blob", "")
		b.SetAttr("algo", loc.Key.Algo)
		b.SetAttr("sum", loc.Key.Sum)
		b.SetAttr("site", loc.Site)
		b.SetAttr("lut", loc.LUT.Format(epr.TimeLayout))
	}
}

// mergeBlobDigest folds a remote digest's <Blob> elements into the
// location table (newest advertisement wins; our own holdings are
// authoritative locally and skipped).
func (s *Service) mergeBlobDigest(digest *xmlutil.Node) {
	if s.cas == nil {
		return
	}
	self := s.selfName()
	for _, n := range digest.All("Blob") {
		key := cas.Key{Algo: n.AttrOr("algo", ""), Sum: n.AttrOr("sum", "")}
		holder := n.AttrOr("site", "")
		lut, perr := time.Parse(epr.TimeLayout, n.AttrOr("lut", ""))
		if key.IsZero() || holder == "" || holder == self || perr != nil {
			continue
		}
		s.casLoc.Note(key, holder, lut)
	}
}
