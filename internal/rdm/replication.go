package rdm

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"glare/internal/epr"
	"glare/internal/hlc"
	"glare/internal/lease"
	"glare/internal/replicate"
	"glare/internal/store"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// This file wires quorum replication (internal/replicate) under the RDM:
// every ATR/ADR/lease mutation a site journals is intercepted at the
// journal layer and fanned out to the site's replica set; registrations
// additionally block on the write quorum before acknowledging the client.
// Replicas keep the copies as shadow state ("replica:<origin>:<reg>"
// registries riding the ordinary WAL), the super-peer promotes the
// most-caught-up replica when an owner dies permanently, read repair
// back-fills replicas that missed writes, and a promoted holder hands the
// data back when the dead site's replacement rejoins.

// Registry names on the replication wire.
const (
	replRegATR   = "atr"
	replRegADR   = "adr"
	replRegLease = "lease"
)

// replSuspicionThreshold is how many consecutive failed liveness probes
// the replica monitor tolerates before declaring an owner permanently
// lost and promoting — so failover completes within a bounded number of
// suspicion intervals.
const replSuspicionThreshold = 2

// replicaRegPrefix keys the shadow registries inside the store.
const replicaRegPrefix = "replica:"

func replicaRegName(origin, reg string) string {
	return replicaRegPrefix + origin + ":" + reg
}

// parseReplicaReg splits "replica:<origin>:<reg>" back apart.
func parseReplicaReg(name string) (origin, reg string, ok bool) {
	rest, found := strings.CutPrefix(name, replicaRegPrefix)
	if !found {
		return "", "", false
	}
	origin, reg, ok = strings.Cut(rest, ":")
	return origin, reg, ok && origin != "" && reg != ""
}

// replJournal composes a registry's durable journal with the replication
// fan-out: the local write lands first (it is the owner's quorum vote),
// then the mutation ships to the replica set asynchronously. It satisfies
// both atr.Journal and adr.Journal.
type replJournal struct {
	next replicate.Journal // the store's WAL adapter; nil on memory-only sites
	repl *replicate.Replicator
	reg  string
}

func (j replJournal) RecordPut(key string, doc *xmlutil.Node, lut, term time.Time) {
	if j.next != nil {
		j.next.RecordPut(key, doc, lut, term)
	}
	j.repl.ForwardPut(j.reg, key, doc, lut, term)
}

func (j replJournal) RecordDelete(key string) {
	if j.next != nil {
		j.next.RecordDelete(key)
	}
	j.repl.ForwardDelete(j.reg, key)
}

// replLeaseJournal is the lease-side composition. Tickets travel as JSON
// inside a <LeaseTicket> node so they ride the same entry transport as
// registry documents. Lease grants replicate asynchronously (no quorum
// gate — a lease is a lost-on-failure reservation, not registry data),
// but a promoted replica still revives unexpired tickets so clients keep
// their reservations across an owner's death.
type replLeaseJournal struct {
	next lease.Journal
	repl *replicate.Replicator
	// now is the site's HLC: the replication LUT for a grant comes from it
	// rather than from the ticket's Start so that the later release
	// tombstone (also HLC-stamped) always orders after the grant, however
	// skewed the granting site's wall clock is. The ticket itself keeps its
	// physical-clock Start/End — lease validity is judged in the granter's
	// own time frame (see lease.Service).
	now func() time.Time
}

func (j replLeaseJournal) RecordAcquire(t lease.Ticket) {
	if j.next != nil {
		j.next.RecordAcquire(t)
	}
	j.repl.ForwardPut(replRegLease, strconv.FormatUint(t.ID, 10), leaseTicketDoc(t), j.now(), t.End)
}

func (j replLeaseJournal) RecordRelease(id uint64) {
	if j.next != nil {
		j.next.RecordRelease(id)
	}
	j.repl.ForwardDelete(replRegLease, strconv.FormatUint(id, 10))
}

func (j replLeaseJournal) RecordLimit(deployment string, max int) {
	// Shared-lease limits are operator configuration, not acknowledged
	// client state; they stay site-local.
	if j.next != nil {
		j.next.RecordLimit(deployment, max)
	}
}

func leaseTicketDoc(t lease.Ticket) *xmlutil.Node {
	b, _ := json.Marshal(t)
	return xmlutil.NewNode("LeaseTicket", string(b))
}

func ticketFromDoc(doc *xmlutil.Node) (lease.Ticket, error) {
	var t lease.Ticket
	if doc == nil || doc.Name != "LeaseTicket" {
		return t, fmt.Errorf("rdm: not a lease ticket document")
	}
	err := json.Unmarshal([]byte(doc.Text), &t)
	return t, err
}

// setupReplication assembles the replicator and re-binds the registry and
// lease journals through it. Runs after attachStore, so the wrapped
// journals compose with (not replace) the WAL adapters, and the shadow
// registries recovered from the WAL are replayed into the holder.
func (s *Service) setupReplication(cfg Config) {
	if cfg.ReplicaK <= 1 || s.agent == nil || s.client == nil {
		return
	}
	var factory replicate.JournalFactory
	if s.store != nil {
		st := s.store
		factory = func(origin, reg string) replicate.Journal {
			return st.RegistryJournal(replicaRegName(origin, reg))
		}
	}
	s.repl = replicate.New(replicate.Config{
		Self: s.agent.Self(),
		K:    cfg.ReplicaK,
		View: s.view,
		Call: func(ctx context.Context, address, op string, body *xmlutil.Node) (*xmlutil.Node, error) {
			return s.call(ctx, nil, address, op, body)
		},
		Service:  ServiceName,
		Journals: factory,
		Now:      s.hlc.Now,
		Tel:      s.tel,
	})
	var atrNext, adrNext replicate.Journal
	var leaseNext lease.Journal
	if s.store != nil {
		atrNext = s.store.RegistryJournal(store.RegATR)
		adrNext = s.store.RegistryJournal(store.RegADR)
		leaseNext = s.store.LeaseJournal()
		s.restoreReplicas(s.store.State())
	}
	s.ATR.SetJournal(replJournal{next: atrNext, repl: s.repl, reg: replRegATR})
	s.ADR.SetJournal(replJournal{next: adrNext, repl: s.repl, reg: replRegADR})
	s.Leases.SetJournal(replLeaseJournal{next: leaseNext, repl: s.repl, now: s.hlc.Now})
	// The overlay carries the factor: every coordinated view is stamped
	// with it, so all sites derive the same replica-set assignment.
	s.agent.SetReplicaK(cfg.ReplicaK)
}

// restoreReplicas replays the shadow registries ("replica:<origin>:<reg>")
// out of the recovered store state into the holder. restoreFromStore only
// reads the site's own atr/adr registries, so the two recoveries are
// disjoint.
func (s *Service) restoreReplicas(state *store.State) {
	for name, entries := range state.Registries {
		origin, reg, ok := parseReplicaReg(name)
		if !ok {
			continue
		}
		for key, e := range entries {
			doc, err := xmlutil.ParseString(e.Doc)
			if err != nil {
				continue
			}
			s.repl.Holder().Restore(origin, reg, replicate.Entry{Key: key, Doc: doc, LUT: e.LUT, Term: e.Term})
		}
	}
}

// Replicator exposes the site's replicator (nil when replication is off).
func (s *Service) Replicator() *replicate.Replicator { return s.repl }

// MountReplication adds the replication wire operations to the RDM's
// service table. Mount calls it when replication is enabled.
func (s *Service) MountReplication(srv *transport.Server) {
	srv.RegisterCtxService(ServiceName, s.tracedTable(map[string]transport.CtxHandler{
		// Replicate applies one mutation from an owner. The epoch fence
		// inside Apply rejects writes stamped with a view older than ours.
		"Replicate": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			m, err := replicate.MutationFromXML(body)
			if err != nil {
				return nil, err
			}
			if err := s.repl.Apply(m); err != nil {
				return nil, err
			}
			return xmlutil.NewNode("Applied"), nil
		},
		// ReplicaFetch serves an origin's entries — our own registries when
		// asked about ourselves (the canonical copy), otherwise whatever the
		// holder shadows. Read repair and promotions pull through this.
		"ReplicaFetch": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			origin := textOf(body)
			if origin == "" {
				return nil, fmt.Errorf("ReplicaFetch: needs an origin site name")
			}
			if origin == s.selfName() {
				return replicate.EntriesToXML(origin, s.ownEntries()), nil
			}
			return replicate.EntriesToXML(origin, s.heldEntries(origin)), nil
		},
		"ReplicaStatus": func(_ context.Context, _ *telemetry.Span, _ *xmlutil.Node) (*xmlutil.Node, error) {
			return s.ReplicaStatusXML(), nil
		},
		// ReplicaPromote orders this site to adopt a dead origin's entries
		// as its own (sent by the super-peer to the most-caught-up holder).
		"ReplicaPromote": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			origin := textOf(body)
			if origin == "" {
				return nil, fmt.Errorf("ReplicaPromote: needs an origin site name")
			}
			adopted := s.PromoteOrigin(origin)
			resp := xmlutil.NewNode("Promoted")
			resp.SetAttr("origin", origin)
			resp.SetAttr("adopted", strconv.Itoa(adopted))
			return resp, nil
		},
		// ReplicaHandOff delivers a promoted holder's copy of OUR data back
		// to us — we are a dead site's replacement rejoining under its name.
		"ReplicaHandOff": func(_ context.Context, _ *telemetry.Span, body *xmlutil.Node) (*xmlutil.Node, error) {
			origin, regs, err := replicate.EntriesFromXML(body)
			if err != nil {
				return nil, err
			}
			if origin != s.selfName() {
				return nil, fmt.Errorf("ReplicaHandOff: payload for %q delivered to %q", origin, s.selfName())
			}
			adopted := s.adoptEntries(regs)
			resp := xmlutil.NewNode("HandedOff")
			resp.SetAttr("adopted", strconv.Itoa(adopted))
			return resp, nil
		},
	}))
}

// ownEntries snapshots this site's own registries in replication-entry
// form (the canonical copy a replica repairs from). Lease tickets are not
// enumerable from outside the lease service; they reach replicas through
// the journal fan-out only.
func (s *Service) ownEntries() map[string][]replicate.Entry {
	out := map[string][]replicate.Entry{}
	for _, name := range s.ATR.Names() {
		doc, ok := s.ATR.LookupDocument(name)
		if !ok {
			continue
		}
		lut, term, ok := s.ATR.Timestamps(name)
		if !ok {
			continue
		}
		out[replRegATR] = append(out[replRegATR], replicate.Entry{Key: name, Doc: doc.Clone(), LUT: lut, Term: term})
	}
	for _, name := range s.ADR.Names() {
		doc, ok := s.ADR.GetDocument(name)
		if !ok {
			continue
		}
		lut, term, ok := s.ADR.Timestamps(name)
		if !ok {
			continue
		}
		out[replRegADR] = append(out[replRegADR], replicate.Entry{Key: name, Doc: doc.Clone(), LUT: lut, Term: term})
	}
	return out
}

// heldEntries snapshots the holder's shadow copy of one origin.
func (s *Service) heldEntries(origin string) map[string][]replicate.Entry {
	h := s.repl.Holder()
	out := map[string][]replicate.Entry{}
	for _, reg := range []string{replRegATR, replRegADR, replRegLease} {
		if es := h.Entries(origin, reg); len(es) > 0 {
			out[reg] = es
		}
	}
	return out
}

// adoptEntries folds replicated entries into this site's own registries,
// newest copy wins. Adoption goes through Adopt — journaled like a
// registration, so the adopted entries are durable here AND re-replicate
// to this site's own replica set — and adopted types re-register with the
// local index so resolution re-routes to the new owner transparently.
func (s *Service) adoptEntries(regs map[string][]replicate.Entry) int {
	adopted := 0
	for _, e := range regs[replRegATR] {
		if e.Doc == nil {
			continue
		}
		if lut, _, ok := s.ATR.Timestamps(e.Key); ok && !e.LUT.After(lut) {
			continue
		}
		s.ATR.Adopt(e.Key, e.Doc.Clone(), e.LUT, e.Term)
		if s.localIndex != nil {
			s.localIndex.Register(s.ATR.EPR(e.Key), e.Doc.Clone())
		}
		adopted++
	}
	for _, e := range regs[replRegADR] {
		if e.Doc == nil {
			continue
		}
		if lut, _, ok := s.ADR.Timestamps(e.Key); ok && !e.LUT.After(lut) {
			continue
		}
		s.ADR.Adopt(e.Key, e.Doc.Clone(), e.LUT, e.Term)
		adopted++
	}
	for _, e := range regs[replRegLease] {
		t, err := ticketFromDoc(e.Doc)
		if err != nil {
			continue
		}
		if s.Leases.Restore(t) {
			adopted++
		}
	}
	return adopted
}

// PromoteOrigin makes this site the authoritative owner of a dead
// origin's replicated entries. Idempotent: a second promotion of the same
// origin is a no-op. Returns how many entries were adopted.
func (s *Service) PromoteOrigin(origin string) int {
	if s.repl == nil {
		return 0
	}
	h := s.repl.Holder()
	if h.Promoted(origin) {
		return 0
	}
	adopted := s.adoptEntries(s.heldEntries(origin))
	h.SetPromoted(origin, true)
	s.repl.Promotions.Inc()
	return adopted
}

// CheckReplicas is one replica-failure-detection pass, run by super-peers:
// probe every group member, and once a member misses
// replSuspicionThreshold consecutive probes, find the most-caught-up
// holder of its data — judged by (entries held, newest LastUpdateTime),
// both of which survive a holder's own restart — and promote it. Returns
// how many promotions this pass ordered.
func (s *Service) CheckReplicas() int {
	if s.repl == nil || s.agent == nil || !s.agent.IsSuperPeer() {
		return 0
	}
	view := s.view()
	promotions := 0
	for _, member := range view.Peers(s.selfName()) {
		if s.agent.Ping(member) {
			// Clears the suspicion count AND any recorded promotion order:
			// the site answers again, so a later death re-promotes.
			s.repl.ClearSuspicion(member.Name)
			continue
		}
		if s.repl.Suspect(member.Name) < replSuspicionThreshold {
			continue
		}
		// Completion is tracked on the super-peer side (PromotionOrdered):
		// the promoted best holder is usually a REMOTE site, so the local
		// holder's flag cannot tell a done promotion from a pending one —
		// relying on it would re-gather status and re-send ReplicaPromote
		// on every pass forever. The holder check still short-circuits the
		// self-promotion case after a super-peer restart.
		if s.repl.PromotionOrdered(member.Name) || s.repl.Holder().Promoted(member.Name) {
			continue
		}
		if s.promoteBestHolder(view, member) {
			s.repl.MarkPromotionOrdered(member.Name)
			promotions++
		}
	}
	return promotions
}

// promoteBestHolder gathers replica status for a dead owner from every
// surviving member of its replica set (including this site) and promotes
// the most-caught-up one.
func (s *Service) promoteBestHolder(view superpeer.View, dead superpeer.SiteInfo) bool {
	self := s.selfName()
	type candidate struct {
		site    superpeer.SiteInfo
		entries int
		lut     time.Time
		isSelf  bool
	}
	var best *candidate
	better := func(c *candidate) bool {
		if best == nil {
			return true
		}
		if c.entries != best.entries {
			return c.entries > best.entries
		}
		// Site name breaks exact LUT ties so every super-peer — whichever
		// one runs the pass — promotes the same holder deterministically.
		return hlc.Newer(c.lut, c.site.Name, best.lut, best.site.Name)
	}
	for _, c := range replicate.ReplicaSet(view, dead.Name, s.repl.K()) {
		if c.Name == dead.Name {
			continue
		}
		if c.Name == self {
			entries, lut, _ := s.repl.Holder().Status(dead.Name)
			cc := &candidate{site: c, entries: entries, lut: lut, isSelf: true}
			if better(cc) {
				best = cc
			}
			continue
		}
		resp, err := s.call(context.Background(), nil, c.ServiceURL(ServiceName), "ReplicaStatus", nil)
		if err != nil || resp == nil {
			continue
		}
		for _, o := range resp.All("Origin") {
			if o.AttrOr("name", "") != dead.Name {
				continue
			}
			entries, _ := strconv.Atoi(o.AttrOr("entries", "0"))
			lut, _ := time.Parse(epr.TimeLayout, o.AttrOr("lastLUT", ""))
			cc := &candidate{site: c, entries: entries, lut: lut}
			if better(cc) {
				best = cc
			}
		}
	}
	if best == nil || best.entries == 0 {
		return false
	}
	if best.isSelf {
		s.PromoteOrigin(dead.Name)
		return true
	}
	_, err := s.call(context.Background(), nil, best.site.ServiceURL(ServiceName), "ReplicaPromote",
		xmlutil.NewNode("Origin", dead.Name))
	return err == nil
}

// RepairReplicas is one read-repair pass, run by every replicating site:
// for each group member whose replica set includes us, pull its entries —
// from the member itself when alive (the canonical copy), else from its
// fellow replicas — and back-fill anything we missed. Afterwards, any
// origin we promoted that answers again (a replacement joined under the
// dead site's name) gets its data handed back. Returns how many entries
// were back-filled.
func (s *Service) RepairReplicas() int {
	if s.repl == nil {
		return 0
	}
	view := s.view()
	self := s.selfName()
	repaired := 0
	for _, member := range view.Peers(self) {
		set := replicate.ReplicaSet(view, member.Name, s.repl.K())
		if !replicate.Contains(set, self) {
			continue
		}
		repaired += s.repairFrom(member, set)
	}
	s.handOffPromoted(view)
	return repaired
}

func (s *Service) repairFrom(origin superpeer.SiteInfo, set []superpeer.SiteInfo) int {
	self := s.selfName()
	sources := []superpeer.SiteInfo{origin}
	for _, rep := range set {
		if rep.Name != self && rep.Name != origin.Name {
			sources = append(sources, rep)
		}
	}
	h := s.repl.Holder()
	for _, src := range sources {
		resp, err := s.call(context.Background(), nil, src.ServiceURL(ServiceName), "ReplicaFetch",
			xmlutil.NewNode("Origin", origin.Name))
		if err != nil || resp == nil {
			continue
		}
		name, regs, perr := replicate.EntriesFromXML(resp)
		if perr != nil || name != origin.Name {
			continue
		}
		n := 0
		for reg, entries := range regs {
			for _, e := range entries {
				if h.Has(origin.Name, reg, e.Key, e.LUT) {
					continue
				}
				if h.Put(origin.Name, reg, e.Key, e.Doc, e.LUT, e.Term) {
					n++
					s.repl.ReadRepairs.Inc()
				}
			}
		}
		return n
	}
	return 0
}

// handOffPromoted pushes adopted entries back to origins that answer
// again. The receiver adopts newest-wins, so repeating a hand-off is
// harmless; the promoted flag clears only after a successful push.
func (s *Service) handOffPromoted(view superpeer.View) {
	h := s.repl.Holder()
	for _, origin := range h.Origins() {
		if !h.Promoted(origin) {
			continue
		}
		var target superpeer.SiteInfo
		for _, m := range view.Group {
			if m.Name == origin {
				target = m
			}
		}
		if target.IsZero() || !s.agent.Ping(target) {
			continue
		}
		body := replicate.EntriesToXML(origin, s.heldEntries(origin))
		if _, err := s.call(context.Background(), nil, target.ServiceURL(ServiceName), "ReplicaHandOff", body); err != nil {
			continue
		}
		h.SetPromoted(origin, false)
		s.repl.HandOffs.Inc()
	}
}

// ReplicaStatusXML renders this site's replication state for the wire —
// the payload of the RDM "ReplicaStatus" operation and of
// `glarectl replicas`.
func (s *Service) ReplicaStatusXML() *xmlutil.Node {
	n := xmlutil.NewNode("Replicas")
	n.SetAttr("site", s.selfName())
	if s.repl == nil {
		n.SetAttr("enabled", "false")
		return n
	}
	n.SetAttr("enabled", "true")
	n.SetAttr("k", strconv.Itoa(s.repl.K()))
	for _, rep := range s.repl.Replicas() {
		n.Elem("Replica").SetAttr("name", rep.Name)
	}
	h := s.repl.Holder()
	for _, origin := range h.Origins() {
		entries, lastLUT, promoted := h.Status(origin)
		o := n.Elem("Origin")
		o.SetAttr("name", origin)
		o.SetAttr("entries", strconv.Itoa(entries))
		if !lastLUT.IsZero() {
			o.SetAttr("lastLUT", lastLUT.Format(epr.TimeLayout))
		}
		o.SetAttr("promoted", strconv.FormatBool(promoted))
	}
	return n
}
