package rdm

import (
	"strings"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/deployfile"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/workload"
)

// single builds a standalone single-site RDM (no overlay, no transport).
func single(t *testing.T) (*Service, *simclock.Virtual) {
	t.Helper()
	v := simclock.NewVirtual(time.Time{})
	st := site.New(site.Attributes{
		Name: "solo.uibk", ProcessorMHz: 1500, MemoryMB: 2048,
		Platform: "Intel", OS: "Linux", Arch: "32bit",
	}, v, site.StandardUniverse())
	resolver := workload.NewResolver(st.Repo)
	svc, err := New(Config{
		Site:        st,
		Clock:       v,
		DeployFiles: resolver.Fetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return svc, v
}

func registerImaging(t *testing.T, s *Service) {
	t.Helper()
	for _, ty := range workload.ImagingTypes() {
		if _, err := s.RegisterType(ty); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnDemandDeploymentResolvesDependencies(t *testing.T) {
	s, v := single(t)
	registerImaging(t, s)
	t0 := v.Now()

	// The Example-3 flow: ask for the abstract ImageConversion type; GLARE
	// finds concrete JPOVray, sees no deployment anywhere, installs Java
	// and Ant first, then JPOVray, and returns the deployment references.
	deps, err := s.GetDeployments("ImageConversion", MethodExpect, true)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range deps {
		names[d.Name] = true
	}
	if !names["jpovray"] || !names["WS-JPOVray"] {
		t.Fatalf("deployments = %v", names)
	}
	// The dependency chain was installed.
	if len(s.ADR.ByType("Java")) == 0 || len(s.ADR.ByType("Ant")) == 0 {
		t.Fatal("dependencies not deployed")
	}
	// The type is marked deployed on this site.
	if on := s.ATR.DeployedOn("JPOVray"); len(on) != 1 || on[0] != "solo.uibk" {
		t.Fatalf("deployed on %v", on)
	}
	// Virtual time advanced by a realistic installation duration
	// (seconds, not microseconds).
	if el := v.Now().Sub(t0); el < 5*time.Second {
		t.Fatalf("installation took only %v of virtual time", el)
	}
	// The service deployment landed in the site container.
	if !s.Site().HasService("WS-JPOVray") {
		t.Fatal("WS-JPOVray not hosted")
	}
	// A second request needs no deployment: answers immediately from ADR.
	again, err := s.GetDeployments("ImageConversion", MethodExpect, false)
	if err != nil || len(again) != len(deps) {
		t.Fatalf("second request: %v %v", again, err)
	}
}

func TestGetDeploymentsUnknownType(t *testing.T) {
	s, _ := single(t)
	if _, err := s.GetDeployments("NoSuchThing", MethodExpect, true); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestGetDeploymentsNoDeployDisallowed(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	_, err := s.GetDeployments("JPOVray", MethodExpect, false)
	if err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("err = %v", err)
	}
}

func TestManualModeNotifiesAdmin(t *testing.T) {
	s, _ := single(t)
	ty := &activity.Type{
		Name: "ManualApp",
		Installation: &activity.Installation{
			Mode:          activity.ModeManual,
			DeployFileURL: workload.DeployFileURL("Wien2k"),
		},
		Artifact: "Wien2k",
	}
	if _, err := s.RegisterType(ty); err != nil {
		t.Fatal(err)
	}
	_, err := s.GetDeployments("ManualApp", MethodExpect, true)
	if err == nil || !strings.Contains(err.Error(), "manual") {
		t.Fatalf("err = %v", err)
	}
	notices := s.Site().Notices()
	if len(notices) != 1 || !strings.Contains(notices[0].Subject, "manual installation") {
		t.Fatalf("notices = %v", notices)
	}
}

func TestConstraintMismatchRejectsLocalDeploy(t *testing.T) {
	s, _ := single(t)
	ty := &activity.Type{
		Name: "SolarisOnly",
		Installation: &activity.Installation{
			Mode:          activity.ModeOnDemand,
			Constraints:   activity.Constraints{OS: "Solaris"},
			DeployFileURL: workload.DeployFileURL("Wien2k"),
		},
		Artifact: "Wien2k",
	}
	s.RegisterType(ty)
	// No peers exist, so on-demand deployment has nowhere to go.
	if _, err := s.GetDeployments("SolarisOnly", MethodExpect, true); err == nil {
		t.Fatal("constraint mismatch must fail without eligible peers")
	}
}

func TestDeployMethodsProduceTable1Shape(t *testing.T) {
	s, _ := single(t)
	for _, ty := range workload.EvaluationTypes() {
		if _, err := s.RegisterType(ty); err != nil {
			t.Fatal(err)
		}
	}
	wien, _ := s.LookupType("Wien2k")
	expectRep, err := s.DeployLocal(wien, MethodExpect)
	if err != nil {
		t.Fatal(err)
	}
	// Tear down so the CoG run reinstalls.
	for _, d := range expectRep.Deployments {
		if err := s.Undeploy(d.Name); err != nil {
			t.Fatal(err)
		}
	}
	// The artifact grid retains the blob across Undeploy; drop it so the
	// CoG run pays the paper's calibrated transfer cost again.
	if s.cas != nil {
		for _, e := range s.cas.Holdings() {
			s.cas.Delete(e.Key)
		}
	}
	cogRep, err := s.DeployLocal(wien, MethodCoG)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 shape: CoG is slower in total, with larger method overhead
	// and larger communication cost.
	if cogRep.Timings.Total() <= expectRep.Timings.Total() {
		t.Fatalf("CoG total %v must exceed Expect total %v",
			cogRep.Timings.Total(), expectRep.Timings.Total())
	}
	if cogRep.Timings.MethodOverhead <= expectRep.Timings.MethodOverhead {
		t.Fatalf("CoG overhead %v vs Expect %v",
			cogRep.Timings.MethodOverhead, expectRep.Timings.MethodOverhead)
	}
	if cogRep.Timings.Communication <= expectRep.Timings.Communication {
		t.Fatalf("CoG comm %v vs Expect %v",
			cogRep.Timings.Communication, expectRep.Timings.Communication)
	}
	// Expect overhead matches the Table 1 calibration exactly (2,100 ms).
	if expectRep.Timings.MethodOverhead != 2100*time.Millisecond {
		t.Fatalf("expect overhead = %v", expectRep.Timings.MethodOverhead)
	}
}

func TestUndeployRemovesEverything(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	deps, err := s.GetDeployments("JPOVray", MethodExpect, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deps {
		if err := s.Undeploy(d.Name); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ADR.ByType("JPOVray"); len(got) != 0 {
		t.Fatalf("registry still has %v", got)
	}
	if s.Site().HasService("WS-JPOVray") {
		t.Fatal("service still hosted")
	}
	if err := s.Undeploy("jpovray"); err == nil {
		t.Fatal("double undeploy must fail")
	}
}

func TestInstantiateRecordsMetricsAndHonorsLeases(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	if _, err := s.GetDeployments("JPOVray", MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Instantiate("jpovray", "client-a", 0, "scene.pov"); err != nil {
		t.Fatal(err)
	}
	d, _ := s.ADR.Get("jpovray")
	if d.Metrics.Invocations != 1 || d.Metrics.LastInvocation.IsZero() {
		t.Fatalf("metrics = %+v", d.Metrics)
	}
	// Exclusive lease blocks unleased use and authorizes the holder.
	tk, err := s.Leases.Acquire("jpovray", "holder", "exclusive", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Instantiate("jpovray", "client-a", 0, ""); err == nil {
		t.Fatal("exclusive lease must block unleased use")
	}
	if err := s.Instantiate("jpovray", "holder", tk.ID, ""); err != nil {
		t.Fatalf("holder blocked: %v", err)
	}
	if err := s.Instantiate("jpovray", "intruder", tk.ID, ""); err == nil {
		t.Fatal("wrong client authorized")
	}
	// Service deployments are instantiable too.
	if err := s.Instantiate("WS-JPOVray", "client-a", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Instantiate("ghost", "client-a", 0, ""); err == nil {
		t.Fatal("unknown deployment accepted")
	}
}

func TestStatusMonitorRemovesVanishedDeployments(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	if _, err := s.GetDeployments("JPOVray", MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	alive, removed := s.CheckDeployments()
	if alive < 3 || len(removed) != 0 { // jpovray + java/javac + ant + WS
		t.Fatalf("alive=%d removed=%v", alive, removed)
	}
	// Damage the site: delete the jpovray binary.
	d, _ := s.ADR.Get("jpovray")
	s.Site().FS.Remove(d.Path)
	s.Site().UndeployService("WS-JPOVray")
	_, removed = s.CheckDeployments()
	got := map[string]bool{}
	for _, r := range removed {
		got[r] = true
	}
	if !got["jpovray"] || !got["WS-JPOVray"] {
		t.Fatalf("removed = %v", removed)
	}
}

func TestTypeExpiryCascadesToDeployments(t *testing.T) {
	s, v := single(t)
	registerImaging(t, s)
	if _, err := s.GetDeployments("JPOVray", MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	if err := s.ATR.SetTermination("JPOVray", v.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	v.Advance(2 * time.Minute)
	s.CheckDeployments() // sweeps expired types, cascade fires
	if _, ok := s.ATR.Lookup("JPOVray"); ok {
		t.Fatal("type survived expiry")
	}
	if got := s.ADR.ByType("JPOVray"); len(got) != 0 {
		t.Fatalf("deployments survived type expiry: %v", got)
	}
	// Java/Ant remain: only the expired type cascades.
	if len(s.ADR.ByType("Java")) == 0 {
		t.Fatal("unrelated deployments were removed")
	}
}

func TestLoadTrackerCountsRequests(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	if s.Load.Queue() != 0 {
		t.Fatal("queue not empty at rest")
	}
	s.GetDeployments("JPOVray", MethodExpect, false) // errors, but still tracked
	if s.Load.Queue() != 0 {
		t.Fatal("queue leaked")
	}
}

func TestRegisterDeploymentDefaultsSite(t *testing.T) {
	s, _ := single(t)
	d := &activity.Deployment{
		Name: "preinstalled", Type: "Legacy", Kind: activity.KindExecutable, Path: "/opt/x/bin/x",
	}
	if _, err := s.RegisterDeployment(d); err != nil {
		t.Fatal(err)
	}
	got, _ := s.ADR.Get("preinstalled")
	if got.Site != "solo.uibk" {
		t.Fatalf("site = %q", got.Site)
	}
	// Dynamic type registration happened.
	if _, ok := s.ATR.Lookup("Legacy"); !ok {
		t.Fatal("dynamic type registration missing")
	}
}

func TestMigrateWithoutPeersFails(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	if _, err := s.GetDeployments("JPOVray", MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Migrate("jpovray", MethodExpect); err == nil {
		t.Fatal("migration without peers must fail")
	}
	// The deployment must still be there (migration failed before
	// undeploy).
	if _, ok := s.ADR.Get("jpovray"); !ok {
		t.Fatal("failed migration lost the deployment")
	}
}

func TestDeploymentFloorSelfHeals(t *testing.T) {
	s, _ := single(t)
	registerImaging(t, s)
	// Publish a type with a minimum-deployments floor of 1.
	floorType := &activity.Type{
		Name:           "FloorApp",
		MinDeployments: 1,
		Installation: &activity.Installation{
			Mode:          activity.ModeOnDemand,
			DeployFileURL: workload.DeployFileURL("Wien2k"),
		},
		Artifact: "Wien2k",
	}
	if _, err := s.RegisterType(floorType); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetDeployments("FloorApp", MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	before := len(s.ADR.ByType("FloorApp"))
	if before == 0 {
		t.Fatal("nothing deployed")
	}
	// Sabotage every deployment of the type: binaries vanish.
	for _, d := range s.ADR.ByType("FloorApp") {
		s.Site().FS.Remove(d.Path)
	}
	// One monitor pass removes the corpses AND restores the floor.
	_, removed := s.CheckDeployments()
	if len(removed) == 0 {
		t.Fatal("vanished deployments not detected")
	}
	after := s.ADR.ByType("FloorApp")
	if len(after) < floorType.MinDeployments {
		t.Fatalf("floor not restored: %d deployments", len(after))
	}
	for _, d := range after {
		if e := s.Site().FS.Stat(d.Path); e == nil {
			t.Fatalf("restored deployment %s has no binary", d.Name)
		}
	}
}

func TestFloorIgnoresManualAndForeignTypes(t *testing.T) {
	s, _ := single(t)
	// Manual-mode type with a floor: never auto-restored.
	s.RegisterType(&activity.Type{
		Name: "ManualFloor", MinDeployments: 1,
		Installation: &activity.Installation{
			Mode:          activity.ModeManual,
			DeployFileURL: workload.DeployFileURL("Wien2k"),
		},
		Artifact: "Wien2k",
	})
	if restored := s.EnforceDeploymentFloor(); len(restored) != 0 {
		t.Fatalf("manual type restored: %v", restored)
	}
	// A type never deployed on this site is someone else's to heal.
	s.RegisterType(&activity.Type{
		Name: "ElsewhereFloor", MinDeployments: 1,
		Installation: &activity.Installation{
			Mode:          activity.ModeOnDemand,
			DeployFileURL: workload.DeployFileURL("Wien2k"),
		},
		Artifact: "Wien2k",
	})
	if restored := s.EnforceDeploymentFloor(); len(restored) != 0 {
		t.Fatalf("foreign type restored: %v", restored)
	}
}

func TestDeployFailsOnMissingDeployFile(t *testing.T) {
	s, _ := single(t)
	s.RegisterType(&activity.Type{
		Name: "Broken",
		Installation: &activity.Installation{
			Mode:          activity.ModeOnDemand,
			DeployFileURL: "http://nowhere/broken.build",
		},
	})
	if _, err := s.GetDeployments("Broken", MethodExpect, true); err == nil {
		t.Fatal("missing deploy-file accepted")
	}
}

func TestDeployFailureNotifiesAdmin(t *testing.T) {
	s, _ := single(t)
	// A type whose deploy-file downloads a nonexistent artifact: the
	// installation fails mid-way and the administrator is notified with a
	// pointer to the provider.
	bad := &activity.Type{
		Name: "BadDownload",
		Installation: &activity.Installation{
			Mode:          activity.ModeOnDemand,
			DeployFileURL: "http://provider/baddownload.build",
		},
	}
	s.RegisterType(bad)
	build, err := deployfile.ParseString(`
<Build name="BadDownload" baseDir="/tmp/bad">
  <Step name="Init" task="mkdir-p"><Property name="argument" value="/tmp/bad"/></Step>
  <Step name="Download" depends="Init" task="globus-url-copy">
    <Property name="source" value="http://nowhere/ghost.tgz"/>
    <Property name="destination" value="file:///tmp/bad/ghost.tgz"/>
  </Step>
</Build>`)
	if err != nil {
		t.Fatal(err)
	}
	resolver := workload.NewResolver(s.Site().Repo)
	resolver.Publish("http://provider/baddownload.build", build)
	s2, err := New(Config{
		Site:        s.Site(),
		Clock:       s.Clock(),
		DeployFiles: resolver.Fetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	s2.RegisterType(bad)
	if _, err := s2.DeployLocal(bad, MethodExpect); err == nil {
		t.Fatal("broken download accepted")
	}
	notices := s2.Site().Notices()
	if len(notices) == 0 || !strings.Contains(notices[len(notices)-1].Body, "provider") {
		t.Fatalf("admin not notified usefully: %v", notices)
	}
}

func TestDeployFailsOnCorruptDownload(t *testing.T) {
	s, _ := single(t)
	resolver := workload.NewResolver(s.Site().Repo)
	// Corrupt the declared checksums in a synthesized deploy-file (both
	// algorithms — ChecksumOfStep prefers sha256 when present).
	a, _ := s.Site().Repo.ByName("Ant")
	build := workload.SynthesizeBuild(a)
	for i := range build.Steps {
		for j := range build.Steps[i].Props {
			switch build.Steps[i].Props[j].Name {
			case "md5sum", "sha256sum":
				build.Steps[i].Props[j].Value = "corrupted"
			}
		}
	}
	resolver.Publish("http://provider/ant-corrupt.build", build)
	s2, err := New(Config{Site: s.Site(), Clock: s.Clock(), DeployFiles: resolver.Fetch})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	ty := &activity.Type{
		Name: "CorruptAnt",
		Installation: &activity.Installation{
			Mode:          activity.ModeOnDemand,
			DeployFileURL: "http://provider/ant-corrupt.build",
		},
		Artifact: "Ant",
	}
	s2.RegisterType(ty)
	if _, err := s2.DeployLocal(ty, MethodExpect); err == nil ||
		!strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("corrupt download: %v", err)
	}
}
