package rdm

import (
	"context"
	"fmt"
	"time"

	"glare/internal/activity"
	"glare/internal/adr"
	"glare/internal/atr"
	"glare/internal/epr"
	"glare/internal/hlc"
	"glare/internal/superpeer"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// This file is the anti-entropy reconciler (Dynamo-style, keyed on the
// paper's LastUpdateTime EPR property): after a network partition heals,
// the two sides hold disjoint registrations. A super-peer periodically
// exchanges ATR/ADR digests — (name → LastUpdateTime) pairs — with its
// group members and fellow super-peers, pulls entries it has never seen
// (or only in an older version) into the two-level cache, and re-registers
// its local types with the community index. Registrations made on either
// side of a split therefore survive the heal without waiting for a lookup
// to stumble over them.

// RegistryDigest builds this site's registry digest: one <Type> element
// per ATR entry and one <Dep> element per ADR entry, each carrying the
// resource's LastUpdateTime in the EPR time layout.
func (s *Service) RegistryDigest() *xmlutil.Node {
	n := xmlutil.NewNode("Digest")
	n.SetAttr("site", s.selfName())
	for _, name := range s.ATR.Names() {
		lut, ok := s.ATR.LUT(name)
		if !ok {
			continue
		}
		t := n.Elem("Type", "")
		t.SetAttr("name", name)
		t.SetAttr("lut", lut.Format(epr.TimeLayout))
	}
	for _, d := range s.ADR.All() {
		lut, ok := s.ADR.LUT(d.Name)
		if !ok {
			continue
		}
		e := n.Elem("Dep", "")
		e.SetAttr("name", d.Name)
		e.SetAttr("type", d.Type)
		e.SetAttr("lut", lut.Format(epr.TimeLayout))
	}
	// Artifact-grid holdings ride the same digest: one <Blob> element per
	// known (blob, holder) location.
	s.appendBlobDigest(n)
	return n
}

// SyncRegistries is one anti-entropy pass, run by super-peers: exchange
// digests with every group member and fellow super-peer, pull entries that
// are missing here (or newer there) into the type/deployment caches, and
// refresh this site's registrations in its index so the community
// aggregation reflects both sides of a healed partition. Returns how many
// entries were pulled; glare_sync_entries_pulled_total counts the same.
func (s *Service) SyncRegistries() int {
	if s.agent == nil || s.client == nil || s.cacheOff {
		return 0
	}
	view := s.view()
	if view.SuperPeer.IsZero() {
		return 0
	}
	sp := s.tel.StartSpan("rdm.SyncRegistries", nil)
	pulled := 0
	seen := map[string]bool{s.selfName(): true}
	targets := append([]superpeer.SiteInfo(nil), view.Peers(s.selfName())...)
	if view.SuperPeer.Name == s.selfName() {
		targets = append(targets, view.SuperPeers...)
	} else {
		targets = append(targets, view.SuperPeer)
	}
	for _, t := range targets {
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		pulled += s.syncWith(sp, t)
	}
	// Re-register local entries with the local (possibly community) index:
	// an index rebuilt or repartitioned during the split re-learns what
	// this site owns.
	s.reindexLocalTypes()
	sp.SetNote(fmt.Sprintf("pulled=%d", pulled))
	sp.End(nil)
	return pulled
}

// syncWith reconciles against one remote site: fetch its digest, pull
// every type or deployment that is newer than what the local registry and
// cache hold, and seed the two-level cache with source EPRs stamped with
// the REMOTE LastUpdateTime — so the ordinary cache refresher keeps the
// synced entries alive afterwards.
func (s *Service) syncWith(sp *telemetry.Span, target superpeer.SiteInfo) int {
	digest, err := s.call(context.Background(), sp, target.ServiceURL(ServiceName), "RegistryDigest", nil)
	if err != nil || digest == nil {
		return 0
	}
	pulled := 0
	for _, n := range digest.All("Type") {
		name := n.AttrOr("name", "")
		lut, perr := time.Parse(epr.TimeLayout, n.AttrOr("lut", ""))
		if name == "" || perr != nil {
			continue
		}
		if local, ok := s.ATR.LUT(name); ok && !hlc.Newer(lut, target.Name, local, s.selfName()) {
			continue // we own a copy that orders same-or-newer (HLC, site)
		}
		if e, ok := s.typeCache.Peek("type:" + name); ok &&
			!hlc.Newer(lut, target.Name, e.Source.LastUpdateTime, e.Source.Extra["OriginSite"]) {
			continue // cache already carries this version
		}
		doc, err := s.call(context.Background(), sp, target.ServiceURL(atr.ServiceName), "GetType", xmlutil.NewNode("Name", name))
		if err != nil || doc == nil {
			continue
		}
		src := epr.New(target.ServiceURL(atr.ServiceName), atr.KeyName, name)
		src.LastUpdateTime = lut
		// Record where the entry came from: read repair and operators need
		// the provenance of pulled copies, not just their freshness.
		src.Extra = map[string]string{"OriginSite": target.Name}
		if !s.typeCache.PutIfNewer("type:"+name, src, doc.Clone()) {
			continue
		}
		if t, terr := activity.TypeFromXML(doc); terr == nil && !t.Abstract {
			list := xmlutil.NewNode("Types")
			list.Add(doc.Clone())
			s.typeCache.PutIfNewer("concrete:"+name, src, list)
		}
		pulled++
		s.syncPulled.Inc()
		s.tel.Counter("glare_sync_entries_pulled_total", telemetry.L("source", target.Name)).Inc()
	}
	for _, n := range digest.All("Dep") {
		name := n.AttrOr("name", "")
		typeName := n.AttrOr("type", "")
		lut, perr := time.Parse(epr.TimeLayout, n.AttrOr("lut", ""))
		if name == "" || perr != nil {
			continue
		}
		if local, ok := s.ADR.LUT(name); ok && !hlc.Newer(lut, target.Name, local, s.selfName()) {
			continue // we own a copy that orders same-or-newer (HLC, site)
		}
		if e, ok := s.depCache.Peek("dep:" + name); ok &&
			!hlc.Newer(lut, target.Name, e.Source.LastUpdateTime, e.Source.Extra["OriginSite"]) {
			continue // cache already carries this version
		}
		doc, err := s.call(context.Background(), sp, target.ServiceURL(adr.ServiceName), "Get", xmlutil.NewNode("Name", name))
		if err != nil || doc == nil {
			continue
		}
		src := epr.New(target.ServiceURL(adr.ServiceName), adr.KeyName, name)
		src.LastUpdateTime = lut
		src.Extra = map[string]string{"OriginSite": target.Name}
		if !s.depCache.PutIfNewer("dep:"+name, src, doc.Clone()) {
			continue
		}
		if typeName != "" {
			s.mergeDepIndex(typeName, name)
		}
		pulled++
		s.syncPulled.Inc()
		s.tel.Counter("glare_sync_entries_pulled_total", telemetry.L("source", target.Name)).Inc()
	}
	// Blob locations are metadata-only (no document fetch): fold the
	// remote's view of who holds what into the location table.
	s.mergeBlobDigest(digest)
	return pulled
}

// mergeDepIndex folds one deployment name into the cached per-type index
// that resolveDeployments consults, so a synced deployment is reachable
// before the next VO-wide fan-out rebuilds the list.
func (s *Service) mergeDepIndex(typeName, depName string) {
	key := "index:" + typeName
	idx := xmlutil.NewNode("Index")
	if e, ok := s.depCache.Peek(key); ok {
		for _, n := range e.Doc.All("Name") {
			if n.Text == depName {
				return
			}
			idx.Elem("Name", n.Text)
		}
	}
	idx.Elem("Name", depName)
	s.depCache.Put(key, epr.EPR{}, idx)
}

// reindexLocalTypes re-registers every locally owned type with the site's
// index. Registration is idempotent (keyed by EPR), so repeating it after
// a heal only refreshes entries the index may have lost.
func (s *Service) reindexLocalTypes() {
	if s.localIndex == nil {
		return
	}
	for _, name := range s.ATR.Names() {
		doc, ok := s.ATR.LookupDocument(name)
		if !ok {
			continue
		}
		e := s.ATR.EPR(name)
		if lut, ok := s.ATR.LUT(name); ok {
			e.LastUpdateTime = lut
		}
		s.localIndex.Register(e, doc.Clone())
	}
}
