package rdm

import (
	"strconv"

	"glare/internal/activity"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/xmlutil"
)

// attachStore wires the durable store under the site's mutation paths.
// Order matters: the recovered state is replayed into the registries and
// lease service first — through the Restore paths, which bypass counters,
// notifications, validation and the journal itself — and only then are the
// journals bound, so replay is never re-journaled and recovery is not
// observable as registration traffic.
func (s *Service) attachStore(st *store.Store) {
	s.store = st
	st.SetTelemetry(s.tel)
	s.restoreFromStore(st.State())
	s.ATR.SetJournal(st.RegistryJournal(store.RegATR))
	s.ADR.SetJournal(st.RegistryJournal(store.RegADR))
	s.Leases.SetJournal(st.LeaseJournal())
	s.deployJournal = st.DeployJournal()
	s.historyJournal = st.HistoryJournal()
	if s.cas != nil {
		s.casJournal = st.CASJournal()
	}
}

// restoreFromStore replays a recovered journal state into the site's
// registries and lease service. Registry documents come back with their
// journaled LastUpdateTimes (cache revival and anti-entropy order on
// them); expired lease tickets are dropped — the deployment returns to
// the pool — but every journaled ticket ID is retired so a restarted site
// never reissues an ID a client may still hold. Entries whose documents
// no longer parse are skipped: recovery prefers a smaller correct registry
// over a boot failure.
func (s *Service) restoreFromStore(state *store.State) {
	for key, e := range state.Registries[store.RegATR] {
		doc, err := xmlutil.ParseString(e.Doc)
		if err != nil {
			continue
		}
		s.ATR.Restore(key, doc, e.LUT, e.Term)
	}
	for key, e := range state.Registries[store.RegADR] {
		doc, err := xmlutil.ParseString(e.Doc)
		if err != nil {
			continue
		}
		s.ADR.Restore(key, doc, e.LUT, e.Term)
	}
	for _, t := range state.Leases.Tickets {
		s.Leases.Restore(t)
	}
	for dep, max := range state.Leases.Limits {
		s.Leases.RestoreLimit(dep, max)
	}
	s.Leases.RetireID(state.Leases.MaxID)

	// The simulated site filesystem is memory-only (DESIGN §10), so a
	// restart loses every installed file. Registered deployments are
	// re-materialized from the recovered ADR — executables back onto the
	// filesystem, services back into the container — or resumed builds that
	// depend on them (a JPOVray build invoking ant) would fail.
	for _, d := range s.ADR.All() {
		switch d.Kind {
		case activity.KindExecutable:
			if d.Path != "" {
				s.site.FS.Write(d.Path, site.KindExecutable, 1<<20, "", "")
			}
		case activity.KindService:
			s.site.DeployService(d.Name, d.Home)
		}
	}

	// Interrupted builds: their checkpointed steps come back verbatim; the
	// next DeployLocal of the type replays them and resumes at the first
	// incomplete step.
	for typeName, steps := range state.Deploys {
		if len(steps) > 0 {
			s.resume[typeName] = append([]store.DeployStep(nil), steps...)
		}
	}

	// Telemetry history: re-seed the ring archives from the recovered
	// dumps so `glarectl history` spans restarts. Counter series carry
	// their last raw total across, so rate derivation resumes without a
	// phantom reset.
	if state.History != nil && s.history != nil {
		for _, d := range state.History.Dump() {
			_ = s.history.RestoreSeries(d)
		}
	}

	// Content-addressed artifact store: re-offer every blob the WAL says
	// this site held, so a restarted site resumes builds (and serves
	// peers) without re-fetching a byte.
	s.restoreCAS(state)
}

// Store returns the site's durable store, or nil when durability is off.
func (s *Service) Store() *store.Store { return s.store }

// StoreStatusXML renders the store's status for the wire — the payload of
// the RDM "StoreStatus" operation and of `glarectl store status`.
func (s *Service) StoreStatusXML() *xmlutil.Node {
	n := xmlutil.NewNode("StoreStatus")
	n.SetAttr("site", s.site.Attrs.Name)
	if s.store == nil {
		n.SetAttr("enabled", "false")
		return n
	}
	st := s.store.Status()
	n.SetAttr("enabled", "true")
	n.SetAttr("dir", st.Dir)
	n.SetAttr("lastSeq", strconv.FormatUint(st.LastSeq, 10))
	n.SetAttr("segments", strconv.Itoa(st.Segments))
	n.SetAttr("walBytes", strconv.FormatInt(st.WALBytes, 10))
	n.SetAttr("liveRecords", strconv.Itoa(st.LiveRecords))
	n.SetAttr("snapshot", strconv.FormatBool(st.HasSnapshot))
	n.SetAttr("snapshotSeq", strconv.FormatUint(st.SnapshotSeq, 10))
	n.SetAttr("snapshotRecords", strconv.Itoa(st.SnapshotRecords))
	n.SetAttr("snapshotAgeSeconds", strconv.FormatInt(int64(st.SnapshotAge.Seconds()), 10))
	n.SetAttr("replayMs", strconv.FormatInt(st.ReplayDuration.Milliseconds(), 10))
	n.SetAttr("replayRecords", strconv.Itoa(st.ReplayRecords))
	n.SetAttr("truncatedBytes", strconv.FormatInt(st.TruncatedBytes, 10))
	n.SetAttr("appended", strconv.FormatUint(st.Appended, 10))
	if st.Err != "" {
		n.SetAttr("err", st.Err)
	}
	return n
}
