package rdm

// The deployment execution engine: wraps the deploy-file step pipeline
// with step-level checkpoints journaled to the durable store, rollback on
// terminal failure, singleflight dedup with bounded build concurrency,
// per-step retry for transfers, a watchdog that kills hung steps, and
// quarantine of types that fail repeatedly.
//
// The simulated site filesystem is memory-only (DESIGN §10), so each
// checkpoint is self-contained: it carries the filesystem entries and site
// side-state its step produced. Resuming an interrupted build replays
// those effects at zero clock and transfer cost, then executes only the
// steps the crash lost.

import (
	"context"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"glare/internal/cog"
	"glare/internal/deployfile"
	"glare/internal/expect"
	"glare/internal/gridftp"
	"glare/internal/simclock"
	"glare/internal/site"
	"glare/internal/store"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

// DeployHook is called before every build step; fault injectors use it to
// fail, crash, hang or delay a step. The context carries the step's
// watchdog deadline, so injected hangs end when the engine kills the step.
type DeployHook func(ctx context.Context, typeName, stepName string) error

// DeployLimits tunes the deployment execution engine.
type DeployLimits struct {
	// MaxConcurrent bounds simultaneous top-level builds on this site;
	// dependency installations run inside their parent's slot.
	MaxConcurrent int
	// QueueDepth bounds builds waiting for a slot (FIFO); when the queue
	// is full new builds are shed with transport.Unavailable. Negative
	// means no queue at all.
	QueueDepth int
	// FollowerWait bounds (in real time) how long a deduplicated request
	// waits for the in-flight build of the same type before giving up.
	FollowerWait time.Duration
	// StepGrace is added (in real time) to each step's timeout before the
	// watchdog kills it.
	StepGrace time.Duration
	// Retry is the backoff policy for transfer steps that fail with a
	// transient error or md5 mismatch; zero uses the transport default.
	Retry transport.RetryPolicy
	// QuarantineAfter is the number of consecutive failed builds after
	// which a type is quarantined.
	QuarantineAfter int
	// QuarantineCooldown is the base cool-down (virtual time); it doubles
	// with every further failure, capped at QuarantineMax.
	QuarantineCooldown time.Duration
	QuarantineMax      time.Duration
}

// DefaultDeployLimits is the stock engine configuration.
func DefaultDeployLimits() DeployLimits {
	return DeployLimits{
		MaxConcurrent:      2,
		QueueDepth:         8,
		FollowerWait:       2 * time.Minute,
		StepGrace:          2 * time.Second,
		Retry:              transport.DefaultRetryPolicy(),
		QuarantineAfter:    3,
		QuarantineCooldown: time.Minute,
		QuarantineMax:      time.Hour,
	}
}

func (l DeployLimits) withDefaults() DeployLimits {
	d := DefaultDeployLimits()
	if l.MaxConcurrent > 0 {
		d.MaxConcurrent = l.MaxConcurrent
	}
	if l.QueueDepth != 0 {
		d.QueueDepth = l.QueueDepth
	}
	if d.QueueDepth < 0 {
		d.QueueDepth = 0
	}
	if l.FollowerWait > 0 {
		d.FollowerWait = l.FollowerWait
	}
	if l.StepGrace > 0 {
		d.StepGrace = l.StepGrace
	}
	if l.Retry.MaxAttempts > 0 {
		d.Retry = l.Retry
	}
	if l.QuarantineAfter > 0 {
		d.QuarantineAfter = l.QuarantineAfter
	}
	if l.QuarantineCooldown > 0 {
		d.QuarantineCooldown = l.QuarantineCooldown
	}
	if l.QuarantineMax > 0 {
		d.QuarantineMax = l.QuarantineMax
	}
	return d
}

// deployJournal is what the engine needs from the durable store; nil means
// checkpoints live only in memory (they still enable same-process resume).
type deployJournal interface {
	RecordStep(st store.DeployStep)
	RecordClear(typeName string)
}

// deployCounters bundles the glare_deploy_* metrics.
type deployCounters struct {
	resumes      *telemetry.Counter
	stepsSkipped *telemetry.Counter
	rollbacks    *telemetry.Counter
	dedupHits    *telemetry.Counter
	quarantined  *telemetry.Counter
	preempted    *telemetry.Counter
	stepRetries  *telemetry.Counter
	queueShed    *telemetry.Counter
	active       *telemetry.Gauge
}

func newDeployCounters(tel *telemetry.Telemetry) deployCounters {
	return deployCounters{
		resumes:      tel.Counter("glare_deploy_resumes_total"),
		stepsSkipped: tel.Counter("glare_deploy_steps_skipped_total"),
		rollbacks:    tel.Counter("glare_deploy_rollbacks_total"),
		dedupHits:    tel.Counter("glare_deploy_dedup_hits_total"),
		quarantined:  tel.Counter("glare_deploy_quarantined_total"),
		preempted:    tel.Counter("glare_deploy_preempt_quarantined_total"),
		stepRetries:  tel.Counter("glare_deploy_step_retries_total"),
		queueShed:    tel.Counter("glare_deploy_queue_shed_total"),
		active:       tel.Gauge("glare_deploy_active_builds"),
	}
}

// buildCall is one in-flight build; followers of the singleflight wait on
// done and share the leader's outcome.
type buildCall struct {
	done   chan struct{}
	report *DeployReport
	err    error
}

// buildGate is a FIFO semaphore bounding concurrent builds, with a bounded
// wait queue that sheds overflow.
type buildGate struct {
	mu       chan struct{} // 1-buffered; protects the fields below
	total    int
	free     int
	waiters  []chan struct{}
	maxQueue int
}

func newBuildGate(slots, maxQueue int) *buildGate {
	g := &buildGate{mu: make(chan struct{}, 1), total: slots, free: slots, maxQueue: maxQueue}
	g.mu <- struct{}{}
	return g
}

// acquire takes a slot, queuing FIFO when none is free; a full queue sheds
// the request with transport.Unavailable.
func (g *buildGate) acquire(siteName string) (func(), error) {
	<-g.mu
	if g.free > 0 {
		g.free--
		g.mu <- struct{}{}
		return g.release, nil
	}
	if len(g.waiters) >= g.maxQueue {
		shed := len(g.waiters)
		g.mu <- struct{}{}
		return nil, &transport.Unavailable{
			Address: siteName, Operation: "DeployLocal", Reason: "deploy-queue-full",
			Err: fmt.Errorf("site runs %d concurrent build(s) with %d queued", g.total, shed),
		}
	}
	ch := make(chan struct{})
	g.waiters = append(g.waiters, ch)
	g.mu <- struct{}{}
	<-ch // slot handed over by release
	return g.release, nil
}

// release returns a slot, handing it directly to the head of the queue.
func (g *buildGate) release() {
	<-g.mu
	if len(g.waiters) > 0 {
		ch := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.mu <- struct{}{}
		close(ch)
		return
	}
	g.free++
	g.mu <- struct{}{}
}

func (g *buildGate) stats() (active, queued int) {
	<-g.mu
	defer func() { g.mu <- struct{}{} }()
	return g.total - g.free, len(g.waiters)
}

// quarState tracks a type's consecutive build failures and cool-down.
type quarState struct {
	fails     int
	until     time.Time // zero until the threshold is reached
	preempted bool      // quarantined by an alert rule, not the threshold
}

// ---------------------------------------------------------------------------
// Singleflight + quarantine + admission (called from deployLocal).

// joinOrLead either joins an in-flight build of the type (returning the
// shared outcome) or registers the caller as the leader. Exactly one of
// (call, join) is non-nil.
func (s *Service) joinOrLead(typeName string) (call *buildCall, join func() (*DeployReport, error), err error) {
	s.mu.Lock()
	if existing, busy := s.inflight[typeName]; busy {
		s.mu.Unlock()
		s.deployTel.dedupHits.Inc()
		return nil, func() (*DeployReport, error) {
			select {
			case <-existing.done:
				if existing.err != nil {
					return nil, fmt.Errorf("rdm: concurrent deployment of %q failed: %w", typeName, existing.err)
				}
				rep := *existing.report
				return &rep, nil
			case <-time.After(s.limits.FollowerWait):
				return nil, &transport.Unavailable{
					Address: s.site.Attrs.Name, Operation: "DeployLocal",
					Reason: "deploy-wait-timeout",
					Err:    fmt.Errorf("in-flight build of %q exceeded the follower deadline", typeName),
				}
			}
		}, nil
	}
	if qerr := s.quarantineCheckLocked(typeName); qerr != nil {
		s.mu.Unlock()
		return nil, nil, qerr
	}
	call = &buildCall{done: make(chan struct{})}
	s.inflight[typeName] = call
	s.mu.Unlock()
	return call, nil, nil
}

// finishCall publishes the leader's outcome and releases the singleflight.
func (s *Service) finishCall(typeName string, call *buildCall, report *DeployReport, err error) {
	s.mu.Lock()
	delete(s.inflight, typeName)
	s.mu.Unlock()
	call.report, call.err = report, err
	close(call.done)
}

func (s *Service) quarantineCheckLocked(typeName string) error {
	q := s.quarantined[typeName]
	if q == nil || q.fails < s.limits.QuarantineAfter {
		return nil
	}
	now := s.clock.Now()
	if now.Before(q.until) {
		return fmt.Errorf("rdm: type %q quarantined after %d consecutive build failures (cool-down ends in %v)",
			typeName, q.fails, q.until.Sub(now))
	}
	return nil // cool-down over: one probe build is allowed through
}

// noteBuildFailure counts a terminal (non-crash) build failure and arms or
// extends the quarantine once the threshold is crossed. Cool-down grows
// exponentially with each failure past the threshold.
func (s *Service) noteBuildFailure(typeName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.quarantined[typeName]
	if q == nil {
		q = &quarState{}
		s.quarantined[typeName] = q
	}
	q.fails++
	if q.fails < s.limits.QuarantineAfter {
		return
	}
	cool := s.limits.QuarantineCooldown
	for i := s.limits.QuarantineAfter; i < q.fails; i++ {
		cool *= 2
		if cool >= s.limits.QuarantineMax {
			cool = s.limits.QuarantineMax
			break
		}
	}
	q.until = s.clock.Now().Add(cool)
	s.deployTel.quarantined.Inc()
}

func (s *Service) noteBuildSuccess(typeName string) {
	s.mu.Lock()
	delete(s.quarantined, typeName)
	s.mu.Unlock()
}

// PreemptQuarantine is the alert engine's hand into the deploy engine:
// every type with recent build failures that has NOT yet reached the
// consecutive-failure threshold is quarantined immediately, as if the
// threshold had fired. A rising failure rate across the window is
// stronger evidence than any single type's consecutive count, so the
// cool-down starts before more builds are burned. Types already
// quarantined (or with no failures) are untouched. Returns the types it
// quarantined, sorted; rule names the triggering alert rule.
func (s *Service) PreemptQuarantine(rule string) []string {
	now := s.clock.Now()
	s.mu.Lock()
	var hit []string
	for name, q := range s.quarantined {
		if q.fails == 0 || q.fails >= s.limits.QuarantineAfter {
			continue
		}
		q.fails = s.limits.QuarantineAfter
		q.until = now.Add(s.limits.QuarantineCooldown)
		q.preempted = true
		s.deployTel.quarantined.Inc()
		s.deployTel.preempted.Inc()
		hit = append(hit, name)
	}
	s.mu.Unlock()
	sort.Strings(hit)
	for _, name := range hit {
		s.site.NotifyAdmin("pre-emptive quarantine: "+name,
			fmt.Sprintf("alert rule %q quarantined type %q before the consecutive-failure threshold", rule, name))
	}
	return hit
}

// sweepQuarantine drops quarantine records whose cool-down lapsed more
// than the maximum cool-down ago: the type has been eligible for a probe
// for a long time and nobody asked, so keep the table small.
func (s *Service) sweepQuarantine() {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, q := range s.quarantined {
		if !q.until.IsZero() && now.After(q.until.Add(s.limits.QuarantineMax)) {
			delete(s.quarantined, name)
		}
	}
}

// ---------------------------------------------------------------------------
// Checkpointed build execution.

// runBuild executes resolved deploy-file commands through the selected
// method, skipping steps whose checkpoints replay cleanly and journaling a
// checkpoint after each executed step. On terminal failure the partial
// install is rolled back; a simulated crash returns immediately leaving
// checkpoints (and journal) intact for resume.
func (s *Service) runBuild(t string, build *deployfile.Build, cmds []deployfile.Command, method Method, chargeOverhead bool) (cog.Result, error) {
	var res cog.Result
	ckpts := s.checkpointsFor(t)
	var exec stepExecutor
	resumed := false

	// Register the directories this build owns so concurrent builds of
	// other types can scope their effect diffs away from ours (and vice
	// versa) without serializing step execution.
	roots := buildRoots(cmds)
	s.mu.Lock()
	s.buildRoots[t] = roots
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.buildRoots, t)
		s.mu.Unlock()
	}()
	for i, c := range cmds {
		// Skip phase: replay the checkpointed prefix. The first executed
		// step ends it — anything journaled past a divergence is stale and
		// gets truncated when the re-run step records its checkpoint.
		if exec == nil && i < len(ckpts) && s.canReplay(ckpts[i], c, build) {
			s.replayStep(ckpts[i])
			s.deployTel.stepsSkipped.Inc()
			if !resumed {
				resumed = true
				s.deployTel.resumes.Inc()
			}
			continue
		}
		if exec == nil {
			var overhead cog.Result
			var err error
			exec, overhead, err = s.openExecutor(method, chargeOverhead)
			if err != nil {
				return res, err
			}
			res.Overhead += overhead.Overhead
		}
		stepRes, err := s.executeStep(exec, t, build, i, c)
		res.Communication += stepRes.Communication
		res.Installation += stepRes.Installation
		if err != nil {
			if isBuildCrash(err) {
				return res, err // checkpoints survive for resume
			}
			s.rollbackBuild(t)
			return res, err
		}
	}
	return res, nil
}

// executeStep runs one command with fault-injection hook, watchdog
// deadline and (for transfers) retry, then captures its effects as a
// checkpoint. Steps of concurrent builds run unserialized; the effect
// diff is scoped by ownership instead — paths under another in-flight
// build's registered roots are excluded, so a diff never absorbs a
// concurrent build's writes while sequential builds keep full-site
// fidelity.
func (s *Service) executeStep(exec stepExecutor, typeName string, build *deployfile.Build, index int, c deployfile.Command) (cog.Result, error) {
	exclude := s.otherRoots(typeName)

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = deployfile.DefaultStepTimeout
	}
	transfer := isTransferCmd(c.Cmdline)
	attempts := 1
	if transfer && s.limits.Retry.MaxAttempts > 1 {
		attempts = s.limits.Retry.MaxAttempts
	}

	beforeFS := s.site.FS.Entries()
	beforeSide := s.site.SideStateSnapshot()

	var res cog.Result
	var err error
	for attempt := 1; ; attempt++ {
		// Watchdog: the step (and any injected hang) dies at its timeout
		// plus a grace period — real time, since virtual-clock work
		// completes in microseconds of real time.
		ctx, cancel := context.WithTimeout(context.Background(), timeout+s.limits.StepGrace)
		if err = s.stepHook(ctx, typeName, c.Step.Name); err == nil {
			var r cog.Result
			r, err = exec.runStep(ctx, c)
			res.Communication += r.Communication
			res.Installation += r.Installation
		}
		cancel()
		if err == nil || attempt >= attempts || isBuildCrash(err) || !retryableStep(err) {
			break
		}
		s.deployTel.stepRetries.Inc()
		s.clock.Sleep(retryDelay(s.limits.Retry, attempt))
	}

	afterFS := s.site.FS.Entries()
	afterSide := s.site.SideStateSnapshot()
	ck := buildCheckpoint(typeName, build.Name, index, c, transfer, beforeFS, beforeSide, afterFS, afterSide, exclude)
	if err != nil {
		// Sweep the failed attempt's partial effects so the filesystem
		// matches the checkpoint journal exactly — for a crash this also
		// mirrors process death taking the memory-only FS with it.
		s.undoEffects(ck)
		return res, fmt.Errorf("step %s: %w", c.Step.Name, err)
	}
	s.recordStep(ck)
	return res, nil
}

func (s *Service) stepHook(ctx context.Context, typeName, stepName string) error {
	if s.deployHook == nil {
		return nil
	}
	return s.deployHook(ctx, typeName, stepName)
}

// checkpointsFor returns a copy of the type's checkpointed steps.
func (s *Service) checkpointsFor(typeName string) []store.DeployStep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]store.DeployStep(nil), s.resume[typeName]...)
}

// canReplay decides whether a checkpoint still matches the step the
// deploy-file wants at this position. Download checkpoints must carry the
// deploy-file's declared md5sum, so an updated archive forces a re-fetch.
func (s *Service) canReplay(ck store.DeployStep, c deployfile.Command, build *deployfile.Build) bool {
	if ck.Build != build.Name || ck.Step != c.Step.Name {
		return false
	}
	transfer := isTransferCmd(c.Cmdline)
	if transfer != ck.Transfer {
		return false
	}
	if transfer {
		if _, sum := deployfile.ChecksumOfStep(c.Step); ck.MD5 != sum {
			return false
		}
	}
	for _, u := range ck.Unpacks {
		if _, ok := s.site.Repo.ByName(u.Artifact); !ok {
			return false
		}
	}
	return true
}

// replayStep re-materializes a checkpointed step's effects — no clock
// cost, no transfer.
func (s *Service) replayStep(ck store.DeployStep) {
	for _, f := range ck.Files {
		s.site.FS.Write(f.Path, site.FileKind(f.Kind), f.Size, f.MD5, f.Artifact)
	}
	for _, p := range ck.Removed {
		s.site.FS.Remove(p)
	}
	for _, u := range ck.Unpacks {
		s.site.RestoreUnpack(u.Dir, u.Artifact)
	}
	for _, pr := range ck.Prefixes {
		s.site.RestorePrefix(pr.Dir, pr.Prefix, true)
	}
	for _, sv := range ck.Services {
		s.site.DeployService(sv.Name, sv.Home)
	}
}

// recordStep stores a checkpoint in memory (same-process resume) and in
// the journal (restart resume), truncating any stale tail at its index.
func (s *Service) recordStep(ck store.DeployStep) {
	s.mu.Lock()
	list := s.resume[ck.Type]
	if ck.Index < len(list) {
		list = list[:ck.Index]
	}
	s.resume[ck.Type] = append(list, ck)
	s.mu.Unlock()
	if s.deployJournal != nil {
		s.deployJournal.RecordStep(ck)
	}
}

// clearCheckpoints drops a type's checkpoints after the build completed
// and registered (journaling the clear so restart cannot resume it).
func (s *Service) clearCheckpoints(typeName string) {
	s.mu.Lock()
	_, had := s.resume[typeName]
	delete(s.resume, typeName)
	s.mu.Unlock()
	if had && s.deployJournal != nil {
		s.deployJournal.RecordClear(typeName)
	}
}

// rollbackBuild tears down a failed build: every checkpointed step's
// created entries, services and bookkeeping are undone in reverse order
// and the abort is journaled, leaving site and ADR as if the build never
// started.
func (s *Service) rollbackBuild(typeName string) {
	s.mu.Lock()
	cks := s.resume[typeName]
	delete(s.resume, typeName)
	s.mu.Unlock()
	for i := len(cks) - 1; i >= 0; i-- {
		s.undoEffects(cks[i])
	}
	if len(cks) > 0 && s.deployJournal != nil {
		s.deployJournal.RecordClear(typeName)
	}
	s.deployTel.rollbacks.Inc()
}

// undoEffects reverses one checkpoint: entries the step created are
// removed, services it brought up withdrawn, unpack/configure bookkeeping
// under its directories forgotten. Pre-existing entries the step merely
// overwrote are left in place (their old contents are gone).
func (s *Service) undoEffects(ck store.DeployStep) {
	for _, sv := range ck.Services {
		s.site.UndeployService(sv.Name)
	}
	for _, f := range ck.Files {
		if f.New {
			s.site.FS.Remove(f.Path)
		}
	}
	for _, u := range ck.Unpacks {
		s.site.ForgetDir(u.Dir)
	}
	for _, pr := range ck.Prefixes {
		s.site.ForgetDir(pr.Dir)
	}
}

// buildCheckpoint diffs the before/after snapshots into a self-contained
// checkpoint record. Paths under exclude (directory roots owned by other
// in-flight builds) are dropped from every diff component so concurrent
// builds never claim each other's effects; with no concurrent build the
// exclusion set is empty and the diff covers the whole site.
func buildCheckpoint(typeName, buildName string, index int, c deployfile.Command, transfer bool,
	beforeFS map[string]site.File, beforeSide site.SideState,
	afterFS map[string]site.File, afterSide site.SideState, exclude []string) store.DeployStep {
	ck := store.DeployStep{
		Type: typeName, Build: buildName, Step: c.Step.Name, Index: index,
		Transfer: transfer,
	}
	if transfer {
		// The checkpoint's MD5 field carries the deploy-file's declared
		// checksum whatever the algorithm; resume only compares it against
		// the same helper, so sha256 sums ride the existing wire field.
		_, ck.MD5 = deployfile.ChecksumOfStep(c.Step)
	}
	for p, f := range afterFS {
		if underAny(p, exclude) {
			continue
		}
		old, existed := beforeFS[p]
		if existed && old == f {
			continue
		}
		ck.Files = append(ck.Files, store.DeployFile{
			Path: f.Path, Kind: int(f.Kind), Size: f.Size, MD5: f.MD5,
			Artifact: f.Artifact, New: !existed,
		})
	}
	sort.Slice(ck.Files, func(i, j int) bool { return ck.Files[i].Path < ck.Files[j].Path })
	for p := range beforeFS {
		if underAny(p, exclude) {
			continue
		}
		if _, ok := afterFS[p]; !ok {
			ck.Removed = append(ck.Removed, p)
		}
	}
	sort.Strings(ck.Removed)
	for dir, name := range afterSide.Unpacked {
		if underAny(dir, exclude) {
			continue
		}
		if beforeSide.Unpacked[dir] != name {
			ck.Unpacks = append(ck.Unpacks, store.DeployUnpack{Dir: dir, Artifact: name})
		}
	}
	sort.Slice(ck.Unpacks, func(i, j int) bool { return ck.Unpacks[i].Dir < ck.Unpacks[j].Dir })
	for dir, prefix := range afterSide.Prefixes {
		if underAny(dir, exclude) {
			continue
		}
		if beforeSide.Prefixes[dir] != prefix {
			ck.Prefixes = append(ck.Prefixes, store.DeployPrefix{Dir: dir, Prefix: prefix})
		}
	}
	sort.Slice(ck.Prefixes, func(i, j int) bool { return ck.Prefixes[i].Dir < ck.Prefixes[j].Dir })
	for name, home := range afterSide.Services {
		if underAny(home, exclude) {
			continue
		}
		if old, ok := beforeSide.Services[name]; !ok || old != home {
			ck.Services = append(ck.Services, store.DeployService{Name: name, Home: home})
		}
	}
	sort.Slice(ck.Services, func(i, j int) bool { return ck.Services[i].Name < ck.Services[j].Name })
	return ck
}

// buildRoots derives the directory roots a build owns from its resolved
// commands: every absolute base directory plus every absolute path bound
// in a step environment ($WORK_DIR, the type home, ...). Roots that are
// proper ancestors of another root are pruned so shared scaffolding
// (/tmp, the deployments dir) stays outside the claim — only the
// type-specific subdirectories are owned.
func buildRoots(cmds []deployfile.Command) []string {
	set := make(map[string]struct{})
	add := func(p string) {
		if p == "" || !strings.HasPrefix(p, "/") {
			return
		}
		if p = path.Clean(p); p != "/" {
			set[p] = struct{}{}
		}
	}
	for _, c := range cmds {
		add(c.BaseDir)
		for _, v := range c.Env {
			add(v)
		}
	}
	all := make([]string, 0, len(set))
	for p := range set {
		all = append(all, p)
	}
	sort.Strings(all)
	var roots []string
	for _, r := range all {
		ancestor := false
		for _, o := range all {
			if o != r && strings.HasPrefix(o, r+"/") {
				ancestor = true
				break
			}
		}
		if !ancestor {
			roots = append(roots, r)
		}
	}
	return roots
}

// otherRoots returns the roots owned by in-flight builds other than
// typeName, minus any root this build also claims (shared directories
// like the user home are never excluded from a diff).
func (s *Service) otherRoots(typeName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	mine := make(map[string]struct{}, len(s.buildRoots[typeName]))
	for _, r := range s.buildRoots[typeName] {
		mine[r] = struct{}{}
	}
	var out []string
	for t, roots := range s.buildRoots {
		if t == typeName {
			continue
		}
		for _, r := range roots {
			if _, shared := mine[r]; !shared {
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}

// underAny reports whether p is one of the roots or lies beneath one.
func underAny(p string, roots []string) bool {
	for _, r := range roots {
		if p == r || strings.HasPrefix(p, r+"/") {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Step executors: one opened session/kit per build, one call per step.

type stepExecutor interface {
	runStep(ctx context.Context, c deployfile.Command) (cog.Result, error)
}

// openExecutor brings up the method's session/kit, paying the fixed method
// overhead when this is the top-level build.
func (s *Service) openExecutor(method Method, chargeOverhead bool) (stepExecutor, cog.Result, error) {
	var res cog.Result
	switch method {
	case MethodExpect:
		sw := simclock.NewStopwatch(s.clock)
		login := s.costs.ExpectLogin
		if login <= 0 {
			login = expectLoginDefault
		}
		if !chargeOverhead {
			login = -1 // session reuse: no additional login cost
		}
		sess := expect.Open(s.site, s.clock, login)
		res.Overhead = sw.Elapsed()
		return &expectExecutor{svc: s, sess: sess}, res, nil
	case MethodCoG:
		cfg := s.cogCfg
		if cfg == (cog.Config{}) {
			cfg = cog.DefaultConfig()
		}
		if !chargeOverhead {
			cfg.StartupOverhead = 0 // kit already started by the parent
		}
		sr := cog.NewRunner(cfg, s.clock, s.site.Repo).Open(s.site)
		res.Overhead = sr.Overhead
		return &cogExecutor{svc: s, sr: sr}, res, nil
	default:
		return nil, res, fmt.Errorf("rdm: unknown deployment method %q", method)
	}
}

// expectExecutor drives steps through the Expect virtual terminal; the
// paper's default deployment handler.
type expectExecutor struct {
	svc  *Service
	sess *expect.Session
}

func (e *expectExecutor) runStep(ctx context.Context, c deployfile.Command) (cog.Result, error) {
	s := e.svc
	var res cog.Result
	sw := simclock.NewStopwatch(s.clock)
	sh := e.sess.Shell()
	for k, v := range c.Env {
		sh.Setenv(k, v)
	}
	if c.BaseDir != "" {
		s.site.FS.Mkdir(c.BaseDir)
		if err := sh.Chdir(c.BaseDir); err != nil {
			return res, err
		}
	}
	if isTransferCmd(c.Cmdline) {
		// Transfers resolve through the artifact grid: local CAS, then
		// advertised holders and the blob's rendezvous home, then origin —
		// every rung verified against the deploy-file's declared checksum.
		if err := s.fetchArtifactVia(s.FTP, c); err != nil {
			return res, err
		}
		res.Communication = sw.Elapsed()
		return res, nil
	}
	var script expect.Script
	for _, d := range c.Dialog {
		script = append(script, expect.Step{Expect: d.Expect, Send: d.Send, Timeout: c.Timeout})
	}
	var err error
	if len(script) > 0 {
		_, err = e.sess.InteractContext(ctx, c.Cmdline, script)
	} else {
		_, err = e.sess.ExecContext(ctx, c.Cmdline)
	}
	if err != nil {
		return res, err
	}
	res.Installation = sw.Elapsed()
	return res, nil
}

// cogExecutor submits steps as GRAM jobs / proxied transfers.
type cogExecutor struct {
	svc *Service
	sr  *cog.StepRunner
}

func (e *cogExecutor) runStep(_ context.Context, c deployfile.Command) (cog.Result, error) {
	if isTransferCmd(c.Cmdline) {
		// Route transfers through the artifact grid, charging the CoG
		// kit's proxied transfer cost so Table 1's method gap survives.
		s := e.svc
		var res cog.Result
		sw := simclock.NewStopwatch(s.clock)
		if err := s.fetchArtifactVia(e.sr.FTP(), c); err != nil {
			return res, fmt.Errorf("cog: step %s: %w", c.Step.Name, err)
		}
		res.Communication = sw.Elapsed()
		return res, nil
	}
	return e.sr.RunStep(c)
}

// ---------------------------------------------------------------------------
// Error classification and backoff.

// isBuildCrash recognizes simulated daemon death (duck-typed so rdm does
// not import the fault injector).
func isBuildCrash(err error) bool {
	var bc interface{ BuildCrash() bool }
	return errors.As(err, &bc) && bc.BuildCrash()
}

// retryableStep reports whether a transfer failure is worth retrying: a
// torn download (md5 mismatch), an injected transient fault, or a
// transport-level outage. Permanent errors (unknown URL, no such object)
// fail the build immediately.
func retryableStep(err error) bool {
	var ce *gridftp.ChecksumError
	if errors.As(err, &ce) {
		return true
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return transport.IsUnavailable(err)
}

// retryDelay mirrors the transport policy's exponential backoff (without
// jitter: deployment retries sleep on the virtual clock, where determinism
// matters more than decorrelation).
func retryDelay(p transport.RetryPolicy, attempt int) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// ---------------------------------------------------------------------------
// Status surface (glarectl, wire op, tests).

// QuarantineInfo describes one quarantined type.
type QuarantineInfo struct {
	Type      string
	Failures  int
	Until     time.Time
	Remaining time.Duration // zero once the cool-down lapsed
	// Preempted marks a quarantine imposed by an alert rule rather than
	// the consecutive-failure threshold.
	Preempted bool
}

// ResumableBuild describes an interrupted build with journaled
// checkpoints awaiting resume.
type ResumableBuild struct {
	Type  string
	Build string
	Steps int
}

// DeployRunStatus is the engine's admin-visible state.
type DeployRunStatus struct {
	Site        string
	MaxBuilds   int
	QueueDepth  int
	InFlight    []string
	Queued      int
	Quarantined []QuarantineInfo
	Resumable   []ResumableBuild
}

// DeployRunStatus reports in-flight builds, queue pressure, quarantined
// types and resumable checkpointed builds.
func (s *Service) DeployRunStatus() DeployRunStatus {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := DeployRunStatus{
		Site:       s.site.Attrs.Name,
		MaxBuilds:  s.limits.MaxConcurrent,
		QueueDepth: s.limits.QueueDepth,
	}
	for name := range s.inflight {
		st.InFlight = append(st.InFlight, name)
	}
	sort.Strings(st.InFlight)
	_, st.Queued = s.gate.stats()
	for name, q := range s.quarantined {
		if q.fails < s.limits.QuarantineAfter {
			continue
		}
		info := QuarantineInfo{Type: name, Failures: q.fails, Until: q.until, Preempted: q.preempted}
		if q.until.After(now) {
			info.Remaining = q.until.Sub(now)
		}
		st.Quarantined = append(st.Quarantined, info)
	}
	sort.Slice(st.Quarantined, func(i, j int) bool { return st.Quarantined[i].Type < st.Quarantined[j].Type })
	for name, cks := range s.resume {
		if len(cks) == 0 {
			continue
		}
		st.Resumable = append(st.Resumable, ResumableBuild{
			Type: name, Build: cks[0].Build, Steps: len(cks),
		})
	}
	sort.Slice(st.Resumable, func(i, j int) bool { return st.Resumable[i].Type < st.Resumable[j].Type })
	return st
}

// DeployStatusXML renders the engine status for the wire op glarectl
// consumes.
func (s *Service) DeployStatusXML() *xmlutil.Node {
	st := s.DeployRunStatus()
	n := xmlutil.NewNode("DeployStatus")
	n.SetAttr("site", st.Site)
	n.SetAttr("maxBuilds", fmt.Sprintf("%d", st.MaxBuilds))
	n.SetAttr("queueDepth", fmt.Sprintf("%d", st.QueueDepth))
	n.SetAttr("queued", fmt.Sprintf("%d", st.Queued))
	for _, name := range st.InFlight {
		c := xmlutil.NewNode("Building")
		c.SetAttr("type", name)
		n.Add(c)
	}
	for _, q := range st.Quarantined {
		c := xmlutil.NewNode("Quarantined")
		c.SetAttr("type", q.Type)
		c.SetAttr("failures", fmt.Sprintf("%d", q.Failures))
		c.SetAttr("remainingMS", fmt.Sprintf("%d", q.Remaining.Milliseconds()))
		if q.Preempted {
			c.SetAttr("preempted", "true")
		}
		n.Add(c)
	}
	for _, r := range st.Resumable {
		c := xmlutil.NewNode("Resumable")
		c.SetAttr("type", r.Type)
		c.SetAttr("build", r.Build)
		c.SetAttr("steps", fmt.Sprintf("%d", r.Steps))
		n.Add(c)
	}
	return n
}
