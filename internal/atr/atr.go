// Package atr implements the Activity Type Registry: the GLARE component
// that "maintains a set of named activity types in the form of
// WS-Resources organized in a hierarchy" (paper §3.1).
//
// Two query paths exist, and their difference is the paper's headline
// performance result (Figs. 10 and 11):
//
//   - Named lookups go through a hash table ("In order to answer queries
//     for named resources faster, the registry services use hash tables to
//     access named resources. This eliminates XPath-based search
//     requirements ... and significantly improves the performance.")
//   - Non-named discovery uses the same XPath mechanism as the Index
//     Service, over the WSRF service-group aggregation.
package atr

import (
	"fmt"
	"time"

	"glare/internal/activity"
	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
	"glare/internal/xpath"
)

// KeyName is the EPR reference-property for type resources.
const KeyName = "ActivityTypeKey"

// ServiceName is the transport mount point.
const ServiceName = "ActivityTypeRegistry"

// Journal receives every registry mutation for durable replay (the
// write-ahead log of internal/store satisfies it). Implementations must
// be safe for concurrent use; nil means no persistence.
type Journal interface {
	// RecordPut journals the full property document after a mutation.
	RecordPut(key string, doc *xmlutil.Node, lut, term time.Time)
	// RecordDelete journals a resource removal.
	RecordDelete(key string)
}

// Registry is one site's Activity Type Registry.
type Registry struct {
	home    *wsrf.Home
	group   *wsrf.ServiceGroup
	broker  *wsrf.Broker
	clock   simclock.Clock
	stamp   func() time.Time // ordering-stamp source; nil = clock.Now
	journal Journal

	// Hot-path counters; nil (no-op) until SetTelemetry is called.
	lookups, registers, concrete *telemetry.Counter
}

// New creates an empty registry. serviceURL is the address other sites use
// to reach it (may be set later via SetServiceURL when the server starts).
func New(serviceURL string, clock simclock.Clock, broker *wsrf.Broker) *Registry {
	if clock == nil {
		clock = simclock.Real
	}
	if broker == nil {
		broker = wsrf.NewBroker(clock)
	}
	return &Registry{
		home:   wsrf.NewHome(serviceURL, KeyName, clock),
		group:  wsrf.NewServiceGroup("activity-types", clock),
		broker: broker,
		clock:  clock,
	}
}

// Home exposes the resource home (for aggregation into indices).
func (r *Registry) Home() *wsrf.Home { return r.home }

// Broker exposes the notification broker.
func (r *Registry) Broker() *wsrf.Broker { return r.broker }

// SetTelemetry binds the registry's hot-path counters to a site's
// telemetry registry. Call during site assembly, before serving traffic.
func (r *Registry) SetTelemetry(tel *telemetry.Telemetry) {
	r.lookups = tel.Counter("glare_atr_lookups_total")
	r.registers = tel.Counter("glare_atr_registers_total")
	r.concrete = tel.Counter("glare_atr_concrete_queries_total")
}

// SetJournal binds the durability journal; call during site assembly,
// before serving traffic. Mutations journal the resulting document so a
// restarted site replays to exactly this state.
func (r *Registry) SetJournal(j Journal) { r.journal = j }

// SetStamp binds the source of LastUpdateTime stamps — the site's hybrid
// logical clock — so cross-site newest-wins comparisons (anti-entropy,
// replication) survive wall-clock skew. Call during site assembly, before
// serving traffic. Expiry sweeps stay on the physical clock.
func (r *Registry) SetStamp(fn func() time.Time) {
	r.stamp = fn
	r.home.SetStamp(fn)
}

// now returns the next ordering stamp.
func (r *Registry) now() time.Time {
	if r.stamp != nil {
		return r.stamp()
	}
	return r.clock.Now()
}

// journalPut journals a resource's current document and timestamps.
func (r *Registry) journalPut(name string) {
	if r.journal == nil {
		return
	}
	res := r.home.Find(name)
	if res == nil {
		return
	}
	r.journal.RecordPut(name, res.Document(), res.LastUpdate(), res.TerminationTime())
}

// journalDelete journals a resource removal.
func (r *Registry) journalDelete(name string) {
	if r.journal != nil {
		r.journal.RecordDelete(name)
	}
}

// Restore re-installs a journaled type resource during crash recovery:
// the document and timestamps land exactly as journaled, and neither
// counters, notifications, nor the journal itself observe it — replay is
// not registration traffic.
func (r *Registry) Restore(name string, doc *xmlutil.Node, lut, term time.Time) {
	res := r.home.Restore(name, doc, lut, term)
	r.group.AddEntry(r.home.EPR(name), res.Document())
}

// Adopt installs a replicated type entry as locally owned: the document
// and timestamps land exactly as journaled at the origin site (like
// Restore), but the adoption is journaled locally, so a promoted replica
// survives this site's own restarts too.
func (r *Registry) Adopt(name string, doc *xmlutil.Node, lut, term time.Time) {
	r.Restore(name, doc, lut, term)
	r.journalPut(name)
}

// Timestamps returns a type resource's LastUpdateTime and termination
// time, the ordering fields replication compares copies on.
func (r *Registry) Timestamps(name string) (lut, term time.Time, ok bool) {
	res := r.home.Find(name)
	if res == nil {
		return time.Time{}, time.Time{}, false
	}
	return res.LastUpdate(), res.TerminationTime(), true
}

// Register adds an activity type; duplicate names are rejected.
func (r *Registry) Register(t *activity.Type) (epr.EPR, error) {
	r.registers.Inc()
	if err := t.Validate(); err != nil {
		return epr.EPR{}, err
	}
	if _, err := r.home.Create(t.Name, t.ToXML()); err != nil {
		return epr.EPR{}, err
	}
	r.group.AddEntry(r.home.EPR(t.Name), r.home.Find(t.Name).Document())
	r.journalPut(t.Name)
	r.broker.Publish(wsrf.TopicResourceCreated, t.Name, t.ToXML())
	return r.home.EPR(t.Name), nil
}

// Lookup resolves a named type through the hash table — the O(1) path.
func (r *Registry) Lookup(name string) (*activity.Type, bool) {
	r.lookups.Inc()
	res := r.home.Find(name)
	if res == nil {
		return nil, false
	}
	var t *activity.Type
	var err error
	res.Read(func(doc *xmlutil.Node) { t, err = activity.TypeFromXML(doc) })
	if err != nil {
		return nil, false
	}
	return t, true
}

// LookupDocument returns the raw property document of a named type.
func (r *Registry) LookupDocument(name string) (*xmlutil.Node, bool) {
	res := r.home.Find(name)
	if res == nil {
		return nil, false
	}
	return res.Document(), true
}

// LUT returns the LastUpdateTime of a named type resource.
func (r *Registry) LUT(name string) (time.Time, bool) {
	res := r.home.Find(name)
	if res == nil {
		return time.Time{}, false
	}
	return res.LastUpdate(), true
}

// Remove destroys a type resource; its deployments are expired by the RDM
// service through the destroy listener.
func (r *Registry) Remove(name string) bool {
	if !r.home.Destroy(name) {
		return false
	}
	r.group.RemoveEntry(name)
	r.journalDelete(name)
	r.broker.Publish(wsrf.TopicResourceDestroyed, name, nil)
	return true
}

// OnRemove registers a listener fired when a type resource is destroyed.
func (r *Registry) OnRemove(fn func(typeName string)) {
	r.home.OnDestroy(func(res *wsrf.Resource) { fn(res.Key()) })
}

// Names lists registered type names in sorted order.
func (r *Registry) Names() []string { return r.home.Keys() }

// Len reports the number of registered types.
func (r *Registry) Len() int { return r.home.Len() }

// Types returns all registered types.
func (r *Registry) Types() []*activity.Type {
	var out []*activity.Type
	for _, res := range r.home.All() {
		var t *activity.Type
		var err error
		res.Read(func(doc *xmlutil.Node) { t, err = activity.TypeFromXML(doc) })
		if err == nil {
			out = append(out, t)
		}
	}
	return out
}

// Hierarchy builds a hierarchy view over the registered types.
func (r *Registry) Hierarchy() (*activity.Hierarchy, error) {
	return activity.NewHierarchy(r.Types())
}

// ConcreteOf resolves an abstract or concrete name to the concrete types
// satisfying it, using the local hierarchy.
func (r *Registry) ConcreteOf(name string) ([]*activity.Type, error) {
	r.concrete.Inc()
	h, err := r.Hierarchy()
	if err != nil {
		return nil, err
	}
	return h.ConcreteOf(name), nil
}

// Query evaluates an XPath expression over the aggregated document; the
// group is refreshed first so results reflect current state.
func (r *Registry) Query(expr *xpath.Expr) xpath.Result {
	r.group.Refresh(r.home)
	return r.group.Query(expr)
}

// QueryString compiles and evaluates an XPath source string.
func (r *Registry) QueryString(src string) (xpath.Result, error) {
	expr, err := xpath.Compile(src)
	if err != nil {
		return xpath.Result{}, err
	}
	return r.Query(expr), nil
}

// AddDeploymentRef records a deployment EPR inside its type resource:
// "The Endpoint Reference (EPR) of each activity deployment resource is
// registered in its type resource presented in the type registry."
func (r *Registry) AddDeploymentRef(typeName string, dep epr.EPR) error {
	res := r.home.Find(typeName)
	if res == nil {
		return fmt.Errorf("atr: no such type %q", typeName)
	}
	res.Update(r.now(), func(doc *xmlutil.Node) {
		refs := doc.First("DeploymentRefs")
		if refs == nil {
			refs = doc.Elem("DeploymentRefs")
		}
		// Replace any previous EPR for the same deployment key.
		for _, old := range refs.All("DeploymentEPR") {
			if rp := old.First("ReferenceProperties"); rp != nil &&
				rp.ChildText("ActivityDeploymentKey") == dep.Key {
				refs.Remove(old)
			}
		}
		refs.Add(dep.ToXML("DeploymentEPR"))
	})
	r.group.AddEntry(r.home.EPR(typeName), res.Document())
	r.journalPut(typeName)
	r.broker.Publish(wsrf.TopicResourceUpdated, typeName, nil)
	return nil
}

// RemoveDeploymentRef drops a deployment EPR from its type resource.
func (r *Registry) RemoveDeploymentRef(typeName, deploymentKey string) {
	res := r.home.Find(typeName)
	if res == nil {
		return
	}
	res.Update(r.now(), func(doc *xmlutil.Node) {
		refs := doc.First("DeploymentRefs")
		if refs == nil {
			return
		}
		for _, old := range refs.All("DeploymentEPR") {
			if rp := old.First("ReferenceProperties"); rp != nil &&
				rp.ChildText("ActivityDeploymentKey") == deploymentKey {
				refs.Remove(old)
			}
		}
	})
	r.group.AddEntry(r.home.EPR(typeName), res.Document())
	r.journalPut(typeName)
}

// DeploymentRefs lists the deployment EPRs recorded in a type resource.
func (r *Registry) DeploymentRefs(typeName string) []epr.EPR {
	res := r.home.Find(typeName)
	if res == nil {
		return nil
	}
	var out []epr.EPR
	res.Read(func(doc *xmlutil.Node) {
		if refs := doc.First("DeploymentRefs"); refs != nil {
			for _, n := range refs.All("DeploymentEPR") {
				if e, err := epr.FromXML(n, "ActivityDeploymentKey"); err == nil {
					out = append(out, e)
				}
			}
		}
	})
	return out
}

// MarkDeployed flags the type as deployed on a site ("After successful
// installation, the activity type is marked as deployed").
func (r *Registry) MarkDeployed(typeName, siteName string) error {
	res := r.home.Find(typeName)
	if res == nil {
		return fmt.Errorf("atr: no such type %q", typeName)
	}
	res.Update(r.now(), func(doc *xmlutil.Node) {
		for _, d := range doc.All("DeployedOn") {
			if d.Text == siteName {
				return
			}
		}
		doc.Elem("DeployedOn", siteName)
	})
	r.group.AddEntry(r.home.EPR(typeName), res.Document())
	r.journalPut(typeName)
	return nil
}

// DeployedOn lists the sites a type is marked deployed on.
func (r *Registry) DeployedOn(typeName string) []string {
	res := r.home.Find(typeName)
	if res == nil {
		return nil
	}
	var out []string
	res.Read(func(doc *xmlutil.Node) {
		for _, d := range doc.All("DeployedOn") {
			out = append(out, d.Text)
		}
	})
	return out
}

// SetTermination schedules expiry of a type resource (lifecycle control by
// the activity provider, paper §3.3).
func (r *Registry) SetTermination(typeName string, at time.Time) error {
	res := r.home.Find(typeName)
	if res == nil {
		return fmt.Errorf("atr: no such type %q", typeName)
	}
	res.SetTerminationTime(at)
	r.journalPut(typeName)
	return nil
}

// SweepExpired destroys expired type resources and returns their names.
func (r *Registry) SweepExpired() []string {
	gone := r.home.SweepExpired()
	for _, name := range gone {
		r.group.RemoveEntry(name)
		r.journalDelete(name)
		r.broker.Publish(wsrf.TopicResourceDestroyed, name, nil)
	}
	return gone
}

// EPR mints the endpoint reference of a type resource.
func (r *Registry) EPR(name string) epr.EPR { return r.home.EPR(name) }

// Mount exposes the registry over a transport server.
func (r *Registry) Mount(srv *transport.Server) {
	srv.RegisterService(ServiceName, map[string]transport.Handler{
		"RegisterType": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			t, err := activity.TypeFromXML(body)
			if err != nil {
				return nil, err
			}
			e, err := r.Register(t)
			if err != nil {
				return nil, err
			}
			return e.ToXML("TypeEPR"), nil
		},
		"GetType": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			name := textArg(body)
			if name == "" {
				return nil, fmt.Errorf("GetType: missing name")
			}
			doc, ok := r.LookupDocument(name)
			if !ok {
				return nil, fmt.Errorf("GetType: no such type %q", name)
			}
			return doc, nil
		},
		"GetLUT": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			name := textArg(body)
			lut, ok := r.LUT(name)
			if !ok {
				return nil, fmt.Errorf("GetLUT: no such type %q", name)
			}
			return xmlutil.NewNode("LUT", lut.Format(epr.TimeLayout)), nil
		},
		"Query": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			res, err := r.QueryString(textArg(body))
			if err != nil {
				return nil, err
			}
			out := xmlutil.NewNode("Results")
			for _, n := range res.Nodes {
				out.Add(n.Clone())
			}
			for _, s := range res.Strings {
				out.Elem("Value", s)
			}
			return out, nil
		},
		"ListTypes": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			out := xmlutil.NewNode("Types")
			for _, n := range r.Names() {
				out.Elem("Type", n)
			}
			return out, nil
		},
		"RemoveType": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if !r.Remove(textArg(body)) {
				return nil, fmt.Errorf("RemoveType: no such type")
			}
			return xmlutil.NewNode("Removed"), nil
		},
	})
}

func textArg(body *xmlutil.Node) string {
	if body == nil {
		return ""
	}
	return body.Text
}
