package atr

import (
	"fmt"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/simclock"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

func fixture() (*Registry, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	return New("http://s1/wsrf/services/"+ServiceName, v, nil), v
}

func imagingTypes() []*activity.Type {
	return []*activity.Type{
		{Name: "Imaging", Abstract: true},
		{Name: "POVray", Abstract: true, Base: []string{"Imaging"}},
		{Name: "JPOVray", Base: []string{"POVray"}, Dependencies: []string{"Java", "Ant"},
			Installation: &activity.Installation{Mode: activity.ModeOnDemand}},
		{Name: "Java"},
		{Name: "Ant"},
	}
}

func TestRegisterLookup(t *testing.T) {
	r, _ := fixture()
	for _, ty := range imagingTypes() {
		if _, err := r.Register(ty); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := r.Lookup("JPOVray")
	if !ok || got.Name != "JPOVray" || len(got.Dependencies) != 2 {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("Nope"); ok {
		t.Fatal("phantom lookup")
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	// Duplicate registration must fail.
	if _, err := r.Register(&activity.Type{Name: "Java"}); err == nil {
		t.Fatal("duplicate type accepted")
	}
	// Invalid type must fail.
	if _, err := r.Register(&activity.Type{}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestConcreteResolution(t *testing.T) {
	r, _ := fixture()
	for _, ty := range imagingTypes() {
		r.Register(ty)
	}
	concrete, err := r.ConcreteOf("Imaging")
	if err != nil {
		t.Fatal(err)
	}
	if len(concrete) != 1 || concrete[0].Name != "JPOVray" {
		t.Fatalf("concrete = %v", concrete)
	}
}

func TestXPathQuery(t *testing.T) {
	r, _ := fixture()
	for _, ty := range imagingTypes() {
		r.Register(ty)
	}
	res, err := r.QueryString(`//ActivityTypeEntry[@name='JPOVray']`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("query = %d", len(res.Nodes))
	}
	if _, err := r.QueryString(`///`); err == nil {
		t.Fatal("bad xpath accepted")
	}
	// Abstract discovery via XPath.
	res, _ = r.QueryString(`//ActivityTypeEntry[@abstract='true']`)
	if len(res.Nodes) != 2 {
		t.Fatalf("abstract types = %d", len(res.Nodes))
	}
}

func TestDeploymentRefs(t *testing.T) {
	r, v := fixture()
	r.Register(&activity.Type{Name: "JPOVray"})
	dep := r.Home().EPR("JPOVray") // any EPR shape works for the ref
	dep.KeyName = "ActivityDeploymentKey"
	dep.Key = "jpovray"
	dep.LastUpdateTime = v.Now()
	if err := r.AddDeploymentRef("JPOVray", dep); err != nil {
		t.Fatal(err)
	}
	refs := r.DeploymentRefs("JPOVray")
	if len(refs) != 1 || refs[0].Key != "jpovray" {
		t.Fatalf("refs = %v", refs)
	}
	// Re-adding replaces rather than duplicates.
	v.Advance(time.Second)
	dep2 := dep.Touch(v.Now())
	r.AddDeploymentRef("JPOVray", dep2)
	refs = r.DeploymentRefs("JPOVray")
	if len(refs) != 1 || !refs[0].LastUpdateTime.Equal(v.Now()) {
		t.Fatalf("refs after update = %v", refs)
	}
	r.RemoveDeploymentRef("JPOVray", "jpovray")
	if len(r.DeploymentRefs("JPOVray")) != 0 {
		t.Fatal("ref not removed")
	}
	if err := r.AddDeploymentRef("Missing", dep); err == nil {
		t.Fatal("ref on missing type accepted")
	}
}

func TestMarkDeployed(t *testing.T) {
	r, _ := fixture()
	r.Register(&activity.Type{Name: "Wien2k"})
	if err := r.MarkDeployed("Wien2k", "agrid1"); err != nil {
		t.Fatal(err)
	}
	r.MarkDeployed("Wien2k", "agrid1") // idempotent
	r.MarkDeployed("Wien2k", "agrid2")
	on := r.DeployedOn("Wien2k")
	if len(on) != 2 {
		t.Fatalf("deployed on %v", on)
	}
	if err := r.MarkDeployed("Nope", "x"); err == nil {
		t.Fatal("missing type accepted")
	}
}

func TestRemoveFiresListener(t *testing.T) {
	r, _ := fixture()
	r.Register(&activity.Type{Name: "X"})
	var removed []string
	r.OnRemove(func(name string) { removed = append(removed, name) })
	if !r.Remove("X") {
		t.Fatal("remove failed")
	}
	if r.Remove("X") {
		t.Fatal("double remove")
	}
	if len(removed) != 1 || removed[0] != "X" {
		t.Fatalf("listener saw %v", removed)
	}
	// Removed from aggregation too.
	res, _ := r.QueryString(`//ActivityTypeEntry[@name='X']`)
	if !res.Empty() {
		t.Fatal("removed type still aggregated")
	}
}

func TestExpiryCascadePlumbing(t *testing.T) {
	r, v := fixture()
	r.Register(&activity.Type{Name: "Temp"})
	if err := r.SetTermination("Temp", v.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetTermination("Nope", v.Now()); err == nil {
		t.Fatal("missing type accepted")
	}
	if gone := r.SweepExpired(); len(gone) != 0 {
		t.Fatal("premature expiry")
	}
	v.Advance(2 * time.Minute)
	gone := r.SweepExpired()
	if len(gone) != 1 || gone[0] != "Temp" {
		t.Fatalf("swept %v", gone)
	}
}

func TestNotifications(t *testing.T) {
	v := simclock.NewVirtual(time.Time{})
	broker := wsrf.NewBroker(v)
	r := New("http://s/wsrf/services/ATR", v, broker)
	events := map[string]int{}
	for _, topic := range []string{wsrf.TopicResourceCreated, wsrf.TopicResourceUpdated, wsrf.TopicResourceDestroyed} {
		tp := topic
		broker.Subscribe(tp, wsrf.SinkFunc(func(n wsrf.Notification) { events[tp]++ }))
	}
	r.Register(&activity.Type{Name: "A"})
	e := r.EPR("A")
	e.KeyName = "ActivityDeploymentKey"
	e.Key = "a1"
	r.AddDeploymentRef("A", e)
	r.Remove("A")
	if events[wsrf.TopicResourceCreated] != 1 || events[wsrf.TopicResourceUpdated] != 1 ||
		events[wsrf.TopicResourceDestroyed] != 1 {
		t.Fatalf("events = %v", events)
	}
}

func TestLUT(t *testing.T) {
	r, v := fixture()
	r.Register(&activity.Type{Name: "A"})
	lut1, ok := r.LUT("A")
	if !ok {
		t.Fatal("lut missing")
	}
	v.Advance(time.Second)
	r.MarkDeployed("A", "s")
	lut2, _ := r.LUT("A")
	if !lut2.After(lut1) {
		t.Fatal("LUT not bumped by update")
	}
	if _, ok := r.LUT("Nope"); ok {
		t.Fatal("phantom lut")
	}
}

func TestMountedService(t *testing.T) {
	r, _ := fixture()
	srv := transport.NewServer()
	r.Mount(srv)
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := transport.NewClient(nil)
	url := srv.ServiceURL(ServiceName)

	ty := &activity.Type{Name: "Remote", Domain: "Test"}
	resp, err := cli.Call(url, "RegisterType", ty.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "TypeEPR" {
		t.Fatalf("resp = %s", resp)
	}
	doc, err := cli.Call(url, "GetType", xmlutil.NewNode("Name", "Remote"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := activity.TypeFromXML(doc)
	if err != nil || got.Name != "Remote" {
		t.Fatalf("remote GetType: %v %v", got, err)
	}
	if _, err := cli.Call(url, "GetType", xmlutil.NewNode("Name", "Missing")); err == nil {
		t.Fatal("missing type must fault")
	}
	if _, err := cli.Call(url, "GetLUT", xmlutil.NewNode("Name", "Remote")); err != nil {
		t.Fatal(err)
	}
	lst, err := cli.Call(url, "ListTypes", nil)
	if err != nil || len(lst.All("Type")) != 1 {
		t.Fatalf("list: %v %v", lst, err)
	}
	q, err := cli.Call(url, "Query", xmlutil.NewNode("XPath", `//ActivityTypeEntry[@name='Remote']`))
	if err != nil || len(q.All("ActivityTypeEntry")) != 1 {
		t.Fatalf("query: %v %v", q, err)
	}
	if _, err := cli.Call(url, "RemoveType", xmlutil.NewNode("Name", "Remote")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(url, "RemoveType", xmlutil.NewNode("Name", "Remote")); err == nil {
		t.Fatal("double remove must fault")
	}
}

func TestManyTypesNamedLookupStaysFast(t *testing.T) {
	// Smoke-check the hash path on a large registry (the Fig. 11 claim);
	// timing assertions belong to benchmarks, correctness here.
	r, _ := fixture()
	for i := 0; i < 300; i++ {
		r.Register(&activity.Type{Name: fmt.Sprintf("T%03d", i)})
	}
	if _, ok := r.Lookup("T299"); !ok {
		t.Fatal("lookup failed at scale")
	}
	if got := len(r.Names()); got != 300 {
		t.Fatalf("names = %d", got)
	}
}
